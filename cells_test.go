package wflocks

import (
	"sync"
	"testing"
)

func TestIntegerCellRoundTrip(t *testing.T) {
	m := newManager(t, WithKappa(2))
	p := m.NewProcess()

	ci := NewCell(-42)
	if got := ci.Get(p); got != -42 {
		t.Fatalf("int cell = %d, want -42", got)
	}
	ci.Set(p, -1<<40)
	if got := ci.Get(p); got != -1<<40 {
		t.Fatalf("int cell = %d, want %d", got, -1<<40)
	}

	c8 := NewCell(int8(-7))
	if got := c8.Get(p); got != -7 {
		t.Fatalf("int8 cell = %d, want -7", got)
	}

	cu := NewCell(^uint64(0))
	if got := cu.Get(p); got != ^uint64(0) {
		t.Fatalf("uint64 cell = %d, want max", got)
	}
}

func TestBoolAndFloatCells(t *testing.T) {
	m := newManager(t, WithKappa(2))
	p := m.NewProcess()
	cb := NewBoolCell(true)
	if !cb.Get(p) {
		t.Fatal("bool cell lost true")
	}
	cb.Set(p, false)
	if cb.Get(p) {
		t.Fatal("bool cell lost false")
	}
	cf := NewFloat64Cell(3.25)
	if got := cf.Get(p); got != 3.25 {
		t.Fatalf("float cell = %v, want 3.25", got)
	}
}

// point is the multi-word struct the codec tests round-trip.
type point struct {
	X, Y int64
	Tag  uint64
}

func pointCodec() Codec[point] {
	return CodecFunc(3,
		func(v point, dst []uint64) {
			dst[0] = uint64(v.X)
			dst[1] = uint64(v.Y)
			dst[2] = v.Tag
		},
		func(src []uint64) point {
			return point{X: int64(src[0]), Y: int64(src[1]), Tag: src[2]}
		})
}

func TestStructCellRoundTrip(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(1), WithMaxCriticalSteps(16))
	l := m.NewLock()
	c := NewCellOf(pointCodec(), point{X: -1, Y: 2, Tag: 3})
	if c.Words() != 3 {
		t.Fatalf("words = %d, want 3", c.Words())
	}
	if got := Load(m, c); got != (point{X: -1, Y: 2, Tag: 3}) {
		t.Fatalf("initial struct = %+v", got)
	}
	if err := m.Do([]*Lock{l}, 6, func(tx *Tx) {
		v := Get(tx, c)
		v.X, v.Y = v.Y, v.X
		v.Tag++
		Put(tx, c, v)
	}); err != nil {
		t.Fatal(err)
	}
	if got := Load(m, c); got != (point{X: 2, Y: -1, Tag: 4}) {
		t.Fatalf("struct after swap = %+v", got)
	}
}

// TestTypedCellsConcurrent round-trips typed values through concurrent
// critical sections; run with -race. The struct cell's two halves must
// always move together — any torn write breaks the X == -Y invariant.
func TestTypedCellsConcurrent(t *testing.T) {
	const workers = 4
	const rounds = 100
	m := newManager(t, WithKappa(workers), WithMaxLocks(1), WithMaxCriticalSteps(16))
	l := m.NewLock()
	pairCodec := CodecFunc(2,
		func(v [2]int64, dst []uint64) { dst[0], dst[1] = uint64(v[0]), uint64(v[1]) },
		func(src []uint64) [2]int64 { return [2]int64{int64(src[0]), int64(src[1])} })
	pair := NewCellOf(pairCodec, [2]int64{0, 0})
	count := NewCell(int64(0))
	flag := NewBoolCell(false)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				if err := m.Do([]*Lock{l}, 8, func(tx *Tx) {
					v := Get(tx, pair)
					if v[0] != -v[1] {
						Put(tx, flag, true)
					}
					v[0]++
					v[1]--
					Put(tx, pair, v)
					Put(tx, count, Get(tx, count)+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if Load(m, flag) {
		t.Fatal("torn multi-word value observed inside a critical section")
	}
	total := int64(workers * rounds)
	if got := Load(m, pair); got != [2]int64{total, -total} {
		t.Fatalf("pair = %v, want [%d %d]", got, total, -total)
	}
	if got := Load(m, count); got != total {
		t.Fatalf("count = %d, want %d", got, total)
	}
}

func TestCompareSwapMultiWord(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(1), WithMaxCriticalSteps(32))
	l := m.NewLock()
	c := NewCellOf(pointCodec(), point{X: 1, Y: 2, Tag: 3})
	var first, second bool
	if err := m.Do([]*Lock{l}, 16, func(tx *Tx) {
		first = CompareSwap(tx, c, point{X: 1, Y: 2, Tag: 3}, point{X: 9, Y: 9, Tag: 9})
		second = CompareSwap(tx, c, point{X: 1, Y: 2, Tag: 3}, point{X: 0, Y: 0, Tag: 0})
	}); err != nil {
		t.Fatal(err)
	}
	if !first || second {
		t.Fatalf("CompareSwap = %v, %v; want true, false", first, second)
	}
	if got := Load(m, c); got != (point{X: 9, Y: 9, Tag: 9}) {
		t.Fatalf("struct = %+v after CAS", got)
	}
}

func TestStringCodecRoundTrip(t *testing.T) {
	sc := StringCodec(24)
	if got := sc.Words(); got != 4 {
		t.Fatalf("Words() = %d, want 4 (1 length + 3 data)", got)
	}
	cases := []string{
		"", "a", "hello", "exactly-24-bytes-long!!!",
		"null\x00byte", "utf8 é™", "12345678", "123456789",
	}
	for _, s := range cases {
		buf := make([]uint64, sc.Words())
		sc.Encode(s, buf)
		if got := sc.Decode(buf); got != s {
			t.Fatalf("round trip of %q = %q", s, got)
		}
	}
	// Encodes are deterministic even into a dirty buffer: trailing
	// words are zeroed, so equal strings always encode equal words.
	dirty := []uint64{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
	clean := make([]uint64, 4)
	sc.Encode("hi", dirty)
	sc.Encode("hi", clean)
	for i := range clean {
		if dirty[i] != clean[i] {
			t.Fatalf("word %d differs after dirty-buffer encode: %x vs %x", i, dirty[i], clean[i])
		}
	}
}

func TestStringCodecBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Encode did not panic")
		}
	}()
	sc := StringCodec(4)
	buf := make([]uint64, sc.Words())
	sc.Encode("five!", buf)
}

func TestStringCodecInCell(t *testing.T) {
	m := newManager(t, WithKappa(2))
	p := m.NewProcess()
	c := NewCellOf(StringCodec(16), "initial")
	if got := c.Get(p); got != "initial" {
		t.Fatalf("cell = %q, want %q", got, "initial")
	}
	c.Set(p, "rewritten")
	if got := c.Get(p); got != "rewritten" {
		t.Fatalf("cell = %q, want %q", got, "rewritten")
	}
}
