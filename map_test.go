package wflocks

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// mapManager builds a manager sized for maps in tests: κ and L as
// given, T covering a two-key transaction (Swap's budget) at the given
// capacity, and delay constants of 1 to keep the fixed stalls short on
// test machines.
func mapManager(t testing.TB, kappa, maxLocks, shardCap, keyWords, valWords int) *Manager {
	t.Helper()
	m, err := New(
		WithKappa(kappa),
		WithMaxLocks(maxLocks),
		WithMaxCriticalSteps(MapAtomicSteps(shardCap, keyWords, valWords, 2)),
		WithDelayConstants(1, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapBasic(t *testing.T) {
	// Capacity carries margin over the keyspace: buckets are fixed per
	// shard, so a skewed hash draw must still fit the hottest shard.
	m := mapManager(t, 2, 2, 32, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(4), WithShardCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	if mp.Shards() != 4 || mp.ShardCapacity() != 32 {
		t.Fatalf("shape = (%d, %d), want (4, 32)", mp.Shards(), mp.ShardCapacity())
	}
	const n = 20
	for k := uint64(0); k < n; k++ {
		if err := mp.Put(k, k*10); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if got := mp.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := mp.Get(k)
		if !ok || v != k*10 {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, v, ok, k*10)
		}
	}
	if _, ok := mp.Get(999); ok {
		t.Fatal("Get(999) found a missing key")
	}
	// Overwrite does not grow the map.
	if err := mp.Put(3, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := mp.Get(3); v != 42 {
		t.Fatalf("overwritten Get(3) = %d, want 42", v)
	}
	if got := mp.Len(); got != n {
		t.Fatalf("Len after overwrite = %d, want %d", got, n)
	}
	if !mp.Delete(3) {
		t.Fatal("Delete(3) = false, want true")
	}
	if mp.Delete(3) {
		t.Fatal("second Delete(3) = true, want false")
	}
	if _, ok := mp.Get(3); ok {
		t.Fatal("Get(3) found a deleted key")
	}
	if got := mp.Len(); got != n-1 {
		t.Fatalf("Len after delete = %d, want %d", got, n-1)
	}
}

func TestMapOptionValidation(t *testing.T) {
	m := mapManager(t, 2, 1, 8, 1, 1)
	if _, err := NewMap[int, int](m, WithShards(0)); err == nil {
		t.Fatal("WithShards(0) accepted")
	}
	if _, err := NewMap[int, int](m, WithShardCapacity(-1)); err == nil {
		t.Fatal("WithShardCapacity(-1) accepted")
	}
	// Rounding to powers of two.
	mp, err := NewMap[int, int](m, WithShards(3), WithShardCapacity(5))
	if err != nil {
		t.Fatal(err)
	}
	if mp.Shards() != 4 || mp.ShardCapacity() != 8 {
		t.Fatalf("rounded shape = (%d, %d), want (4, 8)", mp.Shards(), mp.ShardCapacity())
	}
	// A manager whose T cannot cover the budget is rejected with the
	// required bound in the message.
	small, err := New(WithKappa(2), WithMaxCriticalSteps(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMap[int, int](small, WithShardCapacity(64)); err == nil {
		t.Fatal("NewMap accepted a manager with an insufficient T bound")
	}
}

// TestMapFullAndTombstoneReuse fills a single-shard map to capacity,
// checks ErrMapFull, and checks that Delete's tombstones are reusable
// and keep longer probe chains reachable.
func TestMapFullAndTombstoneReuse(t *testing.T) {
	m := mapManager(t, 2, 1, 4, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(1), WithShardCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{1, 2, 3, 4}
	for _, k := range keys {
		if err := mp.Put(k, k); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if err := mp.Put(5, 5); !errors.Is(err, ErrMapFull) {
		t.Fatalf("Put into full shard: err = %v, want ErrMapFull", err)
	}
	// A miss in a full region must scan the whole region (worst-case
	// probe) without exhausting the ops budget.
	if _, ok := mp.Get(99); ok {
		t.Fatal("found a key that was never inserted")
	}
	if !mp.Delete(2) {
		t.Fatal("Delete(2) failed")
	}
	// Every survivor must remain reachable across the tombstone.
	for _, k := range []uint64{1, 3, 4} {
		if v, ok := mp.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) after delete = (%d, %v), want (%d, true)", k, v, ok, k)
		}
	}
	if err := mp.Put(6, 6); err != nil {
		t.Fatalf("Put into tombstoned slot: %v", err)
	}
	if v, ok := mp.Get(6); !ok || v != 6 {
		t.Fatalf("Get(6) = (%d, %v), want (6, true)", v, ok)
	}
}

func TestMapSwap(t *testing.T) {
	m := mapManager(t, 2, 2, 8, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(4), WithShardCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	// Find two keys on different shards and two on the same shard.
	var cross [2]uint64
	var same [2]uint64
	foundCross, foundSame := false, false
	for a := uint64(0); a < 64 && !foundCross; a++ {
		for b := a + 1; b < 64 && !foundCross; b++ {
			if mp.eng.ShardIndex(mp.eng.Hash(a)) != mp.eng.ShardIndex(mp.eng.Hash(b)) {
				cross = [2]uint64{a, b}
				foundCross = true
			}
		}
	}
	// The same-shard pair must be disjoint from the cross pair: the test
	// re-puts each pair's original values, which would undo the other
	// pair's swap.
	for a := uint64(0); a < 64 && !foundSame; a++ {
		for b := a + 1; b < 64 && !foundSame; b++ {
			if a == cross[0] || a == cross[1] || b == cross[0] || b == cross[1] {
				continue
			}
			if mp.eng.ShardIndex(mp.eng.Hash(a)) == mp.eng.ShardIndex(mp.eng.Hash(b)) {
				same = [2]uint64{a, b}
				foundSame = true
			}
		}
	}
	if !foundCross || !foundSame {
		t.Fatal("could not find shard-colliding and shard-distinct key pairs")
	}
	for _, pair := range [][2]uint64{cross, same} {
		if err := mp.Put(pair[0], 100+pair[0]); err != nil {
			t.Fatal(err)
		}
		if err := mp.Put(pair[1], 100+pair[1]); err != nil {
			t.Fatal(err)
		}
		ok, err := mp.Swap(pair[0], pair[1])
		if err != nil || !ok {
			t.Fatalf("Swap(%d, %d) = (%v, %v), want (true, nil)", pair[0], pair[1], ok, err)
		}
		if v, _ := mp.Get(pair[0]); v != 100+pair[1] {
			t.Fatalf("after swap Get(%d) = %d, want %d", pair[0], v, 100+pair[1])
		}
		if v, _ := mp.Get(pair[1]); v != 100+pair[0] {
			t.Fatalf("after swap Get(%d) = %d, want %d", pair[1], v, 100+pair[0])
		}
	}
	// Swapping with a missing key changes nothing.
	ok, err := mp.Swap(cross[0], 9999)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Swap with a missing key reported success")
	}
	if v, _ := mp.Get(cross[0]); v != 100+cross[1] {
		t.Fatal("failed Swap mutated a value")
	}
	// Self-swap is a successful no-op.
	if ok, err := mp.Swap(same[0], same[0]); err != nil || !ok {
		t.Fatalf("self-swap = (%v, %v), want (true, nil)", ok, err)
	}
}

// TestMapSwapBoundErrors checks Swap's validation against managers
// whose L or T bounds cannot host it.
func TestMapSwapBoundErrors(t *testing.T) {
	// L = 1: cross-shard swaps must fail with ErrTooManyLocks while
	// same-shard swaps still work.
	m1 := mapManager(t, 2, 1, 8, 1, 1)
	mp1, err := NewMap[uint64, uint64](m1, WithShards(4), WithShardCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	var a, b uint64
	for b = 1; b < 64; b++ {
		if mp1.eng.ShardIndex(mp1.eng.Hash(0)) != mp1.eng.ShardIndex(mp1.eng.Hash(b)) {
			break
		}
	}
	if err := mp1.Put(a, 1); err != nil {
		t.Fatal(err)
	}
	if err := mp1.Put(b, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mp1.Swap(a, b); !errors.Is(err, ErrTooManyLocks) {
		t.Fatalf("cross-shard Swap under L=1: err = %v, want ErrTooManyLocks", err)
	}

	// T covering only the single-shard budget: Swap must report
	// ErrMaxOpsExceeded instead of attempting.
	mSmall, err := New(WithKappa(2), WithMaxLocks(2),
		WithMaxCriticalSteps(MapCriticalSteps(8, 1, 1)), WithDelayConstants(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	mp2, err := NewMap[uint64, uint64](mSmall, WithShards(4), WithShardCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp2.Swap(1, 2); !errors.Is(err, ErrMaxOpsExceeded) {
		t.Fatalf("Swap under tight T: err = %v, want ErrMaxOpsExceeded", err)
	}
}

func TestMapRange(t *testing.T) {
	m := mapManager(t, 2, 1, 16, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(2), WithShardCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	for k := uint64(0); k < 12; k++ {
		want[k] = k * k
		if err := mp.Put(k, k*k); err != nil {
			t.Fatal(err)
		}
	}
	got := map[uint64]uint64{}
	mp.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range saw %d=%d, want %d", k, got[k], v)
		}
	}
	// Early termination stops the iteration.
	visits := 0
	mp.Range(func(k, v uint64) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("Range after false = %d visits, want 1", visits)
	}
	// The callback may call back into the map (it runs outside any
	// critical section).
	mp.Range(func(k, v uint64) bool {
		_, _ = mp.Get(k)
		return true
	})
}

// TestMapMultiWordCodecs exercises multi-word struct keys and values
// through CodecFunc, including the slice-based hash path.
func TestMapMultiWordCodecs(t *testing.T) {
	type point struct{ X, Y uint64 }
	pointCodec := CodecFunc(2,
		func(p point, dst []uint64) { dst[0], dst[1] = p.X, p.Y },
		func(src []uint64) point { return point{src[0], src[1]} })
	m := mapManager(t, 2, 2, 8, 2, 2)
	mp, err := NewMapOf[point, point](m, pointCodec, pointCodec,
		WithShards(2), WithShardCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if err := mp.Put(point{i, i + 1}, point{i * 2, i * 3}); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := uint64(0); i < 8; i++ {
		v, ok := mp.Get(point{i, i + 1})
		if !ok || v != (point{i * 2, i * 3}) {
			t.Fatalf("Get(point{%d}) = (%v, %v)", i, v, ok)
		}
	}
	if _, ok := mp.Get(point{100, 100}); ok {
		t.Fatal("found a missing struct key")
	}
	if ok, err := mp.Swap(point{0, 1}, point{1, 2}); err != nil || !ok {
		t.Fatalf("struct Swap = (%v, %v)", ok, err)
	}
	if v, _ := mp.Get(point{0, 1}); v != (point{2, 3}) {
		t.Fatalf("after struct swap: %v", v)
	}
}

func TestMapUpdate(t *testing.T) {
	m := mapManager(t, 2, 1, 8, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(2), WithShardCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	// Insert through Update: fn sees absent, returns a value to keep.
	if err := mp.Update(1, func(old uint64, ok bool) (uint64, bool) {
		if ok {
			t.Errorf("insert path saw ok=true (old %d)", old)
		}
		return 100, true
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok := mp.Get(1); !ok || v != 100 {
		t.Fatalf("after insert Update: Get(1) = (%d, %v), want (100, true)", v, ok)
	}
	// Modify in place: fn sees the current value.
	if err := mp.Update(1, func(old uint64, ok bool) (uint64, bool) {
		if !ok || old != 100 {
			t.Errorf("modify path saw (%d, %v), want (100, true)", old, ok)
		}
		return old + 1, true
	}); err != nil {
		t.Fatal(err)
	}
	if v, _ := mp.Get(1); v != 101 {
		t.Fatalf("after modify Update: Get(1) = %d, want 101", v)
	}
	// keep=false deletes a present key...
	if err := mp.Update(1, func(old uint64, ok bool) (uint64, bool) {
		return 0, false
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := mp.Get(1); ok {
		t.Fatal("Update(keep=false) left the key present")
	}
	if mp.Len() != 0 {
		t.Fatalf("Len = %d, want 0", mp.Len())
	}
	// ...and is a no-op on an absent key.
	if err := mp.Update(2, func(old uint64, ok bool) (uint64, bool) {
		return 0, false
	}); err != nil {
		t.Fatal(err)
	}
	if mp.Len() != 0 {
		t.Fatal("no-op Update changed the map")
	}
}

// TestMapUpdateFull checks that an inserting Update against a full
// shard reports ErrMapFull like Put does.
func TestMapUpdateFull(t *testing.T) {
	m := mapManager(t, 2, 1, 4, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(1), WithShardCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 4; k++ {
		if err := mp.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	err = mp.Update(99, func(old uint64, ok bool) (uint64, bool) { return 1, true })
	if !errors.Is(err, ErrMapFull) {
		t.Fatalf("insert Update into full shard: err = %v, want ErrMapFull", err)
	}
	// Overwriting Update still works at capacity.
	if err := mp.Update(1, func(old uint64, ok bool) (uint64, bool) { return old * 10, true }); err != nil {
		t.Fatal(err)
	}
	if v, _ := mp.Get(1); v != 10 {
		t.Fatalf("Update at capacity: Get(1) = %d, want 10", v)
	}
}

// TestMapUpdateConcurrentIncrement is the reason Update exists: n
// goroutines doing read-modify-write increments on one key must never
// lose an update. A Get-then-Put loop loses increments under this
// schedule; one critical section cannot.
func TestMapUpdateConcurrentIncrement(t *testing.T) {
	const (
		procs   = 4
		incsPer = 25
	)
	m := mapManager(t, procs, 1, 8, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(1), WithShardCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incsPer; i++ {
				if err := mp.Update(7, func(old uint64, ok bool) (uint64, bool) {
					if !ok {
						return 1, true
					}
					return old + 1, true
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, ok := mp.Get(7); !ok || v != procs*incsPer {
		t.Fatalf("counter = (%d, %v), want (%d, true) — increments were lost", v, ok, procs*incsPer)
	}
}

// TestMapConcurrent hammers one map from several goroutines with a
// mixed workload and checks invariants afterwards. It is intentionally
// small (attempts pay the algorithm's fixed delays) and runs in -short;
// the race detector is the main assertion.
func TestMapConcurrent(t *testing.T) {
	const (
		procs     = 4
		opsPer    = 30
		keyspace  = 16
		shardCap  = 16
		numShards = 4
	)
	m := mapManager(t, procs, 2, shardCap, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(numShards), WithShardCapacity(shardCap))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, procs)
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := uint64((g*opsPer + i*7) % keyspace)
				switch i % 5 {
				case 0, 1:
					if _, ok := mp.Get(k); ok {
						// Concurrent readers see whatever was last
						// linearized; nothing to assert per-op.
						_ = ok
					}
				case 2, 3:
					if err := mp.Put(k, uint64(g)<<32|uint64(i)); err != nil {
						errs <- fmt.Errorf("goroutine %d Put(%d): %w", g, k, err)
						return
					}
				case 4:
					mp.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Len must equal the number of Range-visible entries at quiescence,
	// and every key must round-trip.
	seen := 0
	mp.Range(func(k, v uint64) bool {
		seen++
		got, ok := mp.Get(k)
		if !ok || got != v {
			t.Errorf("Range/Get disagree on %d: (%d, %v) vs %d", k, got, ok, v)
		}
		return true
	})
	if got := mp.Len(); got != seen {
		t.Errorf("Len = %d but Range saw %d entries", got, seen)
	}
	st := mp.Stats()
	if len(st.Shards) != numShards {
		t.Fatalf("Stats has %d shards, want %d", len(st.Shards), numShards)
	}
	var attempts uint64
	for _, s := range st.Shards {
		attempts += s.Lock.Attempts
	}
	if attempts == 0 {
		t.Fatal("no attempts recorded on any shard lock")
	}
	if st.Balance <= 0 || st.Balance > 1 {
		t.Fatalf("Balance = %v, want (0, 1]", st.Balance)
	}
	if st.Len != seen {
		t.Fatalf("Stats.Len = %d, want %d", st.Len, seen)
	}
}

// TestMapConcurrentSwap runs cross-shard swaps (the L=2 path) against
// concurrent reads and checks value conservation: swaps permute values,
// so the multiset of values over the swap keys must be preserved.
func TestMapConcurrentSwap(t *testing.T) {
	const procs = 4
	m := mapManager(t, procs, 2, 8, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(4), WithShardCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{0, 1, 2, 3, 4, 5}
	for i, k := range keys {
		if err := mp.Put(k, uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				a := keys[(g+i)%len(keys)]
				b := keys[(g+i*3+1)%len(keys)]
				if _, err := mp.Swap(a, b); err != nil {
					t.Errorf("Swap(%d, %d): %v", a, b, err)
					return
				}
				_, _ = mp.Get(a)
			}
		}(g)
	}
	wg.Wait()
	got := map[uint64]int{}
	for _, k := range keys {
		v, ok := mp.Get(k)
		if !ok {
			t.Fatalf("key %d vanished", k)
		}
		got[v]++
	}
	for i := range keys {
		if got[uint64(1000+i)] != 1 {
			t.Fatalf("value %d appears %d times, want 1 (values must be permuted, not duplicated)",
				1000+i, got[uint64(1000+i)])
		}
	}
}
