package wflocks

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// logManager builds a manager sized for log tests: L=2 for the
// cursor-advance and trim-clamp pairs, T covering a batch critical
// section with the given consumer pool and segment, and delay
// constants of 1 to keep fixed stalls short on test machines.
func logManager(t testing.TB, kappa, batch, consumers, segment int) *Manager {
	t.Helper()
	m, err := New(
		WithKappa(kappa),
		WithMaxLocks(2),
		WithMaxCriticalSteps(LogCriticalSteps(1, batch, consumers, segment)),
		WithDelayConstants(1, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLogFanoutSingleShard(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if !lg.TryAppend(i) {
			t.Fatalf("TryAppend(%d) failed with room to spare", i)
		}
	}
	// Both cursors independently observe the full stream in append
	// order (one shard, so the order is total).
	for _, c := range []*Cursor[uint64]{c1, c2} {
		for i := uint64(0); i < 20; i++ {
			v, ok := c.TryNext()
			if !ok || v != i {
				t.Fatalf("cursor read %d: got (%d, %v), want (%d, true)", i, v, ok, i)
			}
		}
		if v, ok := c.TryNext(); ok {
			t.Fatalf("drained cursor delivered %d", v)
		}
	}
	if lag := c1.Lag(); lag != 0 {
		t.Fatalf("drained cursor lag = %d, want 0", lag)
	}
	st := lg.Stats()
	if st.Appends != 20 || st.Reads != 40 {
		t.Fatalf("stats appends/reads = %d/%d, want 20/40", st.Appends, st.Reads)
	}
	if st.Len != 20 {
		t.Fatalf("stats len = %d, want 20 (nothing trimmed yet)", st.Len)
	}
}

func TestLogReplayAndTailAttach(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		lg.TryAppend(i)
	}
	// A head cursor replays the retained window...
	replay, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := replay.TryNext(); !ok || v != 0 {
		t.Fatalf("replay cursor first read = (%d, %v), want (0, true)", v, ok)
	}
	// ...a tail cursor only sees appends after its attach.
	live, err := lg.NewTailCursor()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := live.TryNext(); ok {
		t.Fatalf("tail cursor delivered retained entry %d", v)
	}
	lg.TryAppend(100)
	if v, ok := live.TryNext(); !ok || v != 100 {
		t.Fatalf("tail cursor read = (%d, %v), want (100, true)", v, ok)
	}
}

func TestLogKeyedOrder(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(4), WithLogCapacity(256),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	c, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	// Interleave two keys; each key's entries stay in order even though
	// cross-key order is unspecified.
	for i := uint64(1); i <= 30; i++ {
		if !lg.TryAppendKeyed(0, i) {
			t.Fatal("keyed append to shard 0 failed")
		}
		if !lg.TryAppendKeyed(1, i<<8) {
			t.Fatal("keyed append to shard 1 failed")
		}
	}
	var last0, last1 uint64
	for i := 0; i < 60; i++ {
		v, ok := c.TryNext()
		if !ok {
			t.Fatalf("read %d: cursor drained early", i)
		}
		if v < 256 {
			if v != last0+1 {
				t.Fatalf("key 0 out of order: got %d after %d", v, last0)
			}
			last0 = v
		} else {
			if v>>8 != (last1>>8)+1 {
				t.Fatalf("key 1 out of order: got %d after %d", v>>8, last1>>8)
			}
			last1 = v
		}
	}
	if last0 != 30 || last1 != 30<<8 {
		t.Fatalf("incomplete delivery: key0 %d/30, key1 %d/30", last0, last1>>8)
	}
}

func TestLogBatchOps(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(2), WithLogCapacity(128),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	c, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	vs := make([]uint64, 50)
	for i := range vs {
		vs[i] = uint64(i)
	}
	n, err := lg.AppendBatch(context.Background(), vs)
	if err != nil || n != 50 {
		t.Fatalf("AppendBatch = (%d, %v), want (50, nil)", n, err)
	}
	seen := make(map[uint64]bool)
	for len(seen) < 50 {
		got, err := c.NextBatch(context.Background(), 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			if seen[v] {
				t.Fatalf("entry %d delivered twice", v)
			}
			seen[v] = true
		}
	}
	if lg.Len() != 50 {
		t.Fatalf("Len = %d, want 50", lg.Len())
	}
}

func TestLogTrimRespectsMinCursor(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	slow, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 40; i++ {
		lg.TryAppend(i)
	}
	for i := 0; i < 40; i++ {
		fast.TryNext()
	}
	for i := 0; i < 20; i++ {
		slow.TryNext()
	}
	// The slow cursor is at 20: trim may free exactly one 16-entry
	// segment (the aligned point below the minimum), never more.
	if freed := lg.Trim(); freed != 16 {
		t.Fatalf("Trim freed %d, want 16 (min cursor at 20, segment 16)", freed)
	}
	if lg.Len() != 24 {
		t.Fatalf("Len after trim = %d, want 24", lg.Len())
	}
	// The slow cursor's remaining entries are intact.
	for i := uint64(20); i < 40; i++ {
		v, ok := slow.TryNext()
		if !ok || v != i {
			t.Fatalf("slow read after trim = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	// Everyone has consumed everything: trim reclaims the rest.
	if freed := lg.Trim(); freed != 16 {
		t.Fatalf("second Trim freed %d, want 16 (aligned below 40)", freed)
	}
	st := lg.Stats()
	if st.Trimmed != 32 {
		t.Fatalf("stats trimmed = %d, want 32", st.Trimmed)
	}
}

func TestLogTrimWithoutCursors(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 40; i++ {
		lg.TryAppend(i)
	}
	// An unsubscribed log retains nothing: trim frees every full
	// segment below the tail.
	if freed := lg.Trim(); freed != 32 {
		t.Fatalf("Trim freed %d, want 32", freed)
	}
	if lg.Len() != 8 {
		t.Fatalf("Len = %d, want 8", lg.Len())
	}
}

func TestLogAutoTrimOnFull(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	c, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	// Append far beyond capacity with the cursor keeping pace: the
	// append critical sections reclaim consumed segments in-line, so no
	// explicit Trim is ever needed.
	for i := uint64(0); i < 1000; i++ {
		if !lg.TryAppend(i) {
			t.Fatalf("append %d failed with the cursor caught up", i)
		}
		v, ok := c.TryNext()
		if !ok || v != i {
			t.Fatalf("read %d = (%d, %v)", i, v, ok)
		}
	}
	// A full shard whose segment the slowest cursor still pins rejects.
	lagged, err := lg.NewTailCursor()
	if err != nil {
		t.Fatal(err)
	}
	_ = lagged
	full := 0
	for i := uint64(0); i < 200; i++ {
		if !lg.TryAppend(1000 + i) {
			full++
		}
	}
	if full == 0 {
		t.Fatal("a pinned log never reported full")
	}
	st := lg.Stats()
	if st.FullRejects == 0 {
		t.Fatal("full rejects not counted")
	}
}

func TestLogTrimToClampsLaggards(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	c, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 48; i++ {
		lg.TryAppend(i)
	}
	// Bound retention to 16: the untouched cursor is force-advanced
	// from 0 to 32 (counted as drops) and two segments are freed.
	if freed := lg.TrimTo(16); freed != 32 {
		t.Fatalf("TrimTo freed %d, want 32", freed)
	}
	if lg.Len() != 16 {
		t.Fatalf("Len = %d, want 16", lg.Len())
	}
	v, ok := c.TryNext()
	if !ok || v != 32 {
		t.Fatalf("clamped cursor read = (%d, %v), want (32, true)", v, ok)
	}
	st := lg.Stats()
	if st.Drops != 32 {
		t.Fatalf("stats drops = %d, want 32", st.Drops)
	}
	if st.Consumers[c.Slot()].Drops != 32 {
		t.Fatalf("slot drops = %d, want 32", st.Consumers[c.Slot()].Drops)
	}
}

func TestLogCursorSlots(t *testing.T) {
	m := logManager(t, 2, 8, 2, 16)
	lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	c1, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lg.NewCursor(); !errors.Is(err, ErrLogConsumers) {
		t.Fatalf("third cursor: err = %v, want ErrLogConsumers", err)
	}
	lg.TryAppend(7)
	c2.Close()
	c2.Close() // idempotent
	if _, ok := c2.TryNext(); ok {
		t.Fatal("closed cursor delivered an entry")
	}
	if _, err := c2.Next(context.Background()); !errors.Is(err, ErrCursorClosed) {
		t.Fatalf("Next on closed cursor: err = %v, want ErrCursorClosed", err)
	}
	// The slot is free again; a fresh cursor reuses it with reset
	// counters and replay-from-head semantics.
	c3, err := lg.NewCursor()
	if err != nil {
		t.Fatalf("reattach after Close: %v", err)
	}
	if c3.Slot() != c2.Slot() {
		t.Fatalf("reattached slot = %d, want %d", c3.Slot(), c2.Slot())
	}
	if v, ok := c3.TryNext(); !ok || v != 7 {
		t.Fatalf("reattached cursor read = (%d, %v), want (7, true)", v, ok)
	}
	if st := lg.Stats(); st.Consumers[c3.Slot()].Reads != 1 {
		t.Fatalf("reattached slot reads = %d, want 1 (reset on attach)", st.Consumers[c3.Slot()].Reads)
	}
	_ = c1
}

func TestLogConstructionErrors(t *testing.T) {
	// L=1 cannot host the two-lock cursor paths.
	one, err := New(WithKappa(2), WithMaxLocks(1),
		WithMaxCriticalSteps(LogCriticalSteps(1, 8, 8, 64)), WithDelayConstants(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLog[uint64](one); err == nil {
		t.Fatal("NewLog accepted a MaxLocks(1) manager")
	}
	// A budget the manager's T cannot cover is a construction error.
	small := logManager(t, 2, 1, 1, 1)
	if _, err := NewLog[uint64](small); err == nil {
		t.Fatal("oversized log budget accepted")
	}
	// A segment larger than the per-shard capacity cannot be freed in
	// one section.
	m := logManager(t, 2, 8, 8, 64)
	if _, err := NewLog[uint64](m, WithLogShards(8), WithLogCapacity(64), WithLogSegment(64)); err == nil {
		t.Fatal("segment exceeding per-shard capacity accepted")
	}
	// Option validation.
	for _, opt := range []LogOption{
		WithLogShards(0), WithLogCapacity(-1), WithLogSegment(0),
		WithLogBatch(0), WithLogConsumers(0),
	} {
		if _, err := NewLog[uint64](m, opt); err == nil {
			t.Fatal("invalid option accepted")
		}
	}
}

func TestLogConcurrentFanout(t *testing.T) {
	const (
		producers = 4
		consumers = 3
		items     = 250
	)
	m, err := New(
		WithUnknownBounds(producers+consumers+4),
		WithMaxLocks(2),
		WithMaxCriticalSteps(LogCriticalSteps(1, 8, consumers, 16)),
	)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := NewLog[uint64](m, WithLogShards(4), WithLogCapacity(256),
		WithLogSegment(16), WithLogConsumers(consumers), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	curs := make([]*Cursor[uint64], consumers)
	for i := range curs {
		if curs[i], err = lg.NewCursor(); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for pid := 0; pid < producers; pid++ {
		wg.Add(1)
		go func(pid uint64) {
			defer wg.Done()
			for seq := uint64(1); seq <= items; seq++ {
				if err := lg.AppendKeyed(ctx, pid, pid<<32|seq); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(pid))
	}
	errs := make(chan error, consumers)
	for ci := 0; ci < consumers; ci++ {
		wg.Add(1)
		go func(c *Cursor[uint64]) {
			defer wg.Done()
			last := make([]uint64, producers)
			got := 0
			for got < producers*items {
				v, ok := c.TryNext()
				if !ok {
					runtime.Gosched()
					continue
				}
				pid, seq := v>>32, v&0xffffffff
				// Keyed appends pin a producer to one shard, so each
				// producer's stream must arrive gapless and in order.
				if seq != last[pid]+1 {
					errs <- errNonSeq(pid, last[pid], seq)
					return
				}
				last[pid] = seq
				got++
			}
		}(curs[ci])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := lg.Stats()
	if st.Appends != producers*items {
		t.Fatalf("stats appends = %d, want %d", st.Appends, producers*items)
	}
	if st.Reads != uint64(consumers)*producers*items {
		t.Fatalf("stats reads = %d, want %d", st.Reads, consumers*producers*items)
	}
}

type errNonSeqT struct{ pid, last, got uint64 }

func errNonSeq(pid, last, got uint64) error { return errNonSeqT{pid, last, got} }
func (e errNonSeqT) Error() string {
	return "producer stream out of order"
}

// TestLogTrimNotBlockedByStalledConsumer is the helping regression
// test: a consumer stalled in the middle of its cursor-advance
// critical section — it holds both the shard and cursor locks — must
// not block Trim. The trimmer's acquisition helps the stalled advance
// to completion and then reclaims; only the stalled goroutine itself
// stays blocked.
func TestLogTrimNotBlockedByStalledConsumer(t *testing.T) {
	gate := make(chan struct{})
	var armed, hit atomic.Bool
	// A codec whose first armed decode blocks: the consumer's own Next
	// execution parks inside the critical section. Helper re-executions
	// see the consumed gate and run through, which is the point.
	vc := CodecFunc(1,
		func(v uint64, dst []uint64) { dst[0] = v },
		func(src []uint64) uint64 {
			if armed.Load() && hit.CompareAndSwap(false, true) {
				<-gate
			}
			return src[0]
		})
	m := newManager(t, WithKappa(4), WithMaxLocks(2),
		WithMaxCriticalSteps(LogCriticalSteps(1, 8, 2, 16)), WithDelayConstants(1, 1))
	lg, err := NewLogOf[uint64](m, vc, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 32; i++ {
		if !lg.TryAppend(i) {
			t.Fatal("setup append failed")
		}
	}
	for i := 0; i < 16; i++ {
		if _, ok := cur.TryNext(); !ok {
			t.Fatal("setup read failed")
		}
	}
	armed.Store(true)
	stalled := make(chan uint64, 1)
	go func() {
		v, _ := cur.TryNext()
		stalled <- v
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !hit.Load() {
		if time.Now().After(deadline) {
			t.Fatal("consumer never reached the stall point")
		}
		time.Sleep(time.Millisecond)
	}
	// The consumer is parked inside its critical section, holding both
	// locks. Trim must still complete: its acquisition of the shard
	// lock helps the advance finish, sees min position 17, and frees
	// the consumed 16-entry segment.
	done := make(chan int, 1)
	go func() { done <- lg.Trim() }()
	select {
	case freed := <-done:
		if freed != 16 {
			t.Fatalf("Trim freed %d, want 16", freed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Trim blocked behind a stalled consumer")
	}
	// Release the consumer; the helped advance took effect exactly
	// once, so it returns entry 16 and the backlog is 15.
	close(gate)
	if v := <-stalled; v != 16 {
		t.Fatalf("stalled read returned %d, want 16", v)
	}
	if lag := cur.Lag(); lag != 15 {
		t.Fatalf("lag after stalled read = %d, want 15", lag)
	}
}

func TestLogAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	m := newManager(t, WithUnknownBounds(4), WithMaxLocks(2),
		WithMaxCriticalSteps(LogCriticalSteps(1, 1, 2, 16)))
	lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(64),
		WithLogSegment(16), WithLogConsumers(2), WithLogBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := lg.NewCursor()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 512; i++ {
		if !lg.TryAppend(i) {
			t.Fatal("warmup append failed")
		}
		if _, ok := cur.TryNext(); !ok {
			t.Fatal("warmup read failed")
		}
	}
	// The scalar append and cursor-advance frames keep both hot paths
	// allocation-free (in-section auto-trim included: the warmup laps
	// the 64-slot ring eight times).
	avg := testing.AllocsPerRun(400, func() {
		if !lg.TryAppend(7) {
			t.Fatal("append failed")
		}
		if _, ok := cur.TryNext(); !ok {
			t.Fatal("next failed")
		}
	})
	if avg >= 0.5 {
		t.Fatalf("append+next averages %.2f allocs/op, want < 0.5", avg)
	}
}
