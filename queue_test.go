package wflocks

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// queueManager builds a manager sized for queue tests: κ as given,
// single locks, T covering a batch critical section, and delay
// constants of 1 to keep the fixed stalls short on test machines.
func queueManager(t testing.TB, kappa, batch int) *Manager {
	t.Helper()
	m, err := New(
		WithKappa(kappa),
		WithMaxLocks(1),
		WithMaxCriticalSteps(QueueCriticalSteps(1, batch)),
		WithDelayConstants(1, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQueueBasic(t *testing.T) {
	m := queueManager(t, 2, 4)
	q, err := NewQueue[uint64](m, WithQueueCapacity(4), WithQueueBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue on an empty queue succeeded")
	}
	for v := uint64(1); v <= 4; v++ {
		if !q.TryEnqueue(v * 10) {
			t.Fatalf("TryEnqueue(%d) failed below capacity", v*10)
		}
	}
	if q.TryEnqueue(99) {
		t.Fatal("TryEnqueue succeeded on a full queue")
	}
	if got := q.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for v := uint64(1); v <= 4; v++ {
		got, ok := q.TryDequeue()
		if !ok || got != v*10 {
			t.Fatalf("TryDequeue = (%d, %v), want (%d, true)", got, ok, v*10)
		}
	}
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("TryDequeue on a drained queue succeeded")
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len after drain = %d, want 0", got)
	}
}

func TestQueueWraparound(t *testing.T) {
	m := queueManager(t, 2, 1)
	q, err := NewQueue[uint64](m, WithQueueCapacity(4), WithQueueBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	// Three laps of interleaved traffic: every slot is reused several
	// times, with the queue length oscillating across the full/empty
	// boundary.
	next := uint64(0) // next value to dequeue
	sent := uint64(0) // next value to enqueue
	for lap := 0; lap < 3; lap++ {
		for sent < next+4 { // fill
			if !q.TryEnqueue(sent) {
				t.Fatalf("fill enqueue(%d) failed at Len=%d", sent, q.Len())
			}
			sent++
		}
		for next+1 < sent { // drain to one element
			got, ok := q.TryDequeue()
			if !ok || got != next {
				t.Fatalf("drain = (%d, %v), want (%d, true)", got, ok, next)
			}
			next++
		}
	}
	for next < sent {
		got, ok := q.TryDequeue()
		if !ok || got != next {
			t.Fatalf("final drain = (%d, %v), want (%d, true)", got, ok, next)
		}
		next++
	}
}

func TestQueueStatsExact(t *testing.T) {
	m := queueManager(t, 2, 1)
	q, err := NewQueue[uint64](m, WithQueueCapacity(2), WithQueueBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	q.TryEnqueue(1)
	q.TryEnqueue(2)
	q.TryEnqueue(3) // full
	q.TryDequeue()
	q.TryDequeue()
	q.TryDequeue() // empty
	s := q.Stats()
	if s.Enqueues != 2 || s.Dequeues != 2 || s.FullRejects != 1 || s.EmptyRejects != 1 {
		t.Fatalf("stats = %+v, want 2 enq, 2 deq, 1 full, 1 empty", s)
	}
	if s.Len != 0 || s.Capacity != 2 {
		t.Fatalf("stats shape = len %d cap %d, want 0/2", s.Len, s.Capacity)
	}
	if s.Lock.Attempts == 0 || s.Lock.Wins == 0 {
		t.Fatal("lock counters did not record the operations")
	}
}

func TestQueueBlockingCancellation(t *testing.T) {
	m := queueManager(t, 2, 1)
	q, err := NewQueue[uint64](m, WithQueueCapacity(2), WithQueueBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := q.Dequeue(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Dequeue on empty = %v, want ErrCanceled", err)
	}
	q.TryEnqueue(1)
	q.TryEnqueue(2)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel2()
	if err := q.Enqueue(ctx2, 3); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Enqueue on full = %v, want ErrCanceled", err)
	}
}

func TestQueueBlockingHandoff(t *testing.T) {
	m := queueManager(t, 4, 1)
	q, err := NewQueue[uint64](m, WithQueueCapacity(2), WithQueueBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got := make(chan uint64, 1)
	go func() {
		v, err := q.Dequeue(ctx)
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	if err := q.Enqueue(ctx, 42); err != nil {
		t.Fatal(err)
	}
	if v := <-got; v != 42 {
		t.Fatalf("handoff delivered %d, want 42", v)
	}
}

func TestQueueBatch(t *testing.T) {
	m := queueManager(t, 2, 3)
	q, err := NewQueueOf[uint64](m, IntegerCodec[uint64](),
		WithQueueCapacity(8), WithQueueBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	vs := []uint64{1, 2, 3, 4, 5, 6, 7}
	n, err := q.EnqueueBatch(ctx, vs)
	if err != nil || n != len(vs) {
		t.Fatalf("EnqueueBatch = (%d, %v), want (%d, nil)", n, err, len(vs))
	}
	// Chunks of 3 preserve global FIFO order on the single ring.
	got, err := q.DequeueBatch(ctx, 5)
	if err != nil || len(got) != 5 {
		t.Fatalf("DequeueBatch = (%v, %v), want 5 elements", got, err)
	}
	for i, v := range got {
		if v != uint64(i+1) {
			t.Fatalf("batch order: got[%d] = %d, want %d", i, v, i+1)
		}
	}
	// DequeueBatch does not wait once it holds elements: asking for
	// more than remain returns what is there.
	got, err = q.DequeueBatch(ctx, 100)
	if err != nil || len(got) != 2 || got[0] != 6 || got[1] != 7 {
		t.Fatalf("tail DequeueBatch = (%v, %v), want [6 7]", got, err)
	}
	// Empty-handed with a dead context: the cancellation surfaces.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := q.DequeueBatch(cctx, 1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled DequeueBatch = %v, want ErrCanceled", err)
	}
	// A canceled EnqueueBatch reports how far it got.
	q2, err := NewQueue[uint64](m, WithQueueCapacity(2), WithQueueBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	tctx, tcancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer tcancel()
	n, err = q2.EnqueueBatch(tctx, []uint64{1, 2, 3, 4})
	if !errors.Is(err, ErrCanceled) || n != 2 {
		t.Fatalf("overfull EnqueueBatch = (%d, %v), want (2, ErrCanceled)", n, err)
	}
}

func TestQueueBatchOversizedRequest(t *testing.T) {
	m := queueManager(t, 2, 2)
	q, err := NewQueue[uint64](m, WithQueueCapacity(4), WithQueueBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// A batch larger than the whole queue still goes through: chunks
	// are bounded by the batch size and a concurrent consumer makes
	// room between chunks.
	var drained []uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for len(drained) < 10 {
			if v, ok := q.TryDequeue(); ok {
				drained = append(drained, v)
			} else {
				runtime.Gosched()
			}
		}
	}()
	vs := make([]uint64, 10)
	for i := range vs {
		vs[i] = uint64(i)
	}
	n, err := q.EnqueueBatch(ctx, vs)
	if err != nil || n != 10 {
		t.Fatalf("EnqueueBatch = (%d, %v), want (10, nil)", n, err)
	}
	wg.Wait()
	for i, v := range drained {
		if v != uint64(i) {
			t.Fatalf("drained[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestQueueConcurrentConservation(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 200
	)
	m := queueManager(t, producers+consumers, 4)
	q, err := NewQueue[uint64](m, WithQueueCapacity(16), WithQueueBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wantSum, gotSum, consumed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := uint64(w*perProd + i + 1)
				wantSum.Add(v)
				if err := q.Enqueue(ctx, v); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	const total = producers * perProd
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if consumed.Load() >= total {
					return
				}
				if v, ok := q.TryDequeue(); ok {
					gotSum.Add(v)
					consumed.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	if gotSum.Load() != wantSum.Load() {
		t.Fatalf("conservation violated: consumed sum %d, produced sum %d", gotSum.Load(), wantSum.Load())
	}
	s := q.Stats()
	if s.Enqueues != total || s.Dequeues != total || s.Len != 0 {
		t.Fatalf("quiescent stats = %d enq, %d deq, len %d; want %d/%d/0", s.Enqueues, s.Dequeues, s.Len, total, total)
	}
}

func TestQueueOptionValidation(t *testing.T) {
	m := queueManager(t, 2, 8)
	if _, err := NewQueue[uint64](m, WithQueueCapacity(0)); err == nil {
		t.Fatal("WithQueueCapacity(0) accepted")
	}
	if _, err := NewQueue[uint64](m, WithQueueBatch(-1)); err == nil {
		t.Fatal("WithQueueBatch(-1) accepted")
	}
	// Capacity rounds up to a power of two.
	q, err := NewQueue[uint64](m, WithQueueCapacity(5))
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 {
		t.Fatalf("Cap after rounding = %d, want 8", q.Cap())
	}
	// A batch the manager's T cannot cover is a construction error.
	small, err := New(WithKappa(2), WithMaxLocks(1),
		WithMaxCriticalSteps(QueueCriticalSteps(1, 1)), WithDelayConstants(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewQueue[uint64](small, WithQueueBatch(64)); err == nil {
		t.Fatal("oversized batch budget accepted")
	}
	if _, err := NewQueue[uint64](small); err == nil {
		t.Fatal("default batch accepted against a 1-item budget")
	}
	if _, err := NewQueue[uint64](small, WithQueueBatch(1)); err != nil {
		t.Fatalf("1-item batch rejected: %v", err)
	}
}

// TestQueueMultiWordElements exercises a 2-word struct codec end to
// end: encodes happen inside critical sections, so multi-word elements
// are the shape that catches budget under-counting.
func TestQueueMultiWordElements(t *testing.T) {
	type job struct{ ID, Priority uint64 }
	codec := CodecFunc(2,
		func(j job, dst []uint64) { dst[0], dst[1] = j.ID, j.Priority },
		func(src []uint64) job { return job{src[0], src[1]} })
	m, err := New(
		WithKappa(2),
		WithMaxLocks(1),
		WithMaxCriticalSteps(QueueCriticalSteps(2, 2)),
		WithDelayConstants(1, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueueOf[job](m, codec, WithQueueCapacity(4), WithQueueBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if !q.TryEnqueue(job{ID: i, Priority: 100 - i}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := uint64(0); i < 4; i++ {
		j, ok := q.TryDequeue()
		if !ok || j.ID != i || j.Priority != 100-i {
			t.Fatalf("dequeue %d = (%+v, %v)", i, j, ok)
		}
	}
}
