package wflocks

import (
	"context"
	"sync/atomic"
	"time"

	"wflocks/internal/arena"
	"wflocks/internal/core"
	"wflocks/internal/idem"
	"wflocks/internal/table"
)

// Allocation-free single-key map operations.
//
// The generic Do path builds a closure per call (the captures escape to
// the heap) and routes results through freshly allocated cells, because
// a stalled attempt's body may be re-executed by helpers concurrently.
// The operation frame below removes both costs for the single-key hot
// path: a frame drawn from the owner's bump arena carries the operation
// kind and parameters as plain fields — safe precisely because the
// frame is fresh per call and never recycled, so a straggling helper
// always reads the parameters its exec was created with — and results
// are published through atomic fields on the frame. Every run of the
// body derives identical results from the canonical response log, so
// the concurrent stores are race-free in effect (see idem.Body).

// mapFrame operation kinds.
const (
	mopGet uint8 = iota + 1
	mopPut
	mopDelete
	mopUpdate
)

// mapFrame result bits.
const (
	mresFound uint32 = 1 << iota
	mresFull
)

// mapFrame is a single-key critical section in frame form: one
// arena-allocated object per call, implementing idem.Thunk.
type mapFrame[K comparable, V any] struct {
	mp   *Map[K, V]
	sh   *table.Shard
	h    uint64
	home int
	op   uint8
	k    K
	v    V
	fn   func(old V, ok bool) (V, bool)

	// Results, published by every run with identical derived values.
	// resWord holds the scalar-encoded found value (Get only).
	resWord atomic.Uint64
	resBits atomic.Uint32
}

// RunThunk implements idem.Thunk: the frame's operation as a
// deterministic critical-section body.
func (f *mapFrame[K, V]) RunThunk(r *idem.Run) {
	eng := f.mp.eng
	switch f.op {
	case mopGet:
		i, ok, _ := eng.Find(r, f.sh, f.h, f.home, f.k)
		if !ok {
			return
		}
		f.resWord.Store(f.mp.scalarV.EncodeWord(eng.Val(r, f.sh, i)))
		f.resBits.Store(mresFound)
	case mopPut:
		eng.BumpVer(r, f.sh)
		i, ok, free := eng.Find(r, f.sh, f.h, f.home, f.k)
		switch {
		case ok:
			eng.SetVal(r, f.sh, i, f.v)
		case free < 0:
			f.resBits.Store(mresFull)
		default:
			eng.Insert(r, f.sh, free, f.h, f.k, f.v)
		}
		eng.BumpVer(r, f.sh)
	case mopDelete:
		eng.BumpVer(r, f.sh)
		if i, ok, _ := eng.Find(r, f.sh, f.h, f.home, f.k); ok {
			eng.Remove(r, f.sh, i)
			f.resBits.Store(mresFound)
		}
		eng.BumpVer(r, f.sh)
	case mopUpdate:
		eng.BumpVer(r, f.sh)
		i, ok, free := eng.Find(r, f.sh, f.h, f.home, f.k)
		var old V
		if ok {
			old = eng.Val(r, f.sh, i)
		}
		nv, keep := f.fn(old, ok)
		switch {
		case keep && ok:
			eng.SetVal(r, f.sh, i, nv)
		case keep && free < 0:
			f.resBits.Store(mresFull)
		case keep:
			eng.Insert(r, f.sh, free, f.h, f.k, nv)
		case ok:
			eng.Remove(r, f.sh, i)
		}
		eng.BumpVer(r, f.sh)
	}
}

// mapFrameFor draws a fresh frame for this map's type from p's
// per-structure arenas (created on the goroutine's first use).
func mapFrameFor[K comparable, V any](p *Process) *mapFrame[K, V] {
	for _, s := range p.structs {
		if a, ok := s.(*arena.Arena[mapFrame[K, V]]); ok {
			return a.New()
		}
	}
	a := &arena.Arena[mapFrame[K, V]]{}
	p.structs = append(p.structs, a)
	return a.New()
}

// frame prepares a fresh operation frame for one single-key call.
func (mp *Map[K, V]) frame(p *Process, op uint8, sh *table.Shard, h uint64, home int, k K) *mapFrame[K, V] {
	f := mapFrameFor[K, V](p)
	f.mp, f.sh, f.h, f.home, f.k, f.op = mp, sh, h, home, k, op
	return f
}

// lockFrame acquires a single lock and runs frame t to completion,
// retrying failed attempts under the manager's RetryPolicy. Each retry
// creates a fresh exec over the same frame, which is safe: a lost
// exec's body never runs, so only the winning exec's (identical)
// parameters ever take effect.
func (m *Manager) lockFrame(p *Process, l *Lock, maxOps int, t idem.Thunk) {
	if cap(p.lockBuf) < 1 {
		p.lockBuf = make([]*core.Lock, 1)
	}
	locks := p.lockBuf[:1]
	locks[0] = l.inner
	var t0 time.Time
	if m.rec != nil {
		t0 = time.Now()
	}
	for attempt := 1; ; attempt++ {
		thunk := idem.NewExecIn(p.env, t, maxOps)
		if m.sys.TryLocks(p.env, locks, thunk) {
			if m.rec != nil {
				m.rec.RecAcquire(p.Pid(), uint64(time.Since(t0)))
			}
			return
		}
		m.retry.Wait(context.Background(), attempt)
	}
}
