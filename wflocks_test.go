package wflocks

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newManager(t *testing.T, opts ...Option) *Manager {
	t.Helper()
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSingleProcessTransfer(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(2), WithMaxCriticalSteps(16))
	a, b := m.NewLock(), m.NewLock()
	accA, accB := NewCell(uint64(100)), NewCell(uint64(0))
	p := m.NewProcess()
	ok, err := m.TryLock(p, []*Lock{a, b}, 8, func(tx *Tx) {
		v := Get(tx, accA)
		Put(tx, accA, v-30)
		w := Get(tx, accB)
		Put(tx, accB, w+30)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("uncontended TryLock failed")
	}
	if got := accA.Get(p); got != 70 {
		t.Fatalf("accA = %d, want 70", got)
	}
	if got := accB.Get(p); got != 30 {
		t.Fatalf("accB = %d, want 30", got)
	}
}

func TestCallValidation(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(2), WithMaxCriticalSteps(16))
	a, b, c := m.NewLock(), m.NewLock(), m.NewLock()
	p := m.NewProcess()
	noop := func(*Tx) {}

	if _, err := m.TryLock(p, nil, 4, noop); !errors.Is(err, ErrNoLocks) {
		t.Fatalf("empty lock set: err = %v, want ErrNoLocks", err)
	}
	if _, err := m.TryLock(p, []*Lock{a, b, c}, 4, noop); !errors.Is(err, ErrTooManyLocks) {
		t.Fatalf("oversized lock set: err = %v, want ErrTooManyLocks", err)
	}
	if _, err := m.TryLock(p, []*Lock{a}, 0, noop); !errors.Is(err, ErrMaxOpsExceeded) {
		t.Fatalf("zero maxOps: err = %v, want ErrMaxOpsExceeded", err)
	}
	if _, err := m.TryLock(p, []*Lock{a}, 17, noop); !errors.Is(err, ErrMaxOpsExceeded) {
		t.Fatalf("maxOps over T: err = %v, want ErrMaxOpsExceeded", err)
	}
	if err := m.Do(nil, 4, noop); !errors.Is(err, ErrNoLocks) {
		t.Fatalf("Do with empty lock set: err = %v, want ErrNoLocks", err)
	}
	if _, err := m.Lock(p, []*Lock{a, b, c}, 4, noop); !errors.Is(err, ErrTooManyLocks) {
		t.Fatalf("Lock with oversized set: err = %v, want ErrTooManyLocks", err)
	}
}

func TestFailedTryLockDoesNotRunBody(t *testing.T) {
	m := newManager(t, WithKappa(4), WithMaxLocks(1), WithMaxCriticalSteps(16))
	l := m.NewLock()
	c := NewCell(uint64(0))
	var wg sync.WaitGroup
	var wins, losses, bodyRuns atomicCounter
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			for k := 0; k < 200; k++ {
				ok, err := m.TryLock(p, []*Lock{l}, 4, func(tx *Tx) {
					bodyRuns.inc()
					v := Get(tx, c)
					Put(tx, c, v+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					wins.inc()
				} else {
					losses.inc()
				}
			}
		}()
	}
	wg.Wait()
	p := m.NewProcess()
	got := c.Get(p)
	if got != wins.get() {
		t.Fatalf("counter = %d, wins = %d: lost or duplicated critical sections", got, wins.get())
	}
	// bodyRuns can exceed wins (helpers re-enter the body; effects are
	// idempotent) but must be zero if wins is zero.
	if wins.get() == 0 && bodyRuns.get() != 0 {
		t.Fatal("body ran despite zero wins")
	}
	s := m.Stats()
	if s.Attempts != 800 || s.Wins != wins.get() {
		t.Fatalf("stats = (%d, %d), want (800, %d)", s.Attempts, s.Wins, wins.get())
	}
}

func TestLockRetriesUntilSuccess(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(2), WithMaxCriticalSteps(16))
	a, b := m.NewLock(), m.NewLock()
	c := NewCell(uint64(0))
	var wg sync.WaitGroup
	const perGoroutine = 50
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			for k := 0; k < perGoroutine; k++ {
				attempts, err := m.Lock(p, []*Lock{a, b}, 4, func(tx *Tx) {
					v := Get(tx, c)
					Put(tx, c, v+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
				if attempts < 1 {
					t.Error("Lock reported zero attempts")
				}
			}
		}()
	}
	wg.Wait()
	if got := Load(m, c); got != 2*perGoroutine {
		t.Fatalf("counter = %d, want %d", got, 2*perGoroutine)
	}
}

func TestDoPooledPath(t *testing.T) {
	m := newManager(t, WithKappa(4), WithMaxLocks(2), WithMaxCriticalSteps(16))
	a, b := m.NewLock(), m.NewLock()
	c := NewCell(0)
	var wg sync.WaitGroup
	const workers, rounds = 4, 50
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				if err := m.Do([]*Lock{a, b}, 4, func(tx *Tx) {
					Put(tx, c, Get(tx, c)+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := Load(m, c); got != workers*rounds {
		t.Fatalf("counter = %d, want %d", got, workers*rounds)
	}
}

func TestUnknownBoundsMode(t *testing.T) {
	m := newManager(t, WithUnknownBounds(4), WithMaxLocks(2), WithMaxCriticalSteps(16))
	a, b := m.NewLock(), m.NewLock()
	c := NewCell(uint64(0))
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				if err := m.Do([]*Lock{a, b}, 4, func(tx *Tx) {
					v := Get(tx, c)
					Put(tx, c, v+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := Load(m, c); got != 90 {
		t.Fatalf("counter = %d, want 90", got)
	}
}

func TestCASInCriticalSection(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(1), WithMaxCriticalSteps(16))
	l := m.NewLock()
	c := NewCell(uint64(5))
	p := m.NewProcess()
	var okInner, failInner bool
	ok, err := m.TryLock(p, []*Lock{l}, 4, func(tx *Tx) {
		okInner = CompareSwap(tx, c, 5, 6)
		failInner = CompareSwap(tx, c, 5, 7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("TryLock failed")
	}
	if !okInner || failInner {
		t.Fatalf("CAS results = %v, %v; want true, false", okInner, failInner)
	}
	if got := c.Get(p); got != 6 {
		t.Fatalf("cell = %d, want 6", got)
	}
}

func TestProcessIdentity(t *testing.T) {
	m := newManager(t, WithKappa(2))
	p0, p1 := m.NewProcess(), m.NewProcess()
	if p0.Pid() == p1.Pid() {
		t.Fatal("process ids collide")
	}
	if p0.Steps() != 0 {
		t.Fatal("fresh process has steps")
	}
}

func TestAcquireReleaseReusesHandles(t *testing.T) {
	m := newManager(t, WithKappa(2))
	// Under the race detector sync.Pool randomly drops a fraction of
	// Puts, so assert reuse statistically over many round trips rather
	// than on any single one: distinct pids must stay well below the
	// iteration count.
	const iters = 100
	pids := make(map[int]bool)
	for i := 0; i < iters; i++ {
		p := m.Acquire()
		pids[p.Pid()] = true
		m.Release(p)
	}
	if len(pids) >= iters {
		t.Fatalf("no handle reuse across %d sequential acquire/release round trips", iters)
	}
}

func TestCellGetSet(t *testing.T) {
	m := newManager(t, WithKappa(2))
	p := m.NewProcess()
	c := NewCell(uint64(9))
	if c.Get(p) != 9 {
		t.Fatal("initial value wrong")
	}
	c.Set(p, 11)
	if c.Get(p) != 11 {
		t.Fatal("Set not visible")
	}
	Store(m, c, 12)
	if Load(m, c) != 12 {
		t.Fatal("Store not visible through Load")
	}
}

func TestDelayConstantOverride(t *testing.T) {
	// The fast path would skip both configurations' delays entirely on
	// this uncontended attempt; disable it so the constants are visible.
	m := newManager(t, WithKappa(2), WithDelayConstants(2, 4), WithSeed(42), WithFastPath(false))
	p := m.NewProcess()
	l := m.NewLock()
	before := p.Steps()
	if ok, err := m.TryLock(p, []*Lock{l}, 2, func(tx *Tx) {}); err != nil || !ok {
		t.Fatalf("TryLock failed: ok=%v err=%v", ok, err)
	}
	small := p.Steps() - before

	m2 := newManager(t, WithKappa(2), WithDelayConstants(16, 32), WithSeed(42), WithFastPath(false))
	p2 := m2.NewProcess()
	l2 := m2.NewLock()
	before2 := p2.Steps()
	if ok, err := m2.TryLock(p2, []*Lock{l2}, 2, func(tx *Tx) {}); err != nil || !ok {
		t.Fatalf("TryLock failed: ok=%v err=%v", ok, err)
	}
	large := p2.Steps() - before2
	if large <= small {
		t.Fatalf("larger delay constants did not lengthen the attempt: %d vs %d", small, large)
	}
}

// atomicCounter is a tiny test helper.
type atomicCounter struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomicCounter) inc() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (a *atomicCounter) get() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// TestFastPathSkipsDelays pins the uncontended fast path: an attempt
// that observes every requested lock free must skip the delay stalls
// entirely — its step count stays far below the T0 stall alone — and
// must be visible in StatsSnapshot.FastPath. The WithFastPath(false)
// control on the identical configuration pays the full delays.
func TestFastPathSkipsDelays(t *testing.T) {
	// T0 = c·κ²L²T with T = maxCritical × the idem step factor; these
	// constants make it ≥ 100k steps, so the two regimes cannot be
	// confused by protocol noise.
	opts := []Option{WithKappa(4), WithMaxLocks(2), WithDelayConstants(4, 4), WithSeed(7)}

	m := newManager(t, opts...)
	p := m.NewProcess()
	l := m.NewLock()
	before := p.Steps()
	if ok, err := m.TryLock(p, []*Lock{l}, 2, func(tx *Tx) {}); err != nil || !ok {
		t.Fatalf("TryLock failed: ok=%v err=%v", ok, err)
	}
	fast := p.Steps() - before
	if got := m.Stats().FastPath; got != 1 {
		t.Fatalf("FastPath counter = %d, want 1", got)
	}
	if fast > 5000 {
		t.Fatalf("fast-path attempt took %d steps; the delay machinery was not skipped", fast)
	}

	m2 := newManager(t, append(opts, WithFastPath(false))...)
	p2 := m2.NewProcess()
	l2 := m2.NewLock()
	before2 := p2.Steps()
	if ok, err := m2.TryLock(p2, []*Lock{l2}, 2, func(tx *Tx) {}); err != nil || !ok {
		t.Fatalf("TryLock failed: ok=%v err=%v", ok, err)
	}
	slow := p2.Steps() - before2
	if got := m2.Stats().FastPath; got != 0 {
		t.Fatalf("FastPath counter = %d with the fast path disabled", got)
	}
	if slow < 10*fast {
		t.Fatalf("disabled fast path took %d steps vs %d — delays missing from the control", slow, fast)
	}
}

// TestFastPathObservesContention pins the other half of the fast-path
// contract: an attempt that sees another attempt announced on its lock
// must keep its delays (the skip only ever fires on observed-free
// locks, where the fairness race is symmetric).
func TestFastPathObservesContention(t *testing.T) {
	m := newManager(t, WithKappa(4), WithMaxLocks(2), WithDelayConstants(4, 4), WithSeed(7))
	l := m.NewLock()
	stop := make(chan struct{})
	done := make(chan struct{})
	// The holder sleeps inside its critical section so its announcement
	// stays visible long enough for the observer's attempt to overlap
	// it even on one core; the inside flag tells the observer when the
	// section is live. The body touches no cells, so helper
	// re-execution is trivially idempotent (flag stores are identical,
	// helpers just sleep too).
	var inside atomic.Bool
	go func() {
		defer close(done)
		p := m.NewProcess()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = m.Lock(p, []*Lock{l}, 2, func(tx *Tx) {
				inside.Store(true)
				time.Sleep(500 * time.Microsecond)
			})
		}
	}()
	p := m.NewProcess()
	delayed := false
	for i := 0; i < 50 && !delayed; i++ {
		inside.Store(false)
		for !inside.Load() {
			runtime.Gosched()
		}
		before := p.Steps()
		if _, err := m.Lock(p, []*Lock{l}, 2, func(tx *Tx) {}); err != nil {
			t.Fatal(err)
		}
		// Any attempt that paid the ≥100k-step T0 stall saw contention.
		if p.Steps()-before > 50000 {
			delayed = true
		}
	}
	close(stop)
	<-done
	if !delayed {
		t.Fatal("no contended attempt ever paid its delays; the fast path is firing under contention")
	}
}

// TestDoAllocs pins the allocation-free hot path: after arena and pool
// warmup, a steady-state single-word Do averages well under one heap
// allocation per call (the bump arenas allocate one chunk per ~256
// objects, so the amortized average is a fraction; it can never be
// exactly zero).
func TestDoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	m := newManager(t, WithUnknownBounds(4))
	l := m.NewLock()
	c := NewCell(uint64(0))
	locks := []*Lock{l}
	body := func(tx *Tx) {
		Put(tx, c, Get(tx, c)+1)
	}
	for i := 0; i < 512; i++ {
		if err := m.Do(locks, 2, body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(400, func() {
		if err := m.Do(locks, 2, body); err != nil {
			t.Fatal(err)
		}
	})
	if avg >= 0.5 {
		t.Fatalf("Do averages %.2f allocs/op, want < 0.5", avg)
	}
}

// TestMapAllocs pins the map hot paths: a steady-state Get (seqlock
// fast path) and Put (operation frame) on single-word codecs average
// well under one allocation per call.
func TestMapAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	m := newManager(t, WithUnknownBounds(4), WithMaxLocks(1),
		WithMaxCriticalSteps(MapCriticalSteps(64, 1, 1)))
	mp, err := NewMap[uint64, uint64](m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		if err := mp.Put(uint64(i%64), uint64(i)); err != nil {
			t.Fatal(err)
		}
		mp.Get(uint64(i % 64))
	}
	avgGet := testing.AllocsPerRun(400, func() {
		mp.Get(42)
	})
	if avgGet >= 0.5 {
		t.Fatalf("Get averages %.2f allocs/op, want < 0.5", avgGet)
	}
	avgPut := testing.AllocsPerRun(400, func() {
		if err := mp.Put(42, 7); err != nil {
			t.Fatal(err)
		}
	})
	if avgPut >= 0.5 {
		t.Fatalf("Put averages %.2f allocs/op, want < 0.5", avgPut)
	}
}
