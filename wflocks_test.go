package wflocks

import (
	"sync"
	"testing"
)

func newManager(t *testing.T, opts ...Option) *Manager {
	t.Helper()
	m, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRequiresBounds(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("managerless of κ accepted")
	}
	if _, err := New(WithKappa(2)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := New(WithUnknownBounds(4)); err != nil {
		t.Fatalf("unknown-bounds config rejected: %v", err)
	}
	if _, err := New(WithKappa(2), WithMaxLocks(0)); err == nil {
		t.Fatal("zero MaxLocks accepted")
	}
}

func TestSingleProcessTransfer(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(2), WithMaxCriticalSteps(16))
	a, b := m.NewLock(), m.NewLock()
	accA, accB := NewCell(100), NewCell(0)
	p := m.NewProcess()
	ok := m.TryLock(p, []*Lock{a, b}, 8, func(tx *Tx) {
		v := tx.Read(accA)
		tx.Write(accA, v-30)
		w := tx.Read(accB)
		tx.Write(accB, w+30)
	})
	if !ok {
		t.Fatal("uncontended TryLock failed")
	}
	if got := accA.Get(p); got != 70 {
		t.Fatalf("accA = %d, want 70", got)
	}
	if got := accB.Get(p); got != 30 {
		t.Fatalf("accB = %d, want 30", got)
	}
}

func TestFailedTryLockDoesNotRunBody(t *testing.T) {
	m := newManager(t, WithKappa(4), WithMaxLocks(1), WithMaxCriticalSteps(16))
	l := m.NewLock()
	c := NewCell(0)
	var wg sync.WaitGroup
	var wins, losses, bodyRuns atomicCounter
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			for k := 0; k < 200; k++ {
				ok := m.TryLock(p, []*Lock{l}, 4, func(tx *Tx) {
					bodyRuns.inc()
					v := tx.Read(c)
					tx.Write(c, v+1)
				})
				if ok {
					wins.inc()
				} else {
					losses.inc()
				}
			}
		}()
	}
	wg.Wait()
	p := m.NewProcess()
	got := c.Get(p)
	if got != wins.get() {
		t.Fatalf("counter = %d, wins = %d: lost or duplicated critical sections", got, wins.get())
	}
	// bodyRuns can exceed wins (helpers re-enter the body; effects are
	// idempotent) but must be zero if wins is zero.
	if wins.get() == 0 && bodyRuns.get() != 0 {
		t.Fatal("body ran despite zero wins")
	}
	a, w := m.Stats()
	if a != 800 || w != wins.get() {
		t.Fatalf("stats = (%d, %d), want (800, %d)", a, w, wins.get())
	}
}

func TestLockRetriesUntilSuccess(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(2), WithMaxCriticalSteps(16))
	a, b := m.NewLock(), m.NewLock()
	c := NewCell(0)
	var wg sync.WaitGroup
	const perGoroutine = 50
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			for k := 0; k < perGoroutine; k++ {
				attempts := m.Lock(p, []*Lock{a, b}, 4, func(tx *Tx) {
					v := tx.Read(c)
					tx.Write(c, v+1)
				})
				if attempts < 1 {
					t.Error("Lock reported zero attempts")
				}
			}
		}()
	}
	wg.Wait()
	p := m.NewProcess()
	if got := c.Get(p); got != 2*perGoroutine {
		t.Fatalf("counter = %d, want %d", got, 2*perGoroutine)
	}
}

func TestUnknownBoundsMode(t *testing.T) {
	m := newManager(t, WithUnknownBounds(3), WithMaxLocks(2), WithMaxCriticalSteps(16))
	a, b := m.NewLock(), m.NewLock()
	c := NewCell(0)
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			for k := 0; k < 30; k++ {
				m.Lock(p, []*Lock{a, b}, 4, func(tx *Tx) {
					v := tx.Read(c)
					tx.Write(c, v+1)
				})
			}
		}()
	}
	wg.Wait()
	p := m.NewProcess()
	if got := c.Get(p); got != 90 {
		t.Fatalf("counter = %d, want 90", got)
	}
}

func TestCASInCriticalSection(t *testing.T) {
	m := newManager(t, WithKappa(2), WithMaxLocks(1), WithMaxCriticalSteps(16))
	l := m.NewLock()
	c := NewCell(5)
	p := m.NewProcess()
	var okInner, failInner bool
	if !m.TryLock(p, []*Lock{l}, 4, func(tx *Tx) {
		okInner = tx.CAS(c, 5, 6)
		failInner = tx.CAS(c, 5, 7)
	}) {
		t.Fatal("TryLock failed")
	}
	if !okInner || failInner {
		t.Fatalf("CAS results = %v, %v; want true, false", okInner, failInner)
	}
	if got := c.Get(p); got != 6 {
		t.Fatalf("cell = %d, want 6", got)
	}
}

func TestProcessIdentity(t *testing.T) {
	m := newManager(t, WithKappa(2))
	p0, p1 := m.NewProcess(), m.NewProcess()
	if p0.Pid() == p1.Pid() {
		t.Fatal("process ids collide")
	}
	if p0.Steps() != 0 {
		t.Fatal("fresh process has steps")
	}
}

func TestCellGetSet(t *testing.T) {
	m := newManager(t, WithKappa(2))
	p := m.NewProcess()
	c := NewCell(9)
	if c.Get(p) != 9 {
		t.Fatal("initial value wrong")
	}
	c.Set(p, 11)
	if c.Get(p) != 11 {
		t.Fatal("Set not visible")
	}
}

func TestDelayConstantOverride(t *testing.T) {
	m := newManager(t, WithKappa(2), WithDelayConstants(2, 4), WithSeed(42))
	p := m.NewProcess()
	l := m.NewLock()
	before := p.Steps()
	if !m.TryLock(p, []*Lock{l}, 2, func(tx *Tx) {}) {
		t.Fatal("TryLock failed")
	}
	small := p.Steps() - before

	m2 := newManager(t, WithKappa(2), WithDelayConstants(16, 32), WithSeed(42))
	p2 := m2.NewProcess()
	l2 := m2.NewLock()
	before2 := p2.Steps()
	if !m2.TryLock(p2, []*Lock{l2}, 2, func(tx *Tx) {}) {
		t.Fatal("TryLock failed")
	}
	large := p2.Steps() - before2
	if large <= small {
		t.Fatalf("larger delay constants did not lengthen the attempt: %d vs %d", small, large)
	}
}

// atomicCounter is a tiny test helper.
type atomicCounter struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomicCounter) inc() {
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}

func (a *atomicCounter) get() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}
