package wflocks

import (
	"strings"
	"testing"
)

// Option validation is part of the public contract: New must refuse
// nonsense configurations with descriptive errors instead of building a
// manager whose fairness and wait-freedom guarantees silently no longer
// hold.
func TestNewOptionValidation(t *testing.T) {
	cases := []struct {
		name    string
		opts    []Option
		wantErr string // substring of the error; "" means success
	}{
		{"no bounds at all", nil, "WithKappa or WithUnknownBounds"},
		{"only seed", []Option{WithSeed(7)}, "WithKappa or WithUnknownBounds"},
		{"valid known bounds", []Option{WithKappa(2)}, ""},
		{"valid unknown bounds", []Option{WithUnknownBounds(4)}, ""},
		{"zero kappa", []Option{WithKappa(0)}, "κ must be positive"},
		{"negative kappa", []Option{WithKappa(-3)}, "κ must be positive"},
		{"zero max locks", []Option{WithKappa(2), WithMaxLocks(0)}, "L must be positive"},
		{"negative max locks", []Option{WithKappa(2), WithMaxLocks(-1)}, "L must be positive"},
		{"zero critical steps", []Option{WithKappa(2), WithMaxCriticalSteps(0)}, "T must be positive"},
		{"negative critical steps", []Option{WithKappa(2), WithMaxCriticalSteps(-8)}, "T must be positive"},
		{"zero procs unknown mode", []Option{WithUnknownBounds(0)}, "P must be positive"},
		{"negative procs unknown mode", []Option{WithUnknownBounds(-2)}, "P must be positive"},
		{"zero delay constant", []Option{WithKappa(2), WithDelayConstants(0, 4)}, "constants must be positive"},
		{"negative delay constant", []Option{WithKappa(2), WithDelayConstants(8, -1)}, "constants must be positive"},
		{"nil retry policy", []Option{WithKappa(2), WithRetryPolicy(nil)}, "policy must not be nil"},
		{"full valid config", []Option{
			WithKappa(4), WithMaxLocks(3), WithMaxCriticalSteps(32),
			WithDelayConstants(8, 16), WithSeed(1), WithRetryPolicy(RetryImmediate()),
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := New(tc.opts...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				if m == nil {
					t.Fatal("nil manager without error")
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			if m != nil {
				t.Fatal("non-nil manager alongside error")
			}
		})
	}
}
