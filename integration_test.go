package wflocks_test

import (
	"sync"
	"testing"

	"wflocks"
)

// Integration tests drive the public API end-to-end on real goroutines
// in shapes the examples and experiments care about. Run with -race.

func TestIntegrationStarContention(t *testing.T) {
	// Hub-and-spokes: every worker locks {hub, own spoke}; the hub sees
	// κ = workers contention. Conservation across the hub must hold.
	const workers = 6
	const rounds = 100
	m, err := wflocks.New(
		wflocks.WithKappa(workers),
		wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	hub := m.NewLock()
	hubCell := wflocks.NewCell(0)
	spokes := make([]*wflocks.Lock, workers)
	spokeCells := make([]*wflocks.Cell, workers)
	for i := range spokes {
		spokes[i] = m.NewLock()
		spokeCells[i] = wflocks.NewCell(0)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			for k := 0; k < rounds; k++ {
				m.Lock(p, []*wflocks.Lock{hub, spokes[i]}, 8, func(tx *wflocks.Tx) {
					h := tx.Read(hubCell)
					tx.Write(hubCell, h+1)
					s := tx.Read(spokeCells[i])
					tx.Write(spokeCells[i], s+1)
				})
			}
		}()
	}
	wg.Wait()
	p := m.NewProcess()
	if got := hubCell.Get(p); got != workers*rounds {
		t.Fatalf("hub counter = %d, want %d", got, workers*rounds)
	}
	for i := range spokeCells {
		if got := spokeCells[i].Get(p); got != rounds {
			t.Fatalf("spoke %d counter = %d, want %d", i, got, rounds)
		}
	}
}

func TestIntegrationUnknownBoundsStress(t *testing.T) {
	// Many goroutines, random pairs, unknown-bounds mode, -race.
	const workers = 8
	const rounds = 60
	const locks = 16
	m, err := wflocks.New(
		wflocks.WithUnknownBounds(workers),
		wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(16),
		wflocks.WithSeed(99),
	)
	if err != nil {
		t.Fatal(err)
	}
	ls := make([]*wflocks.Lock, locks)
	cs := make([]*wflocks.Cell, locks)
	for i := range ls {
		ls[i] = m.NewLock()
		cs[i] = wflocks.NewCell(0)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	winsPerLock := make([]uint64, locks)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			state := uint64(w + 1)
			next := func(n int) int {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return int(state % uint64(n))
			}
			local := make([]uint64, locks)
			for k := 0; k < rounds; k++ {
				a := next(locks)
				b := next(locks)
				if a == b {
					b = (b + 1) % locks
				}
				m.Lock(p, []*wflocks.Lock{ls[a], ls[b]}, 8, func(tx *wflocks.Tx) {
					va := tx.Read(cs[a])
					tx.Write(cs[a], va+1)
					vb := tx.Read(cs[b])
					tx.Write(cs[b], vb+1)
				})
				local[a]++
				local[b]++
			}
			mu.Lock()
			for i, n := range local {
				winsPerLock[i] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	p := m.NewProcess()
	for i := range cs {
		if got := cs[i].Get(p); got != winsPerLock[i] {
			t.Fatalf("lock %d counter = %d, want %d (lost or duplicated)", i, got, winsPerLock[i])
		}
	}
}

func TestIntegrationTryLockIndependence(t *testing.T) {
	// Attempts must be retry-friendly: over many attempts under steady
	// contention, a worker's success rate must clear the 1/(κL) floor.
	const workers = 3
	m, err := wflocks.New(
		wflocks.WithKappa(workers),
		wflocks.WithMaxLocks(1),
		wflocks.WithMaxCriticalSteps(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	l := m.NewLock()
	c := wflocks.NewCell(0)
	var wg sync.WaitGroup
	rates := make([]float64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			wins := 0
			const attempts = 300
			for k := 0; k < attempts; k++ {
				if m.TryLock(p, []*wflocks.Lock{l}, 4, func(tx *wflocks.Tx) {
					v := tx.Read(c)
					tx.Write(c, v+1)
				}) {
					wins++
				}
			}
			rates[w] = float64(wins) / float64(attempts)
		}()
	}
	wg.Wait()
	floor := 1.0 / float64(workers)
	for w, r := range rates {
		if r < floor {
			t.Fatalf("worker %d success rate %.3f below floor %.3f", w, r, floor)
		}
	}
}
