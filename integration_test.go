package wflocks_test

import (
	"sync"
	"testing"

	"wflocks"
)

// Integration tests drive the public API end-to-end on real goroutines
// in shapes the examples and experiments care about. Run with -race.

func TestIntegrationStarContention(t *testing.T) {
	// Hub-and-spokes: every worker locks {hub, own spoke}; the hub sees
	// κ = workers contention. Conservation across the hub must hold.
	const workers = 6
	const rounds = 100
	m, err := wflocks.New(
		wflocks.WithKappa(workers),
		wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	hub := m.NewLock()
	hubCell := wflocks.NewCell(uint64(0))
	spokes := make([]*wflocks.Lock, workers)
	spokeCells := make([]*wflocks.Cell[uint64], workers)
	for i := range spokes {
		spokes[i] = m.NewLock()
		spokeCells[i] = wflocks.NewCell(uint64(0))
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				err := m.Do([]*wflocks.Lock{hub, spokes[i]}, 8, func(tx *wflocks.Tx) {
					h := wflocks.Get(tx, hubCell)
					wflocks.Put(tx, hubCell, h+1)
					s := wflocks.Get(tx, spokeCells[i])
					wflocks.Put(tx, spokeCells[i], s+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := wflocks.Load(m, hubCell); got != workers*rounds {
		t.Fatalf("hub counter = %d, want %d", got, workers*rounds)
	}
	for i := range spokeCells {
		if got := wflocks.Load(m, spokeCells[i]); got != rounds {
			t.Fatalf("spoke %d counter = %d, want %d", i, got, rounds)
		}
	}
	s := m.Stats()
	if s.Wins > s.Attempts || s.Wins != uint64(workers*rounds) {
		t.Fatalf("stats inconsistent: %+v", s)
	}
}

func TestIntegrationUnknownBoundsStress(t *testing.T) {
	// Many goroutines, random pairs, unknown-bounds mode, -race.
	const workers = 8
	const rounds = 60
	const locks = 16
	m, err := wflocks.New(
		wflocks.WithUnknownBounds(workers),
		wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(16),
		wflocks.WithSeed(99),
	)
	if err != nil {
		t.Fatal(err)
	}
	ls := make([]*wflocks.Lock, locks)
	cs := make([]*wflocks.Cell[uint64], locks)
	for i := range ls {
		ls[i] = m.NewLock()
		cs[i] = wflocks.NewCell(uint64(0))
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	winsPerLock := make([]uint64, locks)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			state := uint64(w + 1)
			next := func(n int) int {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				return int(state % uint64(n))
			}
			local := make([]uint64, locks)
			for k := 0; k < rounds; k++ {
				a := next(locks)
				b := next(locks)
				if a == b {
					b = (b + 1) % locks
				}
				err := m.Do([]*wflocks.Lock{ls[a], ls[b]}, 8, func(tx *wflocks.Tx) {
					va := wflocks.Get(tx, cs[a])
					wflocks.Put(tx, cs[a], va+1)
					vb := wflocks.Get(tx, cs[b])
					wflocks.Put(tx, cs[b], vb+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
				local[a]++
				local[b]++
			}
			mu.Lock()
			for i, n := range local {
				winsPerLock[i] += n
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for i := range cs {
		if got := wflocks.Load(m, cs[i]); got != winsPerLock[i] {
			t.Fatalf("lock %d counter = %d, want %d (lost or duplicated)", i, got, winsPerLock[i])
		}
	}
}

func TestIntegrationTryLockIndependence(t *testing.T) {
	// Attempts must be retry-friendly: over many attempts under steady
	// contention, a worker's success rate must clear the 1/(κL) floor.
	const workers = 3
	m, err := wflocks.New(
		wflocks.WithKappa(workers),
		wflocks.WithMaxLocks(1),
		wflocks.WithMaxCriticalSteps(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	var wg sync.WaitGroup
	rates := make([]float64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := m.NewProcess()
			wins := 0
			const attempts = 300
			for k := 0; k < attempts; k++ {
				ok, err := m.TryLock(p, []*wflocks.Lock{l}, 4, func(tx *wflocks.Tx) {
					v := wflocks.Get(tx, c)
					wflocks.Put(tx, c, v+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					wins++
				}
			}
			rates[w] = float64(wins) / float64(attempts)
		}()
	}
	wg.Wait()
	floor := 1.0 / float64(workers)
	for w, r := range rates {
		if r < floor {
			t.Fatalf("worker %d success rate %.3f below floor %.3f", w, r, floor)
		}
	}
}
