package wflocks

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// poolManager builds a manager sized for pool tests: κ as given, L=2
// for the steal path, T covering the pool's worst critical section.
func poolManager(t testing.TB, kappa, batch int) *Manager {
	t.Helper()
	m, err := New(
		WithKappa(kappa),
		WithMaxLocks(2),
		WithMaxCriticalSteps(WorkPoolCriticalSteps(1, batch)),
		WithDelayConstants(1, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWorkPoolBasic(t *testing.T) {
	m := poolManager(t, 2, 4)
	wp, err := NewWorkPool[uint64](m,
		WithPoolShards(4), WithPoolCapacity(32), WithPoolBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	if wp.Shards() != 4 || wp.Cap() != 32 {
		t.Fatalf("shape = (%d, %d), want (4, 32)", wp.Shards(), wp.Cap())
	}
	const n = 20
	for v := uint64(1); v <= n; v++ {
		if !wp.TryEnqueue(v) {
			t.Fatalf("TryEnqueue(%d) failed below capacity", v)
		}
	}
	if got := wp.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	// Relaxed FIFO: no global order, but every element comes out
	// exactly once.
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		v, ok := wp.TryDequeue()
		if !ok {
			t.Fatalf("TryDequeue %d failed with %d elements left", i, wp.Len())
		}
		if seen[v] {
			t.Fatalf("element %d dequeued twice", v)
		}
		seen[v] = true
	}
	if _, ok := wp.TryDequeue(); ok {
		t.Fatal("TryDequeue on a drained pool succeeded")
	}
	for v := uint64(1); v <= n; v++ {
		if !seen[v] {
			t.Fatalf("element %d lost", v)
		}
	}
	s := wp.Stats()
	if s.Enqueues != n || s.Dequeues != n || s.Len != 0 {
		t.Fatalf("quiescent stats = %d enq, %d deq, len %d; want %d/%d/0", s.Enqueues, s.Dequeues, s.Len, n, n)
	}
	// Round-robin spread: with 20 sequential submits over 4 shards,
	// every shard saw exactly 5.
	for si, sh := range s.Shards {
		if sh.Enqueues != n/4 {
			t.Fatalf("shard %d enqueues = %d, want %d (round-robin broken)", si, sh.Enqueues, n/4)
		}
	}
	if s.Balance < 0.999 {
		t.Fatalf("balance = %f, want ~1.0 under round-robin", s.Balance)
	}
}

// TestWorkPoolSteal pins the steal path: all elements are planted in
// shard 0, the consumer's home cursor is pointed at shard 1, and the
// dequeue must come back with a stolen element plus a migrated batch
// rebalanced into the home shard.
func TestWorkPoolSteal(t *testing.T) {
	m := poolManager(t, 2, 4)
	wp, err := NewWorkPool[uint64](m,
		WithPoolShards(2), WithPoolCapacity(32), WithPoolBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	// Plant 6 elements directly in shard 0's ring (white-box), then aim
	// the round-robin cursor at shard 1.
	p := m.Acquire()
	ring0 := &wp.rings[0]
	for v := uint64(1); v <= 6; v++ {
		wp.do(p, 0, wp.opBudget, func(tx *Tx) {
			if !ring0.enqOne(tx, v) {
				t.Errorf("plant %d failed", v)
			}
		})
	}
	m.Release(p)
	wp.dq.Store(1) // next TryDequeue homes on shard 1
	v, ok := wp.TryDequeue()
	if !ok || v != 1 {
		t.Fatalf("steal dequeue = (%d, %v), want (1, true) (victim FIFO)", v, ok)
	}
	s := wp.Stats()
	// 1 returned + stealBatch migrated.
	if want := uint64(1 + stealBatch); s.Shards[1].Steals != want {
		t.Fatalf("home shard steals = %d, want %d", s.Shards[1].Steals, want)
	}
	if s.Shards[1].Len != stealBatch || s.Shards[0].Len != 6-1-stealBatch {
		t.Fatalf("post-steal occupancy = [%d %d], want [%d %d]",
			s.Shards[0].Len, s.Shards[1].Len, 6-1-stealBatch, stealBatch)
	}
	// The migrated batch preserved victim order: draining home shard 1
	// yields 2..5, then shard 0 holds 6.
	wp.dq.Store(1)
	for want := uint64(2); want <= 5; want++ {
		wp.dq.Store(1)
		v, ok := wp.TryDequeue()
		if !ok || v != want {
			t.Fatalf("migrated drain = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
	wp.dq.Store(0)
	if v, ok := wp.TryDequeue(); !ok || v != 6 {
		t.Fatalf("leftover drain = (%d, %v), want (6, true)", v, ok)
	}
	if got := wp.Len(); got != 0 {
		t.Fatalf("Len after full drain = %d, want 0", got)
	}
}

func TestWorkPoolValidation(t *testing.T) {
	// A multi-shard pool needs the two-lock steal path.
	m1, err := New(WithKappa(2), WithMaxLocks(1),
		WithMaxCriticalSteps(WorkPoolCriticalSteps(1, 8)), WithDelayConstants(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkPool[uint64](m1); err == nil {
		t.Fatal("multi-shard pool accepted on a MaxLocks(1) manager")
	}
	if _, err := NewWorkPool[uint64](m1, WithPoolShards(1)); err != nil {
		t.Fatalf("single-shard pool rejected: %v", err)
	}
	m2 := poolManager(t, 2, 8)
	if _, err := NewWorkPool[uint64](m2, WithPoolShards(0)); err == nil {
		t.Fatal("WithPoolShards(0) accepted")
	}
	if _, err := NewWorkPool[uint64](m2, WithPoolCapacity(-1)); err == nil {
		t.Fatal("WithPoolCapacity(-1) accepted")
	}
	if _, err := NewWorkPool[uint64](m2, WithPoolBatch(0)); err == nil {
		t.Fatal("WithPoolBatch(0) accepted")
	}
	// Budget shortfall is a construction error, as for Queue.
	small, err := New(WithKappa(2), WithMaxLocks(2),
		WithMaxCriticalSteps(QueueCriticalSteps(1, 1)), WithDelayConstants(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkPool[uint64](small); err == nil {
		t.Fatal("pool accepted against a 1-item budget")
	}
}

func TestWorkPoolBatch(t *testing.T) {
	m := poolManager(t, 2, 4)
	wp, err := NewWorkPool[uint64](m,
		WithPoolShards(2), WithPoolCapacity(16), WithPoolBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	vs := make([]uint64, 10)
	for i := range vs {
		vs[i] = uint64(i + 1)
	}
	n, err := wp.EnqueueBatch(ctx, vs)
	if err != nil || n != 10 {
		t.Fatalf("EnqueueBatch = (%d, %v), want (10, nil)", n, err)
	}
	got, err := wp.DequeueBatch(ctx, 100)
	if err != nil || len(got) != 10 {
		t.Fatalf("DequeueBatch = (%d elements, %v), want 10", len(got), err)
	}
	seen := make(map[uint64]bool)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("element %d dequeued twice", v)
		}
		seen[v] = true
	}
	// Empty-handed cancellation.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := wp.DequeueBatch(cctx, 1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled DequeueBatch = %v, want ErrCanceled", err)
	}
	if err := wp.Enqueue(cctx, 1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled Enqueue = %v, want ErrCanceled", err)
	}
}

func TestWorkPoolConcurrentConservation(t *testing.T) {
	const (
		producers = 3
		consumers = 3
		perProd   = 150
	)
	m := poolManager(t, producers+consumers, 4)
	wp, err := NewWorkPool[uint64](m,
		WithPoolShards(4), WithPoolCapacity(32), WithPoolBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wantSum, gotSum, consumed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := uint64(w*perProd + i + 1)
				wantSum.Add(v)
				if err := wp.Enqueue(ctx, v); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	const total = producers * perProd
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if consumed.Load() >= total {
					return
				}
				if v, ok := wp.TryDequeue(); ok {
					gotSum.Add(v)
					consumed.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	if gotSum.Load() != wantSum.Load() {
		t.Fatalf("conservation violated: consumed sum %d, produced sum %d", gotSum.Load(), wantSum.Load())
	}
	s := wp.Stats()
	if s.Enqueues != total || s.Dequeues != total || s.Len != 0 {
		t.Fatalf("quiescent stats = %d enq, %d deq, len %d; want %d/%d/0",
			s.Enqueues, s.Dequeues, s.Len, total, total)
	}
}

func TestWorkPoolEnqueueKeyed(t *testing.T) {
	m := poolManager(t, 4, 4)
	wp, err := NewWorkPool[uint64](m, WithPoolShards(4), WithPoolCapacity(64), WithPoolBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	// All elements submitted under one key land on that key's shard:
	// with plenty of room, keyed submission never falls through to the
	// probe fallback.
	const key = 2
	for i := 0; i < 8; i++ {
		if !wp.TryEnqueueKeyed(key, uint64(i)) {
			t.Fatalf("TryEnqueueKeyed #%d reported full on an empty pool", i)
		}
	}
	st := wp.Stats()
	for s, sh := range st.Shards {
		want := uint64(0)
		if s == key&3 {
			want = 8
		}
		if sh.Enqueues != want {
			t.Fatalf("shard %d enqueues = %d, want %d", s, sh.Enqueues, want)
		}
	}
	// A full home shard falls back to the next shards rather than
	// rejecting: per-shard capacity is 16, so 16 more keyed submissions
	// overflow into neighbors, and every element is still admitted.
	for i := 0; i < 16; i++ {
		if !wp.TryEnqueueKeyed(key, uint64(100+i)) {
			t.Fatalf("keyed overflow submission %d rejected with free shards", i)
		}
	}
	if got := wp.Len(); got != 24 {
		t.Fatalf("Len = %d, want 24", got)
	}
	// The blocking form delivers under contention and honors ctx.
	if err := wp.EnqueueKeyed(context.Background(), 7, 999); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		if _, ok := wp.TryDequeue(); !ok {
			break
		}
		got++
	}
	if got != 25 {
		t.Fatalf("drained %d elements, want 25", got)
	}
}

func TestWorkPoolEnqueueKeyedCanceled(t *testing.T) {
	m := poolManager(t, 2, 1)
	wp, err := NewWorkPool[uint64](m, WithPoolShards(1), WithPoolCapacity(1), WithPoolBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if !wp.TryEnqueueKeyed(0, 1) {
		t.Fatal("seed enqueue failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = wp.EnqueueKeyed(ctx, 0, 2)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("EnqueueKeyed on a full pool = %v, want ErrCanceled", err)
	}
}
