package wflocks

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// RetryPolicy decides how an acquisition waits between failed attempts.
// Each attempt is wait-free and succeeds with probability at least
// 1/(κL), so a handful of retries almost always suffices; the policy
// controls how much CPU those retries burn and how they share the
// processor with other goroutines.
type RetryPolicy interface {
	// Wait is called after failed attempt number n (1-based) and before
	// attempt n+1. ctx is the acquisition's context (context.Background()
	// for Do and Lock); implementations that sleep must return early
	// when it is done.
	Wait(ctx context.Context, n int)
}

// RetryImmediate retries with no pause at all: maximum throughput on
// dedicated cores, at the price of hot-spinning under contention.
func RetryImmediate() RetryPolicy { return immediatePolicy{} }

type immediatePolicy struct{}

func (immediatePolicy) Wait(context.Context, int) {}

// RetryGosched yields the processor between attempts
// (runtime.Gosched). This is the default policy: it keeps retry loops
// from starving the very goroutines they are contending with, at
// negligible cost on the uncontended path.
func RetryGosched() RetryPolicy { return goschedPolicy{} }

type goschedPolicy struct{}

func (goschedPolicy) Wait(context.Context, int) { runtime.Gosched() }

// RetryBackoff sleeps between attempts, doubling from base up to the
// cap. Use it when attempts are expensive enough (large κ, L or T) that
// yielding alone still burns too much CPU. The sleep wakes early when
// the acquisition's context is canceled.
func RetryBackoff(base, cap time.Duration) RetryPolicy {
	if base <= 0 {
		base = 10 * time.Microsecond
	}
	if cap < base {
		cap = base
	}
	return &backoffPolicy{base: base, cap: cap}
}

type backoffPolicy struct {
	base, cap time.Duration
}

func (b *backoffPolicy) Wait(ctx context.Context, n int) {
	d := b.base
	// Doubling is capped arithmetically so n cannot overflow the shift.
	for i := 1; i < n && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Do acquires the locks and runs body atomically, retrying attempts
// under the manager's RetryPolicy until one wins. The per-goroutine
// process handle is managed implicitly (Acquire/Release), so this is
// the common path: no *Process plumbing. maxOps bounds body's
// shared-memory operations exactly as in TryLock.
func (m *Manager) Do(locks []*Lock, maxOps int, body func(*Tx)) error {
	return m.DoCtx(context.Background(), locks, maxOps, body)
}

// DoCtx is Do with cancellation: between attempts it checks ctx and
// returns an error wrapping ErrCanceled once ctx is done. The body
// never runs after DoCtx returns; a nil return means exactly one
// winning attempt executed it.
func (m *Manager) DoCtx(ctx context.Context, locks []*Lock, maxOps int, body func(*Tx)) error {
	if err := m.validateCall(locks, maxOps); err != nil {
		return err
	}
	p := m.Acquire()
	defer m.Release(p)
	_, err := m.retryLoop(ctx, p, locks, maxOps, body)
	return err
}

// retryLoop is the one retry implementation behind Do, DoCtx, Lock and
// LockCtx: tryLock under p until an attempt wins, applying the
// manager's RetryPolicy between failures and checking ctx before each
// attempt. It returns the number of attempts used by a win, or the
// failed attempt count wrapped in an ErrCanceled error. The caller has
// already validated the arguments.
func (m *Manager) retryLoop(ctx context.Context, p *Process, locks []*Lock, maxOps int, body func(*Tx)) (int, error) {
	var t0 time.Time
	if m.rec != nil {
		t0 = time.Now()
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return attempt - 1, fmt.Errorf("%w after %d attempts: %w", ErrCanceled, attempt-1, err)
		}
		if m.tryLock(p, locks, maxOps, body) {
			if m.rec != nil {
				m.rec.RecAcquire(p.Pid(), uint64(time.Since(t0)))
			}
			return attempt, nil
		}
		m.retry.Wait(ctx, attempt)
	}
}
