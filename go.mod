module wflocks

go 1.23
