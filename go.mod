module wflocks

go 1.24
