package wflocks

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wflocks/internal/workload"
)

// cacheManager builds a manager sized for caches in tests: κ as given,
// T covering a worst-case cache operation at the given per-shard
// capacity, and delay constants of 1 to keep the fixed stalls short on
// test machines.
func cacheManager(t testing.TB, kappa, perShard, keyWords, valWords int) *Manager {
	t.Helper()
	m, err := New(
		WithKappa(kappa),
		WithMaxLocks(1),
		WithMaxCriticalSteps(CacheCriticalSteps(perShard, keyWords, valWords)),
		WithDelayConstants(1, 1),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCacheBasic(t *testing.T) {
	m := cacheManager(t, 2, 16, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(4), WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 4 || c.Capacity() != 64 {
		t.Fatalf("shape = (%d, %d), want (4, 64)", c.Shards(), c.Capacity())
	}
	if c.TTL() != 0 {
		t.Fatalf("TTL = %v, want 0", c.TTL())
	}
	const n = 20
	for k := uint64(0); k < n; k++ {
		c.Put(k, k*10)
	}
	if got := c.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := c.Get(k)
		if !ok || v != k*10 {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, v, ok, k*10)
		}
	}
	if _, ok := c.Get(999); ok {
		t.Fatal("Get(999) found a missing key")
	}
	// Overwrite does not grow the cache.
	c.Put(3, 42)
	if v, _ := c.Get(3); v != 42 {
		t.Fatalf("overwritten Get(3) = %d, want 42", v)
	}
	if got := c.Len(); got != n {
		t.Fatalf("Len after overwrite = %d, want %d", got, n)
	}
	if !c.Delete(3) {
		t.Fatal("Delete(3) = false, want true")
	}
	if c.Delete(3) {
		t.Fatal("second Delete(3) = true, want false")
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("Get(3) found a deleted key")
	}
	if got := c.Len(); got != n-1 {
		t.Fatalf("Len after delete = %d, want %d", got, n-1)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("Stats = hits %d misses %d, want both nonzero", st.Hits, st.Misses)
	}
}

func TestCacheOptionValidation(t *testing.T) {
	m := cacheManager(t, 2, 8, 1, 1)
	if _, err := NewCache[int, int](m, WithCacheShards(0)); err == nil {
		t.Fatal("WithCacheShards(0) accepted")
	}
	if _, err := NewCache[int, int](m, WithCapacity(-1)); err == nil {
		t.Fatal("WithCapacity(-1) accepted")
	}
	if _, err := NewCache[int, int](m, WithTTL(-time.Second)); err == nil {
		t.Fatal("WithTTL(-1s) accepted")
	}
	// Capacity splits across shards and rounds each share up to a power
	// of two: 12 entries over 4 shards → 3 per shard → 4 per shard.
	c, err := NewCache[int, int](m, WithCacheShards(3), WithCapacity(12))
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 4 || c.Capacity() != 16 {
		t.Fatalf("rounded shape = (%d, %d), want (4, 16)", c.Shards(), c.Capacity())
	}
	// A manager whose T cannot cover the budget is rejected with the
	// required bound in the message.
	small, err := New(WithKappa(2), WithMaxCriticalSteps(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCache[int, int](small, WithCapacity(1024)); err == nil {
		t.Fatal("NewCache accepted a manager with an insufficient T bound")
	}
}

// TestCacheLRUEviction pins the eviction order and the counters on a
// single-shard cache where every step is deterministic: the acceptance
// check that Stats' hit/miss/eviction numbers are exactly consistent
// with the workload.
func TestCacheLRUEviction(t *testing.T) {
	m := cacheManager(t, 2, 4, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(1), WithCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 4; k++ {
		c.Put(k, k*100)
	}
	// Recency now 4 > 3 > 2 > 1. Touch 1 so 2 becomes the LRU tail.
	if _, ok := c.Get(1); !ok {
		t.Fatal("Get(1) missed")
	}
	// Inserting a fifth key evicts the tail, which is 2.
	c.Put(5, 500)
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU key 2 survived the eviction")
	}
	for _, k := range []uint64{1, 3, 4, 5} {
		if v, ok := c.Get(k); !ok || v != k*100 {
			t.Fatalf("Get(%d) = (%d, %v), want (%d, true)", k, v, ok, k*100)
		}
	}
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	// Exact counter audit: hits = Get(1) + the four post-eviction hits;
	// misses = Get(2); evictions = 1; no TTL, so no expirations.
	st := c.Stats()
	if st.Hits != 5 || st.Misses != 1 || st.Evictions != 1 || st.Expirations != 0 {
		t.Fatalf("Stats = hits %d misses %d evictions %d expirations %d, want 5/1/1/0",
			st.Hits, st.Misses, st.Evictions, st.Expirations)
	}
	if st.HitRate != 5.0/6.0 {
		t.Fatalf("HitRate = %v, want %v", st.HitRate, 5.0/6.0)
	}
	// Eviction proceeds strictly from the tail: filling a fresh cache
	// and inserting N more keys evicts exactly the first N in order.
	for k := uint64(6); k <= 9; k++ {
		c.Put(k, k*100)
	}
	for _, k := range []uint64{1, 3, 4, 5} {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %d survived a full turnover", k)
		}
	}
	for k := uint64(6); k <= 9; k++ {
		if v, ok := c.Get(k); !ok || v != k*100 {
			t.Fatalf("Get(%d) after turnover = (%d, %v)", k, v, ok)
		}
	}
}

// TestCacheCapacityOne exercises the degenerate single-entry LRU list,
// where every insert both empties and refills the list.
func TestCacheCapacityOne(t *testing.T) {
	m := cacheManager(t, 2, 1, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(1), WithCapacity(1))
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1, 10)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = (%d, %v)", v, ok)
	}
	c.Put(2, 20)
	if _, ok := c.Get(1); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
	if v, ok := c.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = (%d, %v)", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if !c.Delete(2) || c.Len() != 0 {
		t.Fatal("delete on capacity-1 cache failed")
	}
	c.Put(3, 30)
	if v, ok := c.Get(3); !ok || v != 30 {
		t.Fatalf("Get(3) after refill = (%d, %v)", v, ok)
	}
}

func TestCacheTTL(t *testing.T) {
	m := cacheManager(t, 2, 8, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(1), WithCapacity(8),
		WithTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var clock atomic.Uint64
	clock.Store(1)
	c.now = clock.Load
	if c.TTL() != time.Second {
		t.Fatalf("TTL = %v, want 1s", c.TTL())
	}
	c.Put(1, 100)
	c.Put(2, 200)
	// Before the deadline both entries are live.
	clock.Add(uint64(time.Second.Nanoseconds()) - 10)
	if v, ok := c.Get(1); !ok || v != 100 {
		t.Fatalf("fresh Get(1) = (%d, %v)", v, ok)
	}
	// Refresh key 1's deadline by overwriting, then cross key 2's.
	c.Put(1, 101)
	clock.Add(20)
	if _, ok := c.Get(2); ok {
		t.Fatal("expired Get(2) returned a value")
	}
	if v, ok := c.Get(1); !ok || v != 101 {
		t.Fatalf("refreshed Get(1) = (%d, %v)", v, ok)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len after expiry = %d, want 1", got)
	}
	st := c.Stats()
	if st.Expirations != 1 || st.Misses != 1 {
		t.Fatalf("Stats = expirations %d misses %d, want 1/1", st.Expirations, st.Misses)
	}
	// An expired entry's bucket is reusable.
	c.Put(2, 201)
	if v, ok := c.Get(2); !ok || v != 201 {
		t.Fatalf("reinserted Get(2) = (%d, %v)", v, ok)
	}
}

func TestCacheGetOrCompute(t *testing.T) {
	m := cacheManager(t, 4, 8, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(2), WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	v := c.GetOrCompute(7, func() uint64 { calls++; return 700 })
	if v != 700 || calls != 1 {
		t.Fatalf("first GetOrCompute = %d (calls %d), want 700 (1)", v, calls)
	}
	v = c.GetOrCompute(7, func() uint64 { calls++; return 999 })
	if v != 700 || calls != 1 {
		t.Fatalf("cached GetOrCompute = %d (calls %d), want 700 (1)", v, calls)
	}
	// Concurrent misses on one key: every caller must return the same
	// value — the winner's — even though each computes its own candidate.
	const procs = 4
	var start, wg sync.WaitGroup
	start.Add(1)
	got := make([]uint64, procs)
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start.Wait()
			got[g] = c.GetOrCompute(42, func() uint64 { return 1000 + uint64(g) })
		}(g)
	}
	start.Done()
	wg.Wait()
	final, ok := c.Get(42)
	if !ok {
		t.Fatal("key 42 not installed")
	}
	for g, v := range got {
		if v != final {
			t.Fatalf("goroutine %d observed %d, cache holds %d — losers must adopt the winner's value",
				g, v, final)
		}
	}
}

// TestCacheGetOrComputeExpiredRace covers the install path finding an
// entry that expired between the initial probe and the install.
func TestCacheGetOrComputeExpiredRace(t *testing.T) {
	m := cacheManager(t, 2, 8, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(1), WithCapacity(8),
		WithTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var clock atomic.Uint64
	clock.Store(1)
	c.now = clock.Load
	c.Put(1, 100)
	clock.Add(uint64(2 * time.Second.Nanoseconds()))
	// The entry is now expired: GetOrCompute must recompute, replace it
	// in place, and refresh the deadline.
	v := c.GetOrCompute(1, func() uint64 { return 111 })
	if v != 111 {
		t.Fatalf("GetOrCompute over expired entry = %d, want 111", v)
	}
	if v, ok := c.Get(1); !ok || v != 111 {
		t.Fatalf("Get(1) after recompute = (%d, %v), want (111, true)", v, ok)
	}
}

// TestCacheZipfHitRate drives the cache:zipf workload single-threaded
// with a fixed seed and audits the counters: hits+misses must equal the
// number of reads exactly, the hit rate must sit in the band the zipf
// head mass predicts for a cache holding a quarter of the keyspace, and
// a rerun with the same seed must reproduce the same counters.
func TestCacheZipfHitRate(t *testing.T) {
	ops := 8000
	if testing.Short() {
		ops = 3000
	}
	run := func() CacheStats {
		m, err := New(WithKappa(2), WithMaxLocks(1),
			WithMaxCriticalSteps(CacheCriticalSteps(8, 1, 1)),
			WithDelayConstants(1, 1), WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCache[uint64, uint64](m, WithCacheShards(8), WithCapacity(64))
		if err != nil {
			t.Fatal(err)
		}
		sc := workload.LookupCacheScenario("cache:zipf")
		if sc == nil {
			t.Fatal("cache:zipf scenario missing")
		}
		st := workload.NewCacheOpStream(sc, 1)
		for i := 0; i < ops; i++ {
			kind, key := st.Next()
			k := uint64(key)
			switch kind {
			case workload.CacheGet:
				if v, ok := c.Get(k); ok && v != k*3 {
					t.Fatalf("Get(%d) = %d, want %d", k, v, k*3)
				}
			case workload.CachePut:
				c.Put(k, k*3)
			case workload.CacheDelete:
				c.Delete(k)
			}
		}
		return c.Stats()
	}
	st := run()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no reads recorded")
	}
	// The 64-entry cache holds the zipf head of a 256-key keyspace; at
	// skew 1.2 the top quarter carries ~80% of the draws, so the
	// steady-state hit rate must land well above uniform (25%) and
	// below perfect.
	if st.HitRate < 0.5 || st.HitRate > 0.98 {
		t.Fatalf("HitRate = %v, want within [0.5, 0.98]", st.HitRate)
	}
	if st.Len > 64 {
		t.Fatalf("Len = %d exceeds capacity 64", st.Len)
	}
	// Same seed, same stream, same manager seed → identical counters.
	st2 := run()
	if st2.Hits != st.Hits || st2.Misses != st.Misses ||
		st2.Evictions != st.Evictions || st2.Expirations != st.Expirations {
		t.Fatalf("rerun diverged: %+v vs %+v", st2, st)
	}
}

// TestCacheConcurrent hammers one cache from several goroutines and
// checks invariants afterwards: values are always well-formed, the
// entry count never exceeds capacity, and the counters add up. Runs in
// -short; the race detector is the main assertion.
func TestCacheConcurrent(t *testing.T) {
	const (
		procs    = 4
		opsPer   = 40
		keyspace = 32
	)
	m := cacheManager(t, procs, 8, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(4), WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < procs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := uint64((g*opsPer + i*7) % keyspace)
				switch i % 5 {
				case 0, 1:
					if v, ok := c.Get(k); ok && v != k*7+1 {
						t.Errorf("Get(%d) = %d, want %d", k, v, k*7+1)
					}
				case 2:
					c.Put(k, k*7+1)
				case 3:
					if v := c.GetOrCompute(k, func() uint64 { return k*7 + 1 }); v != k*7+1 {
						t.Errorf("GetOrCompute(%d) = %d, want %d", k, v, k*7+1)
					}
				case 4:
					c.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got > c.Capacity() {
		t.Fatalf("Len = %d exceeds capacity %d", got, c.Capacity())
	}
	st := c.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("Stats has %d shards, want 4", len(st.Shards))
	}
	var sum int
	var attempts uint64
	for _, s := range st.Shards {
		sum += s.Size
		attempts += s.Lock.Attempts
	}
	if sum != st.Len {
		t.Fatalf("shard sizes sum to %d, Stats.Len = %d", sum, st.Len)
	}
	if attempts == 0 {
		t.Fatal("no attempts recorded on any shard lock")
	}
	if st.Balance <= 0 || st.Balance > 1 {
		t.Fatalf("Balance = %v, want (0, 1]", st.Balance)
	}
	// Every surviving entry must round-trip with a well-formed value.
	for k := uint64(0); k < keyspace; k++ {
		if v, ok := c.Get(k); ok && v != k*7+1 {
			t.Fatalf("post-run Get(%d) = %d, want %d", k, v, k*7+1)
		}
	}
}

// TestCacheMultiWordValues exercises multi-word struct values through
// CodecFunc — the LRU surgery must stay consistent when value writes
// span several idempotent words — plus TTL on the multi-word path.
func TestCacheMultiWordValues(t *testing.T) {
	type blob struct{ A, B, C uint64 }
	blobCodec := CodecFunc(3,
		func(b blob, dst []uint64) { dst[0], dst[1], dst[2] = b.A, b.B, b.C },
		func(src []uint64) blob { return blob{src[0], src[1], src[2]} })
	m := cacheManager(t, 2, 4, 1, 3)
	c, err := NewCacheOf[uint64, blob](m, IntegerCodec[uint64](), blobCodec,
		WithCacheShards(2), WithCapacity(8), WithTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		c.Put(i, blob{i, i * 2, i * 3})
	}
	for i := uint64(0); i < 8; i++ {
		v, ok := c.Get(i)
		if !ok {
			// Up to half the keys may have been evicted depending on
			// shard assignment; evicted keys just miss.
			continue
		}
		if v != (blob{i, i * 2, i * 3}) {
			t.Fatalf("Get(%d) = %+v, torn multi-word value", i, v)
		}
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
	got := c.GetOrCompute(100, func() blob { return blob{9, 8, 7} })
	if got != (blob{9, 8, 7}) {
		t.Fatalf("GetOrCompute = %+v", got)
	}
}

// TestCacheContains pins the peek contract: no recency bump, no expiry
// reclaim, no hit/miss accounting.
func TestCacheContains(t *testing.T) {
	m := cacheManager(t, 2, 4, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(1), WithCapacity(4),
		WithTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var clock atomic.Uint64
	clock.Store(1)
	c.now = clock.Load
	// Fill the single shard to capacity: 1 is the LRU tail.
	for k := uint64(1); k <= 4; k++ {
		c.Put(k, k*10)
	}
	if !c.Contains(1) || !c.Contains(4) {
		t.Fatal("Contains missed live entries")
	}
	if c.Contains(99) {
		t.Fatal("Contains found a missing key")
	}
	base := c.Stats()
	if c.Contains(1) == false {
		t.Fatal("Contains(1) flapped")
	}
	st := c.Stats()
	if st.Hits != base.Hits || st.Misses != base.Misses {
		t.Fatalf("Contains moved counters: hits %d→%d misses %d→%d",
			base.Hits, st.Hits, base.Misses, st.Misses)
	}
	// Contains must not bump recency: after peeking the tail (1), a Put
	// into the full shard must still evict 1, not 2.
	c.Contains(1)
	c.Put(5, 50)
	if c.Contains(1) {
		t.Fatal("LRU tail survived eviction — Contains bumped recency")
	}
	if !c.Contains(2) {
		t.Fatal("key 2 was evicted instead of the tail")
	}
	// An expired entry reports false but stays for a read to reclaim.
	clock.Add(uint64(2 * time.Second.Nanoseconds()))
	if c.Contains(2) {
		t.Fatal("Contains returned an expired entry")
	}
	if c.Len() != 4 {
		t.Fatalf("Contains reclaimed expired entries: Len = %d, want 4", c.Len())
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("expired Get(2) hit")
	}
	if c.Len() != 3 {
		t.Fatalf("Get did not reclaim: Len = %d, want 3", c.Len())
	}
}

// TestCacheAll covers the lock-free iterator: full walk, expired
// entries skipped but not reclaimed, early break, and no recency bump.
func TestCacheAll(t *testing.T) {
	m := cacheManager(t, 2, 8, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(2), WithCapacity(16),
		WithTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var clock atomic.Uint64
	clock.Store(1)
	c.now = clock.Load
	want := map[uint64]uint64{}
	for k := uint64(0); k < 10; k++ {
		want[k] = k * 3
		c.Put(k, k*3)
	}
	got := map[uint64]uint64{}
	for k, v := range c.All() {
		got[k] = v
	}
	if len(got) != len(want) {
		t.Fatalf("All visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("All saw %d=%d, want %d", k, got[k], v)
		}
	}
	visits := 0
	for range c.All() {
		visits++
		break
	}
	if visits != 1 {
		t.Fatalf("early break: %d visits", visits)
	}
	// Expired entries are skipped but left in place.
	clock.Add(uint64(2 * time.Second.Nanoseconds()))
	count := 0
	for range c.All() {
		count++
	}
	if count != 0 {
		t.Fatalf("All yielded %d expired entries", count)
	}
	if c.Len() != 10 {
		t.Fatalf("All reclaimed entries: Len = %d, want 10", c.Len())
	}
}

// TestCacheAllUnderWriters runs the iterator against live Put traffic:
// the per-shard seqlock must never surface a torn key/value pairing
// (values are key*1000+gen with gen < 1000). Run with -race.
func TestCacheAllUnderWriters(t *testing.T) {
	const (
		writers  = 3
		keyspace = 12
		rounds   = 15
	)
	m := cacheManager(t, writers+1, 16, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(2), WithCapacity(32))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keyspace; k++ {
		c.Put(k, k*1000)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := uint64(1)
			for !stop.Load() {
				k := uint64((w*5 + int(gen)*3) % keyspace)
				c.Put(k, k*1000+gen%1000)
				gen++
			}
		}(w)
	}
	for i := 0; i < rounds; i++ {
		for k, v := range c.All() {
			if v/1000 != k {
				t.Errorf("torn snapshot: key %d carries value %d", k, v)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestCachePutTTL(t *testing.T) {
	// A cache constructed WITHOUT WithTTL: Put entries never expire,
	// PutTTL entries do, and the first PutTTL is what arms the expiry
	// clock on reads.
	m := cacheManager(t, 2, 8, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(1), WithCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	var clock atomic.Uint64
	clock.Store(1)
	c.now = clock.Load
	c.Put(1, 100)
	c.PutTTL(2, 200, time.Second)
	c.PutTTL(3, 300, time.Minute)
	clock.Add(uint64(2 * time.Second.Nanoseconds()))
	if _, ok := c.Get(2); ok {
		t.Fatal("PutTTL entry survived its deadline")
	}
	if v, ok := c.Get(1); !ok || v != 100 {
		t.Fatalf("no-TTL entry = (%d, %v), want (100, true)", v, ok)
	}
	if v, ok := c.Get(3); !ok || v != 300 {
		t.Fatalf("longer-TTL entry = (%d, %v), want (300, true)", v, ok)
	}
	st := c.Stats()
	if st.Expirations != 1 {
		t.Fatalf("expirations = %d, want 1", st.Expirations)
	}
	// Non-positive ttl falls back to the cache default (here: none).
	c.PutTTL(4, 400, 0)
	clock.Add(uint64(time.Hour.Nanoseconds()))
	if v, ok := c.Get(4); !ok || v != 400 {
		t.Fatalf("PutTTL(0) entry = (%d, %v), want (400, true)", v, ok)
	}
}

func TestCachePutTTLOverridesDefault(t *testing.T) {
	// Under WithTTL, PutTTL overrides per entry in both directions.
	m := cacheManager(t, 2, 8, 1, 1)
	c, err := NewCache[uint64, uint64](m, WithCacheShards(1), WithCapacity(8),
		WithTTL(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var clock atomic.Uint64
	clock.Store(1)
	c.now = clock.Load
	c.Put(1, 100)                      // default 1s
	c.PutTTL(2, 200, 10*time.Second)   // longer than default
	c.PutTTL(3, 300, time.Millisecond) // shorter than default
	clock.Add(uint64(500 * time.Millisecond.Nanoseconds()))
	if _, ok := c.Get(3); ok {
		t.Fatal("short-TTL entry outlived its override")
	}
	clock.Add(uint64(time.Second.Nanoseconds()))
	if _, ok := c.Get(1); ok {
		t.Fatal("default-TTL entry outlived the default")
	}
	if v, ok := c.Get(2); !ok || v != 200 {
		t.Fatalf("long-TTL entry = (%d, %v), want (200, true)", v, ok)
	}
}
