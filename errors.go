package wflocks

import "errors"

// Sentinel errors returned by the public API. Match with errors.Is;
// returned errors may wrap these with call-specific detail.
var (
	// ErrNoLocks is returned when an acquisition is given an empty lock
	// set.
	ErrNoLocks = errors.New("wflocks: empty lock set")

	// ErrTooManyLocks is returned when an acquisition names more locks
	// than the manager's WithMaxLocks bound L.
	ErrTooManyLocks = errors.New("wflocks: lock set exceeds the configured MaxLocks bound")

	// ErrMaxOpsExceeded is returned when a call declares a maxOps budget
	// that is non-positive or larger than the manager's
	// WithMaxCriticalSteps bound T.
	ErrMaxOpsExceeded = errors.New("wflocks: maxOps outside the configured MaxCriticalSteps bound")

	// ErrCanceled is returned by DoCtx and LockCtx when the context is
	// canceled or times out before an attempt wins.
	ErrCanceled = errors.New("wflocks: acquisition canceled")

	// ErrMapFull is returned by Map.Put (and transactional Puts) when the
	// key's shard has no free bucket. Maps have fixed capacity (no
	// rehashing keeps the critical-section bound T valid); size them with
	// WithShards and WithShardCapacity.
	ErrMapFull = errors.New("wflocks: map shard full")

	// ErrCrossManager is returned by AtomicAll when a transaction region
	// belongs to a different Manager: locks from different managers
	// cannot be acquired in one atomic attempt.
	ErrCrossManager = errors.New("wflocks: transaction spans multiple managers")

	// ErrOverlappingRegions is returned by AtomicAll when two regions
	// share a shard of the same structure. Each region's view memoizes
	// its own probes, so overlapping views could write the same bucket;
	// merge the keys into one Region per structure instead.
	ErrOverlappingRegions = errors.New("wflocks: transaction regions overlap a shard")

	// ErrLogConsumers is returned by Log.NewCursor when every consumer
	// slot is attached. The slot pool is fixed (WithLogConsumers) so
	// trim critical sections stay within their step budget; Close a
	// cursor to release its slot.
	ErrLogConsumers = errors.New("wflocks: log consumer slots exhausted")

	// ErrCursorClosed is returned by Cursor.Next and Cursor.NextBatch
	// on a cursor that has been closed.
	ErrCursorClosed = errors.New("wflocks: log cursor closed")
)
