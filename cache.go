package wflocks

import (
	"fmt"
	"time"

	"wflocks/internal/env"
	"wflocks/internal/stats"
)

// Cache is a generic sharded LRU cache with optional TTL, built on the
// manager's wait-free locks. Keys hash to one of a power-of-two number
// of shards; each shard owns one Lock guarding an open-addressed bucket
// region plus an intrusive doubly-linked LRU list stored entirely in
// typed cells (prev/next bucket indices, head/tail anchors, expiry
// deadlines). Because the list lives in cells and every access goes
// through the idempotence layer, the recency reordering and eviction
// surgery inside a critical section can be re-executed by helpers
// without double-applying — this is the first subsystem whose critical
// sections do real pointer surgery rather than flat bucket writes.
//
// Eviction happens inside the critical section: a Put into a full shard
// unlinks the LRU tail, tombstones its bucket and reuses it, all in the
// same atomic step as the insert, so the cache never exceeds its
// capacity and a stalled evictor can never wedge the shard — helpers
// finish the surgery. Each shard holds a fixed power-of-two number of
// buckets (its capacity share); there is no rehashing, which is what
// keeps the worst-case critical section T bounded (CacheCriticalSteps
// computes the bound a hosting Manager needs).
//
// With WithTTL, every entry carries an absolute expiry deadline.
// Expiry is lazy: a Get that finds an expired entry removes it (counted
// as an expiration and a miss) instead of returning it. The deadline is
// sampled once, outside the critical section, so the section body stays
// deterministic and helpers re-executing it see the same cutoff.
//
// Construct with NewCache (integer keys and values) or NewCacheOf
// (explicit codecs). All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	m       *Manager
	kc      Codec[K]
	vc      Codec[V]
	kscalar ScalarCodec[K] // non-nil: allocation-free hash path

	shards    []cacheShard[K, V]
	shardMask uint64
	capMask   uint64
	region    int    // buckets per shard == per-shard entry capacity
	ttl       uint64 // nanoseconds; 0 = entries never expire
	seed      uint64
	opBudget  int

	// now is the nanosecond clock sampled outside critical sections for
	// TTL deadlines; tests substitute a fake.
	now func() uint64
}

// cacheShard is one shard: a lock, its bucket region, and the intrusive
// LRU list threading the full buckets (head = most recent, tail =
// least). lruNil terminates the list.
type cacheShard[K comparable, V any] struct {
	lock *Lock
	size *Cell[uint64]
	head *Cell[uint64]
	tail *Cell[uint64]

	// Per-shard counters, updated inside critical sections so they are
	// exact at quiescence and idempotent under helping.
	hits        *Cell[uint64]
	misses      *Cell[uint64]
	evictions   *Cell[uint64]
	expirations *Cell[uint64]

	meta []*Cell[uint64] // bucket state bits + key-hash fragment (as in Map)
	keys []*Cell[K]
	vals []*Cell[V]
	prev []*Cell[uint64] // LRU links: bucket indices, lruNil-terminated
	next []*Cell[uint64]
	exp  []*Cell[uint64] // absolute expiry deadline in nanos; 0 = none
}

// lruNil terminates the intrusive LRU list (no valid bucket index is
// all-ones).
const lruNil = ^uint64(0)

// Default cache shape: 8 shards, 1024 entries total.
const (
	defaultCacheShards   = 8
	defaultCacheCapacity = 1024
)

// CacheOption configures a Cache at construction.
type CacheOption func(*cacheConfig) error

type cacheConfig struct {
	shards   int
	capacity int
	ttl      time.Duration
}

// WithCacheShards sets the number of shards, rounded up to a power of
// two (default 8). As with Map, sharding pays twice: per-lock
// contention drops toward κ/shards, and the per-shard region shrinks,
// which shortens the worst-case critical section T that every
// attempt's fixed delays are proportional to.
func WithCacheShards(n int) CacheOption {
	return func(c *cacheConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithCacheShards: shard count must be positive, got %d", n)
		}
		c.shards = ceilPow2(n)
		return nil
	}
}

// WithCapacity sets the total entry capacity (default 1024). It is
// split evenly across shards and each shard's share is rounded up to a
// power of two, so the effective capacity — reported by Capacity — may
// exceed the request. When a shard is full, Put evicts that shard's
// least-recently-used entry; the LRU order is per shard, the price of
// there being no global lock.
func WithCapacity(n int) CacheOption {
	return func(c *cacheConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithCapacity: capacity must be positive, got %d", n)
		}
		c.capacity = n
		return nil
	}
}

// WithTTL gives every entry a time-to-live (default: entries never
// expire). Expiry is lazy — checked by reads, which remove and count
// expired entries — so memory is reclaimed on access, not by a
// background sweeper.
func WithTTL(d time.Duration) CacheOption {
	return func(c *cacheConfig) error {
		if d <= 0 {
			return fmt.Errorf("wflocks: WithTTL: ttl must be positive, got %v", d)
		}
		c.ttl = d
		return nil
	}
}

// CacheCriticalSteps returns the WithMaxCriticalSteps bound T a Manager
// needs to host a Cache whose shards hold perShard entries (rounded up
// to a power of two, as the constructor rounds) with the given key and
// value codec widths in words. It covers the worst case of any cache
// operation: a full-region probe (perShard × (1 + keyWords) ops), plus
// the LRU unlink/relink surgery, the tail eviction, the insert writes,
// the counter updates and the result-cell writes. The LRU list adds a
// constant number of single-word cell operations per op — pointer
// surgery is bounded-degree, so the budget stays linear in the region
// size exactly as MapCriticalSteps is.
func CacheCriticalSteps(perShard, keyWords, valueWords int) int {
	cap := ceilPow2(perShard)
	return cap*(1+keyWords) + keyWords + 3*valueWords + 32
}

// NewCache creates a cache with integer keys and values, the common
// case, using the built-in single-word codecs. See NewCacheOf for
// arbitrary types.
func NewCache[K Integer, V Integer](m *Manager, opts ...CacheOption) (*Cache[K, V], error) {
	return NewCacheOf[K, V](m, IntegerCodec[K](), IntegerCodec[V](), opts...)
}

// NewCacheOf creates a cache whose keys and values are encoded by the
// given codecs (use CodecFunc for multi-word struct keys or values).
// The manager's WithMaxCriticalSteps bound must cover a worst-case
// cache operation — CacheCriticalSteps computes the requirement — or
// NewCacheOf reports it as an error.
func NewCacheOf[K comparable, V any](m *Manager, kc Codec[K], vc Codec[V], opts ...CacheOption) (*Cache[K, V], error) {
	cfg := cacheConfig{shards: defaultCacheShards, capacity: defaultCacheCapacity}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	perShard := ceilPow2((cfg.capacity + cfg.shards - 1) / cfg.shards)
	opBudget := CacheCriticalSteps(perShard, kc.Words(), vc.Words())
	if opBudget > m.cfg.maxCritical {
		return nil, fmt.Errorf(
			"wflocks: NewCacheOf: %d entries per shard with %d-word keys and %d-word values needs "+
				"WithMaxCriticalSteps(%d), manager has %d (see CacheCriticalSteps)",
			perShard, kc.Words(), vc.Words(), opBudget, m.cfg.maxCritical)
	}
	c := &Cache[K, V]{
		m:         m,
		kc:        kc,
		vc:        vc,
		shards:    make([]cacheShard[K, V], cfg.shards),
		shardMask: uint64(cfg.shards - 1),
		capMask:   uint64(perShard - 1),
		region:    perShard,
		ttl:       uint64(cfg.ttl.Nanoseconds()),
		seed:      env.Mix(m.cfg.seed, 0x7766636163686573), // "wfcaches"
		opBudget:  opBudget,
		now:       func() uint64 { return uint64(time.Now().UnixNano()) },
	}
	if sc, ok := kc.(ScalarCodec[K]); ok && kc.Words() == 1 {
		c.kscalar = sc
	}
	var zeroK K
	var zeroV V
	for s := range c.shards {
		sh := &c.shards[s]
		sh.lock = m.NewLock()
		sh.size = NewCell(uint64(0))
		sh.head = NewCell(lruNil)
		sh.tail = NewCell(lruNil)
		sh.hits = NewCell(uint64(0))
		sh.misses = NewCell(uint64(0))
		sh.evictions = NewCell(uint64(0))
		sh.expirations = NewCell(uint64(0))
		sh.meta = make([]*Cell[uint64], perShard)
		sh.keys = make([]*Cell[K], perShard)
		sh.vals = make([]*Cell[V], perShard)
		sh.prev = make([]*Cell[uint64], perShard)
		sh.next = make([]*Cell[uint64], perShard)
		sh.exp = make([]*Cell[uint64], perShard)
		for i := 0; i < perShard; i++ {
			sh.meta[i] = NewCell(bucketEmpty)
			sh.keys[i] = NewCellOf(c.kc, zeroK)
			sh.vals[i] = NewCellOf(c.vc, zeroV)
			sh.prev[i] = NewCell(lruNil)
			sh.next[i] = NewCell(lruNil)
			sh.exp[i] = NewCell(uint64(0))
		}
	}
	return c, nil
}

// Shards reports the shard count (after power-of-two rounding).
func (c *Cache[K, V]) Shards() int { return len(c.shards) }

// Capacity reports the total entry capacity after per-shard rounding;
// it is at least the WithCapacity request.
func (c *Cache[K, V]) Capacity() int { return len(c.shards) * c.region }

// TTL reports the configured time-to-live (zero: entries never expire).
func (c *Cache[K, V]) TTL() time.Duration { return time.Duration(c.ttl) }

// hash computes the key's 64-bit hash; shard selection uses the low
// bits and the home bucket the high bits, as in Map.
func (c *Cache[K, V]) hash(k K) uint64 {
	return hashKey(c.kc, c.kscalar, c.seed, k)
}

// shardOf picks the key's shard and home bucket from its hash.
func (c *Cache[K, V]) shardOf(h uint64) (*cacheShard[K, V], int) {
	return &c.shards[h&c.shardMask], int((h >> 32) & c.capMask)
}

// deadline samples the expiry deadline for an entry stored now. It is
// called outside critical sections so that the section bodies capture
// the result as a constant — helpers re-executing a body must see the
// same cutoff, or the execution would not be idempotent.
func (c *Cache[K, V]) deadline() uint64 {
	if c.ttl == 0 {
		return 0
	}
	return c.now() + c.ttl
}

// find probes a shard's region for k inside a critical section (the
// shared probeBuckets loop: linear from the home bucket, stopping at
// the first empty bucket, with free the first reusable bucket).
func (c *Cache[K, V]) find(tx *Tx, sh *cacheShard[K, V], h uint64, home int, k K) (idx int, found bool, free int) {
	return probeBuckets(tx, sh.meta, sh.keys, c.capMask, h, home, k)
}

// do runs a critical section on sh's lock. Construction validated the
// budget against the manager's bounds, so the only errors Lock could
// report here are impossible; surface them as panics rather than
// forcing an error return on every cache access.
func (c *Cache[K, V]) do(p *Process, sh *cacheShard[K, V], body func(*Tx)) {
	if _, err := c.m.Lock(p, []*Lock{sh.lock}, c.opBudget, body); err != nil {
		panic("wflocks: Cache: " + err.Error())
	}
}

// moveToFront makes bucket i the most-recently-used entry of its
// shard's LRU list. All pointer reads happen before any write, so
// helpers re-executing the surgery replay the identical operation
// sequence.
func moveToFront[K comparable, V any](tx *Tx, sh *cacheShard[K, V], i int) {
	h := Get(tx, sh.head)
	if h == uint64(i) {
		return
	}
	// i is not the head, so it has a predecessor.
	p := Get(tx, sh.prev[i])
	n := Get(tx, sh.next[i])
	Put(tx, sh.next[p], n)
	if n != lruNil {
		Put(tx, sh.prev[n], p)
	} else {
		Put(tx, sh.tail, p)
	}
	Put(tx, sh.prev[i], lruNil)
	Put(tx, sh.next[i], h)
	Put(tx, sh.prev[h], uint64(i))
	Put(tx, sh.head, uint64(i))
}

// unlink removes bucket i from its shard's LRU list (the bucket's own
// links are left stale; insertion rewrites them).
func unlink[K comparable, V any](tx *Tx, sh *cacheShard[K, V], i int) {
	p := Get(tx, sh.prev[i])
	n := Get(tx, sh.next[i])
	if p != lruNil {
		Put(tx, sh.next[p], n)
	} else {
		Put(tx, sh.head, n)
	}
	if n != lruNil {
		Put(tx, sh.prev[n], p)
	} else {
		Put(tx, sh.tail, p)
	}
}

// removeLocked expires or deletes bucket i: unlink, tombstone, shrink.
func removeLocked[K comparable, V any](tx *Tx, sh *cacheShard[K, V], i int) {
	unlink(tx, sh, i)
	Put(tx, sh.meta[i], bucketTombstone)
	Put(tx, sh.size, Get(tx, sh.size)-1)
}

// installLocked inserts (k, v) into the shard inside a critical
// section, evicting the LRU tail first when the region has no reusable
// bucket, and links the new entry at the front of the LRU list. free is
// the probe's first reusable bucket or -1. The eviction reuses the
// tail's bucket directly: with no empty bucket left in the region, every
// probe chain covers the whole region, so the freed bucket is reachable
// for any key.
func (c *Cache[K, V]) installLocked(tx *Tx, sh *cacheShard[K, V], h uint64, k K, v V, dl uint64, free int) {
	hd := Get(tx, sh.head)
	if free < 0 {
		// Region full of live entries: evict the least-recently-used.
		t := Get(tx, sh.tail)
		q := Get(tx, sh.prev[t])
		if q != lruNil {
			Put(tx, sh.next[q], lruNil)
		}
		Put(tx, sh.tail, q)
		Put(tx, sh.meta[t], bucketTombstone)
		Put(tx, sh.evictions, Get(tx, sh.evictions)+1)
		Put(tx, sh.size, Get(tx, sh.size)-1)
		if hd == t {
			hd = lruNil
		}
		free = int(t)
	}
	Put(tx, sh.meta[free], bucketFull|(h&^bucketStateMask))
	Put(tx, sh.keys[free], k)
	Put(tx, sh.vals[free], v)
	Put(tx, sh.exp[free], dl)
	Put(tx, sh.prev[free], lruNil)
	Put(tx, sh.next[free], hd)
	if hd != lruNil {
		Put(tx, sh.prev[hd], uint64(free))
	} else {
		Put(tx, sh.tail, uint64(free))
	}
	Put(tx, sh.head, uint64(free))
	Put(tx, sh.size, Get(tx, sh.size)+1)
}

// Get reports the value cached for k and bumps its recency. A hit moves
// the entry to the front of its shard's LRU list; an expired entry is
// removed (counted as an expiration and a miss). Results are routed
// through fresh cells, never closure captures, because a stalled
// attempt's body may be re-executed by helpers concurrently.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	h := c.hash(k)
	sh, home := c.shardOf(h)
	var cutoff uint64
	if c.ttl != 0 {
		cutoff = c.now()
	}
	var zero V
	val := newResultCell(c.vc)
	found := NewBoolCell(false)
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, sh, func(tx *Tx) {
		i, ok, _ := c.find(tx, sh, h, home, k)
		if !ok {
			Put(tx, sh.misses, Get(tx, sh.misses)+1)
			return
		}
		if d := Get(tx, sh.exp[i]); d != 0 && d <= cutoff {
			removeLocked(tx, sh, i)
			Put(tx, sh.expirations, Get(tx, sh.expirations)+1)
			Put(tx, sh.misses, Get(tx, sh.misses)+1)
			return
		}
		moveToFront(tx, sh, i)
		Put(tx, val, Get(tx, sh.vals[i]))
		Put(tx, found, true)
		Put(tx, sh.hits, Get(tx, sh.hits)+1)
	})
	if !found.Get(p) {
		return zero, false
	}
	return val.Get(p), true
}

// Put stores v for k, inserting or overwriting, and makes the entry the
// most recently used. When k's shard is at capacity the shard's LRU
// tail is evicted in the same critical section, so Put never fails —
// unlike Map.Put, which reports ErrMapFull rather than displace an
// entry.
func (c *Cache[K, V]) Put(k K, v V) {
	h := c.hash(k)
	sh, home := c.shardOf(h)
	dl := c.deadline()
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, sh, func(tx *Tx) {
		i, ok, free := c.find(tx, sh, h, home, k)
		if ok {
			Put(tx, sh.vals[i], v)
			Put(tx, sh.exp[i], dl)
			moveToFront(tx, sh, i)
			return
		}
		c.installLocked(tx, sh, h, k, v, dl, free)
	})
}

// Delete removes k, reporting whether it was present. The bucket
// becomes a tombstone so longer probe chains stay reachable.
func (c *Cache[K, V]) Delete(k K) bool {
	h := c.hash(k)
	sh, home := c.shardOf(h)
	removed := NewBoolCell(false)
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, sh, func(tx *Tx) {
		if i, ok, _ := c.find(tx, sh, h, home, k); ok {
			removeLocked(tx, sh, i)
			Put(tx, removed, true)
		}
	})
	return removed.Get(p)
}

// GetOrCompute returns the cached value for k, computing and installing
// it on a miss. compute runs outside any critical section — it may be
// arbitrarily slow (a backing-store fetch) without ever inflating the
// critical-section bound T — and the result is installed in a second
// critical section that re-probes first: when several goroutines miss
// concurrently, each computes, the first install wins, and the losers
// observe and return the winner's value, so every concurrent caller
// returns the same value. One hit or one miss is counted, by the
// initial probe.
func (c *Cache[K, V]) GetOrCompute(k K, compute func() V) V {
	if v, ok := c.Get(k); ok {
		return v
	}
	v := compute()
	h := c.hash(k)
	sh, home := c.shardOf(h)
	dl := c.deadline()
	var cutoff uint64
	if c.ttl != 0 {
		cutoff = c.now()
	}
	res := NewCellOf(c.vc, v)
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, sh, func(tx *Tx) {
		i, ok, free := c.find(tx, sh, h, home, k)
		if ok {
			if d := Get(tx, sh.exp[i]); d == 0 || d > cutoff {
				// Raced: another goroutine installed first. Adopt its
				// value so concurrent callers agree.
				Put(tx, res, Get(tx, sh.vals[i]))
				moveToFront(tx, sh, i)
				return
			}
			// The raced-in entry already expired: replace it in place.
			Put(tx, sh.vals[i], v)
			Put(tx, sh.exp[i], dl)
			Put(tx, sh.expirations, Get(tx, sh.expirations)+1)
			moveToFront(tx, sh, i)
			return
		}
		c.installLocked(tx, sh, h, k, v, dl, free)
	})
	return res.Get(p)
}

// Len reports the number of cached entries. Per-shard sizes are read
// without locking, so under live traffic the sum can be momentarily
// skewed; at quiescence it is exact.
func (c *Cache[K, V]) Len() int {
	p := c.m.Acquire()
	defer c.m.Release(p)
	n := 0
	for s := range c.shards {
		n += int(c.shards[s].size.Get(p))
	}
	return n
}

// CacheShardStats is one shard's view in CacheStats.
type CacheShardStats struct {
	// Lock carries the shard lock's contention counters (these same
	// counters appear in the manager-wide StatsSnapshot.Locks).
	Lock LockStats
	// Size is the shard's entry count.
	Size int
	// Hits and Misses count Get (and GetOrCompute) outcomes; an expired
	// entry counts as an expiration and a miss.
	Hits, Misses uint64
	// Evictions counts LRU-tail displacements by Put into a full shard;
	// Expirations counts TTL removals observed by reads.
	Evictions, Expirations uint64
}

// CacheStats is a point-in-time view of a cache's per-shard traffic,
// occupancy and effectiveness, with the same weak-consistency caveat as
// StatsSnapshot: counters are updated inside critical sections, so they
// are exact at quiescence.
type CacheStats struct {
	// Shards holds one entry per shard, in shard order.
	Shards []CacheShardStats
	// Len is the summed entry count.
	Len int
	// Hits, Misses, Evictions and Expirations are the summed counters.
	Hits, Misses, Evictions, Expirations uint64
	// HitRate is Hits/(Hits+Misses), 0 before any access.
	HitRate float64
	// Balance is Jain's fairness index over per-shard accesses
	// (hits+misses): 1.0 when traffic spreads evenly, approaching
	// 1/shards under maximal skew (one hot shard).
	Balance float64
	// MaxOverMean is the hottest shard's accesses over the mean.
	MaxOverMean float64
}

// Stats snapshots per-shard hit/miss/eviction/expiration counters,
// sizes, and the shard lock's contention counters.
func (c *Cache[K, V]) Stats() CacheStats {
	p := c.m.Acquire()
	defer c.m.Release(p)
	cs := CacheStats{Shards: make([]CacheShardStats, len(c.shards))}
	accesses := make([]uint64, len(c.shards))
	for s := range c.shards {
		sh := &c.shards[s]
		a, w, hp := sh.lock.inner.Counters()
		st := CacheShardStats{
			Lock:        LockStats{ID: sh.lock.ID(), Attempts: a, Wins: w, Helps: hp},
			Size:        int(sh.size.Get(p)),
			Hits:        sh.hits.Get(p),
			Misses:      sh.misses.Get(p),
			Evictions:   sh.evictions.Get(p),
			Expirations: sh.expirations.Get(p),
		}
		cs.Shards[s] = st
		cs.Len += st.Size
		cs.Hits += st.Hits
		cs.Misses += st.Misses
		cs.Evictions += st.Evictions
		cs.Expirations += st.Expirations
		accesses[s] = st.Hits + st.Misses
	}
	if total := cs.Hits + cs.Misses; total > 0 {
		cs.HitRate = float64(cs.Hits) / float64(total)
	}
	d := stats.NewShardDist(accesses)
	cs.Balance = d.Jain
	cs.MaxOverMean = d.MaxOverMean
	return cs
}
