package wflocks

import (
	"fmt"
	"iter"
	"runtime"
	"sync/atomic"
	"time"

	"wflocks/internal/env"
	"wflocks/internal/stats"
	"wflocks/internal/table"
)

// Cache is a generic sharded LRU cache with optional TTL, built on the
// manager's wait-free locks and the shared shard-table engine
// (internal/table). Keys hash to one of a power-of-two number of
// shards; each shard owns one Lock guarding an engine bucket region
// plus an intrusive doubly-linked LRU list stored entirely in typed
// cells (prev/next bucket indices, head/tail anchors, expiry
// deadlines). Because the list lives in cells and every access goes
// through the idempotence layer, the recency reordering and eviction
// surgery inside a critical section can be re-executed by helpers
// without double-applying — this is the subsystem whose critical
// sections do real pointer surgery rather than flat bucket writes.
//
// Eviction happens inside the critical section: a Put into a full shard
// unlinks the LRU tail, tombstones its bucket and reuses it, all in the
// same atomic step as the insert, so the cache never exceeds its
// capacity and a stalled evictor can never wedge the shard — helpers
// finish the surgery. Each shard holds a fixed power-of-two number of
// buckets (its capacity share); there is no rehashing, which is what
// keeps the worst-case critical section T bounded (CacheCriticalSteps
// computes the bound a hosting Manager needs).
//
// With WithTTL, every entry carries an absolute expiry deadline.
// Expiry is lazy: a Get that finds an expired entry removes it (counted
// as an expiration and a miss) instead of returning it. The deadline is
// sampled once, outside the critical section, so the section body stays
// deterministic and helpers re-executing it see the same cutoff.
//
// Construct with NewCache (integer keys and values) or NewCacheOf
// (explicit codecs). All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	m   *Manager
	eng *table.Table[K, V]
	vc  Codec[V] // result-cell codec

	// locks[s] guards eng.Shards[s] and lru[s] together.
	locks []*Lock
	lru   []lruShard

	ttl      uint64 // nanoseconds; 0 = entries never expire by default
	opBudget int

	// expiring records that at least one entry was ever stored with a
	// deadline (always true under WithTTL; flipped by PutTTL otherwise),
	// so reads on a TTL-less cache skip the clock until the first
	// per-entry TTL appears.
	expiring atomic.Bool

	// now is the nanosecond clock sampled outside critical sections for
	// TTL deadlines; tests substitute a fake.
	now func() uint64
}

// lruShard is one shard's recency state: the intrusive LRU list
// threading the shard's full buckets (head = most recent, tail =
// least), expiry deadlines, and the per-shard counters. All of it lives
// in cells, updated inside critical sections, so it is exact at
// quiescence and idempotent under helping. lruNil terminates the list.
type lruShard struct {
	head *Cell[uint64]
	tail *Cell[uint64]

	hits        *Cell[uint64]
	misses      *Cell[uint64]
	evictions   *Cell[uint64]
	expirations *Cell[uint64]

	prev []*Cell[uint64] // LRU links: bucket indices, lruNil-terminated
	next []*Cell[uint64]
	exp  []*Cell[uint64] // absolute expiry deadline in nanos; 0 = none
}

// lruNil terminates the intrusive LRU list (no valid bucket index is
// all-ones).
const lruNil = ^uint64(0)

// Default cache shape: 8 shards, 1024 entries total.
const (
	defaultCacheShards   = 8
	defaultCacheCapacity = 1024
)

// CacheOption configures a Cache at construction.
type CacheOption func(*cacheConfig) error

type cacheConfig struct {
	shards   int
	capacity int
	ttl      time.Duration
}

// WithCacheShards sets the number of shards, rounded up to a power of
// two (default 8). As with Map, sharding pays twice: per-lock
// contention drops toward κ/shards, and the per-shard region shrinks,
// which shortens the worst-case critical section T that every
// attempt's fixed delays are proportional to.
func WithCacheShards(n int) CacheOption {
	return func(c *cacheConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithCacheShards: shard count must be positive, got %d", n)
		}
		c.shards = table.CeilPow2(n)
		return nil
	}
}

// WithCapacity sets the total entry capacity (default 1024). It is
// split evenly across shards and each shard's share is rounded up to a
// power of two, so the effective capacity — reported by Capacity — may
// exceed the request. When a shard is full, Put evicts that shard's
// least-recently-used entry; the LRU order is per shard, the price of
// there being no global lock.
func WithCapacity(n int) CacheOption {
	return func(c *cacheConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithCapacity: capacity must be positive, got %d", n)
		}
		c.capacity = n
		return nil
	}
}

// WithTTL gives every entry a time-to-live (default: entries never
// expire). Expiry is lazy — checked by reads, which remove and count
// expired entries — so memory is reclaimed on access, not by a
// background sweeper.
func WithTTL(d time.Duration) CacheOption {
	return func(c *cacheConfig) error {
		if d <= 0 {
			return fmt.Errorf("wflocks: WithTTL: ttl must be positive, got %v", d)
		}
		c.ttl = d
		return nil
	}
}

// CacheCriticalSteps returns the WithMaxCriticalSteps bound T a Manager
// needs to host a Cache whose shards hold perShard entries (rounded up
// to a power of two, as the constructor rounds) with the given key and
// value codec widths in words. It covers the worst case of any cache
// operation: a full-region probe (perShard × (1 + keyWords) ops), plus
// the LRU unlink/relink surgery, the tail eviction, the insert writes,
// the counter updates and the result-cell writes. It is the shared
// engine formula (table.Budget) with three value accesses and 32
// bookkeeping words: the LRU list adds a constant number of single-word
// cell operations per op — pointer surgery is bounded-degree, so the
// budget stays linear in the region size exactly as MapCriticalSteps
// is.
func CacheCriticalSteps(perShard, keyWords, valueWords int) int {
	return table.Budget(perShard, keyWords, valueWords, 3, 32)
}

// NewCache creates a cache with integer keys and values, the common
// case, using the built-in single-word codecs. See NewCacheOf for
// arbitrary types.
func NewCache[K Integer, V Integer](m *Manager, opts ...CacheOption) (*Cache[K, V], error) {
	return NewCacheOf[K, V](m, IntegerCodec[K](), IntegerCodec[V](), opts...)
}

// NewCacheOf creates a cache whose keys and values are encoded by the
// given codecs (use CodecFunc for multi-word struct keys or values).
// The manager's WithMaxCriticalSteps bound must cover a worst-case
// cache operation — CacheCriticalSteps computes the requirement — or
// NewCacheOf reports it as an error.
func NewCacheOf[K comparable, V any](m *Manager, kc Codec[K], vc Codec[V], opts ...CacheOption) (*Cache[K, V], error) {
	cfg := cacheConfig{shards: defaultCacheShards, capacity: defaultCacheCapacity}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	perShard := table.CeilPow2((cfg.capacity + cfg.shards - 1) / cfg.shards)
	opBudget := CacheCriticalSteps(perShard, kc.Words(), vc.Words())
	if opBudget > m.cfg.maxCritical {
		return nil, fmt.Errorf(
			"wflocks: NewCacheOf: %d entries per shard with %d-word keys and %d-word values needs "+
				"WithMaxCriticalSteps(%d), manager has %d (see CacheCriticalSteps)",
			perShard, kc.Words(), vc.Words(), opBudget, m.cfg.maxCritical)
	}
	c := &Cache[K, V]{
		m:        m,
		eng:      table.New[K, V](kc, vc, cfg.shards, perShard, env.Mix(m.cfg.seed, 0x7766636163686573)), // "wfcaches"
		vc:       vc,
		ttl:      uint64(cfg.ttl.Nanoseconds()),
		opBudget: opBudget,
		now:      func() uint64 { return uint64(time.Now().UnixNano()) },
	}
	c.locks = make([]*Lock, c.eng.ShardCount())
	c.lru = make([]lruShard, c.eng.ShardCount())
	for s := range c.lru {
		c.locks[s] = m.NewLock()
		sh := &c.lru[s]
		sh.head = NewCell(lruNil)
		sh.tail = NewCell(lruNil)
		sh.hits = NewCell(uint64(0))
		sh.misses = NewCell(uint64(0))
		sh.evictions = NewCell(uint64(0))
		sh.expirations = NewCell(uint64(0))
		sh.prev = make([]*Cell[uint64], perShard)
		sh.next = make([]*Cell[uint64], perShard)
		sh.exp = make([]*Cell[uint64], perShard)
		for i := 0; i < perShard; i++ {
			sh.prev[i] = NewCell(lruNil)
			sh.next[i] = NewCell(lruNil)
			sh.exp[i] = NewCell(uint64(0))
		}
	}
	return c, nil
}

// Shards reports the shard count (after power-of-two rounding).
func (c *Cache[K, V]) Shards() int { return c.eng.ShardCount() }

// Capacity reports the total entry capacity after per-shard rounding;
// it is at least the WithCapacity request.
func (c *Cache[K, V]) Capacity() int { return c.eng.ShardCount() * c.eng.Capacity() }

// TTL reports the configured time-to-live (zero: entries never expire).
func (c *Cache[K, V]) TTL() time.Duration { return time.Duration(c.ttl) }

// deadline samples the expiry deadline for an entry stored now. It is
// called outside critical sections so that the section bodies capture
// the result as a constant — helpers re-executing a body must see the
// same cutoff, or the execution would not be idempotent.
func (c *Cache[K, V]) deadline() uint64 {
	if c.ttl == 0 {
		return 0
	}
	return c.now() + c.ttl
}

// cutoff samples the expiry comparison instant for a read, outside
// critical sections, for the same determinism reason as deadline. A
// cache that has never held a deadline skips the clock read entirely;
// the first PutTTL on a TTL-less cache flips expiring so reads start
// checking.
func (c *Cache[K, V]) cutoff() uint64 {
	if c.ttl == 0 && !c.expiring.Load() {
		return 0
	}
	return c.now()
}

// do runs a critical section on shard si's lock. Construction validated
// the budget against the manager's bounds, so the only errors Lock
// could report here are impossible; surface them as panics rather than
// forcing an error return on every cache access.
func (c *Cache[K, V]) do(p *Process, si int, body func(*Tx)) {
	if _, err := c.m.Lock(p, []*Lock{c.locks[si]}, c.opBudget, body); err != nil {
		panic("wflocks: Cache: " + err.Error())
	}
}

// moveToFront makes bucket i the most-recently-used entry of its
// shard's LRU list. All pointer reads happen before any write, so
// helpers re-executing the surgery replay the identical operation
// sequence.
func moveToFront(tx *Tx, sh *lruShard, i int) {
	h := Get(tx, sh.head)
	if h == uint64(i) {
		return
	}
	// i is not the head, so it has a predecessor.
	p := Get(tx, sh.prev[i])
	n := Get(tx, sh.next[i])
	Put(tx, sh.next[p], n)
	if n != lruNil {
		Put(tx, sh.prev[n], p)
	} else {
		Put(tx, sh.tail, p)
	}
	Put(tx, sh.prev[i], lruNil)
	Put(tx, sh.next[i], h)
	Put(tx, sh.prev[h], uint64(i))
	Put(tx, sh.head, uint64(i))
}

// unlink removes bucket i from its shard's LRU list (the bucket's own
// links are left stale; insertion rewrites them).
func unlink(tx *Tx, sh *lruShard, i int) {
	p := Get(tx, sh.prev[i])
	n := Get(tx, sh.next[i])
	if p != lruNil {
		Put(tx, sh.next[p], n)
	} else {
		Put(tx, sh.head, n)
	}
	if n != lruNil {
		Put(tx, sh.prev[n], p)
	} else {
		Put(tx, sh.tail, p)
	}
}

// removeLocked expires or deletes bucket i: unlink, tombstone, shrink.
func (c *Cache[K, V]) removeLocked(tx *Tx, si, i int) {
	unlink(tx, &c.lru[si], i)
	c.eng.Remove(tx.run, &c.eng.Shards[si], i)
}

// installLocked inserts (k, v) into the shard inside a critical
// section, evicting the LRU tail first when the region has no reusable
// bucket, and links the new entry at the front of the LRU list. free is
// the probe's first reusable bucket or -1. The eviction reuses the
// tail's bucket directly: with no empty bucket left in the region, every
// probe chain covers the whole region, so the freed bucket is reachable
// for any key.
func (c *Cache[K, V]) installLocked(tx *Tx, si int, h uint64, k K, v V, dl uint64, free int) {
	sh := &c.lru[si]
	esh := &c.eng.Shards[si]
	hd := Get(tx, sh.head)
	if free < 0 {
		// Region full of live entries: evict the least-recently-used.
		t := Get(tx, sh.tail)
		q := Get(tx, sh.prev[t])
		if q != lruNil {
			Put(tx, sh.next[q], lruNil)
		}
		Put(tx, sh.tail, q)
		c.eng.Remove(tx.run, esh, int(t))
		Put(tx, sh.evictions, Get(tx, sh.evictions)+1)
		if hd == t {
			hd = lruNil
		}
		free = int(t)
	}
	c.eng.Insert(tx.run, esh, free, h, k, v)
	Put(tx, sh.exp[free], dl)
	Put(tx, sh.prev[free], lruNil)
	Put(tx, sh.next[free], hd)
	if hd != lruNil {
		Put(tx, sh.prev[hd], uint64(free))
	} else {
		Put(tx, sh.tail, uint64(free))
	}
	Put(tx, sh.head, uint64(free))
}

// Get reports the value cached for k and bumps its recency. A hit moves
// the entry to the front of its shard's LRU list; an expired entry is
// removed (counted as an expiration and a miss). Results are routed
// through fresh cells, never closure captures, because a stalled
// attempt's body may be re-executed by helpers concurrently.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	h := c.eng.Hash(k)
	si, home := c.eng.ShardIndex(h), c.eng.Home(h)
	esh := &c.eng.Shards[si]
	sh := &c.lru[si]
	cutoff := c.cutoff()
	var zero V
	val := newResultCell(c.vc)
	found := NewBoolCell(false)
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, si, func(tx *Tx) {
		i, ok, _ := c.eng.Find(tx.run, esh, h, home, k)
		if !ok {
			Put(tx, sh.misses, Get(tx, sh.misses)+1)
			return
		}
		if d := Get(tx, sh.exp[i]); d != 0 && d <= cutoff {
			c.eng.BumpVer(tx.run, esh)
			c.removeLocked(tx, si, i)
			c.eng.BumpVer(tx.run, esh)
			Put(tx, sh.expirations, Get(tx, sh.expirations)+1)
			Put(tx, sh.misses, Get(tx, sh.misses)+1)
			return
		}
		moveToFront(tx, sh, i)
		Put(tx, val, c.eng.Val(tx.run, esh, i))
		Put(tx, found, true)
		Put(tx, sh.hits, Get(tx, sh.hits)+1)
	})
	if !found.Get(p) {
		return zero, false
	}
	return val.Get(p), true
}

// Contains reports whether k is cached and unexpired, without bumping
// its recency, removing it on expiry, or touching the hit/miss
// counters — a pure peek. An entry past its deadline reports false but
// is left in place for the next Get to reclaim; Contains therefore
// never mutates the cache, making it the cheapest existence check
// (one probe in one critical section).
func (c *Cache[K, V]) Contains(k K) bool {
	h := c.eng.Hash(k)
	si, home := c.eng.ShardIndex(h), c.eng.Home(h)
	esh := &c.eng.Shards[si]
	sh := &c.lru[si]
	cutoff := c.cutoff()
	found := NewBoolCell(false)
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, si, func(tx *Tx) {
		i, ok, _ := c.eng.Find(tx.run, esh, h, home, k)
		if !ok {
			return
		}
		if d := Get(tx, sh.exp[i]); d != 0 && d <= cutoff {
			return
		}
		Put(tx, found, true)
	})
	return found.Get(p)
}

// Put stores v for k, inserting or overwriting, and makes the entry the
// most recently used. When k's shard is at capacity the shard's LRU
// tail is evicted in the same critical section, so Put never fails —
// unlike Map.Put, which reports ErrMapFull rather than displace an
// entry.
func (c *Cache[K, V]) Put(k K, v V) {
	c.putWithDeadline(k, v, c.deadline())
}

// PutTTL stores v for k with an explicit time-to-live that overrides
// the cache-wide WithTTL default for this entry alone (it works on a
// cache constructed without WithTTL, too). A non-positive ttl stores
// the entry with the cache's default expiry, exactly as Put would.
// Everything else — recency, eviction, lazy expiry on read — follows
// Put's contract.
func (c *Cache[K, V]) PutTTL(k K, v V, ttl time.Duration) {
	dl := c.deadline()
	if ttl > 0 {
		dl = c.now() + uint64(ttl.Nanoseconds())
		c.expiring.Store(true)
	}
	c.putWithDeadline(k, v, dl)
}

// putWithDeadline is Put's body with the expiry deadline already
// sampled — outside the critical section, as idempotence requires.
func (c *Cache[K, V]) putWithDeadline(k K, v V, dl uint64) {
	h := c.eng.Hash(k)
	si, home := c.eng.ShardIndex(h), c.eng.Home(h)
	esh := &c.eng.Shards[si]
	sh := &c.lru[si]
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, si, func(tx *Tx) {
		i, ok, free := c.eng.Find(tx.run, esh, h, home, k)
		c.eng.BumpVer(tx.run, esh)
		if ok {
			c.eng.SetVal(tx.run, esh, i, v)
			Put(tx, sh.exp[i], dl)
			moveToFront(tx, sh, i)
		} else {
			c.installLocked(tx, si, h, k, v, dl, free)
		}
		c.eng.BumpVer(tx.run, esh)
	})
}

// Delete removes k, reporting whether it was present. The bucket
// becomes a tombstone so longer probe chains stay reachable.
func (c *Cache[K, V]) Delete(k K) bool {
	h := c.eng.Hash(k)
	si, home := c.eng.ShardIndex(h), c.eng.Home(h)
	esh := &c.eng.Shards[si]
	removed := NewBoolCell(false)
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, si, func(tx *Tx) {
		if i, ok, _ := c.eng.Find(tx.run, esh, h, home, k); ok {
			c.eng.BumpVer(tx.run, esh)
			c.removeLocked(tx, si, i)
			c.eng.BumpVer(tx.run, esh)
			Put(tx, removed, true)
		}
	})
	return removed.Get(p)
}

// GetOrCompute returns the cached value for k, computing and installing
// it on a miss. compute runs outside any critical section — it may be
// arbitrarily slow (a backing-store fetch) without ever inflating the
// critical-section bound T — and the result is installed in a second
// critical section that re-probes first: when several goroutines miss
// concurrently, each computes, the first install wins, and the losers
// observe and return the winner's value, so every concurrent caller
// returns the same value. One hit or one miss is counted, by the
// initial probe.
func (c *Cache[K, V]) GetOrCompute(k K, compute func() V) V {
	if v, ok := c.Get(k); ok {
		return v
	}
	v := compute()
	h := c.eng.Hash(k)
	si, home := c.eng.ShardIndex(h), c.eng.Home(h)
	esh := &c.eng.Shards[si]
	sh := &c.lru[si]
	dl := c.deadline()
	cutoff := c.cutoff()
	res := NewCellOf(c.vc, v)
	p := c.m.Acquire()
	defer c.m.Release(p)
	c.do(p, si, func(tx *Tx) {
		i, ok, free := c.eng.Find(tx.run, esh, h, home, k)
		if ok {
			if d := Get(tx, sh.exp[i]); d == 0 || d > cutoff {
				// Raced: another goroutine installed first. Adopt its
				// value so concurrent callers agree.
				Put(tx, res, c.eng.Val(tx.run, esh, i))
				moveToFront(tx, sh, i)
				return
			}
			// The raced-in entry already expired: replace it in place.
			c.eng.BumpVer(tx.run, esh)
			c.eng.SetVal(tx.run, esh, i, v)
			Put(tx, sh.exp[i], dl)
			c.eng.BumpVer(tx.run, esh)
			Put(tx, sh.expirations, Get(tx, sh.expirations)+1)
			moveToFront(tx, sh, i)
			return
		}
		c.eng.BumpVer(tx.run, esh)
		c.installLocked(tx, si, h, k, v, dl, free)
		c.eng.BumpVer(tx.run, esh)
	})
	return res.Get(p)
}

// Len reports the number of cached entries. It is the lock-free fast
// path: it sums the per-shard size cells without taking any shard
// lock, so it never contends with writers and costs O(shards)
// regardless of occupancy. Under live traffic the sum can be
// momentarily skewed (each shard's count is read at a different
// instant); at quiescence it is exact. Expired-but-unreclaimed entries
// count until a read removes them — expiry is lazy.
func (c *Cache[K, V]) Len() int {
	p := c.m.Acquire()
	defer c.m.Release(p)
	n := 0
	for s := range c.eng.Shards {
		n += int(c.eng.LoadSize(p.env, &c.eng.Shards[s]))
	}
	return n
}

// All returns an iterator over the cache's unexpired entries, for use
// with range-over-func. Each shard is captured as a consistent
// snapshot — buckets are read lock-free under the shard's seqlock — so
// iteration never blocks writers and never bumps recency. Expired
// entries are skipped (but, as with Contains, left for reads to
// reclaim). Entries from different shards can reflect different
// instants; mutations concurrent with iteration may or may not be
// observed.
func (c *Cache[K, V]) All() iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		type entry struct {
			k K
			v V
		}
		var snap []entry
		p := c.m.Acquire()
		for s := range c.eng.Shards {
			esh := &c.eng.Shards[s]
			sh := &c.lru[s]
			cutoff := c.cutoff()
			c.eng.ReadStable(p.env, esh, runtime.Gosched, func() {
				snap = snap[:0]
				for i := 0; i < c.eng.Capacity(); i++ {
					if c.eng.LoadMeta(p.env, esh, i)&table.StateMask != table.Full {
						continue
					}
					if d := sh.exp[i].Get(p); d != 0 && d <= cutoff {
						continue
					}
					snap = append(snap, entry{c.eng.LoadKey(p.env, esh, i), c.eng.LoadVal(p.env, esh, i)})
				}
			})
			c.m.Release(p)
			for _, e := range snap {
				if !yield(e.k, e.v) {
					return
				}
			}
			p = c.m.Acquire()
		}
		c.m.Release(p)
	}
}

// CacheShardStats is one shard's view in CacheStats.
type CacheShardStats struct {
	// Lock carries the shard lock's contention counters (these same
	// counters appear in the manager-wide StatsSnapshot.Locks).
	Lock LockStats
	// Size is the shard's entry count.
	Size int
	// Hits and Misses count Get (and GetOrCompute) outcomes; an expired
	// entry counts as an expiration and a miss.
	Hits, Misses uint64
	// Evictions counts LRU-tail displacements by Put into a full shard;
	// Expirations counts TTL removals observed by reads.
	Evictions, Expirations uint64
	// Tombstones, MaxProbe and SumProbe describe the shard's
	// open-addressed region, as in MapShardStats.
	Tombstones int
	MaxProbe   int
	SumProbe   int
}

// CacheStats is a point-in-time view of a cache's per-shard traffic,
// occupancy and effectiveness, with the same weak-consistency caveat as
// StatsSnapshot: counters are updated inside critical sections, so they
// are exact at quiescence.
type CacheStats struct {
	// Shards holds one entry per shard, in shard order.
	Shards []CacheShardStats
	// Len is the summed entry count.
	Len int
	// Hits, Misses, Evictions and Expirations are the summed counters.
	Hits, Misses, Evictions, Expirations uint64
	// HitRate is Hits/(Hits+Misses), 0 before any access.
	HitRate float64
	// Balance is Jain's fairness index over per-shard accesses
	// (hits+misses): 1.0 when traffic spreads evenly, approaching
	// 1/shards under maximal skew (one hot shard).
	Balance float64
	// MaxOverMean is the hottest shard's accesses over the mean.
	MaxOverMean float64
	// MaxProbe is the worst probe displacement across all shards.
	MaxProbe int
}

// ShardLockID reports the ID of the shard lock covering key k — the
// LockID that k's operations carry in Stats().Shards, ObsSnapshot.Locks
// and the flight recorder's events. It is a pure hash computation (no
// lock is taken), so callers can correlate request-level traces with
// lock-level events without perturbing either.
func (c *Cache[K, V]) ShardLockID(k K) int {
	return c.locks[c.eng.ShardIndex(c.eng.Hash(k))].ID()
}

// Stats snapshots per-shard hit/miss/eviction/expiration counters,
// sizes, and the shard lock's contention counters.
func (c *Cache[K, V]) Stats() CacheStats {
	p := c.m.Acquire()
	defer c.m.Release(p)
	cs := CacheStats{Shards: make([]CacheShardStats, c.eng.ShardCount())}
	accesses := make([]uint64, c.eng.ShardCount())
	for s := range c.eng.Shards {
		sh := &c.lru[s]
		a, w, hp := c.locks[s].inner.Counters()
		ps := c.eng.ProbeStats(p.env, &c.eng.Shards[s])
		st := CacheShardStats{
			Lock:        LockStats{ID: c.locks[s].ID(), Attempts: a, Wins: w, Helps: hp},
			Size:        int(c.eng.LoadSize(p.env, &c.eng.Shards[s])),
			Hits:        sh.hits.Get(p),
			Misses:      sh.misses.Get(p),
			Evictions:   sh.evictions.Get(p),
			Expirations: sh.expirations.Get(p),
			Tombstones:  ps.Tombstones,
			MaxProbe:    ps.MaxProbe,
			SumProbe:    ps.SumProbe,
		}
		cs.Shards[s] = st
		if ps.MaxProbe > cs.MaxProbe {
			cs.MaxProbe = ps.MaxProbe
		}
		cs.Len += st.Size
		cs.Hits += st.Hits
		cs.Misses += st.Misses
		cs.Evictions += st.Evictions
		cs.Expirations += st.Expirations
		accesses[s] = st.Hits + st.Misses
	}
	if total := cs.Hits + cs.Misses; total > 0 {
		cs.HitRate = float64(cs.Hits) / float64(total)
	}
	d := stats.NewShardDist(accesses)
	cs.Balance = d.Jain
	cs.MaxOverMean = d.MaxOverMean
	return cs
}
