package wflocks

import (
	"context"
	"errors"
	"testing"
)

// FuzzLogOps drives one small single-shard log through an arbitrary
// append/read/trim/attach sequence decoded from the fuzz input and
// checks it against a slice model after every operation, mirroring
// FuzzQueueOps:
//
//   - the full append history is the model; every value a cursor
//     delivers must equal the history at that cursor's position — the
//     per-consumer prefix-order invariant (each subscriber replays the
//     append order from its attach point, gapless except where a
//     TrimTo clamp skipped it forward, and the model tracks the skip);
//   - trim never reclaims past the minimum attached cursor position,
//     and the head ticket stays segment-aligned;
//   - TryAppend fails exactly when the model says the slowest cursor
//     pins the segment an in-section reclaim would need;
//   - Len, per-slot reads/drops and the Stats counters track the model
//     exactly;
//   - the per-slot sequence cells satisfy the qring occupancy protocol
//     at every step, across trim-driven wraparound.
//
// The log is tiny (16 slots, 4-entry segments, 2 consumer slots) so
// short inputs wrap and trim repeatedly; the seed corpus keeps
// `go test` (including -short) exercising attach/clamp/wrap paths
// without the fuzz engine.
func FuzzLogOps(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x05, 0x00, 0x00, 0x01, 0x01, 0x03})                        // attach, append, read, trim
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // fill past capacity unsubscribed
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // pin, fill, clamp
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x01})
	f.Add([]byte{0x05, 0x07, 0x00, 0x08, 0x01, 0x02, 0x09, 0x06, 0x05, 0x00}) // both slots, batches, close/reattach
	f.Add([]byte{0x05, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00,  // lap the ring with lag 1
		0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x03, 0x00, 0x01,
		0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x03})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const (
			capacity = 16
			segment  = 4
			batch    = 3
			nslots   = 2
			retain   = 5
		)
		m, err := New(
			WithKappa(2),
			WithMaxLocks(2),
			WithMaxCriticalSteps(LogCriticalSteps(1, batch, nslots, segment)),
			WithDelayConstants(1, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		lg, err := NewLog[uint64](m, WithLogShards(1), WithLogCapacity(capacity),
			WithLogSegment(segment), WithLogConsumers(nslots), WithLogBatch(batch))
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) > 64 {
			ops = ops[:64]
		}
		ctx := context.Background()

		var history []uint64 // the full append order; ticket i holds history[i]
		var mHead, mTail int // trim/append tickets
		var fulls int
		type slotModel struct {
			attached     bool
			pos          int
			reads, drops int
		}
		var slots [nslots]slotModel
		var curs [nslots]*Cursor[uint64]

		minPos := func() int {
			min := mTail
			for i := range slots {
				if slots[i].attached && slots[i].pos < min {
					min = slots[i].pos
				}
			}
			return min
		}
		// One in-section segment reclaim, as appendOne performs when
		// full: toward the aligned minimum, at most one segment.
		reclaimOnce := func() {
			aligned := minPos() &^ (segment - 1)
			freed := aligned - mHead
			if freed > segment {
				freed = segment
			}
			if freed > 0 {
				mHead += freed
			}
		}
		readOne := func(step int, ci int) {
			c := curs[ci]
			v, ok := c.TryNext()
			sm := &slots[ci]
			wantOK := sm.attached && sm.pos < mTail
			if ok != wantOK {
				t.Fatalf("step %d: cursor %d TryNext = %v, model pos %d tail %d attached %v",
					step, ci, ok, sm.pos, mTail, sm.attached)
			}
			if !ok {
				return
			}
			if v != history[sm.pos] {
				t.Fatalf("step %d: cursor %d read %d at position %d, history %d (prefix order broken)",
					step, ci, v, sm.pos, history[sm.pos])
			}
			sm.pos++
			sm.reads++
		}

		for step, op := range ops {
			v := uint64(step) + 1000
			switch op % 10 {
			case 0: // TryAppend
				ok := lg.TryAppend(v)
				wantOK := true
				if mTail-mHead >= capacity {
					reclaimOnce()
					wantOK = mTail-mHead < capacity
				}
				if ok != wantOK {
					t.Fatalf("step %d: TryAppend = %v with %d retained (head %d, min %d)",
						step, ok, mTail-mHead, mHead, minPos())
				}
				if ok {
					history = append(history, v)
					mTail++
				} else {
					fulls++
				}
			case 1: // TryNext on slot 0's cursor
				if curs[0] != nil {
					readOne(step, 0)
				}
			case 2: // TryNext on slot 1's cursor
				if curs[1] != nil {
					readOne(step, 1)
				}
			case 3: // Trim
				aligned := minPos() &^ (segment - 1)
				want := aligned - mHead
				if freed := lg.Trim(); freed != want {
					t.Fatalf("step %d: Trim freed %d, model %d (head %d, min %d)",
						step, freed, want, mHead, minPos())
				}
				mHead = aligned
			case 4: // TrimTo(retain): clamp laggards, then free
				target := mTail - retain
				if target < 0 {
					target = 0
				}
				for i := range slots {
					if slots[i].attached && slots[i].pos < target {
						slots[i].drops += target - slots[i].pos
						slots[i].pos = target
					}
				}
				min := target
				for i := range slots {
					if slots[i].attached && slots[i].pos < min {
						min = slots[i].pos
					}
				}
				aligned := min &^ (segment - 1)
				want := 0
				if aligned > mHead {
					want = aligned - mHead
				}
				if freed := lg.TrimTo(retain); freed != want {
					t.Fatalf("step %d: TrimTo freed %d, model %d", step, freed, want)
				}
				if aligned > mHead {
					mHead = aligned
				}
			case 5, 7: // NewCursor (head) / NewTailCursor
				atTail := op%10 == 7
				free := -1
				for i := range slots {
					if !slots[i].attached {
						free = i
						break
					}
				}
				var c *Cursor[uint64]
				if atTail {
					c, err = lg.NewTailCursor()
				} else {
					c, err = lg.NewCursor()
				}
				if free < 0 {
					if !errors.Is(err, ErrLogConsumers) {
						t.Fatalf("step %d: attach with full pool: err = %v, want ErrLogConsumers", step, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("step %d: attach: %v", step, err)
				}
				if c.Slot() != free {
					t.Fatalf("step %d: attached slot %d, model %d", step, c.Slot(), free)
				}
				sm := &slots[free]
				sm.attached, sm.reads, sm.drops = true, 0, 0
				sm.pos = mHead
				if atTail {
					sm.pos = mTail
				}
				curs[free] = c
			case 6: // Close slot 0's cursor (re-Close is a no-op)
				if curs[0] != nil {
					curs[0].Close()
					curs[0] = nil
					slots[0].attached = false
				}
			case 8: // AppendBatch of 3, only when it fits without reclaim
				if capacity-(mTail-mHead) < batch {
					continue
				}
				vs := []uint64{v, v + 7, v + 14}
				moved, err := lg.AppendBatch(ctx, vs)
				if err != nil || moved != batch {
					t.Fatalf("step %d: AppendBatch = (%d, %v), want (%d, nil)", step, moved, err, batch)
				}
				history = append(history, vs...)
				mTail += batch
			case 9: // NextBatch of up to 3 on slot 0 (skip when it would block)
				if curs[0] == nil || !slots[0].attached || slots[0].pos >= mTail {
					continue
				}
				got, err := curs[0].NextBatch(ctx, batch)
				if err != nil {
					t.Fatalf("step %d: NextBatch: %v", step, err)
				}
				sm := &slots[0]
				want := mTail - sm.pos
				if want > batch {
					want = batch
				}
				if len(got) != want {
					t.Fatalf("step %d: NextBatch moved %d, want %d", step, len(got), want)
				}
				for i, g := range got {
					if g != history[sm.pos+i] {
						t.Fatalf("step %d: batch[%d] = %d, history %d (prefix order broken)",
							step, i, g, history[sm.pos+i])
					}
				}
				sm.pos += want
				sm.reads += want
			}

			// Invariants after every operation.
			if mHead%segment != 0 {
				t.Fatalf("step %d: model head %d not segment-aligned", step, mHead)
			}
			if min := minPos(); mHead > min {
				t.Fatalf("step %d: trim passed the minimum cursor: head %d, min %d", step, mHead, min)
			}
			if got := lg.Len(); got != mTail-mHead {
				t.Fatalf("step %d: Len = %d, model %d", step, got, mTail-mHead)
			}
			auditRing(t, m, &lg.rings[0], mHead, mTail, history[mHead:mTail])
			st := lg.Stats()
			if int(st.Appends) != mTail || int(st.Trimmed) != mHead {
				t.Fatalf("step %d: appends/trimmed = %d/%d, model %d/%d",
					step, st.Appends, st.Trimmed, mTail, mHead)
			}
			if int(st.FullRejects) != fulls {
				t.Fatalf("step %d: full rejects = %d, model %d", step, st.FullRejects, fulls)
			}
			for i := range slots {
				cs := st.Consumers[i]
				if cs.Attached != slots[i].attached {
					t.Fatalf("step %d: slot %d attached = %v, model %v", step, i, cs.Attached, slots[i].attached)
				}
				if slots[i].attached {
					if int(cs.Reads) != slots[i].reads || int(cs.Drops) != slots[i].drops {
						t.Fatalf("step %d: slot %d reads/drops = %d/%d, model %d/%d",
							step, i, cs.Reads, cs.Drops, slots[i].reads, slots[i].drops)
					}
					if wantLag := mTail - slots[i].pos; cs.Lag != wantLag {
						t.Fatalf("step %d: slot %d lag = %d, model %d", step, i, cs.Lag, wantLag)
					}
				}
			}
		}
	})
}
