// Package wflocks provides fast and fair randomized wait-free locks —
// a Go implementation of Ben-David and Blelloch, "Fast and Fair
// Randomized Wait-Free Locks", PODC 2022 (arXiv:2108.04520).
//
// # What it gives you
//
// A TryLock operation takes a set of locks and a critical section. If
// the attempt wins, the critical section has been executed (atomically
// with respect to every other critical section sharing a lock) by the
// time TryLock returns true; if it fails, the critical section has not
// run and never will. The guarantees, with κ the maximum number of
// simultaneous attempts on any lock, L the maximum locks per attempt,
// and T the maximum critical-section length:
//
//   - Wait-freedom with a step bound: every attempt finishes within
//     O(κ²L²T) of the caller's own steps, no matter how the scheduler
//     delays anyone else. Stalled winners are helped: their critical
//     sections are executed by competitors, exactly once, thanks to an
//     idempotent-execution layer.
//   - Fairness: every attempt wins with probability at least 1/(κL),
//     even against an adversary that decides when to start attempts
//     knowing the entire history. Retrying therefore succeeds in
//     O(κL) expected attempts.
//
// # Quick start
//
//	m, err := wflocks.New(wflocks.WithKappa(2), wflocks.WithMaxLocks(2),
//		wflocks.WithMaxCriticalSteps(64))
//	if err != nil { ... }
//	a, b := m.NewLock(), m.NewLock()
//	balanceA, balanceB := wflocks.NewCell(100), wflocks.NewCell(0)
//
//	p := m.NewProcess() // one per goroutine
//	ok := m.TryLock(p, []*wflocks.Lock{a, b}, 8, func(tx *wflocks.Tx) {
//		v := tx.Read(balanceA)
//		tx.Write(balanceA, v-10)
//		w := tx.Read(balanceB)
//		tx.Write(balanceB, w+10)
//	})
//
// Critical sections access shared state only through Cells and the Tx
// operations (Read, Write, CAS); this is what makes them idempotent so
// that helpers can safely re-execute them. They must be deterministic
// given those operations' results, must not nest TryLock, and must
// perform at most the declared number of operations.
//
// # Choosing the bounds
//
// If κ and L are hard to bound a priori, construct the manager with
// WithUnknownBounds(P) (P = number of processes): the algorithm then
// needs no κ/L knowledge, at the cost of a log(κLT) factor in the
// success probability (paper Theorem 6.10).
package wflocks
