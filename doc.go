// Package wflocks provides fast and fair randomized wait-free locks —
// a Go implementation of Ben-David and Blelloch, "Fast and Fair
// Randomized Wait-Free Locks", PODC 2022 (arXiv:2108.04520) — behind an
// idiomatic API: typed generic cells, implicit per-goroutine process
// handles, and context-aware acquisition.
//
// # What it gives you
//
// An acquisition takes a set of locks and a critical section. If the
// attempt wins, the critical section has been executed (atomically
// with respect to every other critical section sharing a lock) by the
// time the call returns; if it fails, the critical section has not
// run and never will. The guarantees, with κ the maximum number of
// simultaneous attempts on any lock, L the maximum locks per attempt,
// and T the maximum critical-section length:
//
//   - Wait-freedom with a step bound: every attempt finishes within
//     O(κ²L²T) of the caller's own steps, no matter how the scheduler
//     delays anyone else. Stalled winners are helped: their critical
//     sections are executed by competitors, exactly once, thanks to an
//     idempotent-execution layer.
//   - Fairness: every attempt wins with probability at least 1/(κL),
//     even against an adversary that decides when to start attempts
//     knowing the entire history. Retrying therefore succeeds in
//     O(κL) expected attempts.
//
// # Quick start
//
//	m, err := wflocks.New(wflocks.WithKappa(2), wflocks.WithMaxLocks(2),
//		wflocks.WithMaxCriticalSteps(64))
//	if err != nil { ... }
//	a, b := m.NewLock(), m.NewLock()
//	balanceA, balanceB := wflocks.NewCell(100), wflocks.NewCell(0)
//
//	err = m.Do([]*wflocks.Lock{a, b}, 4, func(tx *wflocks.Tx) {
//		v := wflocks.Get(tx, balanceA)
//		wflocks.Put(tx, balanceA, v-10)
//		w := wflocks.Get(tx, balanceB)
//		wflocks.Put(tx, balanceB, w+10)
//	})
//
// Do retries wait-free attempts under the manager's RetryPolicy
// (default: yield between attempts) until one wins, managing the
// per-goroutine process handle implicitly. DoCtx is the same with
// cancellation: it stops retrying and returns ErrCanceled when its
// context is done. For single-attempt semantics — "run this atomically
// if I win the locks, tell me if I didn't" — use TryLock with an
// explicit Process handle, which also carries per-process step
// accounting.
//
// # Typed cells
//
// Critical sections access shared state only through Cells and the
// typed accessors (Get, Put, CompareSwap); this is what makes them
// idempotent so that helpers can safely re-execute them. Cells are
// generic: NewCell covers any integer type in one machine word,
// NewBoolCell and NewFloat64Cell cover bool and float64, and NewCellOf
// with a CodecFunc codec stores small structs across multiple words:
//
//	type account struct{ Balance, Version uint64 }
//	codec := wflocks.CodecFunc(2,
//		func(a account, dst []uint64) { dst[0], dst[1] = a.Balance, a.Version },
//		func(src []uint64) account { return account{src[0], src[1]} })
//	acct := wflocks.NewCellOf(codec, account{Balance: 100})
//
// Each machine word costs one operation of the call's maxOps budget.
// Critical sections must be deterministic given the accessors'
// results, must not nest acquisitions, and must perform at most the
// declared number of operations. Outside critical sections, read and
// write cells with Load and Store (implicit pooled handle) or
// Cell.Get and Cell.Set (explicit handle).
//
// # Built-in data structures: the shard layer
//
// Map is the first data structure served by the locks: a generic
// lock-sharded concurrent hash map (NewMap, NewMapOf). Keys hash to
// one of a power-of-two number of shards; each shard owns one Lock
// guarding an open-addressed region of typed cells, so per-lock
// contention is the per-shard κ, not the process count, and the
// worst-case critical section T is bounded by the shard capacity
// (MapCriticalSteps computes the WithMaxCriticalSteps bound a hosting
// manager needs). Get, Put, Delete and the read-modify-write Update
// are single-lock critical sections under Do. Swap, which atomically
// exchanges two keys' values, is where the paper's lock-set bound L
// surfaces in the API: a cross-shard Swap holds both shard locks in
// one acquisition, so the manager must allow L ≥ 2 and the attempt
// pays the 1/(κL) success probability and O(κ²L²T) step bound at
// L = 2. Len and Range stay off the locks entirely — Range validates
// per-shard seqlock versions to return consistent snapshots. Map.Stats
// exposes per-shard contention counters (the same counters the shard
// locks contribute to StatsSnapshot.Locks) plus a Jain balance index
// over shards.
//
// Cache (NewCache, NewCacheOf) layers LRU eviction and optional TTL on
// the same shard architecture. Each shard adds an intrusive doubly-
// linked recency list held in cells — prev/next bucket indices plus
// head/tail anchors — so a Get's move-to-front and a full shard's
// tail eviction are pointer surgery executed inside the critical
// section, re-executable by helpers like any other body. Put never
// fails: at capacity it displaces the shard's LRU tail in the same
// atomic step as its insert. GetOrCompute computes outside the lock
// and installs under it with a re-probe, so concurrent misses agree
// on one value and a slow computation never stretches a critical
// section.
//
// # Sizing critical-section budgets
//
// The budget helpers (MapCriticalSteps, CacheCriticalSteps) show how
// T is engineered as structures grow richer. Every cell word read or
// written inside a body costs one operation, so a budget is just an
// audit of the worst-case body. For the map that is a full-region
// probe — capacity × (1 + keyWords) — plus a constant for the insert
// and bookkeeping writes. The cache's LRU surgery extends the same
// audit: a move-to-front is at most 9 single-word cell ops (three
// pointer reads, six writes), an eviction at most a dozen, all
// constants independent of the region size, so CacheCriticalSteps is
// the same probe term with a larger additive constant. The pattern
// generalizes: bounded-degree pointer surgery adds O(1) per
// operation, and only region scans contribute linear terms — which is
// why neither structure rehashes, and why both bound T by
// construction rather than hoping workloads stay polite.
//
// # Errors and observability
//
// Acquisitions validate their arguments and return typed sentinel
// errors: ErrNoLocks, ErrTooManyLocks (lock set beyond L),
// ErrMaxOpsExceeded (ops budget beyond T), ErrCanceled (DoCtx or
// LockCtx context done) and ErrMapFull (a Map shard out of buckets).
// New audits its Options the same way. Manager.Stats returns a
// StatsSnapshot with manager-wide and per-lock attempt/win/help
// counters.
//
// # Choosing the bounds
//
// If κ and L are hard to bound a priori, construct the manager with
// WithUnknownBounds(P) (P = number of processes): the algorithm then
// needs no κ/L knowledge, at the cost of a log(κLT) factor in the
// success probability (paper Theorem 6.10).
//
// The bounds are a contract, not a throttle: neither the implicit
// handle pool nor the acquisition paths limit how many goroutines
// attempt concurrently, so κ must cover the peak number of goroutines
// that can contend on any one lock (and P the total, in unknown-bounds
// mode). Exceeding them panics once a lock's announcement capacity
// overflows.
package wflocks
