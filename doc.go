// Package wflocks provides fast and fair randomized wait-free locks —
// a Go implementation of Ben-David and Blelloch, "Fast and Fair
// Randomized Wait-Free Locks", PODC 2022 (arXiv:2108.04520) — behind an
// idiomatic API: typed generic cells, implicit per-goroutine process
// handles, and context-aware acquisition.
//
// # What it gives you
//
// An acquisition takes a set of locks and a critical section. If the
// attempt wins, the critical section has been executed (atomically
// with respect to every other critical section sharing a lock) by the
// time the call returns; if it fails, the critical section has not
// run and never will. The guarantees, with κ the maximum number of
// simultaneous attempts on any lock, L the maximum locks per attempt,
// and T the maximum critical-section length:
//
//   - Wait-freedom with a step bound: every attempt finishes within
//     O(κ²L²T) of the caller's own steps, no matter how the scheduler
//     delays anyone else. Stalled winners are helped: their critical
//     sections are executed by competitors, exactly once, thanks to an
//     idempotent-execution layer.
//   - Fairness: every attempt wins with probability at least 1/(κL),
//     even against an adversary that decides when to start attempts
//     knowing the entire history. Retrying therefore succeeds in
//     O(κL) expected attempts.
//
// # Quick start
//
//	m, err := wflocks.New(wflocks.WithUnknownBounds(8), // ≤8 goroutines attempt concurrently
//		wflocks.WithMaxLocks(2), wflocks.WithMaxCriticalSteps(64))
//	if err != nil { ... }
//	a, b := m.NewLock(), m.NewLock()
//	balanceA, balanceB := wflocks.NewCell(100), wflocks.NewCell(0)
//
//	err = m.Do([]*wflocks.Lock{a, b}, 4, func(tx *wflocks.Tx) {
//		v := wflocks.Get(tx, balanceA)
//		wflocks.Put(tx, balanceA, v-10)
//		w := wflocks.Get(tx, balanceB)
//		wflocks.Put(tx, balanceB, w+10)
//	})
//
// WithUnknownBounds(P) selects the adaptive delay variant — the
// recommended default; see "Choosing a delay variant" below for when
// the known-bounds alternative (WithKappa) is worth configuring.
//
// Do retries wait-free attempts under the manager's RetryPolicy
// (default: yield between attempts) until one wins, managing the
// per-goroutine process handle implicitly. DoCtx is the same with
// cancellation: it stops retrying and returns ErrCanceled when its
// context is done. For single-attempt semantics — "run this atomically
// if I win the locks, tell me if I didn't" — use TryLock with an
// explicit Process handle, which also carries per-process step
// accounting.
//
// # Typed cells
//
// Critical sections access shared state only through Cells and the
// typed accessors (Get, Put, CompareSwap); this is what makes them
// idempotent so that helpers can safely re-execute them. Cells are
// generic: NewCell covers any integer type in one machine word,
// NewBoolCell and NewFloat64Cell cover bool and float64, and NewCellOf
// with a CodecFunc codec stores small structs across multiple words:
//
//	type account struct{ Balance, Version uint64 }
//	codec := wflocks.CodecFunc(2,
//		func(a account, dst []uint64) { dst[0], dst[1] = a.Balance, a.Version },
//		func(src []uint64) account { return account{src[0], src[1]} })
//	acct := wflocks.NewCellOf(codec, account{Balance: 100})
//
// Each machine word costs one operation of the call's maxOps budget.
// Critical sections must be deterministic given the accessors'
// results, must not nest acquisitions, and must perform at most the
// declared number of operations. Outside critical sections, read and
// write cells with Load and Store (implicit pooled handle) or
// Cell.Get and Cell.Set (explicit handle).
//
// # Built-in data structures: the shard-table engine
//
// Map and Cache are built on one shared shard-table engine
// (internal/table): a power-of-two shard array of open-addressed
// bucket regions held in cells, with the hashing, probing, seqlock
// versioning and budget math in one place. Every structure's per-lock
// contention is the per-shard κ, not the process count, and the
// worst-case critical section T is bounded by the shard capacity —
// the budget helpers (MapCriticalSteps, CacheCriticalSteps) are two
// parameterizations of the engine's one formula.
//
// Map is a generic lock-sharded concurrent hash map (NewMap,
// NewMapOf). Get, Put, Delete and the read-modify-write Update are
// single-lock critical sections under Do. Len stays off the locks
// entirely (a lock-free sum of per-shard size cells), and iteration is
// range-over-func — All, Keys, Values return iter.Seq iterators whose
// per-shard snapshots validate the engine's seqlock versions, so they
// never block writers and never surface a torn entry (the callback
// Range remains as a deprecated wrapper). Map.Stats exposes per-shard
// contention counters (the same counters the shard locks contribute to
// StatsSnapshot.Locks) plus a Jain balance index over shards.
//
// Cache (NewCache, NewCacheOf) layers LRU eviction and optional TTL on
// the same shard architecture. Each shard adds an intrusive doubly-
// linked recency list held in cells — prev/next bucket indices plus
// head/tail anchors — so a Get's move-to-front and a full shard's
// tail eviction are pointer surgery executed inside the critical
// section, re-executable by helpers like any other body. Put never
// fails: at capacity it displaces the shard's LRU tail in the same
// atomic step as its insert. GetOrCompute computes outside the lock
// and installs under it with a re-probe, so concurrent misses agree
// on one value and a slow computation never stretches a critical
// section. Contains is the pure peek — one probe, no recency bump, no
// expiry reclaim, no counter traffic — and Cache.All iterates
// unexpired entries lock-free under the engine's seqlock, like
// Map.All.
//
// # Multi-key transactions
//
// Atomic is where the paper's lock-set bound L surfaces in the API: a
// transaction declares its key set up front, the involved shard locks
// are deduplicated, sorted by lock ID and acquired in one wait-free
// multi-lock attempt, and the body runs Get/Put/Delete on the named
// keys as a single critical section — commit is all-or-nothing with
// respect to every other critical section, and a stalled transaction
// is completed by helpers like any other body. Transaction bodies are
// idempotent by construction: every access flows through the
// idempotence layer, results route through fresh cells (MapTxn.Tx
// exposes the handle), and MapTxn.Keys gives bodies an immutable key
// list to iterate. Swap is now a thin two-key Atomic wrapper; GetBatch
// and PutBatch ride the same path, chunking arbitrarily large key sets
// into acquisitions of at most MaxLocks shards. AtomicAll composes
// regions (Map.Region) from several structures on one manager into one
// transaction — a checking map and a savings map can move value
// between them atomically (see examples/bank).
//
// # Queues and work distribution
//
// Queue (NewQueue, NewQueueOf) is the producer/consumer primitive: a
// bounded MPMC FIFO ring whose head/tail tickets, element slots and
// per-slot occupancy sequence numbers are all cells, so every enqueue
// and dequeue is a single-lock idempotent critical section — the
// index surgery is re-executed by helpers without double-applying,
// and a stalled producer or consumer never wedges the queue.
// TryEnqueue/TryDequeue fail fast on full/empty; Enqueue/Dequeue wait
// under the manager's RetryPolicy with context cancellation; and
// EnqueueBatch/DequeueBatch move chunks of up to WithQueueBatch
// elements per critical section, amortizing acquisitions the way the
// map's batches amortize shard locks.
//
// WorkPool (NewWorkPool, NewWorkPoolOf) is the sharded relaxed-FIFO
// layer for independent work items: round-robin submission across
// per-shard sub-rings, home-shard consumption, and — when a
// consumer's home shard is empty while another holds work — a
// two-lock steal (the multi-lock path at L=2) that returns one
// element and migrates a small batch to the home shard. Ordering is
// FIFO per shard only; that is the deliberate price of submit
// throughput that scales with the shard count and stalls confined to
// one shard. Queue is for order-bearing streams, WorkPool for
// pipelines (see examples/pipeline).
//
// # Broadcast logs and fan-out
//
// Log (NewLog, NewLogOf) is the fan-out shape: producers append once,
// every attached Cursor replays the full stream independently, and
// fully-consumed segments are reclaimed by trim — pub/sub, replay,
// pipeline broadcast. It reuses the queue's cell layout (each shard
// is a ticket ring guarded by one lock; appends are single-lock
// sections, batched by WithLogBatch), and adds per-consumer read
// positions that live in typed cells themselves: every cursor write —
// a Next/NextBatch advance, attach, Close, a TrimTo clamp — is a
// two-lock {shard lock, cursor lock} critical section, the paper's
// multi-lock acquisition at L=2. That placement is the point of the
// structure. Reclamation reads the minimum cursor position under the
// shard lock, and since positions only move under that lock, a
// consumer stalled mid-advance is helped past its advance rather than
// waited on — a lagging subscriber holds retention back (the
// contract), but a stalled one can never wedge trim, appends, or
// other readers. Capacity is fixed; a full shard's append reclaims up
// to one fully-consumed segment in-section, so steady-state producers
// ride behind the slowest cursor as backpressure, and TrimTo bounds
// retention by force, advancing laggards and counting what they
// missed as drops. Entries are totally ordered within a shard only;
// AppendKeyed pins a key to one shard as a hard per-key ordering
// guarantee, not a locality hint (see examples/pubsub).
//
// # Sizing critical-section budgets
//
// The budget helpers (MapCriticalSteps, CacheCriticalSteps,
// QueueCriticalSteps, WorkPoolCriticalSteps, LogCriticalSteps) show
// how T is engineered
// as structures grow richer. Every cell word read or written inside a
// body costs one operation, so a budget is just an audit of the
// worst-case body. For the map that is a full-region probe —
// capacity × (1 + keyWords) — plus a constant for the insert and
// bookkeeping writes. The cache's LRU surgery extends the same audit:
// a move-to-front is at most 9 single-word cell ops (three pointer
// reads, six writes), an eviction at most a dozen, all constants
// independent of the region size, so CacheCriticalSteps is the same
// probe term with a larger additive constant. The queue sits at the
// other extreme: there is no probe at all, so QueueCriticalSteps has
// no capacity term — a worst-case item is ticket reads, a slot write,
// a sequence write and counter updates (2·valueWords + a small
// constant), times the batch size, plus fixed routing overhead.
// WorkPoolCriticalSteps is the same formula with the batch floored at
// the steal section's cost (one dequeue plus stealBatch
// dequeue/enqueue migration pairs). LogCriticalSteps carries two new
// terms the log's shape forces in: the in-section reclaim scans every
// consumer slot's position for the minimum (a `consumers` term — the
// slot pool is fixed at construction precisely so that scan is
// bounded) and then clears one segment (a `segment` term), so both
// knobs price directly into T. The pattern generalizes:
// bounded-degree surgery adds O(1) per operation, and only region
// scans contribute linear terms — which is why no structure here
// rehashes or grows, and why each bounds T by construction rather
// than hoping workloads stay polite. Note the queue consequence:
// because T excludes any capacity term, a queue's WithQueueCapacity
// is free as far as the delay schedule is concerned, while its batch
// size is not — batches trade per-item acquisition overhead against a
// longer T that every attempt's delays scale with.
//
// # Errors and observability
//
// Acquisitions validate their arguments and return typed sentinel
// errors: ErrNoLocks, ErrTooManyLocks (lock set beyond L),
// ErrMaxOpsExceeded (ops budget beyond T), ErrCanceled (DoCtx, LockCtx
// or AtomicCtx context done), ErrMapFull (a Map shard out of buckets),
// ErrCrossManager (an AtomicAll region on a foreign manager) and
// ErrOverlappingRegions (two AtomicAll regions sharing a shard).
// New audits its Options the same way. Manager.Stats returns a
// StatsSnapshot with manager-wide and per-lock attempt/win/help
// counters.
//
// # Choosing L: MaxLocks, sorted acquisition, and the κ²L²T cost
//
// WithMaxLocks is a price list, not just a limit. Every attempt —
// even a single-lock one — pays fixed delays of c·κ²L²T of its own
// steps, with L and T the manager-wide bounds; and a transaction over
// L keys also grows T itself, since its budget is L single-shard
// budgets (MapAtomicSteps). The delay product therefore steepens
// roughly as L³ as a manager is configured for wider transactions.
// Acquisition order never matters for correctness — the multi-lock
// attempt is atomic, not incremental — but Atomic still sorts lock
// sets canonically (by lock ID) so identical transactions are
// identical attempts.
//
// The txn:transfer sweep (cmd/wfbench -workload txn:transfer, or
// BenchmarkTxn) quantifies the trade against a sorted-multi-mutex
// baseline, with each wfmap row's manager sized for its L and both
// delay variants swept. Raw, the blocking baseline wins throughout
// and the gap widens with L — adaptive wfmap runs ~300000 vs the
// baseline's ~4100000 txns/sec at L=1, narrowing to ~29000 vs
// ~1600000 at L=8 on one 2.1 GHz core, the delay schedule steepening
// with L exactly as the cost model predicts. In the paper's
// holder-stall regime (4ms stalls every 16 value writes), helping
// flips the low-L comparison: adaptive wfmap sustains ~7300 vs ~5900
// (L=1) and ~2400 vs ~2000 (L=2) txns/sec, because a stalled mutex
// holder serializes every transaction sharing any held shard while
// wfmap's competitors re-execute the stalled body and move on; by L=4
// the delay product overtakes the stall savings (~760 vs ~950) and at
// L=8 the baseline is ~2× ahead. The practical guidance: configure
// WithMaxLocks for the transactions you actually run (L=2–4 covers
// transfers and swaps), keep hot multi-key paths narrow, and treat
// wide transactions as a correctness tool rather than a throughput
// path.
//
// # From ops/sec to tail latency
//
// Throughput tables answer "how much work per second"; a service is
// judged by "how late was the slowest request I still had to answer".
// The wfserve server (cmd/wfserve, internal/serve) exists to measure
// the second question: RESP-subset commands over TCP, dispatched by
// key hash through a WorkPool into workers running against Map, Cache
// or a sharded-mutex baseline, with per-connection pipelining and
// graceful drain. What makes its numbers trustworthy is the load
// harness (internal/serve/loadgen, cmd/wfload), which guards against
// coordinated omission — the classic benchmarking error in which the
// load generator and the system under test cooperate to hide the
// worst results. A closed-loop client sends a request, waits for the
// reply, then sends the next; when the server stalls for 4ms, the
// client politely stops generating load, so the stall appears in the
// record as one slow request instead of the dozens of requests that
// *would* have arrived during those 4ms and queued behind it. The
// percentiles come out clean precisely because the system misbehaved.
//
// The harness is therefore open-loop: request i is due at time
// i/rate on a fixed schedule that the server cannot slow down, and
// every latency is measured from that intended send time, so a
// request that spent 4ms queued behind a stalled holder records 4ms
// plus its service time no matter when the bytes finally moved. Under
// this accounting the paper's regime comparison becomes visible in
// the right units: self-stalled requests cost the wait-free server
// and the mutex baseline the same sleep, but the requests scheduled
// *behind* a stalled mutex holder inherit its stall as queueing delay
// while a stalled wait-free winner is helped past — collateral
// queueing is exactly the quantity the O(κ²L²T) step bound controls.
// The service:* scenarios (cmd/wfbench -workload service:read) report
// both regimes honestly: raw, the wait-free backend's median now
// matches the mutex baseline (the allocation-free hot paths and the
// uncontended fast path removed the old constant-factor penalty)
// while the mutex keeps a modest edge in the raw tails; under holder
// stalls the whole distribution inverts in the wait-free backend's
// favor.
//
// # Choosing a delay variant
//
// Every manager runs one of two delay schedules, and the choice is the
// single most consequential configuration decision:
//
//   - Adaptive (WithUnknownBounds(P)) — the recommended default. The
//     paper's Section 6.2 variant needs only P, an upper bound on the
//     goroutines that attempt locks concurrently, and discovers the
//     actual contention per attempt: delays are powers of two scaled
//     by the contention each attempt observes, so light contention
//     means short delays without any κ to estimate (and mis-estimate).
//     The cost is a log(κLT) factor in the per-attempt success
//     probability (paper Theorem 6.10) — paid in retries, which the
//     fairness bound keeps cheap in expectation.
//   - Known bounds (WithKappa(κ)) — the paper's base Algorithm 3 with
//     fixed delays T0 = c·κ²L²T and T1 = c′·κLT. It beats the adaptive
//     variant when κ is genuinely known, tight, and stable, because it
//     never spends attempts discovering what you already told it. If κ
//     is overestimated, every attempt pays the inflated schedule; if
//     underestimated, announcement capacity can overflow (a panic).
//     WithDelayConstants tunes c and c′ for experiments.
//
// The measured gap is modest and bounded — on one 2.1 GHz core,
// uncontended Do runs ~1.9µs adaptive vs ~1.1µs known-bounds, a
// contended acquisition ~1.3µs vs ~0.8µs, and a single-key Map
// operation ~156ns vs ~132ns (BenchmarkDoUncontended/DoContended/Map
// and their *Known siblings; cmd/wfbench sweeps every scenario under
// both variants via -variant known|adaptive|both). Against that
// 20–70% constant-factor premium, the adaptive variant removes the
// failure mode that actually bites in production: a κ sized for peak
// contention taxing the off-peak 99% of traffic, or a κ sized for
// typical contention panicking at peak. Start with WithUnknownBounds;
// reach for WithKappa when the contention structure is fixed by
// construction (e.g. a sharded structure whose per-lock κ is pinned by
// the worker count).
//
// Two constant-factor optimizations apply to both variants. The
// uncontended fast path (on by default, WithFastPath(false) to
// disable) checks each target lock's announcement set at the start of
// an attempt; when every lock is observed free the attempt skips the
// delay schedule entirely, collapsing the uncontended acquisition to
// announce-resolve-run. Correctness is unchanged — the skip only
// drops delays whose purpose is contention dispersal, and the
// wait-free step bound still holds because the fast attempt is a
// strict prefix of a slow one. StatsSnapshot.FastPath counts the
// skips. Second, the hot paths are allocation-free: process handles
// are pooled per goroutine, execution descriptors and map-operation
// frames come from per-process bump arenas, and the single-key
// Map/Cell paths run at 0 allocs/op (pinned by testing.AllocsPerRun
// regression tests). Arenas never recycle a published object — the
// idempotence layer's correctness rests on pointer freshness — they
// only amortize allocation of fresh ones.
//
// The bounds are a contract, not a throttle: neither the implicit
// handle pool nor the acquisition paths limit how many goroutines
// attempt concurrently, so κ must cover the peak number of goroutines
// that can contend on any one lock (and P the total concurrent
// attempters, in unknown-bounds mode). Exceeding them panics once a
// lock's announcement capacity overflows.
//
// # Observing helping in production
//
// The algorithm's distinguishing behavior — competitors re-executing a
// stalled winner's critical section — is invisible to ordinary latency
// monitoring: the stalled goroutine's operation completes on time
// because someone else ran it. Three layers of instrumentation make
// the machinery visible, each off (and free) by default.
//
// Stats is always on: cheap per-lock and manager-wide counters
// (attempts, wins, helps, fast-path skips) whose derived
// StatsSnapshot.HelpRate is the first number to watch — near 0 the
// locks are behaving like uncontended mutexes, rising it means helpers
// are carrying stalled winners' work. Read the three rates against the
// benchmarks' two regimes: in the raw regime FastPathRate sits near 1,
// HelpRate near 0, and the delay share near 0 — the machinery is idle
// and the locks cost their constant factors. Under stalls FastPathRate
// falls (attempts observe competitors), HelpRate climbs (it can exceed
// 1: one attempt may run several stalled descriptors), and the delay
// share reports how much of the attempts' own step budget the paper's
// dispersal delays consumed. StatsSnapshot.Sub turns two snapshots
// into a per-interval delta for dashboards and benchmarks.
//
// WithMetrics adds latency distributions: per-P sharded HDR-style
// histograms (relative error ≤ 3.1%) of acquisition latency,
// delay-schedule steps charged per attempt, and help-run wall
// durations, plus the delay share — the fraction of all attempt steps
// burned in the paper's delay schedule. Recording is a handful of
// atomic adds into cache-line-padded shards; the hot paths stay
// allocation-free (pinned by the same AllocsPerRun regression tests),
// and a manager without metrics pays exactly one nil check per
// attempt. Manager.Observe merges the shards into an ObsSnapshot at
// scrape time.
//
// WithTracing(rate) additionally samples one attempt in rate through a
// fixed-size lock-free flight recorder: the sampled attempt emits its
// lifecycle — start, fast-path, each delay point with its computed
// bound, each descriptor it helped (lock ID and wall duration), and
// the final win or lose — into a ring whose Append never blocks,
// allocates, or grows. ObsSnapshot.Events returns the current window;
// sequence numbers are gap-free at the writer, so gaps in a snapshot
// reveal exactly how much the ring evicted.
//
// The serve tier exposes all of it live: wfserve -metrics ADDR serves
// a Prometheus-style /metrics (lock counters, latency quantiles,
// delay share, per-op service times, dispatch-pool and backend-table
// shape), expvar at /debug/vars, and pprof at /debug/pprof/; the RESP
// STATS command reports the same numbers in-band.
//
// # Tracing a request end to end
//
// The counters above say how much helping happened; the causal layer
// says to whom. Three pieces join a slow request to the lock-level
// stall that explains it.
//
// Stall attribution charges every help run and delay step to the lock
// it happened on: ObsSnapshot.Locks lists per-lock rows (helps, help
// nanoseconds, delay steps, alerts), and Map.ShardLockID /
// Cache.ShardLockID report which shard lock a given key's operations
// run under, so "which keys pay for that lock" is a pure hash
// computation away. WithStallWatchdog arms bounds on top: an attempt
// charged more delay steps than one bound, or a single help run
// longer than the other, counts ObsSnapshot.StallAlerts, attributes
// the excession to its lock, and lands in a small alert ring
// (ObsSnapshot.Alerts) — every excession alerts, not just sampled
// ones, so the watchdog is production alerting, not debugging.
// ObsSnapshot.Sub turns two snapshots into the interval delta the
// benchmark tables and dashboards print (histograms subtract
// bucket-wise; Events/Alerts windows pass through).
//
// The serve tier stamps a request span — read, admit, queue, execute,
// flush, each a timestamp in the request's slab slot — for every
// request when tracing is on, tagged with the shard lock ID its key
// hashes to. /debug/wftrace (and wfload -tracefile) export the span
// ring joined with the lock-level flight recorder as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev): process 1
// shows requests by slab slot, process 2 shows lock attempts by pid,
// and "why did this GET take 3ms" becomes visually finding the help
// slice on lock N under the GET's span that names lock N.
//
// cmd/wftop watches the same numbers live: it polls /metrics or RESP
// STATS every interval into a short time-series window and redraws
// ops/s, help rate, fast-path rate, delay share, stall alerts and
// per-shard occupancy; wftop -once prints a single report, and with
// -minhelp fails unless the help rate reaches a bound — the CI shape
// of "helping actually happened under the stall regime".
package wflocks
