package wflocks

import (
	"fmt"
	"math/bits"
	"runtime"

	"wflocks/internal/env"
	"wflocks/internal/stats"
)

// Map is a generic lock-sharded concurrent hash map built on the
// manager's wait-free locks. Keys are hashed to one of a power-of-two
// number of shards; each shard owns one Lock guarding an open-addressed
// region of typed cells (bucket metadata, key, value), so operations on
// different shards never contend. Get, Put, Delete and the two-shard
// Swap run as critical sections under Manager.Do and therefore inherit
// the locks' guarantees: a stalled writer can never block the map —
// competitors help its critical section complete — and every operation
// finishes within the O(κ²L²T) step bound.
//
// The map has fixed capacity (shards × per-shard capacity, both rounded
// up to powers of two): Put returns ErrMapFull when a key's shard has
// no free bucket. There is no rehashing — growing a region would make
// the worst-case critical section unbounded, voiding the T bound — so
// size the map for the workload with WithShards and WithShardCapacity.
//
// Len and Range read outside critical sections. Range takes a per-shard
// snapshot using a seqlock-style version cell that every mutation bumps
// (odd while a mutation's effects are being applied, even at rest): a
// shard scan is retried until the version is stable, so the callback
// observes each shard at one consistent instant. Construct with NewMap
// (integer keys and values) or NewMapOf (explicit codecs).
type Map[K comparable, V any] struct {
	m       *Manager
	kc      Codec[K]
	vc      Codec[V]
	kscalar ScalarCodec[K] // non-nil: allocation-free hash path

	shards    []mapShard[K, V]
	shardMask uint64
	capMask   uint64
	capacity  int // buckets per shard

	seed       uint64
	opBudget   int // maxOps of a single-shard critical section
	swapBudget int // maxOps of Swap's (up to) two-shard critical section
}

// mapShard is one shard: a lock plus its bucket region.
type mapShard[K comparable, V any] struct {
	lock *Lock
	// ver is the shard's seqlock version: mutations bump it to odd
	// before touching buckets and back to even after, so lock-free
	// readers (Range) can detect interference.
	ver  *Cell[uint64]
	size *Cell[uint64]
	// meta[i] holds the bucket state in the low two bits (empty,
	// full, tombstone) and, for full buckets, the key hash with those
	// bits cleared — a cheap filter that skips decoding non-matching
	// keys during probes.
	meta []*Cell[uint64]
	keys []*Cell[K]
	vals []*Cell[V]
}

// Bucket states (low two bits of a meta word). Empty terminates a
// probe; tombstones (left by Delete) keep probe chains intact and are
// reused by Put.
const (
	bucketEmpty     uint64 = 0
	bucketFull      uint64 = 1
	bucketTombstone uint64 = 2
	bucketStateMask uint64 = 3
)

// Default map shape: 8 shards × 64 buckets.
const (
	defaultMapShards   = 8
	defaultMapCapacity = 64
)

// MapOption configures a Map at construction.
type MapOption func(*mapConfig) error

type mapConfig struct {
	shards   int
	capacity int
}

// WithShards sets the number of shards, rounded up to a power of two
// (default 8). More shards mean fewer key collisions on any one lock —
// per-lock contention drops toward P/shards — and smaller bucket
// regions, which shortens the worst-case critical section T and with it
// every attempt's fixed delays.
func WithShards(n int) MapOption {
	return func(c *mapConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithShards: shard count must be positive, got %d", n)
		}
		c.shards = ceilPow2(n)
		return nil
	}
}

// WithShardCapacity sets the number of buckets per shard, rounded up to
// a power of two (default 64). Capacity bounds the worst-case probe
// length and hence the critical-section budget: see MapCriticalSteps.
func WithShardCapacity(n int) MapOption {
	return func(c *mapConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithShardCapacity: capacity must be positive, got %d", n)
		}
		c.capacity = ceilPow2(n)
		return nil
	}
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// MapCriticalSteps returns the WithMaxCriticalSteps bound T a Manager
// needs to host a Map with the given per-shard capacity (rounded up to
// a power of two, as WithShardCapacity rounds) and key/value codec
// widths in words. It covers the worst case of any single-shard
// operation: a full-region probe (capacity × (1 + keyWords) ops) plus
// the insert writes, the size and seqlock-version updates, and the
// result-cell writes. Swap runs two such probes in one critical
// section, so it needs 2× this bound; NewMapOf only requires the 1×
// bound, and Swap reports ErrMaxOpsExceeded if the manager cannot
// accommodate it.
func MapCriticalSteps(shardCapacity, keyWords, valueWords int) int {
	cap := ceilPow2(shardCapacity)
	return cap*(1+keyWords) + keyWords + 2*valueWords + 10
}

// NewMap creates a map with integer keys and values, the common case,
// using the built-in single-word codecs. See NewMapOf for arbitrary
// types.
func NewMap[K Integer, V Integer](m *Manager, opts ...MapOption) (*Map[K, V], error) {
	return NewMapOf[K, V](m, IntegerCodec[K](), IntegerCodec[V](), opts...)
}

// NewMapOf creates a map whose keys and values are encoded by the given
// codecs (use CodecFunc for multi-word struct keys or values). The
// manager's WithMaxCriticalSteps bound must cover a worst-case
// single-shard operation — MapCriticalSteps computes the requirement —
// or NewMapOf reports it as an error.
func NewMapOf[K comparable, V any](m *Manager, kc Codec[K], vc Codec[V], opts ...MapOption) (*Map[K, V], error) {
	cfg := mapConfig{shards: defaultMapShards, capacity: defaultMapCapacity}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	opBudget := MapCriticalSteps(cfg.capacity, kc.Words(), vc.Words())
	if opBudget > m.cfg.maxCritical {
		return nil, fmt.Errorf(
			"wflocks: NewMapOf: shard capacity %d with %d-word keys and %d-word values needs "+
				"WithMaxCriticalSteps(%d), manager has %d (see MapCriticalSteps)",
			cfg.capacity, kc.Words(), vc.Words(), opBudget, m.cfg.maxCritical)
	}
	mp := &Map[K, V]{
		m:          m,
		kc:         kc,
		vc:         vc,
		shards:     make([]mapShard[K, V], cfg.shards),
		shardMask:  uint64(cfg.shards - 1),
		capMask:    uint64(cfg.capacity - 1),
		capacity:   cfg.capacity,
		seed:       env.Mix(m.cfg.seed, 0x77666d6170), // "wfmap"
		opBudget:   opBudget,
		swapBudget: 2 * opBudget,
	}
	if sc, ok := kc.(ScalarCodec[K]); ok && kc.Words() == 1 {
		mp.kscalar = sc
	}
	var zeroK K
	var zeroV V
	for s := range mp.shards {
		sh := &mp.shards[s]
		sh.lock = m.NewLock()
		sh.ver = NewCell(uint64(0))
		sh.size = NewCell(uint64(0))
		sh.meta = make([]*Cell[uint64], cfg.capacity)
		sh.keys = make([]*Cell[K], cfg.capacity)
		sh.vals = make([]*Cell[V], cfg.capacity)
		for i := 0; i < cfg.capacity; i++ {
			sh.meta[i] = NewCell(bucketEmpty)
			sh.keys[i] = NewCellOf(mp.kc, zeroK)
			sh.vals[i] = NewCellOf(mp.vc, zeroV)
		}
	}
	return mp, nil
}

// Shards reports the shard count (after power-of-two rounding).
func (mp *Map[K, V]) Shards() int { return len(mp.shards) }

// ShardCapacity reports the bucket count per shard (after rounding).
func (mp *Map[K, V]) ShardCapacity() int { return mp.capacity }

// hashKey computes a key's 64-bit hash by chaining each encoded word
// through env.Mix (the SplitMix64 finalizer). Shard selection uses the
// low bits and the home bucket the high bits, so the two are
// independent. Shared by every lock-sharded structure (Map, Cache);
// scalar is the allocation-free fast path for single-word keys.
func hashKey[K comparable](kc Codec[K], scalar ScalarCodec[K], seed uint64, k K) uint64 {
	if scalar != nil {
		return env.Mix(seed, scalar.EncodeWord(k))
	}
	buf := make([]uint64, kc.Words())
	kc.Encode(k, buf)
	h := seed
	for _, w := range buf {
		h = env.Mix(h, w)
	}
	return h
}

// hash computes the key's 64-bit hash.
func (mp *Map[K, V]) hash(k K) uint64 {
	return hashKey(mp.kc, mp.kscalar, mp.seed, k)
}

// shardOf picks the key's shard and home bucket from its hash.
func (mp *Map[K, V]) shardOf(h uint64) (*mapShard[K, V], int) {
	return &mp.shards[h&mp.shardMask], int((h >> 32) & mp.capMask)
}

// probeBuckets probes an open-addressed region of meta/key cells for k
// inside a critical section — the one probe loop behind every
// lock-sharded structure (Map, Cache). It returns the key's bucket
// index and found=true, or found=false with free the first reusable
// bucket (empty or tombstone; -1 if the region has none). Probing is
// linear from the home bucket and stops at the first empty bucket,
// which no insertion ever skips; capMask is the power-of-two region
// size minus one.
func probeBuckets[K comparable](tx *Tx, meta []*Cell[uint64], keys []*Cell[K], capMask, h uint64, home int, k K) (idx int, found bool, free int) {
	frag := h &^ bucketStateMask
	free = -1
	n := int(capMask) + 1
	for j := 0; j < n; j++ {
		i := (home + j) & int(capMask)
		w := Get(tx, meta[i])
		switch w & bucketStateMask {
		case bucketEmpty:
			if free < 0 {
				free = i
			}
			return 0, false, free
		case bucketTombstone:
			if free < 0 {
				free = i
			}
		default: // full
			if w&^bucketStateMask == frag && Get(tx, keys[i]) == k {
				return i, true, free
			}
		}
	}
	return 0, false, free
}

// find probes a shard's region for k inside a critical section.
func (mp *Map[K, V]) find(tx *Tx, sh *mapShard[K, V], h uint64, home int, k K) (idx int, found bool, free int) {
	return probeBuckets(tx, sh.meta, sh.keys, mp.capMask, h, home, k)
}

// bumpVer advances the shard's seqlock version by one (2 ops).
func bumpVer[K comparable, V any](tx *Tx, sh *mapShard[K, V]) {
	Put(tx, sh.ver, Get(tx, sh.ver)+1)
}

// do runs a single-shard critical section on sh's lock under the
// caller's pooled handle (one Acquire covers the lock retries and the
// result-cell reads that follow). Construction validated the budget
// against the manager's bounds, so the only error Lock can report here
// is impossible; it is surfaced as a panic rather than forcing an
// error return on every read path.
func (mp *Map[K, V]) do(p *Process, sh *mapShard[K, V], body func(*Tx)) {
	if _, err := mp.m.Lock(p, []*Lock{sh.lock}, mp.opBudget, body); err != nil {
		panic("wflocks: Map: " + err.Error())
	}
}

// Get reports the value stored for k. It runs as a critical section on
// k's shard lock; the result is routed through fresh cells (not
// closure captures) because a stalled attempt's body may be re-executed
// by helpers concurrently.
func (mp *Map[K, V]) Get(k K) (V, bool) {
	h := mp.hash(k)
	sh, home := mp.shardOf(h)
	var zero V
	val := newResultCell(mp.vc)
	found := NewBoolCell(false)
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	mp.do(p, sh, func(tx *Tx) {
		i, ok, _ := mp.find(tx, sh, h, home, k)
		if !ok {
			return
		}
		Put(tx, val, Get(tx, sh.vals[i]))
		Put(tx, found, true)
	})
	if !found.Get(p) {
		return zero, false
	}
	return val.Get(p), true
}

// Put outcomes routed through the result cell.
const (
	putStored uint64 = iota
	putFull
)

// Put stores v for k, inserting or overwriting. It returns ErrMapFull
// when k's shard has no free bucket (the map never rehashes; see the
// type comment).
func (mp *Map[K, V]) Put(k K, v V) error {
	h := mp.hash(k)
	sh, home := mp.shardOf(h)
	res := NewCell(putStored)
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	mp.do(p, sh, func(tx *Tx) {
		bumpVer(tx, sh)
		i, ok, free := mp.find(tx, sh, h, home, k)
		switch {
		case ok:
			Put(tx, sh.vals[i], v)
		case free < 0:
			Put(tx, res, putFull)
		default:
			Put(tx, sh.meta[free], bucketFull|(h&^bucketStateMask))
			Put(tx, sh.keys[free], k)
			Put(tx, sh.vals[free], v)
			Put(tx, sh.size, Get(tx, sh.size)+1)
		}
		bumpVer(tx, sh)
	})
	if res.Get(p) == putFull {
		return fmt.Errorf("%w: shard %d at capacity %d", ErrMapFull, h&mp.shardMask, mp.capacity)
	}
	return nil
}

// Delete removes k, reporting whether it was present. The bucket
// becomes a tombstone so longer probe chains stay reachable; Put reuses
// tombstones.
func (mp *Map[K, V]) Delete(k K) bool {
	h := mp.hash(k)
	sh, home := mp.shardOf(h)
	removed := NewBoolCell(false)
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	mp.do(p, sh, func(tx *Tx) {
		bumpVer(tx, sh)
		if i, ok, _ := mp.find(tx, sh, h, home, k); ok {
			Put(tx, sh.meta[i], bucketTombstone)
			Put(tx, sh.size, Get(tx, sh.size)-1)
			Put(tx, removed, true)
		}
		bumpVer(tx, sh)
	})
	return removed.Get(p)
}

// Update outcomes routed through the result cell.
const (
	updateOK uint64 = iota
	updateFull
)

// Update atomically reads k's value, applies fn, and writes the result
// back, all in one critical section — the read-modify-write that a
// Get-then-Put pair cannot do race-free. fn receives the current value
// and whether k was present; it returns the new value and keep: keep
// true stores the value (inserting or overwriting), keep false deletes
// k if present and otherwise changes nothing. An insert into a full
// shard returns ErrMapFull, as Put does.
//
// fn runs inside the critical section, so it is bound by the same
// contract as the section body: it must be deterministic (given its
// arguments), perform no cell operations or acquisitions of its own,
// and be safe for concurrent calls — a stalled attempt's body, fn
// included, may be re-executed by helpers in parallel. Keep fn to pure
// local computation; anything slow or effectful belongs outside the
// lock (see Cache.GetOrCompute for that shape).
func (mp *Map[K, V]) Update(k K, fn func(old V, ok bool) (V, bool)) error {
	h := mp.hash(k)
	sh, home := mp.shardOf(h)
	res := NewCell(updateOK)
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	mp.do(p, sh, func(tx *Tx) {
		bumpVer(tx, sh)
		i, ok, free := mp.find(tx, sh, h, home, k)
		var old V
		if ok {
			old = Get(tx, sh.vals[i])
		}
		nv, keep := fn(old, ok)
		switch {
		case keep && ok:
			Put(tx, sh.vals[i], nv)
		case keep && free < 0:
			Put(tx, res, updateFull)
		case keep:
			Put(tx, sh.meta[free], bucketFull|(h&^bucketStateMask))
			Put(tx, sh.keys[free], k)
			Put(tx, sh.vals[free], nv)
			Put(tx, sh.size, Get(tx, sh.size)+1)
		case ok:
			Put(tx, sh.meta[i], bucketTombstone)
			Put(tx, sh.size, Get(tx, sh.size)-1)
		}
		bumpVer(tx, sh)
	})
	if res.Get(p) == updateFull {
		return fmt.Errorf("%w: shard %d at capacity %d", ErrMapFull, h&mp.shardMask, mp.capacity)
	}
	return nil
}

// Len reports the number of entries. Per-shard sizes are read without
// locking, so under live traffic the sum can be momentarily skewed the
// same way StatsSnapshot is; at quiescence it is exact.
func (mp *Map[K, V]) Len() int {
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	n := 0
	for s := range mp.shards {
		n += int(mp.shards[s].size.Get(p))
	}
	return n
}

// Swap atomically exchanges the values of k1 and k2 and reports whether
// it did; if either key is absent nothing changes. This is the map's
// multi-lock operation: when the keys land on different shards the
// critical section holds both shard locks, which is where the paper's
// lock-set bound L shows up — the manager must be configured with
// WithMaxLocks(2) or more, and the per-attempt success probability
// 1/(κL) and step bound O(κ²L²T) are paid at L=2. Swap also runs two
// full-region probes in one critical section, so it needs twice the
// single-shard budget; ErrTooManyLocks or ErrMaxOpsExceeded is
// reported if the manager's bounds cannot accommodate it.
func (mp *Map[K, V]) Swap(k1, k2 K) (bool, error) {
	h1, h2 := mp.hash(k1), mp.hash(k2)
	s1, home1 := mp.shardOf(h1)
	s2, home2 := mp.shardOf(h2)
	if mp.swapBudget > mp.m.cfg.maxCritical {
		return false, fmt.Errorf("%w: Swap needs maxOps=%d (2× the single-shard budget), bound T=%d",
			ErrMaxOpsExceeded, mp.swapBudget, mp.m.cfg.maxCritical)
	}
	locks := []*Lock{s1.lock}
	if s1 != s2 {
		locks = append(locks, s2.lock)
	}
	swapped := NewBoolCell(false)
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	_, err := mp.m.Lock(p, locks, mp.swapBudget, func(tx *Tx) {
		bumpVer(tx, s1)
		if s2 != s1 {
			bumpVer(tx, s2)
		}
		i1, ok1, _ := mp.find(tx, s1, h1, home1, k1)
		i2, ok2, _ := mp.find(tx, s2, h2, home2, k2)
		if ok1 && ok2 {
			v1 := Get(tx, s1.vals[i1])
			v2 := Get(tx, s2.vals[i2])
			Put(tx, s1.vals[i1], v2)
			Put(tx, s2.vals[i2], v1)
			Put(tx, swapped, true)
		}
		bumpVer(tx, s1)
		if s2 != s1 {
			bumpVer(tx, s2)
		}
	})
	if err != nil {
		return false, err
	}
	return swapped.Get(p), nil
}

// Range calls f for every entry until f returns false. Each shard is
// captured as a consistent snapshot — buckets are read lock-free and
// the read is retried until the shard's seqlock version is stable —
// and f runs outside any critical section, so it may call back into
// the map. Entries from different shards can reflect different
// instants; mutations concurrent with Range may or may not be
// observed.
func (mp *Map[K, V]) Range(f func(k K, v V) bool) {
	type entry struct {
		k K
		v V
	}
	p := mp.m.Acquire()
	for s := range mp.shards {
		sh := &mp.shards[s]
		var snap []entry
		for {
			v0 := sh.ver.Get(p)
			if v0&1 == 1 {
				// A mutation is mid-application; its attempt finishes
				// within the wait-free step bound, so yield and retry.
				runtime.Gosched()
				continue
			}
			snap = snap[:0]
			n := int(mp.capMask) + 1
			for i := 0; i < n; i++ {
				if sh.meta[i].Get(p)&bucketStateMask == bucketFull {
					snap = append(snap, entry{sh.keys[i].Get(p), sh.vals[i].Get(p)})
				}
			}
			if sh.ver.Get(p) == v0 {
				break
			}
		}
		mp.m.Release(p)
		for _, e := range snap {
			if !f(e.k, e.v) {
				return
			}
		}
		p = mp.m.Acquire()
	}
	mp.m.Release(p)
}

// MapShardStats is one shard's view in MapStats.
type MapShardStats struct {
	// Lock carries the shard lock's contention counters (these same
	// counters appear in the manager-wide StatsSnapshot.Locks).
	Lock LockStats
	// Size is the shard's entry count.
	Size int
}

// MapStats is a point-in-time view of a map's per-shard contention and
// occupancy, with the same weak-consistency caveat as StatsSnapshot.
type MapStats struct {
	// Shards holds one entry per shard, in shard order.
	Shards []MapShardStats
	// Len is the summed entry count.
	Len int
	// Balance is Jain's fairness index over per-shard attempt counts:
	// 1.0 when traffic spreads evenly across shards, approaching
	// 1/shards under maximal skew (one hot shard).
	Balance float64
	// MaxOverMean is the hottest shard's attempts over the mean — the
	// headline "how skewed is my keyspace" number.
	MaxOverMean float64
}

// Stats snapshots per-shard contention counters and sizes.
func (mp *Map[K, V]) Stats() MapStats {
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	ms := MapStats{Shards: make([]MapShardStats, len(mp.shards))}
	attempts := make([]uint64, len(mp.shards))
	for s := range mp.shards {
		sh := &mp.shards[s]
		a, w, h := sh.lock.inner.Counters()
		size := int(sh.size.Get(p))
		ms.Shards[s] = MapShardStats{
			Lock: LockStats{ID: sh.lock.ID(), Attempts: a, Wins: w, Helps: h},
			Size: size,
		}
		ms.Len += size
		attempts[s] = a
	}
	d := stats.NewShardDist(attempts)
	ms.Balance = d.Jain
	ms.MaxOverMean = d.MaxOverMean
	return ms
}
