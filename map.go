package wflocks

import (
	"fmt"
	"iter"
	"runtime"

	"wflocks/internal/env"
	"wflocks/internal/stats"
	"wflocks/internal/table"
)

// Map is a generic lock-sharded concurrent hash map built on the
// manager's wait-free locks and the shared shard-table engine
// (internal/table). Keys are hashed to one of a power-of-two number of
// shards; each shard owns one Lock guarding an open-addressed region
// of typed cells, so operations on different shards never contend.
// Get, Put, Delete, Update and the multi-key Atomic transactions run
// as critical sections under Manager.Do and therefore inherit the
// locks' guarantees: a stalled writer can never block the map —
// competitors help its critical section complete — and every operation
// finishes within the O(κ²L²T) step bound.
//
// The map has fixed capacity (shards × per-shard capacity, both rounded
// up to powers of two): Put returns ErrMapFull when a key's shard has
// no free bucket. There is no rehashing — growing a region would make
// the worst-case critical section unbounded, voiding the T bound — so
// size the map for the workload with WithShards and WithShardCapacity.
//
// Len and the iterators (All, Keys, Values) read outside critical
// sections. Iteration takes a per-shard snapshot using a seqlock-style
// version cell that every mutation bumps (odd while a mutation's
// effects are being applied, even at rest): a shard scan is retried
// until the version is stable, so each shard is observed at one
// consistent instant. Construct with NewMap (integer keys and values)
// or NewMapOf (explicit codecs).
type Map[K comparable, V any] struct {
	m   *Manager
	eng *table.Table[K, V]
	vc  Codec[V] // result-cell codec

	// scalarV is vc when the value codec is single-word, enabling the
	// allocation-free Get frame (the found value rides the frame's
	// atomic result word); nil for multi-word values, which fall back
	// to result cells.
	scalarV ScalarCodec[V]

	// locks[s] guards eng.Shards[s]; the engine owns everything the
	// lock protects, the map owns the locking and the semantics.
	locks []*Lock

	opBudget  int // maxOps of a single-shard critical section
	probeCost int // worst-case probe alone (txn re-probe budgeting)
}

// Default map shape: 8 shards × 64 buckets.
const (
	defaultMapShards   = 8
	defaultMapCapacity = 64
)

// MapOption configures a Map at construction.
type MapOption func(*mapConfig) error

type mapConfig struct {
	shards   int
	capacity int
}

// WithShards sets the number of shards, rounded up to a power of two
// (default 8). More shards mean fewer key collisions on any one lock —
// per-lock contention drops toward P/shards — and smaller bucket
// regions, which shortens the worst-case critical section T and with it
// every attempt's fixed delays.
func WithShards(n int) MapOption {
	return func(c *mapConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithShards: shard count must be positive, got %d", n)
		}
		c.shards = table.CeilPow2(n)
		return nil
	}
}

// WithShardCapacity sets the number of buckets per shard, rounded up to
// a power of two (default 64). Capacity bounds the worst-case probe
// length and hence the critical-section budget: see MapCriticalSteps.
func WithShardCapacity(n int) MapOption {
	return func(c *mapConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithShardCapacity: capacity must be positive, got %d", n)
		}
		c.capacity = table.CeilPow2(n)
		return nil
	}
}

// MapCriticalSteps returns the WithMaxCriticalSteps bound T a Manager
// needs to host a Map with the given per-shard capacity (rounded up to
// a power of two, as WithShardCapacity rounds) and key/value codec
// widths in words. It covers the worst case of any single-shard
// operation: a full-region probe (capacity × (1 + keyWords) ops) plus
// the insert writes, the size and seqlock-version updates, and the
// result-cell writes. It is the shared engine formula (table.Budget)
// with two value accesses and 10 bookkeeping words. Multi-key
// transactions need one such budget per named key — see MapAtomicSteps
// — and NewMapOf itself only requires the 1× bound.
func MapCriticalSteps(shardCapacity, keyWords, valueWords int) int {
	return table.Budget(shardCapacity, keyWords, valueWords, 2, 10)
}

// MapAtomicSteps returns the WithMaxCriticalSteps bound T a Manager
// needs so that Map.Atomic can run a transaction over numKeys keys on
// a map with the given per-shard capacity and codec widths. Each named
// key budgets one full single-shard operation (MapCriticalSteps); keys
// that share a shard can additionally force one re-probe each when the
// transaction inserts into that shard, so the worst case (all keys on
// one shard) adds numKeys-1 probe terms. Swap is a 2-key transaction;
// MapAtomicSteps(cap, kw, vw, 2) is its requirement.
func MapAtomicSteps(shardCapacity, keyWords, valueWords, numKeys int) int {
	if numKeys < 1 {
		numKeys = 1
	}
	return numKeys*MapCriticalSteps(shardCapacity, keyWords, valueWords) +
		(numKeys-1)*table.ProbeSteps(shardCapacity, keyWords)
}

// NewMap creates a map with integer keys and values, the common case,
// using the built-in single-word codecs. See NewMapOf for arbitrary
// types.
func NewMap[K Integer, V Integer](m *Manager, opts ...MapOption) (*Map[K, V], error) {
	return NewMapOf[K, V](m, IntegerCodec[K](), IntegerCodec[V](), opts...)
}

// NewMapOf creates a map whose keys and values are encoded by the given
// codecs (use CodecFunc for multi-word struct keys or values). The
// manager's WithMaxCriticalSteps bound must cover a worst-case
// single-shard operation — MapCriticalSteps computes the requirement —
// or NewMapOf reports it as an error.
func NewMapOf[K comparable, V any](m *Manager, kc Codec[K], vc Codec[V], opts ...MapOption) (*Map[K, V], error) {
	cfg := mapConfig{shards: defaultMapShards, capacity: defaultMapCapacity}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	opBudget := MapCriticalSteps(cfg.capacity, kc.Words(), vc.Words())
	if opBudget > m.cfg.maxCritical {
		return nil, fmt.Errorf(
			"wflocks: NewMapOf: shard capacity %d with %d-word keys and %d-word values needs "+
				"WithMaxCriticalSteps(%d), manager has %d (see MapCriticalSteps)",
			cfg.capacity, kc.Words(), vc.Words(), opBudget, m.cfg.maxCritical)
	}
	mp := &Map[K, V]{
		m:         m,
		eng:       table.New[K, V](kc, vc, cfg.shards, cfg.capacity, env.Mix(m.cfg.seed, 0x77666d6170)), // "wfmap"
		vc:        vc,
		opBudget:  opBudget,
		probeCost: table.ProbeSteps(cfg.capacity, kc.Words()),
	}
	mp.scalarV, _ = vc.(ScalarCodec[V])
	mp.locks = make([]*Lock, mp.eng.ShardCount())
	for s := range mp.locks {
		mp.locks[s] = m.NewLock()
	}
	return mp, nil
}

// Shards reports the shard count (after power-of-two rounding).
func (mp *Map[K, V]) Shards() int { return mp.eng.ShardCount() }

// ShardCapacity reports the bucket count per shard (after rounding).
func (mp *Map[K, V]) ShardCapacity() int { return mp.eng.Capacity() }

// do runs a single-shard critical section on shard si's lock under the
// caller's pooled handle (one Acquire covers the lock retries and the
// result-cell reads that follow). Construction validated the budget
// against the manager's bounds, so the only error Lock can report here
// is impossible; it is surfaced as a panic rather than forcing an
// error return on every read path.
func (mp *Map[K, V]) do(p *Process, si int, body func(*Tx)) {
	if _, err := mp.m.Lock(p, []*Lock{mp.locks[si]}, mp.opBudget, body); err != nil {
		panic("wflocks: Map: " + err.Error())
	}
}

// Get reports the value stored for k.
//
// It first attempts a lock-free seqlock-stable probe — the same
// consistent-snapshot mechanism Len and the iterators use, here bounded
// to a few tries — which makes an uncontended or read-mostly Get a
// plain memory scan with no lock attempt at all. When writers keep the
// shard's version moving, Get falls back to a critical section on k's
// shard lock, which is wait-free, so the fallback bounds the total
// work. For single-word value codecs the locked path is also
// allocation-free: the operation runs as a pre-built frame (see
// mapFrame) and the found value rides the frame's atomic result word.
// Multi-word values route the locked result through fresh cells
// instead.
func (mp *Map[K, V]) Get(k K) (V, bool) {
	h := mp.eng.Hash(k)
	si, home := mp.eng.ShardIndex(h), mp.eng.Home(h)
	sh := &mp.eng.Shards[si]
	var zero V
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	if v, ok, done := mp.eng.FindStable(p.env, sh, h, home, k, 4); done {
		return v, ok
	}
	if mp.scalarV != nil {
		f := mp.frame(p, mopGet, sh, h, home, k)
		mp.m.lockFrame(p, mp.locks[si], mp.opBudget, f)
		if f.resBits.Load()&mresFound == 0 {
			return zero, false
		}
		return mp.scalarV.DecodeWord(f.resWord.Load()), true
	}
	val := newResultCell(mp.vc)
	found := NewBoolCell(false)
	mp.do(p, si, func(tx *Tx) {
		i, ok, _ := mp.eng.Find(tx.run, sh, h, home, k)
		if !ok {
			return
		}
		Put(tx, val, mp.eng.Val(tx.run, sh, i))
		Put(tx, found, true)
	})
	if !found.Get(p) {
		return zero, false
	}
	return val.Get(p), true
}

// Put stores v for k, inserting or overwriting. It returns ErrMapFull
// when k's shard has no free bucket (the map never rehashes; see the
// type comment).
func (mp *Map[K, V]) Put(k K, v V) error {
	h := mp.eng.Hash(k)
	si, home := mp.eng.ShardIndex(h), mp.eng.Home(h)
	sh := &mp.eng.Shards[si]
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	f := mp.frame(p, mopPut, sh, h, home, k)
	f.v = v
	mp.m.lockFrame(p, mp.locks[si], mp.opBudget, f)
	if f.resBits.Load()&mresFull != 0 {
		return fmt.Errorf("%w: shard %d at capacity %d", ErrMapFull, si, mp.eng.Capacity())
	}
	return nil
}

// Delete removes k, reporting whether it was present. The bucket
// becomes a tombstone so longer probe chains stay reachable; Put reuses
// tombstones.
func (mp *Map[K, V]) Delete(k K) bool {
	h := mp.eng.Hash(k)
	si, home := mp.eng.ShardIndex(h), mp.eng.Home(h)
	sh := &mp.eng.Shards[si]
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	f := mp.frame(p, mopDelete, sh, h, home, k)
	mp.m.lockFrame(p, mp.locks[si], mp.opBudget, f)
	return f.resBits.Load()&mresFound != 0
}

// Update atomically reads k's value, applies fn, and writes the result
// back, all in one critical section — the read-modify-write that a
// Get-then-Put pair cannot do race-free. fn receives the current value
// and whether k was present; it returns the new value and keep: keep
// true stores the value (inserting or overwriting), keep false deletes
// k if present and otherwise changes nothing. An insert into a full
// shard returns ErrMapFull, as Put does.
//
// fn runs inside the critical section, so it is bound by the same
// contract as the section body: it must be deterministic (given its
// arguments), perform no cell operations or acquisitions of its own,
// and be safe for concurrent calls — a stalled attempt's body, fn
// included, may be re-executed by helpers in parallel. Keep fn to pure
// local computation; anything slow or effectful belongs outside the
// lock (see Cache.GetOrCompute for that shape). For read-modify-writes
// spanning several keys, see Atomic.
func (mp *Map[K, V]) Update(k K, fn func(old V, ok bool) (V, bool)) error {
	h := mp.eng.Hash(k)
	si, home := mp.eng.ShardIndex(h), mp.eng.Home(h)
	sh := &mp.eng.Shards[si]
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	f := mp.frame(p, mopUpdate, sh, h, home, k)
	f.fn = fn
	mp.m.lockFrame(p, mp.locks[si], mp.opBudget, f)
	if f.resBits.Load()&mresFull != 0 {
		return fmt.Errorf("%w: shard %d at capacity %d", ErrMapFull, si, mp.eng.Capacity())
	}
	return nil
}

// Len reports the number of entries. It is the lock-free fast path: it
// sums the per-shard size cells without taking any shard lock, so it
// never contends with writers and costs O(shards) regardless of
// occupancy. Under live traffic the sum can be momentarily skewed the
// same way StatsSnapshot is (each shard's count is read at a different
// instant); at quiescence it is exact.
func (mp *Map[K, V]) Len() int {
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	n := 0
	for s := range mp.eng.Shards {
		n += int(mp.eng.LoadSize(p.env, &mp.eng.Shards[s]))
	}
	return n
}

// Swap atomically exchanges the values of k1 and k2 and reports whether
// it did; if either key is absent nothing changes. It is a thin wrapper
// over a two-key Atomic transaction — the original multi-lock
// operation, kept for convenience: when the keys land on different
// shards the critical section holds both shard locks, which is where
// the paper's lock-set bound L shows up. The manager must be configured
// with WithMaxLocks(2) or more and a WithMaxCriticalSteps bound
// covering MapAtomicSteps(capacity, kw, vw, 2); ErrTooManyLocks or
// ErrMaxOpsExceeded is reported otherwise.
func (mp *Map[K, V]) Swap(k1, k2 K) (bool, error) {
	swapped := NewBoolCell(false)
	err := mp.Atomic([]K{k1, k2}, func(t *MapTxn[K, V]) {
		v1, ok1 := t.Get(k1)
		v2, ok2 := t.Get(k2)
		if ok1 && ok2 {
			t.Put(k1, v2)
			t.Put(k2, v1)
			Put(t.Tx(), swapped, true)
		}
	})
	if err != nil {
		return false, err
	}
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	return swapped.Get(p), nil
}

// All returns an iterator over the map's entries, for use with
// range-over-func:
//
//	for k, v := range mp.All() { ... }
//
// Each shard is captured as a consistent snapshot — buckets are read
// lock-free and the read is retried until the shard's seqlock version
// is stable — and the loop body runs outside any critical section, so
// it may call back into the map (including mutations). Entries from
// different shards can reflect different instants; mutations concurrent
// with iteration may or may not be observed.
func (mp *Map[K, V]) All() iter.Seq2[K, V] {
	return func(yield func(K, V) bool) {
		type entry struct {
			k K
			v V
		}
		var snap []entry
		p := mp.m.Acquire()
		for s := range mp.eng.Shards {
			sh := &mp.eng.Shards[s]
			mp.eng.ReadStable(p.env, sh, runtime.Gosched, func() {
				snap = snap[:0]
				for i := 0; i < mp.eng.Capacity(); i++ {
					if mp.eng.LoadMeta(p.env, sh, i)&table.StateMask == table.Full {
						snap = append(snap, entry{mp.eng.LoadKey(p.env, sh, i), mp.eng.LoadVal(p.env, sh, i)})
					}
				}
			})
			// Release the pooled handle while user code runs: the body may
			// call back into the map (or block) without holding it hostage.
			mp.m.Release(p)
			for _, e := range snap {
				if !yield(e.k, e.v) {
					return
				}
			}
			p = mp.m.Acquire()
		}
		mp.m.Release(p)
	}
}

// Keys returns an iterator over the map's keys, with All's snapshot
// semantics.
func (mp *Map[K, V]) Keys() iter.Seq[K] {
	return func(yield func(K) bool) {
		for k := range mp.All() {
			if !yield(k) {
				return
			}
		}
	}
}

// Values returns an iterator over the map's values, with All's snapshot
// semantics.
func (mp *Map[K, V]) Values() iter.Seq[V] {
	return func(yield func(V) bool) {
		for _, v := range mp.All() {
			if !yield(v) {
				return
			}
		}
	}
}

// Range calls f for every entry until f returns false, with All's
// snapshot semantics.
//
// Deprecated: Range predates Go 1.23 iterators; use All (or Keys,
// Values) with range-over-func instead. Range remains as a thin wrapper
// and will not be removed, but new code should range over All().
func (mp *Map[K, V]) Range(f func(k K, v V) bool) {
	for k, v := range mp.All() {
		if !f(k, v) {
			return
		}
	}
}

// MapShardStats is one shard's view in MapStats.
type MapShardStats struct {
	// Lock carries the shard lock's contention counters (these same
	// counters appear in the manager-wide StatsSnapshot.Locks).
	Lock LockStats
	// Size is the shard's entry count.
	Size int
	// Tombstones, MaxProbe and SumProbe describe the shard's
	// open-addressed region: buckets left by deletions, and the worst and
	// summed displacement of live entries from their home bucket
	// (SumProbe/Size is the mean extra probe length per present key).
	Tombstones int
	MaxProbe   int
	SumProbe   int
}

// MapStats is a point-in-time view of a map's per-shard contention and
// occupancy, with the same weak-consistency caveat as StatsSnapshot.
type MapStats struct {
	// Shards holds one entry per shard, in shard order.
	Shards []MapShardStats
	// Len is the summed entry count.
	Len int
	// Balance is Jain's fairness index over per-shard attempt counts:
	// 1.0 when traffic spreads evenly across shards, approaching
	// 1/shards under maximal skew (one hot shard).
	Balance float64
	// MaxOverMean is the hottest shard's attempts over the mean — the
	// headline "how skewed is my keyspace" number.
	MaxOverMean float64
	// MaxProbe is the worst probe displacement across all shards.
	MaxProbe int
}

// ShardLockID reports the ID of the shard lock covering key k — the
// LockID that k's operations carry in Stats().Shards, ObsSnapshot.Locks
// and the flight recorder's events. It is a pure hash computation
// (no lock is taken), so callers can correlate request-level traces
// with lock-level events without perturbing either.
func (mp *Map[K, V]) ShardLockID(k K) int {
	return mp.locks[mp.eng.ShardIndex(mp.eng.Hash(k))].ID()
}

// Stats snapshots per-shard contention counters and sizes.
func (mp *Map[K, V]) Stats() MapStats {
	p := mp.m.Acquire()
	defer mp.m.Release(p)
	ms := MapStats{Shards: make([]MapShardStats, mp.eng.ShardCount())}
	attempts := make([]uint64, mp.eng.ShardCount())
	for s := range mp.eng.Shards {
		a, w, h := mp.locks[s].inner.Counters()
		size := int(mp.eng.LoadSize(p.env, &mp.eng.Shards[s]))
		ps := mp.eng.ProbeStats(p.env, &mp.eng.Shards[s])
		ms.Shards[s] = MapShardStats{
			Lock:       LockStats{ID: mp.locks[s].ID(), Attempts: a, Wins: w, Helps: h},
			Size:       size,
			Tombstones: ps.Tombstones,
			MaxProbe:   ps.MaxProbe,
			SumProbe:   ps.SumProbe,
		}
		ms.Len += size
		attempts[s] = a
		if ps.MaxProbe > ms.MaxProbe {
			ms.MaxProbe = ps.MaxProbe
		}
	}
	d := stats.NewShardDist(attempts)
	ms.Balance = d.Jain
	ms.MaxOverMean = d.MaxOverMean
	return ms
}
