package wflocks_test

import (
	"fmt"

	"wflocks"
)

// ExampleNew_unknownBounds is the recommended starting configuration:
// WithUnknownBounds needs only the process count P — an upper bound on
// goroutines that attempt locks concurrently — and adapts its delays to
// the contention actually observed, so there is no contention bound κ
// to estimate (and mis-estimate). The transfer below moves 30 units
// between two cells under both locks atomically.
func ExampleNew_unknownBounds() {
	m, err := wflocks.New(
		wflocks.WithUnknownBounds(8), // P: at most 8 concurrent goroutines
		wflocks.WithMaxLocks(2),      // L: at most 2 locks per acquisition
		wflocks.WithMaxCriticalSteps(16),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	checking, savings := m.NewLock(), m.NewLock()
	balC := wflocks.NewCell(uint64(100))
	balS := wflocks.NewCell(uint64(0))

	err = m.Do([]*wflocks.Lock{checking, savings}, 4, func(tx *wflocks.Tx) {
		c := wflocks.Get(tx, balC)
		s := wflocks.Get(tx, balS)
		wflocks.Put(tx, balC, c-30)
		wflocks.Put(tx, balS, s+30)
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(wflocks.Load(m, balC), wflocks.Load(m, balS))
	// Output: 70 30
}

// ExampleMap_Atomic runs a multi-key read-modify-write on a wait-free
// map: both keys are read and written in one critical section over
// their shard locks, so the transfer can never be observed half-done
// and a stalled writer can never block the map — competitors help its
// critical section complete.
func ExampleMap_Atomic() {
	m, err := wflocks.New(
		wflocks.WithUnknownBounds(8),
		wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(wflocks.MapAtomicSteps(64, 1, 1, 2)),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	mp, err := wflocks.NewMap[uint64, uint64](m)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := mp.Put(1, 100); err != nil {
		fmt.Println(err)
		return
	}
	if err := mp.Put(2, 0); err != nil {
		fmt.Println(err)
		return
	}

	err = mp.Atomic([]uint64{1, 2}, func(t *wflocks.MapTxn[uint64, uint64]) {
		from, _ := t.Get(1)
		to, _ := t.Get(2)
		t.Put(1, from-25)
		t.Put(2, to+25)
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	v1, _ := mp.Get(1)
	v2, _ := mp.Get(2)
	fmt.Println(v1, v2)
	// Output: 75 25
}
