package wflocks

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wflocks/internal/arena"
	"wflocks/internal/core"
	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/obs"
)

// Manager is a family of locks sharing one configuration. Create one
// with New; it is safe for concurrent use.
type Manager struct {
	sys   *core.System
	cfg   config
	retry RetryPolicy

	// rec is the observability recorder (WithMetrics/WithTracing); nil
	// keeps every hot-path hook to a single branch.
	rec *obs.Recorder

	nextPid atomic.Int64

	// procs is the per-goroutine handle pool backing Acquire/Release
	// and the implicit Do path.
	procs sync.Pool

	// mu guards locks, the registry feeding Stats' per-lock counters.
	mu    sync.Mutex
	locks []*Lock
}

// New creates a Manager. See the Option constructors for configuration;
// either WithKappa or WithUnknownBounds is required. Invalid options
// are reported as errors rather than silently voiding the guarantees.
func New(opts ...Option) (*Manager, error) {
	cfg := config{
		maxLocks:    2,
		maxCritical: 64,
		retry:       RetryGosched(),
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var rec *obs.Recorder
	if cfg.metrics {
		// Histogram writer shards track the number of Ps that can be
		// recording at once; pids index into them modulo the count.
		shards := runtime.GOMAXPROCS(0)
		if shards < 8 {
			shards = 8
		}
		ring := cfg.traceRing
		if ring == 0 {
			ring = 4096
		}
		rec = obs.NewRecorder(shards, cfg.traceRate, ring)
		if cfg.wdDelaySteps > 0 || cfg.wdHelpNanos > 0 {
			rec.SetWatchdog(cfg.wdDelaySteps, cfg.wdHelpNanos, cfg.wdAlertCap)
		}
	}
	sys, err := core.NewSystem(core.Config{
		Kappa:         cfg.kappa,
		MaxLocks:      cfg.maxLocks,
		MaxThunkSteps: cfg.maxCritical * idemStepsPerOp,
		NumProcs:      cfg.numProcs,
		DelayC:        cfg.delayC,
		DelayC1:       cfg.delayC1,
		UnknownBounds: cfg.unknownBounds,
		FastPath:      !cfg.noFastPath,
		Obs:           rec,
	})
	if err != nil {
		return nil, fmt.Errorf("wflocks: %w", err)
	}
	m := &Manager{sys: sys, cfg: cfg, retry: cfg.retry, rec: rec}
	m.procs.New = func() any { return m.NewProcess() }
	return m, nil
}

// idemStepsPerOp is the worst-case simulated steps per critical-section
// operation under the idempotence layer; the manager converts the
// user-facing "operations" bound into the algorithm's step bound T.
const idemStepsPerOp = 8

// Lock is a single fine-grained lock.
type Lock struct {
	inner *core.Lock
}

// NewLock creates a lock.
func (m *Manager) NewLock() *Lock {
	l := &Lock{inner: m.sys.NewLock()}
	m.mu.Lock()
	m.locks = append(m.locks, l)
	m.mu.Unlock()
	return l
}

// ID returns a process-wide unique identifier for the lock.
func (l *Lock) ID() int { return l.inner.ID() }

// Process is a per-goroutine handle carrying step accounting and a
// private random stream. The common path (Do, DoCtx, Load, Store)
// manages handles implicitly through the manager's pool; create one
// explicitly only when you need per-process step accounting, and then
// never share it between goroutines.
type Process struct {
	env *env.Native

	// frames is the bump arena for per-attempt thunk frames. Frames
	// are read by helpers at unbounded staleness, so they are never
	// recycled; the arena abandons full chunks (internal/arena).
	frames arena.Arena[txFrame]

	// lockBuf is the reusable buffer for unwrapped lock sets. It is
	// owner-transient — core copies the set into its own attempt
	// record before publishing — so plain reuse is safe.
	lockBuf []*core.Lock

	// structs holds per-structure allocation state (e.g. the map's
	// operation-frame arenas), found by type via a linear scan; the
	// handful of structure types a goroutine touches keeps it short.
	structs []any
}

// NewProcess creates a fresh process handle. Prefer Acquire, which
// reuses pooled handles.
func (m *Manager) NewProcess() *Process {
	pid := m.nextPid.Add(1) - 1
	return &Process{env: env.NewNative(int(pid), env.Mix(m.cfg.seed, uint64(pid)+0x9e37))}
}

// Pid returns the process id.
func (p *Process) Pid() int { return p.env.Pid() }

// Steps reports the total algorithm steps this process has taken.
func (p *Process) Steps() uint64 { return p.env.Steps() }

// Tx is the handle critical sections use for shared-memory access. All
// shared reads and writes inside a critical section must go through it,
// via the typed accessors Get, Put and CompareSwap.
type Tx struct {
	run *idem.Run
}

// txFrame adapts a user body to idem.Thunk without a per-attempt
// closure allocation. A fresh frame is drawn from the owner's arena
// for every attempt — helpers may re-read a frame long after the
// attempt ended, so frames are never reused (see internal/arena).
type txFrame struct {
	body func(*Tx)
}

// RunThunk implements idem.Thunk. It runs on the owner's and any
// helper's goroutine; the Tx handle comes from the executing process's
// own arena.
func (f *txFrame) RunThunk(r *idem.Run) {
	f.body(newTx(r))
}

// newTx returns a Tx for r, drawn from the executing environment's
// arena when it carries scratch state (always, for native processes).
func newTx(r *idem.Run) *Tx {
	if p := env.ScratchOf(r.Env(), env.ScratchTx); p != nil {
		a, ok := (*p).(*arena.Arena[Tx])
		if !ok {
			a = &arena.Arena[Tx]{}
			*p = a
		}
		tx := a.New()
		tx.run = r
		return tx
	}
	return &Tx{run: r}
}

// TryLock attempts to acquire all locks and run body atomically. maxOps
// bounds the number of shared-memory operations body performs (it must
// be at most the manager's WithMaxCriticalSteps bound). It returns true
// if the attempt won, in which case body has executed exactly once; on
// false, body has not run at all. Validation failures (ErrNoLocks,
// ErrTooManyLocks, ErrMaxOpsExceeded) are reported without attempting.
//
// Attempts are independent: each succeeds with probability at least
// 1/(κL) regardless of past attempts, so retrying wins quickly.
func (m *Manager) TryLock(p *Process, locks []*Lock, maxOps int, body func(*Tx)) (bool, error) {
	if err := m.validateCall(locks, maxOps); err != nil {
		return false, err
	}
	return m.tryLock(p, locks, maxOps, body), nil
}

// tryLock runs one validated attempt.
func (m *Manager) tryLock(p *Process, locks []*Lock, maxOps int, body func(*Tx)) bool {
	f := p.frames.New()
	f.body = body
	return m.tryLockThunk(p, locks, maxOps, f)
}

// tryLockThunk runs one validated attempt with a prepared thunk frame.
// This is the allocation-free core of every acquisition: the exec and
// its response log come from the process arena, and the unwrapped lock
// set reuses the handle's buffer (core copies it before publishing).
func (m *Manager) tryLockThunk(p *Process, locks []*Lock, maxOps int, t idem.Thunk) bool {
	thunk := idem.NewExecIn(p.env, t, maxOps)
	if cap(p.lockBuf) < len(locks) {
		p.lockBuf = make([]*core.Lock, len(locks))
	}
	inner := p.lockBuf[:len(locks)]
	for i, l := range locks {
		inner[i] = l.inner
	}
	return m.sys.TryLocks(p.env, inner, thunk)
}

// Lock acquires the locks with an explicit process handle, retrying
// until an attempt wins, and returns the number of attempts used.
// Expected attempts are O(κL). Between failed attempts it applies the
// manager's RetryPolicy. Prefer Do unless you need p's step accounting.
func (m *Manager) Lock(p *Process, locks []*Lock, maxOps int, body func(*Tx)) (int, error) {
	return m.LockCtx(context.Background(), p, locks, maxOps, body)
}

// LockCtx is Lock with cancellation: it shares the DoCtx retry loop,
// so a sleeping RetryPolicy wakes early and the loop returns an error
// wrapping ErrCanceled — with the failed attempt count — once ctx is
// done. A nil error means the returned number of attempts ended in a
// win.
func (m *Manager) LockCtx(ctx context.Context, p *Process, locks []*Lock, maxOps int, body func(*Tx)) (int, error) {
	if err := m.validateCall(locks, maxOps); err != nil {
		return 0, err
	}
	return m.retryLoop(ctx, p, locks, maxOps, body)
}

// validateCall audits an acquisition's arguments against the manager's
// configured bounds.
func (m *Manager) validateCall(locks []*Lock, maxOps int) error {
	if len(locks) == 0 {
		return ErrNoLocks
	}
	if len(locks) > m.cfg.maxLocks {
		return fmt.Errorf("%w: %d locks, bound L=%d", ErrTooManyLocks, len(locks), m.cfg.maxLocks)
	}
	if maxOps <= 0 || maxOps > m.cfg.maxCritical {
		return fmt.Errorf("%w: maxOps=%d, bound T=%d", ErrMaxOpsExceeded, maxOps, m.cfg.maxCritical)
	}
	return nil
}
