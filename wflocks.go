package wflocks

import (
	"fmt"
	"sync/atomic"

	"wflocks/internal/core"
	"wflocks/internal/env"
	"wflocks/internal/idem"
)

// Manager is a family of locks sharing one configuration. Create one
// with New; it is safe for concurrent use.
type Manager struct {
	sys      *core.System
	seed     uint64
	nextPid  atomic.Int64
	attempts atomic.Uint64
	wins     atomic.Uint64
}

// New creates a Manager. See the Option constructors for configuration;
// either WithKappa or WithUnknownBounds is required.
func New(opts ...Option) (*Manager, error) {
	cfg := config{
		maxLocks:    2,
		maxCritical: 64,
	}
	for _, o := range opts {
		o(&cfg)
	}
	sys, err := core.NewSystem(core.Config{
		Kappa:         cfg.kappa,
		MaxLocks:      cfg.maxLocks,
		MaxThunkSteps: cfg.maxCritical * idemStepsPerOp,
		NumProcs:      cfg.numProcs,
		DelayC:        cfg.delayC,
		DelayC1:       cfg.delayC1,
		UnknownBounds: cfg.unknownBounds,
	})
	if err != nil {
		return nil, fmt.Errorf("wflocks: %w", err)
	}
	return &Manager{sys: sys, seed: cfg.seed}, nil
}

// idemStepsPerOp is the worst-case simulated steps per critical-section
// operation under the idempotence layer; the manager converts the
// user-facing "operations" bound into the algorithm's step bound T.
const idemStepsPerOp = 8

// Lock is a single fine-grained lock.
type Lock struct {
	inner *core.Lock
}

// NewLock creates a lock.
func (m *Manager) NewLock() *Lock {
	return &Lock{inner: m.sys.NewLock()}
}

// Process is a per-goroutine handle carrying step accounting and a
// private random stream. Each goroutine that calls TryLock needs its
// own Process; a Process must not be shared.
type Process struct {
	env *env.Native
}

// NewProcess creates a process handle.
func (m *Manager) NewProcess() *Process {
	pid := m.nextPid.Add(1) - 1
	return &Process{env: env.NewNative(int(pid), env.Mix(m.seed, uint64(pid)+0x9e37))}
}

// Pid returns the process id.
func (p *Process) Pid() int { return p.env.Pid() }

// Steps reports the total algorithm steps this process has taken.
func (p *Process) Steps() uint64 { return p.env.Steps() }

// Cell is a shared memory location accessible from critical sections.
type Cell struct {
	inner *idem.Cell
}

// NewCell creates a cell holding v.
func NewCell(v uint64) *Cell {
	return &Cell{inner: idem.NewCell(v)}
}

// Get reads the cell outside any critical section.
func (c *Cell) Get(p *Process) uint64 { return c.inner.Load(p.env) }

// Set writes the cell outside any critical section. Prefer doing writes
// inside critical sections; Set is for initialization and inspection.
func (c *Cell) Set(p *Process, v uint64) { c.inner.Store(p.env, v) }

// Tx is the handle critical sections use for shared-memory access. All
// shared reads and writes inside a critical section must go through it.
type Tx struct {
	run *idem.Run
}

// Read reads a cell.
func (t *Tx) Read(c *Cell) uint64 { return t.run.Read(c.inner) }

// Write writes a cell.
func (t *Tx) Write(c *Cell, v uint64) { t.run.Write(c.inner, v) }

// CAS performs a compare-and-swap on a cell, reporting success.
func (t *Tx) CAS(c *Cell, old, new uint64) bool { return t.run.CAS(c.inner, old, new) }

// TryLock attempts to acquire all locks and run body atomically. maxOps
// bounds the number of Tx operations body performs (it must also be at
// most the manager's WithMaxCriticalSteps bound). It returns true if
// the attempt won, in which case body has executed exactly once; on
// false, body has not run at all.
//
// Attempts are independent: each succeeds with probability at least
// 1/(κL) regardless of past attempts, so retrying wins quickly.
func (m *Manager) TryLock(p *Process, locks []*Lock, maxOps int, body func(*Tx)) bool {
	thunk := idem.NewExec(func(r *idem.Run) {
		body(&Tx{run: r})
	}, maxOps)
	inner := make([]*core.Lock, len(locks))
	for i, l := range locks {
		inner[i] = l.inner
	}
	m.attempts.Add(1)
	ok := m.sys.TryLocks(p.env, inner, thunk)
	if ok {
		m.wins.Add(1)
	}
	return ok
}

// Lock acquires the locks by retrying TryLock until it succeeds and
// returns the number of attempts used. Expected attempts are O(κL).
func (m *Manager) Lock(p *Process, locks []*Lock, maxOps int, body func(*Tx)) int {
	attempts := 0
	for {
		attempts++
		if m.TryLock(p, locks, maxOps, body) {
			return attempts
		}
	}
}

// Stats reports the manager-wide attempt and win counts.
func (m *Manager) Stats() (attempts, wins uint64) {
	return m.attempts.Load(), m.wins.Load()
}
