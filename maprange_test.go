package wflocks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// White-box tests for Range's seqlock protocol: a shard scan must stall
// while a mutation is mid-application (odd version), retry when the
// version moved under it (torn snapshot), and never surface a torn
// entry to the callback under live writers.

// TestMapRangeWaitsForOddVersion pins the odd-version wait: with a
// shard's version forced odd, Range must not complete; once the version
// returns to even it must. The version cell is driven directly, which
// is exactly what a stalled mutation's half-applied bumpVer looks like
// to a reader.
func TestMapRangeWaitsForOddVersion(t *testing.T) {
	m := mapManager(t, 2, 1, 8, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(1), WithShardCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4; k++ {
		if err := mp.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	p := m.Acquire()
	ver := mp.eng.Shards[0].Ver
	odd := ver.Load(p.env)
	if odd%2 != 0 {
		t.Fatalf("version %d not even at rest", odd)
	}
	ver.Store(p.env, odd+1) // a mutation is now "mid-application"
	m.Release(p)

	done := make(chan int, 1)
	go func() {
		n := 0
		mp.Range(func(k, v uint64) bool { n++; return true })
		done <- n
	}()
	select {
	case n := <-done:
		t.Fatalf("Range completed (%d entries) while the shard version was odd", n)
	case <-time.After(30 * time.Millisecond):
		// Still spinning, as it must be.
	}
	p = m.Acquire()
	ver.Store(p.env, odd+2) // mutation finished
	m.Release(p)
	select {
	case n := <-done:
		if n != 4 {
			t.Fatalf("Range saw %d entries, want 4", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Range did not complete after the version returned to even")
	}
}

// TestMapRangeRetriesOnVersionChange exercises the retry path: a
// goroutine keeps stepping the shard version between even values (every
// mutation bumps twice, so even→even is one completed mutation) while
// Range scans a large region. Any scan the bumper interleaves with sees
// version movement and must retry until it catches a stable window —
// and every snapshot must still report every entry exactly once.
func TestMapRangeRetriesOnVersionChange(t *testing.T) {
	// A big region makes each shard scan long enough that version bumps
	// land mid-snapshot rather than between snapshots.
	m := mapManager(t, 2, 1, 1024, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(1), WithShardCapacity(1024))
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for k := uint64(0); k < n; k++ {
		if err := mp.Put(k, k*11); err != nil {
			t.Fatal(err)
		}
	}
	// The bumper works in short bursts separated by quiet gaps several
	// times longer than one scan: bursts land mid-snapshot often enough
	// to force retries, and the gaps guarantee every retry eventually
	// catches a stable window (continuous bumping would livelock Range).
	var stop atomic.Bool
	var bumps atomic.Uint64
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := m.Acquire()
		defer m.Release(p)
		ver := mp.eng.Shards[0].Ver
		ver.Store(p.env, ver.Load(p.env)+2)
		bumps.Add(1)
		close(started)
		for !stop.Load() {
			for j := 0; j < 8; j++ {
				ver.Store(p.env, ver.Load(p.env)+2)
				bumps.Add(1)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	<-started
	rounds := 40
	if testing.Short() {
		rounds = 15
	}
	for i := 0; i < rounds; i++ {
		got := map[uint64]uint64{}
		mp.Range(func(k, v uint64) bool {
			got[k] = v
			return true
		})
		if len(got) != n {
			t.Fatalf("iteration %d: Range saw %d entries, want %d", i, len(got), n)
		}
		for k, v := range got {
			if v != k*11 {
				t.Fatalf("iteration %d: entry %d = %d, want %d", i, k, v, k*11)
			}
		}
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if bumps.Load() < 2 {
		t.Fatal("version never moved; the retry path was not exercised")
	}
}

// TestMapRangeUnderConcurrentWriters runs Range against live Put
// traffic and checks that no snapshot is torn: writers maintain the
// invariant value = key*1000 + generation with generation < 1000, so
// any mixed-up key/value pairing is detectable. Runs in -short; -race
// is part of the assertion.
func TestMapRangeUnderConcurrentWriters(t *testing.T) {
	const (
		writers  = 3
		keyspace = 12
		rounds   = 15
	)
	m := mapManager(t, writers+1, 1, 16, 1, 1)
	mp, err := NewMap[uint64, uint64](m, WithShards(2), WithShardCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keyspace; k++ {
		if err := mp.Put(k, k*1000); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := uint64(1)
			for !stop.Load() {
				k := uint64((w*5 + int(gen)*3) % keyspace)
				if err := mp.Put(k, k*1000+gen%1000); err != nil {
					t.Error(err)
					return
				}
				gen++
			}
		}(w)
	}
	for i := 0; i < rounds; i++ {
		mp.Range(func(k, v uint64) bool {
			if v/1000 != k {
				t.Errorf("torn snapshot: key %d carries value %d", k, v)
			}
			return true
		})
	}
	stop.Store(true)
	wg.Wait()
}
