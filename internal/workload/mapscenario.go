package workload

import (
	"fmt"

	"wflocks/internal/env"
)

// Map workloads. Where Workload describes static lock-set conflict
// graphs for the lock experiments, MapScenario describes key-value
// traffic against the wfmap subsystem: an operation mix plus a key
// distribution. The three canonical shapes a sharded map meets in
// service traffic are read-heavy (caches), write-heavy (ingest), and
// zipfian-skewed (hot keys concentrating contention on few shards).

// MapOpKind is one kind of map operation in a scenario's mix.
type MapOpKind int

const (
	MapGet MapOpKind = iota
	MapPut
	MapDelete
)

// String names the op kind in tables.
func (k MapOpKind) String() string {
	switch k {
	case MapGet:
		return "get"
	case MapPut:
		return "put"
	case MapDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// MapScenario is a map workload: an operation mix over a keyspace with
// a chosen skew. Percentages sum to 100.
type MapScenario struct {
	// Name identifies the scenario (the cmd/wfbench -workload flag
	// matches it, e.g. "map:read").
	Name string
	// Keys is the keyspace size; ops draw keys in [0, Keys).
	Keys int
	// GetPct, PutPct and DeletePct give the operation mix.
	GetPct, PutPct, DeletePct int
	// Skew selects the key distribution: 0 is uniform; s > 0 draws keys
	// from a Zipf distribution with exponent s (key i with weight
	// 1/(i+1)^s), the standard hot-key model.
	Skew float64
}

// Validate checks the scenario's internal consistency.
func (s *MapScenario) Validate() error {
	if s.Keys <= 0 {
		return fmt.Errorf("map scenario %q: keyspace must be positive, got %d", s.Name, s.Keys)
	}
	if s.GetPct < 0 || s.PutPct < 0 || s.DeletePct < 0 ||
		s.GetPct+s.PutPct+s.DeletePct != 100 {
		return fmt.Errorf("map scenario %q: op mix %d/%d/%d must be non-negative and sum to 100",
			s.Name, s.GetPct, s.PutPct, s.DeletePct)
	}
	if s.Skew < 0 {
		return fmt.Errorf("map scenario %q: skew must be non-negative, got %v", s.Name, s.Skew)
	}
	return nil
}

// MapScenarios lists the built-in scenario family.
func MapScenarios() []MapScenario {
	return []MapScenario{
		{Name: "map:read", Keys: 256, GetPct: 90, PutPct: 10, DeletePct: 0, Skew: 0},
		{Name: "map:write", Keys: 256, GetPct: 20, PutPct: 70, DeletePct: 10, Skew: 0},
		{Name: "map:zipf", Keys: 256, GetPct: 90, PutPct: 10, DeletePct: 0, Skew: 1.2},
	}
}

// LookupMapScenario finds a built-in scenario by name, or nil.
func LookupMapScenario(name string) *MapScenario {
	for _, s := range MapScenarios() {
		if s.Name == name {
			return &s
		}
	}
	return nil
}

// MapOpStream draws operations from a scenario with a private RNG, so
// each worker goroutine owns one stream with no shared state.
type MapOpStream struct {
	sc   *MapScenario
	rng  *env.RNG
	zipf *Zipf
}

// NewMapOpStream creates a stream over sc seeded with seed.
func NewMapOpStream(sc *MapScenario, seed uint64) *MapOpStream {
	st := &MapOpStream{sc: sc, rng: env.NewRNG(seed)}
	if sc.Skew > 0 {
		st.zipf = NewZipf(sc.Keys, sc.Skew)
	}
	return st
}

// Next draws one operation: its kind from the scenario's mix and its
// key from the scenario's distribution.
func (st *MapOpStream) Next() (MapOpKind, int) {
	roll := st.rng.IntN(100)
	var kind MapOpKind
	switch {
	case roll < st.sc.GetPct:
		kind = MapGet
	case roll < st.sc.GetPct+st.sc.PutPct:
		kind = MapPut
	default:
		kind = MapDelete
	}
	return kind, st.Key()
}

// Key draws a key index from the scenario's distribution.
func (st *MapOpStream) Key() int {
	if st.zipf != nil {
		return st.zipf.Sample(st.rng)
	}
	return st.rng.IntN(st.sc.Keys)
}
