package workload

import (
	"strings"
	"testing"
)

func TestQueueScenarioValidate(t *testing.T) {
	for _, sc := range QueueScenarios() {
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in %s invalid: %v", sc.Name, err)
		}
	}
	bad := []QueueScenario{
		{Name: "bad:cap", Capacity: 0, Stages: 1},
		{Name: "bad:stages", Capacity: 8, Stages: 0},
		{Name: "bad:pin", Capacity: 8, Stages: 1, PinnedProducers: 1},
		{Name: "bad:neg", Capacity: 8, Stages: 1, PinnedProducers: -1, PinnedConsumers: 2},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s validated", sc.Name)
		}
	}
}

func TestQueueScenarioLookup(t *testing.T) {
	if sc := LookupQueueScenario("queue:mpmc"); sc == nil || sc.Stages != 1 {
		t.Fatalf("queue:mpmc lookup = %+v", sc)
	}
	if sc := LookupQueueScenario("queue:nope"); sc != nil {
		t.Fatalf("bogus lookup found %+v", sc)
	}
}

func TestQueueScenarioSplit(t *testing.T) {
	spsc := LookupQueueScenario("queue:spsc")
	if p, c, mv := spsc.Split(32); p != 1 || c != 1 || mv != 1 {
		t.Fatalf("spsc split(32) = %d/%d/%d, want 1/1/1", p, c, mv)
	}
	mpmc := LookupQueueScenario("queue:mpmc")
	if p, c, _ := mpmc.Split(8); p != 4 || c != 4 {
		t.Fatalf("mpmc split(8) = %d/%d, want 4/4", p, c)
	}
	pipe := LookupQueueScenario("queue:pipeline")
	if p, c, mv := pipe.Split(8); p != 2 || c != 2 || mv != 2 {
		t.Fatalf("pipeline split(8) = %d/%d/%d, want 2/2/2", p, c, mv)
	}
	// Degenerate worker counts still give every role a goroutine.
	if p, c, mv := pipe.Split(1); p != 1 || c != 1 || mv != 1 {
		t.Fatalf("pipeline split(1) = %d/%d/%d, want 1/1/1", p, c, mv)
	}
}

func TestScenarioRegistry(t *testing.T) {
	infos := Scenarios()
	if len(infos) == 0 {
		t.Fatal("empty registry")
	}
	// Every family is represented and every name is unique and
	// resolvable through its family's lookup.
	kinds := map[string]int{}
	seen := map[string]bool{}
	for _, in := range infos {
		if seen[in.Name] {
			t.Errorf("duplicate scenario name %q", in.Name)
		}
		seen[in.Name] = true
		kinds[in.Kind]++
		if in.Summary == "" {
			t.Errorf("%s has no summary", in.Name)
		}
		if !strings.HasPrefix(in.Name, in.Kind+":") {
			t.Errorf("%s: name does not carry its kind prefix %q", in.Name, in.Kind)
		}
		var found bool
		switch in.Kind {
		case "map":
			found = LookupMapScenario(in.Name) != nil
		case "cache":
			found = LookupCacheScenario(in.Name) != nil
		case "txn":
			found = LookupTxnScenario(in.Name) != nil
		case "queue":
			found = LookupQueueScenario(in.Name) != nil
		case "log":
			found = LookupLogScenario(in.Name) != nil
		case "service":
			found = LookupServiceScenario(in.Name) != nil
		default:
			t.Errorf("%s: unknown kind %q", in.Name, in.Kind)
			found = true
		}
		if !found {
			t.Errorf("%s not resolvable via its family lookup", in.Name)
		}
	}
	for _, kind := range []string{"map", "cache", "txn", "queue", "log", "service"} {
		if kinds[kind] == 0 {
			t.Errorf("registry missing the %s family", kind)
		}
	}
	if names := ScenarioNames(); len(names) != len(infos) {
		t.Fatalf("ScenarioNames has %d entries, registry %d", len(names), len(infos))
	}
}
