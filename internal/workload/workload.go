// Package workload generates the lock-set workloads used by the tests
// and experiments: the dining-philosophers ring that motivates the
// paper (Section 1), random bounded-contention lock sets, hotspots, and
// the fine-grained data-structure access patterns (list and graph
// neighborhoods) the introduction cites as applications.
package workload

import (
	"fmt"

	"wflocks/internal/env"
)

// Workload assigns each process a sequence of lock sets to attempt.
type Workload struct {
	// Name describes the workload in experiment tables.
	Name string
	// NumLocks is the total number of locks.
	NumLocks int
	// Sets[i] is the lock set process i uses for every attempt (static
	// conflict graph workloads). For dynamic workloads use NextSet.
	Sets [][]int
	// Kappa is the maximum point contention any lock can experience
	// under this workload (used to configure the algorithm and to
	// normalize fairness results).
	Kappa int
	// MaxLocksPerSet is the L bound of the workload.
	MaxLocksPerSet int
}

// NumProcs reports the number of processes in the workload.
func (w *Workload) NumProcs() int { return len(w.Sets) }

// Validate checks internal consistency (every set within bounds, κ
// consistent with the conflict structure).
func (w *Workload) Validate() error {
	counts := make([]int, w.NumLocks)
	for i, set := range w.Sets {
		if len(set) == 0 || len(set) > w.MaxLocksPerSet {
			return fmt.Errorf("workload %q: process %d has %d locks, bound %d",
				w.Name, i, len(set), w.MaxLocksPerSet)
		}
		seen := map[int]bool{}
		for _, li := range set {
			if li < 0 || li >= w.NumLocks {
				return fmt.Errorf("workload %q: lock index %d out of range", w.Name, li)
			}
			if seen[li] {
				return fmt.Errorf("workload %q: duplicate lock %d in process %d's set", w.Name, li, i)
			}
			seen[li] = true
			counts[li]++
		}
	}
	for li, c := range counts {
		if c > w.Kappa {
			return fmt.Errorf("workload %q: lock %d contended by %d processes, κ=%d",
				w.Name, li, c, w.Kappa)
		}
	}
	return nil
}

// Philosophers builds the dining-philosophers ring: n philosophers, n
// chopsticks, philosopher i uses chopsticks {i, (i+1) mod n}. κ = L = 2
// (Section 1: "here, κ = L = 2").
func Philosophers(n int) *Workload {
	if n < 3 {
		panic("workload: need at least 3 philosophers")
	}
	sets := make([][]int, n)
	for i := 0; i < n; i++ {
		sets[i] = []int{i, (i + 1) % n}
	}
	return &Workload{
		Name:           fmt.Sprintf("philosophers(n=%d)", n),
		NumLocks:       n,
		Sets:           sets,
		Kappa:          2,
		MaxLocksPerSet: 2,
	}
}

// HotLock builds the single-lock contention workload: n processes all
// competing on one lock. κ = n, L = 1.
func HotLock(n int) *Workload {
	sets := make([][]int, n)
	for i := range sets {
		sets[i] = []int{0}
	}
	return &Workload{
		Name:           fmt.Sprintf("hotlock(n=%d)", n),
		NumLocks:       1,
		Sets:           sets,
		Kappa:          n,
		MaxLocksPerSet: 1,
	}
}

// RandomSets builds a workload of procs processes each holding a random
// L-subset of numLocks locks, resampled (rejection) until every lock's
// contention is at most kappa. Panics if the parameters make that
// impossible (procs*L > numLocks*kappa).
func RandomSets(rng *env.RNG, procs, numLocks, l, kappa int) *Workload {
	if procs*l > numLocks*kappa {
		panic(fmt.Sprintf("workload: cannot fit %d processes × %d locks with κ=%d over %d locks",
			procs, l, kappa, numLocks))
	}
	counts := make([]int, numLocks)
	sets := make([][]int, procs)
	for i := range sets {
		for {
			set := sampleSubset(rng, numLocks, l)
			ok := true
			for _, li := range set {
				if counts[li]+1 > kappa {
					ok = false
					break
				}
			}
			if ok {
				for _, li := range set {
					counts[li]++
				}
				sets[i] = set
				break
			}
		}
	}
	return &Workload{
		Name:           fmt.Sprintf("random(p=%d,m=%d,L=%d,κ=%d)", procs, numLocks, l, kappa),
		NumLocks:       numLocks,
		Sets:           sets,
		Kappa:          kappa,
		MaxLocksPerSet: l,
	}
}

// Chain builds overlapping windows over a line of locks: process i uses
// locks {i, i+1, ..., i+l-1}. κ = min(l, procs), L = l. This is the
// linked-list "lock a node and its neighbors" pattern from Section 1.
func Chain(procs, l int) *Workload {
	if procs < 1 || l < 1 {
		panic("workload: invalid chain shape")
	}
	numLocks := procs + l - 1
	sets := make([][]int, procs)
	for i := range sets {
		set := make([]int, l)
		for j := 0; j < l; j++ {
			set[j] = i + j
		}
		sets[i] = set
	}
	kappa := l
	if procs < l {
		kappa = procs
	}
	return &Workload{
		Name:           fmt.Sprintf("chain(p=%d,L=%d)", procs, l),
		NumLocks:       numLocks,
		Sets:           sets,
		Kappa:          kappa,
		MaxLocksPerSet: l,
	}
}

// Disjoint builds a contention-free workload: process i uses its own l
// private locks. κ = 1.
func Disjoint(procs, l int) *Workload {
	sets := make([][]int, procs)
	for i := range sets {
		set := make([]int, l)
		for j := 0; j < l; j++ {
			set[j] = i*l + j
		}
		sets[i] = set
	}
	return &Workload{
		Name:           fmt.Sprintf("disjoint(p=%d,L=%d)", procs, l),
		NumLocks:       procs * l,
		Sets:           sets,
		Kappa:          1,
		MaxLocksPerSet: l,
	}
}

// Clusters builds numClusters independent groups: each group has kappa
// processes, all contending on the same private set of l locks. This
// gives exact, uniform κ and L, which the step-bound sweeps (E1, E4)
// need to measure scaling shapes.
func Clusters(numClusters, kappa, l int) *Workload {
	if numClusters < 1 || kappa < 1 || l < 1 {
		panic("workload: invalid cluster shape")
	}
	sets := make([][]int, 0, numClusters*kappa)
	for c := 0; c < numClusters; c++ {
		base := c * l
		set := make([]int, l)
		for j := 0; j < l; j++ {
			set[j] = base + j
		}
		for k := 0; k < kappa; k++ {
			sets = append(sets, append([]int(nil), set...))
		}
	}
	return &Workload{
		Name:           fmt.Sprintf("clusters(c=%d,κ=%d,L=%d)", numClusters, kappa, l),
		NumLocks:       numClusters * l,
		Sets:           sets,
		Kappa:          kappa,
		MaxLocksPerSet: l,
	}
}

// Star builds a hub-and-spokes workload: every process i uses {hub,
// spoke_i}, so the hub lock sees κ = n contention while each spoke
// sees 1 — the maximally skewed contention profile. L = 2.
func Star(n int) *Workload {
	if n < 1 {
		panic("workload: star needs at least 1 process")
	}
	sets := make([][]int, n)
	for i := range sets {
		sets[i] = []int{0, i + 1}
	}
	return &Workload{
		Name:           fmt.Sprintf("star(n=%d)", n),
		NumLocks:       n + 1,
		Sets:           sets,
		Kappa:          n,
		MaxLocksPerSet: 2,
	}
}

// sampleSubset draws a uniform l-subset of [0, n).
func sampleSubset(rng *env.RNG, n, l int) []int {
	seen := map[int]bool{}
	out := make([]int, 0, l)
	for len(out) < l {
		v := rng.IntN(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
