package workload

import (
	"fmt"

	"wflocks/internal/env"
)

// Cache workloads. Where MapScenario describes raw key-value traffic,
// CacheScenario describes traffic against the wfcache subsystem: an
// operation mix, a keyspace, a skew, and crucially a cache capacity
// smaller than the keyspace, so that hit rate, eviction pressure and
// hot-key contention all emerge from the shape rather than being
// configured directly. The three canonical shapes are read-heavy with a
// comfortable cache (cache:read), zipf-skewed hot keys over a small
// cache (cache:zipf — the "millions of users, few hot keys" regime),
// and churn with writes and deletes keeping the eviction path hot
// (cache:churn).

// CacheOpKind is one kind of cache operation in a scenario's mix.
type CacheOpKind int

const (
	CacheGet CacheOpKind = iota
	CachePut
	CacheDelete
)

// String names the op kind in tables.
func (k CacheOpKind) String() string {
	switch k {
	case CacheGet:
		return "get"
	case CachePut:
		return "put"
	case CacheDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// CacheScenario is a cache workload: an operation mix over a keyspace
// with a chosen skew, against a cache of a given capacity. Percentages
// sum to 100.
type CacheScenario struct {
	// Name identifies the scenario (the cmd/wfbench -workload flag
	// matches it, e.g. "cache:zipf").
	Name string
	// Keys is the keyspace size; ops draw keys in [0, Keys).
	Keys int
	// Capacity is the cache's total entry capacity. Hit rate is an
	// emergent property of Capacity/Keys and the skew.
	Capacity int
	// GetPct, PutPct and DeletePct give the operation mix.
	GetPct, PutPct, DeletePct int
	// Skew selects the key distribution: 0 is uniform; s > 0 draws keys
	// from a Zipf distribution with exponent s (rank i with weight
	// 1/(i+1)^s), the standard hot-key model.
	Skew float64
}

// Validate checks the scenario's internal consistency.
func (s *CacheScenario) Validate() error {
	if s.Keys <= 0 {
		return fmt.Errorf("cache scenario %q: keyspace must be positive, got %d", s.Name, s.Keys)
	}
	if s.Capacity <= 0 {
		return fmt.Errorf("cache scenario %q: capacity must be positive, got %d", s.Name, s.Capacity)
	}
	if s.GetPct < 0 || s.PutPct < 0 || s.DeletePct < 0 ||
		s.GetPct+s.PutPct+s.DeletePct != 100 {
		return fmt.Errorf("cache scenario %q: op mix %d/%d/%d must be non-negative and sum to 100",
			s.Name, s.GetPct, s.PutPct, s.DeletePct)
	}
	if s.Skew < 0 {
		return fmt.Errorf("cache scenario %q: skew must be non-negative, got %v", s.Name, s.Skew)
	}
	return nil
}

// CacheScenarios lists the built-in scenario family.
func CacheScenarios() []CacheScenario {
	return []CacheScenario{
		// Read-heavy with the cache holding half the keyspace: the
		// baseline serving shape.
		{Name: "cache:read", Keys: 256, Capacity: 128, GetPct: 95, PutPct: 5, DeletePct: 0, Skew: 0},
		// Hot keys over a small cache: the head of the zipf fits, the
		// tail always misses, and the hot shard carries most contention.
		{Name: "cache:zipf", Keys: 256, Capacity: 64, GetPct: 95, PutPct: 5, DeletePct: 0, Skew: 1.2},
		// Write/delete churn at capacity: every insert evicts, keeping
		// the LRU-surgery path (not the probe fast path) hot.
		{Name: "cache:churn", Keys: 256, Capacity: 64, GetPct: 40, PutPct: 50, DeletePct: 10, Skew: 0.6},
	}
}

// LookupCacheScenario finds a built-in scenario by name, or nil.
func LookupCacheScenario(name string) *CacheScenario {
	for _, s := range CacheScenarios() {
		if s.Name == name {
			return &s
		}
	}
	return nil
}

// CacheOpStream draws operations from a scenario with a private RNG, so
// each worker goroutine owns one stream with no shared state. The
// skewed variant draws keys from the shared Zipf sampler.
type CacheOpStream struct {
	sc   *CacheScenario
	rng  *env.RNG
	zipf *Zipf
}

// NewCacheOpStream creates a stream over sc seeded with seed.
func NewCacheOpStream(sc *CacheScenario, seed uint64) *CacheOpStream {
	st := &CacheOpStream{sc: sc, rng: env.NewRNG(seed)}
	if sc.Skew > 0 {
		st.zipf = NewZipf(sc.Keys, sc.Skew)
	}
	return st
}

// Next draws one operation: its kind from the scenario's mix and its
// key from the scenario's distribution.
func (st *CacheOpStream) Next() (CacheOpKind, int) {
	roll := st.rng.IntN(100)
	var kind CacheOpKind
	switch {
	case roll < st.sc.GetPct:
		kind = CacheGet
	case roll < st.sc.GetPct+st.sc.PutPct:
		kind = CachePut
	default:
		kind = CacheDelete
	}
	return kind, st.Key()
}

// Key draws a key index from the scenario's distribution.
func (st *CacheOpStream) Key() int {
	if st.zipf != nil {
		return st.zipf.Sample(st.rng)
	}
	return st.rng.IntN(st.sc.Keys)
}
