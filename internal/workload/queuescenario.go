package workload

import "fmt"

// Queue workloads. Where MapScenario and CacheScenario describe
// point-lookup traffic, QueueScenario describes producer/consumer
// traffic against the wfqueue subsystem: a topology (how many
// producers and consumers, how many pipeline stages) and a per-queue
// capacity. The three canonical shapes are the two-party baseline
// (queue:spsc), the many-to-many contention shape that stresses a
// single FIFO point (queue:mpmc), and the multi-stage streaming shape
// where items traverse a chain of queues (queue:pipeline) — the
// backbone of a heavy-traffic ingest/transform/serve path.
type QueueScenario struct {
	// Name identifies the scenario (the cmd/wfbench -workload flag
	// matches it, e.g. "queue:mpmc").
	Name string
	// Capacity is each queue's slot count. It bounds how far producers
	// run ahead; small capacities keep the full/empty transitions hot.
	Capacity int
	// Stages is the number of queues items traverse: 1 is a plain
	// producer/consumer queue, k > 1 chains k queues with a worker pool
	// moving items across each boundary.
	Stages int
	// PinnedProducers and PinnedConsumers, when positive, fix the
	// producer/consumer goroutine counts regardless of the host's
	// parallelism (queue:spsc pins 1/1). When zero the runner splits
	// its workers evenly between the roles.
	PinnedProducers, PinnedConsumers int
}

// Validate checks the scenario's internal consistency.
func (s *QueueScenario) Validate() error {
	if s.Capacity <= 0 {
		return fmt.Errorf("queue scenario %q: capacity must be positive, got %d", s.Name, s.Capacity)
	}
	if s.Stages < 1 {
		return fmt.Errorf("queue scenario %q: stages must be at least 1, got %d", s.Name, s.Stages)
	}
	if s.PinnedProducers < 0 || s.PinnedConsumers < 0 {
		return fmt.Errorf("queue scenario %q: pinned counts must be non-negative, got %d/%d",
			s.Name, s.PinnedProducers, s.PinnedConsumers)
	}
	if (s.PinnedProducers == 0) != (s.PinnedConsumers == 0) {
		return fmt.Errorf("queue scenario %q: pin both producer and consumer counts or neither", s.Name)
	}
	return nil
}

// QueueScenarios lists the built-in scenario family.
func QueueScenarios() []QueueScenario {
	return []QueueScenario{
		// One producer, one consumer: the baseline handoff shape, where
		// the queue's constant factors (not contention) dominate.
		{Name: "queue:spsc", Capacity: 64, Stages: 1, PinnedProducers: 1, PinnedConsumers: 1},
		// Many producers, many consumers on one logical queue: the
		// contention shape where sharding and helping earn their keep.
		{Name: "queue:mpmc", Capacity: 256, Stages: 1},
		// Three chained queues with workers at every boundary: items are
		// produced, transformed twice, and consumed — the streaming
		// pipeline the ROADMAP's heavy-traffic north star is built from.
		{Name: "queue:pipeline", Capacity: 64, Stages: 3},
	}
}

// LookupQueueScenario finds a built-in scenario by name, or nil.
func LookupQueueScenario(name string) *QueueScenario {
	for _, s := range QueueScenarios() {
		if s.Name == name {
			return &s
		}
	}
	return nil
}

// Split apportions workers to the scenario's roles: producers feed the
// first queue, consumers drain the last, and each of the stages-1
// inner boundaries gets moversPer goroutines shuttling items across
// it. Pinned scenarios keep their exact counts (one mover per
// boundary); otherwise workers are divided evenly across the stages+1
// roles, with every role getting at least one goroutine.
func (s *QueueScenario) Split(workers int) (producers, consumers, moversPer int) {
	if s.PinnedProducers > 0 {
		return s.PinnedProducers, s.PinnedConsumers, 1
	}
	roles := s.Stages + 1
	per := workers / roles
	if per < 1 {
		per = 1
	}
	return per, per, per
}
