package workload

import (
	"strings"
	"testing"
)

func TestRegistryNamesUniqueAndPrefixed(t *testing.T) {
	seen := make(map[string]bool)
	for _, in := range Scenarios() {
		if seen[in.Name] {
			t.Errorf("duplicate scenario name %q", in.Name)
		}
		seen[in.Name] = true
		// The name's family prefix is the registry Kind — the contract
		// cmd/wfbench's unknown-workload diagnostics rely on.
		fam, _, ok := strings.Cut(in.Name, ":")
		if !ok || fam != in.Kind {
			t.Errorf("scenario %q: name prefix %q does not match kind %q", in.Name, fam, in.Kind)
		}
		if in.Summary == "" {
			t.Errorf("scenario %q: empty summary", in.Name)
		}
	}
}

func TestRegistryFamilies(t *testing.T) {
	want := []string{"map", "cache", "txn", "queue", "log", "service"}
	got := Families()
	if len(got) != len(want) {
		t.Fatalf("Families() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Families() = %v, want %v", got, want)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range ScenarioNames() {
		in := Lookup(name)
		if in == nil || in.Name != name {
			t.Fatalf("Lookup(%q) = %+v", name, in)
		}
	}
	if Lookup("service:nope") != nil {
		t.Fatal("Lookup of unknown scenario returned non-nil")
	}
	if Lookup("") != nil {
		t.Fatal("Lookup of empty name returned non-nil")
	}
}

func TestServiceScenariosValidate(t *testing.T) {
	for _, s := range ServiceScenarios() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := ServiceScenario{Name: "service:x", Backend: "mutex", Rate: 1, Duration: 1, Conns: 1, Keys: 1, GetPct: 100}
	if err := bad.Validate(); err == nil {
		t.Error("mutex as scenario backend accepted (the runner owns the baseline)")
	}
}
