package workload

import "fmt"

// Log workloads. Where QueueScenario describes consume-once
// producer/consumer traffic, LogScenario describes broadcast fan-out
// against the wflog subsystem: every consumer independently reads the
// whole stream through its own cursor. The three canonical shapes are
// live fan-out (log:fanout), replay of a pre-filled window
// (log:replay), and the lagging-subscriber shape (log:lagging) where
// one consumer periodically falls behind — the adversary the log's
// helped cursor-advance and min-cursor trim exist for.
type LogScenario struct {
	// Name identifies the scenario (the cmd/wfbench -workload flag
	// matches it, e.g. "log:fanout").
	Name string
	// Producers and Consumers fix the goroutine counts: broadcast
	// delivery cost scales with Consumers, so the topology is pinned
	// rather than split from the host's parallelism.
	Producers, Consumers int
	// Capacity is the log's total slot count; it bounds how far
	// producers run ahead of the slowest cursor.
	Capacity int
	// Segment is the reclamation granularity in entries.
	Segment int
	// Replay, when set, appends the whole stream before any consumer
	// starts: consumers then drain a retained window rather than racing
	// the producers (Capacity must cover Producers*items).
	Replay bool
	// Laggards is the number of consumers that periodically sleep
	// mid-stream, forcing retention to stretch and trims to wait on
	// them.
	Laggards int
}

// Validate checks the scenario's internal consistency.
func (s *LogScenario) Validate() error {
	if s.Producers < 1 || s.Consumers < 1 {
		return fmt.Errorf("log scenario %q: producers/consumers must be positive, got %d/%d",
			s.Name, s.Producers, s.Consumers)
	}
	if s.Capacity <= 0 {
		return fmt.Errorf("log scenario %q: capacity must be positive, got %d", s.Name, s.Capacity)
	}
	if s.Segment <= 0 || s.Segment > s.Capacity {
		return fmt.Errorf("log scenario %q: segment must be in 1..capacity, got %d", s.Name, s.Segment)
	}
	if s.Laggards < 0 || s.Laggards > s.Consumers {
		return fmt.Errorf("log scenario %q: laggards must be in 0..consumers, got %d", s.Name, s.Laggards)
	}
	return nil
}

// LogScenarios lists the built-in scenario family.
func LogScenarios() []LogScenario {
	return []LogScenario{
		// Balanced live fan-out: producers and consumers race, every
		// consumer sees every entry — the pub/sub steady state.
		{Name: "log:fanout", Producers: 4, Consumers: 4, Capacity: 1024, Segment: 64},
		// Replay: the stream is appended first, then many consumers drain
		// the retained window concurrently — the catch-up/bootstrap shape.
		// Capacity covers a full-scale prefill per shard even at the
		// widest shard sweep (keyed appends pin a producer to one shard).
		{Name: "log:replay", Producers: 2, Consumers: 8, Capacity: 16384, Segment: 64, Replay: true},
		// One consumer periodically stalls mid-stream: retention stretches
		// behind it and the other consumers must stay unaffected.
		{Name: "log:lagging", Producers: 8, Consumers: 4, Capacity: 1024, Segment: 64, Laggards: 1},
	}
}

// LookupLogScenario finds a built-in scenario by name, or nil.
func LookupLogScenario(name string) *LogScenario {
	for _, s := range LogScenarios() {
		if s.Name == name {
			return &s
		}
	}
	return nil
}
