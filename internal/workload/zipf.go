package workload

import (
	"math"
	"sort"

	"wflocks/internal/env"
)

// Zipf draws from a bounded Zipf distribution by inversion on a
// precomputed CDF: rank i (0-based) gets weight 1/(i+1)^s, the standard
// hot-key model for skewed service traffic. Construction is O(n); each
// sample is a binary search over the CDF. The sampler itself is
// stateless after construction and safe for concurrent use — randomness
// comes from the caller's RNG, so each worker goroutine owns its own
// stream. Both the map and cache scenario families draw their skewed
// keys from this one implementation.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s. It panics on
// a non-positive n or a negative s (scenario validation reports those
// as errors before any sampler is built).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: NewZipf: n must be positive")
	}
	if s < 0 {
		panic("workload: NewZipf: exponent must be non-negative")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N reports the number of ranks the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one rank in [0, N) using the caller's RNG.
func (z *Zipf) Sample(rng *env.RNG) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

// CDF returns the cumulative probability of ranks 0..i inclusive.
func (z *Zipf) CDF(i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= len(z.cdf) {
		return 1
	}
	return z.cdf[i]
}
