package workload

import (
	"fmt"
	"time"
)

// Service workloads. Where the other families describe in-process
// traffic against one data structure, ServiceScenario describes
// *network* traffic against the wfserve service: an open-loop arrival
// rate, a connection count, a key distribution and an op mix, measured
// in tail latency rather than throughput (the load harness is
// coordinated-omission-safe, so the percentiles mean what they say).
// The runner drives each scenario against a wait-free backend and the
// sharded-mutex baseline over the in-process loopback transport, so CI
// exercises the whole protocol path without opening a port.
type ServiceScenario struct {
	// Name identifies the scenario (the cmd/wfbench -workload flag
	// matches it, e.g. "service:read").
	Name string
	// Backend is the wait-free backend the scenario showcases: "map" or
	// "cache" (the runner always adds the mutex baseline itself).
	Backend string
	// Rate is the aggregate arrival rate in ops/sec; Duration is the
	// base scheduled window (the runner shrinks it at quick scale and
	// stretches it at full scale).
	Rate     float64
	Duration time.Duration
	// Conns is the client connection count.
	Conns int
	// Keys and Skew shape the key distribution; Prefill stores every
	// key before the clock starts so reads hit.
	Keys    int
	Skew    float64
	Prefill bool
	// GetPct, SetPct and DelPct are the op mix in percent (sum 100).
	GetPct, SetPct, DelPct int
	// ValBytes sizes SET payloads.
	ValBytes int
	// SlowConns and SlowDelay mark slow-reading clients (see
	// loadgen.Config); the scenario verifies per-connection
	// backpressure confines the damage.
	SlowConns int
	SlowDelay time.Duration
}

// Validate checks the scenario's internal consistency.
func (s *ServiceScenario) Validate() error {
	if s.Backend != "map" && s.Backend != "cache" {
		return fmt.Errorf("service scenario %q: backend must be map or cache, got %q", s.Name, s.Backend)
	}
	if s.Rate <= 0 {
		return fmt.Errorf("service scenario %q: rate must be positive, got %g", s.Name, s.Rate)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("service scenario %q: duration must be positive, got %v", s.Name, s.Duration)
	}
	if s.Conns < 1 {
		return fmt.Errorf("service scenario %q: conns must be at least 1, got %d", s.Name, s.Conns)
	}
	if s.Keys < 1 {
		return fmt.Errorf("service scenario %q: keys must be at least 1, got %d", s.Name, s.Keys)
	}
	if s.GetPct < 0 || s.SetPct < 0 || s.DelPct < 0 || s.GetPct+s.SetPct+s.DelPct != 100 {
		return fmt.Errorf("service scenario %q: op mix %d/%d/%d must sum to 100",
			s.Name, s.GetPct, s.SetPct, s.DelPct)
	}
	if s.SlowConns < 0 || s.SlowConns > s.Conns {
		return fmt.Errorf("service scenario %q: slow conns %d out of range [0, %d]",
			s.Name, s.SlowConns, s.Conns)
	}
	return nil
}

// ServiceScenarios lists the built-in scenario family.
func ServiceScenarios() []ServiceScenario {
	return []ServiceScenario{
		// Read-heavy cache traffic: the CDN/session-store shape, and the
		// headline holder-stall comparison — a stalled writer must not
		// drag the read tail.
		{Name: "service:read", Backend: "cache", Rate: 4000, Duration: 2 * time.Second,
			Conns: 8, Keys: 1024, Skew: 0.9, Prefill: true,
			GetPct: 95, SetPct: 5, DelPct: 0, ValBytes: 32},
		// Write-heavy ingest burst against the durable-KV map backend.
		{Name: "service:writeburst", Backend: "map", Rate: 4000, Duration: 2 * time.Second,
			Conns: 8, Keys: 4096, Skew: 0.5, Prefill: false,
			GetPct: 20, SetPct: 75, DelPct: 5, ValBytes: 64},
		// Extreme skew: most traffic lands on a handful of keys, so one
		// shard (and one lock) eats nearly everything.
		{Name: "service:hotkey", Backend: "cache", Rate: 4000, Duration: 2 * time.Second,
			Conns: 8, Keys: 1024, Skew: 1.2, Prefill: true,
			GetPct: 90, SetPct: 10, DelPct: 0, ValBytes: 32},
		// Two of eight clients read their replies slowly; per-connection
		// backpressure must keep them from inflating everyone's tail.
		{Name: "service:slowclient", Backend: "cache", Rate: 2000, Duration: 2 * time.Second,
			Conns: 8, Keys: 1024, Skew: 0.9, Prefill: true,
			GetPct: 95, SetPct: 5, DelPct: 0, ValBytes: 32,
			SlowConns: 2, SlowDelay: 2 * time.Millisecond},
	}
}

// LookupServiceScenario finds a built-in scenario by name, or nil.
func LookupServiceScenario(name string) *ServiceScenario {
	for _, s := range ServiceScenarios() {
		if s.Name == name {
			return &s
		}
	}
	return nil
}
