package workload

import (
	"testing"
	"testing/quick"

	"wflocks/internal/env"
)

func TestPhilosophersShape(t *testing.T) {
	w := Philosophers(5)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumProcs() != 5 || w.NumLocks != 5 || w.Kappa != 2 || w.MaxLocksPerSet != 2 {
		t.Fatalf("unexpected shape %+v", w)
	}
	if w.Sets[4][0] != 4 || w.Sets[4][1] != 0 {
		t.Fatalf("ring wraparound wrong: %v", w.Sets[4])
	}
}

func TestPhilosophersPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=2")
		}
	}()
	Philosophers(2)
}

func TestHotLock(t *testing.T) {
	w := HotLock(7)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Kappa != 7 || w.NumLocks != 1 || w.MaxLocksPerSet != 1 {
		t.Fatalf("unexpected shape %+v", w)
	}
}

func TestChain(t *testing.T) {
	w := Chain(4, 3)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumLocks != 6 {
		t.Fatalf("numLocks = %d, want 6", w.NumLocks)
	}
	if got := w.Sets[3]; got[0] != 3 || got[2] != 5 {
		t.Fatalf("last window = %v", got)
	}
}

func TestDisjoint(t *testing.T) {
	w := Disjoint(3, 2)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Kappa != 1 {
		t.Fatalf("κ = %d, want 1", w.Kappa)
	}
	seen := map[int]bool{}
	for _, set := range w.Sets {
		for _, li := range set {
			if seen[li] {
				t.Fatalf("lock %d shared in disjoint workload", li)
			}
			seen[li] = true
		}
	}
}

func TestRandomSetsRespectsBounds(t *testing.T) {
	f := func(seed uint64) bool {
		rng := env.NewRNG(seed)
		w := RandomSets(rng, 6, 12, 2, 3)
		return w.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomSetsPanicsOnImpossible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomSets(env.NewRNG(1), 10, 2, 2, 1) // 20 slots needed, 2 available
}

func TestValidateCatchesBadSets(t *testing.T) {
	w := &Workload{Name: "bad", NumLocks: 2, Kappa: 1, MaxLocksPerSet: 2,
		Sets: [][]int{{0, 0}}}
	if err := w.Validate(); err == nil {
		t.Fatal("duplicate lock not caught")
	}
	w = &Workload{Name: "bad", NumLocks: 2, Kappa: 1, MaxLocksPerSet: 1,
		Sets: [][]int{{0, 1}}}
	if err := w.Validate(); err == nil {
		t.Fatal("oversized set not caught")
	}
	w = &Workload{Name: "bad", NumLocks: 2, Kappa: 1, MaxLocksPerSet: 1,
		Sets: [][]int{{0}, {0}}}
	if err := w.Validate(); err == nil {
		t.Fatal("κ violation not caught")
	}
	w = &Workload{Name: "bad", NumLocks: 1, Kappa: 1, MaxLocksPerSet: 1,
		Sets: [][]int{{3}}}
	if err := w.Validate(); err == nil {
		t.Fatal("out-of-range lock not caught")
	}
	w = &Workload{Name: "bad", NumLocks: 1, Kappa: 1, MaxLocksPerSet: 1,
		Sets: [][]int{{}}}
	if err := w.Validate(); err == nil {
		t.Fatal("empty set not caught")
	}
}

func TestStar(t *testing.T) {
	w := Star(4)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Kappa != 4 || w.NumLocks != 5 || w.MaxLocksPerSet != 2 {
		t.Fatalf("unexpected shape %+v", w)
	}
	for i, set := range w.Sets {
		if set[0] != 0 || set[1] != i+1 {
			t.Fatalf("process %d set = %v", i, set)
		}
	}
}

func TestStarPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Star(0)
}

func TestClusters(t *testing.T) {
	w := Clusters(3, 2, 2)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumProcs() != 6 || w.NumLocks != 6 {
		t.Fatalf("unexpected shape %+v", w)
	}
	// Processes in the same cluster share the same set.
	if w.Sets[0][0] != w.Sets[1][0] || w.Sets[0][1] != w.Sets[1][1] {
		t.Fatal("cluster members do not share a set")
	}
	// Different clusters are disjoint.
	if w.Sets[0][0] == w.Sets[2][0] {
		t.Fatal("clusters overlap")
	}
}

func TestClustersPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Clusters(0, 1, 1)
}

func TestChainPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Chain(0, 1)
}
