package workload

import "testing"

func TestCacheScenariosValidate(t *testing.T) {
	scs := CacheScenarios()
	if len(scs) != 3 {
		t.Fatalf("built-in scenarios = %d, want 3", len(scs))
	}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if sc.Capacity >= sc.Keys {
			t.Errorf("%s: capacity %d >= keyspace %d — hit rate would be trivial",
				sc.Name, sc.Capacity, sc.Keys)
		}
		if LookupCacheScenario(sc.Name) == nil {
			t.Errorf("%s not found by lookup", sc.Name)
		}
	}
	if LookupCacheScenario("cache:nope") != nil {
		t.Fatal("lookup invented a scenario")
	}
	for _, bad := range []CacheScenario{
		{Name: "bad", Keys: 0, Capacity: 8, GetPct: 100},
		{Name: "bad", Keys: 10, Capacity: 0, GetPct: 100},
		{Name: "bad", Keys: 10, Capacity: 8, GetPct: 50, PutPct: 20, DeletePct: 20},
		{Name: "bad", Keys: 10, Capacity: 8, GetPct: 100, Skew: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("scenario %+v accepted", bad)
		}
	}
}

func TestCacheOpStreamMix(t *testing.T) {
	sc := &CacheScenario{Name: "t", Keys: 64, Capacity: 16, GetPct: 60, PutPct: 30, DeletePct: 10}
	st := NewCacheOpStream(sc, 42)
	const n = 20000
	counts := map[CacheOpKind]int{}
	for i := 0; i < n; i++ {
		kind, key := st.Next()
		if key < 0 || key >= sc.Keys {
			t.Fatalf("key %d outside [0, %d)", key, sc.Keys)
		}
		counts[kind]++
	}
	for kind, pct := range map[CacheOpKind]int{CacheGet: 60, CachePut: 30, CacheDelete: 10} {
		got := float64(counts[kind]) / n * 100
		if got < float64(pct)-3 || got > float64(pct)+3 {
			t.Errorf("%v frequency = %.1f%%, want ~%d%%", kind, got, pct)
		}
	}
	// A skewed stream concentrates on the head ranks like the map
	// streams do (the sampler itself is tested in zipf_test.go).
	zs := NewCacheOpStream(LookupCacheScenario("cache:zipf"), 7)
	head := 0
	for i := 0; i < n; i++ {
		if zs.Key() < 8 {
			head++
		}
	}
	if float64(head)/n < 0.4 {
		t.Errorf("zipf head-8 share = %.2f, want > 0.4", float64(head)/n)
	}
}
