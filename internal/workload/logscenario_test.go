package workload

import "testing"

func TestLogScenarioValidate(t *testing.T) {
	for _, sc := range LogScenarios() {
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in %s invalid: %v", sc.Name, err)
		}
	}
	bad := []LogScenario{
		{Name: "bad:roles", Producers: 0, Consumers: 1, Capacity: 8, Segment: 4},
		{Name: "bad:cap", Producers: 1, Consumers: 1, Capacity: 0, Segment: 4},
		{Name: "bad:segment", Producers: 1, Consumers: 1, Capacity: 8, Segment: 16},
		{Name: "bad:laggards", Producers: 1, Consumers: 2, Capacity: 8, Segment: 4, Laggards: 3},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s validated", sc.Name)
		}
	}
}

func TestLogScenarioLookup(t *testing.T) {
	if sc := LookupLogScenario("log:lagging"); sc == nil || sc.Laggards != 1 {
		t.Fatalf("log:lagging lookup = %+v", sc)
	}
	if sc := LookupLogScenario("log:replay"); sc == nil || !sc.Replay {
		t.Fatalf("log:replay lookup = %+v", sc)
	}
	if sc := LookupLogScenario("log:nope"); sc != nil {
		t.Fatalf("bogus lookup found %+v", sc)
	}
}
