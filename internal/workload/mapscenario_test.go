package workload

import (
	"testing"
)

func TestMapScenariosValidate(t *testing.T) {
	scs := MapScenarios()
	if len(scs) != 3 {
		t.Fatalf("built-in scenarios = %d, want 3", len(scs))
	}
	for _, sc := range scs {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		if LookupMapScenario(sc.Name) == nil {
			t.Errorf("%s not found by lookup", sc.Name)
		}
	}
	if LookupMapScenario("map:nope") != nil {
		t.Fatal("lookup invented a scenario")
	}
	bad := MapScenario{Name: "bad", Keys: 10, GetPct: 50, PutPct: 20, DeletePct: 20}
	if err := bad.Validate(); err == nil {
		t.Fatal("mix summing to 90 accepted")
	}
	bad = MapScenario{Name: "bad", Keys: 0, GetPct: 100}
	if err := bad.Validate(); err == nil {
		t.Fatal("empty keyspace accepted")
	}
	bad = MapScenario{Name: "bad", Keys: 10, GetPct: 100, Skew: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestMapOpStreamMix(t *testing.T) {
	sc := &MapScenario{Name: "t", Keys: 64, GetPct: 70, PutPct: 20, DeletePct: 10}
	st := NewMapOpStream(sc, 42)
	const n = 20000
	counts := map[MapOpKind]int{}
	for i := 0; i < n; i++ {
		kind, key := st.Next()
		if key < 0 || key >= sc.Keys {
			t.Fatalf("key %d outside [0, %d)", key, sc.Keys)
		}
		counts[kind]++
	}
	// Within ±3% of the configured mix (binomial noise at n=20000 is
	// well under 1%).
	for kind, pct := range map[MapOpKind]int{MapGet: 70, MapPut: 20, MapDelete: 10} {
		got := float64(counts[kind]) / n * 100
		if got < float64(pct)-3 || got > float64(pct)+3 {
			t.Errorf("%v frequency = %.1f%%, want ~%d%%", kind, got, pct)
		}
	}
}

// TestZipfSampler checks the skewed key distribution: samples stay in
// range, the head key dominates a uniform draw, and frequencies are
// monotone-ish decreasing in rank.
func TestZipfSampler(t *testing.T) {
	sc := &MapScenario{Name: "z", Keys: 128, GetPct: 100, Skew: 1.2}
	st := NewMapOpStream(sc, 7)
	const n = 50000
	counts := make([]int, sc.Keys)
	for i := 0; i < n; i++ {
		k := st.Key()
		if k < 0 || k >= sc.Keys {
			t.Fatalf("key %d outside [0, %d)", k, sc.Keys)
		}
		counts[k]++
	}
	uniformShare := float64(n) / float64(sc.Keys)
	if float64(counts[0]) < 5*uniformShare {
		t.Errorf("head key drew %d of %d; skew 1.2 should concentrate far above uniform %f",
			counts[0], n, uniformShare)
	}
	if counts[0] <= counts[sc.Keys/2] || counts[sc.Keys/2] < counts[sc.Keys-1]/2 {
		t.Errorf("frequencies not decreasing in rank: head=%d mid=%d tail=%d",
			counts[0], counts[sc.Keys/2], counts[sc.Keys-1])
	}
	// Skew 0 must stay uniform-ish.
	u := NewMapOpStream(&MapScenario{Name: "u", Keys: 128, GetPct: 100}, 7)
	uc := make([]int, 128)
	for i := 0; i < n; i++ {
		uc[u.Key()]++
	}
	if float64(uc[0]) > 2*uniformShare {
		t.Errorf("uniform head key drew %d, want ~%f", uc[0], uniformShare)
	}
}
