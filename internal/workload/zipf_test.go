package workload

import (
	"math"
	"testing"

	"wflocks/internal/env"
)

func TestZipfCDFShape(t *testing.T) {
	z := NewZipf(64, 1.2)
	if z.N() != 64 {
		t.Fatalf("N = %d, want 64", z.N())
	}
	// The CDF must be strictly increasing and end at 1.
	prev := 0.0
	for i := 0; i < z.N(); i++ {
		c := z.CDF(i)
		if c <= prev {
			t.Fatalf("CDF not strictly increasing at %d: %v <= %v", i, c, prev)
		}
		prev = c
	}
	if math.Abs(z.CDF(z.N()-1)-1) > 1e-12 {
		t.Fatalf("CDF(last) = %v, want 1", z.CDF(z.N()-1))
	}
	// Out-of-range queries clamp.
	if z.CDF(-1) != 0 || z.CDF(z.N()) != 1 {
		t.Fatalf("CDF clamps = (%v, %v), want (0, 1)", z.CDF(-1), z.CDF(z.N()))
	}
	// Rank weights are 1/(i+1)^s: the head's probability mass must match
	// the analytic value.
	sum := 0.0
	for i := 1; i <= 64; i++ {
		sum += 1 / math.Pow(float64(i), 1.2)
	}
	if got, want := z.CDF(0), 1/sum; math.Abs(got-want) > 1e-12 {
		t.Fatalf("head mass = %v, want %v", got, want)
	}
}

func TestZipfSampleDistribution(t *testing.T) {
	const n, samples = 128, 50000
	z := NewZipf(n, 1.2)
	rng := env.NewRNG(7)
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		k := z.Sample(rng)
		if k < 0 || k >= n {
			t.Fatalf("sample %d outside [0, %d)", k, n)
		}
		counts[k]++
	}
	uniformShare := float64(samples) / float64(n)
	if float64(counts[0]) < 5*uniformShare {
		t.Errorf("head rank drew %d of %d; skew 1.2 should concentrate far above uniform %f",
			counts[0], samples, uniformShare)
	}
	if counts[0] <= counts[n/2] || counts[n/2] < counts[n-1]/2 {
		t.Errorf("frequencies not decreasing in rank: head=%d mid=%d tail=%d",
			counts[0], counts[n/2], counts[n-1])
	}
	// The empirical head frequency should track CDF(0) closely.
	if got, want := float64(counts[0])/samples, z.CDF(0); math.Abs(got-want) > 0.02 {
		t.Errorf("head frequency = %v, want ~%v", got, want)
	}
	// Skew 0 degenerates to uniform: Jain-style flatness check on the
	// head.
	u := NewZipf(n, 0)
	uc := make([]int, n)
	for i := 0; i < samples; i++ {
		uc[u.Sample(rng)]++
	}
	if float64(uc[0]) > 2*uniformShare {
		t.Errorf("uniform head rank drew %d, want ~%f", uc[0], uniformShare)
	}
}

func TestZipfPanicsOnBadShape(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-3, 1}, {8, -0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}
