package workload

import "fmt"

// Central scenario registry. Every workload family (map, cache, txn,
// queue, log, service) registers its built-in scenarios here, so
// the tools have one place to enumerate them: cmd/wfbench's -list
// prints this registry and an unknown -workload suggests it. Adding a
// scenario to a family's *Scenarios() function is all it takes to
// appear here — the registry is derived, never maintained by hand.

// ScenarioInfo is one registered workload scenario: its flag name, the
// family it belongs to, and a one-line summary of its shape.
type ScenarioInfo struct {
	// Name is the scenario's registry key (the cmd/wfbench -workload
	// flag matches it, e.g. "queue:mpmc").
	Name string
	// Kind names the family: "map", "cache", "txn", "queue", "log" or
	// "service". By convention Kind is also the scenario name's prefix
	// before the colon.
	Kind string
	// Summary is the one-line description -list prints.
	Summary string
}

// Scenarios enumerates every built-in scenario across all families, in
// family order (map, cache, txn, queue, log, service) and declaration
// order within a family.
func Scenarios() []ScenarioInfo {
	var out []ScenarioInfo
	for _, s := range MapScenarios() {
		out = append(out, ScenarioInfo{
			Name: s.Name,
			Kind: "map",
			Summary: fmt.Sprintf("map workload: %d%%/%d%%/%d%% get/put/delete, %d keys, skew %.1f",
				s.GetPct, s.PutPct, s.DeletePct, s.Keys, s.Skew),
		})
	}
	for _, s := range CacheScenarios() {
		out = append(out, ScenarioInfo{
			Name: s.Name,
			Kind: "cache",
			Summary: fmt.Sprintf("cache workload: %d%%/%d%%/%d%% get/put/delete, cap %d/%d keys, skew %.1f",
				s.GetPct, s.PutPct, s.DeletePct, s.Capacity, s.Keys, s.Skew),
		})
	}
	for _, s := range TxnScenarios() {
		out = append(out, ScenarioInfo{
			Name: s.Name,
			Kind: "txn",
			Summary: fmt.Sprintf("txn workload: %d%%/%d%% transfer/read over %d keys, skew %.1f, L swept 1..8",
				s.TransferPct, 100-s.TransferPct, s.Keys, s.Skew),
		})
	}
	for _, s := range QueueScenarios() {
		role := "producers/consumers split evenly"
		if s.PinnedProducers > 0 {
			role = fmt.Sprintf("%d producer(s), %d consumer(s)", s.PinnedProducers, s.PinnedConsumers)
		}
		out = append(out, ScenarioInfo{
			Name: s.Name,
			Kind: "queue",
			Summary: fmt.Sprintf("queue workload: %d stage(s), cap %d per queue, %s",
				s.Stages, s.Capacity, role),
		})
	}
	for _, s := range LogScenarios() {
		shape := "live fan-out"
		if s.Replay {
			shape = "replay of a pre-filled window"
		}
		if s.Laggards > 0 {
			shape = fmt.Sprintf("%d lagging consumer(s)", s.Laggards)
		}
		out = append(out, ScenarioInfo{
			Name: s.Name,
			Kind: "log",
			Summary: fmt.Sprintf("log workload: %d producer(s) broadcast to %d consumer(s), cap %d, segment %d, %s",
				s.Producers, s.Consumers, s.Capacity, s.Segment, shape),
		})
	}
	for _, s := range ServiceScenarios() {
		out = append(out, ScenarioInfo{
			Name: s.Name,
			Kind: "service",
			Summary: fmt.Sprintf("service workload: %.0f ops/s open-loop, %d conns, %d%%/%d%%/%d%% get/set/del, %d keys, skew %.1f, backend %s",
				s.Rate, s.Conns, s.GetPct, s.SetPct, s.DelPct, s.Keys, s.Skew, s.Backend),
		})
	}
	return out
}

// Families lists the registered family names, in registry order,
// without duplicates.
func Families() []string {
	var out []string
	seen := make(map[string]bool)
	for _, in := range Scenarios() {
		if !seen[in.Kind] {
			seen[in.Kind] = true
			out = append(out, in.Kind)
		}
	}
	return out
}

// Lookup finds a registered scenario by exact name, or nil. Tools that
// need the typed scenario use the family's own Lookup*Scenario; this
// one answers "does the name exist, and in which family" — the
// distinction cmd/wfbench's error messages are built on.
func Lookup(name string) *ScenarioInfo {
	for _, in := range Scenarios() {
		if in.Name == name {
			return &in
		}
	}
	return nil
}

// ScenarioNames lists every registered scenario name, in registry
// order.
func ScenarioNames() []string {
	infos := Scenarios()
	names := make([]string, len(infos))
	for i, in := range infos {
		names[i] = in.Name
	}
	return names
}
