package workload

import (
	"fmt"

	"wflocks/internal/env"
)

// Transaction workloads. Where MapScenario describes single-key
// traffic, TxnScenario describes multi-key transactions against the
// wfmap Atomic path: each operation names L distinct keys and either
// transfers value between them (a write transaction touching every
// key) or reads them all atomically. L is the paper's lock-set bound —
// the runner sweeps it — so these scenarios are where the L-dependence
// of the guarantees (success probability 1/(κL), step bound O(κ²L²T))
// becomes measurable from the public API.

// TxnOp is one kind of transaction in a scenario's mix.
type TxnOp int

const (
	// TxnTransfer moves value between the transaction's keys: a
	// read-modify-write of every key, conserving the total sum — the
	// canonical multi-key atomicity check.
	TxnTransfer TxnOp = iota
	// TxnRead reads all the transaction's keys at one instant.
	TxnRead
)

// String names the op kind in tables.
func (k TxnOp) String() string {
	switch k {
	case TxnTransfer:
		return "transfer"
	case TxnRead:
		return "read"
	default:
		return fmt.Sprintf("txnop(%d)", int(k))
	}
}

// TxnScenario is a multi-key transaction workload: an op mix over a
// keyspace with a chosen skew. The keys-per-transaction count L is a
// runner parameter (swept), not part of the scenario.
type TxnScenario struct {
	// Name identifies the scenario (the cmd/wfbench -workload flag
	// matches it, e.g. "txn:transfer").
	Name string
	// Keys is the keyspace size; transactions draw distinct keys in
	// [0, Keys).
	Keys int
	// TransferPct is the percentage of transfer transactions; the rest
	// are atomic multi-key reads.
	TransferPct int
	// Skew selects the key distribution, as in MapScenario: 0 uniform,
	// s > 0 Zipf with exponent s (hot keys concentrate lock conflicts).
	Skew float64
}

// Validate checks the scenario's internal consistency.
func (s *TxnScenario) Validate() error {
	if s.Keys <= 0 {
		return fmt.Errorf("txn scenario %q: keyspace must be positive, got %d", s.Name, s.Keys)
	}
	if s.TransferPct < 0 || s.TransferPct > 100 {
		return fmt.Errorf("txn scenario %q: transfer pct %d outside [0, 100]", s.Name, s.TransferPct)
	}
	if s.Skew < 0 {
		return fmt.Errorf("txn scenario %q: skew must be non-negative, got %v", s.Name, s.Skew)
	}
	return nil
}

// TxnScenarios lists the built-in scenario family.
func TxnScenarios() []TxnScenario {
	return []TxnScenario{
		{Name: "txn:transfer", Keys: 64, TransferPct: 100, Skew: 0},
		{Name: "txn:mixed", Keys: 64, TransferPct: 30, Skew: 1.1},
	}
}

// LookupTxnScenario finds a built-in scenario by name, or nil.
func LookupTxnScenario(name string) *TxnScenario {
	for _, s := range TxnScenarios() {
		if s.Name == name {
			return &s
		}
	}
	return nil
}

// TxnOpStream draws transactions from a scenario with a private RNG:
// each worker goroutine owns one stream with no shared state.
type TxnOpStream struct {
	sc   *TxnScenario
	l    int
	rng  *env.RNG
	zipf *Zipf
	buf  []int
}

// NewTxnOpStream creates a stream over sc drawing l distinct keys per
// transaction, seeded with seed. l must not exceed the keyspace.
func NewTxnOpStream(sc *TxnScenario, l int, seed uint64) *TxnOpStream {
	if l < 1 || l > sc.Keys {
		panic(fmt.Sprintf("workload: NewTxnOpStream: l=%d outside [1, %d]", l, sc.Keys))
	}
	st := &TxnOpStream{sc: sc, l: l, rng: env.NewRNG(seed), buf: make([]int, 0, l)}
	if sc.Skew > 0 {
		st.zipf = NewZipf(sc.Keys, sc.Skew)
	}
	return st
}

// Next draws one transaction: its kind from the scenario's mix and l
// distinct keys from the scenario's distribution (hot keys are drawn
// first and duplicates resampled, so skew concentrates conflicts
// without shrinking the key set). The returned slice is reused by the
// next call.
func (st *TxnOpStream) Next() (TxnOp, []int) {
	kind := TxnRead
	if st.rng.IntN(100) < st.sc.TransferPct {
		kind = TxnTransfer
	}
	st.buf = st.buf[:0]
	for len(st.buf) < st.l {
		var k int
		if st.zipf != nil {
			k = st.zipf.Sample(st.rng)
		} else {
			k = st.rng.IntN(st.sc.Keys)
		}
		dup := false
		for _, have := range st.buf {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			st.buf = append(st.buf, k)
		}
	}
	return kind, st.buf
}
