package workload

import "testing"

func TestTxnScenariosValid(t *testing.T) {
	for _, sc := range TxnScenarios() {
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in scenario %s invalid: %v", sc.Name, err)
		}
		if LookupTxnScenario(sc.Name) == nil {
			t.Errorf("lookup of %s failed", sc.Name)
		}
	}
	if LookupTxnScenario("txn:nope") != nil {
		t.Error("lookup of unknown scenario succeeded")
	}
	bad := TxnScenario{Name: "bad", Keys: 0, TransferPct: 50}
	if bad.Validate() == nil {
		t.Error("zero keyspace validated")
	}
	bad = TxnScenario{Name: "bad", Keys: 10, TransferPct: 101}
	if bad.Validate() == nil {
		t.Error("pct > 100 validated")
	}
}

// TestTxnOpStreamDistinctKeys pins the key-draw contract: exactly l
// keys, all distinct, all in range, deterministic per seed, and the op
// mix tracks TransferPct.
func TestTxnOpStreamDistinctKeys(t *testing.T) {
	sc := &TxnScenario{Name: "t", Keys: 16, TransferPct: 30, Skew: 1.1}
	for _, l := range []int{1, 2, 4, 8} {
		st := NewTxnOpStream(sc, l, 7)
		transfers := 0
		const draws = 500
		for i := 0; i < draws; i++ {
			kind, keys := st.Next()
			if kind == TxnTransfer {
				transfers++
			}
			if len(keys) != l {
				t.Fatalf("l=%d: drew %d keys", l, len(keys))
			}
			seen := map[int]bool{}
			for _, k := range keys {
				if k < 0 || k >= sc.Keys {
					t.Fatalf("l=%d: key %d out of range", l, k)
				}
				if seen[k] {
					t.Fatalf("l=%d: duplicate key %d in one transaction", l, k)
				}
				seen[k] = true
			}
		}
		if transfers == 0 || transfers == draws {
			t.Fatalf("l=%d: transfer mix degenerate: %d/%d", l, transfers, draws)
		}
	}
	// Same seed, same stream.
	a := NewTxnOpStream(sc, 3, 99)
	b := NewTxnOpStream(sc, 3, 99)
	for i := 0; i < 50; i++ {
		ka, keysA := a.Next()
		kb, keysB := b.Next()
		if ka != kb {
			t.Fatal("streams with one seed diverged in kind")
		}
		for j := range keysA {
			if keysA[j] != keysB[j] {
				t.Fatal("streams with one seed diverged in keys")
			}
		}
	}
	// l beyond the keyspace is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("l > keyspace did not panic")
		}
	}()
	NewTxnOpStream(sc, 17, 1)
}
