package env

import (
	"testing"
	"testing/quick"
)

func TestNativeStepCounting(t *testing.T) {
	e := NewNative(3, 42)
	if e.Steps() != 0 {
		t.Fatalf("fresh env has %d steps, want 0", e.Steps())
	}
	for i := 0; i < 100; i++ {
		e.Step()
	}
	if e.Steps() != 100 {
		t.Fatalf("got %d steps, want 100", e.Steps())
	}
	if e.Pid() != 3 {
		t.Fatalf("Pid = %d, want 3", e.Pid())
	}
}

func TestStallUntil(t *testing.T) {
	e := NewNative(0, 1)
	StallSteps(e, 10)
	StallUntil(e, 25)
	if e.Steps() != 25 {
		t.Fatalf("got %d steps, want 25", e.Steps())
	}
	// Target already reached: no extra steps.
	StallUntil(e, 5)
	if e.Steps() != 25 {
		t.Fatalf("got %d steps after no-op stall, want 25", e.Steps())
	}
}

func TestStallStepsExact(t *testing.T) {
	e := NewNative(0, 1)
	StallSteps(e, 0)
	if e.Steps() != 0 {
		t.Fatalf("StallSteps(0) took %d steps", e.Steps())
	}
	StallSteps(e, 7)
	if e.Steps() != 7 {
		t.Fatalf("got %d steps, want 7", e.Steps())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(12345)
	b := NewRNG(12345)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGIntNRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.IntN(13)
		if v < 0 || v >= 13 {
			t.Fatalf("IntN(13) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGIntNRoughlyUniform(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.IntN(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("bucket %d has %d draws, want about %d", i, c, want)
		}
	}
}

func TestRandPriorityPositive(t *testing.T) {
	e := NewNative(0, 7)
	for i := 0; i < 1000; i++ {
		if p := RandPriority(e); p <= 0 {
			t.Fatalf("RandPriority returned non-positive %d", p)
		}
	}
}

func TestRandIntNRange(t *testing.T) {
	e := NewNative(0, 7)
	for i := 0; i < 1000; i++ {
		if v := RandIntN(e, 5); v < 0 || v >= 5 {
			t.Fatalf("RandIntN(5) = %d", v)
		}
	}
}

func TestMixProperty(t *testing.T) {
	// Mix should separate nearby inputs: quick-check that distinct
	// (a, b) pairs essentially never collide and never return the
	// identity of either argument for interesting inputs.
	f := func(a, b uint64) bool {
		m := Mix(a, b)
		return m == Mix(a, b) // deterministic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix is symmetric for (1,2); want order sensitivity")
	}
}

func TestRandInt63NonNegative(t *testing.T) {
	e := NewNative(0, 3)
	for i := 0; i < 1000; i++ {
		if v := RandInt63(e); v < 0 {
			t.Fatalf("RandInt63 returned negative %d", v)
		}
	}
}
