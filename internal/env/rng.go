package env

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Each simulated or native process owns one, seeded from
// the run seed and the process id, so executions replay bit-for-bit.
//
// The zero value is a valid generator (seed 0).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Next returns the next 64-bit pseudo-random value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// IntN returns a uniform value in [0, n). n must be positive.
func (r *RNG) IntN(n int) int {
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Mix derives a new seed from two values. Used to give each process an
// independent stream from (runSeed, pid).
func Mix(a, b uint64) uint64 {
	z := a ^ (b * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
