package env

// Native is the hardware execution environment: steps are counted in a
// plain per-process counter while the process runs as an ordinary
// goroutine using sync/atomic for shared memory. Used by the examples
// and the native throughput experiments (E10).
//
// A Native value must be used by a single goroutine.
type Native struct {
	id      int
	steps   uint64
	rng     RNG
	scratch [NumScratch]any
}

var (
	_ Env       = (*Native)(nil)
	_ Scratcher = (*Native)(nil)
)

// NewNative returns a native environment for process id with the given
// random seed.
func NewNative(id int, seed uint64) *Native {
	return &Native{id: id, rng: RNG{state: Mix(seed, uint64(id)+1)}}
}

// Step accounts one step.
func (n *Native) Step() { n.steps++ }

// Steps reports the number of steps taken.
func (n *Native) Steps() uint64 { return n.steps }

// Rand returns the next per-process pseudo-random value.
func (n *Native) Rand() uint64 { return n.rng.Next() }

// Pid returns the process id.
func (n *Native) Pid() int { return n.id }

// Scratch returns the process-private scratch slot for key. Native
// environments carry scratch state so the algorithm packages can
// amortize hot-path allocations into process-private bump arenas.
func (n *Native) Scratch(key ScratchKey) *any { return &n.scratch[key] }
