package env

// ScratchKey identifies a per-process scratch slot. Each internal
// package that amortizes allocations (internal/idem, internal/core,
// internal/activeset, internal/multiset) owns one key and stores its
// typed allocation state there.
type ScratchKey int

const (
	// ScratchIdem holds *idem arenas (boxes, descriptors, responses).
	ScratchIdem ScratchKey = iota
	// ScratchCore holds core's attempt arenas (descriptors, lock sets).
	ScratchCore
	// ScratchActiveSet holds active-set snapshot arenas.
	ScratchActiveSet
	// ScratchMultiSet holds multiset scratch buffers.
	ScratchMultiSet
	// ScratchTx holds the public API layer's transaction-handle arena.
	ScratchTx
	// NumScratch is the number of scratch slots.
	NumScratch
)

// Scratcher is an optional extension of Env: an environment that
// carries per-process scratch state, letting algorithm packages
// amortize their hot-path allocations with process-private bump
// arenas. An environment that does not implement Scratcher (the
// deterministic simulator) simply causes callers to fall back to plain
// heap allocation, which is always correct.
//
// The returned pointer is private to the owning process: it must only
// be read or written by the goroutine driving this Env. Scratch state
// never changes step accounting — a bump allocation and a heap
// allocation both cost zero Env steps — so simulated schedules are
// unaffected by its presence or absence.
type Scratcher interface {
	Scratch(key ScratchKey) *any
}

// ScratchOf returns the scratch slot for key if e supports scratch
// state, else nil.
func ScratchOf(e Env, key ScratchKey) *any {
	if s, ok := e.(Scratcher); ok {
		return s.Scratch(key)
	}
	return nil
}
