// Package env defines the execution environment that all algorithm code
// in this repository runs against.
//
// The paper's model (Section 4) measures cost in per-process steps: a
// step is a shared-memory operation, a local operation, or a stall.
// Every algorithm in this repository is written once against the Env
// interface and can run either on the deterministic step-token
// simulator (internal/sched), which realizes the paper's oblivious
// scheduler adversary exactly, or natively on goroutines for
// wall-clock benchmarks.
package env

// Env is the per-process execution environment.
//
// Algorithm code must call Step before every shared-memory operation
// and for every explicit stall step. In the simulator, Step blocks
// until the oblivious scheduler grants the process its next step, which
// serializes all shared-memory operations into the schedule order. In
// the native environment, Step merely counts.
type Env interface {
	// Step accounts one step of the owning process. In simulation it
	// also yields until the scheduler grants the next step.
	Step()

	// Steps reports the number of steps this process has taken so far.
	Steps() uint64

	// Rand returns a fresh uniform 64-bit random value drawn from the
	// process's private generator. Randomness is per-process and
	// deterministic given the seed, so simulated runs replay exactly.
	Rand() uint64

	// Pid returns the process identifier (dense, starting at 0).
	Pid() int
}

// StallUntil consumes steps until the process has taken at least target
// steps in total. It implements the paper's fixed delays ("Delay until
// T0 = c·κ²·L²·T total steps taken"): the process stalls by burning its
// own steps, so its reveal point is a fixed function of its start step.
func StallUntil(e Env, target uint64) {
	for e.Steps() < target {
		e.Step()
	}
}

// StallSteps consumes exactly n steps.
func StallSteps(e Env, n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Step()
	}
}

// RandInt63 returns a uniformly random positive int64 (63 bits, never
// zero is NOT guaranteed; callers needing strictly positive values
// should use RandPriority).
func RandInt63(e Env) int64 {
	return int64(e.Rand() >> 1)
}

// RandPriority returns a strictly positive random priority. Priorities
// double as the multi-active-set flag in Algorithm 3 (priority > 0 means
// the flag is set), so zero and negative values are reserved.
func RandPriority(e Env) int64 {
	for {
		if v := int64(e.Rand() >> 1); v > 0 {
			return v
		}
	}
}

// RandIntN returns a uniform value in [0, n). n must be positive.
func RandIntN(e Env, n int) int {
	// Modulo bias is negligible for n << 2^64 and irrelevant to the
	// experiments (used only for workload generation).
	return int(e.Rand() % uint64(n))
}
