package core

import (
	"fmt"

	"wflocks/internal/env"
	"wflocks/internal/multiset"
)

// run is the core of the lock algorithm (Algorithm 3, run(p)): it
// drives descriptor p to a decision. It is called by p's owner to
// compete, and by other processes to help p finish (which is what makes
// the locks wait-free: nobody ever waits for p's owner to be
// scheduled).
//
// For every lock in p's lock set, run scans the competing descriptors.
// While p is still active, every active pair (p, q) is resolved by
// priority: the lower-priority descriptor is eliminated. Every
// descriptor encountered with a won status has its thunk executed
// (celebrateIfWon) before run moves on — so by the time p itself is
// decided and celebrated, the thunks of all earlier winners on its
// locks have completed, which yields mutual exclusion with idempotence
// (Definition 4.3; see the safety discussion in Section 6.1).
func (s *System) run(e env.Env, p *Descriptor) {
	for _, l := range p.locks {
		// Live flagged membership (Algorithm 3 line 28). The flag is
		// "priority revealed", so descriptors between their
		// participation reveal and priority reveal (unknown-bounds
		// mode) are not scanned: they have no priority to compare yet
		// and will be scanned once revealed. Scanning live sets in both
		// modes is what makes the Section 6.1 safety argument apply
		// verbatim to the unknown-bounds variant; see DESIGN.md §7 for
		// why this reconstruction deviates from Section 6.2's
		// local-copy comparisons.
		set := multiset.GetSet[Descriptor, *Descriptor](e, l.set)
		e.Step()
		if p.status.Load() == StatusActive {
			for _, q := range set {
				e.Step()
				if q.status.Load() == StatusActive {
					e.Step()
					pp := p.priority.Load()
					e.Step()
					qp := q.priority.Load()
					// Compare only revealed priorities: a pending or
					// TBD priority means the descriptor either is no
					// longer flagged (already decided — the status
					// check above races with its cleanup) or has not
					// drawn a priority yet.
					if pp > 0 && qp > 0 {
						if pp > qp {
							s.eliminate(e, q)
						} else if p != q {
							s.eliminate(e, p)
						}
					}
				}
				s.celebrateIfWon(e, q)
			}
		}
	}
	s.decide(e, p)
	s.celebrateIfWon(e, p)
}

// decide tries to finalize p as the winner (Algorithm 3 line 40). It
// succeeds exactly when nobody eliminated p first.
func (s *System) decide(e env.Env, p *Descriptor) {
	e.Step()
	p.status.CompareAndSwap(StatusActive, StatusWon)
}

// eliminate moves p from active to lost (Algorithm 3 line 43). A
// descriptor that already won cannot be eliminated: status changes at
// most once.
func (s *System) eliminate(e env.Env, p *Descriptor) {
	e.Step()
	p.status.CompareAndSwap(StatusActive, StatusLost)
}

// celebrateIfWon executes p's thunk if p won (Algorithm 3 line 46).
// The thunk is idempotent, so concurrent celebrations by several
// helpers behave as a single run.
func (s *System) celebrateIfWon(e env.Env, p *Descriptor) {
	e.Step()
	if p.status.Load() == StatusWon {
		p.thunk.Execute(e)
	}
}

// checkSlots verifies that every active-set insertion found a free
// slot. A full announcement array means the workload violated the
// configured contention bound — a configuration error worth failing
// loudly on rather than corrupting the protocol.
func checkSlots(s *System, slots []int) {
	for _, slot := range slots {
		if slot < 0 {
			panic(fmt.Sprintf(
				"core: active set full — point contention exceeded the configured bound (κ=%d, unknown=%v)",
				s.cfg.Kappa, s.cfg.UnknownBounds))
		}
	}
}
