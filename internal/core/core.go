// Package core implements the paper's primary contribution: the
// randomized wait-free lock algorithm of Section 6 (Algorithm 3), in
// both the known-bounds variant (Theorems 6.1 and 6.9) and the
// unknown-bounds variant of Section 6.2 (Theorem 6.10).
//
// Each lock is an active set object (Algorithm 1); the system of locks
// forms a multi active set (Algorithm 2). A tryLock attempt creates a
// descriptor carrying its lock set, its critical-section thunk (made
// idempotent by internal/idem), a priority, and a status. The attempt:
//
//  1. helps every revealed descriptor currently on any of its locks run
//     to a decision, so that no descriptor whose priority the player
//     adversary has already seen can compete with this attempt;
//  2. stalls until exactly T0 = c·κ²·L²·T of its own steps have passed
//     since the attempt began, then inserts itself into its locks'
//     active sets and reveals a uniformly random priority (the reveal
//     step) — the fixed delay makes the reveal time a function of the
//     start time alone, so the adversary gains nothing by racing it;
//  3. competes: scans its locks' sets, eliminating the lower-priority
//     descriptor of every active pair, then tries to move itself from
//     active to won; any encountered winner's thunk is executed to
//     completion before this attempt's own, which yields mutual
//     exclusion with idempotence (Definition 4.3);
//  4. removes itself and stalls until T1 = c′·κ·L·T further steps have
//     passed, fixing the attempt's total length.
//
// The attempt succeeds (and its thunk has run) if and only if its
// status ended as won; it succeeds with probability at least 1/C_p
// against an adaptive player adversary and an oblivious scheduler.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"wflocks/internal/activeset"
	"wflocks/internal/arena"
	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/multiset"
	"wflocks/internal/obs"
)

// padCounter is an atomic counter padded out to its own cache line so
// that heavily written counters do not false-share with their
// neighbors or with the read-mostly fields around them.
type padCounter struct {
	atomic.Uint64
	_ [56]byte
}

// scratch is the per-process allocation state for attempt records.
// Descriptors (and the lock-set slices they publish) are read by
// helpers at unbounded staleness, so they are never recycled; the
// bump arenas hand each pointer out once and abandon full chunks
// (internal/arena), amortizing descriptor allocation to near zero.
type scratch struct {
	descs   arena.Arena[Descriptor]
	locks   arena.Slices[*Lock]
	sets    arena.Slices[*activeset.Set[Descriptor]]
	members arena.Slices[*Descriptor]
	locals  arena.Slices[[]*Descriptor]
	slots   arena.Slices[int]
}

// scratchOf returns e's core scratch, or nil when e carries none (the
// deterministic simulator); callers fall back to plain allocation.
func scratchOf(e env.Env) *scratch {
	p := env.ScratchOf(e, env.ScratchCore)
	if p == nil {
		return nil
	}
	s, ok := (*p).(*scratch)
	if !ok {
		s = &scratch{}
		*p = s
	}
	return s
}

// Status of a descriptor. A descriptor starts active and changes
// status at most once, to won or lost (Algorithm 3).
const (
	StatusActive int32 = iota + 1
	StatusWon
	StatusLost
)

// StatusName renders a status value for diagnostics.
func StatusName(s int32) string {
	switch s {
	case StatusActive:
		return "active"
	case StatusWon:
		return "won"
	case StatusLost:
		return "lost"
	default:
		return fmt.Sprintf("status(%d)", s)
	}
}

// Priority sentinels. A pending descriptor has priority -1 (its multi
// active set flag is false). In the unknown-bounds variant, priorityTBD
// marks the participation-reveal step of Section 6.2: the descriptor is
// competing but its priority is not yet drawn.
const (
	priorityPending int64 = -1
	priorityTBD     int64 = 0
)

// Config parameterizes a lock System.
type Config struct {
	// Kappa is κ, the upper bound on the point contention of any single
	// lock. Required in known-bounds mode; in unknown-bounds mode it is
	// ignored by the algorithm (but may be used by workloads).
	Kappa int

	// MaxLocks is L, the upper bound on the number of locks in any
	// tryLock attempt's lock set.
	MaxLocks int

	// MaxThunkSteps is T, the upper bound on the number of steps of any
	// critical-section thunk.
	MaxThunkSteps int

	// NumProcs is P, the total number of processes. Unknown-bounds mode
	// sizes announcement arrays with P instead of κ.
	NumProcs int

	// DelayC and DelayC1 are the paper's "sufficiently large" constants
	// c and c′ in T0 = c·κ²·L²·T and T1 = c′·κ·L·T. Zero selects the
	// defaults.
	DelayC  int
	DelayC1 int

	// DisableDelays turns off the fixed delays. Unsafe for fairness —
	// provided only for the E9 ablation experiment.
	DisableDelays bool

	// FastPath enables the uncontended fast path: attempts that observe
	// every lock in their set free skip all delay stalls (see TryLocks).
	// Off by default so the core experiments and the simulator retain
	// the paper-exact timing-oblivious behavior — attempt lengths must
	// not depend on observed contention under the adversary model. The
	// public Manager enables it.
	FastPath bool

	// UnknownBounds selects the Section 6.2 variant: announcement
	// arrays sized P, split participation/priority reveal, local set
	// copies for comparisons, and delay-to-power-of-two instead of
	// fixed delays.
	UnknownBounds bool

	// Obs, when non-nil, attaches the observability recorder: delay
	// and help-run histograms are recorded on every attempt, and — if
	// the recorder carries a flight-recorder ring — sampled attempts
	// emit lifecycle events. Nil (the default, and always the case for
	// the simulator and the paper experiments) keeps the hot path to a
	// single branch per hook site. Recording never consumes Env steps,
	// so simulated schedules and the paper's step bounds are unchanged
	// by its presence.
	Obs *obs.Recorder
}

// Default delay constants. They are calibrated so that the help phase
// and competition phase of an attempt always finish within the delay
// targets for the workloads in this repository (verified by test and
// tracked by the DelayOverruns counter).
const (
	defaultDelayC  = 8
	defaultDelayC1 = 16
)

// System is a family of locks sharing one configuration. Locks from
// different Systems must not be mixed in one tryLock.
type System struct {
	cfg Config

	// Counters for experiments and tests (atomic), each padded to its
	// own cache line: attempts and wins are bumped by every process on
	// every lock operation, and sharing a line would put the hottest
	// write traffic of the whole system on one contended line.
	_             [64]byte
	attempts      padCounter
	wins          padCounter
	delayOverruns padCounter
	fastPath      padCounter
}

// NewSystem validates cfg and creates a System.
func NewSystem(cfg Config) (*System, error) {
	if cfg.MaxLocks <= 0 {
		return nil, errors.New("core: MaxLocks must be positive")
	}
	if cfg.MaxThunkSteps <= 0 {
		return nil, errors.New("core: MaxThunkSteps must be positive")
	}
	if cfg.UnknownBounds {
		if cfg.NumProcs <= 0 {
			return nil, errors.New("core: NumProcs must be positive in unknown-bounds mode")
		}
	} else if cfg.Kappa <= 0 {
		return nil, errors.New("core: Kappa must be positive in known-bounds mode")
	}
	if cfg.DelayC == 0 {
		cfg.DelayC = defaultDelayC
	}
	if cfg.DelayC1 == 0 {
		cfg.DelayC1 = defaultDelayC1
	}
	if cfg.DelayC < 0 || cfg.DelayC1 < 0 {
		return nil, errors.New("core: delay constants must be non-negative")
	}
	return &System{cfg: cfg}, nil
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// t0 is the fixed pre-reveal delay T0 = c·κ²·L²·T.
func (s *System) t0() uint64 {
	k, l, t := uint64(s.cfg.Kappa), uint64(s.cfg.MaxLocks), uint64(s.cfg.MaxThunkSteps)
	return uint64(s.cfg.DelayC) * k * k * l * l * t
}

// t1 is the fixed post-run delay T1 = c′·κ·L·T.
func (s *System) t1() uint64 {
	k, l, t := uint64(s.cfg.Kappa), uint64(s.cfg.MaxLocks), uint64(s.cfg.MaxThunkSteps)
	return uint64(s.cfg.DelayC1) * k * l * t
}

// Attempts reports the number of TryLocks calls so far.
func (s *System) Attempts() uint64 { return s.attempts.Load() }

// Wins reports the number of successful TryLocks calls so far.
func (s *System) Wins() uint64 { return s.wins.Load() }

// DelayOverruns reports how many times an attempt reached a delay point
// having already exceeded the delay target — i.e. how often the
// configured delay constants were too small to enforce Observation 6.7.
// Experiments assert this stays zero.
func (s *System) DelayOverruns() uint64 { return s.delayOverruns.Load() }

// FastPathAttempts reports how many TryLocks attempts took the
// uncontended fast path: every lock in the attempt's set was observed
// free at the start, so the attempt ran the full protocol (helping,
// announcement, idempotent execution — safety is untouched) but
// skipped all delay stalls. See the fast-path discussion on TryLocks.
func (s *System) FastPathAttempts() uint64 { return s.fastPath.Load() }

// Lock is a single fine-grained lock: an active set of descriptors.
type Lock struct {
	sys *System
	set *activeset.Set[Descriptor]
	id  int

	// Per-lock observability counters (atomic), cache-line padded: the
	// read-mostly header above (sys/set/id, loaded on every attempt)
	// must not share a line with counters every competing process
	// writes, and the counters must not share lines with each other.
	_        [64]byte
	attempts padCounter
	wins     padCounter
	helps    padCounter
}

var lockCounter atomic.Int64

// NewLock creates a lock belonging to this system. The announcement
// array has κ slots in known-bounds mode and P slots in unknown-bounds
// mode (Section 6.2).
func (s *System) NewLock() *Lock {
	capacity := s.cfg.Kappa
	if s.cfg.UnknownBounds {
		capacity = s.cfg.NumProcs
	}
	return &Lock{
		sys: s,
		set: activeset.New[Descriptor](capacity),
		id:  int(lockCounter.Add(1)),
	}
}

// ID returns a process-wide unique identifier for the lock (useful for
// deterministic ordering in baselines and diagnostics).
func (l *Lock) ID() int { return l.id }

// Counters reports the lock's observability counters: attempts whose
// lock set includes this lock, wins among those attempts, and helps
// performed on this lock's descriptors by other attempts.
func (l *Lock) Counters() (attempts, wins, helps uint64) {
	return l.attempts.Load(), l.wins.Load(), l.helps.Load()
}

// Descriptor is a tryLock attempt's shared record (Algorithm 3): the
// lock set, the thunk, the priority (doubling as the multi-active-set
// flag) and the status.
type Descriptor struct {
	sys      *System
	locks    []*Lock
	thunk    *idem.Exec
	priority atomic.Int64
	status   atomic.Int32

	// startStep is the owner's step count when the attempt began; the
	// fixed delays are measured against it (owner-only).
	startStep uint64
	// revealStep is the owner's step count at the reveal step.
	revealStep uint64

	// localSets holds per-lock set copies taken between the
	// participation reveal and the priority reveal (unknown-bounds
	// mode, Section 6.2). Written by the owner before the priority
	// reveal; the atomic priority store publishes it.
	localSets [][]*Descriptor

	// noDelay marks an attempt on the uncontended fast path: every
	// lock in the set was observed free at the start, so all delay
	// stalls are skipped. Owner-only — written before announcement,
	// read only by the owner's own delay points.
	noDelay bool

	// traced marks an attempt sampled into the flight recorder; like
	// noDelay it is owner-only (helpers never read it). delayIters
	// accumulates the delay-schedule steps charged to this attempt
	// across its delay points, recorded once at attempt end.
	traced     bool
	delayIters uint64
}

// Status returns the descriptor's current status.
func (p *Descriptor) Status() int32 { return p.status.Load() }

// Priority returns the descriptor's current priority value.
func (p *Descriptor) Priority() int64 { return p.priority.Load() }

// Flagged implementation: the priority field doubles as the flag
// (Algorithm 3 lines 7-13). GetFlag is true once the priority is
// revealed; SetFlag performs the T0 delay and the reveal step; and
// ClearFlag resets the priority to pending.

// GetFlag reports whether the descriptor's priority is revealed.
func (p *Descriptor) GetFlag(e env.Env) bool {
	e.Step()
	return p.priority.Load() > 0
}

// SetFlag delays until T0 total steps have been taken since the attempt
// started, then draws and reveals the priority (the reveal step). Only
// the owner calls SetFlag (tryLocks is never helped; only run is).
func (p *Descriptor) SetFlag(e env.Env) {
	if !p.sys.cfg.DisableDelays && !p.noDelay {
		target := p.startStep + p.sys.t0()
		if e.Steps() > target {
			p.sys.delayOverruns.Add(1)
		}
		p.stallTo(e, target)
	}
	pr := env.RandPriority(e)
	e.Step()
	p.priority.Store(pr) // reveal step
	p.revealStep = e.Steps()
}

// stallTo is env.StallUntil with delay accounting: when a recorder is
// attached, the steps about to be burned are charged to the attempt
// (owner-only field) and, on sampled attempts, emitted as an EvDelay
// event carrying the computed bound. Only the owner reaches delay
// points, so the accounting needs no synchronization.
func (p *Descriptor) stallTo(e env.Env, target uint64) {
	if rec := p.sys.cfg.Obs; rec != nil {
		if now := e.Steps(); target > now {
			iters := target - now
			p.delayIters += iters
			rec.RecDelay(p.locks[0].id, iters)
			if p.traced {
				rec.TraceEvent(obs.EvDelay, e.Pid(), p.locks[0].id, iters)
			}
		}
	}
	env.StallUntil(e, target)
}

// endAttempt closes the attempt's observability window: total steps and
// charged delay steps land in the histograms, and sampled attempts emit
// their decision event.
func (s *System) endAttempt(e env.Env, p *Descriptor, won bool) {
	rec := s.cfg.Obs
	if rec == nil {
		return
	}
	rec.EndAttempt(e.Pid(), p.locks[0].id, e.Steps()-p.startStep, p.delayIters)
	if p.traced {
		kind := obs.EvLose
		if won {
			kind = obs.EvWin
		}
		rec.TraceEvent(kind, e.Pid(), p.locks[0].id, 0)
	}
}

// helpOne runs descriptor q to a decision on l's behalf, timing the run
// when a recorder is attached. active reports whether q was still
// undecided (the condition under which the help counters were bumped —
// only those runs are real helps worth timing).
func (s *System) helpOne(e env.Env, p *Descriptor, l *Lock, q *Descriptor, active bool) {
	rec := s.cfg.Obs
	if rec == nil || !active {
		s.run(e, q)
		return
	}
	start := time.Now()
	s.run(e, q)
	ns := uint64(time.Since(start))
	rec.RecHelp(e.Pid(), l.id, ns)
	if p.traced {
		rec.TraceEvent(obs.EvHelp, e.Pid(), l.id, ns)
	}
}

// ClearFlag resets the priority to pending.
func (p *Descriptor) ClearFlag(e env.Env) {
	e.Step()
	p.priority.Store(priorityPending)
}

var _ multiset.Flagged = (*Descriptor)(nil)

// TryLocks performs one tryLock attempt (Algorithm 3, tryLocks): it
// tries to acquire every lock in locks and, on success, the thunk has
// been executed (possibly by a helper) before TryLocks returns true.
// On failure the thunk has not run and will never run.
//
// The thunk must be a fresh idem.Exec per attempt and must perform at
// most MaxThunkSteps simulated steps. locks must contain at most
// MaxLocks locks, all created by this System, with no duplicates.
//
// Uncontended fast path: when every lock's announcement array is
// observed empty at the start of the attempt, the attempt skips all
// delay stalls (the T0/T1 fixed delays, or the power-of-two padding in
// unknown-bounds mode) and runs only the protocol itself. Safety is
// unaffected — the attempt still announces itself, competes by
// priority, and executes the thunk idempotently, so mutual exclusion
// and wait-freedom hold exactly as before (delays only ever burn the
// owner's private steps; cf. the DisableDelays ablation). What the
// skip gives up is the fairness bound in the window where two attempts
// race from an observed-free state: both take the fast path and the
// race is settled by their random priorities, which is symmetric-fair
// but outside the paper's adversarial guarantee. Attempts that observe
// any competitor keep the full delay schedule.
func (s *System) TryLocks(e env.Env, locks []*Lock, thunk *idem.Exec) bool {
	if len(locks) == 0 || len(locks) > s.cfg.MaxLocks {
		panic(fmt.Sprintf("core: lock set size %d outside [1, %d]", len(locks), s.cfg.MaxLocks))
	}
	var p *Descriptor
	if sc := scratchOf(e); sc != nil {
		p = sc.descs.New()
		inner := sc.locks.Make(len(locks))
		copy(inner, locks)
		p.sys, p.locks, p.thunk = s, inner, thunk
	} else {
		p = &Descriptor{sys: s, locks: append([]*Lock(nil), locks...), thunk: thunk}
	}
	p.priority.Store(priorityPending)
	p.status.Store(StatusActive)
	s.attempts.Add(1)
	p.startStep = e.Steps()
	if rec := s.cfg.Obs; rec != nil {
		if p.traced = rec.SampleAttempt(); p.traced {
			rec.TraceEvent(obs.EvStart, e.Pid(), p.locks[0].id, uint64(len(p.locks)))
		}
	}
	if s.cfg.UnknownBounds {
		return s.tryLocksUnknown(e, p)
	}
	return s.tryLocksKnown(e, p)
}

// Attempt is a prepared tryLock attempt whose descriptor can be
// observed while it runs. The adversary experiments use this to model
// the adaptive player adversary, which sees the whole history —
// including other attempts' revealed priorities — when deciding when to
// start an attempt.
type Attempt struct {
	s   *System
	p   *Descriptor
	ran bool
}

// NewAttempt prepares (but does not start) a tryLock attempt.
func (s *System) NewAttempt(locks []*Lock, thunk *idem.Exec) *Attempt {
	if len(locks) == 0 || len(locks) > s.cfg.MaxLocks {
		panic(fmt.Sprintf("core: lock set size %d outside [1, %d]", len(locks), s.cfg.MaxLocks))
	}
	p := &Descriptor{
		sys:   s,
		locks: append([]*Lock(nil), locks...), // copy at the boundary
		thunk: thunk,
	}
	p.priority.Store(priorityPending)
	p.status.Store(StatusActive)
	return &Attempt{s: s, p: p}
}

// Descriptor exposes the attempt's descriptor for observation.
func (a *Attempt) Descriptor() *Descriptor { return a.p }

// Run executes the attempt on the calling process. It must be called
// exactly once.
func (a *Attempt) Run(e env.Env) bool {
	if a.ran {
		panic("core: Attempt.Run called twice")
	}
	a.ran = true
	a.s.attempts.Add(1)
	a.p.startStep = e.Steps()
	if a.s.cfg.UnknownBounds {
		return a.s.tryLocksUnknown(e, a.p)
	}
	return a.s.tryLocksKnown(e, a.p)
}

// tryLocksKnown is the Algorithm 3 body for the known-bounds variant.
func (s *System) tryLocksKnown(e env.Env, p *Descriptor) bool {
	for _, l := range p.locks {
		l.attempts.Add(1)
	}
	s.observeFree(e, p)

	// Helping phase (lines 17-20): run every revealed descriptor on any
	// of our locks to its decision, clearing the playing field of
	// descriptors whose priorities the adversary may already know. Only
	// still-undecided descriptors count as helps: re-running an
	// already-decided one is a no-op, and decided descriptors linger in
	// the set until their owner removes them.
	for _, l := range p.locks {
		for _, q := range multiset.GetSet[Descriptor, *Descriptor](e, l.set) {
			active := q.Status() == StatusActive
			if active {
				l.helps.Add(1)
			}
			s.helpOne(e, p, l, q, active)
		}
	}

	// Insert into every lock's active set; SetFlag inside performs the
	// T0 delay and the reveal step (line 21) — skipped on the fast path.
	sets := s.lockSets(e, p)
	slots := multiset.MultiInsert(e, p, sets)
	checkSlots(s, slots)

	// Compete (line 22).
	s.run(e, p)

	// Clean up (line 23).
	multiset.MultiRemove(e, p, sets, slots)

	// Fixed post-run delay (line 24): T1 steps since the reveal step.
	if !s.cfg.DisableDelays && !p.noDelay {
		target := p.revealStep + s.t1()
		if e.Steps() > target {
			s.delayOverruns.Add(1)
		}
		p.stallTo(e, target)
	}

	won := p.status.Load() == StatusWon
	if won {
		s.wins.Add(1)
		for _, l := range p.locks {
			l.wins.Add(1)
		}
	}
	s.endAttempt(e, p, won)
	return won
}

// observeFree takes the fast-path observation: if every lock's
// announcement array is empty, the attempt skips all delay stalls (see
// TryLocks). The observation is one GetSet per lock, so it costs L
// steps and preserves the attempt's O(·) step bounds.
func (s *System) observeFree(e env.Env, p *Descriptor) {
	if !s.cfg.FastPath {
		return
	}
	for _, l := range p.locks {
		if len(l.set.GetSet(e)) != 0 {
			return
		}
	}
	p.noDelay = true
	s.fastPath.Add(1)
	if p.traced {
		s.cfg.Obs.TraceEvent(obs.EvFastPath, e.Pid(), p.locks[0].id, 0)
	}
}

// lockSets projects the descriptor's locks to their active sets.
func (s *System) lockSets(e env.Env, p *Descriptor) []*activeset.Set[Descriptor] {
	var sets []*activeset.Set[Descriptor]
	if sc := scratchOf(e); sc != nil {
		sets = sc.sets.Make(len(p.locks))
	} else {
		sets = make([]*activeset.Set[Descriptor], len(p.locks))
	}
	for i, l := range p.locks {
		sets[i] = l.set
	}
	return sets
}
