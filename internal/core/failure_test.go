package core

import (
	"errors"
	"testing"

	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/sched"
)

// noopExec returns a fresh empty critical section.
func noopExec() *idem.Exec { return idem.NewExec(func(r *idem.Run) {}, 1) }

// TestPhaseSweepStalls freezes one process forever at a sweep of stall
// points — hitting every phase of an attempt: helping, insertion,
// pre-reveal delay, competition, cleanup, post-delay — and checks that
// (a) the other processes always finish (wait-freedom), (b) mutual
// exclusion with idempotence holds, and (c) any win the stalled
// process's descriptor achieved still has its thunk executed exactly
// once (helping).
func TestPhaseSweepStalls(t *testing.T) {
	lockSets := [][]int{{0, 1}, {1, 0}, {0, 1}}
	cfg := Config{Kappa: 3, MaxLocks: 2, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}
	// An attempt is ~T0+T1 ≈ 4·9·4·128 + 8·3·2·128 steps; sweep stall
	// points through the whole first attempt and beyond.
	stallPoints := []uint64{10, 50, 200, 1000, 5000, 20000, 60000, 120000}
	if testing.Short() {
		// Keep one stall point per broad phase so the CI run still
		// exercises the sweep's shape.
		stallPoints = []uint64{50, 5000, 60000}
	}
	for _, stall := range stallPoints {
		h := newHarness(t, cfg, 2)
		schedule := &sched.Stalling{
			Base:    sched.NewRandom(3, stall),
			Windows: []sched.StallWindow{{Pid: 0, From: stall, To: ^uint64(0), Redirected: 1}},
		}
		sim := sched.New(schedule, stall)
		finished := make([]bool, 3)
		winCounts := make([]int, 3)
		for i := 0; i < 3; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 3; k++ {
					th := h.thunkFor(lockSets[i])
					if h.sys.TryLocks(e, h.locksFor(lockSets[i]), th) {
						winCounts[i]++
					}
				}
				finished[i] = true
			})
		}
		err := sim.Run(20_000_000)
		if err != nil && !errors.Is(err, sched.ErrStepLimit) {
			t.Fatalf("stall@%d: %v", stall, err)
		}
		if !finished[1] || !finished[2] {
			t.Fatalf("stall@%d: live processes did not finish", stall)
		}
		e := env.NewNative(99, 1)
		if h.violation.Load(e) != 0 {
			t.Fatalf("stall@%d: mutual exclusion violated", stall)
		}
		// Counters must account exactly for the finished processes'
		// wins; the stalled process's wins (if its descriptor won
		// before it froze and was celebrated by helpers) add extra
		// counts, so the counter must be at least the finished wins and
		// at most finished wins + stalled process rounds.
		for li := 0; li < 2; li++ {
			got := h.cells[li].ctr.Load(e)
			min := uint64(winCounts[1] + winCounts[2])
			max := min + 3
			if got < min || got > max {
				t.Fatalf("stall@%d: lock %d counter %d outside [%d, %d]",
					stall, li, got, min, max)
			}
		}
	}
}

// TestPhaseSweepStallsUnknownBounds repeats the sweep for the
// unknown-bounds variant.
func TestPhaseSweepStallsUnknownBounds(t *testing.T) {
	lockSets := [][]int{{0, 1}, {1, 0}, {0, 1}}
	cfg := Config{UnknownBounds: true, NumProcs: 3, MaxLocks: 2, MaxThunkSteps: 128}
	stallPoints := []uint64{10, 200, 2000, 20000}
	for _, stall := range stallPoints {
		h := newHarness(t, cfg, 2)
		schedule := &sched.Stalling{
			Base:    sched.NewRandom(3, stall+99),
			Windows: []sched.StallWindow{{Pid: 0, From: stall, To: ^uint64(0), Redirected: 2}},
		}
		sim := sched.New(schedule, stall+99)
		finished := make([]bool, 3)
		for i := 0; i < 3; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 3; k++ {
					h.sys.TryLocks(e, h.locksFor(lockSets[i]), h.thunkFor(lockSets[i]))
				}
				finished[i] = true
			})
		}
		err := sim.Run(20_000_000)
		if err != nil && !errors.Is(err, sched.ErrStepLimit) {
			t.Fatalf("stall@%d: %v", stall, err)
		}
		if !finished[1] || !finished[2] {
			t.Fatalf("stall@%d: live processes did not finish (unknown mode)", stall)
		}
		e := env.NewNative(99, 1)
		if h.violation.Load(e) != 0 {
			t.Fatalf("stall@%d: mutual exclusion violated (unknown mode)", stall)
		}
	}
}

// TestTwoStalledProcesses freezes two of four processes at different
// points; the remaining two must still finish.
func TestTwoStalledProcesses(t *testing.T) {
	lockSets := [][]int{{0}, {0}, {0}, {0}}
	cfg := Config{Kappa: 4, MaxLocks: 1, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}
	h := newHarness(t, cfg, 1)
	schedule := &sched.Stalling{
		Base: sched.NewRandom(4, 5),
		Windows: []sched.StallWindow{
			{Pid: 0, From: 3000, To: ^uint64(0), Redirected: 2},
			{Pid: 1, From: 9000, To: ^uint64(0), Redirected: 3},
		},
	}
	sim := sched.New(schedule, 5)
	finished := make([]bool, 4)
	for i := 0; i < 4; i++ {
		i := i
		sim.Spawn(func(e env.Env) {
			for k := 0; k < 3; k++ {
				h.sys.TryLocks(e, h.locksFor(lockSets[i]), h.thunkFor(lockSets[i]))
			}
			finished[i] = true
		})
	}
	err := sim.Run(20_000_000)
	if err != nil && !errors.Is(err, sched.ErrStepLimit) {
		t.Fatal(err)
	}
	if !finished[2] || !finished[3] {
		t.Fatal("live processes blocked by two stalled ones")
	}
	e := env.NewNative(99, 1)
	if h.violation.Load(e) != 0 {
		t.Fatal("mutual exclusion violated")
	}
}

// TestTiedPrioritiesBothLose verifies footnote 3's tie rule emerges
// from the comparison logic: with equal priorities, each side's run
// eliminates its own descriptor, so both lose.
func TestTiedPrioritiesBothLose(t *testing.T) {
	sys, err := NewSystem(Config{Kappa: 2, MaxLocks: 1, MaxThunkSteps: 16, DelayC: 4, DelayC1: 8})
	if err != nil {
		t.Fatal(err)
	}
	l := sys.NewLock()
	e := env.NewNative(0, 1)

	// Hand-craft two revealed descriptors with identical priorities,
	// both inserted into the lock's active set.
	mk := func() *Descriptor {
		p := &Descriptor{sys: sys, locks: []*Lock{l}, thunk: nil}
		p.status.Store(StatusActive)
		p.priority.Store(42)
		return p
	}
	p, q := mk(), mk()
	p.thunk = noopExec()
	q.thunk = noopExec()
	l.set.Insert(e, p)
	l.set.Insert(e, q)

	sys.run(e, p) // p compares against q: equal priorities ⇒ eliminate(p)
	if p.Status() != StatusLost {
		t.Fatalf("p status = %s, want lost on tie", StatusName(p.Status()))
	}
	sys.run(e, q) // q compares against p (lost) and itself; decides won
	// q never met an *active* equal-priority rival (p already lost), so
	// q wins — the "both lose" outcome needs truly concurrent runs:
	if q.Status() != StatusWon {
		t.Fatalf("q status = %s, want won after p lost", StatusName(q.Status()))
	}

	// Truly concurrent tie: interleave two fresh tied descriptors' runs
	// so each sees the other active. Both must lose.
	r, s := mk(), mk()
	r.thunk = noopExec()
	s.thunk = noopExec()
	l2 := sys.NewLock()
	l2.set.Insert(e, r)
	l2.set.Insert(e, s)
	r.locks = []*Lock{l2}
	s.locks = []*Lock{l2}
	sim := sched.New(sched.RoundRobin{N: 2}, 1)
	sim.Spawn(func(e env.Env) { sys.run(e, r) })
	sim.Spawn(func(e env.Env) { sys.run(e, s) })
	if err := sim.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if r.Status() == StatusWon && s.Status() == StatusWon {
		t.Fatal("both tied descriptors won — mutual exclusion of the tie rule broken")
	}
}
