package core

import (
	"errors"
	"testing"

	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/sched"
)

// lockCells is the per-lock instrumented state used by the invariant-
// checking thunks: a critical-section-held flag, a win counter, and a
// shared violation cell.
type lockCells struct {
	held *idem.Cell
	ctr  *idem.Cell
}

type harness struct {
	sys       *System
	locks     []*Lock
	cells     []lockCells
	violation *idem.Cell
}

func newHarness(t *testing.T, cfg Config, numLocks int) *harness {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{sys: sys, violation: idem.NewCell(0)}
	for i := 0; i < numLocks; i++ {
		h.locks = append(h.locks, sys.NewLock())
		h.cells = append(h.cells, lockCells{held: idem.NewCell(0), ctr: idem.NewCell(0)})
	}
	return h
}

// thunkFor builds the invariant-checking critical section for a lock
// subset: it checks no shared lock's critical section is already open,
// opens them, bumps each lock's win counter, and closes them. 5 ops per
// lock.
func (h *harness) thunkFor(lockIdx []int) *idem.Exec {
	return idem.NewExec(func(r *idem.Run) {
		for _, li := range lockIdx {
			if r.Read(h.cells[li].held) != 0 {
				r.Write(h.violation, 1)
			} else {
				r.Write(h.cells[li].held, 1)
			}
		}
		for _, li := range lockIdx {
			v := r.Read(h.cells[li].ctr)
			r.Write(h.cells[li].ctr, v+1)
		}
		for _, li := range lockIdx {
			r.Write(h.cells[li].held, 0)
		}
	}, 6*len(lockIdx))
}

func (h *harness) locksFor(lockIdx []int) []*Lock {
	out := make([]*Lock, len(lockIdx))
	for i, li := range lockIdx {
		out[i] = h.locks[li]
	}
	return out
}

func TestNewSystemValidation(t *testing.T) {
	cases := []Config{
		{}, // everything missing
		{Kappa: 2, MaxLocks: 0, MaxThunkSteps: 1},             // no MaxLocks
		{Kappa: 2, MaxLocks: 1, MaxThunkSteps: 0},             // no MaxThunkSteps
		{Kappa: 0, MaxLocks: 1, MaxThunkSteps: 1},             // no Kappa, known mode
		{UnknownBounds: true, MaxLocks: 1, MaxThunkSteps: 1},  // no NumProcs, unknown mode
		{Kappa: 2, MaxLocks: 1, MaxThunkSteps: 1, DelayC: -1}, // negative constant
	}
	for i, cfg := range cases {
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
	if _, err := NewSystem(Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 10}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	sys, err := NewSystem(Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().DelayC != defaultDelayC || sys.Config().DelayC1 != defaultDelayC1 {
		t.Fatalf("defaults not applied: %+v", sys.Config())
	}
}

func TestSingleProcessAlwaysWins(t *testing.T) {
	h := newHarness(t, Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 64}, 2)
	e := env.NewNative(0, 1)
	for k := 0; k < 20; k++ {
		ok := h.sys.TryLocks(e, h.locksFor([]int{0, 1}), h.thunkFor([]int{0, 1}))
		if !ok {
			t.Fatalf("uncontended attempt %d failed", k)
		}
	}
	if got := h.cells[0].ctr.Load(e); got != 20 {
		t.Fatalf("lock 0 counter = %d, want 20", got)
	}
	if got := h.violation.Load(e); got != 0 {
		t.Fatal("mutual exclusion violation recorded")
	}
}

func TestFailedAttemptThunkNeverRuns(t *testing.T) {
	// Force a failure: descriptor eliminated by a competing attempt.
	// We detect failures over many seeds and assert their thunks never
	// ran (Definition 4.3: "If A fails, there is no run of T").
	sawFailure := false
	for seed := uint64(1); seed <= 40 && !sawFailure; seed++ {
		h := newHarness(t, Config{Kappa: 2, MaxLocks: 1, MaxThunkSteps: 64}, 1)
		sim := sched.New(sched.NewRandom(2, seed), seed)
		type result struct {
			ok    bool
			thunk *idem.Exec
		}
		results := make([]result, 2)
		for i := 0; i < 2; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				th := h.thunkFor([]int{0})
				ok := h.sys.TryLocks(e, h.locksFor([]int{0}), th)
				results[i] = result{ok, th}
			})
		}
		if err := sim.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		for i, r := range results {
			if !r.ok {
				sawFailure = true
				if r.thunk.Finished() {
					t.Fatalf("seed %d: failed attempt %d's thunk ran", seed, i)
				}
			}
		}
		wins := 0
		for _, r := range results {
			if r.ok {
				wins++
			}
		}
		if got := h.cells[0].ctr.Load(e); got != uint64(wins) {
			t.Fatalf("seed %d: counter = %d, wins = %d", seed, got, wins)
		}
	}
	if !sawFailure {
		t.Skip("no failures observed in 40 seeds; fairness too good to exercise failure path")
	}
}

// runWorkload runs procs processes, each performing rounds tryLock
// attempts on the given per-process lock subsets, under a seeded random
// schedule. Returns per-process win counts.
func runWorkload(t *testing.T, h *harness, seed uint64, rounds int, lockSets [][]int) []int {
	t.Helper()
	procs := len(lockSets)
	sim := sched.New(sched.NewRandom(procs, seed), seed)
	winCounts := make([]int, procs)
	for i := 0; i < procs; i++ {
		i := i
		sim.Spawn(func(e env.Env) {
			for k := 0; k < rounds; k++ {
				th := h.thunkFor(lockSets[i])
				if h.sys.TryLocks(e, h.locksFor(lockSets[i]), th) {
					winCounts[i]++
				}
			}
		})
	}
	if err := sim.Run(500_000_000); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return winCounts
}

func verifyCounters(t *testing.T, h *harness, lockSets [][]int, winCounts []int) {
	t.Helper()
	e := env.NewNative(99, 1)
	if got := h.violation.Load(e); got != 0 {
		t.Fatal("mutual exclusion violated: overlapping critical sections on a shared lock")
	}
	wantPerLock := make([]uint64, len(h.locks))
	for i, set := range lockSets {
		for _, li := range set {
			wantPerLock[li] += uint64(winCounts[i])
		}
	}
	for li := range h.locks {
		if got := h.cells[li].ctr.Load(e); got != wantPerLock[li] {
			t.Fatalf("lock %d counter = %d, want %d (thunks lost or double-applied)",
				li, got, wantPerLock[li])
		}
	}
}

// shortSweep trims a seed sweep in -short mode (CI) while keeping the
// full sweep for the default run.
func shortSweep(full uint64) uint64 {
	if testing.Short() {
		return 3
	}
	return full
}

func TestMutualExclusionPhilosophers(t *testing.T) {
	// 4 philosophers, ring of 4 chopsticks: κ = L = 2.
	lockSets := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for seed := uint64(1); seed <= shortSweep(25); seed++ {
		h := newHarness(t, Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}, 4)
		winCounts := runWorkload(t, h, seed, 6, lockSets)
		verifyCounters(t, h, lockSets, winCounts)
		if h.sys.DelayOverruns() != 0 {
			t.Fatalf("seed %d: %d delay overruns — delay constants too small",
				seed, h.sys.DelayOverruns())
		}
	}
}

func TestMutualExclusionSingleHotLock(t *testing.T) {
	// All processes fight over one lock: κ = 4, L = 1.
	lockSets := [][]int{{0}, {0}, {0}, {0}}
	for seed := uint64(1); seed <= shortSweep(25); seed++ {
		h := newHarness(t, Config{Kappa: 4, MaxLocks: 1, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}, 1)
		winCounts := runWorkload(t, h, seed, 5, lockSets)
		verifyCounters(t, h, lockSets, winCounts)
	}
}

func TestMutualExclusionOverlappingTriples(t *testing.T) {
	// L = 3 with entangled lock sets over 5 locks; κ = 3.
	lockSets := [][]int{{0, 1, 2}, {1, 2, 3}, {2, 3, 4}}
	for seed := uint64(1); seed <= shortSweep(15); seed++ {
		h := newHarness(t, Config{Kappa: 3, MaxLocks: 3, MaxThunkSteps: 256, DelayC: 4, DelayC1: 8}, 5)
		winCounts := runWorkload(t, h, seed, 4, lockSets)
		verifyCounters(t, h, lockSets, winCounts)
	}
}

func TestMutualExclusionUnknownBounds(t *testing.T) {
	lockSets := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	for seed := uint64(1); seed <= 25; seed++ {
		h := newHarness(t, Config{
			UnknownBounds: true, NumProcs: 4, MaxLocks: 2, MaxThunkSteps: 128,
		}, 4)
		winCounts := runWorkload(t, h, seed, 6, lockSets)
		verifyCounters(t, h, lockSets, winCounts)
	}
}

func TestUnknownBoundsHotLock(t *testing.T) {
	lockSets := [][]int{{0}, {0}, {0}, {0}, {0}}
	for seed := uint64(1); seed <= 15; seed++ {
		h := newHarness(t, Config{
			UnknownBounds: true, NumProcs: 5, MaxLocks: 1, MaxThunkSteps: 128,
		}, 1)
		winCounts := runWorkload(t, h, seed, 4, lockSets)
		verifyCounters(t, h, lockSets, winCounts)
	}
}

func TestStepBoundPerAttempt(t *testing.T) {
	// Theorem 6.1: every attempt takes O(κ²L²T) steps — with our
	// concrete constants, at most T0 + T1 + slack, win or lose.
	lockSets := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	cfg := Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}
	h := newHarness(t, cfg, 4)
	bound := h.sys.t0() + h.sys.t1() + 64 // slack: descriptor setup + final checks
	for seed := uint64(1); seed <= shortSweep(10); seed++ {
		h := newHarness(t, cfg, 4)
		procs := len(lockSets)
		sim := sched.New(sched.NewRandom(procs, seed), seed)
		var maxSteps uint64
		for i := 0; i < procs; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 4; k++ {
					before := e.Steps()
					h.sys.TryLocks(e, h.locksFor(lockSets[i]), h.thunkFor(lockSets[i]))
					if d := e.Steps() - before; d > maxSteps {
						maxSteps = d
					}
				}
			})
		}
		if err := sim.Run(500_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if maxSteps > bound {
			t.Fatalf("seed %d: attempt took %d steps, bound %d", seed, maxSteps, bound)
		}
		if h.sys.DelayOverruns() != 0 {
			t.Fatalf("seed %d: delay overruns: %d", seed, h.sys.DelayOverruns())
		}
	}
}

func TestFixedStepsToReveal(t *testing.T) {
	// Observation 6.7: every attempt takes the same number of its own
	// steps from start to reveal, and from reveal to completion,
	// regardless of schedule or contention.
	lockSets := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	cfg := Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}
	var lengths []uint64
	for seed := uint64(1); seed <= 6; seed++ {
		h := newHarness(t, cfg, 4)
		procs := len(lockSets)
		sim := sched.New(sched.NewRandom(procs, seed), seed)
		for i := 0; i < procs; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 3; k++ {
					before := e.Steps()
					h.sys.TryLocks(e, h.locksFor(lockSets[i]), h.thunkFor(lockSets[i]))
					lengths = append(lengths, e.Steps()-before)
				}
			})
		}
		if err := sim.Run(500_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	for i := 1; i < len(lengths); i++ {
		if lengths[i] != lengths[0] {
			t.Fatalf("attempt lengths differ: %d vs %d — adversary can read contention off timing",
				lengths[i], lengths[0])
		}
	}
}

func TestFairnessPhilosophersRate(t *testing.T) {
	// Theorem 6.9 specialized to dining philosophers (κ = L = 2): each
	// attempt succeeds with probability ≥ 1/4. A uniform random
	// scheduler is far from worst-case, so the empirical rate should
	// clear 1/4 comfortably; we assert the theorem's floor.
	lockSets := [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	attempts, wins := 0, 0
	for seed := uint64(1); seed <= shortSweep(20); seed++ {
		h := newHarness(t, Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}, 4)
		winCounts := runWorkload(t, h, seed, 6, lockSets)
		for _, w := range winCounts {
			wins += w
		}
		attempts += 6 * len(lockSets)
	}
	rate := float64(wins) / float64(attempts)
	if rate < 0.25 {
		t.Fatalf("success rate %.3f below the 1/4 fairness floor (%d/%d)",
			rate, wins, attempts)
	}
}

func TestWaitFreedomUnderStalledProcess(t *testing.T) {
	// A process stalled forever mid-attempt must not block others
	// (wait-freedom): the others' attempts all complete, and if the
	// stalled process had won, its thunk still runs (helping).
	lockSets := [][]int{{0}, {0}, {0}}
	for seed := uint64(1); seed <= shortSweep(15); seed++ {
		h := newHarness(t, Config{Kappa: 3, MaxLocks: 1, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}, 1)
		base := sched.NewRandom(3, seed)
		// Stall process 0 from step 2000 onward, forever.
		schedule := &sched.Stalling{
			Base:    base,
			Windows: []sched.StallWindow{{Pid: 0, From: 2000, To: ^uint64(0), Redirected: 1}},
		}
		sim := sched.New(schedule, seed)
		finished := make([]bool, 3)
		for i := 0; i < 3; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				rounds := 3
				if i == 0 {
					rounds = 1000 // will be cut off by the stall window
				}
				for k := 0; k < rounds; k++ {
					h.sys.TryLocks(e, h.locksFor(lockSets[i]), h.thunkFor(lockSets[i]))
				}
				finished[i] = true
			})
		}
		err := sim.Run(10_000_000)
		if err != nil && !errors.Is(err, sched.ErrStepLimit) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !finished[1] || !finished[2] {
			t.Fatalf("seed %d: live processes blocked by a stalled one", seed)
		}
		e := env.NewNative(99, 1)
		if got := h.violation.Load(e); got != 0 {
			t.Fatalf("seed %d: mutual exclusion violated", seed)
		}
	}
}

func TestDeterministicOutcomes(t *testing.T) {
	run := func() []int {
		lockSets := [][]int{{0, 1}, {1, 0}}
		h := newHarness(t, Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 128, DelayC: 4, DelayC1: 8}, 2)
		return runWorkload(t, h, 7, 5, lockSets)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged: %v vs %v", a, b)
		}
	}
}

func TestStatusTransitionsAtMostOnce(t *testing.T) {
	// eliminate on a won descriptor must not demote it, and decide on a
	// lost descriptor must not promote it.
	sys, err := NewSystem(Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := env.NewNative(0, 1)
	p := &Descriptor{sys: sys}
	p.status.Store(StatusActive)
	sys.decide(e, p)
	if p.Status() != StatusWon {
		t.Fatal("decide on active did not win")
	}
	sys.eliminate(e, p)
	if p.Status() != StatusWon {
		t.Fatal("eliminate demoted a winner")
	}
	q := &Descriptor{sys: sys}
	q.status.Store(StatusActive)
	sys.eliminate(e, q)
	sys.decide(e, q)
	if q.Status() != StatusLost {
		t.Fatal("decide promoted a loser")
	}
}

func TestTryLocksPanicsOnBadLockSet(t *testing.T) {
	sys, err := NewSystem(Config{Kappa: 2, MaxLocks: 2, MaxThunkSteps: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := env.NewNative(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty lock set")
		}
	}()
	sys.TryLocks(e, nil, idem.NewExec(func(r *idem.Run) {}, 0))
}

func TestAttemptAndWinCounters(t *testing.T) {
	h := newHarness(t, Config{Kappa: 2, MaxLocks: 1, MaxThunkSteps: 64}, 1)
	e := env.NewNative(0, 1)
	for k := 0; k < 5; k++ {
		h.sys.TryLocks(e, h.locksFor([]int{0}), h.thunkFor([]int{0}))
	}
	if h.sys.Attempts() != 5 || h.sys.Wins() != 5 {
		t.Fatalf("attempts/wins = %d/%d, want 5/5", h.sys.Attempts(), h.sys.Wins())
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[uint64]uint64{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPowerOfTwo(in); got != want {
			t.Errorf("nextPowerOfTwo(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestStatusName(t *testing.T) {
	if StatusName(StatusActive) != "active" || StatusName(StatusWon) != "won" ||
		StatusName(StatusLost) != "lost" || StatusName(99) == "" {
		t.Fatal("StatusName broken")
	}
}
