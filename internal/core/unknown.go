package core

import (
	"math/bits"

	"wflocks/internal/env"
)

// tryLocksUnknown is the Section 6.2 variant of the tryLock attempt for
// when κ and L are unknown to the algorithm (Theorem 6.10). The
// differences from the known-bounds body:
//
//   - announcement arrays are sized P (handled by NewLock);
//   - the reveal step is split into a participation reveal (priority
//     becomes TBD: the descriptor is competing, but its priority is not
//     drawn) and a priority reveal;
//   - between the two reveals the attempt snapshots the active sets of
//     all its locks; after the priority reveal those local copies — and
//     never the live sets — feed the priority comparisons, so the
//     adversary learns the priority only after it can no longer shape
//     the set of potential threateners;
//   - instead of fixed delays derived from κ, L and T, the attempt pads
//     its step count to the next power of two at each phase boundary
//     (the guess-and-double trick), so the adversary can steer the
//     attempt's phase lengths to only one of log(κ·L·T) many values —
//     which is exactly the log factor lost in Theorem 6.10's success
//     probability.
func (s *System) tryLocksUnknown(e env.Env, p *Descriptor) bool {
	for _, l := range p.locks {
		l.attempts.Add(1)
	}
	s.observeFree(e, p)

	// Helping phase: help every descriptor with a *revealed* priority.
	// TBD descriptors must not be helped: running them would drive them
	// to a decision before they have drawn a priority.
	for _, l := range p.locks {
		for _, q := range s.revealedMembers(e, l) {
			// As in the known-bounds variant, only still-undecided
			// descriptors count toward the helps counter.
			active := q.Status() == StatusActive
			if active {
				l.helps.Add(1)
			}
			s.helpOne(e, p, l, q, active)
		}
	}

	// Insert into every lock's announcement array.
	p.ClearFlag(e)
	sc := scratchOf(e)
	var slots []int
	if sc != nil {
		slots = sc.slots.Make(len(p.locks))
	} else {
		slots = make([]int, len(p.locks))
	}
	for i, l := range p.locks {
		slots[i] = l.set.Insert(e, p)
	}
	checkSlots(s, slots)

	// Pad to a power of two, then the participation reveal. On the
	// fast path the padding stalls are skipped (see TryLocks).
	s.stallToPowerOfTwo(e, p)
	e.Step()
	p.priority.Store(priorityTBD)

	// Snapshot the membership of every lock (participating descriptors
	// only: those at or past their participation reveal).
	if sc != nil {
		p.localSets = sc.locals.Make(len(p.locks))
	} else {
		p.localSets = make([][]*Descriptor, len(p.locks))
	}
	for i, l := range p.locks {
		p.localSets[i] = s.participatingMembers(e, l)
	}

	// Pad again so the snapshot phase's length is also quantized, then
	// the priority reveal. The atomic priority store publishes the
	// local sets to helpers.
	s.stallToPowerOfTwo(e, p)
	pr := env.RandPriority(e)
	e.Step()
	p.priority.Store(pr)
	p.revealStep = e.Steps()

	// Compete, clean up, and pad the attempt's total length.
	s.run(e, p)

	p.ClearFlag(e)
	for i, l := range p.locks {
		l.set.Remove(e, slots[i])
	}
	s.stallToPowerOfTwo(e, p)

	won := p.status.Load() == StatusWon
	if won {
		s.wins.Add(1)
		for _, l := range p.locks {
			l.wins.Add(1)
		}
	}
	s.endAttempt(e, p, won)
	return won
}

// revealedMembers returns the lock's members whose priority is revealed
// (strictly positive).
func (s *System) revealedMembers(e env.Env, l *Lock) []*Descriptor {
	snapshot := l.set.GetSet(e)
	if len(snapshot) == 0 {
		return nil
	}
	out := memberBuf(e, len(snapshot))
	for _, q := range snapshot {
		e.Step()
		if q.priority.Load() > 0 {
			out = append(out, q)
		}
	}
	return out
}

// participatingMembers returns the lock's members at or past their
// participation reveal (priority TBD or revealed).
func (s *System) participatingMembers(e env.Env, l *Lock) []*Descriptor {
	snapshot := l.set.GetSet(e)
	if len(snapshot) == 0 {
		return nil
	}
	out := memberBuf(e, len(snapshot))
	for _, q := range snapshot {
		e.Step()
		if q.priority.Load() >= priorityTBD {
			out = append(out, q)
		}
	}
	return out
}

// memberBuf returns an empty descriptor slice with capacity n, arena
// backed when the environment carries scratch state. The filtered
// snapshots built in it are published via localSets, so the backing
// memory is never recycled.
func memberBuf(e env.Env, n int) []*Descriptor {
	if sc := scratchOf(e); sc != nil {
		return sc.members.MakeCap(n)
	}
	return make([]*Descriptor, 0, n)
}

// stallToPowerOfTwo pads the attempt's step count (measured from its
// start) up to the next power of two. Skipped entirely on the
// uncontended fast path.
func (s *System) stallToPowerOfTwo(e env.Env, p *Descriptor) {
	if s.cfg.DisableDelays || p.noDelay {
		return
	}
	elapsed := e.Steps() - p.startStep
	if elapsed == 0 {
		elapsed = 1
	}
	target := nextPowerOfTwo(elapsed)
	p.stallTo(e, p.startStep+target)
}

// nextPowerOfTwo returns the smallest power of two >= n (n > 0).
func nextPowerOfTwo(n uint64) uint64 {
	if n&(n-1) == 0 {
		return n
	}
	return 1 << bits.Len64(n)
}
