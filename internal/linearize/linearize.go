// Package linearize implements a Wing–Gong-style linearizability
// checker: given a concurrent history of completed operations (with
// invocation/response timestamps) and a sequential specification, it
// searches for a linearization — a total order consistent with the
// history's real-time partial order under which the specification
// produces exactly the observed return values.
//
// The active set of Algorithm 1 claims linearizability (Section 5.1),
// and the idempotence construction claims its simulated operations are
// linearizable (Theorem 4.2(3)); the tests of those packages use this
// checker on small seeded histories, complementing the larger
// invariant-based tests.
//
// The search is exponential in the worst case; keep histories small
// (≲ 14 operations). Memoization on (linearized-set, state-key) keeps
// typical histories fast.
package linearize

import (
	"fmt"
	"sort"
	"strings"
)

// Op is one completed operation of a concurrent history.
type Op struct {
	// Proc identifies the calling process (diagnostics only).
	Proc int
	// Name and Arg describe the operation.
	Name string
	Arg  uint64
	// Ret is the observed return value, encoded by the caller.
	Ret string
	// Start and End are the invocation and response timestamps. Start
	// must be strictly less than End, and timestamps must be drawn
	// from one global clock.
	Start, End uint64
}

func (o Op) String() string {
	return fmt.Sprintf("p%d.%s(%d)=%s@[%d,%d]", o.Proc, o.Name, o.Arg, o.Ret, o.Start, o.End)
}

// Spec is a sequential specification over an opaque state.
type Spec struct {
	// Init returns the initial state.
	Init func() any
	// Apply runs op on state, returning the new state and the return
	// value the sequential object would produce.
	Apply func(state any, op Op) (any, string)
	// Key renders a state as a comparable memoization key.
	Key func(state any) string
}

// Check reports whether the history is linearizable with respect to the
// specification. If it is not, it returns a human-readable explanation.
func Check(spec Spec, history []Op) (bool, string) {
	for _, op := range history {
		if op.Start >= op.End {
			return false, fmt.Sprintf("malformed op %v: Start >= End", op)
		}
	}
	ops := append([]Op(nil), history...)
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Start < ops[j].Start })

	taken := make([]bool, len(ops))
	memo := map[string]bool{} // states already proven dead ends
	var search func(state any, remaining int) bool
	search = func(state any, remaining int) bool {
		if remaining == 0 {
			return true
		}
		key := memoKey(spec, state, taken)
		if memo[key] {
			return false
		}
		// An op may be linearized next iff no other remaining op
		// responded before it was invoked.
		minEnd := ^uint64(0)
		for i, op := range ops {
			if !taken[i] && op.End < minEnd {
				minEnd = op.End
			}
		}
		for i, op := range ops {
			if taken[i] || op.Start > minEnd {
				continue
			}
			next, ret := spec.Apply(state, op)
			if ret != op.Ret {
				continue
			}
			taken[i] = true
			if search(next, remaining-1) {
				return true
			}
			taken[i] = false
		}
		memo[key] = true
		return false
	}
	if search(spec.Init(), len(ops)) {
		return true, ""
	}
	return false, fmt.Sprintf("no linearization exists for history:\n%s", render(ops))
}

func memoKey(spec Spec, state any, taken []bool) string {
	var b strings.Builder
	b.WriteString(spec.Key(state))
	b.WriteByte('|')
	for _, t := range taken {
		if t {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func render(ops []Op) string {
	lines := make([]string, len(ops))
	for i, op := range ops {
		lines[i] = "  " + op.String()
	}
	return strings.Join(lines, "\n")
}

// RegisterSpec returns the sequential specification of a single uint64
// register supporting read/write/cas — the model for idem.Cell
// histories. Return encoding: read → value as decimal; write → "ok";
// cas → "true"/"false" (Arg packs old<<32|new for 32-bit test values).
func RegisterSpec(initial uint64) Spec {
	return Spec{
		Init: func() any { return initial },
		Apply: func(state any, op Op) (any, string) {
			v := state.(uint64)
			switch op.Name {
			case "read":
				return v, fmt.Sprint(v)
			case "write":
				return op.Arg, "ok"
			case "cas":
				old, new := op.Arg>>32, op.Arg&0xffffffff
				if v == old {
					return new, "true"
				}
				return v, "false"
			default:
				return v, "?unknown-op"
			}
		},
		Key: func(state any) string { return fmt.Sprint(state.(uint64)) },
	}
}

// SetSpec returns the sequential specification of a set of uint64
// elements — the model for active set histories. Operations: insert,
// remove (ret "ok"), getset (ret comma-joined sorted members).
func SetSpec() Spec {
	type set = string // canonical "1,4,9" encoding
	encode := func(members map[uint64]bool) set {
		ids := make([]uint64, 0, len(members))
		for id := range members {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprint(id)
		}
		return strings.Join(parts, ",")
	}
	decode := func(s set) map[uint64]bool {
		members := map[uint64]bool{}
		if s == "" {
			return members
		}
		for _, part := range strings.Split(s, ",") {
			var id uint64
			fmt.Sscan(part, &id)
			members[id] = true
		}
		return members
	}
	return Spec{
		Init: func() any { return set("") },
		Apply: func(state any, op Op) (any, string) {
			members := decode(state.(set))
			switch op.Name {
			case "insert":
				members[op.Arg] = true
				return encode(members), "ok"
			case "remove":
				delete(members, op.Arg)
				return encode(members), "ok"
			case "getset":
				s := encode(members)
				return s, s
			default:
				return state, "?unknown-op"
			}
		},
		Key: func(state any) string { return state.(set) },
	}
}
