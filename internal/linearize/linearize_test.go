package linearize

import (
	"strings"
	"testing"
)

func TestSequentialHistoryAccepted(t *testing.T) {
	spec := RegisterSpec(0)
	ok, why := Check(spec, []Op{
		{Proc: 0, Name: "write", Arg: 5, Ret: "ok", Start: 1, End: 2},
		{Proc: 0, Name: "read", Ret: "5", Start: 3, End: 4},
	})
	if !ok {
		t.Fatal(why)
	}
}

func TestStaleReadRejected(t *testing.T) {
	spec := RegisterSpec(0)
	ok, _ := Check(spec, []Op{
		{Proc: 0, Name: "write", Arg: 5, Ret: "ok", Start: 1, End: 2},
		{Proc: 1, Name: "read", Ret: "0", Start: 3, End: 4}, // must see 5
	})
	if ok {
		t.Fatal("stale read accepted")
	}
}

func TestOverlappingOpsMayReorder(t *testing.T) {
	spec := RegisterSpec(0)
	// The read overlaps the write, so either value is linearizable.
	for _, ret := range []string{"0", "5"} {
		ok, why := Check(spec, []Op{
			{Proc: 0, Name: "write", Arg: 5, Ret: "ok", Start: 1, End: 10},
			{Proc: 1, Name: "read", Ret: ret, Start: 2, End: 9},
		})
		if !ok {
			t.Fatalf("overlapping read=%s rejected: %s", ret, why)
		}
	}
}

func TestCASSemantics(t *testing.T) {
	spec := RegisterSpec(1)
	pack := func(old, new uint64) uint64 { return old<<32 | new }
	ok, why := Check(spec, []Op{
		{Proc: 0, Name: "cas", Arg: pack(1, 2), Ret: "true", Start: 1, End: 2},
		{Proc: 1, Name: "cas", Arg: pack(1, 3), Ret: "false", Start: 3, End: 4},
		{Proc: 0, Name: "read", Ret: "2", Start: 5, End: 6},
	})
	if !ok {
		t.Fatal(why)
	}
	// Two sequential CASes from the same old value cannot both succeed.
	ok, _ = Check(spec, []Op{
		{Proc: 0, Name: "cas", Arg: pack(1, 2), Ret: "true", Start: 1, End: 2},
		{Proc: 1, Name: "cas", Arg: pack(1, 3), Ret: "true", Start: 3, End: 4},
	})
	if ok {
		t.Fatal("double CAS-from-same-old accepted")
	}
}

func TestDoubleCASOverlappingStillRejected(t *testing.T) {
	spec := RegisterSpec(1)
	pack := func(old, new uint64) uint64 { return old<<32 | new }
	// Even fully overlapping, both cannot succeed from old=1 with no
	// other writes restoring 1.
	ok, _ := Check(spec, []Op{
		{Proc: 0, Name: "cas", Arg: pack(1, 2), Ret: "true", Start: 1, End: 10},
		{Proc: 1, Name: "cas", Arg: pack(1, 3), Ret: "true", Start: 2, End: 9},
	})
	if ok {
		t.Fatal("two successful CASes from the same value accepted")
	}
}

func TestSetSpecHistories(t *testing.T) {
	spec := SetSpec()
	ok, why := Check(spec, []Op{
		{Proc: 0, Name: "insert", Arg: 3, Ret: "ok", Start: 1, End: 2},
		{Proc: 1, Name: "insert", Arg: 7, Ret: "ok", Start: 3, End: 4},
		{Proc: 2, Name: "getset", Ret: "3,7", Start: 5, End: 6},
		{Proc: 0, Name: "remove", Arg: 3, Ret: "ok", Start: 7, End: 8},
		{Proc: 2, Name: "getset", Ret: "7", Start: 9, End: 10},
	})
	if !ok {
		t.Fatal(why)
	}
}

func TestSetSpecRejectsGhostMember(t *testing.T) {
	spec := SetSpec()
	ok, _ := Check(spec, []Op{
		{Proc: 0, Name: "insert", Arg: 3, Ret: "ok", Start: 1, End: 2},
		{Proc: 2, Name: "getset", Ret: "3,9", Start: 3, End: 4}, // 9 never inserted
	})
	if ok {
		t.Fatal("ghost member accepted")
	}
}

func TestSetSpecRejectsMissingMember(t *testing.T) {
	spec := SetSpec()
	ok, _ := Check(spec, []Op{
		{Proc: 0, Name: "insert", Arg: 3, Ret: "ok", Start: 1, End: 2},
		{Proc: 2, Name: "getset", Ret: "", Start: 3, End: 4}, // must contain 3
	})
	if ok {
		t.Fatal("missing member accepted")
	}
}

func TestOverlappingInsertGetset(t *testing.T) {
	spec := SetSpec()
	// getset overlaps the insert: both outcomes fine.
	for _, ret := range []string{"", "4"} {
		ok, why := Check(spec, []Op{
			{Proc: 0, Name: "insert", Arg: 4, Ret: "ok", Start: 1, End: 10},
			{Proc: 1, Name: "getset", Ret: ret, Start: 2, End: 9},
		})
		if !ok {
			t.Fatalf("ret=%q rejected: %s", ret, why)
		}
	}
}

func TestMalformedOpRejected(t *testing.T) {
	spec := RegisterSpec(0)
	ok, why := Check(spec, []Op{{Name: "read", Ret: "0", Start: 5, End: 5}})
	if ok || !strings.Contains(why, "malformed") {
		t.Fatalf("malformed op accepted: %v %q", ok, why)
	}
}

func TestEmptyHistory(t *testing.T) {
	ok, _ := Check(RegisterSpec(0), nil)
	if !ok {
		t.Fatal("empty history rejected")
	}
}

func TestMediumHistoryPerformance(t *testing.T) {
	// 12 ops with heavy overlap must finish fast (memoization).
	spec := RegisterSpec(0)
	var ops []Op
	for i := uint64(0); i < 6; i++ {
		ops = append(ops,
			Op{Proc: int(i), Name: "write", Arg: i, Ret: "ok", Start: 1, End: 100},
			Op{Proc: int(i) + 6, Name: "read", Ret: "0", Start: 1, End: 100})
	}
	// All reads returning 0 is linearizable: linearize all reads first.
	ok, why := Check(spec, ops)
	if !ok {
		t.Fatal(why)
	}
}
