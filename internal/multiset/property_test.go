package multiset

import (
	"testing"
	"testing/quick"

	"wflocks/internal/env"
	"wflocks/internal/sched"
)

// TestPropertyQuiescentConsistency: for random shapes (sets, items,
// schedules), after all MultiInserts complete and before any
// MultiRemove, every set contains exactly the items inserted into it;
// after all MultiRemoves, every set is empty.
func TestPropertyQuiescentConsistency(t *testing.T) {
	f := func(seed uint64, numSetsRaw, itemsRaw uint8) bool {
		numSets := 1 + int(numSetsRaw%3) // 1..3
		inserters := 2 + int(itemsRaw%4) // 2..5
		sets := newSets(numSets, inserters)
		items := make([]*item, inserters)
		slots := make([][]int, inserters)

		// Phase 1: concurrent inserts.
		sim := sched.New(sched.NewRandom(inserters, seed), seed)
		for i := 0; i < inserters; i++ {
			i := i
			items[i] = &item{id: i}
			sim.Spawn(func(e env.Env) {
				slots[i] = MultiInsert(e, items[i], sets)
			})
		}
		if err := sim.Run(5_000_000); err != nil {
			return false
		}
		e := env.NewNative(99, 1)
		for si := range sets {
			got := memberIDs(e, sets[si])
			if len(got) != inserters {
				return false
			}
			for i := 0; i < inserters; i++ {
				if !got[i] {
					return false
				}
			}
		}

		// Phase 2: concurrent removes.
		sim2 := sched.New(sched.NewRandom(inserters, seed+1), seed+1)
		for i := 0; i < inserters; i++ {
			i := i
			sim2.Spawn(func(e env.Env) {
				MultiRemove(e, items[i], sets, slots[i])
			})
		}
		if err := sim2.Run(5_000_000); err != nil {
			return false
		}
		for si := range sets {
			if len(memberIDs(e, sets[si])) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReinsertionCycles: items repeatedly inserted and removed must
// never leak stale membership.
func TestReinsertionCycles(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		sets := newSets(2, 3)
		sim := sched.New(sched.NewRandom(3, seed), seed)
		for i := 0; i < 3; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				for cycle := 0; cycle < 6; cycle++ {
					it := &item{id: 10*i + cycle}
					slots := MultiInsert(e, it, sets)
					MultiRemove(e, it, sets, slots)
				}
			})
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		for si := range sets {
			if got := memberIDs(e, sets[si]); len(got) != 0 {
				t.Fatalf("seed %d: stale members after cycles: %v", seed, got)
			}
		}
	}
}
