// Package multiset implements the set-regular multi active set of
// Section 5.2 (Algorithm 2) on top of the linearizable active set of
// Algorithm 1.
//
// A multi active set generalizes the active set to several sets at
// once: MultiInsert inserts an item into a collection of sets
// "atomically", MultiRemove undoes the previous MultiInsert, and
// GetSet returns the members of one set.
//
// The object is deliberately *not* linearizable; it satisfies the
// weaker set regularity property (Theorem 5.1): every MultiInsert and
// MultiRemove appears to take effect atomically at some point between
// invocation and response — any GetSet invoked after that point sees
// the effect, any GetSet that responds before it does not, and a
// GetSet overlapping the point may or may not. The atomic point is the
// flag write: MultiInsert first inserts the item into every set, then
// sets the item's flag; MultiRemove clears the flag, then removes.
// GetSet filters the underlying active-set snapshot by flag.
//
// In Algorithm 3 the descriptor's priority field doubles as the flag
// (priority > 0 ⇒ flag set), so the flag write is the descriptor's
// "reveal step".
package multiset

import (
	"wflocks/internal/arena"
	"wflocks/internal/env"

	"wflocks/internal/activeset"
)

// scratch is the per-process allocation state: bump arenas for the
// slot-index buffers and filtered snapshots handed out by this
// package. Returned slices are never recycled (callers may retain
// them), so abandoning chunks is what keeps this safe; see
// internal/arena.
type scratch[T any] struct {
	slots arena.Slices[int]
	out   arena.Slices[*T]
}

// scratchOf returns e's multiset scratch for element type T, or nil
// when e carries no scratch state; all uses fall back to plain
// allocation on nil.
func scratchOf[T any](e env.Env) *scratch[T] {
	p := env.ScratchOf(e, env.ScratchMultiSet)
	if p == nil {
		return nil
	}
	s, ok := (*p).(*scratch[T])
	if !ok {
		s = &scratch[T]{}
		*p = s
	}
	return s
}

// Flagged is the interface items must implement (Algorithm 2's type T):
// a single writable boolean flag. The flag write is the operation's
// atomic point, so implementations must make GetFlag/SetFlag/ClearFlag
// individually atomic.
type Flagged interface {
	// SetFlag sets the flag. This is the atomic point of MultiInsert
	// (the descriptor's reveal step in Algorithm 3).
	SetFlag(e env.Env)
	// ClearFlag clears the flag. This is the atomic point of
	// MultiRemove.
	ClearFlag(e env.Env)
	// GetFlag reads the flag.
	GetFlag(e env.Env) bool
}

// MultiInsert inserts item into every set in collection, then sets its
// flag (Algorithm 2, multiInsert). It returns the slot index claimed in
// each set, which must be passed to the matching MultiRemove.
//
// Step complexity: O(κ) per set (Theorem 5.2).
func MultiInsert[T any, PT interface {
	Flagged
	*T
}](e env.Env, item PT, collection []*activeset.Set[T]) []int {
	item.ClearFlag(e)
	var slots []int
	if sc := scratchOf[T](e); sc != nil {
		slots = sc.slots.Make(len(collection))
	} else {
		slots = make([]int, len(collection))
	}
	for i, set := range collection {
		slots[i] = set.Insert(e, (*T)(item))
	}
	item.SetFlag(e)
	return slots
}

// MultiRemove clears the item's flag, then removes it from every set it
// was inserted into (Algorithm 2, multiRemove). slots must be the value
// returned by the matching MultiInsert.
func MultiRemove[T any, PT interface {
	Flagged
	*T
}](e env.Env, item PT, collection []*activeset.Set[T], slots []int) {
	item.ClearFlag(e)
	for i, set := range collection {
		set.Remove(e, slots[i])
	}
}

// GetSet returns the members of one set whose flags are set
// (Algorithm 2, getSet). The result is freshly allocated.
//
// Step complexity: O(κ) — one active-set GetSet plus one flag read per
// member.
func GetSet[T any, PT interface {
	Flagged
	*T
}](e env.Env, set *activeset.Set[T]) []*T {
	snapshot := set.GetSet(e)
	if len(snapshot) == 0 {
		return nil
	}
	var out []*T
	if sc := scratchOf[T](e); sc != nil {
		out = sc.out.MakeCap(len(snapshot))
	} else {
		out = make([]*T, 0, len(snapshot))
	}
	for _, item := range snapshot {
		if PT(item).GetFlag(e) {
			out = append(out, item)
		}
	}
	return out
}
