package multiset

import (
	"sync/atomic"
	"testing"

	"wflocks/internal/activeset"
	"wflocks/internal/env"
	"wflocks/internal/sched"
)

// item is a minimal Flagged implementation for tests.
type item struct {
	id   int
	flag atomic.Bool
}

func (it *item) SetFlag(e env.Env)      { e.Step(); it.flag.Store(true) }
func (it *item) ClearFlag(e env.Env)    { e.Step(); it.flag.Store(false) }
func (it *item) GetFlag(e env.Env) bool { e.Step(); return it.flag.Load() }

var _ Flagged = (*item)(nil)

func newSets(n, capacity int) []*activeset.Set[item] {
	sets := make([]*activeset.Set[item], n)
	for i := range sets {
		sets[i] = activeset.New[item](capacity)
	}
	return sets
}

func memberIDs(e env.Env, set *activeset.Set[item]) map[int]bool {
	out := map[int]bool{}
	for _, it := range GetSet[item, *item](e, set) {
		out[it.id] = true
	}
	return out
}

func TestSequentialMultiInsertRemove(t *testing.T) {
	e := env.NewNative(0, 1)
	sets := newSets(3, 4)
	a := &item{id: 1}

	slots := MultiInsert(e, a, sets)
	if len(slots) != 3 {
		t.Fatalf("got %d slots, want 3", len(slots))
	}
	for i, set := range sets {
		if !memberIDs(e, set)[1] {
			t.Fatalf("set %d missing item after MultiInsert", i)
		}
	}

	MultiRemove(e, a, sets, slots)
	for i, set := range sets {
		if memberIDs(e, set)[1] {
			t.Fatalf("set %d still has item after MultiRemove", i)
		}
	}
}

func TestFlagGatesVisibility(t *testing.T) {
	// An item inserted into the underlying active set but with a clear
	// flag must be invisible to the multiset GetSet.
	e := env.NewNative(0, 1)
	sets := newSets(1, 4)
	a := &item{id: 1}
	a.ClearFlag(e)
	sets[0].Insert(e, a)
	if memberIDs(e, sets[0])[1] {
		t.Fatal("unflagged item visible")
	}
	a.SetFlag(e)
	if !memberIDs(e, sets[0])[1] {
		t.Fatal("flagged item invisible")
	}
}

func TestMultiInsertIntoSubsetOfSets(t *testing.T) {
	e := env.NewNative(0, 1)
	sets := newSets(4, 4)
	a := &item{id: 7}
	slots := MultiInsert(e, a, sets[1:3])
	if memberIDs(e, sets[0])[7] || memberIDs(e, sets[3])[7] {
		t.Fatal("item leaked into sets outside the collection")
	}
	if !memberIDs(e, sets[1])[7] || !memberIDs(e, sets[2])[7] {
		t.Fatal("item missing from its collection")
	}
	MultiRemove(e, a, sets[1:3], slots)
}

// TestSetRegularityAfterPoint: a GetSet invoked entirely after a
// MultiInsert's response must see the item; one invoked entirely after
// a MultiRemove's response must not (Theorem 5.1).
func TestSetRegularityAfterPoint(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		const inserters = 4
		const numSets = 3
		sets := newSets(numSets, inserters)
		sim := sched.New(sched.NewRandom(inserters+1, seed), seed)
		items := make([]*item, inserters)
		insertedMark := make([]bool, inserters) // true once MultiInsert returned
		removeStarted := make([]bool, inserters)
		for i := 0; i < inserters; i++ {
			i := i
			items[i] = &item{id: i}
			sim.Spawn(func(e env.Env) {
				slots := MultiInsert(e, items[i], sets)
				insertedMark[i] = true
				env.StallSteps(e, uint64(5*(i+1)))
				removeStarted[i] = true
				MultiRemove(e, items[i], sets, slots)
			})
		}
		var violation string
		sim.Spawn(func(e env.Env) {
			for k := 0; k < 60 && violation == ""; k++ {
				for si := 0; si < numSets; si++ {
					var mustHave []int
					for i := 0; i < inserters; i++ {
						if insertedMark[i] && !removeStarted[i] {
							mustHave = append(mustHave, i)
						}
					}
					got := memberIDs(e, sets[si])
					for _, id := range mustHave {
						if !got[id] && !removeStarted[id] {
							violation = "set-regularity: missing item whose MultiInsert completed"
						}
					}
				}
			}
		})
		if err := sim.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violation != "" {
			t.Fatalf("seed %d: %s", seed, violation)
		}
		// After everything finished, all sets must be empty.
		e := env.NewNative(99, 1)
		for si := 0; si < numSets; si++ {
			if got := memberIDs(e, sets[si]); len(got) != 0 {
				t.Fatalf("seed %d: set %d not empty at quiescence: %v", seed, si, got)
			}
		}
	}
}

// TestRemovedInvisibleAfterResponse: once MultiRemove returns, no later
// GetSet may see the item.
func TestRemovedInvisibleAfterResponse(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		const numSets = 2
		sets := newSets(numSets, 4)
		sim := sched.New(sched.NewRandom(2, seed), seed)
		a := &item{id: 1}
		removedMark := false
		sim.Spawn(func(e env.Env) {
			slots := MultiInsert(e, a, sets)
			MultiRemove(e, a, sets, slots)
			removedMark = true
		})
		var violation bool
		sim.Spawn(func(e env.Env) {
			for k := 0; k < 50; k++ {
				wasRemoved := removedMark
				for si := 0; si < numSets; si++ {
					if memberIDs(e, sets[si])[1] && wasRemoved {
						violation = true
					}
				}
			}
		})
		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violation {
			t.Fatalf("seed %d: item visible after MultiRemove response", seed)
		}
	}
}

// TestOverlappingGetSetMayDisagree documents the paper's point that the
// multiset is set-regular, not linearizable: two GetSets overlapping
// two MultiInserts may see {a} and {b} respectively. We only assert
// that the harness tolerates either outcome (no invariant violation),
// exercising the overlap path.
func TestOverlappingGetSetTolerated(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		sets := newSets(1, 4)
		sim := sched.New(sched.NewRandom(4, seed), seed)
		a, b := &item{id: 1}, &item{id: 2}
		sim.Spawn(func(e env.Env) { MultiInsert(e, a, sets) })
		sim.Spawn(func(e env.Env) { MultiInsert(e, b, sets) })
		for r := 0; r < 2; r++ {
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 10; k++ {
					got := memberIDs(e, sets[0])
					if len(got) > 2 {
						t.Errorf("seed %d: snapshot larger than membership: %v", seed, got)
					}
				}
			})
		}
		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Quiescent check: both inserts completed, flags set ⇒ both visible.
		e := env.NewNative(99, 1)
		got := memberIDs(e, sets[0])
		if !got[1] || !got[2] {
			t.Fatalf("seed %d: quiescent snapshot missing items: %v", seed, got)
		}
	}
}

func TestGetSetAllocatesFreshSlice(t *testing.T) {
	e := env.NewNative(0, 1)
	sets := newSets(1, 4)
	a := &item{id: 1}
	MultiInsert(e, a, sets)
	g1 := GetSet[item, *item](e, sets[0])
	g2 := GetSet[item, *item](e, sets[0])
	if len(g1) != 1 || len(g2) != 1 {
		t.Fatalf("snapshots = %d, %d items", len(g1), len(g2))
	}
	g1[0] = nil
	if g2[0] == nil {
		t.Fatal("snapshots alias the same backing array")
	}
}
