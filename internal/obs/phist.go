// Package obs is the runtime observability layer behind the public
// wflocks instrumentation: concurrent per-P latency histograms, a
// sampled lock-free flight recorder for attempt lifecycle events, and
// the Recorder that ties them to the lock core's event hooks.
//
// Everything here is built for the hot path's constraints: recording is
// allocation-free, sharded so concurrent writers do not contend, and
// entirely absent (one nil check) when observability is disabled. The
// package deliberately depends only on internal/stats — the lock core
// imports obs, never the reverse — so the hooks can live at the lowest
// layer without a cycle.
package obs

import (
	"sync/atomic"

	"wflocks/internal/stats"
)

// HistSubBits is the shared histogram resolution: 32 sub-buckets per
// octave, ≤ 3.1% relative quantization error — the same shape the load
// harness uses, so merged views stay bucket-exact.
const HistSubBits = 5

// phistShard is one writer shard of a PHist. The scalar tallies are
// padded apart from the neighboring shard's; the bucket array is a
// separate allocation written almost exclusively by one P, so it needs
// no internal padding.
type phistShard struct {
	counts []atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	_      [88]byte // counts(24)+n+sum+max(24) = 48; pad to two cache lines
}

// PHist is a concurrent log-linear histogram: a padded per-P array of
// LogHist-shaped bucket counters, written with atomic adds and merged
// lazily into a plain stats.LogHist on Snapshot. Writers pick a shard
// by a cheap process index (pid & mask), so concurrent recorders land
// on distinct cache lines in the common case; the occasional collision
// costs a contended atomic add, never a lost update.
type PHist struct {
	shards []phistShard
	mask   uint64
}

// NewPHist creates a histogram with the given writer shard count,
// rounded up to a power of two (minimum 1).
func NewPHist(shards int) *PHist {
	n := 1
	for n < shards {
		n <<= 1
	}
	h := &PHist{shards: make([]phistShard, n), mask: uint64(n - 1)}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, stats.NumBuckets(HistSubBits))
	}
	return h
}

// Record adds one observation on the shard selected by pid. It is
// allocation-free and safe for concurrent use from any number of
// goroutines.
func (h *PHist) Record(pid int, v uint64) {
	sh := &h.shards[uint64(pid)&h.mask]
	sh.counts[stats.BucketIndexOf(HistSubBits, len(sh.counts), v)].Add(1)
	sh.n.Add(1)
	sh.sum.Add(v)
	for {
		cur := sh.max.Load()
		if v <= cur || sh.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count reports the total observations across all shards.
func (h *PHist) Count() uint64 {
	var n uint64
	for i := range h.shards {
		n += h.shards[i].n.Load()
	}
	return n
}

// Snapshot merges the shards into a point-in-time LogHist. Shards are
// read without stopping writers, so a snapshot under live traffic can
// be momentarily skewed exactly like StatsSnapshot; at quiescence it is
// exact.
func (h *PHist) Snapshot() *stats.LogHist {
	counts := make([]uint64, stats.NumBuckets(HistSubBits))
	var sum, max uint64
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			counts[b] += sh.counts[b].Load()
		}
		sum += sh.sum.Load()
		if m := sh.max.Load(); m > max {
			max = m
		}
	}
	return stats.NewLogHistFromCounts(HistSubBits, counts, sum, max)
}
