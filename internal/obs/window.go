package obs

import "time"

// Sample is one timestamped observation in a Window.
type Sample[T any] struct {
	At  time.Time
	Val T
}

// Window is a fixed-size ring of timestamped samples — the time-series
// layer under rate displays: poll a cumulative snapshot every interval,
// Add it, and the rate over the last N seconds is the delta between
// Latest and At(now - N) divided by their timestamp gap. Not safe for
// concurrent use; it belongs to one polling loop.
type Window[T any] struct {
	buf   []Sample[T]
	next  int
	count int
}

// NewWindow creates a window retaining the most recent capacity
// samples (minimum 2 — a rate needs two points).
func NewWindow[T any](capacity int) *Window[T] {
	if capacity < 2 {
		capacity = 2
	}
	return &Window[T]{buf: make([]Sample[T], capacity)}
}

// Add appends one sample, evicting the oldest when full.
func (w *Window[T]) Add(at time.Time, v T) {
	w.buf[w.next] = Sample[T]{At: at, Val: v}
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
}

// Len reports the number of retained samples.
func (w *Window[T]) Len() int { return w.count }

// Latest returns the most recent sample; ok is false when empty.
func (w *Window[T]) Latest() (s Sample[T], ok bool) {
	if w.count == 0 {
		return s, false
	}
	return w.buf[(w.next-1+len(w.buf))%len(w.buf)], true
}

// Oldest returns the oldest retained sample; ok is false when empty.
func (w *Window[T]) Oldest() (s Sample[T], ok bool) {
	if w.count == 0 {
		return s, false
	}
	if w.count < len(w.buf) {
		return w.buf[0], true
	}
	return w.buf[w.next], true
}

// At returns the newest retained sample whose timestamp is not after
// t — the far endpoint for a rate over the trailing window ending now.
// Falls back to the oldest sample when every retained sample is newer
// than t; ok is false only when the window is empty.
func (w *Window[T]) At(t time.Time) (s Sample[T], ok bool) {
	if w.count == 0 {
		return s, false
	}
	best, found := Sample[T]{}, false
	for i := 0; i < w.count; i++ {
		c := w.buf[(w.next-1-i+2*len(w.buf))%len(w.buf)]
		if !c.At.After(t) {
			return c, true
		}
		best, found = c, true
	}
	return best, found
}
