package obs

import (
	"sync"
	"testing"
	"time"

	"wflocks/internal/stats"
)

// TestPHistMergeOracle drives the same observation stream through a
// sharded PHist (spread across writer shards) and a single-goroutine
// LogHist and demands bucket-exact agreement on every summary the
// snapshot exposes.
func TestPHistMergeOracle(t *testing.T) {
	ph := NewPHist(8)
	oracle := stats.NewLogHist(HistSubBits)
	v := uint64(12345)
	for i := 0; i < 20000; i++ {
		v = v*6364136223846793005 + 1442695040888963407
		obs := v >> 34 // spread over ~2^30
		ph.Record(i&7, obs)
		oracle.Record(obs)
	}
	snap := ph.Snapshot()
	if snap.Count() != oracle.Count() {
		t.Fatalf("count: sharded %d, oracle %d", snap.Count(), oracle.Count())
	}
	if snap.Max() != oracle.Max() {
		t.Fatalf("max: sharded %d, oracle %d", snap.Max(), oracle.Max())
	}
	if snap.Mean() != oracle.Mean() {
		t.Fatalf("mean: sharded %v, oracle %v", snap.Mean(), oracle.Mean())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := snap.Quantile(q), oracle.Quantile(q); got != want {
			t.Fatalf("q%v: sharded %d, oracle %d", q, got, want)
		}
	}
}

// TestPHistConcurrent hammers one histogram from many goroutines (run
// under -race this is also the data-race proof) and checks no
// observation is lost.
func TestPHistConcurrent(t *testing.T) {
	ph := NewPHist(4)
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ph.Record(w, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := ph.Count(); got != writers*perWriter {
		t.Fatalf("lost observations: %d of %d", got, writers*perWriter)
	}
	snap := ph.Snapshot()
	if snap.Count() != writers*perWriter {
		t.Fatalf("snapshot count %d, want %d", snap.Count(), writers*perWriter)
	}
	if snap.Max() != perWriter-1 {
		t.Fatalf("snapshot max %d, want %d", snap.Max(), perWriter-1)
	}
}

// TestRingConcurrent appends from many goroutines while snapshotting
// concurrently: under -race this proves the slot discipline; the final
// quiescent snapshot must hold exactly the last window in sequence
// order with consistent payloads.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(256)
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot() // racing reads must never tear or fault
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(EvDelay, w, w+100, uint64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	evs := r.Snapshot()
	if len(evs) != r.Cap() {
		t.Fatalf("quiescent snapshot has %d events, want full ring %d", len(evs), r.Cap())
	}
	for i, ev := range evs {
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Fatalf("snapshot out of order at %d: %d then %d", i, evs[i-1].Seq, ev.Seq)
		}
		// Payload consistency: pid and lockID were written from the same
		// writer, so they must agree.
		if ev.LockID != ev.Pid+100 {
			t.Fatalf("torn event: pid %d with lockID %d", ev.Pid, ev.LockID)
		}
		if ev.Kind != EvDelay {
			t.Fatalf("event %d has kind %v", i, ev.Kind)
		}
	}
	// The retained window is (approximately — a stalled writer can
	// re-expose an older lap) the highest Cap() sequence numbers.
	total := uint64(writers * perWriter)
	if last := evs[len(evs)-1].Seq; last > total || last < total-uint64(2*r.Cap()) {
		t.Fatalf("newest seq %d, want near %d", last, total)
	}
}

// TestSamplingDeterminism pins the recorder's sampling contract: with
// rate R (a power of two) exactly every R-th SampleAttempt call returns
// true, independent of which goroutine asks — the counter is shared.
func TestSamplingDeterminism(t *testing.T) {
	r := NewRecorder(1, 4, 64)
	var picks []int
	for i := 1; i <= 16; i++ {
		if r.SampleAttempt() {
			picks = append(picks, i)
		}
	}
	want := []int{4, 8, 12, 16}
	if len(picks) != len(want) {
		t.Fatalf("sampled calls %v, want %v", picks, want)
	}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("sampled calls %v, want %v", picks, want)
		}
	}

	// Rate 1 samples everything; no recorder traces nothing.
	all := NewRecorder(1, 1, 64)
	for i := 0; i < 10; i++ {
		if !all.SampleAttempt() {
			t.Fatal("rate 1 must sample every attempt")
		}
	}
	off := NewRecorder(1, 0, 64)
	if off.Tracing() {
		t.Fatal("rate 0 must not attach a ring")
	}
	for i := 0; i < 10; i++ {
		if off.SampleAttempt() {
			t.Fatal("rate 0 must never sample")
		}
	}
}

// TestRecorderCounters checks the attempt-step accounting that feeds
// the delay-share metric.
func TestRecorderCounters(t *testing.T) {
	r := NewRecorder(2, 0, 0)
	r.EndAttempt(0, 7, 100, 30)
	r.EndAttempt(1, 7, 50, 0)
	r.RecHelp(0, 7, 700)
	if r.AttemptSteps() != 150 || r.DelaySteps() != 30 {
		t.Fatalf("steps %d/%d, want 150/30", r.AttemptSteps(), r.DelaySteps())
	}
	if r.HelpNanos() != 700 {
		t.Fatalf("help nanos %d, want 700", r.HelpNanos())
	}
	if n := r.Delay.Count(); n != 2 {
		t.Fatalf("delay hist count %d, want 2", n)
	}
	if r.Events() != nil {
		t.Fatal("no tracing: Events must be nil")
	}
}

// TestAttribution checks the per-lock stall-attribution rows: helps and
// their wall time key by the helped lock, delay steps by the charged
// attempt's first lock, and rows come back sorted by lock ID.
func TestAttribution(t *testing.T) {
	r := NewRecorder(2, 0, 0)
	r.RecHelp(0, 5, 1000)
	r.RecHelp(1, 5, 500)
	r.RecHelp(2, 3, 200)
	r.RecDelay(5, 40)
	r.RecDelay(9, 8)
	rows := r.Attrib()
	if len(rows) != 3 {
		t.Fatalf("attribution rows %v, want 3", rows)
	}
	if rows[0].LockID != 3 || rows[0].Helps != 1 || rows[0].HelpNanos != 200 {
		t.Fatalf("lock 3 row %+v", rows[0])
	}
	if rows[1].LockID != 5 || rows[1].Helps != 2 || rows[1].HelpNanos != 1500 || rows[1].DelaySteps != 40 {
		t.Fatalf("lock 5 row %+v", rows[1])
	}
	if rows[2].LockID != 9 || rows[2].DelaySteps != 8 {
		t.Fatalf("lock 9 row %+v", rows[2])
	}
}

// TestWatchdog checks both watchdog checks: a help run over the wall
// bound and an attempt over the delay-step bound each raise exactly one
// alert, land in the alert ring with the offending lock and value, and
// below-bound activity stays silent.
func TestWatchdog(t *testing.T) {
	r := NewRecorder(2, 0, 0)
	r.SetWatchdog(100, 1000, 16)

	r.RecHelp(0, 4, 999) // at/below bound: silent
	r.EndAttempt(0, 4, 500, 100)
	if r.StallAlerts() != 0 {
		t.Fatalf("below-bound activity raised %d alerts", r.StallAlerts())
	}

	r.RecHelp(1, 4, 5000)
	r.EndAttempt(2, 6, 900, 333)
	if r.StallAlerts() != 2 {
		t.Fatalf("alerts %d, want 2", r.StallAlerts())
	}
	evs := r.Alerts()
	if len(evs) != 2 {
		t.Fatalf("alert ring has %d events, want 2", len(evs))
	}
	if evs[0].Kind != EvAlertHelp || evs[0].LockID != 4 || evs[0].Value != 5000 {
		t.Fatalf("first alert %+v", evs[0])
	}
	if evs[1].Kind != EvAlertDelay || evs[1].LockID != 6 || evs[1].Value != 333 {
		t.Fatalf("second alert %+v", evs[1])
	}
	rows := r.Attrib()
	var found bool
	for _, a := range rows {
		if a.LockID == 4 && a.Alerts == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("lock 4 alert not attributed: %+v", rows)
	}

	// Disarmed recorder never alerts.
	off := NewRecorder(1, 0, 0)
	off.RecHelp(0, 1, 1<<40)
	off.EndAttempt(0, 1, 1<<40, 1<<40)
	if off.StallAlerts() != 0 || off.Alerts() != nil {
		t.Fatal("disarmed watchdog fired")
	}
}

// TestSpanRing checks publish/snapshot ordering and the ring's
// overwrite behaviour at capacity.
func TestSpanRing(t *testing.T) {
	r := NewSpanRing(0) // rounds up to the 64 minimum
	if r.Cap() != 64 {
		t.Fatalf("cap %d, want 64", r.Cap())
	}
	for i := 1; i <= 100; i++ {
		r.Publish(&Span{ID: uint64(i), Op: "GET", LockID: i % 4, ReadNS: int64(i)})
	}
	spans := r.Snapshot()
	if len(spans) != 64 {
		t.Fatalf("snapshot %d spans, want 64", len(spans))
	}
	for i, s := range spans {
		if want := uint64(37 + i); s.ID != want {
			t.Fatalf("span %d has ID %d, want %d (oldest surviving = 37)", i, s.ID, want)
		}
	}
}

// TestWindow checks the trailing-window sample lookup feeding rate
// computations.
func TestWindow(t *testing.T) {
	w := NewWindow[uint64](4)
	if _, ok := w.Latest(); ok {
		t.Fatal("empty window returned a sample")
	}
	base := timeAt(0)
	for i := 1; i <= 6; i++ {
		w.Add(timeAt(i), uint64(i*10))
	}
	if w.Len() != 4 {
		t.Fatalf("len %d, want 4", w.Len())
	}
	if s, _ := w.Latest(); s.Val != 60 {
		t.Fatalf("latest %d, want 60", s.Val)
	}
	if s, _ := w.Oldest(); s.Val != 30 {
		t.Fatalf("oldest %d, want 30 (1, 2 evicted)", s.Val)
	}
	// Exact hit, between-samples hit, and before-all fallback.
	if s, _ := w.At(timeAt(5)); s.Val != 50 {
		t.Fatalf("At(5) = %d, want 50", s.Val)
	}
	if s, _ := w.At(timeAt(4).Add(500)); s.Val != 40 {
		t.Fatalf("At(4.5) = %d, want 40", s.Val)
	}
	if s, _ := w.At(base); s.Val != 30 {
		t.Fatalf("At(0) fallback = %d, want oldest 30", s.Val)
	}
}

// timeAt builds deterministic test timestamps i seconds apart.
func timeAt(i int) time.Time { return time.Unix(1700000000+int64(i), 0) }
