package obs

import "sync/atomic"

// attribSlots is the size of the per-lock attribution table. Lock IDs
// hash in by low bits; two locks whose IDs collide modulo the table
// size share a slot (the slot remembers the most recent ID it saw, so
// a collision is visible as a changing id label, not silent). 512
// covers every realistic shard count — a 16-shard server uses 16 IDs.
const attribSlots = 512

// attribSlot accumulates the stall-attribution counters for one lock:
// how often attempts helped past a (possibly stalled) holder on it, how
// much wall time those help runs burned, how many delay-schedule steps
// it charged to bystanders, and how many watchdog alerts it triggered.
// Plain atomics, unpadded: these are keyed by lock, so contention on a
// slot mirrors contention on the lock itself and stays off the
// uncontended path entirely.
type attribSlot struct {
	id         atomic.Int64 // lockID+1; 0 = never written
	helps      atomic.Uint64
	helpNanos  atomic.Uint64
	delaySteps atomic.Uint64
	alerts     atomic.Uint64
}

// LockAttrib is one lock's decoded attribution counters.
type LockAttrib struct {
	// LockID is the lock the counters are attributed to (the most
	// recent ID to land in this table slot, see attribSlots).
	LockID int
	// Helps counts help runs that ran a still-undecided descriptor on
	// this lock to a decision — attempts pushed past a holder.
	Helps uint64
	// HelpNanos is the total wall time of those help runs: the
	// collateral cost the lock's holders imposed on bystanders.
	HelpNanos uint64
	// DelaySteps is the total delay-schedule steps attempts burned at
	// delay points while this was their first lock.
	DelaySteps uint64
	// Alerts counts watchdog excessions attributed to this lock.
	Alerts uint64
}

// attrib maps a lock ID to its table slot.
func (r *Recorder) attrib(lockID int) *attribSlot {
	s := &r.attribs[uint(lockID)%attribSlots]
	if s.id.Load() != int64(lockID)+1 {
		s.id.Store(int64(lockID) + 1)
	}
	return s
}

// Attrib snapshots the nonzero per-lock attribution rows, ordered by
// lock ID. Nil when no lock has been charged anything yet.
func (r *Recorder) Attrib() []LockAttrib {
	var out []LockAttrib
	for i := range r.attribs {
		s := &r.attribs[i]
		id := s.id.Load()
		if id == 0 {
			continue
		}
		a := LockAttrib{
			LockID:     int(id - 1),
			Helps:      s.helps.Load(),
			HelpNanos:  s.helpNanos.Load(),
			DelaySteps: s.delaySteps.Load(),
			Alerts:     s.alerts.Load(),
		}
		if a.Helps == 0 && a.DelaySteps == 0 && a.Alerts == 0 {
			continue
		}
		out = append(out, a)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].LockID > out[j].LockID; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// SetWatchdog arms the stall watchdog: any attempt charged more than
// maxDelaySteps delay-schedule steps, or any single help run longer
// than maxHelpNanos wall nanoseconds, increments StallAlerts, the
// offending lock's attribution row, and lands in the alert ring (last
// alertCap alerts, minimum ring granularity applies). A zero bound
// disables that check; calling with both bounds zero disarms the
// watchdog. Not safe to call concurrently with recording — arm it at
// configuration time.
func (r *Recorder) SetWatchdog(maxDelaySteps, maxHelpNanos uint64, alertCap int) {
	r.wdDelaySteps = maxDelaySteps
	r.wdHelpNanos = maxHelpNanos
	if (maxDelaySteps > 0 || maxHelpNanos > 0) && r.alertRing == nil {
		if alertCap <= 0 {
			alertCap = 64
		}
		r.alertRing = NewRing(alertCap)
	}
}

// Watchdog reports the armed bounds (zero = that check is off).
func (r *Recorder) Watchdog() (maxDelaySteps, maxHelpNanos uint64) {
	return r.wdDelaySteps, r.wdHelpNanos
}

// StallAlerts reports the total watchdog excessions recorded.
func (r *Recorder) StallAlerts() uint64 { return r.stallAlerts.Load() }

// Alerts snapshots the alert ring, oldest first; nil when the watchdog
// never fired or is disarmed.
func (r *Recorder) Alerts() []Event {
	if r.alertRing == nil {
		return nil
	}
	return r.alertRing.Snapshot()
}

// alert records one watchdog excession.
func (r *Recorder) alert(kind EventKind, pid, lockID int, value uint64) {
	r.stallAlerts.Add(1)
	r.attrib(lockID).alerts.Add(1)
	r.alertRing.Append(kind, pid, lockID, value)
}
