package obs

import (
	"sort"
	"sync"
)

// Span is one request's stage-timestamped trip through a serve
// pipeline: read/parse off the wire, slab admission, queue wait,
// worker execution (with the backend critical section inside), and the
// writer flush that puts the response back on the wire. All timestamps
// are wall-clock UnixNano; a zero timestamp means the request never
// reached that stage (e.g. a parse error retires the slot early).
//
// The span's correlation keys tie it to the lock layer: LockID is the
// backend shard lock the keyed operation ran under, so a span can be
// joined against the flight recorder's delay/help/win events for the
// same lock over the same interval — the causal answer to "why did
// this request wait".
//
// A span is stamped in place inside a serve slab slot by plain stores:
// each stage's writes are ordered by the pipeline's own happens-before
// edges (slot free-list → queue hand-off → done channel → writer), so
// no stage races another and the stamping costs no atomics.
type Span struct {
	// ID is the request's serve-assigned sequence number.
	ID uint64
	// Conn identifies the connection the request arrived on.
	Conn uint64
	// Slot is the slab slot the request occupied (the trace view's
	// thread lane: a slot holds one request at a time).
	Slot int
	// Worker is the pool worker that executed the request; -1 before
	// execution.
	Worker int
	// Op is the request verb ("GET", "SET", ...).
	Op string
	// LockID is the backend shard lock covering the request's key, or
	// -1 when the backend has no lock IDs (mutex baseline) or the
	// request carried no key.
	LockID int
	// KeyHash is the request key's hash (the shard selector), 0 when
	// keyless.
	KeyHash uint64

	// Stage timestamps, UnixNano, in pipeline order.
	ReadNS  int64 // request parsed off the wire
	AdmitNS int64 // slab slot acquired (admission gate passed)
	EnqNS   int64 // handed to the keyed work queue
	DeqNS   int64 // picked up by a worker
	ExecNS  int64 // backend call started (critical section entry)
	DoneNS  int64 // backend call returned, response ready
	WriteNS int64 // response flushed to the connection writer
}

// SpanRing is a fixed-size flight recorder of completed request spans:
// the writer side copies a finished span by value into a preallocated
// slot under a mutex (publication is once per request, on the
// connection-writer path where a lock is noise against the socket
// write), so steady-state recording allocates nothing.
type SpanRing struct {
	mu    sync.Mutex
	spans []Span
	next  uint64
}

// NewSpanRing creates a span recorder holding the most recent capacity
// spans (rounded up to a power of two, minimum 64).
func NewSpanRing(capacity int) *SpanRing {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &SpanRing{spans: make([]Span, n)}
}

// Cap reports the ring capacity.
func (r *SpanRing) Cap() int { return len(r.spans) }

// Publish records one completed span.
func (r *SpanRing) Publish(s *Span) {
	r.mu.Lock()
	r.spans[r.next&uint64(len(r.spans)-1)] = *s
	r.next++
	r.mu.Unlock()
}

// Snapshot returns the recorded spans ordered by request ID.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	n := r.next
	if n > uint64(len(r.spans)) {
		n = uint64(len(r.spans))
	}
	out := make([]Span, 0, n)
	for i := range r.spans {
		if r.spans[i].ReadNS != 0 {
			out = append(out, r.spans[i])
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
