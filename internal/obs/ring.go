package obs

import (
	"sync/atomic"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Attempt lifecycle events. A sampled attempt emits EvStart when its
// descriptor is published, EvFastPath if it observed every lock free
// and skipped the delay schedule, one EvDelay per delay point with the
// computed stall bound it was charged, one EvHelp per descriptor it ran
// to a decision during its helping phase (lock ID and wall duration in
// Value), and finally EvWin or EvLose.
const (
	EvStart EventKind = iota + 1
	EvFastPath
	EvDelay
	EvHelp
	EvWin
	EvLose
	// Watchdog alerts: emitted (into the separate alert ring) when an
	// attempt's charged delay steps (EvAlertDelay, Value = steps) or a
	// single help run's wall time (EvAlertHelp, Value = nanoseconds)
	// exceeded the configured watchdog bound. Unlike lifecycle events
	// these are not sampled — every excession alerts.
	EvAlertDelay
	EvAlertHelp
)

// String renders the kind for diagnostics.
func (k EventKind) String() string {
	switch k {
	case EvStart:
		return "start"
	case EvFastPath:
		return "fastpath"
	case EvDelay:
		return "delay"
	case EvHelp:
		return "help"
	case EvWin:
		return "win"
	case EvLose:
		return "lose"
	case EvAlertDelay:
		return "alert-delay"
	case EvAlertHelp:
		return "alert-help"
	}
	return "event(?)"
}

// Event is one decoded flight-recorder entry.
type Event struct {
	// Seq is the event's global sequence number (1-based, gap-free at
	// the writer; a snapshot sees the most recent window of them).
	Seq uint64
	// Kind is the lifecycle event.
	Kind EventKind
	// Pid is the emitting process (the attempt's owner).
	Pid int
	// LockID is the lock involved where one is (EvHelp: the helped
	// descriptor's first lock; EvStart: the attempt's first lock).
	LockID int
	// Value is the kind-specific payload: lock-set size for EvStart,
	// charged stall steps for EvDelay, help wall-duration nanoseconds
	// for EvHelp.
	Value uint64
	// UnixNano is the wall-clock timestamp.
	UnixNano int64
}

// slot is one ring entry: four atomic words, so concurrent append and
// snapshot are race-free by construction. seq doubles as the validity
// and consistency marker — a writer zeroes it, stores the payload
// words, then stores the claim number; a reader accepts a slot only
// when seq is nonzero and unchanged across its payload reads.
type slot struct {
	seq  atomic.Uint64
	meta atomic.Uint64 // kind | pid<<8 | lockID<<32
	val  atomic.Uint64
	ts   atomic.Int64
}

// Ring is the fixed-size lock-free flight recorder. Appends claim a
// global sequence number with one atomic add and overwrite the slot it
// maps to, so the ring always holds the most recent events and an
// append never blocks, allocates, or grows. A reader that races a
// writer on the same slot simply skips that slot (detected by the seq
// marker), and a slot being overwritten twice within one read is the
// only way to observe a torn event — which would need the ring to be
// lapped entirely mid-read; size the ring generously.
type Ring struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// NewRing creates a recorder with the given capacity, rounded up to a
// power of two (minimum 64).
func NewRing(capacity int) *Ring {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap reports the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Append records one event. Safe for concurrent use; never blocks.
func (r *Ring) Append(kind EventKind, pid, lockID int, value uint64) {
	seq := r.next.Add(1)
	s := &r.slots[seq&r.mask]
	s.seq.Store(0)
	s.meta.Store(uint64(kind) | uint64(uint32(pid))<<8&0xffffff00 | uint64(uint32(lockID))<<32)
	s.val.Store(value)
	s.ts.Store(time.Now().UnixNano())
	s.seq.Store(seq)
}

// Snapshot decodes the ring's current contents in sequence order,
// oldest first. Slots mid-write are skipped, so a snapshot under live
// traffic returns slightly fewer than Cap events.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		meta, val, ts := s.meta.Load(), s.val.Load(), s.ts.Load()
		if s.seq.Load() != seq {
			continue // torn by a concurrent writer
		}
		out = append(out, Event{
			Seq:      seq,
			Kind:     EventKind(meta & 0xff),
			Pid:      int(meta >> 8 & 0xffffff),
			LockID:   int(meta >> 32),
			Value:    val,
			UnixNano: ts,
		})
	}
	// Insertion sort by seq: snapshots are small and nearly ordered
	// (slot order is sequence order modulo one wrap boundary).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
