package obs

import "sync/atomic"

// padUint64 is an atomic counter padded to its own cache line, matching
// the core package's counter discipline: these are bumped on every
// attempt when metrics are on, and must not false-share.
type padUint64 struct {
	atomic.Uint64
	_ [56]byte
}

// Recorder is the per-manager observability hub. The lock core and the
// public API layer call its recording methods on their hot paths; all
// of them are allocation-free, and every one is guarded by the caller's
// single "is a recorder attached" nil check, so a manager without
// observability pays exactly one branch per attempt.
//
// The histograms are always live once a Recorder exists (WithMetrics);
// the flight recorder ring is present only when tracing was requested
// (WithTracing), and even then only the sampled 1/rate attempts emit
// events.
type Recorder struct {
	// Acquire records Do/Lock/Atomic acquisition latency in nanoseconds
	// (call start to winning attempt, retries included). Delay records
	// the delay-schedule steps charged to each attempt (its stall
	// iterations). Help records help-run wall durations in nanoseconds.
	Acquire *PHist
	Delay   *PHist
	Help    *PHist

	ring       *Ring
	sampleMask uint64
	ctr        atomic.Uint64

	// Stall watchdog (SetWatchdog): plain-word bounds armed at
	// configuration time, an excession counter, and a small dedicated
	// ring holding the last alerts. Zero bounds compile to two loads
	// and two never-taken branches on the recording paths.
	wdDelaySteps uint64
	wdHelpNanos  uint64
	alertRing    *Ring

	// Per-lock stall attribution, keyed by lockID modulo the table
	// size (see attribSlot).
	attribs [attribSlots]attribSlot

	_            [48]byte
	attemptSteps padUint64
	delaySteps   padUint64
	helpNanos    padUint64
	stallAlerts  padUint64
}

// NewRecorder creates a recorder with the given histogram shard count.
// sampleRate > 0 additionally attaches a flight recorder of ringCap
// events sampling one attempt in sampleRate (rounded up to a power of
// two); sampleRate 0 records histograms only.
func NewRecorder(histShards, sampleRate, ringCap int) *Recorder {
	r := &Recorder{
		Acquire: NewPHist(histShards),
		Delay:   NewPHist(histShards),
		Help:    NewPHist(histShards),
	}
	if sampleRate > 0 {
		n := 1
		for n < sampleRate {
			n <<= 1
		}
		r.sampleMask = uint64(n - 1)
		r.ring = NewRing(ringCap)
	}
	return r
}

// Tracing reports whether a flight recorder is attached.
func (r *Recorder) Tracing() bool { return r.ring != nil }

// SampleAttempt decides whether the next attempt is traced: every
// sampleRate-th call returns true (deterministic given call order,
// which is what the sampling-determinism test pins). Always false
// without tracing.
func (r *Recorder) SampleAttempt() bool {
	if r.ring == nil {
		return false
	}
	return r.ctr.Add(1)&r.sampleMask == 0
}

// TraceEvent appends one event for a sampled attempt. Callers guard
// with the attempt's sampling decision; the ring itself never blocks.
func (r *Recorder) TraceEvent(kind EventKind, pid, lockID int, value uint64) {
	r.ring.Append(kind, pid, lockID, value)
}

// RecAcquire records one winning acquisition's latency.
func (r *Recorder) RecAcquire(pid int, ns uint64) { r.Acquire.Record(pid, ns) }

// RecHelp records one help-run's wall duration, attributes it to the
// lock whose descriptor was helped, and fires the watchdog when the
// run exceeded the armed bound.
func (r *Recorder) RecHelp(pid, lockID int, ns uint64) {
	r.Help.Record(pid, ns)
	r.helpNanos.Add(ns)
	a := r.attrib(lockID)
	a.helps.Add(1)
	a.helpNanos.Add(ns)
	if bound := r.wdHelpNanos; bound > 0 && ns > bound {
		r.alert(EvAlertHelp, pid, lockID, ns)
	}
}

// RecDelay attributes delay-schedule steps burned at one delay point to
// the attempt's first lock. The per-attempt total still lands in the
// Delay histogram via EndAttempt.
func (r *Recorder) RecDelay(lockID int, steps uint64) {
	r.attrib(lockID).delaySteps.Add(steps)
}

// EndAttempt records one finished attempt: its total step count and the
// delay-schedule steps charged to it, firing the watchdog when the
// delay charge exceeded the armed bound.
func (r *Recorder) EndAttempt(pid, lockID int, steps, delaySteps uint64) {
	r.attemptSteps.Add(steps)
	r.delaySteps.Add(delaySteps)
	r.Delay.Record(pid, delaySteps)
	if bound := r.wdDelaySteps; bound > 0 && delaySteps > bound {
		r.alert(EvAlertDelay, pid, lockID, delaySteps)
	}
}

// AttemptSteps reports the total steps taken by finished attempts.
func (r *Recorder) AttemptSteps() uint64 { return r.attemptSteps.Load() }

// DelaySteps reports the steps burned in delay stalls — the numerator
// of the delay-time share.
func (r *Recorder) DelaySteps() uint64 { return r.delaySteps.Load() }

// HelpNanos reports the total wall time spent running other attempts'
// descriptors to a decision.
func (r *Recorder) HelpNanos() uint64 { return r.helpNanos.Load() }

// Events snapshots the flight recorder, oldest first; nil without
// tracing.
func (r *Recorder) Events() []Event {
	if r.ring == nil {
		return nil
	}
	return r.ring.Snapshot()
}
