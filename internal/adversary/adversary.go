// Package adversary implements the two adversaries of the paper's
// model (Section 2, Section 4) as reusable pieces for experiments:
//
//   - the adaptive *player* adversary, which sees the entire history
//     (including other attempts' revealed priorities, which live in
//     shared memory) and decides when each process starts a tryLock and
//     on which locks — modeled by Tracker (publish a running attempt's
//     descriptor for observation) and the Await* strategies;
//   - the oblivious *scheduler* adversary, which fixes the interleaving
//     before the execution — modeled by sched.Schedule builders
//     (PeriodicStalls and the sched package's primitives).
package adversary

import (
	"sync/atomic"

	"wflocks/internal/core"
	"wflocks/internal/env"
	"wflocks/internal/sched"
)

// Tracker publishes the descriptor of a process's current attempt so
// that an adaptive player adversary can observe it. Descriptor state
// (status, priority) is ordinary shared memory, so observing it is
// within the player adversary's power; the paper's fairness theorem
// must (and does) hold despite such observation.
type Tracker struct {
	cur atomic.Pointer[core.Descriptor]
}

// Publish makes d the currently observable attempt.
func (t *Tracker) Publish(d *core.Descriptor) { t.cur.Store(d) }

// Clear removes the published attempt.
func (t *Tracker) Clear() { t.cur.Store(nil) }

// Current returns the currently published descriptor, or nil.
func (t *Tracker) Current() *core.Descriptor { return t.cur.Load() }

// AwaitStrongRival stalls the calling process until the tracked rival
// has a revealed, still-active attempt whose priority is at least
// threshold — the moment the paper's Section 2 "ambush" narrative wants
// the victim to enter the game ("wait for other strong players to be in
// shared competitions, then start the player"). It gives up after
// maxStall steps and reports whether an ambush point was found.
func AwaitStrongRival(e env.Env, t *Tracker, threshold int64, maxStall uint64) bool {
	deadline := e.Steps() + maxStall
	for e.Steps() < deadline {
		e.Step()
		d := t.Current()
		if d == nil {
			continue
		}
		if d.Status() == core.StatusActive && d.Priority() >= threshold {
			return true
		}
	}
	return false
}

// AwaitPending stalls until the tracked process has an attempt that is
// published but not yet revealed (pending) — the window in which the
// Section 2 "overtaker" attack launches competitors that will overtake
// the victim. Gives up after maxStall steps.
func AwaitPending(e env.Env, t *Tracker, maxStall uint64) bool {
	deadline := e.Steps() + maxStall
	for e.Steps() < deadline {
		e.Step()
		d := t.Current()
		if d != nil && d.Status() == core.StatusActive && d.Priority() <= 0 {
			return true
		}
	}
	return false
}

// PeriodicStalls builds scheduler-adversary stall windows that freeze
// process pid for stallLen steps every period steps — the "stalled lock
// holder" pattern of experiment E8. The windows are fixed up front, so
// the schedule remains oblivious.
func PeriodicStalls(pid int, period, stallLen, horizon uint64, redirect int) []sched.StallWindow {
	var ws []sched.StallWindow
	for start := period; start < horizon; start += period + stallLen {
		ws = append(ws, sched.StallWindow{
			Pid:        pid,
			From:       start,
			To:         start + stallLen,
			Redirected: redirect,
		})
	}
	return ws
}

// ForeverFrom builds a single stall window freezing pid from step
// `from` onward — a crash failure in all but name (the paper's model
// allows arbitrary delay, so algorithms must tolerate it).
func ForeverFrom(pid int, from uint64, redirect int) []sched.StallWindow {
	return []sched.StallWindow{{Pid: pid, From: from, To: ^uint64(0), Redirected: redirect}}
}
