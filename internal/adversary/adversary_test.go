package adversary

import (
	"testing"

	"wflocks/internal/core"
	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/sched"
)

func newSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Kappa: 2, MaxLocks: 2, MaxThunkSteps: 32, DelayC: 4, DelayC1: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func noopThunk() *idem.Exec {
	return idem.NewExec(func(r *idem.Run) {}, 0)
}

func TestTrackerPublishClear(t *testing.T) {
	var tr Tracker
	if tr.Current() != nil {
		t.Fatal("fresh tracker not empty")
	}
	sys := newSystem(t)
	l := sys.NewLock()
	a := sys.NewAttempt([]*core.Lock{l}, noopThunk())
	tr.Publish(a.Descriptor())
	if tr.Current() != a.Descriptor() {
		t.Fatal("Publish not visible")
	}
	tr.Clear()
	if tr.Current() != nil {
		t.Fatal("Clear not visible")
	}
}

func TestAwaitStrongRivalFindsAmbushPoint(t *testing.T) {
	// Rival repeatedly attempts; watcher waits for a revealed active
	// rival attempt, which must eventually occur.
	sys := newSystem(t)
	l := sys.NewLock()
	var tr Tracker
	sim := sched.New(sched.RoundRobin{N: 2}, 3)
	found := false
	sim.Spawn(func(e env.Env) {
		for k := 0; k < 30; k++ {
			a := sys.NewAttempt([]*core.Lock{l}, noopThunk())
			tr.Publish(a.Descriptor())
			a.Run(e)
			tr.Clear()
		}
	})
	sim.Spawn(func(e env.Env) {
		found = AwaitStrongRival(e, &tr, 1, 1_000_000)
	})
	if err := sim.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("never observed a revealed active rival")
	}
}

func TestAwaitStrongRivalTimesOut(t *testing.T) {
	var tr Tracker
	e := env.NewNative(0, 1)
	if AwaitStrongRival(e, &tr, 1, 100) {
		t.Fatal("found rival with empty tracker")
	}
	if e.Steps() < 100 {
		t.Fatalf("gave up after %d steps, want >= 100", e.Steps())
	}
}

func TestAwaitPendingSeesPendingWindow(t *testing.T) {
	sys := newSystem(t)
	l := sys.NewLock()
	var tr Tracker
	sim := sched.New(sched.RoundRobin{N: 2}, 5)
	found := false
	sim.Spawn(func(e env.Env) {
		for k := 0; k < 10; k++ {
			a := sys.NewAttempt([]*core.Lock{l}, noopThunk())
			tr.Publish(a.Descriptor())
			a.Run(e)
			tr.Clear()
		}
	})
	sim.Spawn(func(e env.Env) {
		found = AwaitPending(e, &tr, 1_000_000)
	})
	if err := sim.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("never observed a pending attempt")
	}
}

func TestPeriodicStallsShape(t *testing.T) {
	ws := PeriodicStalls(2, 100, 50, 500, 0)
	if len(ws) == 0 {
		t.Fatal("no windows generated")
	}
	for _, w := range ws {
		if w.Pid != 2 || w.To-w.From != 50 || w.From >= 500 {
			t.Fatalf("bad window %+v", w)
		}
	}
	// Windows must not overlap.
	for i := 1; i < len(ws); i++ {
		if ws[i].From < ws[i-1].To {
			t.Fatalf("windows overlap: %+v then %+v", ws[i-1], ws[i])
		}
	}
}

func TestForeverFrom(t *testing.T) {
	ws := ForeverFrom(1, 42, 0)
	if len(ws) != 1 || ws[0].From != 42 || ws[0].To != ^uint64(0) {
		t.Fatalf("bad window %+v", ws[0])
	}
}

func TestAttemptRunTwicePanics(t *testing.T) {
	sys := newSystem(t)
	l := sys.NewLock()
	e := env.NewNative(0, 1)
	a := sys.NewAttempt([]*core.Lock{l}, noopThunk())
	a.Run(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	a.Run(e)
}
