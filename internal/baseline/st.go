package baseline

import (
	"sort"
	"sync/atomic"

	"wflocks/internal/env"
	"wflocks/internal/idem"
)

// ST implements Shavit and Touitou-style "selfish helping" locks
// (Section 3): static transactions acquire locks in a fixed order; a
// process that finds a lock taken helps the holder only if the holder
// already has everything it needs — if, while helping, it finds the
// holder blocked on a further lock, it *aborts* the holder instead of
// helping recursively. Aborted transactions release their locks and
// retry from scratch.
//
// The scheme is non-blocking (a stalled holder is either finished by
// helpers or aborted) but not wait-free, and the paper notes its worst
// case admits long chains of aborts; experiment E8 runs it next to the
// wait-free locks.
type ST struct {
	locks []stLock
}

type stLock struct {
	holder atomic.Pointer[stDesc]
}

// stDesc states.
const (
	stAcquiring int32 = iota + 1
	stWinning
	stAborted
	stDone
)

type stDesc struct {
	lockIdx []int // sorted
	thunk   *idem.Exec
	next    atomic.Int32
	state   atomic.Int32
}

// NewST creates n selfish-helping locks.
func NewST(n int) *ST {
	return &ST{locks: make([]stLock, n)}
}

// NumLocks reports the number of locks.
func (t *ST) NumLocks() int { return len(t.locks) }

// TryLocks acquires the locks at the given indices, runs the thunk
// exactly once, releases, and returns true. Internally the transaction
// may be aborted and restarted any number of times; the idempotent
// thunk runs once regardless.
func (t *ST) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	idx := append([]int(nil), lockIdx...)
	sort.Ints(idx)
	for {
		d := &stDesc{lockIdx: idx, thunk: thunk}
		d.state.Store(stAcquiring)
		if t.drive(e, d) {
			return true
		}
		// Aborted: retry with a fresh descriptor (same thunk).
	}
}

// drive attempts to push d to completion; it reports false if d was
// aborted.
func (t *ST) drive(e env.Env, d *stDesc) bool {
	for {
		e.Step()
		switch d.state.Load() {
		case stDone:
			return true
		case stAborted:
			t.releaseUpTo(e, d)
			return false
		case stWinning:
			// A helper promoted us (or our commit CAS won) but the
			// finish is not done yet; complete it ourselves.
			t.finish(e, d)
			return true
		}
		i := d.next.Load()
		if int(i) >= len(d.lockIdx) {
			// All locks held: commit. The winning state blocks late
			// aborts so the critical section runs under full ownership.
			e.Step()
			if d.state.CompareAndSwap(stAcquiring, stWinning) {
				t.finish(e, d)
				return true
			}
			continue // raced with an abort; loop re-reads the state
		}
		l := &t.locks[d.lockIdx[i]]
		e.Step()
		cur := l.holder.Load()
		switch {
		case cur == d:
			e.Step()
			d.next.CompareAndSwap(i, i+1)
		case cur == nil:
			e.Step()
			if l.holder.CompareAndSwap(nil, d) {
				e.Step()
				if d.state.Load() != stAcquiring {
					// Stale acquisition after an abort or completion:
					// undo. (A winning transaction holds all its locks,
					// so a successful install from nil cannot race the
					// commit.)
					e.Step()
					l.holder.CompareAndSwap(d, nil)
					continue
				}
				e.Step()
				d.next.CompareAndSwap(i, i+1)
			}
		default:
			t.meddle(e, cur, l)
		}
	}
}

// meddle is the selfish-helping rule applied to the holder of a wanted
// lock: finish it if it is already winning or done; abort it if it is
// still acquiring (blocked on some further lock).
func (t *ST) meddle(e env.Env, cur *stDesc, l *stLock) {
	e.Step()
	switch cur.state.Load() {
	case stDone:
		e.Step()
		l.holder.CompareAndSwap(cur, nil)
	case stWinning:
		t.finish(e, cur) // the holder has everything; help it commit
	case stAcquiring:
		if int(cur.next.Load()) >= len(cur.lockIdx) {
			// It only needs the commit CAS; give it a chance rather
			// than aborting a complete acquisition.
			e.Step()
			if cur.state.CompareAndSwap(stAcquiring, stWinning) {
				t.finish(e, cur)
			}
			return
		}
		e.Step()
		if cur.state.CompareAndSwap(stAcquiring, stAborted) {
			t.releaseUpTo(e, cur)
		}
	case stAborted:
		t.releaseUpTo(e, cur)
	}
}

// finish executes the winning transaction's thunk and releases its
// locks. Any process may call it (helping a winner is always safe).
func (t *ST) finish(e env.Env, d *stDesc) {
	d.thunk.Execute(e)
	e.Step()
	d.state.Store(stDone)
	t.releaseUpTo(e, d)
}

// releaseUpTo releases every lock d may hold.
func (t *ST) releaseUpTo(e env.Env, d *stDesc) {
	for _, li := range d.lockIdx {
		e.Step()
		t.locks[li].holder.CompareAndSwap(d, nil)
	}
}

// Held reports whether lock i is currently held. For tests.
func (t *ST) Held(i int) bool { return t.locks[i].holder.Load() != nil }
