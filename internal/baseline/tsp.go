package baseline

import (
	"sort"
	"sync/atomic"

	"wflocks/internal/env"
	"wflocks/internal/idem"
)

// TSP implements lock-free locks in the style of Turek, Shasha and
// Prakash [48] (and Barnes [9]): each lock stores a pointer to the
// descriptor of its current holder; a process that finds a lock taken
// helps the holder finish its whole transaction (recursively, if the
// holder is itself blocked on a further lock) and then releases the
// lock on the holder's behalf. Locks are acquired in a fixed global
// order (two-phase locking), so helping chains follow increasing lock
// indices and cannot cycle.
//
// Acquisition always eventually succeeds — these are blocking-semantics
// locks made lock-free, not tryLocks — so TryLocks always returns true.
// The system is lock-free but not wait-free: a single attempt can be
// overtaken arbitrarily often, and the paper's Section 3 estimates the
// amortized cost at O(p·T) per transaction, with no per-attempt bound.
// Experiment E8 measures exactly that contrast.
type TSP struct {
	locks []tspLock
	// helpDepthLimit bounds recursive helping; beyond it the helper
	// retries from scratch (the chain it was following has usually
	// collapsed by then).
	helpDepthLimit int
}

type tspLock struct {
	holder atomic.Pointer[tspDesc]
}

// tspDesc is a transaction descriptor: the sorted lock set, the
// idempotent thunk, acquisition progress, and a done flag.
type tspDesc struct {
	lockIdx []int // sorted
	sys     *TSP
	thunk   *idem.Exec
	next    atomic.Int32
	done    atomic.Bool
}

// NewTSP creates n lock-free locks.
func NewTSP(n int) *TSP {
	return &TSP{locks: make([]tspLock, n), helpDepthLimit: 64}
}

// NumLocks reports the number of locks.
func (t *TSP) NumLocks() int { return len(t.locks) }

// TryLocks acquires the locks at the given indices (helping as needed),
// runs the thunk exactly once, releases, and returns true. The thunk
// must be a fresh idem.Exec.
func (t *TSP) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	idx := append([]int(nil), lockIdx...)
	sort.Ints(idx)
	d := &tspDesc{lockIdx: idx, sys: t, thunk: thunk}
	t.complete(e, d, 0)
	return true
}

// complete drives d to done: acquire remaining locks in order, execute
// the thunk, release. Any process may run it (that is the helping).
func (t *TSP) complete(e env.Env, d *tspDesc, depth int) {
	for {
		e.Step()
		if d.done.Load() {
			return
		}
		i := d.next.Load()
		if int(i) >= len(d.lockIdx) {
			// All locks held by d: run the critical section, mark done,
			// then release. The idempotent thunk makes concurrent
			// completions by several helpers behave as one run, and
			// no lock is released before done is set, so no other
			// transaction can hold a shared lock during the thunk.
			d.thunk.Execute(e)
			e.Step()
			d.done.Store(true)
			for _, li := range d.lockIdx {
				e.Step()
				t.locks[li].holder.CompareAndSwap(d, nil)
			}
			return
		}
		l := &t.locks[d.lockIdx[i]]
		e.Step()
		cur := l.holder.Load()
		switch {
		case cur == d:
			e.Step()
			d.next.CompareAndSwap(i, i+1)
		case cur == nil:
			e.Step()
			if l.holder.CompareAndSwap(nil, d) {
				// A stale helper may install d after d finished; undo
				// so the lock is not leaked to a dead transaction.
				e.Step()
				if d.done.Load() {
					e.Step()
					l.holder.CompareAndSwap(d, nil)
					return
				}
				e.Step()
				d.next.CompareAndSwap(i, i+1)
			}
		case cur.done.Load():
			// The holder finished but its release is lagging: release
			// on its behalf.
			e.Step()
			l.holder.CompareAndSwap(cur, nil)
		default:
			if depth < t.helpDepthLimit {
				t.complete(e, cur, depth+1)
			}
			// else: retry; the chain will have moved.
		}
	}
}

// Holder reports whether lock i is currently held. For tests.
func (t *TSP) Held(i int) bool { return t.locks[i].holder.Load() != nil }
