package baseline

import (
	"errors"
	"testing"

	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/sched"
)

// counterThunk returns a fresh idempotent thunk incrementing ctr, plus
// the critical-section overlap detector used across algorithms.
func counterThunk(held, ctr, violation *idem.Cell) *idem.Exec {
	return idem.NewExec(func(r *idem.Run) {
		if r.Read(held) != 0 {
			r.Write(violation, 1)
		} else {
			r.Write(held, 1)
		}
		v := r.Read(ctr)
		r.Write(ctr, v+1)
		r.Write(held, 0)
	}, 8)
}

func TestTASSequential(t *testing.T) {
	e := env.NewNative(0, 1)
	tas := NewTAS(3)
	held, ctr, viol := idem.NewCell(0), idem.NewCell(0), idem.NewCell(0)
	for k := 0; k < 5; k++ {
		if !tas.TryLocks(e, []int{0, 2}, counterThunk(held, ctr, viol)) {
			t.Fatalf("uncontended TAS attempt %d failed", k)
		}
	}
	if got := ctr.Load(e); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	for i := 0; i < 3; i++ {
		if tas.Holder(i) != -1 {
			t.Fatalf("lock %d still held after release", i)
		}
	}
}

func TestTASFailFastReleasesPrefix(t *testing.T) {
	e := env.NewNative(0, 1)
	tas := NewTAS(3)
	// Hold lock 2 out-of-band: pid 7.
	tas.locks[2].word.Store(8)
	held, ctr, viol := idem.NewCell(0), idem.NewCell(0), idem.NewCell(0)
	if tas.TryLocks(e, []int{0, 1, 2}, counterThunk(held, ctr, viol)) {
		t.Fatal("attempt succeeded despite held lock")
	}
	if tas.Holder(0) != -1 || tas.Holder(1) != -1 {
		t.Fatal("failed attempt leaked acquired prefix")
	}
	if got := ctr.Load(e); got != 0 {
		t.Fatal("failed attempt ran its thunk")
	}
}

func TestTASConcurrentMutex(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		tas := NewTAS(4)
		held := make([]*idem.Cell, 4)
		ctr := make([]*idem.Cell, 4)
		for i := range held {
			held[i], ctr[i] = idem.NewCell(0), idem.NewCell(0)
		}
		viol := idem.NewCell(0)
		sim := sched.New(sched.NewRandom(4, seed), seed)
		wins := make([]int, 4)
		for i := 0; i < 4; i++ {
			i := i
			locks := []int{i, (i + 1) % 4}
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 10; k++ {
					th := idem.NewExec(func(r *idem.Run) {
						for _, li := range locks {
							if r.Read(held[li]) != 0 {
								r.Write(viol, 1)
							} else {
								r.Write(held[li], 1)
							}
						}
						for _, li := range locks {
							v := r.Read(ctr[li])
							r.Write(ctr[li], v+1)
						}
						for _, li := range locks {
							r.Write(held[li], 0)
						}
					}, 24)
					if tas.TryLocks(e, locks, th) {
						wins[i]++
					}
				}
			})
		}
		if err := sim.Run(10_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if viol.Load(e) != 0 {
			t.Fatalf("seed %d: TAS mutual exclusion violated", seed)
		}
		for li := 0; li < 4; li++ {
			want := uint64(wins[li] + wins[(li+3)%4]) // owners of lock li
			if got := ctr[li].Load(e); got != want {
				t.Fatalf("seed %d: lock %d counter = %d, want %d", seed, li, got, want)
			}
		}
	}
}

func TestTSPAlwaysSucceeds(t *testing.T) {
	e := env.NewNative(0, 1)
	tsp := NewTSP(3)
	held, ctr, viol := idem.NewCell(0), idem.NewCell(0), idem.NewCell(0)
	for k := 0; k < 5; k++ {
		if !tsp.TryLocks(e, []int{2, 0}, counterThunk(held, ctr, viol)) {
			t.Fatal("TSP reported failure")
		}
	}
	if got := ctr.Load(e); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	for i := 0; i < 3; i++ {
		if tsp.Held(i) {
			t.Fatalf("lock %d leaked", i)
		}
	}
}

func TestTSPConcurrentSerializesThunks(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		const procs = 4
		tsp := NewTSP(procs)
		held := make([]*idem.Cell, procs)
		ctr := make([]*idem.Cell, procs)
		for i := range held {
			held[i], ctr[i] = idem.NewCell(0), idem.NewCell(0)
		}
		viol := idem.NewCell(0)
		sim := sched.New(sched.NewRandom(procs, seed), seed)
		rounds := 6
		for i := 0; i < procs; i++ {
			i := i
			locks := []int{i, (i + 1) % procs}
			sim.Spawn(func(e env.Env) {
				for k := 0; k < rounds; k++ {
					th := idem.NewExec(func(r *idem.Run) {
						for _, li := range locks {
							if r.Read(held[li]) != 0 {
								r.Write(viol, 1)
							} else {
								r.Write(held[li], 1)
							}
						}
						for _, li := range locks {
							v := r.Read(ctr[li])
							r.Write(ctr[li], v+1)
						}
						for _, li := range locks {
							r.Write(held[li], 0)
						}
					}, 24)
					tsp.TryLocks(e, locks, th)
				}
			})
		}
		if err := sim.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if viol.Load(e) != 0 {
			t.Fatalf("seed %d: TSP critical sections overlapped", seed)
		}
		for li := 0; li < procs; li++ {
			// Lock li is used by processes li and (li-1+procs)%procs;
			// TSP always succeeds, so each ran `rounds` thunks.
			want := uint64(2 * rounds)
			if got := ctr[li].Load(e); got != want {
				t.Fatalf("seed %d: lock %d counter = %d, want %d", seed, li, got, want)
			}
		}
		for i := 0; i < procs; i++ {
			if tsp.Held(i) {
				t.Fatalf("seed %d: lock %d leaked", seed, i)
			}
		}
	}
}

func TestTSPHelpsStalledHolder(t *testing.T) {
	// Process 0 acquires and then stalls forever; process 1 must
	// complete 0's transaction and its own (lock-freedom via helping).
	for seed := uint64(1); seed <= 10; seed++ {
		tsp := NewTSP(1)
		ctr := idem.NewCell(0)
		schedule := &sched.Stalling{
			Base:    sched.NewRandom(2, seed),
			Windows: []sched.StallWindow{{Pid: 0, From: 40, To: ^uint64(0), Redirected: 1}},
		}
		sim := sched.New(schedule, seed)
		done1 := false
		sim.Spawn(func(e env.Env) {
			th := idem.NewExec(func(r *idem.Run) {
				v := r.Read(ctr)
				r.Write(ctr, v+1)
			}, 4)
			tsp.TryLocks(e, []int{0}, th)
		})
		sim.Spawn(func(e env.Env) {
			th := idem.NewExec(func(r *idem.Run) {
				v := r.Read(ctr)
				r.Write(ctr, v+10)
			}, 4)
			tsp.TryLocks(e, []int{0}, th)
			done1 = true
		})
		err := sim.Run(1_000_000)
		if err != nil && !errors.Is(err, sched.ErrStepLimit) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !done1 {
			t.Fatalf("seed %d: helper blocked by stalled holder", seed)
		}
	}
}

func TestSpinOrderedNoDeadlock(t *testing.T) {
	// Reversed lock orders would deadlock naive blocking acquisition;
	// ordered two-phase locking must not.
	for seed := uint64(1); seed <= 20; seed++ {
		sp := NewSpin(2)
		ctr := idem.NewCell(0)
		sim := sched.New(sched.NewRandom(2, seed), seed)
		orders := [][]int{{0, 1}, {1, 0}}
		for i := 0; i < 2; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 10; k++ {
					th := idem.NewExec(func(r *idem.Run) {
						v := r.Read(ctr)
						r.Write(ctr, v+1)
					}, 4)
					sp.TryLocks(e, orders[i], th)
				}
			})
		}
		if err := sim.Run(10_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if got := ctr.Load(e); got != 20 {
			t.Fatalf("seed %d: counter = %d, want 20", seed, got)
		}
	}
}

func TestSpinBlocksOnStalledHolder(t *testing.T) {
	// The blocking baseline must demonstrate the pathology the paper
	// motivates against: a stalled holder starves everyone.
	sp := NewSpin(1)
	ctr := idem.NewCell(0)
	schedule := &sched.Stalling{
		Base:    sched.RoundRobin{N: 2},
		Windows: []sched.StallWindow{{Pid: 0, From: 10, To: ^uint64(0), Redirected: 1}},
	}
	sim := sched.New(schedule, 1)
	done1 := false
	sim.Spawn(func(e env.Env) {
		th := idem.NewExec(func(r *idem.Run) {
			v := r.Read(ctr)
			env.StallSteps(r.Env(), 100) // long critical section
			r.Write(ctr, v+1)
		}, 4)
		sp.TryLocks(e, []int{0}, th)
	})
	sim.Spawn(func(e env.Env) {
		th := idem.NewExec(func(r *idem.Run) {
			v := r.Read(ctr)
			r.Write(ctr, v+1)
		}, 4)
		sp.TryLocks(e, []int{0}, th)
		done1 = true
	})
	err := sim.Run(100_000)
	if !errors.Is(err, sched.ErrStepLimit) {
		t.Fatalf("expected step-limit starvation, got %v", err)
	}
	if done1 {
		t.Fatal("spin lock contender succeeded past a stalled holder — not blocking?")
	}
}

func TestNumLocks(t *testing.T) {
	if NewTAS(5).NumLocks() != 5 || NewTSP(7).NumLocks() != 7 || NewSpin(3).NumLocks() != 3 {
		t.Fatal("NumLocks wrong")
	}
}
