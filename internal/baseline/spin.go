package baseline

import (
	"sort"
	"sync/atomic"

	"wflocks/internal/env"
	"wflocks/internal/idem"
)

// Spin is classic blocking two-phase locking: acquire every lock in
// index order by spinning on a CAS, run the critical section, release
// in reverse order. Deadlock-free (ordered acquisition) but blocking:
// if a holder is stalled by the scheduler, every contender spins
// forever. It is the throughput baseline for E10 and the starvation
// victim in E8.
type Spin struct {
	locks []spinLock
}

type spinLock struct {
	word atomic.Uint64
}

// NewSpin creates n spin locks.
func NewSpin(n int) *Spin {
	return &Spin{locks: make([]spinLock, n)}
}

// NumLocks reports the number of locks.
func (s *Spin) NumLocks() int { return len(s.locks) }

// TryLocks acquires the locks at the given indices (blocking), runs the
// thunk, releases, and returns true.
func (s *Spin) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	idx := append([]int(nil), lockIdx...)
	sort.Ints(idx)
	me := uint64(e.Pid()) + 1
	for _, i := range idx {
		for {
			e.Step()
			if s.locks[i].word.CompareAndSwap(0, me) {
				break
			}
		}
	}
	thunk.Execute(e)
	for k := len(idx) - 1; k >= 0; k-- {
		e.Step()
		s.locks[idx[k]].word.Store(0)
	}
	return true
}
