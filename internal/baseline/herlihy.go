package baseline

import (
	"sync/atomic"

	"wflocks/internal/env"
	"wflocks/internal/idem"
)

// Herlihy is a simplified Herlihy-style wait-free universal
// construction for a single lock (Section 3: "every philosopher can
// announce when they are hungry and then try to help all others in a
// round robin manner"). Each process announces its pending critical
// section in a P-slot array; everyone helps the announced sections
// through a single execution gate, preferring the slot named by a
// rotating turn counter so every announcement is eventually chosen.
//
// It is wait-free and deterministic, but its step complexity is O(P·T)
// per operation — proportional to the total number of processes, not
// the point contention. That gap is exactly the paper's motivation for
// the randomized construction (and for Afek et al.'s adaptive one), and
// experiment E8/E11 measures it.
type Herlihy struct {
	announce []atomic.Pointer[herlihyDesc]
	gate     atomic.Pointer[herlihyDesc]
	turn     atomic.Uint64
}

type herlihyDesc struct {
	thunk *idem.Exec
	done  atomic.Bool
}

// NewHerlihy creates the construction for p processes. Process ids must
// be in [0, p).
func NewHerlihy(p int) *Herlihy {
	return &Herlihy{announce: make([]atomic.Pointer[herlihyDesc], p)}
}

// NumProcs reports the announcement capacity.
func (h *Herlihy) NumProcs() int { return len(h.announce) }

// Do executes the thunk atomically with respect to all other Do calls
// (single global lock semantics). It always succeeds; the thunk must be
// a fresh idem.Exec.
func (h *Herlihy) Do(e env.Env, thunk *idem.Exec) {
	d := &herlihyDesc{thunk: thunk}
	pid := e.Pid() % len(h.announce)
	e.Step()
	h.announce[pid].Store(d)

	for !d.done.Load() {
		// One full round-robin pass over all P announcement slots,
		// helping every pending descriptor — the construction's cost is
		// inherently Θ(P) per operation even with no contention, which
		// is the gap the paper's adaptive bounds close.
		t := int(h.turn.Load()) % len(h.announce)
		for i := 0; i < len(h.announce); i++ {
			if q := h.pending(e, (t+i)%len(h.announce)); q != nil {
				h.driveGate(e, q)
			}
		}
	}
	e.Step()
	h.announce[pid].CompareAndSwap(d, nil)
}

// pending returns the announced, unfinished descriptor in slot i.
func (h *Herlihy) pending(e env.Env, i int) *herlihyDesc {
	e.Step()
	q := h.announce[i].Load()
	if q == nil {
		return nil
	}
	e.Step()
	if q.done.Load() {
		return nil
	}
	return q
}

// driveGate pushes target through the execution gate, helping whatever
// currently occupies it first.
func (h *Herlihy) driveGate(e env.Env, target *herlihyDesc) {
	e.Step()
	cur := h.gate.Load()
	if cur == nil {
		e.Step()
		if !h.gate.CompareAndSwap(nil, target) {
			return // somebody else installed; retry from the top
		}
		cur = target
	}
	// Execute and retire the gate occupant (idempotent, so concurrent
	// helpers are harmless).
	cur.thunk.Execute(e)
	e.Step()
	cur.done.Store(true)
	e.Step()
	h.turn.Add(1)
	e.Step()
	h.gate.CompareAndSwap(cur, nil)
}
