package baseline

import (
	"errors"
	"testing"

	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/sched"
)

func TestHerlihySequential(t *testing.T) {
	e := env.NewNative(0, 1)
	h := NewHerlihy(3)
	ctr := idem.NewCell(0)
	for k := 0; k < 5; k++ {
		h.Do(e, idem.NewExec(func(r *idem.Run) {
			v := r.Read(ctr)
			r.Write(ctr, v+1)
		}, 4))
	}
	if got := ctr.Load(e); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if h.NumProcs() != 3 {
		t.Fatal("NumProcs wrong")
	}
}

func TestHerlihyConcurrentExactlyOnce(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		const procs = 4
		const rounds = 5
		h := NewHerlihy(procs)
		ctr := idem.NewCell(0)
		held := idem.NewCell(0)
		viol := idem.NewCell(0)
		sim := sched.New(sched.NewRandom(procs, seed), seed)
		for i := 0; i < procs; i++ {
			sim.Spawn(func(e env.Env) {
				for k := 0; k < rounds; k++ {
					h.Do(e, idem.NewExec(func(r *idem.Run) {
						if r.Read(held) != 0 {
							r.Write(viol, 1)
						} else {
							r.Write(held, 1)
						}
						v := r.Read(ctr)
						r.Write(ctr, v+1)
						r.Write(held, 0)
					}, 8))
				}
			})
		}
		if err := sim.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if viol.Load(e) != 0 {
			t.Fatalf("seed %d: herlihy critical sections overlapped", seed)
		}
		if got := ctr.Load(e); got != procs*rounds {
			t.Fatalf("seed %d: counter = %d, want %d", seed, got, procs*rounds)
		}
	}
}

func TestHerlihySurvivesStalledProcess(t *testing.T) {
	// The construction is wait-free: a stalled gate occupant is helped.
	for seed := uint64(1); seed <= 10; seed++ {
		h := NewHerlihy(2)
		ctr := idem.NewCell(0)
		schedule := &sched.Stalling{
			Base:    sched.NewRandom(2, seed),
			Windows: []sched.StallWindow{{Pid: 0, From: 30, To: ^uint64(0), Redirected: 1}},
		}
		sim := sched.New(schedule, seed)
		done1 := false
		for i := 0; i < 2; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				h.Do(e, idem.NewExec(func(r *idem.Run) {
					v := r.Read(ctr)
					r.Write(ctr, v+1)
				}, 4))
				if i == 1 {
					done1 = true
				}
			})
		}
		err := sim.Run(1_000_000)
		if err != nil && !errors.Is(err, sched.ErrStepLimit) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !done1 {
			t.Fatalf("seed %d: live process blocked", seed)
		}
	}
}

func TestHerlihyStepsGrowWithP(t *testing.T) {
	// The motivating gap (Section 3): per-op steps scale with the total
	// number of processes P, even when actual contention is zero.
	measure := func(p int) uint64 {
		e := env.NewNative(0, 1)
		h := NewHerlihy(p)
		ctr := idem.NewCell(0)
		before := e.Steps()
		h.Do(e, idem.NewExec(func(r *idem.Run) {
			v := r.Read(ctr)
			r.Write(ctr, v+1)
		}, 4))
		return e.Steps() - before
	}
	small, large := measure(2), measure(64)
	// The scan reads every announcement slot, so going from P=2 to
	// P=64 must add at least one step per extra slot.
	if large < small+62 {
		t.Fatalf("steps did not grow with P: P=2 → %d, P=64 → %d", small, large)
	}
}

func TestSTSequential(t *testing.T) {
	e := env.NewNative(0, 1)
	st := NewST(3)
	ctr := idem.NewCell(0)
	for k := 0; k < 5; k++ {
		if !st.TryLocks(e, []int{2, 0}, idem.NewExec(func(r *idem.Run) {
			v := r.Read(ctr)
			r.Write(ctr, v+1)
		}, 4)) {
			t.Fatal("ST reported failure")
		}
	}
	if got := ctr.Load(e); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	for i := 0; i < 3; i++ {
		if st.Held(i) {
			t.Fatalf("lock %d leaked", i)
		}
	}
}

func TestSTConcurrentSerializes(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		const procs = 4
		st := NewST(procs)
		held := make([]*idem.Cell, procs)
		ctr := make([]*idem.Cell, procs)
		for i := range held {
			held[i], ctr[i] = idem.NewCell(0), idem.NewCell(0)
		}
		viol := idem.NewCell(0)
		sim := sched.New(sched.NewRandom(procs, seed), seed)
		const rounds = 5
		for i := 0; i < procs; i++ {
			i := i
			locks := []int{i, (i + 1) % procs}
			sim.Spawn(func(e env.Env) {
				for k := 0; k < rounds; k++ {
					st.TryLocks(e, locks, idem.NewExec(func(r *idem.Run) {
						for _, li := range locks {
							if r.Read(held[li]) != 0 {
								r.Write(viol, 1)
							} else {
								r.Write(held[li], 1)
							}
						}
						for _, li := range locks {
							v := r.Read(ctr[li])
							r.Write(ctr[li], v+1)
						}
						for _, li := range locks {
							r.Write(held[li], 0)
						}
					}, 24))
				}
			})
		}
		if err := sim.Run(100_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if viol.Load(e) != 0 {
			t.Fatalf("seed %d: ST critical sections overlapped", seed)
		}
		for li := 0; li < procs; li++ {
			if got := ctr[li].Load(e); got != 2*rounds {
				t.Fatalf("seed %d: lock %d counter = %d, want %d", seed, li, got, 2*rounds)
			}
		}
		for i := 0; i < procs; i++ {
			if st.Held(i) {
				t.Fatalf("seed %d: lock %d leaked", seed, i)
			}
		}
	}
}

func TestSTSurvivesStalledHolder(t *testing.T) {
	// A stalled transaction still acquiring gets aborted; a stalled
	// winner gets finished by helpers. Either way the others proceed.
	for seed := uint64(1); seed <= 15; seed++ {
		st := NewST(2)
		ctr := idem.NewCell(0)
		schedule := &sched.Stalling{
			Base:    sched.NewRandom(2, seed),
			Windows: []sched.StallWindow{{Pid: 0, From: 50, To: ^uint64(0), Redirected: 1}},
		}
		sim := sched.New(schedule, seed)
		done1 := false
		sim.Spawn(func(e env.Env) {
			st.TryLocks(e, []int{0, 1}, idem.NewExec(func(r *idem.Run) {
				v := r.Read(ctr)
				r.Write(ctr, v+1)
			}, 4))
		})
		sim.Spawn(func(e env.Env) {
			st.TryLocks(e, []int{0, 1}, idem.NewExec(func(r *idem.Run) {
				v := r.Read(ctr)
				r.Write(ctr, v+1)
			}, 4))
			done1 = true
		})
		err := sim.Run(2_000_000)
		if err != nil && !errors.Is(err, sched.ErrStepLimit) {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !done1 {
			t.Fatalf("seed %d: live process blocked by stalled ST holder", seed)
		}
	}
}
