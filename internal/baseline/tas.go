// Package baseline implements the comparison algorithms the paper's
// related-work section positions against (Section 3): a fail-fast
// test-and-set tryLock with no helping, Turek–Shasha–Prakash-style
// lock-free locks with helping (lock-free but not wait-free), and
// ordered blocking acquisition (two-phase locking). The experiment
// harness runs them on the same workloads as the wait-free locks to
// reproduce the paper's qualitative claims: without helping a stalled
// lock holder starves everyone, and with only lock-free helping the
// per-attempt step bound is unbounded.
package baseline

import (
	"sort"
	"sync/atomic"

	"wflocks/internal/env"
	"wflocks/internal/idem"
)

// TAS is a family of test-and-set locks with a fail-fast multi-lock
// tryLock: acquire each lock by CAS in index order, and on the first
// conflict release everything and fail. There is no helping, so a
// stalled holder blocks all success (the motivation for wait-free
// locks in Section 1).
type TAS struct {
	locks []tasLock
}

type tasLock struct {
	// word is 0 when free, owner pid + 1 when held.
	word atomic.Uint64
}

// NewTAS creates n test-and-set locks.
func NewTAS(n int) *TAS {
	return &TAS{locks: make([]tasLock, n)}
}

// NumLocks reports the number of locks.
func (t *TAS) NumLocks() int { return len(t.locks) }

// TryLocks attempts to acquire the locks at the given indices and run
// the thunk. It fails fast on any conflict. The thunk must be a fresh
// idem.Exec; it is executed at most once, by the winner itself.
func (t *TAS) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	idx := append([]int(nil), lockIdx...)
	sort.Ints(idx)
	me := uint64(e.Pid()) + 1
	for k, i := range idx {
		e.Step()
		if !t.locks[i].word.CompareAndSwap(0, me) {
			for _, j := range idx[:k] {
				e.Step()
				t.locks[j].word.Store(0)
			}
			return false
		}
	}
	thunk.Execute(e)
	for _, i := range idx {
		e.Step()
		t.locks[i].word.Store(0)
	}
	return true
}

// Holder reports the pid holding lock i, or -1 if free. For tests.
func (t *TAS) Holder(i int) int {
	w := t.locks[i].word.Load()
	if w == 0 {
		return -1
	}
	return int(w - 1)
}
