// Package arena provides process-private bump allocators that amortize
// hot-path allocations without ever recycling memory.
//
// The idempotence construction (internal/idem) and the lock protocol
// (internal/core) both rely on pointer freshness: an install CAS on a
// cell, or a helper's stale read of a published descriptor, is only
// safe because a pointer handed out once is never handed out again
// while any process could still hold the old reference (the ABA
// argument in idem's package docs). That rules out free-lists and
// sync.Pool for anything published to helpers. A bump arena keeps the
// invariant trivially — objects are carved out of a chunk in order and
// the chunk is abandoned when full, never rewound — while cutting the
// allocator cost to one heap allocation per chunk instead of one per
// object.
//
// The trade-off is retention granularity: the garbage collector frees a
// chunk only once every object in it is unreachable, so one long-lived
// object (a committed box in a long-lived cell) pins its chunk's dead
// siblings. Chunk sizes are kept small enough that this bounds waste to
// a few KiB per live object in the adversarial worst case, and in
// steady state mixed lifetimes mean chunks die quickly.
//
// An Arena must only be used by a single goroutine at a time; arenas
// live in per-process env scratch slots (env.Scratcher) or in
// per-goroutine pooled handles, both of which guarantee that.
package arena

// chunkObjs is the number of objects carved from each chunk. 256 keeps
// per-object amortized cost negligible while bounding the memory a
// single long-lived object can pin.
const chunkObjs = 256

// Arena is a bump allocator for values of type T. The zero value is
// ready to use.
type Arena[T any] struct {
	chunk []T
	n     int
}

// New returns a pointer to a fresh zero T. The pointer has never been
// returned before by any Arena and never will be again.
func (a *Arena[T]) New() *T {
	if a.n == len(a.chunk) {
		a.chunk = make([]T, chunkObjs)
		a.n = 0
	}
	p := &a.chunk[a.n]
	a.n++
	return p
}

// Slices is a bump allocator for small slices of type T. Like Arena,
// backing memory is abandoned, never reused, so a returned slice stays
// valid (and private to its requester) forever.
type Slices[T any] struct {
	chunk []T
	n     int
}

// sliceChunk is the backing-array length for slice chunks. Requests
// larger than this fall back to a direct make.
const sliceChunk = 1024

// Make returns a fresh zeroed slice of length n whose backing memory
// is never handed out twice.
func (s *Slices[T]) Make(n int) []T {
	return s.MakeCap(n)[:n]
}

// MakeCap returns a fresh zero-length slice with capacity n; appending
// up to n elements stays within the reserved region. Like Make, the
// backing memory is never handed out twice.
func (s *Slices[T]) MakeCap(n int) []T {
	if n > sliceChunk/4 {
		return make([]T, 0, n)
	}
	if s.n+n > len(s.chunk) {
		s.chunk = make([]T, sliceChunk)
		s.n = 0
	}
	out := s.chunk[s.n : s.n : s.n+n]
	s.n += n
	return out
}
