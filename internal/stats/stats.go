// Package stats provides the small statistical toolkit used by the
// experiment harness: summaries, percentiles, histograms, success-rate
// estimation, and Jain's fairness index.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var sum, sq float64
	for _, x := range sorted {
		sum += x
		sq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Percentile(sorted, 0.5),
		P90:    Percentile(sorted, 0.9),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending
// sorted sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SummarizeUint64 converts and summarizes an integer sample.
func SummarizeUint64(xs []uint64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Rate holds a Bernoulli success-rate estimate with a normal-
// approximation 95% confidence half-width.
type Rate struct {
	Successes int
	Trials    int
	P         float64
	CI95      float64
}

// NewRate estimates a success probability from counts.
func NewRate(successes, trials int) Rate {
	if trials == 0 {
		return Rate{}
	}
	p := float64(successes) / float64(trials)
	ci := 1.96 * math.Sqrt(p*(1-p)/float64(trials))
	return Rate{Successes: successes, Trials: trials, P: p, CI95: ci}
}

// String renders the rate as "0.512 ±0.010 (n=10000)".
func (r Rate) String() string {
	return fmt.Sprintf("%.4f ±%.4f (n=%d)", r.P, r.CI95, r.Trials)
}

// JainIndex computes Jain's fairness index of a non-negative allocation
// vector: (Σx)² / (n·Σx²). It is 1 for perfectly equal allocations and
// approaches 1/n under maximal skew.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Histogram is a fixed-bucket histogram over [Lo, Hi) with uniform
// bucket widths plus overflow/underflow buckets.
type Histogram struct {
	Lo, Hi    float64
	Buckets   []int
	Underflow int
	Overflow  int
}

// NewHistogram creates a histogram with n uniform buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Total reports the number of observations recorded, including
// overflow and underflow.
func (h *Histogram) Total() int {
	n := h.Underflow + h.Overflow
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// Mean of a float64 slice; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// ShardDist summarizes how a counter (attempts, ops, occupancy)
// distributes across the shards of a partitioned structure. Sharded
// subsystems report it so dashboards can tell "the keyspace is skewed"
// from "the map is overloaded" at a glance.
type ShardDist struct {
	// N is the shard count.
	N int
	// Total is the summed counter.
	Total uint64
	// Jain is Jain's fairness index of the distribution: 1 when every
	// shard carries the same load, approaching 1/N under maximal skew.
	Jain float64
	// MaxOverMean is the hottest shard's counter over the mean (1 when
	// perfectly balanced, N when one shard carries everything). Zero
	// total yields 0.
	MaxOverMean float64
}

// NewShardDist computes the distribution summary of per-shard counts.
func NewShardDist(counts []uint64) ShardDist {
	d := ShardDist{N: len(counts)}
	if len(counts) == 0 {
		return d
	}
	fs := make([]float64, len(counts))
	var max uint64
	for i, c := range counts {
		d.Total += c
		fs[i] = float64(c)
		if c > max {
			max = c
		}
	}
	d.Jain = JainIndex(fs)
	if d.Total > 0 {
		mean := float64(d.Total) / float64(len(counts))
		d.MaxOverMean = float64(max) / mean
	}
	return d
}

// MaxUint64 returns the maximum of xs, or 0 for an empty slice.
func MaxUint64(xs []uint64) uint64 {
	var m uint64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
