package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistBucketBounds(t *testing.T) {
	h := NewLogHist(5)
	// The unit region: each value below 32 is its own bucket.
	for v := uint64(0); v < 32; v++ {
		lo, hi := h.BucketBounds(int(v))
		if lo != v || hi != v+1 {
			t.Fatalf("unit bucket %d = [%d, %d), want [%d, %d)", v, lo, hi, v, v+1)
		}
	}
	// Buckets tile the value range: each bucket starts where the
	// previous ended, and widths double every octave.
	prevHi := uint64(0)
	for i := 0; i < h.Buckets(); i++ {
		lo, hi := h.BucketBounds(i)
		if lo != prevHi {
			t.Fatalf("bucket %d starts at %d, previous ended at %d", i, lo, prevHi)
		}
		if hi <= lo {
			t.Fatalf("bucket %d empty: [%d, %d)", i, lo, hi)
		}
		prevHi = hi
	}
	// Every value maps into the bucket whose bounds contain it.
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 - 1} {
		i := h.bucketIndex(v)
		lo, hi := h.BucketBounds(i)
		if v < lo || v >= hi {
			t.Fatalf("value %d mapped to bucket %d = [%d, %d)", v, i, lo, hi)
		}
	}
	// Relative bucket width stays within 2^-subBits of the lower bound
	// (outside the exact unit region).
	for i := 32; i < h.Buckets(); i++ {
		lo, hi := h.BucketBounds(i)
		if (hi-lo)*32 > lo {
			t.Fatalf("bucket %d = [%d, %d): width %d exceeds lo/32", i, lo, hi, hi-lo)
		}
	}
}

func TestLogHistQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		h := NewLogHist(5)
		n := 1000 + rng.Intn(9000)
		xs := make([]uint64, n)
		for i := range xs {
			// Log-uniform draws spanning ~6 orders of magnitude, the
			// shape of a tail-latency distribution.
			v := uint64(1) << uint(rng.Intn(30))
			v += uint64(rng.Int63n(int64(v)))
			xs[i] = v
			h.Record(v)
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
			got := h.Quantile(q)
			rank := int(q * float64(n))
			if rank >= n {
				rank = n - 1
			}
			want := xs[rank]
			// The histogram's guarantee: within one sub-bucket (3.125%)
			// of the true order statistic.
			tol := want/16 + 2 // 2× bucket width, + slack for tiny values
			if got+tol < want || got > want+tol {
				t.Fatalf("trial %d q=%g: Quantile = %d, oracle rank %d = %d (tol %d)",
					trial, q, got, rank, want, tol)
			}
		}
		if h.Max() != xs[n-1] {
			t.Fatalf("Max = %d, want %d", h.Max(), xs[n-1])
		}
		if h.Count() != uint64(n) {
			t.Fatalf("Count = %d, want %d", h.Count(), n)
		}
	}
}

func TestLogHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	whole := NewLogHist(5)
	parts := []*LogHist{NewLogHist(5), NewLogHist(5), NewLogHist(5)}
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << 24))
		whole.Record(v)
		parts[i%3].Record(v)
	}
	merged := NewLogHist(5)
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Max() != whole.Max() {
		t.Fatalf("merged count/max = %d/%d, want %d/%d",
			merged.Count(), merged.Max(), whole.Count(), whole.Max())
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("merged mean = %g, want %g", merged.Mean(), whole.Mean())
	}
	// Merging per-worker histograms is exact: every quantile of the
	// merged histogram equals the directly recorded one.
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Fatalf("q=%g: merged %d != whole %d", q, m, w)
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := merged.Count()
	merged.Merge(NewLogHist(5))
	merged.Merge(nil)
	if merged.Count() != before {
		t.Fatal("empty merge changed the count")
	}
}

func TestLogHistMergeShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging different sub-bucket shapes did not panic")
		}
	}()
	a, b := NewLogHist(5), NewLogHist(6)
	b.Record(1)
	a.Merge(b)
}

func TestLogHistClamp(t *testing.T) {
	h := NewLogHist(5)
	huge := uint64(1) << 60 // beyond the bucketed range
	h.Record(huge)
	if h.Max() != huge {
		t.Fatalf("Max = %d, want %d", h.Max(), huge)
	}
	if got := h.Quantile(1); got != huge {
		t.Fatalf("Quantile(1) = %d, want exact max %d", got, huge)
	}
	if got := h.Quantile(0.5); got != huge {
		t.Fatalf("Quantile(0.5) of a single clamped sample = %d, want %d", got, huge)
	}
}
