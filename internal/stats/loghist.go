package stats

import "math/bits"

// LogHist is an HDR-style log-linear histogram over non-negative
// integer observations (the load harness records nanosecond latencies
// in it). Buckets are arranged in octaves: values below the sub-bucket
// count land in exact unit buckets, and each further doubling of the
// value range is split into the same number of sub-buckets, so the
// relative quantization error is bounded by 1/sub everywhere — the
// property that makes p99.9 of a microsecond-to-seconds latency
// distribution meaningful without storing every sample.
//
// A LogHist is NOT safe for concurrent use: the load harness keeps one
// per worker and combines them with Merge, which is both faster and
// exact.
type LogHist struct {
	subBits uint // log2 of sub-buckets per octave
	counts  []uint64
	n       uint64
	max     uint64 // exact observed maximum
	sum     uint64
}

// logHistOctaves bounds the value range: with the conventional 5
// subBits (32 sub-buckets), the top bucket starts at 63·2^39 ns ≈ 9.6
// hours — any latency beyond that is clamped into it (and reported
// exactly by Max).
const logHistOctaves = 40

// NewLogHist creates a histogram with 2^subBits sub-buckets per octave
// (subBits in [1, 8]; 5 — 32 sub-buckets, ≤ 3.1% relative error — is
// the conventional choice).
func NewLogHist(subBits uint) *LogHist {
	if subBits < 1 || subBits > 8 {
		panic("stats: NewLogHist: subBits must be in [1, 8]")
	}
	sub := 1 << subBits
	return &LogHist{
		subBits: subBits,
		counts:  make([]uint64, (logHistOctaves+1)*sub),
	}
}

// bucketIndex maps a value to its bucket. Values below sub are their
// own bucket; a value in octave o (v in [sub<<o-1, sub<<o)) maps to
// sub-bucket (v >> (o-1)) - sub of that octave.
func (h *LogHist) bucketIndex(v uint64) int {
	return BucketIndexOf(h.subBits, len(h.counts), v)
}

// BucketIndexOf is the bucket math of LogHist as a standalone function,
// for callers (internal/obs's concurrent per-P histogram) that keep
// their own bucket arrays but must stay merge-compatible with LogHist.
// n is the bucket count, NumBuckets(subBits).
func BucketIndexOf(subBits uint, n int, v uint64) int {
	sub := uint64(1) << subBits
	if v < sub {
		return int(v)
	}
	o := uint(bits.Len64(v)) - subBits // octave ≥ 1
	i := int(uint64(o)<<subBits) + int(v>>(o-1)-sub)
	if i >= n {
		i = n - 1
	}
	return i
}

// NumBuckets reports the bucket-array length a LogHist with the given
// shape uses.
func NumBuckets(subBits uint) int {
	return (logHistOctaves + 1) * (1 << subBits)
}

// NewLogHistFromCounts reconstructs a LogHist from an externally
// maintained bucket array (laid out by BucketIndexOf) plus the exact
// sum and max. The counts slice is copied; n is derived from it.
func NewLogHistFromCounts(subBits uint, counts []uint64, sum, max uint64) *LogHist {
	h := NewLogHist(subBits)
	if len(counts) != len(h.counts) {
		panic("stats: NewLogHistFromCounts: bucket shapes differ")
	}
	copy(h.counts, counts)
	for _, c := range counts {
		h.n += c
	}
	h.sum = sum
	h.max = max
	return h
}

// BucketBounds reports bucket i's half-open value range [lo, hi): every
// recorded v with lo <= v < hi lands in bucket i (the final bucket also
// absorbs clamped values above the histogram's range).
func (h *LogHist) BucketBounds(i int) (lo, hi uint64) {
	sub := uint64(1) << h.subBits
	if uint64(i) < sub {
		return uint64(i), uint64(i) + 1
	}
	o := uint(i >> h.subBits) // octave ≥ 1
	m := uint64(i)&(sub-1) + sub
	return m << (o - 1), (m + 1) << (o - 1)
}

// Buckets reports the bucket count (for iterating BucketBounds).
func (h *LogHist) Buckets() int { return len(h.counts) }

// Record adds one observation.
func (h *LogHist) Record(v uint64) {
	h.counts[h.bucketIndex(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of observations recorded.
func (h *LogHist) Count() uint64 { return h.n }

// Max reports the exact maximum observation (0 when empty).
func (h *LogHist) Max() uint64 { return h.max }

// Mean reports the exact arithmetic mean (0 when empty).
func (h *LogHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Quantile reports the q-quantile (0 <= q <= 1) by locating the bucket
// holding the rank-⌈q·n⌉ observation and interpolating linearly inside
// it; the answer is within the bucket's width of the true order
// statistic (relative error ≤ 2^-subBits). The top quantile is capped
// at the exact Max. An empty histogram reports 0.
func (h *LogHist) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if seen+c > rank {
			if i == len(h.counts)-1 {
				// The final bucket absorbs clamped values, so its upper
				// bound is meaningless; the exact max is the best answer.
				return h.max
			}
			lo, hi := h.BucketBounds(i)
			// Interpolate the rank's position within the bucket.
			frac := float64(rank-seen) / float64(c)
			v := lo + uint64(frac*float64(hi-lo))
			if v > h.max {
				v = h.max
			}
			return v
		}
		seen += c
	}
	return h.max
}

// Sub returns a new histogram holding h minus o, bucket-wise — the
// distribution of observations recorded after the snapshot o was taken,
// assuming o is an earlier snapshot of the same stream (both must share
// subBits, or Sub panics). Buckets, count and sum subtract saturating
// at zero, so a slightly skewed pair of live snapshots degrades rather
// than wraps. Max cannot be subtracted and is kept from h: it is the
// lifetime maximum, an upper bound for the interval (quantiles clamp to
// it, so interval quantiles remain valid upper estimates). Both inputs
// are unchanged.
func (h *LogHist) Sub(o *LogHist) *LogHist {
	d := NewLogHist(h.subBits)
	if o == nil || o.n == 0 {
		d.Merge(h)
		return d
	}
	if o.subBits != h.subBits {
		panic("stats: LogHist.Sub: sub-bucket shapes differ")
	}
	for i, c := range h.counts {
		if prev := o.counts[i]; c > prev {
			d.counts[i] = c - prev
			d.n += c - prev
		}
	}
	if h.sum > o.sum {
		d.sum = h.sum - o.sum
	}
	d.max = h.max
	return d
}

// Merge folds o into h (bucket-exact: both histograms must share
// subBits, or Merge panics). o is unchanged.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.n == 0 {
		return
	}
	if o.subBits != h.subBits {
		panic("stats: LogHist.Merge: sub-bucket shapes differ")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
