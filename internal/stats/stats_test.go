package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if !almostEqual(s.Std, math.Sqrt(2), 1e-9) {
		t.Fatalf("std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P99 != 7 {
		t.Fatalf("unexpected single-element summary %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestPercentileBounds(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 1) != 40 {
		t.Fatal("percentile endpoints wrong")
	}
	if got := Percentile(xs, 0.5); !almostEqual(got, 25, 1e-9) {
		t.Fatalf("median = %v, want 25", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRate(t *testing.T) {
	r := NewRate(50, 100)
	if r.P != 0.5 {
		t.Fatalf("p = %v, want 0.5", r.P)
	}
	if r.CI95 <= 0 || r.CI95 > 0.2 {
		t.Fatalf("ci = %v out of sane range", r.CI95)
	}
	if NewRate(0, 0).Trials != 0 {
		t.Fatal("zero-trial rate should be zero value")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("equal allocation index = %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("max-skew index = %v, want 0.25", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Jain index should be 0")
	}
}

func TestJainIndexRange(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 0 && x < 1e100 {
				xs = append(xs, x)
			}
		}
		j := JainIndex(xs)
		return j >= 0 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Underflow, h.Overflow)
	}
	if h.Buckets[0] != 2 { // 0, 1.9
		t.Fatalf("bucket 0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[4] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi <= lo")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestMeanAndMax(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Fatalf("Mean = %v", got)
	}
	if MaxUint64(nil) != 0 {
		t.Fatal("MaxUint64(nil) != 0")
	}
	if got := MaxUint64([]uint64{3, 9, 1}); got != 9 {
		t.Fatalf("MaxUint64 = %d", got)
	}
}

func TestSummarizeUint64(t *testing.T) {
	s := SummarizeUint64([]uint64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Fatalf("summary %+v", s)
	}
}

func TestSummaryPercentilesOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShardDist(t *testing.T) {
	if d := NewShardDist(nil); d.N != 0 || d.Total != 0 || d.Jain != 0 || d.MaxOverMean != 0 {
		t.Fatalf("empty dist = %+v, want zeros", d)
	}
	if d := NewShardDist([]uint64{0, 0, 0}); d.Total != 0 || d.MaxOverMean != 0 {
		t.Fatalf("all-zero dist = %+v", d)
	}
	// Perfect balance.
	d := NewShardDist([]uint64{10, 10, 10, 10})
	if d.N != 4 || d.Total != 40 {
		t.Fatalf("dist = %+v", d)
	}
	if math.Abs(d.Jain-1) > 1e-12 || math.Abs(d.MaxOverMean-1) > 1e-12 {
		t.Fatalf("balanced dist: Jain=%v MaxOverMean=%v, want 1, 1", d.Jain, d.MaxOverMean)
	}
	// Maximal skew: Jain -> 1/N, MaxOverMean -> N.
	d = NewShardDist([]uint64{40, 0, 0, 0})
	if math.Abs(d.Jain-0.25) > 1e-12 || math.Abs(d.MaxOverMean-4) > 1e-12 {
		t.Fatalf("skewed dist: Jain=%v MaxOverMean=%v, want 0.25, 4", d.Jain, d.MaxOverMean)
	}
}
