package serve_test

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wflocks/internal/serve"
)

// startServer builds a server over a loopback listener and tears both
// down when the test ends.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Loopback) {
	t.Helper()
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	lis := serve.NewLoopback()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx) // double Shutdown errors; tests that drained already ignore this
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return s, lis
}

// client wraps one loopback connection with the protocol's client side.
type client struct {
	conn net.Conn
	br   *bufio.Reader
}

func dial(t *testing.T, lis *serve.Loopback) *client {
	t.Helper()
	conn, err := lis.Dial()
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, br: bufio.NewReader(conn)}
}

// do runs one command and returns the reply.
func (c *client) do(t *testing.T, args ...string) serve.Reply {
	t.Helper()
	if _, err := c.conn.Write(serve.AppendCommand(nil, args...)); err != nil {
		t.Fatalf("write %v: %v", args, err)
	}
	r, err := serve.ReadReply(c.br)
	if err != nil {
		t.Fatalf("read reply to %v: %v", args, err)
	}
	return r
}

func TestServeEndToEnd(t *testing.T) {
	for _, backend := range []string{serve.BackendMap, serve.BackendCache, serve.BackendMutex} {
		t.Run(backend, func(t *testing.T) {
			_, lis := startServer(t, serve.Config{Backend: backend, Workers: 4})
			c := dial(t, lis)

			if r := c.do(t, "PING"); r.Kind != serve.ReplySimple || r.Str != "PONG" {
				t.Fatalf("PING = %+v", r)
			}
			if r := c.do(t, "GET", "k"); r.Kind != serve.ReplyNull {
				t.Fatalf("GET missing = %+v, want null", r)
			}
			if r := c.do(t, "SET", "k", "hello"); r.Kind != serve.ReplySimple || r.Str != "OK" {
				t.Fatalf("SET = %+v", r)
			}
			if r := c.do(t, "GET", "k"); r.Kind != serve.ReplyBulk || r.Str != "hello" {
				t.Fatalf("GET = %+v, want bulk hello", r)
			}
			if r := c.do(t, "DEL", "k"); r.Kind != serve.ReplyInt || r.Int != 1 {
				t.Fatalf("DEL = %+v, want :1", r)
			}
			if r := c.do(t, "DEL", "k"); r.Kind != serve.ReplyInt || r.Int != 0 {
				t.Fatalf("second DEL = %+v, want :0", r)
			}
			// A command error answers -ERR and keeps the connection usable.
			if r := c.do(t, "NOPE"); r.Kind != serve.ReplyError {
				t.Fatalf("unknown command = %+v, want error", r)
			}
			if r := c.do(t, "PING"); r.Str != "PONG" {
				t.Fatalf("PING after error = %+v", r)
			}
			// STATS reports the backend and sane counters.
			r := c.do(t, "STATS")
			if r.Kind != serve.ReplyBulk || !strings.Contains(r.Str, "backend:"+backend) {
				t.Fatalf("STATS = %+v", r)
			}
		})
	}
}

func TestServePipelining(t *testing.T) {
	_, lis := startServer(t, serve.Config{Workers: 4})
	c := dial(t, lis)

	// Fire a burst of pipelined commands, then read every reply: they
	// must come back in request order even though workers run them
	// concurrently.
	const n = 64
	var buf []byte
	for i := 0; i < n; i++ {
		buf = serve.AppendCommand(buf, "SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < n; i++ {
		buf = serve.AppendCommand(buf, "GET", fmt.Sprintf("k%d", i))
	}
	if _, err := c.conn.Write(buf); err != nil {
		t.Fatalf("write burst: %v", err)
	}
	for i := 0; i < n; i++ {
		r, err := serve.ReadReply(c.br)
		if err != nil || r.Str != "OK" {
			t.Fatalf("SET %d reply = %+v, %v", i, r, err)
		}
	}
	for i := 0; i < n; i++ {
		r, err := serve.ReadReply(c.br)
		if err != nil || r.Kind != serve.ReplyBulk || r.Str != fmt.Sprintf("v%d", i) {
			t.Fatalf("GET %d reply = %+v, %v (order violated?)", i, r, err)
		}
	}
}

func TestServeTTL(t *testing.T) {
	_, lis := startServer(t, serve.Config{Backend: serve.BackendCache, Workers: 4})
	c := dial(t, lis)
	if r := c.do(t, "SET", "k", "v", "PX", "40"); r.Str != "OK" {
		t.Fatalf("SET PX = %+v", r)
	}
	if r := c.do(t, "GET", "k"); r.Kind != serve.ReplyBulk || r.Str != "v" {
		t.Fatalf("GET before expiry = %+v", r)
	}
	time.Sleep(60 * time.Millisecond)
	if r := c.do(t, "GET", "k"); r.Kind != serve.ReplyNull {
		t.Fatalf("GET after expiry = %+v, want null", r)
	}
}

func TestServeMapRejectsTTL(t *testing.T) {
	_, lis := startServer(t, serve.Config{Backend: serve.BackendMap, Workers: 4})
	c := dial(t, lis)
	if r := c.do(t, "SET", "k", "v", "PX", "40"); r.Kind != serve.ReplyError {
		t.Fatalf("SET PX on map backend = %+v, want error", r)
	}
}

func TestServeSizeBounds(t *testing.T) {
	_, lis := startServer(t, serve.Config{MaxKeyBytes: 8, MaxValBytes: 8, Workers: 4})
	c := dial(t, lis)
	if r := c.do(t, "SET", strings.Repeat("k", 9), "v"); r.Kind != serve.ReplyError {
		t.Fatalf("oversized key = %+v, want error", r)
	}
	if r := c.do(t, "SET", "k", strings.Repeat("v", 9)); r.Kind != serve.ReplyError {
		t.Fatalf("oversized value = %+v, want error", r)
	}
	// The connection survives both rejections.
	if r := c.do(t, "SET", "k", "v"); r.Str != "OK" {
		t.Fatalf("in-bounds SET after rejections = %+v", r)
	}
}

func TestServeMaxConns(t *testing.T) {
	_, lis := startServer(t, serve.Config{MaxConns: 1, Workers: 4})
	c1 := dial(t, lis)
	if r := c1.do(t, "PING"); r.Str != "PONG" {
		t.Fatalf("first conn PING = %+v", r)
	}
	c2 := dial(t, lis)
	r, err := serve.ReadReply(c2.br)
	if err != nil || r.Kind != serve.ReplyError || !strings.Contains(r.Str, "max connections") {
		t.Fatalf("second conn greeting = %+v, %v; want max-connections error", r, err)
	}
	// The refused conn is closed by the server.
	if _, err := serve.ReadReply(c2.br); err == nil {
		t.Fatal("refused connection still open")
	}
	// The first connection is unaffected.
	if r := c1.do(t, "PING"); r.Str != "PONG" {
		t.Fatalf("first conn after refusal = %+v", r)
	}
}

// TestServeClientVanishesMidPipeline covers the failed-flush path: a
// client pipelines a command whose worker is still inside the backend,
// then disconnects. The writer's flush fails while the response is
// being computed; the slot must not return to the free list until the
// worker is done with it, or another connection can reacquire it while
// the worker writes slot.resp and closes slot.done (data race, double
// close). A tiny slab maximizes reuse pressure; run under -race.
func TestServeClientVanishesMidPipeline(t *testing.T) {
	var mu sync.Mutex
	var gate chan struct{}
	entered := make(chan struct{}, 64)
	_, lis := startServer(t, serve.Config{
		Backend:     serve.BackendMutex,
		Workers:     4,
		QueueShards: 1,
		QueueDepth:  2, // slab of 2 slots: retired-too-early slots get reused immediately
		Stall: func() {
			mu.Lock()
			g := gate
			mu.Unlock()
			if g != nil {
				entered <- struct{}{}
				<-g
			}
		},
	})

	for i := 0; i < 25; i++ {
		g := make(chan struct{})
		mu.Lock()
		gate = g
		mu.Unlock()

		conn, err := lis.Dial()
		if err != nil {
			t.Fatalf("iter %d: Dial: %v", i, err)
		}
		// PING buffers an unflushed PONG ahead of the stalled SET, so
		// the writer reaches its flush-before-waiting branch with bytes
		// pending and the connection gone.
		buf := serve.AppendCommand(nil, "PING")
		buf = serve.AppendCommand(buf, "SET", fmt.Sprintf("k%d", i), "v")
		if _, err := conn.Write(buf); err != nil {
			t.Fatalf("iter %d: write: %v", i, err)
		}
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("iter %d: SET never reached the backend", i)
		}
		conn.Close()
		time.Sleep(time.Millisecond) // let the writer observe the dead connection

		mu.Lock()
		gate = nil
		mu.Unlock()
		close(g)

		// The service must still be intact: fresh connections get sane
		// replies and the abandoned SET was executed exactly once.
		c := dial(t, lis)
		if r := c.do(t, "SET", "probe", "ok"); r.Str != "OK" {
			t.Fatalf("iter %d: probe SET = %+v", i, r)
		}
		if r := c.do(t, "GET", fmt.Sprintf("k%d", i)); r.Kind != serve.ReplyBulk || r.Str != "v" {
			t.Fatalf("iter %d: abandoned SET lost: GET = %+v", i, r)
		}
		c.conn.Close()
	}
}

// TestServeForcedShutdownSaturated: a reader parked on slot acquisition
// (slab exhausted) must be released by a forced Shutdown even though no
// slot ever frees — otherwise the reader goroutine leaks past Shutdown.
func TestServeForcedShutdownSaturated(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	s, lis := startServer(t, serve.Config{
		Backend:     serve.BackendMutex,
		Workers:     4,
		QueueShards: 1,
		QueueDepth:  2, // slab of 2: the third in-flight SET parks its reader on <-free
		Stall: func() {
			entered <- struct{}{}
			<-gate
		},
	})
	t.Cleanup(func() { close(gate) })

	conn, err := lis.Dial()
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	var buf []byte
	for i := 0; i < 3; i++ {
		buf = serve.AppendCommand(buf, "SET", fmt.Sprintf("k%d", i), "v")
	}
	if _, err := conn.Write(buf); err != nil {
		t.Fatalf("write burst: %v", err)
	}
	// Two SETs hold both slots inside the backend; the third leaves the
	// reader blocked acquiring a slot.
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("SETs never reached the backend")
		}
	}
	time.Sleep(10 * time.Millisecond) // let the reader park on the free list

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: force the hard-shutdown path immediately
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("forced Shutdown = %v, want context.Canceled", err)
	}

	// The parked reader must exit even though both slots stay in flight
	// (the gate is still closed); poll the goroutine dump for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stacks := make([]byte, 1<<20)
		stacks = stacks[:runtime.Stack(stacks, true)]
		// Match a live handleConn frame ("handleConn(0x..."), not the
		// writer goroutine's "created by ...handleConn" ancestry line.
		if !strings.Contains(string(stacks), "handleConn(") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection reader still parked on slot acquisition after forced shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeGracefulDrain is the drain contract: a request already
// dispatched when Shutdown begins still completes and is written back;
// new connections are refused; Shutdown returns within its deadline.
// The mutex backend's stall hook gates the in-flight request so the
// test controls exactly when it finishes.
func TestServeGracefulDrain(t *testing.T) {
	gate := make(chan struct{})
	var entered sync.Once
	inFlight := make(chan struct{})
	s, lis := startServer(t, serve.Config{
		Backend: serve.BackendMutex,
		Workers: 4,
		Stall: func() {
			entered.Do(func() { close(inFlight) })
			<-gate
		},
	})

	c := dial(t, lis)
	if _, err := c.conn.Write(serve.AppendCommand(nil, "SET", "k", "v")); err != nil {
		t.Fatalf("write SET: %v", err)
	}
	// Wait until a worker holds the request inside the backend.
	select {
	case <-inFlight:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the backend")
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining: new connections are refused (the listener is closed).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := lis.Dial(); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("new connections still accepted while draining")
		}
		time.Sleep(time.Millisecond)
	}

	// The in-flight request must not have been dropped: release it and
	// expect its reply.
	close(gate)
	r, err := serve.ReadReply(c.br)
	if err != nil || r.Str != "OK" {
		t.Fatalf("in-flight SET reply after drain = %+v, %v", r, err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestServeJournal(t *testing.T) {
	s, lis := startServer(t, serve.Config{Backend: serve.BackendMap, Workers: 4, JournalCap: 256})
	jr := s.Journal()
	if jr == nil {
		t.Fatal("Journal() = nil with JournalCap set")
	}
	cur, err := jr.NewCursor()
	if err != nil {
		t.Fatalf("NewCursor: %v", err)
	}
	defer cur.Close()
	c := dial(t, lis)

	c.do(t, "SET", "a", "1")
	c.do(t, "SET", "b", "2")
	c.do(t, "DEL", "a")
	// A miss journals nothing: nothing was written.
	if r := c.do(t, "DEL", "nope"); r.Int != 0 {
		t.Fatalf("DEL miss = %+v", r)
	}

	// Three events, delivered as a set (distinct keys may land on
	// distinct shards, and the cursor interleaves shards)...
	var got []uint64
	for i := 0; i < 3; i++ {
		v, ok := cur.TryNext()
		if !ok {
			t.Fatalf("journal delivered only %d of 3 events", i)
		}
		got = append(got, v)
	}
	if _, ok := cur.TryNext(); ok {
		t.Fatal("journal delivered a fourth event")
	}
	want := map[uint64]int{
		serve.JournalEntry("a", true):  1,
		serve.JournalEntry("b", true):  1,
		serve.JournalEntry("a", false): 1,
	}
	for _, v := range got {
		if want[v] == 0 {
			t.Fatalf("unexpected journal event %#x", v)
		}
		want[v]--
	}
	// ...but one key's events stay in order: keyed appends pin "a" to
	// one shard, and shards deliver FIFO.
	var aEvents []uint64
	for _, v := range got {
		if v == serve.JournalEntry("a", true) || v == serve.JournalEntry("a", false) {
			aEvents = append(aEvents, v)
		}
	}
	if len(aEvents) != 2 || aEvents[0] != serve.JournalEntry("a", true) {
		t.Fatalf("key a's events out of order: %#x", aEvents)
	}

	r := c.do(t, "STATS")
	if !strings.Contains(r.Str, "journal_appends:3") || !strings.Contains(r.Str, "journal_dropped:0") {
		t.Fatalf("STATS missing journal lines:\n%s", r.Str)
	}
}

func TestServeJournalOff(t *testing.T) {
	s, lis := startServer(t, serve.Config{Backend: serve.BackendMap, Workers: 4})
	if s.Journal() != nil {
		t.Fatal("Journal() non-nil without JournalCap")
	}
	c := dial(t, lis)
	c.do(t, "SET", "a", "1")
	if r := c.do(t, "STATS"); strings.Contains(r.Str, "journal_") {
		t.Fatalf("STATS carries journal lines without a journal:\n%s", r.Str)
	}
}
