package loadgen_test

import (
	"context"
	"net"
	"testing"
	"time"

	"wflocks/internal/serve"
	"wflocks/internal/serve/loadgen"
)

// startServer runs a server over a loopback listener.
func startServer(t *testing.T, cfg serve.Config) func() (net.Conn, error) {
	t.Helper()
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	lis := serve.NewLoopback()
	done := make(chan struct{})
	go func() { defer close(done); s.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-done
	})
	return lis.Dial
}

func TestLoadgenBasic(t *testing.T) {
	dial := startServer(t, serve.Config{Backend: serve.BackendMap, Workers: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := loadgen.Run(ctx, dial, loadgen.Config{
		Rate:     2000,
		Duration: 200 * time.Millisecond,
		Conns:    4,
		Keys:     64,
		GetPct:   70, SetPct: 25, DelPct: 5,
		Prefill: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Total.Sent == 0 || res.Total.Done != res.Total.Sent {
		t.Fatalf("sent %d, done %d; want all sent ops answered", res.Total.Sent, res.Total.Done)
	}
	if res.Total.Errors != 0 {
		t.Fatalf("%d protocol errors", res.Total.Errors)
	}
	// The per-op breakdown partitions the total.
	var sum uint64
	for _, part := range res.PerOp {
		sum += part.Done
		if part.Hist.Count() != part.Done {
			t.Fatalf("per-op histogram count %d != done %d", part.Hist.Count(), part.Done)
		}
	}
	if sum != res.Total.Done {
		t.Fatalf("per-op dones sum to %d, total %d", sum, res.Total.Done)
	}
	// Percentiles are ordered and the aggregate histogram is complete.
	if res.Total.Hist.Count() != res.Total.Done {
		t.Fatalf("aggregate histogram count %d != done %d", res.Total.Hist.Count(), res.Total.Done)
	}
	p50, p99 := res.Quantile(0.50), res.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
	if res.AchievedRate <= 0 {
		t.Fatalf("achieved rate %g", res.AchievedRate)
	}
}

func TestLoadgenRejectsBadMix(t *testing.T) {
	dial := startServer(t, serve.Config{Workers: 4})
	_, err := loadgen.Run(context.Background(), dial, loadgen.Config{
		Rate: 100, Duration: time.Millisecond, GetPct: 50, SetPct: 30, DelPct: 30,
	})
	if err == nil {
		t.Fatal("mix summing to 110 accepted")
	}
}

// TestLoadgenCoordinatedOmission is the harness's reason to exist: when
// the server stalls, the recorded latency must include the queueing
// delay every scheduled-but-unserved request suffered — not just the
// stalled operation's own service time, which is all a closed-loop
// (send, wait, send) client would see.
func TestLoadgenCoordinatedOmission(t *testing.T) {
	const stall = 5 * time.Millisecond
	dial := startServer(t, serve.Config{
		Backend: serve.BackendMutex,
		Workers: 4,
		Stall:   func() { time.Sleep(stall) },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Arrivals every 2ms against a single key whose every write holds
	// the backend for 5ms: the queue grows by ~3ms per arrival, so the
	// tail of the schedule waits tens of milliseconds. A
	// coordinated-omission-blind harness would report ~5ms throughout.
	res, err := loadgen.Run(ctx, dial, loadgen.Config{
		Rate:     500,
		Duration: 200 * time.Millisecond,
		Conns:    2,
		Keys:     1,
		GetPct:   0, SetPct: 100, DelPct: 0,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Total.Done != res.Total.Sent {
		t.Fatalf("sent %d, done %d", res.Total.Sent, res.Total.Done)
	}
	// The median already includes accumulated queueing delay, several
	// times the per-op service time.
	if p50 := res.Quantile(0.50); p50 < 4*stall {
		t.Fatalf("p50 = %v; open-loop accounting should show ≥ %v of queueing delay", p50, 4*stall)
	}
	// And the tail is far beyond what any single op costs.
	if p99 := res.Quantile(0.99); p99 < 10*stall {
		t.Fatalf("p99 = %v; the backlogged tail should exceed %v", p99, 10*stall)
	}
}
