// Package loadgen is the coordinated-omission-safe load harness for
// the wfserve service.
//
// It is an open-loop generator: every operation's send time is
// scheduled ahead of the run from a fixed arrival rate, and each
// operation's latency is measured from its *intended* send time, not
// from when the sender actually managed to write it. The distinction
// is the whole point. A closed-loop client (send, wait, send) slows
// down exactly when the server slows down, so a 100ms server stall
// that should have delayed dozens of queued requests is recorded as
// one slow operation — the coordinated-omission trap, which makes a
// stalling server look far better than its users experience. Here the
// schedule does not care how the server is doing: if the server
// stalls, requests pile up behind it and every one of them records the
// queueing delay it actually suffered.
package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"wflocks/internal/env"
	"wflocks/internal/serve"
	"wflocks/internal/stats"
	"wflocks/internal/workload"
)

// Config shapes one load run.
type Config struct {
	// Rate is the aggregate arrival rate in operations per second.
	Rate float64
	// Duration is how long arrivals are scheduled for; the run lasts
	// until the last scheduled operation's reply arrives (or ctx ends).
	Duration time.Duration
	// Conns is the number of client connections; arrivals round-robin
	// across them (default 4).
	Conns int
	// Keys is the keyspace size (default 1024); keys are "k000000042".
	Keys int
	// Skew is the Zipf exponent for key choice (0 = uniform).
	Skew float64
	// GetPct, SetPct and DelPct are the operation mix in percent; they
	// must sum to 100 (default 90/10/0).
	GetPct, SetPct, DelPct int
	// ValBytes sizes SET values (default 16).
	ValBytes int
	// Prefill, when true, stores every key once before the timed run so
	// GETs hit.
	Prefill bool
	// SlowConns marks the first n connections as slow clients: their
	// readers sleep SlowDelay before consuming each reply, modelling a
	// consumer that cannot keep up. The server's per-connection
	// backpressure is what keeps such clients from hurting the others;
	// the slow connections' own recorded latencies include their
	// self-inflicted delay.
	SlowConns int
	SlowDelay time.Duration
	// Seed makes the key/op streams reproducible (default 1).
	Seed uint64
}

// withDefaults fills unset fields and validates the mix.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Rate <= 0 {
		return cfg, fmt.Errorf("loadgen: rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return cfg, fmt.Errorf("loadgen: duration must be positive, got %v", cfg.Duration)
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 4
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 1024
	}
	if cfg.GetPct == 0 && cfg.SetPct == 0 && cfg.DelPct == 0 {
		cfg.GetPct, cfg.SetPct = 90, 10
	}
	if cfg.GetPct < 0 || cfg.SetPct < 0 || cfg.DelPct < 0 ||
		cfg.GetPct+cfg.SetPct+cfg.DelPct != 100 {
		return cfg, fmt.Errorf("loadgen: op mix %d/%d/%d must be non-negative and sum to 100",
			cfg.GetPct, cfg.SetPct, cfg.DelPct)
	}
	if cfg.ValBytes <= 0 {
		cfg.ValBytes = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg, nil
}

// OpResult aggregates one operation type's outcomes.
type OpResult struct {
	Sent, Done, Errors uint64
	// Hist holds latencies in nanoseconds, measured from intended send
	// time.
	Hist *stats.LogHist
}

// Result is one run's outcome.
type Result struct {
	// Total aggregates all operation types; PerOp breaks them out.
	Total OpResult
	PerOp map[serve.Op]*OpResult
	// Elapsed is wall time from first intended send to last reply;
	// AchievedRate is Total.Done / Elapsed.
	Elapsed      time.Duration
	IntendedRate float64
	AchievedRate float64
}

// Quantile reads a latency quantile from the aggregate histogram.
func (r *Result) Quantile(q float64) time.Duration {
	return time.Duration(r.Total.Hist.Quantile(q))
}

// histSubBits is the histograms' resolution: 32 sub-buckets per octave,
// ≤ 3.1% relative quantization error.
const histSubBits = 5

// op is one scheduled operation.
type op struct {
	kind     serve.Op
	intended time.Duration // offset from run start
}

// connResult is one connection's tally, merged after the run.
type connResult struct {
	perOp map[serve.Op]*OpResult
	err   error
}

func newPerOp() map[serve.Op]*OpResult {
	m := make(map[serve.Op]*OpResult, 3)
	for _, k := range []serve.Op{serve.OpGet, serve.OpSet, serve.OpDel} {
		m[k] = &OpResult{Hist: stats.NewLogHist(histSubBits)}
	}
	return m
}

// Run drives one open-loop load run against a server reached through
// dial (TCP or the in-process loopback — the harness cannot tell the
// difference).
func Run(ctx context.Context, dial func() (net.Conn, error), cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	conns := make([]net.Conn, cfg.Conns)
	for i := range conns {
		c, err := dial()
		if err != nil {
			for _, c := range conns[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("loadgen: dial conn %d: %w", i, err)
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	if cfg.Prefill {
		if err := prefill(conns[0], cfg); err != nil {
			return nil, fmt.Errorf("loadgen: prefill: %w", err)
		}
	}

	// Schedule every arrival ahead of the run: operation i is due at
	// i/rate, on connection i%conns. The schedule is immutable from
	// here on — nothing the server does can slow it down.
	total := int(cfg.Rate * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	schedules := make([][]op, cfg.Conns)
	rng := env.NewRNG(cfg.Seed)
	for i := 0; i < total; i++ {
		schedules[i%cfg.Conns] = append(schedules[i%cfg.Conns], op{
			kind:     pickOp(rng, &cfg),
			intended: time.Duration(i) * interval,
		})
	}

	results := make([]connResult, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i, conn := range conns {
		wg.Add(1)
		var slow time.Duration
		if i < cfg.SlowConns {
			slow = cfg.SlowDelay
		}
		go func(i int, conn net.Conn, slow time.Duration) {
			defer wg.Done()
			results[i] = runConn(ctx, conn, schedules[i], start, &cfg, cfg.Seed+uint64(i)*7919, slow)
		}(i, conn, slow)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{
		Total:        OpResult{Hist: stats.NewLogHist(histSubBits)},
		PerOp:        newPerOp(),
		Elapsed:      elapsed,
		IntendedRate: cfg.Rate,
	}
	for i := range results {
		if results[i].err != nil && err == nil {
			err = results[i].err
		}
		for kind, part := range results[i].perOp {
			agg := res.PerOp[kind]
			agg.Sent += part.Sent
			agg.Done += part.Done
			agg.Errors += part.Errors
			agg.Hist.Merge(part.Hist)
			res.Total.Sent += part.Sent
			res.Total.Done += part.Done
			res.Total.Errors += part.Errors
			res.Total.Hist.Merge(part.Hist)
		}
	}
	if elapsed > 0 {
		res.AchievedRate = float64(res.Total.Done) / elapsed.Seconds()
	}
	return res, err
}

// pickOp draws one operation kind from the configured mix.
func pickOp(rng *env.RNG, cfg *Config) serve.Op {
	r := rng.IntN(100)
	switch {
	case r < cfg.GetPct:
		return serve.OpGet
	case r < cfg.GetPct+cfg.SetPct:
		return serve.OpSet
	default:
		return serve.OpDel
	}
}

// prefill stores every key once, sequentially, before the clock starts.
func prefill(conn net.Conn, cfg Config) error {
	br := bufio.NewReader(conn)
	val := Val(cfg.ValBytes)
	var buf []byte
	for k := 0; k < cfg.Keys; k++ {
		buf = serve.AppendCommand(buf[:0], "SET", Key(k), val)
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		if r, err := serve.ReadReply(br); err != nil {
			return err
		} else if r.Kind == serve.ReplyError {
			return fmt.Errorf("server rejected prefill: %s", r.Str)
		}
	}
	return nil
}

// Key renders key rank k the way the generator does — exported so a
// harness prefilling a server's backend directly produces keys the run
// will actually hit.
func Key(k int) string { return fmt.Sprintf("k%09d", k) }

// Val builds the deterministic n-byte SET payload.
func Val(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = 'a' + byte(i%26)
	}
	return string(b)
}

// runConn drives one connection: a sender paces the schedule while the
// reader matches replies FIFO (the protocol is ordered per connection)
// and records each latency against the operation's intended time.
func runConn(ctx context.Context, conn net.Conn, sched []op, start time.Time, cfg *Config, seed uint64, slow time.Duration) connResult {
	res := connResult{perOp: newPerOp()}
	if len(sched) == 0 {
		return res
	}
	zipf := workload.NewZipf(cfg.Keys, cfg.Skew)
	rng := env.NewRNG(seed)
	val := Val(cfg.ValBytes)

	sendErr := make(chan error, 1)
	go func() {
		var buf []byte
		for i := range sched {
			// Open loop: sleep until the intended send time, never
			// until the server is ready. A sleep for a time already
			// past returns immediately, so a backlogged sender
			// naturally pipelines.
			if d := time.Until(start.Add(sched[i].intended)); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					sendErr <- ctx.Err()
					return
				}
			}
			key := Key(zipf.Sample(rng))
			switch sched[i].kind {
			case serve.OpGet:
				buf = serve.AppendCommand(buf[:0], "GET", key)
			case serve.OpSet:
				buf = serve.AppendCommand(buf[:0], "SET", key, val)
			default:
				buf = serve.AppendCommand(buf[:0], "DEL", key)
			}
			res.perOp[sched[i].kind].Sent++ // reader only looks after wg
			if _, err := conn.Write(buf); err != nil {
				sendErr <- err
				return
			}
		}
		sendErr <- nil
	}()

	// Cancellation reaches a blocked reader through the deadline.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go func() {
		select {
		case <-ctx.Done():
			conn.SetReadDeadline(time.Now())
		case <-stopWatch:
		}
	}()

	// The reader walks the same schedule: reply i answers operation i.
	br := bufio.NewReader(conn)
	var readErr error
	for i := range sched {
		if slow > 0 {
			time.Sleep(slow)
		}
		r, err := serve.ReadReply(br)
		if err != nil {
			readErr = err
			break
		}
		lat := time.Since(start.Add(sched[i].intended))
		if lat < 0 {
			lat = 0
		}
		tally := res.perOp[sched[i].kind]
		tally.Done++
		if r.Kind == serve.ReplyError {
			tally.Errors++
		}
		tally.Hist.Record(uint64(lat))
	}
	if readErr != nil {
		conn.Close() // unblock a sender still writing into a dead pipeline
	}
	if err := <-sendErr; err != nil && res.err == nil {
		res.err = err
	}
	if readErr != nil && res.err == nil {
		// The sender finishing cleanly but the reader failing is a real
		// error; a reader stopping because the context canceled the
		// sender is expected.
		res.err = readErr
	}
	return res
}
