package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wflocks"
	"wflocks/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the trace-export golden file")

// goldenSpans is a deterministic request history: two complete requests
// sharing slab slot 0 back to back, one on slot 1 that never reached a
// worker (enqueue refused at shutdown), all times hand-picked so the
// GET on lock 5 overlaps the help run on lock 5 below.
func goldenSpans() []obs.Span {
	ms := func(m int64) int64 { return m * int64(time.Millisecond) }
	return []obs.Span{
		{ID: 1, Conn: 1, Slot: 0, Worker: 2, Op: "GET", LockID: 5, KeyHash: 0xabcd,
			ReadNS: ms(10), AdmitNS: ms(10) + 50_000, EnqNS: ms(10) + 50_000,
			DeqNS: ms(11), ExecNS: ms(11) + 20_000, DoneNS: ms(14), WriteNS: ms(15)},
		{ID: 2, Conn: 1, Slot: 0, Worker: 0, Op: "SET", LockID: 7, KeyHash: 0x1234,
			ReadNS: ms(16), AdmitNS: ms(16) + 10_000, EnqNS: ms(16) + 10_000,
			DeqNS: ms(17), ExecNS: ms(17) + 5_000, DoneNS: ms(18), WriteNS: ms(19)},
		{ID: 3, Conn: 2, Slot: 1, Worker: -1, Op: "DEL", LockID: 5, KeyHash: 0xabcd,
			ReadNS: ms(20), AdmitNS: ms(20) + 1_000, EnqNS: ms(20) + 1_000,
			WriteNS: ms(21)},
	}
}

// goldenObs is the matching lock-layer window: an attempt on lock 5
// starts, burns a delay point, helps a stalled descriptor for 2ms
// (the slice [12ms, 14ms] inside request 1's [10ms, 15ms] span), wins;
// plus one watchdog alert for the same help run.
func goldenObs() wflocks.ObsSnapshot {
	at := func(m int64) time.Time { return time.Unix(0, m*int64(time.Millisecond)) }
	return wflocks.ObsSnapshot{
		Enabled: true,
		Events: []wflocks.TraceEvent{
			{Seq: 1, Kind: "start", Pid: 3, LockID: 5, Value: 1, Time: at(11)},
			{Seq: 2, Kind: "delay", Pid: 3, LockID: 5, Value: 40, Time: at(12)},
			{Seq: 3, Kind: "help", Pid: 3, LockID: 5, Value: 2_000_000, Time: at(14)},
			{Seq: 4, Kind: "win", Pid: 3, LockID: 5, Time: at(14)},
			{Seq: 5, Kind: "fastpath", Pid: 4, LockID: 7, Time: at(17)},
		},
		Alerts: []wflocks.TraceEvent{
			{Seq: 1, Kind: "alert-help", Pid: 3, LockID: 5, Value: 2_000_000, Time: at(14)},
		},
	}
}

// TestTraceGolden pins the Chrome trace-event export byte for byte
// (regenerate with go test -run TestTraceGolden -update) and checks
// the schema properties Perfetto needs: known phases, non-negative
// microsecond timestamps, per-lane ordering, sound nesting, and the
// causal join the export exists for — a request span overlapping a
// help event on the same lock id.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTrace(&buf, goldenSpans(), goldenObs()); err != nil {
		t.Fatalf("writeTrace: %v", err)
	}

	golden := filepath.Join("testdata", "wftrace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export diverged from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Schema: parse it back and audit what a trace viewer relies on.
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	type lane struct{ pid, tid int }
	lastTs := map[lane]float64{}
	open := map[lane]traceEvent{}
	var reqSpans, helpSlices []traceEvent
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "X", "i":
		default:
			t.Fatalf("event %d has unknown phase %q", i, ev.Ph)
		}
		if ev.Pid != tracePidRequests && ev.Pid != tracePidLocks {
			t.Fatalf("event %d has unmapped pid %d", i, ev.Pid)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %d has negative time: ts %v dur %v", i, ev.Ts, ev.Dur)
		}
		l := lane{ev.Pid, ev.Tid}
		if ev.Ts < lastTs[l] {
			t.Fatalf("event %d (%s) breaks lane (%d,%d) ts monotonicity: %v after %v",
				i, ev.Name, ev.Pid, ev.Tid, ev.Ts, lastTs[l])
		}
		lastTs[l] = ev.Ts
		if ev.Ph == "X" {
			// Slices on one lane must nest or be disjoint.
			if o, ok := open[l]; ok && ev.Ts < o.Ts+o.Dur && ev.Ts+ev.Dur > o.Ts+o.Dur {
				t.Fatalf("event %d (%s) half-overlaps %s on lane (%d,%d)", i, ev.Name, o.Name, ev.Pid, ev.Tid)
			}
			if ev.Ts+ev.Dur > lastTs[l] {
				open[l] = ev
			}
			if ev.Pid == tracePidRequests && ev.Name != "queue" && ev.Name != "exec" {
				reqSpans = append(reqSpans, ev)
			}
			if ev.Pid == tracePidLocks && ev.Name == "help" {
				helpSlices = append(helpSlices, ev)
			}
		}
	}
	if len(reqSpans) != 3 || len(helpSlices) != 1 {
		t.Fatalf("got %d request spans and %d help slices, want 3 and 1", len(reqSpans), len(helpSlices))
	}

	// The causal join: at least one request span overlaps a help slice
	// on the same lock id.
	overlap := false
	for _, sp := range reqSpans {
		for _, h := range helpSlices {
			if sp.Args["lock"] == h.Args["lock"] &&
				sp.Ts < h.Ts+h.Dur && h.Ts < sp.Ts+sp.Dur {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatal("no request span overlaps a help slice on its lock")
	}
}

// TestTraceEmpty pins the no-data document: spans off, metrics off —
// still a valid trace with just the process metadata.
func TestTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeTrace(&buf, nil, wflocks.ObsSnapshot{}); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("empty export has %d events, want the 2 metadata entries", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			t.Fatalf("empty export contains non-metadata event %+v", ev)
		}
	}
}
