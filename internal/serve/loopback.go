package serve

import (
	"errors"
	"net"
	"sync"
)

// Loopback is an in-process net.Listener built on net.Pipe: Dial hands
// one end to the caller and delivers the other to Accept. The server,
// the load generator and the tests all run against it without opening
// a real port, so CI exercises the full protocol path — parsing,
// pipelining, deadlines (net.Pipe supports them) — with none of the
// sandbox or flakiness cost of TCP.
type Loopback struct {
	mu     sync.Mutex
	queue  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

// NewLoopback creates a loopback listener.
func NewLoopback() *Loopback {
	return &Loopback{
		queue:  make(chan net.Conn),
		closed: make(chan struct{}),
	}
}

// errLoopbackClosed mimics the net.ErrClosed shape Accept loops test for.
var errLoopbackClosed = errors.New("serve: loopback listener closed")

// Dial connects a new client, returning its end of the pipe. It blocks
// until the server Accepts (net.Pipe is synchronous) or the listener
// closes.
func (l *Loopback) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.queue <- server:
		return client, nil
	case <-l.closed:
		client.Close()
		server.Close()
		return nil, errLoopbackClosed
	}
}

// Accept implements net.Listener.
func (l *Loopback) Accept() (net.Conn, error) {
	select {
	case c := <-l.queue:
		return c, nil
	case <-l.closed:
		return nil, errLoopbackClosed
	}
}

// Close implements net.Listener. Safe to call more than once.
func (l *Loopback) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

// loopbackAddr satisfies net.Addr for Loopback.
type loopbackAddr struct{}

func (loopbackAddr) Network() string { return "loopback" }
func (loopbackAddr) String() string  { return "loopback" }

// Addr implements net.Listener.
func (l *Loopback) Addr() net.Addr { return loopbackAddr{} }
