package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wflocks"
)

// Backend is the storage a Server executes requests against. The three
// implementations are the wait-free Map (the durable-KV shape: full is
// an error), the wait-free Cache (the caching shape: full evicts, TTL
// honored), and a sharded mutex map — the design a conventional Go
// service would use, kept as the head-to-head baseline for the
// holder-stall tail-latency comparison.
type Backend interface {
	// Get reports the value stored for key.
	Get(key string) (string, bool)
	// Set stores val for key. A positive ttl asks for per-entry expiry;
	// backends that cannot expire reject it with a client-visible error.
	Set(key, val string, ttl time.Duration) error
	// Del removes key, reporting whether it was present.
	Del(key string) bool
	// LockID reports the ID of the shard lock key's operations run
	// under — the correlation key joining request spans to the flight
	// recorder's lock events — or -1 for backends without lock IDs
	// (mutex). A pure hash computation; no lock is taken.
	LockID(key string) int
	// Name identifies the backend in STATS output.
	Name() string
}

// errNoTTL is the client-visible rejection for TTL'd SETs against a
// backend without expiry.
var errNoTTL = protoErrorf("backend does not support PX")

// TableShardInfo is one backend shard's occupancy and probe shape, for
// the metrics exposition. Tombstones/MaxProbe/SumProbe are zero for
// backends without an open-addressed region (mutex).
type TableShardInfo struct {
	Size, Capacity                 int
	Tombstones, MaxProbe, SumProbe int
}

// tableStatser is the optional Backend extension feeding the /metrics
// per-shard table series.
type tableStatser interface {
	TableShards() []TableShardInfo
}

// hookCodec wraps a value codec so every Encode first calls hook — the
// generic form of the benchmark harness's stall-injection codec. Value
// encodes happen inside the structures' critical sections (bucket and
// result-cell writes), so the hook lands exactly where a preempted
// holder would hold a blocking design up; the mutex backend calls the
// same hook while holding its shard lock, keeping the injection
// symmetric.
type hookCodec struct {
	inner wflocks.Codec[string]
	hook  func()
}

func (c hookCodec) Words() int { return c.inner.Words() }
func (c hookCodec) Encode(v string, dst []uint64) {
	c.hook()
	c.inner.Encode(v, dst)
}
func (c hookCodec) Decode(src []uint64) string { return c.inner.Decode(src) }

// mapBackend serves from a wait-free Map: a durable KV whose Put can
// report shard-full, surfaced to the client as an -ERR.
type mapBackend struct {
	m *wflocks.Map[string, string]
}

func newMapBackend(mgr *wflocks.Manager, cfg *Config, vc wflocks.Codec[string]) (Backend, error) {
	perShard := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	m, err := wflocks.NewMapOf[string, string](mgr,
		wflocks.StringCodec(cfg.MaxKeyBytes), vc,
		wflocks.WithShards(cfg.Shards), wflocks.WithShardCapacity(perShard))
	if err != nil {
		return nil, err
	}
	return &mapBackend{m: m}, nil
}

func (b *mapBackend) Name() string { return "map" }

func (b *mapBackend) Get(key string) (string, bool) { return b.m.Get(key) }

func (b *mapBackend) Set(key, val string, ttl time.Duration) error {
	if ttl > 0 {
		return errNoTTL
	}
	if err := b.m.Put(key, val); err != nil {
		if errors.Is(err, wflocks.ErrMapFull) {
			return protoErrorf("out of memory: map shard full")
		}
		return err
	}
	return nil
}

func (b *mapBackend) Del(key string) bool { return b.m.Delete(key) }

func (b *mapBackend) LockID(key string) int { return b.m.ShardLockID(key) }

func (b *mapBackend) TableShards() []TableShardInfo {
	st := b.m.Stats()
	out := make([]TableShardInfo, len(st.Shards))
	for i, sh := range st.Shards {
		out[i] = TableShardInfo{
			Size: sh.Size, Capacity: b.m.ShardCapacity(),
			Tombstones: sh.Tombstones, MaxProbe: sh.MaxProbe, SumProbe: sh.SumProbe,
		}
	}
	return out
}

// cacheBackend serves from a wait-free Cache: Set never fails (full
// evicts LRU) and PX maps to PutTTL.
type cacheBackend struct {
	c *wflocks.Cache[string, string]
}

func newCacheBackend(mgr *wflocks.Manager, cfg *Config, vc wflocks.Codec[string]) (Backend, error) {
	opts := []wflocks.CacheOption{
		wflocks.WithCacheShards(cfg.Shards), wflocks.WithCapacity(cfg.Capacity),
	}
	if cfg.TTL > 0 {
		opts = append(opts, wflocks.WithTTL(cfg.TTL))
	}
	c, err := wflocks.NewCacheOf[string, string](mgr,
		wflocks.StringCodec(cfg.MaxKeyBytes), vc, opts...)
	if err != nil {
		return nil, err
	}
	return &cacheBackend{c: c}, nil
}

func (b *cacheBackend) Name() string { return "cache" }

func (b *cacheBackend) Get(key string) (string, bool) { return b.c.Get(key) }

func (b *cacheBackend) Set(key, val string, ttl time.Duration) error {
	if ttl > 0 {
		b.c.PutTTL(key, val, ttl)
	} else {
		b.c.Put(key, val)
	}
	return nil
}

func (b *cacheBackend) Del(key string) bool { return b.c.Delete(key) }

func (b *cacheBackend) LockID(key string) int { return b.c.ShardLockID(key) }

func (b *cacheBackend) TableShards() []TableShardInfo {
	st := b.c.Stats()
	per := b.c.Capacity() / b.c.Shards()
	out := make([]TableShardInfo, len(st.Shards))
	for i, sh := range st.Shards {
		out[i] = TableShardInfo{
			Size: sh.Size, Capacity: per,
			Tombstones: sh.Tombstones, MaxProbe: sh.MaxProbe, SumProbe: sh.SumProbe,
		}
	}
	return out
}

// mutexBackend is the blocking baseline: the conventional sharded
// map[string]entry design with one sync.Mutex per shard and per-entry
// expiry. The stall hook is drawn while the shard mutex is held
// whenever an entry's value is touched, mirroring the wait-free
// backends' in-critical-section encodes — a stalled holder blocks its
// whole shard for the stall, which is exactly the behavior the
// wait-free backends exist to avoid.
type mutexBackend struct {
	shards []mutexShard
	mask   uint64
	hook   func()
}

type mutexShard struct {
	mu sync.Mutex
	m  map[string]mutexEntry
	_  [40]byte // pad to a cache line: shard locks must not false-share
}

type mutexEntry struct {
	val string
	exp int64 // UnixNano deadline; 0 = never expires
}

func newMutexBackend(cfg *Config, hook func()) Backend {
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	b := &mutexBackend{shards: make([]mutexShard, n), mask: uint64(n - 1), hook: hook}
	for i := range b.shards {
		b.shards[i].m = make(map[string]mutexEntry, cfg.Capacity/n+1)
	}
	if b.hook == nil {
		b.hook = func() {}
	}
	return b
}

func (b *mutexBackend) Name() string { return "mutex" }

// LockID reports -1: mutex shards have no wait-free lock IDs to
// correlate against.
func (b *mutexBackend) LockID(string) int { return -1 }

// fnv1a hashes key for shard selection (the same job the wait-free
// backends' codec-word hash does).
func fnv1a(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

func (b *mutexBackend) shard(key string) *mutexShard {
	return &b.shards[fnv1a(key)&b.mask]
}

func (b *mutexBackend) Get(key string) (string, bool) {
	sh := b.shard(key)
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return "", false
	}
	b.hook()
	if e.exp != 0 && e.exp <= time.Now().UnixNano() {
		delete(sh.m, key)
		sh.mu.Unlock()
		return "", false
	}
	sh.mu.Unlock()
	return e.val, true
}

func (b *mutexBackend) Set(key, val string, ttl time.Duration) error {
	var exp int64
	if ttl > 0 {
		exp = time.Now().Add(ttl).UnixNano()
	}
	sh := b.shard(key)
	sh.mu.Lock()
	b.hook()
	sh.m[key] = mutexEntry{val: val, exp: exp}
	sh.mu.Unlock()
	return nil
}

func (b *mutexBackend) Del(key string) bool {
	sh := b.shard(key)
	sh.mu.Lock()
	_, ok := sh.m[key]
	if ok {
		b.hook()
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	return ok
}

// newBackend builds the configured backend, its manager (shared with
// the dispatch pool for the wait-free backends) having been built by
// the caller. vc is the value codec with any stall hook already
// applied.
func newBackend(mgr *wflocks.Manager, cfg *Config, vc wflocks.Codec[string]) (Backend, error) {
	switch cfg.Backend {
	case BackendMap:
		return newMapBackend(mgr, cfg, vc)
	case BackendCache:
		return newCacheBackend(mgr, cfg, vc)
	case BackendMutex:
		return newMutexBackend(cfg, cfg.Stall), nil
	}
	return nil, fmt.Errorf("serve: unknown backend %q (want %q, %q or %q)",
		cfg.Backend, BackendMap, BackendCache, BackendMutex)
}
