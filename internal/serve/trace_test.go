package serve_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wflocks/internal/serve"
)

// jsonTraceEvent / jsonTraceDoc mirror the exported Chrome trace-event
// document for the external-view assertions.
type jsonTraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type jsonTraceDoc struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	TraceEvents     []jsonTraceEvent `json:"traceEvents"`
}

// TestTraceLiveOverlap is the acceptance run: a stall-regime loopback
// server (one shard, a sleeping holder, full trace sampling) must
// export, on /debug/wftrace, at least one request span whose wall
// interval overlaps a helped-descriptor slice on the same lock id —
// the causal join the whole export exists for.
//
// The lock-level flight recorder is a fixed recent window, and idle
// workers polling the dispatch pool's (empty) queue shards keep
// appending fast-path attempts to it, so a help event only survives in
// the ring for a few milliseconds. The test therefore fetches the
// export immediately after each contended burst and retries the join
// on fresh rounds rather than expecting one fetch to win the race.
func TestTraceLiveOverlap(t *testing.T) {
	srv, lis := startServer(t, serve.Config{
		Backend:         serve.BackendCache,
		Shards:          1, // every key contends on one lock
		Workers:         8,
		TraceSample:     1,
		WatchdogHelpRun: 50 * time.Microsecond,
		Stall:           func() { time.Sleep(200 * time.Microsecond) },
	})
	conns := make([]*client, 4)
	for i := range conns {
		conns[i] = dial(t, lis)
	}
	hs := httptest.NewServer(srv.MetricsMux())
	defer hs.Close()

	fetchDoc := func() jsonTraceDoc {
		t.Helper()
		resp, err := http.Get(hs.URL + "/debug/wftrace")
		if err != nil {
			t.Fatalf("GET /debug/wftrace: %v", err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type = %q", ct)
		}
		var doc jsonTraceDoc
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("/debug/wftrace is not valid JSON: %v", err)
		}
		return doc
	}

	// Pipeline bursts of distinct-key SETs from several connections so
	// workers pile onto the single shard lock concurrently, then fetch
	// the export and join request slices (pid 1) against help slices
	// (pid 2) by lock id and wall-time overlap.
	const per = 16
	deadline := time.Now().Add(20 * time.Second)
	overlap := false
	for round := 0; !overlap; round++ {
		if time.Now().After(deadline) {
			t.Fatal("no exported request span ever overlapped a help slice on its lock")
		}
		for ci, c := range conns {
			var buf []byte
			for j := 0; j < per; j++ {
				buf = serve.AppendCommand(buf, "SET", fmt.Sprintf("k%d-%d-%d", ci, round, j), "v")
			}
			if _, err := c.conn.Write(buf); err != nil {
				t.Fatalf("round %d: write burst: %v", round, err)
			}
		}
		for ci, c := range conns {
			for j := 0; j < per; j++ {
				if r, err := serve.ReadReply(c.br); err != nil || r.Str != "OK" {
					t.Fatalf("round %d conn %d SET %d reply = %+v, %v", round, ci, j, r, err)
				}
			}
		}

		doc := fetchDoc()
		var reqSlices, helpSlices []jsonTraceEvent
		for _, ev := range doc.TraceEvents {
			if ev.Ph != "X" {
				continue
			}
			switch {
			case ev.Pid == 1 && ev.Name == "SET":
				reqSlices = append(reqSlices, ev)
			case ev.Pid == 2 && ev.Name == "help":
				helpSlices = append(helpSlices, ev)
			}
		}
		if len(reqSlices) == 0 {
			t.Fatalf("round %d: export carries no request slices", round)
		}
		for _, sp := range reqSlices {
			for _, h := range helpSlices {
				if sp.Args["lock"] == h.Args["lock"] &&
					sp.Ts < h.Ts+h.Dur && h.Ts < sp.Ts+sp.Dur {
					overlap = true
				}
			}
		}
	}

	// The 200µs holder stalls also blow the 50µs help-run watchdog
	// bound, so the same run must have counted stall alerts; the alert
	// ring is append-only (no fast-path flooding), so they stay visible.
	if os := srv.Manager().Observe(); os.StallAlerts == 0 {
		t.Error("stall regime with a 50µs help-run bound counted no stall alerts")
	} else if len(os.Alerts) == 0 {
		t.Error("stall alerts counted but the alert ring is empty")
	}
}

// TestTraceDisabled: without TraceSample the span ring is absent and
// the export degrades to a metadata-only document instead of failing.
func TestTraceDisabled(t *testing.T) {
	srv, lis := startServer(t, serve.Config{Workers: 4})
	c := dial(t, lis)
	if r := c.do(t, "SET", "k", "v"); r.Str != "OK" {
		t.Fatalf("SET = %+v", r)
	}
	if spans := srv.Spans(); spans != nil {
		t.Fatalf("Spans() = %d entries without TraceSample, want nil", len(spans))
	}
	hs := httptest.NewServer(srv.MetricsMux())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/debug/wftrace")
	if err != nil {
		t.Fatalf("GET /debug/wftrace: %v", err)
	}
	defer resp.Body.Close()
	var doc jsonTraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			t.Fatalf("trace without sampling contains non-metadata event %+v", ev)
		}
	}
}
