package serve

import (
	"bufio"
	"strings"
	"testing"
	"time"
)

func readOne(t *testing.T, wire string) (Request, error) {
	t.Helper()
	return ReadCommand(bufio.NewReader(strings.NewReader(wire)))
}

func TestReadCommandInline(t *testing.T) {
	req, err := readOne(t, "SET key  value\r\n")
	if err != nil {
		t.Fatalf("inline SET: %v", err)
	}
	if req.Op != OpSet || req.Key != "key" || req.Val != "value" {
		t.Fatalf("inline SET = %+v", req)
	}
	req, err = readOne(t, "get key\n") // lowercase, bare LF
	if err != nil || req.Op != OpGet || req.Key != "key" {
		t.Fatalf("inline get = %+v, %v", req, err)
	}
}

func TestReadCommandArray(t *testing.T) {
	wire := string(AppendCommand(nil, "SET", "k", "v", "PX", "1500"))
	req, err := readOne(t, wire)
	if err != nil {
		t.Fatalf("array SET PX: %v", err)
	}
	if req.Op != OpSet || req.Key != "k" || req.Val != "v" || req.TTL != 1500*time.Millisecond {
		t.Fatalf("array SET PX = %+v", req)
	}
	// Binary-safe: a value with spaces and CR survives the array form.
	odd := "a b\rc"
	req, err = readOne(t, string(AppendCommand(nil, "SET", "k", odd)))
	if err != nil || req.Val != odd {
		t.Fatalf("binary value = %+v, %v", req, err)
	}
}

func TestReadCommandErrors(t *testing.T) {
	// Proto errors: the client hears -ERR, the connection lives.
	for _, wire := range []string{
		"\r\n",                // empty command
		"NOPE\r\n",            // unknown command
		"GET\r\n",             // missing key
		"SET k v EX 10\r\n",   // wrong TTL keyword
		"SET k v PX nope\r\n", // bad PX value
		"SET k v PX -5\r\n",   // non-positive PX
		"PING extra\r\n",      // PING takes no args
	} {
		if _, err := readOne(t, wire); !IsProtoError(err) {
			t.Errorf("%q: err = %v, want proto error", wire, err)
		}
	}
	// Framing errors: the connection must die.
	for _, wire := range []string{
		"*x\r\n",              // bad array header
		"*99\r\n",             // oversized array
		"*1\r\nnope\r\n",      // bulk header missing $
		"*1\r\n$-3\r\nab\r\n", // bad bulk length
		"*1\r\n$2\r\nabXY",    // bulk missing CRLF
		"GET " + strings.Repeat("k", maxLineBytes) + "\r\n", // oversized line
	} {
		_, err := readOne(t, wire)
		if err == nil || IsProtoError(err) {
			t.Errorf("%q: err = %v, want fatal framing error", wire, err)
		}
	}
}

// endlessReader yields its byte forever without ever producing a
// newline — the hostile-peer shape readLine's bound must cut off.
type endlessReader byte

func (e endlessReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(e)
	}
	return len(p), nil
}

func TestReadLineBoundedWithoutNewline(t *testing.T) {
	// A peer streaming bytes with no newline must hit the limit while
	// reading, not buffer without bound (this also terminates, which an
	// unbounded ReadString would not).
	_, err := readLine(bufio.NewReader(endlessReader('a')))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("unbounded line: err = %v, want line-exceeds error", err)
	}
}

func TestReadLineSpansBufferFills(t *testing.T) {
	// A legal line longer than the bufio buffer is reassembled across
	// ReadSlice fills, and the reader stays positioned on the next line.
	want := strings.Repeat("a", 100)
	br := bufio.NewReaderSize(strings.NewReader(want+"\r\nnext\r\n"), 16)
	got, err := readLine(br)
	if err != nil || got != want {
		t.Fatalf("long line = %q, %v; want %d a's", got, err, len(want))
	}
	if got, err := readLine(br); err != nil || got != "next" {
		t.Fatalf("following line = %q, %v; want next", got, err)
	}
}

func TestReadLineBoundary(t *testing.T) {
	// Line plus CRLF exactly at maxLineBytes is accepted; one byte more
	// is rejected.
	ok := strings.Repeat("a", maxLineBytes-2)
	if got, err := readLine(bufio.NewReader(strings.NewReader(ok + "\r\n"))); err != nil || got != ok {
		t.Fatalf("line at bound: len %d, err %v; want %d, nil", len(got), err, len(ok))
	}
	over := strings.Repeat("a", maxLineBytes-1)
	if _, err := readLine(bufio.NewReader(strings.NewReader(over + "\r\n"))); err == nil {
		t.Fatal("line one byte over bound accepted")
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var wire []byte
	wire = AppendSimple(wire, "OK")
	wire = AppendError(wire, "boom")
	wire = AppendInt(wire, -7)
	wire = AppendBulk(wire, "payload")
	wire = AppendBulk(wire, "")
	wire = AppendNullBulk(wire)
	br := bufio.NewReader(strings.NewReader(string(wire)))
	want := []Reply{
		{Kind: ReplySimple, Str: "OK"},
		{Kind: ReplyError, Str: "boom"},
		{Kind: ReplyInt, Int: -7},
		{Kind: ReplyBulk, Str: "payload"},
		{Kind: ReplyBulk, Str: ""},
		{Kind: ReplyNull},
	}
	for i, w := range want {
		got, err := ReadReply(br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("reply %d = %+v, want %+v", i, got, w)
		}
	}
}
