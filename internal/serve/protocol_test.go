package serve

import (
	"bufio"
	"strings"
	"testing"
	"time"
)

func readOne(t *testing.T, wire string) (Request, error) {
	t.Helper()
	return ReadCommand(bufio.NewReader(strings.NewReader(wire)))
}

func TestReadCommandInline(t *testing.T) {
	req, err := readOne(t, "SET key  value\r\n")
	if err != nil {
		t.Fatalf("inline SET: %v", err)
	}
	if req.Op != OpSet || req.Key != "key" || req.Val != "value" {
		t.Fatalf("inline SET = %+v", req)
	}
	req, err = readOne(t, "get key\n") // lowercase, bare LF
	if err != nil || req.Op != OpGet || req.Key != "key" {
		t.Fatalf("inline get = %+v, %v", req, err)
	}
}

func TestReadCommandArray(t *testing.T) {
	wire := string(AppendCommand(nil, "SET", "k", "v", "PX", "1500"))
	req, err := readOne(t, wire)
	if err != nil {
		t.Fatalf("array SET PX: %v", err)
	}
	if req.Op != OpSet || req.Key != "k" || req.Val != "v" || req.TTL != 1500*time.Millisecond {
		t.Fatalf("array SET PX = %+v", req)
	}
	// Binary-safe: a value with spaces and CR survives the array form.
	odd := "a b\rc"
	req, err = readOne(t, string(AppendCommand(nil, "SET", "k", odd)))
	if err != nil || req.Val != odd {
		t.Fatalf("binary value = %+v, %v", req, err)
	}
}

func TestReadCommandErrors(t *testing.T) {
	// Proto errors: the client hears -ERR, the connection lives.
	for _, wire := range []string{
		"\r\n",                // empty command
		"NOPE\r\n",            // unknown command
		"GET\r\n",             // missing key
		"SET k v EX 10\r\n",   // wrong TTL keyword
		"SET k v PX nope\r\n", // bad PX value
		"SET k v PX -5\r\n",   // non-positive PX
		"PING extra\r\n",      // PING takes no args
	} {
		if _, err := readOne(t, wire); !IsProtoError(err) {
			t.Errorf("%q: err = %v, want proto error", wire, err)
		}
	}
	// Framing errors: the connection must die.
	for _, wire := range []string{
		"*x\r\n",              // bad array header
		"*99\r\n",             // oversized array
		"*1\r\nnope\r\n",      // bulk header missing $
		"*1\r\n$-3\r\nab\r\n", // bad bulk length
		"*1\r\n$2\r\nabXY",    // bulk missing CRLF
		"GET " + strings.Repeat("k", maxLineBytes) + "\r\n", // oversized line
	} {
		_, err := readOne(t, wire)
		if err == nil || IsProtoError(err) {
			t.Errorf("%q: err = %v, want fatal framing error", wire, err)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	var wire []byte
	wire = AppendSimple(wire, "OK")
	wire = AppendError(wire, "boom")
	wire = AppendInt(wire, -7)
	wire = AppendBulk(wire, "payload")
	wire = AppendBulk(wire, "")
	wire = AppendNullBulk(wire)
	br := bufio.NewReader(strings.NewReader(string(wire)))
	want := []Reply{
		{Kind: ReplySimple, Str: "OK"},
		{Kind: ReplyError, Str: "boom"},
		{Kind: ReplyInt, Int: -7},
		{Kind: ReplyBulk, Str: "payload"},
		{Kind: ReplyBulk, Str: ""},
		{Kind: ReplyNull},
	}
	for i, w := range want {
		got, err := ReadReply(br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("reply %d = %+v, want %+v", i, got, w)
		}
	}
}
