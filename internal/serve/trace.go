package serve

import (
	"encoding/json"
	"io"

	"wflocks"
	"wflocks/internal/obs"
)

// Chrome trace-event export: the request-span flight recorder and the
// lock-level flight recorder rendered as one Chrome trace-event JSON
// document, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// The document uses two synthetic processes:
//
//   - pid 1 "requests": one thread lane per slab slot (a slot holds
//     exactly one request at a time, so slices on a lane never overlap
//     and nest soundly). Each request renders as a whole-pipeline slice
//     named by its op, with nested "queue" (enqueue → dequeue) and
//     "exec" (backend call) slices. Args carry the request id, conn,
//     worker, key hash and — the correlation key — the shard lock id.
//
//   - pid 2 "lock attempts": one thread lane per lock-layer process id.
//     Help runs render as slices spanning their recorded wall duration;
//     starts, delay points, fast paths, wins, loses and watchdog alerts
//     render as instants. Args carry the lock id.
//
// Finding "why did this GET take 3ms" is a join by lock id: the GET's
// slice in pid 1 names lock N, and pid 2 shows who helped past a stall
// or burned delay steps on lock N in the same interval.

// traceEvent is one Chrome trace-event entry (the subset of the format
// the export uses; ts and dur are microseconds).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceDoc is the trace-event file shape ("JSON Object Format").
type traceDoc struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// Trace-event pid assignments.
const (
	tracePidRequests = 1
	tracePidLocks    = 2
)

// usec converts UnixNano to trace-event microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// spanTraceEvents renders one request span as its whole-pipeline slice
// plus nested stage slices (stages the request never reached are
// skipped).
func spanTraceEvents(out []traceEvent, sp obs.Span) []traceEvent {
	if sp.ReadNS == 0 || sp.WriteNS < sp.ReadNS {
		return out
	}
	args := map[string]any{
		"req":  sp.ID,
		"conn": sp.Conn,
		"lock": sp.LockID,
		"key":  sp.KeyHash,
	}
	if sp.Worker >= 0 {
		args["worker"] = sp.Worker
	}
	out = append(out, traceEvent{
		Name: sp.Op, Ph: "X",
		Ts: usec(sp.ReadNS), Dur: usec(sp.WriteNS - sp.ReadNS),
		Pid: tracePidRequests, Tid: sp.Slot, Args: args,
	})
	if sp.EnqNS != 0 && sp.DeqNS >= sp.EnqNS {
		out = append(out, traceEvent{
			Name: "queue", Ph: "X",
			Ts: usec(sp.EnqNS), Dur: usec(sp.DeqNS - sp.EnqNS),
			Pid: tracePidRequests, Tid: sp.Slot,
			Args: map[string]any{"req": sp.ID},
		})
	}
	if sp.ExecNS != 0 && sp.DoneNS >= sp.ExecNS {
		out = append(out, traceEvent{
			Name: "exec", Ph: "X",
			Ts: usec(sp.ExecNS), Dur: usec(sp.DoneNS - sp.ExecNS),
			Pid: tracePidRequests, Tid: sp.Slot,
			Args: map[string]any{"req": sp.ID, "lock": sp.LockID},
		})
	}
	return out
}

// lockTraceEvents renders one flight-recorder (or alert-ring) event.
// Help runs know their wall duration, so they render as slices ending
// at their recorded timestamp; everything else is an instant.
func lockTraceEvents(out []traceEvent, ev wflocks.TraceEvent) []traceEvent {
	ns := ev.Time.UnixNano()
	args := map[string]any{"lock": ev.LockID, "seq": ev.Seq}
	switch ev.Kind {
	case "help":
		return append(out, traceEvent{
			Name: "help", Ph: "X",
			Ts: usec(ns - int64(ev.Value)), Dur: usec(int64(ev.Value)),
			Pid: tracePidLocks, Tid: ev.Pid, Args: args,
		})
	case "delay":
		args["steps"] = ev.Value
	case "start":
		args["locks"] = ev.Value
	case "alert-delay":
		args["steps"] = ev.Value
	case "alert-help":
		args["ns"] = ev.Value
	}
	return append(out, traceEvent{
		Name: ev.Kind, Ph: "i",
		Ts:  usec(ns),
		Pid: tracePidLocks, Tid: ev.Pid, S: "t", Args: args,
	})
}

// writeTrace renders spans plus the lock snapshot's events and alerts
// as a Chrome trace-event JSON document. Deterministic given its
// inputs (map args marshal with sorted keys), which is what the golden
// test pins.
func writeTrace(w io.Writer, spans []obs.Span, os wflocks.ObsSnapshot) error {
	doc := traceDoc{
		DisplayTimeUnit: "ms",
		TraceEvents: []traceEvent{
			{Name: "process_name", Ph: "M", Pid: tracePidRequests,
				Args: map[string]any{"name": "requests (slab slots)"}},
			{Name: "process_name", Ph: "M", Pid: tracePidLocks,
				Args: map[string]any{"name": "lock attempts (pids)"}},
		},
	}
	for _, sp := range spans {
		doc.TraceEvents = spanTraceEvents(doc.TraceEvents, sp)
	}
	for _, ev := range os.Events {
		doc.TraceEvents = lockTraceEvents(doc.TraceEvents, ev)
	}
	for _, ev := range os.Alerts {
		doc.TraceEvents = lockTraceEvents(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteTrace exports the server's current observability window — the
// request-span ring joined with the lock manager's flight recorder and
// alert ring — as Chrome trace-event JSON (see the package comment at
// the top of this file for the layout). Served on /debug/wftrace by
// MetricsMux; cmd/wfload's -tracefile writes the same document.
// Without Config.TraceSample the document carries only metadata.
func (s *Server) WriteTrace(w io.Writer) error {
	return writeTrace(w, s.Spans(), s.mgr.Observe())
}
