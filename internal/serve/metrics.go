package serve

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"

	"wflocks"
	"wflocks/internal/obs"
)

// MetricsMux returns the server's live-observability HTTP handler:
//
//   - /metrics — Prometheus-style text exposition of the server, lock
//     manager, dispatch pool, slab and backend table series below;
//   - /debug/vars — the standard expvar JSON (memstats, cmdline);
//   - /debug/pprof/ — the standard pprof index and profiles.
//
// The handler is cheap enough for scrape intervals — rendering merges
// the per-P histogram shards and scans the backend's meta words, never
// taking a lock or stopping traffic — but it is not meant to be hit per
// request. It works with or without Config.Metrics; without it the
// latency and delay series are simply absent.
func (s *Server) MetricsMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, s.metricsText())
	})
	mux.HandleFunc("/debug/wftrace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="wftrace.json"`)
		if err := s.WriteTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// quantiles is the exposition's summary grid.
var quantiles = []float64{0.5, 0.9, 0.99, 0.999}

// metricsText renders the full /metrics exposition.
func (s *Server) metricsText() string {
	var b strings.Builder

	// Server request counters.
	fmt.Fprintf(&b, "wfserve_conns %d\n", s.stats.curConns.Load())
	fmt.Fprintf(&b, "wfserve_accepted_total %d\n", s.stats.accepted.Load())
	fmt.Fprintf(&b, "wfserve_refused_total %d\n", s.stats.refused.Load())
	fmt.Fprintf(&b, "wfserve_gets_total %d\n", s.stats.gets.Load())
	fmt.Fprintf(&b, "wfserve_hits_total %d\n", s.stats.hits.Load())
	fmt.Fprintf(&b, "wfserve_sets_total %d\n", s.stats.sets.Load())
	fmt.Fprintf(&b, "wfserve_dels_total %d\n", s.stats.dels.Load())
	fmt.Fprintf(&b, "wfserve_errors_total %d\n", s.stats.errs.Load())
	fmt.Fprintf(&b, "wfserve_workers %d\n", s.cfg.Workers)

	// Admission control: slab free-list occupancy.
	fmt.Fprintf(&b, "wfserve_slab_free %d\n", len(s.free))
	fmt.Fprintf(&b, "wfserve_slab_cap %d\n", cap(s.free))

	// Lock manager: the helping machinery at work.
	ms := s.mgr.Stats()
	fmt.Fprintf(&b, "wflocks_attempts_total %d\n", ms.Attempts)
	fmt.Fprintf(&b, "wflocks_wins_total %d\n", ms.Wins)
	fmt.Fprintf(&b, "wflocks_helps_total %d\n", ms.Helps)
	fmt.Fprintf(&b, "wflocks_fastpath_total %d\n", ms.FastPath)
	fmt.Fprintf(&b, "wflocks_help_rate %.6f\n", ms.HelpRate())
	fmt.Fprintf(&b, "wflocks_fastpath_rate %.6f\n", ms.FastPathRate())

	if os := s.mgr.Observe(); os.Enabled {
		fmt.Fprintf(&b, "wflocks_delay_share %.6f\n", os.DelayShare())
		fmt.Fprintf(&b, "wflocks_attempt_steps_total %d\n", os.AttemptSteps)
		fmt.Fprintf(&b, "wflocks_delay_steps_total %d\n", os.DelaySteps)
		fmt.Fprintf(&b, "wflocks_help_nanos_total %d\n", os.HelpNanos)
		fmt.Fprintf(&b, "wflocks_stall_alerts_total %d\n", os.StallAlerts)
		writeQuantiles(&b, "wflocks_acquire_ns", os.Acquire)
		writeQuantiles(&b, "wflocks_delay_iters", os.DelayIters)
		writeQuantiles(&b, "wflocks_help_run_ns", os.HelpRun)

		// Per-lock stall attribution: which shard lock charged whom.
		for _, l := range os.Locks {
			fmt.Fprintf(&b, "wflocks_lock_helps_total{lock=\"%d\"} %d\n", l.LockID, l.Helps)
			fmt.Fprintf(&b, "wflocks_lock_help_nanos_total{lock=\"%d\"} %d\n", l.LockID, l.HelpNanos)
			fmt.Fprintf(&b, "wflocks_lock_delay_steps_total{lock=\"%d\"} %d\n", l.LockID, l.DelaySteps)
			fmt.Fprintf(&b, "wflocks_lock_alerts_total{lock=\"%d\"} %d\n", l.LockID, l.Alerts)
		}
	}

	// Change journal: append/trim/retention/lag gauges (the STATS
	// journal_* block as Prometheus series).
	if s.journal != nil {
		js := s.journal.Stats()
		fmt.Fprintf(&b, "wfserve_journal_appends_total %d\n", js.Appends)
		fmt.Fprintf(&b, "wfserve_journal_trimmed_total %d\n", js.Trimmed)
		fmt.Fprintf(&b, "wfserve_journal_retained %d\n", js.Len)
		fmt.Fprintf(&b, "wfserve_journal_lag_max %d\n", js.MaxLag)
		fmt.Fprintf(&b, "wfserve_journal_reads_total %d\n", js.Reads)
		fmt.Fprintf(&b, "wfserve_journal_dropped_total %d\n", s.stats.journalDrops.Load())
	}

	// Per-op service-time summaries (dequeue to response ready).
	if s.opGets != nil {
		for _, oh := range []struct {
			op string
			h  *obs.PHist
		}{{"get", s.opGets}, {"set", s.opSets}, {"del", s.opDels}} {
			hist := oh.h.Snapshot()
			for _, q := range quantiles {
				fmt.Fprintf(&b, "wfserve_op_ns{op=%q,quantile=\"%g\"} %d\n", oh.op, q, hist.Quantile(q))
			}
			fmt.Fprintf(&b, "wfserve_op_ns_count{op=%q} %d\n", oh.op, hist.Count())
			fmt.Fprintf(&b, "wfserve_op_ns_max{op=%q} %d\n", oh.op, hist.Max())
		}
	}

	// Dispatch pool: queue depth and the steal path's rebalancing.
	ps := s.pool.Stats()
	fmt.Fprintf(&b, "wfserve_pool_len %d\n", ps.Len)
	fmt.Fprintf(&b, "wfserve_pool_steals_total %d\n", ps.Steals)
	fmt.Fprintf(&b, "wfserve_pool_enqueues_total %d\n", ps.Enqueues)
	fmt.Fprintf(&b, "wfserve_pool_dequeues_total %d\n", ps.Dequeues)
	for i, sh := range ps.Shards {
		fmt.Fprintf(&b, "wfserve_pool_shard_len{shard=\"%d\"} %d\n", i, sh.Len)
		fmt.Fprintf(&b, "wfserve_pool_shard_steals_total{shard=\"%d\"} %d\n", i, sh.Steals)
	}

	// Backend table shape: occupancy and probe-chain lengths per shard.
	if ts, ok := s.backend.(tableStatser); ok {
		for i, sh := range ts.TableShards() {
			fmt.Fprintf(&b, "wfserve_table_shard_size{shard=\"%d\"} %d\n", i, sh.Size)
			fmt.Fprintf(&b, "wfserve_table_shard_capacity{shard=\"%d\"} %d\n", i, sh.Capacity)
			fmt.Fprintf(&b, "wfserve_table_shard_tombstones{shard=\"%d\"} %d\n", i, sh.Tombstones)
			fmt.Fprintf(&b, "wfserve_table_shard_max_probe{shard=\"%d\"} %d\n", i, sh.MaxProbe)
			fmt.Fprintf(&b, "wfserve_table_shard_sum_probe{shard=\"%d\"} %d\n", i, sh.SumProbe)
		}
	}
	return b.String()
}

// writeQuantiles renders one ObsSnapshot histogram as a summary.
func writeQuantiles(b *strings.Builder, name string, h wflocks.HistStats) {
	for _, q := range quantiles {
		fmt.Fprintf(b, "%s{quantile=\"%g\"} %d\n", name, q, h.Quantile(q))
	}
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
	fmt.Fprintf(b, "%s_max %d\n", name, h.Max)
}
