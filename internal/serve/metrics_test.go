package serve_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"wflocks/internal/serve"
)

// metricsServer runs a metrics-enabled server plus an httptest front for
// its MetricsMux, and pushes a little traffic through so every series
// has data.
func metricsServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, lis := startServer(t, cfg)
	c := dial(t, lis)
	for i := 0; i < 64; i++ {
		k := "k" + string(rune('a'+i%16))
		if r := c.do(t, "SET", k, "v"); r.Str != "OK" {
			t.Fatalf("SET = %+v", r)
		}
		c.do(t, "GET", k)
	}
	c.do(t, "DEL", "ka")
	h := httptest.NewServer(s.MetricsMux())
	t.Cleanup(h.Close)
	return s, h
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, h := metricsServer(t, serve.Config{Workers: 4, TraceSample: 1})
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("Content-Type %q", ct)
	}
	resp.Body.Close()
	code, body := get(t, h.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	// Counter series fed by the traffic above must be nonzero.
	for _, re := range []string{
		`(?m)^wfserve_gets_total [1-9]\d*$`,
		`(?m)^wfserve_sets_total [1-9]\d*$`,
		`(?m)^wfserve_dels_total [1-9]\d*$`,
		`(?m)^wfserve_slab_free \d+$`,
		`(?m)^wfserve_slab_cap [1-9]\d*$`,
		`(?m)^wflocks_attempts_total [1-9]\d*$`,
		`(?m)^wflocks_wins_total [1-9]\d*$`,
		`(?m)^wflocks_help_rate \d`,
		`(?m)^wflocks_fastpath_rate \d`,
		// TraceSample implies metrics, so the latency summaries render.
		`(?m)^wflocks_delay_share \d`,
		`(?m)^wflocks_attempt_steps_total [1-9]\d*$`,
		`(?m)^wflocks_acquire_ns\{quantile="0\.99"\} [1-9]\d*$`,
		`(?m)^wflocks_acquire_ns_count [1-9]\d*$`,
		`(?m)^wflocks_delay_iters\{quantile="0\.5"\} \d+$`,
		`(?m)^wflocks_help_run_ns\{quantile="0\.5"\} \d+$`,
		`(?m)^wfserve_op_ns\{op="get",quantile="0\.99"\} [1-9]\d*$`,
		`(?m)^wfserve_op_ns_count\{op="set"\} [1-9]\d*$`,
		`(?m)^wfserve_pool_enqueues_total [1-9]\d*$`,
		`(?m)^wfserve_pool_shard_len\{shard="0"\} \d+$`,
		// Default backend is the wf map, which exposes table shape.
		`(?m)^wfserve_table_shard_size\{shard="0"\} [1-9]\d*$`,
		`(?m)^wfserve_table_shard_capacity\{shard="0"\} [1-9]\d*$`,
		`(?m)^wfserve_table_shard_max_probe\{shard="0"\} \d+$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("/metrics missing series %s\n%s", re, body)
		}
	}
	if !strings.Contains(body, "wfserve_workers 4") {
		t.Errorf("worker count not exported:\n%s", body)
	}
}

func TestMetricsEndpointWithoutMetrics(t *testing.T) {
	// MetricsMux works on a plain server too: counters render, latency
	// summaries are simply absent.
	_, h := metricsServer(t, serve.Config{Workers: 2})
	code, body := get(t, h.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "wflocks_attempts_total") {
		t.Fatalf("lock counters must render without Config.Metrics:\n%s", body)
	}
	if strings.Contains(body, "wflocks_delay_share") || strings.Contains(body, "wfserve_op_ns") {
		t.Fatalf("latency series must be absent without Config.Metrics:\n%s", body)
	}
}

func TestMetricsDebugHandlers(t *testing.T) {
	_, h := metricsServer(t, serve.Config{Workers: 2, Metrics: true})
	if code, body := get(t, h.URL+"/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars status %d body %.80s", code, body)
	}
	if code, body := get(t, h.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.80s", code, body)
	}
}

func TestStatsObservability(t *testing.T) {
	for _, backend := range []string{serve.BackendMap, serve.BackendCache} {
		t.Run(backend, func(t *testing.T) {
			_, lis := startServer(t, serve.Config{Backend: backend, Workers: 4, Metrics: true})
			c := dial(t, lis)
			for i := 0; i < 32; i++ {
				c.do(t, "SET", "k"+string(rune('a'+i%8)), "v")
				c.do(t, "GET", "k"+string(rune('a'+i%8)))
			}
			r := c.do(t, "STATS")
			if r.Kind != serve.ReplyBulk {
				t.Fatalf("STATS = %+v", r)
			}
			for _, want := range []string{
				"slab_free:", "slab_cap:",
				"lock_attempts:", "lock_helps:", "help_rate:", "fastpath_rate:",
				"pool_steals:", "pool_shard0:len=",
				"delay_share:", "acquire_ns_p50:", "acquire_ns_p99:",
				"help_run_ns_p50:", "get_ns_p50:", "set_ns_p99:",
			} {
				if !strings.Contains(r.Str, want) {
					t.Errorf("STATS missing %q:\n%s", want, r.Str)
				}
			}
		})
	}
}

func TestStatsWithoutMetrics(t *testing.T) {
	_, lis := startServer(t, serve.Config{Workers: 2})
	c := dial(t, lis)
	c.do(t, "SET", "k", "v")
	r := c.do(t, "STATS")
	if !strings.Contains(r.Str, "lock_attempts:") || !strings.Contains(r.Str, "pool_steals:") {
		t.Fatalf("counter lines must render without metrics:\n%s", r.Str)
	}
	if strings.Contains(r.Str, "delay_share:") || strings.Contains(r.Str, "acquire_ns_p50:") {
		t.Fatalf("latency lines must be absent without metrics:\n%s", r.Str)
	}
}
