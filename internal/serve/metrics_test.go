package serve_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"wflocks/internal/serve"
)

// metricsServer runs a metrics-enabled server plus an httptest front for
// its MetricsMux, and pushes a little traffic through so every series
// has data.
func metricsServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, lis := startServer(t, cfg)
	c := dial(t, lis)
	for i := 0; i < 64; i++ {
		k := "k" + string(rune('a'+i%16))
		if r := c.do(t, "SET", k, "v"); r.Str != "OK" {
			t.Fatalf("SET = %+v", r)
		}
		c.do(t, "GET", k)
	}
	c.do(t, "DEL", "ka")
	h := httptest.NewServer(s.MetricsMux())
	t.Cleanup(h.Close)
	return s, h
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, h := metricsServer(t, serve.Config{Workers: 4, TraceSample: 1})
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("Content-Type %q", ct)
	}
	resp.Body.Close()
	code, body := get(t, h.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	// Counter series fed by the traffic above must be nonzero.
	for _, re := range []string{
		`(?m)^wfserve_gets_total [1-9]\d*$`,
		`(?m)^wfserve_sets_total [1-9]\d*$`,
		`(?m)^wfserve_dels_total [1-9]\d*$`,
		`(?m)^wfserve_slab_free \d+$`,
		`(?m)^wfserve_slab_cap [1-9]\d*$`,
		`(?m)^wflocks_attempts_total [1-9]\d*$`,
		`(?m)^wflocks_wins_total [1-9]\d*$`,
		`(?m)^wflocks_help_rate \d`,
		`(?m)^wflocks_fastpath_rate \d`,
		// TraceSample implies metrics, so the latency summaries render.
		`(?m)^wflocks_delay_share \d`,
		`(?m)^wflocks_attempt_steps_total [1-9]\d*$`,
		`(?m)^wflocks_acquire_ns\{quantile="0\.99"\} [1-9]\d*$`,
		`(?m)^wflocks_acquire_ns_count [1-9]\d*$`,
		`(?m)^wflocks_delay_iters\{quantile="0\.5"\} \d+$`,
		`(?m)^wflocks_help_run_ns\{quantile="0\.5"\} \d+$`,
		`(?m)^wfserve_op_ns\{op="get",quantile="0\.99"\} [1-9]\d*$`,
		`(?m)^wfserve_op_ns_count\{op="set"\} [1-9]\d*$`,
		`(?m)^wfserve_pool_enqueues_total [1-9]\d*$`,
		`(?m)^wfserve_pool_shard_len\{shard="0"\} \d+$`,
		// Default backend is the wf map, which exposes table shape.
		`(?m)^wfserve_table_shard_size\{shard="0"\} [1-9]\d*$`,
		`(?m)^wfserve_table_shard_capacity\{shard="0"\} [1-9]\d*$`,
		`(?m)^wfserve_table_shard_max_probe\{shard="0"\} \d+$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("/metrics missing series %s\n%s", re, body)
		}
	}
	if !strings.Contains(body, "wfserve_workers 4") {
		t.Errorf("worker count not exported:\n%s", body)
	}
	// TraceSample implies metrics, so the stall-alert counter renders
	// (zero here: no watchdog bound is armed).
	if !regexp.MustCompile(`(?m)^wflocks_stall_alerts_total \d+$`).MatchString(body) {
		t.Errorf("/metrics missing wflocks_stall_alerts_total:\n%s", body)
	}
	// No journal configured, so no journal series.
	if strings.Contains(body, "wfserve_journal_") {
		t.Errorf("journal series must be absent without Config.JournalCap:\n%s", body)
	}
}

func TestMetricsJournalSeries(t *testing.T) {
	_, h := metricsServer(t, serve.Config{Workers: 4, JournalCap: 1024})
	code, body := get(t, h.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	// The 64 SETs and the DEL pushed by metricsServer are all appends.
	for _, re := range []string{
		`(?m)^wfserve_journal_appends_total [1-9]\d*$`,
		`(?m)^wfserve_journal_trimmed_total \d+$`,
		`(?m)^wfserve_journal_retained [1-9]\d*$`,
		`(?m)^wfserve_journal_lag_max \d+$`,
		`(?m)^wfserve_journal_reads_total \d+$`,
		`(?m)^wfserve_journal_dropped_total \d+$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("/metrics missing journal series %s\n%s", re, body)
		}
	}
}

// TestStatsStallAlerts drives the stall regime until the help-run
// watchdog fires, then checks the alerts surface everywhere they
// should: the STATS stall_alerts line and alert ring, the /metrics
// stall-alert counter, and the per-lock attribution series.
func TestStatsStallAlerts(t *testing.T) {
	srv, lis := startServer(t, serve.Config{
		Backend:         serve.BackendCache,
		Shards:          1,
		Workers:         8,
		WatchdogHelpRun: 50 * time.Microsecond,
		Stall:           func() { time.Sleep(200 * time.Microsecond) },
	})
	conns := make([]*client, 4)
	for i := range conns {
		conns[i] = dial(t, lis)
	}
	const per = 16
	deadline := time.Now().Add(20 * time.Second)
	for round := 0; srv.Manager().Observe().StallAlerts == 0; round++ {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired under the stall regime")
		}
		for ci, c := range conns {
			var buf []byte
			for j := 0; j < per; j++ {
				buf = serve.AppendCommand(buf, "SET", fmt.Sprintf("k%d-%d-%d", ci, round, j), "v")
			}
			if _, err := c.conn.Write(buf); err != nil {
				t.Fatalf("round %d: write burst: %v", round, err)
			}
		}
		for ci, c := range conns {
			for j := 0; j < per; j++ {
				if r, err := serve.ReadReply(c.br); err != nil || r.Str != "OK" {
					t.Fatalf("round %d conn %d SET %d reply = %+v, %v", round, ci, j, r, err)
				}
			}
		}
	}

	c := dial(t, lis)
	r := c.do(t, "STATS")
	if !regexp.MustCompile(`stall_alerts:[1-9]\d*`).MatchString(r.Str) {
		t.Errorf("STATS missing nonzero stall_alerts:\n%s", r.Str)
	}
	if !regexp.MustCompile(`alert0:alert-(help|delay) lock=\d+ pid=\d+ value=[1-9]\d*`).MatchString(r.Str) {
		t.Errorf("STATS missing alert ring lines:\n%s", r.Str)
	}

	h := httptest.NewServer(srv.MetricsMux())
	t.Cleanup(h.Close)
	code, body := get(t, h.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, re := range []string{
		`(?m)^wflocks_stall_alerts_total [1-9]\d*$`,
		// Watchdog alerts imply help runs, attributed to the shard lock.
		`(?m)^wflocks_lock_helps_total\{lock="\d+"\} [1-9]\d*$`,
		`(?m)^wflocks_lock_help_nanos_total\{lock="\d+"\} [1-9]\d*$`,
		`(?m)^wflocks_lock_alerts_total\{lock="\d+"\} [1-9]\d*$`,
	} {
		if !regexp.MustCompile(re).MatchString(body) {
			t.Errorf("/metrics missing series %s\n%s", re, body)
		}
	}
}

func TestMetricsEndpointWithoutMetrics(t *testing.T) {
	// MetricsMux works on a plain server too: counters render, latency
	// summaries are simply absent.
	_, h := metricsServer(t, serve.Config{Workers: 2})
	code, body := get(t, h.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "wflocks_attempts_total") {
		t.Fatalf("lock counters must render without Config.Metrics:\n%s", body)
	}
	if strings.Contains(body, "wflocks_delay_share") || strings.Contains(body, "wfserve_op_ns") {
		t.Fatalf("latency series must be absent without Config.Metrics:\n%s", body)
	}
}

func TestMetricsDebugHandlers(t *testing.T) {
	_, h := metricsServer(t, serve.Config{Workers: 2, Metrics: true})
	if code, body := get(t, h.URL+"/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars status %d body %.80s", code, body)
	}
	if code, body := get(t, h.URL+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d body %.80s", code, body)
	}
}

func TestStatsObservability(t *testing.T) {
	for _, backend := range []string{serve.BackendMap, serve.BackendCache} {
		t.Run(backend, func(t *testing.T) {
			_, lis := startServer(t, serve.Config{Backend: backend, Workers: 4, Metrics: true})
			c := dial(t, lis)
			for i := 0; i < 32; i++ {
				c.do(t, "SET", "k"+string(rune('a'+i%8)), "v")
				c.do(t, "GET", "k"+string(rune('a'+i%8)))
			}
			r := c.do(t, "STATS")
			if r.Kind != serve.ReplyBulk {
				t.Fatalf("STATS = %+v", r)
			}
			for _, want := range []string{
				"slab_free:", "slab_cap:",
				"lock_attempts:", "lock_helps:", "help_rate:", "fastpath_rate:",
				"pool_steals:", "pool_shard0:len=",
				"delay_share:", "acquire_ns_p50:", "acquire_ns_p99:",
				"help_run_ns_p50:", "get_ns_p50:", "set_ns_p99:",
			} {
				if !strings.Contains(r.Str, want) {
					t.Errorf("STATS missing %q:\n%s", want, r.Str)
				}
			}
		})
	}
}

func TestStatsWithoutMetrics(t *testing.T) {
	_, lis := startServer(t, serve.Config{Workers: 2})
	c := dial(t, lis)
	c.do(t, "SET", "k", "v")
	r := c.do(t, "STATS")
	if !strings.Contains(r.Str, "lock_attempts:") || !strings.Contains(r.Str, "pool_steals:") {
		t.Fatalf("counter lines must render without metrics:\n%s", r.Str)
	}
	if strings.Contains(r.Str, "delay_share:") || strings.Contains(r.Str, "acquire_ns_p50:") {
		t.Fatalf("latency lines must be absent without metrics:\n%s", r.Str)
	}
}
