package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wflocks"
	"wflocks/internal/obs"
)

// Backend selectors for Config.Backend.
const (
	BackendMap   = "map"
	BackendCache = "cache"
	BackendMutex = "mutex"
)

// Config shapes a Server. The zero value is not usable; call
// (*Config).withDefaults via NewServer, which fills every unset field.
type Config struct {
	// Backend selects the storage: BackendMap, BackendCache or
	// BackendMutex (default BackendMap).
	Backend string
	// Shards is the backend shard count (default 8).
	Shards int
	// Capacity is the backend's total entry capacity (default 65536).
	Capacity int
	// TTL is the cache backend's default time-to-live (0 = entries
	// never expire unless SET ... PX asks).
	TTL time.Duration
	// MaxKeyBytes and MaxValBytes bound key and value sizes; oversized
	// arguments are rejected with -ERR before touching the backend
	// (they also size the fixed-width string codecs, so keep them
	// honest: every stored entry pays for the full width).
	MaxKeyBytes, MaxValBytes int
	// Workers is the number of goroutines executing requests against
	// the backend (default GOMAXPROCS, floored at 4 so stalled winners
	// always have runnable helpers).
	Workers int
	// QueueShards and QueueDepth shape the dispatch WorkPool (defaults
	// 8 shards, 4096 slots). Requests hash by key onto a sub-ring, so
	// one key's requests drain through one home shard while the steal
	// path rebalances uneven traffic.
	QueueShards, QueueDepth int
	// JournalCap, when positive, attaches a wflog change journal of
	// that capacity: every successful SET and DEL appends a key-hash
	// event, and subscribers attach cursors through Server.Journal.
	// Appends are keyed by the hash, so one key's events stay in shard
	// order. The journal is lossy by design: a subscriber that pins
	// retention makes further appends drop (counted in STATS as
	// journal_dropped) rather than ever blocking request execution.
	JournalCap int
	// PipelineDepth bounds how many responses one connection may have
	// in flight before its reader stops reading new requests (default
	// 128). This is per-connection backpressure, not admission control.
	PipelineDepth int
	// MaxConns bounds concurrently served connections; dials beyond it
	// are told "-ERR max connections reached" and closed (default 256).
	MaxConns int
	// ReadTimeout caps how long a connection may sit idle between
	// commands; WriteTimeout caps each response flush (defaults 60s and
	// 10s; zero keeps the default, negative disables).
	ReadTimeout, WriteTimeout time.Duration
	// Stall, when non-nil, is called on every backend value write while
	// the protecting lock (or mutex) is held — the benchmark harness's
	// holder-stall injection point. Production servers leave it nil.
	Stall func()
	// Metrics enables the manager's latency histograms
	// (wflocks.WithMetrics) plus the server's own per-op latency
	// histograms, feeding the extended STATS fields and the /metrics
	// exposition (MetricsMux). TraceSample > 0 additionally attaches the
	// sampled flight recorder (wflocks.WithTracing, implying Metrics).
	Metrics     bool
	TraceSample int
	// TraceRing is the lock-level flight recorder's event capacity
	// (default 65536 here, not the library's 4096: the server shares
	// one manager between the backend and the dispatch pool, and idle
	// workers polling empty queue shards append fast-path attempts
	// continuously — a small ring would evict the interesting backend
	// events within milliseconds of a burst).
	TraceRing int
	// SpanRing is the capacity of the request-span flight recorder
	// (default 2048). Spans are recorded whenever TraceSample > 0: every
	// request's trip through the pipeline — read, admit, queue, execute,
	// flush — is stamped in its slab slot and published on completion,
	// joinable against the lock-level flight recorder by lock ID (see
	// WriteTrace and /debug/wftrace on MetricsMux).
	SpanRing int
	// WatchdogDelaySteps and WatchdogHelpRun arm the lock manager's
	// stall watchdog (wflocks.WithStallWatchdog, implying Metrics): an
	// attempt charged more delay-schedule steps than the former, or a
	// single help run longer than the latter, counts a stall alert —
	// exposed as wflocks_stall_alerts_total on /metrics and as
	// stall_alerts plus an alert ring in STATS. Zero disables that
	// bound.
	WatchdogDelaySteps uint64
	WatchdogHelpRun    time.Duration
	// NewManager builds the wait-free lock manager hosting the backend
	// and the dispatch pool. procs is the peak number of goroutines
	// that may contend (workers + connections + headroom), maxLocks and
	// maxCritical the bounds the structures need; extra carries the
	// observability options the Metrics/TraceSample fields selected.
	// Nil selects the paper's §6.2 unknown-bounds adaptive-delay
	// configuration — the variant the queue benchmarks proved out
	// (internal/bench's AdaptiveManager is the same shape).
	NewManager func(procs, maxLocks, maxCritical int, extra ...wflocks.Option) (*wflocks.Manager, error)
}

// withDefaults fills unset fields.
func (cfg Config) withDefaults() Config {
	if cfg.Backend == "" {
		cfg.Backend = BackendMap
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 65536
	}
	if cfg.MaxKeyBytes <= 0 {
		cfg.MaxKeyBytes = 64
	}
	if cfg.MaxValBytes <= 0 {
		cfg.MaxValBytes = 128
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 4 {
		cfg.Workers = 4
	}
	if cfg.QueueShards <= 0 {
		cfg.QueueShards = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	if cfg.PipelineDepth <= 0 {
		cfg.PipelineDepth = 128
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 256
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = 60 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.TraceSample > 0 {
		cfg.Metrics = true
	}
	if cfg.WatchdogDelaySteps > 0 || cfg.WatchdogHelpRun > 0 {
		cfg.Metrics = true
	}
	if cfg.SpanRing <= 0 {
		cfg.SpanRing = 2048
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = 65536
	}
	if cfg.NewManager == nil {
		cfg.NewManager = func(procs, maxLocks, maxCritical int, extra ...wflocks.Option) (*wflocks.Manager, error) {
			opts := []wflocks.Option{
				wflocks.WithUnknownBounds(procs),
				wflocks.WithMaxLocks(maxLocks),
				wflocks.WithMaxCriticalSteps(maxCritical),
			}
			return wflocks.New(append(opts, extra...)...)
		}
	}
	return cfg
}

// request is one in-flight command: filled by a connection reader,
// executed by a worker, written by the connection's writer. The resp
// buffer is reused across the slot's lifetimes; done is fresh per
// request (closed by the executing worker).
type request struct {
	idx  int // slot index in the slab; -1 for inline responses
	req  Request
	resp []byte
	done chan struct{}

	// span is the request's causal trace, stamped in place as the slot
	// moves through the pipeline (reader → worker → writer). Plain
	// stores: each stage's writes are ordered by the pipeline's own
	// happens-before edges (free-list receive, queue hand-off, done
	// close), so no stage races another. Only populated when the
	// server records spans (Config.TraceSample > 0).
	span obs.Span
}

// Server is the KV/cache service: an accept loop feeding per-connection
// reader/writer pairs, a shard-by-key WorkPool dispatching requests to
// backend workers, and a graceful drain. Construct with NewServer,
// start with Serve, stop with Shutdown.
type Server struct {
	cfg     Config
	backend Backend
	mgr     *wflocks.Manager
	pool    *wflocks.WorkPool[uint64]
	journal *wflocks.Log[uint64]

	// opHists are the per-op service-time histograms (request dequeue to
	// response ready), sharded by worker index; nil without Config.Metrics.
	opGets, opSets, opDels *obs.PHist

	// spans is the request-span flight recorder; nil unless
	// Config.TraceSample > 0, and every span-stamping site is guarded
	// by that one nil check. reqID and connID label spans.
	spans  *obs.SpanRing
	reqID  atomic.Uint64
	connID atomic.Uint64

	// slab holds in-flight requests; the pool carries slab indices
	// (single-word elements keep the pool's critical sections O(1)).
	// free hands out unused slots and doubles as admission control:
	// readers block here when the service is saturated.
	slab []request
	free chan int

	workerCtx    context.Context
	workerCancel context.CancelFunc
	workersWG    sync.WaitGroup
	connsWG      sync.WaitGroup

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	draining  bool

	stats serverStats
	start time.Time
}

// serverStats is the atomic counter block behind STATS.
type serverStats struct {
	accepted, refused, curConns atomic.Int64
	gets, sets, dels, pings     atomic.Uint64
	hits                        atomic.Uint64
	errs                        atomic.Uint64
	journalDrops                atomic.Uint64
}

// Journal shape: the segment is the reclamation granularity, the batch
// bounds subscriber NextBatch chunks, and the consumer pool caps
// concurrently attached subscribers. Fixed rather than configured —
// they size critical-section budgets, not semantics.
const (
	journalSegment   = 64
	journalBatch     = 8
	journalConsumers = 8
)

// NewServer builds the service: manager, backend, dispatch pool and
// worker goroutines (workers start immediately; connections arrive via
// Serve).
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()

	// The manager hosts the backend's shard locks and the pool's shard
	// locks: L=2 covers the pool's steal path, T the larger of the two
	// structures' worst critical sections, and the process bound covers
	// workers + every connection reader + headroom.
	kw := wflocks.StringCodec(cfg.MaxKeyBytes).Words()
	vw := wflocks.StringCodec(cfg.MaxValBytes).Words()
	perShard := nextPow2((cfg.Capacity + cfg.Shards - 1) / cfg.Shards)
	maxCritical := wflocks.CacheCriticalSteps(perShard, kw, vw)
	if b := wflocks.MapCriticalSteps(perShard, kw, vw); b > maxCritical {
		maxCritical = b
	}
	if b := wflocks.WorkPoolCriticalSteps(1, 1); b > maxCritical {
		maxCritical = b
	}
	if cfg.JournalCap > 0 {
		if b := wflocks.LogCriticalSteps(1, journalBatch, journalConsumers, journalSegment); b > maxCritical {
			maxCritical = b
		}
	}
	procs := cfg.Workers + cfg.MaxConns + 4
	var extra []wflocks.Option
	if cfg.TraceSample > 0 {
		extra = append(extra, wflocks.WithTracing(cfg.TraceSample),
			wflocks.WithTraceRing(cfg.TraceRing))
	} else if cfg.Metrics {
		extra = append(extra, wflocks.WithMetrics())
	}
	if cfg.WatchdogDelaySteps > 0 || cfg.WatchdogHelpRun > 0 {
		extra = append(extra, wflocks.WithStallWatchdog(cfg.WatchdogDelaySteps, cfg.WatchdogHelpRun))
	}
	mgr, err := cfg.NewManager(procs, 2, maxCritical, extra...)
	if err != nil {
		return nil, fmt.Errorf("serve: building manager: %w", err)
	}

	vc := wflocks.Codec[string](wflocks.StringCodec(cfg.MaxValBytes))
	if cfg.Stall != nil {
		vc = hookCodec{inner: vc, hook: cfg.Stall}
	}
	backend, err := newBackend(mgr, &cfg, vc)
	if err != nil {
		return nil, err
	}
	pool, err := wflocks.NewWorkPoolOf[uint64](mgr, wflocks.IntegerCodec[uint64](),
		wflocks.WithPoolShards(cfg.QueueShards), wflocks.WithPoolCapacity(cfg.QueueDepth),
		wflocks.WithPoolBatch(1))
	if err != nil {
		return nil, fmt.Errorf("serve: building dispatch pool: %w", err)
	}
	var journal *wflocks.Log[uint64]
	if cfg.JournalCap > 0 {
		// Small journals get a proportionally finer reclamation grain:
		// the segment cannot exceed one shard's ring.
		seg := journalSegment
		if per := nextPow2((cfg.JournalCap + 7) / 8); per < seg {
			seg = per
		}
		journal, err = wflocks.NewLog[uint64](mgr,
			wflocks.WithLogCapacity(cfg.JournalCap), wflocks.WithLogSegment(seg),
			wflocks.WithLogBatch(journalBatch), wflocks.WithLogConsumers(journalConsumers))
		if err != nil {
			return nil, fmt.Errorf("serve: building journal: %w", err)
		}
	}

	s := &Server{
		cfg:       cfg,
		backend:   backend,
		mgr:       mgr,
		pool:      pool,
		journal:   journal,
		slab:      make([]request, pool.Cap()),
		free:      make(chan int, pool.Cap()),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		start:     time.Now(),
	}
	if cfg.Metrics {
		s.opGets = obs.NewPHist(cfg.Workers)
		s.opSets = obs.NewPHist(cfg.Workers)
		s.opDels = obs.NewPHist(cfg.Workers)
	}
	if cfg.TraceSample > 0 {
		s.spans = obs.NewSpanRing(cfg.SpanRing)
	}
	for i := range s.slab {
		s.slab[i].idx = i
		s.free <- i
	}
	s.workerCtx, s.workerCancel = context.WithCancel(context.Background())
	for w := 0; w < cfg.Workers; w++ {
		s.workersWG.Add(1)
		go s.worker(w)
	}
	return s, nil
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Backend exposes the storage for tests and harnesses.
func (s *Server) Backend() Backend { return s.backend }

// Manager exposes the wait-free lock manager hosting the backend and
// dispatch pool, for harnesses reporting its Stats/Observe snapshots.
func (s *Server) Manager() *wflocks.Manager { return s.mgr }

// Journal exposes the change journal (nil unless Config.JournalCap is
// set). Subscribers attach cursors with NewCursor/NewTailCursor and
// read JournalEntry-encoded events; a subscriber that falls behind
// pins retention only until the log fills, after which new events are
// dropped (see Config.JournalCap).
func (s *Server) Journal() *wflocks.Log[uint64] { return s.journal }

// JournalEntry encodes the journal event for key: the key's FNV-1a
// hash with the low bit replaced by the op (1 = SET, 0 = DEL).
func JournalEntry(key string, set bool) uint64 {
	e := fnv1a(key) &^ 1
	if set {
		e |= 1
	}
	return e
}

// journalAppend records a successful write. Keyed by the hash so one
// key's events stay in per-shard append order; never blocks — a full
// journal drops the event and counts it.
func (s *Server) journalAppend(key string, set bool) {
	if s.journal == nil {
		return
	}
	if !s.journal.TryAppendKeyed(fnv1a(key), JournalEntry(key, set)) {
		s.stats.journalDrops.Add(1)
	}
}

// Serve accepts connections on lis until Shutdown (or a listener
// error). Several Serve calls may run on distinct listeners. Serve
// returns nil after a graceful Shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return errors.New("serve: server is shut down")
	}
	s.listeners[lis] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			delete(s.listeners, lis)
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if int(s.stats.curConns.Load()) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.stats.refused.Add(1)
			conn.Write(AppendError(nil, "max connections reached"))
			conn.Close()
			continue
		}
		s.stats.curConns.Add(1)
		s.stats.accepted.Add(1)
		s.conns[conn] = struct{}{}
		s.connsWG.Add(2) // reader + writer
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// dropConn unregisters a finished connection.
func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.stats.curConns.Add(-1)
	conn.Close()
}

// handleConn runs a connection's reader loop and spawns its writer.
// The reader parses commands and dispatches them into the pool; the
// writer preserves request order (the protocol is pipelined: responses
// must come back in request order even though workers execute
// concurrently) and coalesces flushes.
func (s *Server) handleConn(conn net.Conn) {
	pending := make(chan *request, s.cfg.PipelineDepth)
	go s.connWriter(conn, pending)

	defer s.connsWG.Done()
	defer close(pending)

	var connID uint64
	if s.spans != nil {
		connID = s.connID.Add(1)
	}

	// inFlight tracks the last dispatched request per key, so pipelined
	// commands on one connection read their own writes: a request waits
	// for its same-key predecessor to execute before dispatching.
	// Distinct keys still execute concurrently, which is the pipelining
	// contract a client can actually rely on. The done channel is
	// captured by value — the slab slot may be reused by another
	// connection after retirement, but a captured channel, once closed,
	// stays closed.
	inFlight := make(map[string]chan struct{})

	br := bufio.NewReader(conn)
	for {
		if s.isDraining() {
			return
		}
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		req, err := ReadCommand(br)
		if err != nil {
			if IsProtoError(err) {
				// Recoverable command error: answer in order, keep going.
				s.stats.errs.Add(1)
				pending <- &request{idx: -1, resp: AppendError(nil, err.Error()), done: closedChan}
				continue
			}
			return // framing error, EOF, deadline: drop the connection
		}
		if pe := s.validate(&req); pe != nil {
			s.stats.errs.Add(1)
			pending <- &request{idx: -1, resp: AppendError(nil, pe.Error()), done: closedChan}
			continue
		}
		switch req.Op {
		case OpPing:
			s.stats.pings.Add(1)
			pending <- &request{idx: -1, resp: AppendSimple(nil, "PONG"), done: closedChan}
		case OpStats:
			pending <- &request{idx: -1, resp: AppendBulk(nil, s.statsText()), done: closedChan}
		default:
			var readNS int64
			if s.spans != nil {
				readNS = time.Now().UnixNano()
			}
			if prev, ok := inFlight[req.Key]; ok {
				<-prev
				delete(inFlight, req.Key)
			}
			// Saturated services park readers here; a forced Shutdown
			// cancels workerCtx, which must also release them (the
			// graceful path replenishes free as writers drain).
			var idx int
			select {
			case idx = <-s.free:
			case <-s.workerCtx.Done():
				return
			}
			slot := &s.slab[idx]
			slot.req = req
			slot.resp = slot.resp[:0]
			slot.done = make(chan struct{})
			if s.spans != nil {
				// A whole-struct store resets every later stage stamp
				// along with filling the identity fields.
				slot.span = obs.Span{
					ID:      s.reqID.Add(1),
					Conn:    connID,
					Slot:    idx,
					Worker:  -1,
					Op:      req.Op.String(),
					LockID:  s.backend.LockID(req.Key),
					KeyHash: fnv1a(req.Key),
					ReadNS:  readNS,
					AdmitNS: time.Now().UnixNano(),
				}
				// Stamped before the enqueue: the instant the call
				// returns a worker may own the slot, and a blocked
				// enqueue (queue backpressure) is queue wait too.
				slot.span.EnqNS = slot.span.AdmitNS
			}
			if err := s.pool.EnqueueKeyed(s.workerCtx, fnv1a(req.Key), uint64(idx)); err != nil {
				// Only Shutdown cancels the pool; answer and retire.
				slot.resp = AppendError(slot.resp, "server shutting down")
				close(slot.done)
			} else {
				inFlight[req.Key] = slot.done
				if len(inFlight) > 2*s.cfg.PipelineDepth {
					pruneDone(inFlight)
				}
			}
			pending <- slot
		}
	}
}

// pruneDone evicts completed entries so a long-lived connection's
// read-your-writes map stays proportional to its true in-flight window.
func pruneDone(inFlight map[string]chan struct{}) {
	for k, ch := range inFlight {
		select {
		case <-ch:
			delete(inFlight, k)
		default:
		}
	}
}

// closedChan is the pre-closed done channel of requests answered
// inline (PING, STATS, protocol errors) — they flow through pending so
// ordering holds, without costing an allocation.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// connWriter writes responses in request order, flushing only when the
// pipeline has no further response ready — one syscall covers a burst
// of pipelined requests (write coalescing), while a lone request still
// flushes before the writer blocks.
func (s *Server) connWriter(conn net.Conn, pending chan *request) {
	defer s.connsWG.Done()
	defer s.dropConn(conn)
	bw := bufio.NewWriter(conn)
	flush := func() bool {
		if bw.Buffered() == 0 {
			return true
		}
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		return bw.Flush() == nil
	}
	for {
		var r *request
		var ok bool
		select {
		case r, ok = <-pending:
		default:
			// Nothing queued: flush what we have before blocking.
			if !flush() {
				s.discard(pending)
				return
			}
			r, ok = <-pending
		}
		if !ok {
			flush()
			return
		}
		select {
		case <-r.done:
		default:
			// The response is still being computed: flush before waiting.
			if !flush() {
				// The worker still owns the slot; wait for it before the
				// slot can be handed to another connection (mirrors
				// discard's contract).
				<-r.done
				s.retire(r)
				s.discard(pending)
				return
			}
			<-r.done
		}
		_, err := bw.Write(r.resp)
		if s.spans != nil && r.idx >= 0 && r.span.ReadNS != 0 {
			// Publish the completed span before the slot can be handed
			// to another connection; the ring copies it by value.
			r.span.WriteNS = time.Now().UnixNano()
			s.spans.Publish(&r.span)
		}
		s.retire(r)
		if err != nil {
			s.discard(pending)
			return
		}
	}
}

// retire returns a slab-backed request's slot to the free list (inline
// responses carry no slot).
func (s *Server) retire(r *request) {
	if r.idx >= 0 {
		s.free <- r.idx
	}
}

// discard drains and retires whatever is still pending after a write
// failure, so slots are not leaked when a client disappears
// mid-pipeline. Workers may still be executing these requests; their
// done channels are awaited so a slot is never freed while a worker
// can touch it.
func (s *Server) discard(pending chan *request) {
	for r := range pending {
		<-r.done
		s.retire(r)
	}
}

// worker executes requests against the backend until Shutdown cancels
// the worker context. id shards the per-op latency histograms: one
// writer per worker, so recording never contends.
func (s *Server) worker(id int) {
	defer s.workersWG.Done()
	for {
		idx, err := s.pool.Dequeue(s.workerCtx)
		if err != nil {
			return
		}
		slot := &s.slab[idx]
		if s.spans != nil {
			slot.span.DeqNS = time.Now().UnixNano()
			slot.span.Worker = id
		}
		if s.opGets != nil {
			t0 := time.Now()
			if s.spans != nil {
				slot.span.ExecNS = t0.UnixNano()
			}
			slot.resp = s.execute(slot.resp[:0], &slot.req)
			if h := s.opHist(slot.req.Op); h != nil {
				h.Record(id, uint64(time.Since(t0)))
			}
		} else {
			slot.resp = s.execute(slot.resp[:0], &slot.req)
		}
		if s.spans != nil {
			slot.span.DoneNS = time.Now().UnixNano()
		}
		close(slot.done)
	}
}

// opHist picks the per-op latency histogram (nil for ops not measured).
func (s *Server) opHist(op Op) *obs.PHist {
	switch op {
	case OpGet:
		return s.opGets
	case OpSet:
		return s.opSets
	case OpDel:
		return s.opDels
	}
	return nil
}

// execute runs one command against the backend, appending the RESP
// reply to dst.
func (s *Server) execute(dst []byte, req *Request) []byte {
	switch req.Op {
	case OpGet:
		s.stats.gets.Add(1)
		if v, ok := s.backend.Get(req.Key); ok {
			s.stats.hits.Add(1)
			return AppendBulk(dst, v)
		}
		return AppendNullBulk(dst)
	case OpSet:
		s.stats.sets.Add(1)
		if err := s.backend.Set(req.Key, req.Val, req.TTL); err != nil {
			s.stats.errs.Add(1)
			return AppendError(dst, err.Error())
		}
		s.journalAppend(req.Key, true)
		return AppendSimple(dst, "OK")
	case OpDel:
		s.stats.dels.Add(1)
		if s.backend.Del(req.Key) {
			s.journalAppend(req.Key, false)
			return AppendInt(dst, 1)
		}
		return AppendInt(dst, 0)
	}
	return AppendError(dst, "unreachable op")
}

// validate applies the configured size bounds before a request reaches
// the slab (oversized keys would panic the fixed-width codec — the
// bound is the protocol's, enforced here).
func (s *Server) validate(req *Request) error {
	if len(req.Key) > s.cfg.MaxKeyBytes {
		return protoErrorf("key exceeds %d bytes", s.cfg.MaxKeyBytes)
	}
	if len(req.Val) > s.cfg.MaxValBytes {
		return protoErrorf("value exceeds %d bytes", s.cfg.MaxValBytes)
	}
	return nil
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// statsAlerts bounds the alert lines STATS renders (single digits keep
// the lexicographically sorted output in ring order).
const statsAlerts = 8

// Spans snapshots the request-span flight recorder, ordered by request
// ID; nil unless Config.TraceSample > 0.
func (s *Server) Spans() []obs.Span {
	if s.spans == nil {
		return nil
	}
	return s.spans.Snapshot()
}

// statsText renders the STATS reply.
func (s *Server) statsText() string {
	lines := []string{
		fmt.Sprintf("backend:%s", s.backend.Name()),
		fmt.Sprintf("uptime_ms:%d", time.Since(s.start).Milliseconds()),
		fmt.Sprintf("conns:%d", s.stats.curConns.Load()),
		fmt.Sprintf("accepted:%d", s.stats.accepted.Load()),
		fmt.Sprintf("refused:%d", s.stats.refused.Load()),
		fmt.Sprintf("gets:%d", s.stats.gets.Load()),
		fmt.Sprintf("hits:%d", s.stats.hits.Load()),
		fmt.Sprintf("sets:%d", s.stats.sets.Load()),
		fmt.Sprintf("dels:%d", s.stats.dels.Load()),
		fmt.Sprintf("pings:%d", s.stats.pings.Load()),
		fmt.Sprintf("errors:%d", s.stats.errs.Load()),
		fmt.Sprintf("queue_len:%d", s.pool.Len()),
		fmt.Sprintf("workers:%d", s.cfg.Workers),
		fmt.Sprintf("slab_free:%d", len(s.free)),
		fmt.Sprintf("slab_cap:%d", cap(s.free)),
	}
	ms := s.mgr.Stats()
	lines = append(lines,
		fmt.Sprintf("lock_attempts:%d", ms.Attempts),
		fmt.Sprintf("lock_helps:%d", ms.Helps),
		fmt.Sprintf("help_rate:%.4f", ms.HelpRate()),
		fmt.Sprintf("fastpath_rate:%.4f", ms.FastPathRate()),
	)
	if s.journal != nil {
		js := s.journal.Stats()
		lines = append(lines,
			fmt.Sprintf("journal_appends:%d", js.Appends),
			fmt.Sprintf("journal_trimmed:%d", js.Trimmed),
			fmt.Sprintf("journal_retained:%d", js.Len),
			fmt.Sprintf("journal_lag_max:%d", js.MaxLag),
			fmt.Sprintf("journal_reads:%d", js.Reads),
			fmt.Sprintf("journal_dropped:%d", s.stats.journalDrops.Load()),
		)
	}
	ps := s.pool.Stats()
	lines = append(lines, fmt.Sprintf("pool_steals:%d", ps.Steals))
	for i, sh := range ps.Shards {
		lines = append(lines, fmt.Sprintf("pool_shard%d:len=%d steals=%d enq=%d deq=%d", i, sh.Len, sh.Steals, sh.Enqueues, sh.Dequeues))
	}
	if os := s.mgr.Observe(); os.Enabled {
		lines = append(lines,
			fmt.Sprintf("delay_share:%.4f", os.DelayShare()),
			fmt.Sprintf("acquire_ns_p50:%d", os.Acquire.Quantile(0.50)),
			fmt.Sprintf("acquire_ns_p99:%d", os.Acquire.Quantile(0.99)),
			fmt.Sprintf("help_run_ns_p50:%d", os.HelpRun.Quantile(0.50)),
			fmt.Sprintf("help_run_ns_p99:%d", os.HelpRun.Quantile(0.99)),
			fmt.Sprintf("stall_alerts:%d", os.StallAlerts),
		)
		// The watchdog's last alerts, newest last (at most statsAlerts
		// so the zero-padded index keeps the sorted output in order).
		alerts := os.Alerts
		if len(alerts) > statsAlerts {
			alerts = alerts[len(alerts)-statsAlerts:]
		}
		for i, ev := range alerts {
			lines = append(lines, fmt.Sprintf("alert%d:%s lock=%d pid=%d value=%d",
				i, ev.Kind, ev.LockID, ev.Pid, ev.Value))
		}
		for _, oh := range []struct {
			name string
			h    *obs.PHist
		}{{"get", s.opGets}, {"set", s.opSets}, {"del", s.opDels}} {
			if oh.h == nil {
				continue
			}
			hist := oh.h.Snapshot()
			if hist.Count() == 0 {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s_ns_p50:%d", oh.name, hist.Quantile(0.50)),
				fmt.Sprintf("%s_ns_p99:%d", oh.name, hist.Quantile(0.99)))
		}
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// Shutdown drains the server: listeners close (new connections are
// refused), connection readers stop at their next command boundary,
// every dispatched request completes and is written, writers flush,
// and only then do the backend workers stop. ctx bounds the wait;
// expiry force-closes what remains and returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("serve: Shutdown called twice")
	}
	s.draining = true
	for lis := range s.listeners {
		lis.Close()
	}
	// Unblock readers parked in Read: an immediate deadline surfaces as
	// a read error, the reader sees draining and exits cleanly, and its
	// writer drains the pipeline behind it.
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.connsWG.Wait()
		// All readers and writers are gone, so no request is in flight;
		// now the workers can stop.
		s.workerCancel()
		s.workersWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		s.workerCancel()
		return ctx.Err()
	}
}
