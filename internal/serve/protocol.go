// Package serve is the network-facing KV/cache service: a small
// RESP-subset text protocol (GET/SET/DEL/PING/STATS) over TCP, served
// by a shard-by-key WorkPool of workers executing against a wait-free
// Map or Cache backend (or a mutex baseline, for the head-to-head tail
// latency comparison the load harness exists to make).
//
// The protocol is the well-known Redis shape, restricted to what a KV
// service needs. Requests arrive either as RESP arrays
// ("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n") or as inline commands
// ("SET k v\r\n"); replies are RESP simple strings, errors, integers
// and bulk strings. SET takes an optional "PX <milliseconds>"
// time-to-live, honored by the cache backend and rejected by backends
// that cannot expire.
package serve

import (
	"bufio"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Op enumerates the protocol's commands.
type Op uint8

// The command set.
const (
	OpGet Op = iota + 1
	OpSet
	OpDel
	OpPing
	OpStats
)

// String names the op for stats and error messages.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDel:
		return "DEL"
	case OpPing:
		return "PING"
	case OpStats:
		return "STATS"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Request is one parsed command.
type Request struct {
	Op  Op
	Key string
	Val string
	// TTL is SET's optional PX argument; zero means no per-entry TTL.
	TTL time.Duration
}

// protoError is a client-visible command error: the server replies
// "-ERR ..." and keeps the connection; anything else tears it down.
type protoError struct{ msg string }

func (e *protoError) Error() string { return e.msg }

// protoErrorf builds a client-visible error.
func protoErrorf(format string, args ...any) error {
	return &protoError{msg: fmt.Sprintf(format, args...)}
}

// IsProtoError reports whether err is a recoverable command error whose
// message should be sent to the client as an -ERR reply.
func IsProtoError(err error) bool {
	var pe *protoError
	return errors.As(err, &pe)
}

// Framing limits. Lines and bulk strings beyond these are a malformed
// or hostile peer; the connection is closed.
const (
	maxLineBytes = 4096
	maxArrayLen  = 8
)

// readLine reads one CRLF-terminated line, excluding the terminator.
// The maxLineBytes bound is enforced while reading (ReadSlice fills at
// most one bufio buffer per call), so a peer streaming bytes with no
// newline cannot grow server memory past the limit.
func readLine(r *bufio.Reader) (string, error) {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		if len(line)+len(frag) > maxLineBytes {
			return "", fmt.Errorf("serve: protocol line exceeds %d bytes", maxLineBytes)
		}
		if err == nil {
			if line == nil {
				line = frag // common case: whole line in one buffer
			} else {
				line = append(line, frag...)
			}
			break
		}
		if err != bufio.ErrBufferFull {
			return "", err
		}
		line = append(line, frag...)
	}
	n := len(line)
	if n > 0 && line[n-1] == '\n' {
		n--
	}
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	return string(line[:n]), nil
}

// ReadCommand reads one command in either accepted form. Errors
// satisfying IsProtoError are recoverable (reply -ERR, keep reading);
// all others are connection-fatal (malformed framing, I/O errors,
// deadline expiry).
func ReadCommand(r *bufio.Reader) (Request, error) {
	line, err := readLine(r)
	if err != nil {
		return Request{}, err
	}
	if len(line) == 0 {
		return Request{}, protoErrorf("empty command")
	}
	if line[0] != '*' {
		return parseArgs(strings.Fields(line))
	}
	n, err := strconv.Atoi(line[1:])
	if err != nil || n < 1 || n > maxArrayLen {
		return Request{}, fmt.Errorf("serve: bad array header %q", line)
	}
	args := make([]string, n)
	for i := 0; i < n; i++ {
		hdr, err := readLine(r)
		if err != nil {
			return Request{}, err
		}
		if len(hdr) < 2 || hdr[0] != '$' {
			return Request{}, fmt.Errorf("serve: bad bulk header %q", hdr)
		}
		bl, err := strconv.Atoi(hdr[1:])
		if err != nil || bl < 0 || bl > maxLineBytes {
			return Request{}, fmt.Errorf("serve: bad bulk length %q", hdr)
		}
		buf := make([]byte, bl+2)
		if _, err := readFull(r, buf); err != nil {
			return Request{}, err
		}
		if buf[bl] != '\r' || buf[bl+1] != '\n' {
			return Request{}, errors.New("serve: bulk string missing CRLF")
		}
		args[i] = string(buf[:bl])
	}
	return parseArgs(args)
}

// readFull fills buf from r (bufio.Reader has no ReadFull of its own).
func readFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		k, err := r.Read(buf[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// parseArgs assembles a Request from split arguments. Argument-count
// and argument-value problems are proto errors (the client hears -ERR
// and may continue); only framing problems tear the connection down.
func parseArgs(args []string) (Request, error) {
	if len(args) == 0 {
		return Request{}, protoErrorf("empty command")
	}
	cmd := strings.ToUpper(args[0])
	switch cmd {
	case "GET":
		if len(args) != 2 {
			return Request{}, protoErrorf("wrong number of arguments for GET")
		}
		return Request{Op: OpGet, Key: args[1]}, nil
	case "SET":
		if len(args) != 3 && len(args) != 5 {
			return Request{}, protoErrorf("wrong number of arguments for SET")
		}
		req := Request{Op: OpSet, Key: args[1], Val: args[2]}
		if len(args) == 5 {
			if strings.ToUpper(args[3]) != "PX" {
				return Request{}, protoErrorf("syntax error: expected PX, got %q", args[3])
			}
			ms, err := strconv.ParseInt(args[4], 10, 64)
			if err != nil || ms <= 0 {
				return Request{}, protoErrorf("invalid PX value %q", args[4])
			}
			req.TTL = time.Duration(ms) * time.Millisecond
		}
		return req, nil
	case "DEL":
		if len(args) != 2 {
			return Request{}, protoErrorf("wrong number of arguments for DEL")
		}
		return Request{Op: OpDel, Key: args[1]}, nil
	case "PING":
		if len(args) != 1 {
			return Request{}, protoErrorf("wrong number of arguments for PING")
		}
		return Request{Op: OpPing}, nil
	case "STATS":
		if len(args) != 1 {
			return Request{}, protoErrorf("wrong number of arguments for STATS")
		}
		return Request{Op: OpStats}, nil
	}
	return Request{}, protoErrorf("unknown command %q", args[0])
}

// Reply encoders: each appends one RESP reply to dst and returns the
// extended slice, so response buffers are reused across requests.

// AppendSimple appends "+s\r\n".
func AppendSimple(dst []byte, s string) []byte {
	dst = append(dst, '+')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendError appends "-ERR msg\r\n".
func AppendError(dst []byte, msg string) []byte {
	dst = append(dst, "-ERR "...)
	dst = append(dst, msg...)
	return append(dst, '\r', '\n')
}

// AppendInt appends ":n\r\n".
func AppendInt(dst []byte, n int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, '\r', '\n')
}

// AppendBulk appends "$len\r\ns\r\n".
func AppendBulk(dst []byte, s string) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendNullBulk appends the RESP null bulk "$-1\r\n" (GET miss).
func AppendNullBulk(dst []byte) []byte {
	return append(dst, "$-1\r\n"...)
}

// AppendCommand appends args as a RESP array — the client-side encoder
// the load generator uses.
func AppendCommand(dst []byte, args ...string) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(len(args)), 10)
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		dst = AppendBulk(dst, a)
	}
	return dst
}

// ReplyKind tags a parsed reply.
type ReplyKind uint8

// The reply kinds a client can receive.
const (
	ReplySimple ReplyKind = iota + 1
	ReplyError
	ReplyInt
	ReplyBulk
	ReplyNull
)

// Reply is one parsed server reply (the client side of the protocol).
type Reply struct {
	Kind ReplyKind
	Str  string // simple/error/bulk payload
	Int  int64
}

// ReadReply parses one reply from r.
func ReadReply(r *bufio.Reader) (Reply, error) {
	line, err := readLine(r)
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, errors.New("serve: empty reply line")
	}
	switch line[0] {
	case '+':
		return Reply{Kind: ReplySimple, Str: line[1:]}, nil
	case '-':
		return Reply{Kind: ReplyError, Str: strings.TrimPrefix(line[1:], "ERR ")}, nil
	case ':':
		n, err := strconv.ParseInt(line[1:], 10, 64)
		if err != nil {
			return Reply{}, fmt.Errorf("serve: bad integer reply %q", line)
		}
		return Reply{Kind: ReplyInt, Int: n}, nil
	case '$':
		bl, err := strconv.Atoi(line[1:])
		if err != nil || bl < -1 || bl > maxLineBytes {
			return Reply{}, fmt.Errorf("serve: bad bulk reply header %q", line)
		}
		if bl == -1 {
			return Reply{Kind: ReplyNull}, nil
		}
		buf := make([]byte, bl+2)
		if _, err := readFull(r, buf); err != nil {
			return Reply{}, err
		}
		if buf[bl] != '\r' || buf[bl+1] != '\n' {
			return Reply{}, errors.New("serve: bulk reply missing CRLF")
		}
		return Reply{Kind: ReplyBulk, Str: string(buf[:bl])}, nil
	}
	return Reply{}, fmt.Errorf("serve: unknown reply type %q", line)
}
