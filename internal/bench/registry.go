package bench

// Experiment couples an id with its runner and the claim it reproduces.
type Experiment struct {
	ID    string
	Claim string
	Run   func(Scale) (*Table, error)
}

// Experiments lists every experiment in order. Each reproduces one
// quantitative claim of the paper (see DESIGN.md §6).
func Experiments() []Experiment {
	return []Experiment{
		{"E1", "step bound O(κ²L²T) per attempt (Theorem 6.1)", E1StepBound},
		{"E2", "success probability ≥ 1/C_p vs adaptive player (Theorem 6.9)", E2Fairness},
		{"E3", "dining philosophers: p ≥ 1/4, O(1) steps (Section 1)", E3Philosophers},
		{"E4", "retry-until-success in O(κ³L³T) expected steps (Corollary)", E4Retry},
		{"E5", "unknown bounds: ≤ log(κLT) degradation (Theorem 6.10)", E5Unknown},
		{"E6", "active set adaptivity: O(k) ops, O(1) getSet (Section 5.1)", E6ActiveSet},
		{"E7", "idempotence: constant overhead, appears-once (Theorem 4.2)", E7Idempotence},
		{"E8", "wait-free vs lock-free vs blocking under stalls (Sections 1, 3)", E8Baselines},
		{"E9", "ablation of the fixed delays (Observation 6.7)", E9DelayAblation},
		{"E10", "native throughput practicality (Section 7)", E10Native},
		{"E11", "point-contention adaptivity vs O(P) universal construction (Section 3)", E11Adaptivity},
	}
}

// Lookup finds an experiment by id, or nil.
func Lookup(id string) *Experiment {
	for _, e := range Experiments() {
		if e.ID == id {
			return &e
		}
	}
	return nil
}
