package bench

import (
	"strconv"
	"testing"
	"time"

	"wflocks/internal/workload"
)

// TestRunServiceScenario runs the quick-scale service table end to end
// over the loopback transport. The stall regime sleeps for real, so
// this is skipped in -short (the CI smoke job covers the raw path).
func TestRunServiceScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("stall-regime rows sleep for real; skip in -short")
	}
	sc := workload.LookupServiceScenario("service:read")
	if sc == nil {
		t.Fatal("service:read missing")
	}
	tab, err := RunServiceScenario(sc, Quick)
	if err != nil {
		t.Fatal(err)
	}
	// 2 impls × 2 regimes.
	if len(tab.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		sent, err1 := strconv.ParseUint(row[2], 10, 64)
		done, err2 := strconv.ParseUint(row[3], 10, 64)
		if err1 != nil || err2 != nil || sent == 0 || done != sent {
			t.Fatalf("row %v: sent %q, done %q; want every sent op answered", row, row[2], row[3])
		}
		if row[4] != "0" {
			t.Fatalf("row %v: %s protocol errors", row, row[4])
		}
		p50, err := time.ParseDuration(row[5])
		if err != nil || p50 <= 0 {
			t.Fatalf("row %v: bad p50 %q", row, row[5])
		}
		p999, err := time.ParseDuration(row[7])
		if err != nil || p999 < p50 {
			t.Fatalf("row %v: p99.9 %q below p50 %q", row, row[7], row[5])
		}
	}
}

// TestRunServiceScenarioRejectsInvalid covers the runner's validation
// path.
func TestRunServiceScenarioRejectsInvalid(t *testing.T) {
	bad := &workload.ServiceScenario{Name: "service:x", Backend: "nope", Rate: 1,
		Duration: time.Second, Conns: 1, Keys: 1, GetPct: 100}
	if _, err := RunServiceScenario(bad, Quick); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
