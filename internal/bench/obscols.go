package bench

import (
	"fmt"

	"wflocks"
)

// ObsHeader is the shared tail of every wait-free runner's table
// header: the helping-machinery columns ObsCols fills.
var ObsHeader = []string{"help/op", "fastpath", "delayshare"}

// ObsCols renders the shared observability columns for one wf run:
// help rate and fast-path rate over the run's counter delta, and —
// when the manager records metrics — the delay share over the run's
// step delta (obsBase is the ObsSnapshot taken before the run; with
// ObsSnapshot.Sub the column reports this run, not the manager's
// lifetime — warmup and prefill no longer dilute it). Baseline
// (mutex/channel) rows use ObsBlank instead.
func ObsCols(m *wflocks.Manager, delta wflocks.StatsSnapshot, obsBase wflocks.ObsSnapshot) []string {
	cols := []string{
		fmt.Sprintf("%.3f", delta.HelpRate()),
		fmt.Sprintf("%.3f", delta.FastPathRate()),
	}
	if od := m.Observe().Sub(obsBase); od.Enabled {
		cols = append(cols, fmt.Sprintf("%.3f", od.DelayShare()))
	} else {
		cols = append(cols, "-")
	}
	return cols
}

// ObsBlank is the baseline rows' placeholder for ObsHeader's columns.
func ObsBlank() []string { return []string{"-", "-", "-"} }

// LogColsHeader is the wflog runners' retention columns: entries
// reclaimed over the run and the attached-cursor backlog sampled at
// producer completion (the retention high-water mark).
var LogColsHeader = []string{"trimmed", "lagmax"}

// fillLogCols fills a log row's LogColsHeader columns; they sit
// immediately after the throughput column in the log tables.
func fillLogCols(row []string, trimmed uint64, lagPeak int) {
	row[4] = fmt.Sprint(trimmed)
	row[5] = fmt.Sprint(lagPeak)
}

// fillObsCols fills a row's trailing ObsHeader columns from one or more
// managers' cumulative counters — the multi-manager shape the queue
// pipeline runs use (one fresh manager per stage, so cumulative equals
// the run's totals).
func fillObsCols(row []string, mgrs []*wflocks.Manager) {
	var agg wflocks.StatsSnapshot
	var attemptSteps, delaySteps uint64
	metered := false
	for _, m := range mgrs {
		s := m.Stats()
		agg.Attempts += s.Attempts
		agg.Wins += s.Wins
		agg.Helps += s.Helps
		agg.FastPath += s.FastPath
		if os := m.Observe(); os.Enabled {
			metered = true
			attemptSteps += os.AttemptSteps
			delaySteps += os.DelaySteps
		}
	}
	i := len(row) - len(ObsHeader)
	row[i] = fmt.Sprintf("%.3f", agg.HelpRate())
	row[i+1] = fmt.Sprintf("%.3f", agg.FastPathRate())
	if metered && attemptSteps > 0 {
		row[i+2] = fmt.Sprintf("%.3f", float64(delaySteps)/float64(attemptSteps))
	}
}
