package bench

import (
	"sync"
	"time"

	"wflocks/internal/core"
	"wflocks/internal/env"
	"wflocks/internal/workload"
)

// E10Native measures real-hardware throughput (goroutines + atomics):
// the paper's discussion (Section 7) asks how the construction does in
// practice, so we compare the wait-free locks against the helping
// lock-free baseline and blocking two-phase locking on fine-grained
// workloads. Each process retries until success (Lock semantics);
// throughput is successful critical sections per second.
func E10Native(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E10 — Native throughput: critical sections per second (Section 7)",
		Header: []string{"workload", "algorithm", "goroutines", "ops", "ops/sec"},
	}
	perProc := scale.pick(200, 2000)
	workloads := []*workload.Workload{
		workload.Philosophers(4),
		workload.Philosophers(8),
		workload.Disjoint(4, 2),
	}
	for _, w := range workloads {
		builders := []func() Algorithm{
			func() Algorithm {
				return NewWF(core.Config{
					Kappa: w.Kappa, MaxLocks: w.MaxLocksPerSet,
					MaxThunkSteps: ThunkSteps(w.MaxLocksPerSet, 0),
					DelayC:        4, DelayC1: 8,
				}, w.NumLocks)
			},
			func() Algorithm { return NewTSP(w.NumLocks) },
			func() Algorithm { return NewSpin(w.NumLocks) },
		}
		for _, build := range builders {
			alg := build()
			ops, elapsed, err := runNative(alg, w, perProc)
			if err != nil {
				return nil, err
			}
			t.AddRow(w.Name, alg.Name(), w.NumProcs(), ops,
				float64(ops)/elapsed.Seconds())
		}
	}
	t.Notes = append(t.Notes,
		"shape to check: the wait-free locks pay a constant-factor delay overhead at low contention",
		"but their throughput does not collapse as contention rises, and no process can be starved")
	return t, nil
}

// runNative runs the workload on real goroutines, each process
// completing perProc successful critical sections, and returns the
// total successes and the wall-clock time.
func runNative(alg Algorithm, w *workload.Workload, perProc int) (int, time.Duration, error) {
	ins := newInstrumentation(w.NumLocks)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < w.NumProcs(); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := env.NewNative(i, uint64(i)+1)
			set := w.Sets[i]
			for k := 0; k < perProc; k++ {
				for !alg.TryLocks(e, set, ins.thunk(set, 0)) {
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify the invariants before reporting numbers.
	e := env.NewNative(w.NumProcs(), 1)
	if ins.violation.Load(e) != 0 {
		return 0, 0, errViolation(alg.Name(), w.Name)
	}
	total := w.NumProcs() * perProc
	var wantPerLock = make([]uint64, w.NumLocks)
	for _, set := range w.Sets {
		for _, li := range set {
			wantPerLock[li] += uint64(perProc)
		}
	}
	for li := range wantPerLock {
		if got := ins.ctr[li].Load(e); got != wantPerLock[li] {
			return 0, 0, errCounter(alg.Name(), w.Name, li)
		}
	}
	return total, elapsed, nil
}

type benchError string

func (b benchError) Error() string { return string(b) }

func errViolation(alg, wl string) error {
	return benchError("bench: " + alg + " violated mutual exclusion on " + wl + " (native)")
}

func errCounter(alg, wl string, lock int) error {
	return benchError("bench: " + alg + " lost or duplicated critical sections on " + wl + " (native)")
}
