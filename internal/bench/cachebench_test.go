package bench

import (
	"strconv"
	"testing"
	"time"

	"wflocks/internal/workload"
)

func TestMutexLRUBasic(t *testing.T) {
	c := NewMutexLRU(3, nil)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Put(3, 30)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = (%d, %v)", v, ok)
	}
	// Recency is now 1 > 3 > 2; inserting a fourth key evicts 2.
	c.Put(4, 40)
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU key 2 survived the eviction")
	}
	for _, k := range []uint64{1, 3, 4} {
		if v, ok := c.Get(k); !ok || v != k*10 {
			t.Fatalf("Get(%d) = (%d, %v)", k, v, ok)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if !c.Delete(3) || c.Delete(3) {
		t.Fatal("Delete(3) sequence wrong")
	}
	hits, misses, evictions := c.Counters()
	if hits != 4 || misses != 1 || evictions != 1 {
		t.Fatalf("counters = %d/%d/%d, want 4/1/1", hits, misses, evictions)
	}
	// Overwrite refreshes recency without growing.
	c.Put(1, 11)
	c.Put(5, 50)
	c.Put(6, 60) // evicts 4 (1 was refreshed, 3 deleted)
	if _, ok := c.Get(4); ok {
		t.Fatal("key 4 should have been evicted after 1 was refreshed")
	}
	if v, ok := c.Get(1); !ok || v != 11 {
		t.Fatalf("refreshed Get(1) = (%d, %v)", v, ok)
	}
}

func TestStallPoint(t *testing.T) {
	// Unarmed, hits draw but never sleep (setup work is free).
	sp := NewStallPoint(2, 2*time.Millisecond)
	start := time.Now()
	for i := 0; i < 100; i++ {
		sp.Hit()
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("unarmed stall point slept (%v)", elapsed)
	}
	// Armed, every second call sleeps: four calls must cost at least
	// two stall durations.
	sp.Arm()
	start = time.Now()
	for i := 0; i < 4; i++ {
		sp.Hit()
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("4 armed hits at period 2 took %v, want >= 4ms", elapsed)
	}
	// A nil point is inert for both calls.
	var nilSP *StallPoint
	nilSP.Arm()
	start = time.Now()
	for i := 0; i < 1000; i++ {
		nilSP.Hit()
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("nil stall point cost %v", elapsed)
	}
}

func TestStallValueCodecRoundTrip(t *testing.T) {
	sp := NewStallPoint(1000000, time.Millisecond)
	vc := StallValueCodec(sp)
	if vc.Words() != 1 {
		t.Fatalf("Words = %d, want 1", vc.Words())
	}
	var buf [1]uint64
	vc.Encode(12345, buf[:])
	if got := vc.Decode(buf[:]); got != 12345 {
		t.Fatalf("round trip = %d, want 12345", got)
	}
	if sp.n.Load() != 1 {
		t.Fatalf("encode drew %d stall decisions, want 1", sp.n.Load())
	}
}

// TestRunCacheScenario runs the quick-scale cache:zipf table end to end
// and sanity-checks its shape and numbers. The stall regime sleeps for
// real, so this is skipped in -short.
func TestRunCacheScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("stall-regime rows sleep for real; skip in -short")
	}
	sc := workload.LookupCacheScenario("cache:zipf")
	if sc == nil {
		t.Fatal("cache:zipf missing")
	}
	tab, err := RunCacheScenario(sc, Quick)
	if err != nil {
		t.Fatal(err)
	}
	// (4 wfcache shard counts × 2 delay variants) + 1 mutexlru, in 2
	// stall regimes.
	if len(tab.Rows) != 18 {
		t.Fatalf("table has %d rows, want 18", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ops, err := strconv.ParseFloat(row[3], 64)
		if err != nil || ops <= 0 {
			t.Fatalf("row %v: bad ops/sec %q", row, row[3])
		}
		hit, err := strconv.ParseFloat(row[4], 64)
		if err != nil || hit < 0 || hit > 100 {
			t.Fatalf("row %v: bad hit%% %q", row, row[4])
		}
		// The cache holds a quarter of the keyspace under zipf 1.2: hit
		// rates must sit well above the uniform floor for every impl.
		if hit < 40 {
			t.Fatalf("row %v: hit%% %v suspiciously low", row, hit)
		}
	}
	bad := workload.CacheScenario{Name: "bad", Keys: 0, Capacity: 1, GetPct: 100}
	if _, err := RunCacheScenario(&bad, Quick); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
