// Package bench is the experiment harness: it reproduces every
// quantitative claim of the paper as an experiment E1–E11 (the paper
// has no empirical tables or figures, so each experiment regenerates a
// theorem's bound or an in-text claim; see DESIGN.md §6 for the index
// and EXPERIMENTS.md for paper-vs-measured results).
//
// Each experiment returns a Table that renders as an aligned text
// table — the "rows the paper reports" equivalent. The cmd/wfbench
// binary and the top-level benchmarks drive these functions.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Scale selects experiment sizes: Quick for tests and smoke runs, Full
// for the numbers in EXPERIMENTS.md.
type Scale int

// Scales, smallest first.
const (
	Quick Scale = iota + 1
	Full
)

// pick returns q under Quick and f under Full.
func (s Scale) pick(q, f int) int {
	if s == Full {
		return f
	}
	return q
}
