package bench

import (
	"fmt"

	"wflocks/internal/activeset"
	"wflocks/internal/adversary"
	"wflocks/internal/core"
	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/sched"
	"wflocks/internal/stats"
	"wflocks/internal/workload"
)

// E6ActiveSet reproduces the Section 5.1 adaptivity claim (context of
// Theorem 5.2): active set Insert and Remove take O(k) steps for a set
// with k live members — independent of the announcement-array capacity
// — and GetSet takes O(1) steps.
func E6ActiveSet(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E6 — Active set adaptivity: O(k) insert/remove, O(1) getSet (Section 5.1)",
		Header: []string{"live_k", "capacity", "insert_steps", "remove_steps", "getset_steps", "insert/k"},
	}
	capacity := 1024
	ks := []int{1, 4, 16, 64}
	if scale == Full {
		ks = []int{1, 4, 16, 64, 256}
	}
	type elem struct{ _ int }
	for _, k := range ks {
		e := env.NewNative(0, 1)
		s := activeset.New[elem](capacity)
		slots := make([]int, 0, k)
		for i := 0; i < k-1; i++ {
			slots = append(slots, s.Insert(e, &elem{}))
		}
		before := e.Steps()
		slot := s.Insert(e, &elem{})
		insertSteps := e.Steps() - before

		before = e.Steps()
		s.GetSet(e)
		getSteps := e.Steps() - before

		before = e.Steps()
		s.Remove(e, slot)
		removeSteps := e.Steps() - before

		t.AddRow(k, capacity, insertSteps, removeSteps, getSteps,
			float64(insertSteps)/float64(k))
		_ = slots
	}
	t.Notes = append(t.Notes,
		"insert/k staying flat while capacity is fixed at 1024 is the adaptivity shape",
		"getset_steps is constant (slot 0 read only)")
	return t, nil
}

// E7Idempotence reproduces Theorem 4.2: the idempotence construction
// costs a constant factor per simulated operation, and h concurrent
// helpers of the same thunk leave memory exactly as one run would.
func E7Idempotence(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E7 — Idempotence construction: constant overhead, appears-once (Theorem 4.2)",
		Header: []string{"ops", "helpers", "caller_steps/op", "all_steps/op", "appears_once"},
	}
	opCounts := []int{16, 64}
	helperCounts := []int{1, 2, 4}
	if scale == Full {
		opCounts = []int{16, 64, 256}
		helperCounts = []int{1, 2, 4, 8}
	}
	for _, ops := range opCounts {
		for _, h := range helperCounts {
			incs := ops / 2
			ctr := idem.NewCell(0)
			x := idem.NewExec(func(r *idem.Run) {
				for k := 0; k < incs; k++ {
					v := r.Read(ctr)
					r.Write(ctr, v+1)
				}
			}, 2*incs)
			var callerSteps, allSteps uint64
			if h == 1 {
				e := env.NewNative(0, 1)
				x.Execute(e)
				callerSteps, allSteps = e.Steps(), e.Steps()
			} else {
				sim := sched.New(sched.NewRandom(h, uint64(ops+h)), uint64(ops+h))
				for i := 0; i < h; i++ {
					sim.Spawn(func(e env.Env) { x.Execute(e) })
				}
				if err := sim.Run(100_000_000); err != nil {
					return nil, err
				}
				callerSteps = sim.ProcSteps(0)
				allSteps = sim.TotalSteps()
			}
			e := env.NewNative(99, 1)
			ok := ctr.Load(e) == uint64(incs)
			t.AddRow(2*incs, h,
				float64(callerSteps)/float64(2*incs),
				float64(allSteps)/float64(2*incs), ok)
			if !ok {
				return nil, fmt.Errorf("bench: idempotence violated at ops=%d helpers=%d", ops, h)
			}
		}
	}
	t.Notes = append(t.Notes,
		"caller_steps/op bounded by a small constant at every scale is Theorem 4.2(2)",
		"appears_once=true: the counter equals one sequential run's result despite h helpers")
	return t, nil
}

// E8Baselines reproduces the paper's motivating contrast (Sections 1
// and 3): under a scheduler that stalls one process forever, the
// wait-free locks and the helping lock-free locks keep completing,
// while the no-helping baselines starve. Reported per algorithm, worst
// case over a sweep of stall points.
func E8Baselines(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E8 — Stalled-process injection: wait-free vs lock-free vs blocking (Sections 1, 3)",
		Header: []string{"algorithm", "wait_free", "live_procs_finished", "worst_stall_start", "max_steps_to_success", "starves"},
	}
	const procs = 3
	rounds := scale.pick(4, 8)
	stallStarts := []uint64{500, 1000, 2000, 4000, 8000, 16000}
	extra := 100 // long critical sections widen the holding window

	builders := []func(numLocks int) Algorithm{
		func(n int) Algorithm {
			return NewWF(core.Config{
				Kappa: procs, MaxLocks: 1, MaxThunkSteps: ThunkSteps(1, extra),
				DelayC: 4, DelayC1: 8,
			}, n)
		},
		NewTSP,
		NewST,
		func(int) Algorithm { return NewHerlihy(procs) },
		NewTAS,
		NewSpin,
	}
	for _, build := range builders {
		worstFinished := procs
		var worstStall uint64
		var maxRound uint64
		starves := false
		var name string
		var waitFree bool
		for _, stall := range stallStarts {
			w := workload.HotLock(procs)
			alg := build(w.NumLocks)
			name, waitFree = alg.Name(), alg.WaitFree()
			schedule := &sched.Stalling{
				Base:    sched.NewRandom(procs, stall),
				Windows: adversary.ForeverFrom(0, stall, 1),
			}
			m, err := RunSim(alg, RunConfig{
				Workload: w, Schedule: schedule, Seed: stall, Rounds: rounds,
				Retry: true, ExtraThunkOps: extra,
				MaxSteps: 5_000_000, AllowStarvation: true,
			})
			if err != nil {
				return nil, err
			}
			// Process 0 is stalled forever, so at most procs-1 can
			// finish; count the live ones.
			live := m.FinishedProcs
			if live < worstFinished {
				worstFinished = live
				worstStall = stall
			}
			if m.Starved && live < procs-1 {
				starves = true
			}
			if mr := stats.MaxUint64(m.RoundSteps); mr > maxRound {
				maxRound = mr
			}
		}
		t.AddRow(name, waitFree, fmt.Sprintf("%d/%d", worstFinished, procs-1),
			worstStall, maxRound, starves)
	}
	t.Notes = append(t.Notes,
		"process 0 is frozen forever at stall_start; live processes must still finish their rounds",
		"wflocks and tsp-lockfree survive every stall point (helping); tas and spin-2pl starve once the stall lands mid-hold")
	return t, nil
}

// E9DelayAblation ablates the fixed delays (the mechanism behind
// Observation 6.7): with delays on, every attempt takes exactly the
// same number of its caller's steps (no timing leak); with delays off,
// attempt lengths vary with contention, which is the side channel the
// adversary exploits. Success rates under the ambush adversary are
// reported both ways.
func E9DelayAblation(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E9 — Ablation: the fixed delays (Observation 6.7, Section 6 'Delays')",
		Header: []string{"metric", "delays_on", "delays_off"},
	}
	rounds := scale.pick(8, 30)
	seeds := scale.pick(3, 6)

	variance := func(disable bool) (float64, float64, error) {
		var all []float64
		wins, attempts := 0, 0
		for s := 1; s <= seeds; s++ {
			w := workload.Philosophers(4)
			cfg := core.Config{
				Kappa: w.Kappa, MaxLocks: w.MaxLocksPerSet,
				MaxThunkSteps: ThunkSteps(2, 0), DelayC: 4, DelayC1: 8,
				DisableDelays: disable,
			}
			alg := NewWF(cfg, w.NumLocks)
			m, err := RunSim(alg, RunConfig{Workload: w, Seed: uint64(s), Rounds: rounds})
			if err != nil {
				return 0, 0, err
			}
			for _, v := range m.AttemptSteps {
				all = append(all, float64(v))
			}
			wins += m.Wins()
			attempts += m.Attempts()
		}
		sum := stats.Summarize(all)
		return sum.Std, float64(wins) / float64(attempts), nil
	}
	stdOn, rateOn, err := variance(false)
	if err != nil {
		return nil, err
	}
	stdOff, rateOff, err := variance(true)
	if err != nil {
		return nil, err
	}
	t.AddRow("attempt-length stddev (steps)", stdOn, stdOff)
	t.AddRow("philosophers success rate", rateOn, rateOff)

	ambushOn, _, err := runAmbush(scale, false)
	if err != nil {
		return nil, err
	}
	ambushOff, _, err := runAmbush(scale, true)
	if err != nil {
		return nil, err
	}
	t.AddRow("ambush-adversary target success", ambushOn, ambushOff)
	t.Notes = append(t.Notes,
		"stddev 0 with delays on: attempt length is a constant, so timing reveals nothing (Observation 6.7)",
		"with delays off, attempt length varies with contention — the side channel the fairness proof must close")
	return t, nil
}
