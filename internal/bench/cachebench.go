package bench

import (
	"container/list"
	"fmt"
	"sync"
	"time"

	"wflocks"
	"wflocks/internal/workload"
)

// Cache workload runner: drives a workload.CacheScenario against the
// wfcache subsystem and against a classic mutex+container/list LRU,
// in two regimes.
//
// In the raw regime the blocking baseline wins on absolute ops/sec —
// every wait-free attempt pays the paper's fixed delays (c·κ²L²T own
// steps), a constant-factor price a sync.Mutex does not pay. The
// interesting regime is the paper's: lock holders that stall
// mid-critical-section (a preempted vCPU, a page fault, a GC pause).
// A stalled mutex holder blocks its whole cache for the stall; a
// stalled wfcache winner is helped — competitors re-execute its
// critical section through the idempotence layer and move on, so the
// stall costs only the stalled goroutine.
//
// The stall is injected symmetrically through the value-write path:
// the baseline calls a StallPoint while holding its mutex whenever it
// touches an entry's value, and wfcache's values go through a codec
// whose Encode calls the same StallPoint. During the measured run,
// every wfcache value encode happens inside a critical section (bucket
// writes and result-cell writes are both body operations; result cells
// are constructed unencoded), so a helper re-executing a stalled body
// draws its own — almost always stall-free — pass and completes the
// stalled winner's work. The one residual asymmetry cuts against
// wfcache: a GetOrCompute miss encodes its computed candidate into a
// fresh cell before taking the lock, an extra off-lock draw per miss
// that the baseline does not pay. The draw is per execution, not per
// logical op, which is exactly the preemption model: stalls strike the
// executing process, not the operation.

// MutexLRU is the blocking baseline: the classic cache design — one
// sync.Mutex guarding a map plus a container/list recency list, as in
// the widely used golang-lru shape. Even reads take the global lock
// (bumping recency is a write), so a stalled holder blocks every
// caller; that is the behavior the wait-free construction exists to
// avoid.
type MutexLRU struct {
	mu       sync.Mutex
	capacity int
	entries  map[uint64]*list.Element
	order    *list.List // front = most recently used
	stall    *StallPoint

	hits, misses, evictions uint64
}

type lruEntry struct{ k, v uint64 }

// NewMutexLRU creates a baseline cache with the given capacity. stall
// (which may be nil) is drawn while the mutex is held whenever an
// entry's value is touched, mirroring wfcache's in-critical-section
// encode.
func NewMutexLRU(capacity int, stall *StallPoint) *MutexLRU {
	return &MutexLRU{
		capacity: capacity,
		entries:  make(map[uint64]*list.Element, capacity),
		order:    list.New(),
		stall:    stall,
	}
}

// Get returns the value cached for k, bumping its recency.
func (c *MutexLRU) Get(k uint64) (uint64, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		c.mu.Unlock()
		return 0, false
	}
	c.stall.Hit()
	c.order.MoveToFront(e)
	v := e.Value.(*lruEntry).v
	c.hits++
	c.mu.Unlock()
	return v, true
}

// Put stores v for k, evicting the LRU entry at capacity.
func (c *MutexLRU) Put(k, v uint64) {
	c.mu.Lock()
	c.stall.Hit()
	if e, ok := c.entries[k]; ok {
		e.Value.(*lruEntry).v = v
		c.order.MoveToFront(e)
		c.mu.Unlock()
		return
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*lruEntry).k)
		c.evictions++
	}
	c.entries[k] = c.order.PushFront(&lruEntry{k: k, v: v})
	c.mu.Unlock()
}

// Delete removes k, reporting whether it was present.
func (c *MutexLRU) Delete(k uint64) bool {
	c.mu.Lock()
	e, ok := c.entries[k]
	if ok {
		c.order.Remove(e)
		delete(c.entries, k)
	}
	c.mu.Unlock()
	return ok
}

// Len reports the entry count.
func (c *MutexLRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters reports hits, misses and evictions so far.
func (c *MutexLRU) Counters() (hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// cacheShardCounts is the shard sweep of the cache benchmarks.
var cacheShardCounts = []int{1, 2, 4, 8}

// RunCacheScenario drives sc against wfcache (sweeping the shard count
// under both delay variants) and the mutex LRU baseline, in the raw and
// holder-stall regimes, and tabulates throughput, hit rate, evictions
// and contention.
func RunCacheScenario(sc *workload.CacheScenario, scale Scale) (*Table, error) {
	return RunCacheScenarioVariants(sc, scale, AllVariants)
}

// RunCacheScenarioVariants is RunCacheScenario restricted to the given
// delay variants (the -variant flag).
func RunCacheScenarioVariants(sc *workload.CacheScenario, scale Scale, variants []Variant) (*Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	workers := mapWorkers()
	opsPer := 200
	if scale == Full {
		opsPer = 1000
	}
	t := &Table{
		Title: fmt.Sprintf("%s: %d%%/%d%%/%d%% get/put/delete, %d keys, cap %d, skew %.1f, %d workers × %d ops",
			sc.Name, sc.GetPct, sc.PutPct, sc.DeletePct, sc.Keys, sc.Capacity, sc.Skew, workers, opsPer),
		Header: append([]string{"impl", "shards", "stall", "ops/sec", "hit%", "evict", "success", "attempts/op", "balance"}, ObsHeader...),
	}
	for _, stalled := range []bool{false, true} {
		// Each run gets its own stall point so the regime's rows do not
		// share a stall schedule.
		label := "none"
		newSP := func() *StallPoint { return nil }
		if stalled {
			label = fmt.Sprintf("%v/%d", StallDur, StallPeriod)
			newSP = func() *StallPoint { return NewStallPoint(StallPeriod, StallDur) }
		}
		for _, v := range variants {
			for _, shards := range cacheShardCounts {
				row, err := runWfcacheScenario(sc, v, shards, workers, opsPer, label, newSP())
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, row)
			}
		}
		t.Rows = append(t.Rows, runMutexLRUScenario(sc, workers, opsPer, label, newSP()))
	}
	t.Notes = append(t.Notes,
		"adaptive rows use WithUnknownBounds delays that track point contention (the recommended default); known rows pay the fixed c·κ²L²T delays",
		"raw regime: the mutex LRU wins on constant factors — contended wfcache attempts still pay their regime's delays",
		"stall regime: holders stall mid-critical-section ("+fmt.Sprintf("%v every %d value writes", StallDur, StallPeriod)+"); helpers absorb wfcache's stalls, the mutex serializes them",
		"hit% counts Get outcomes; the cache holds "+fmt.Sprintf("%d of %d", sc.Capacity, sc.Keys)+" keys, so hit rate is emergent from skew and recency")
	return t, nil
}

// runWfcacheScenario measures one wfcache configuration under one delay
// variant.
func runWfcacheScenario(sc *workload.CacheScenario, v Variant, shards, workers, opsPer int, stallLabel string, sp *StallPoint) ([]string, error) {
	// CacheCriticalSteps pow2-rounds its per-shard argument exactly as
	// the constructor does, so the raw quotient is the right input.
	perShard := (sc.Capacity + shards - 1) / shards
	m, err := NewManager(v, workers, 1, wflocks.CacheCriticalSteps(perShard, 1, 1), wflocks.WithMetrics())
	if err != nil {
		return nil, err
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = StallValueCodec(sp)
	}
	cache, err := wflocks.NewCacheOf[uint64, uint64](m, wflocks.IntegerCodec[uint64](), vc,
		wflocks.WithCacheShards(shards), wflocks.WithCapacity(sc.Capacity))
	if err != nil {
		return nil, err
	}
	// Prefill with the head of the keyspace (the zipf-hot ranks) so the
	// run starts from a warm cache, then arm the stalls.
	for k := 0; k < sc.Capacity; k++ {
		cache.Put(uint64(k), uint64(k)*3)
	}
	sp.Arm()
	base := m.Stats()
	obsBase := m.Observe()
	baseCache := cache.Stats()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := workload.NewCacheOpStream(sc, uint64(w)*0x9e3779b97f4a7c15+1)
			for i := 0; i < opsPer; i++ {
				kind, key := st.Next()
				k := uint64(key)
				switch kind {
				case workload.CacheGet:
					// Read-through: a miss computes (free here) and
					// installs, the cache idiom GetOrCompute serves.
					cache.GetOrCompute(k, func() uint64 { return k * 3 })
				case workload.CachePut:
					cache.Put(k, k*3)
				case workload.CacheDelete:
					cache.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	delta := m.Stats().Sub(base)
	cs := cache.Stats()
	totalOps := workers * opsPer
	hits := cs.Hits - baseCache.Hits
	misses := cs.Misses - baseCache.Misses
	evictions := cs.Evictions - baseCache.Evictions
	hitPct := 0.0
	if hits+misses > 0 {
		hitPct = 100 * float64(hits) / float64(hits+misses)
	}
	return append([]string{
		"wfcache/" + string(v),
		fmt.Sprint(shards),
		stallLabel,
		fmt.Sprintf("%.0f", float64(totalOps)/elapsed.Seconds()),
		fmt.Sprintf("%.1f", hitPct),
		fmt.Sprint(evictions),
		fmt.Sprintf("%.3f", delta.SuccessRate()),
		fmt.Sprintf("%.2f", float64(delta.Attempts)/float64(totalOps)),
		fmt.Sprintf("%.3f", cs.Balance),
	}, ObsCols(m, delta, obsBase)...), nil
}

// runMutexLRUScenario measures the baseline. It has one lock, so the
// shards and balance columns do not apply.
func runMutexLRUScenario(sc *workload.CacheScenario, workers, opsPer int, stallLabel string, sp *StallPoint) []string {
	c := NewMutexLRU(sc.Capacity, sp)
	for k := 0; k < sc.Capacity; k++ {
		c.Put(uint64(k), uint64(k)*3)
	}
	sp.Arm()
	h0, m0, e0 := c.Counters()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := workload.NewCacheOpStream(sc, uint64(w)*0x9e3779b97f4a7c15+1)
			for i := 0; i < opsPer; i++ {
				kind, key := st.Next()
				k := uint64(key)
				switch kind {
				case workload.CacheGet:
					if _, ok := c.Get(k); !ok {
						c.Put(k, k*3)
					}
				case workload.CachePut:
					c.Put(k, k*3)
				case workload.CacheDelete:
					c.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	hits, misses, evictions := c.Counters()
	hits -= h0
	misses -= m0
	evictions -= e0
	totalOps := workers * opsPer
	hitPct := 0.0
	if hits+misses > 0 {
		hitPct = 100 * float64(hits) / float64(hits+misses)
	}
	return append([]string{
		"mutexlru",
		"1",
		stallLabel,
		fmt.Sprintf("%.0f", float64(totalOps)/elapsed.Seconds()),
		fmt.Sprintf("%.1f", hitPct),
		fmt.Sprint(evictions),
		"-",
		"-",
		"-",
	}, ObsBlank()...)
}
