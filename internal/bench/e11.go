package bench

import (
	"wflocks/internal/core"
	"wflocks/internal/stats"
	"wflocks/internal/workload"
)

// E11Adaptivity reproduces the paper's positioning against wait-free
// universal constructions (Section 3, "Efficient Wait-Freedom"): most
// have an O(P) factor in their time complexity, where P is the *total*
// number of processes, "meaning that even under low contention they are
// very costly", while this paper's bounds depend only on the point
// contention κ. We fix the actual contention at κ = 2 (two processes
// sharing one lock) and sweep the system size P: the Herlihy-style
// universal construction's per-op steps grow linearly with P, while the
// wait-free locks stay flat (known-bounds mode does not see P at all;
// unknown-bounds mode sizes arrays with P but keeps κ-adaptive steps).
func E11Adaptivity(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E11 — Point-contention adaptivity vs O(P) universal construction (Section 3)",
		Header: []string{"P", "herlihy steps/op", "wflocks steps/op", "wflocks-unknown steps/op"},
	}
	ps := []int{2, 8, 32}
	if scale == Full {
		ps = []int{2, 8, 32, 128}
	}
	rounds := scale.pick(4, 10)
	seeds := scale.pick(2, 4)
	for _, p := range ps {
		herlihySteps, err := measureAlgo(
			func(w *workload.Workload) Algorithm { return NewHerlihy(p) },
			rounds, seeds)
		if err != nil {
			return nil, err
		}
		knownSteps, err := measureAlgo(
			func(w *workload.Workload) Algorithm {
				return WFForWorkload(w, ThunkSteps(1, 0), false)
			}, rounds, seeds)
		if err != nil {
			return nil, err
		}
		unknownSteps, err := measureAlgo(
			func(w *workload.Workload) Algorithm {
				// Unknown mode sizes its announcement arrays with P
				// even though only 2 processes are active.
				cfg := core.Config{
					MaxLocks: 1, MaxThunkSteps: ThunkSteps(1, 0),
					UnknownBounds: true, NumProcs: p,
					DelayC: 4, DelayC1: 8,
				}
				return NewWF(cfg, w.NumLocks)
			}, rounds, seeds)
		if err != nil {
			return nil, err
		}
		t.AddRow(p, herlihySteps, knownSteps, unknownSteps)
	}
	t.Notes = append(t.Notes,
		"actual contention is fixed at κ=2 in every row; only the system size P grows",
		"herlihy's column grows linearly with P; both wflocks columns stay flat — adaptivity to point contention")
	return t, nil
}

// measureAlgo runs the 2-process hot-lock workload on the algorithm and
// returns the mean per-attempt steps.
func measureAlgo(build func(*workload.Workload) Algorithm, rounds, seeds int) (float64, error) {
	var all []uint64
	for s := 1; s <= seeds; s++ {
		w := workload.HotLock(2)
		m, err := RunSim(build(w), RunConfig{Workload: w, Seed: uint64(s), Rounds: rounds})
		if err != nil {
			return 0, err
		}
		all = append(all, m.AttemptSteps...)
	}
	return stats.SummarizeUint64(all).Mean, nil
}
