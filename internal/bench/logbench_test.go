package bench

import (
	"runtime"
	"strconv"
	"testing"

	"wflocks/internal/workload"
)

func TestMutexSliceLogBasic(t *testing.T) {
	l := NewMutexSliceLog(4, nil)
	r1 := l.NewReader()
	for v := uint64(1); v <= 4; v++ {
		if !l.TryAppend(0, v) {
			t.Fatalf("append %d failed below capacity", v)
		}
	}
	// r1 pins the whole window: compaction has nothing to drop.
	if l.TryAppend(0, 99) {
		t.Fatal("append succeeded with a reader pinning the full window")
	}
	for v := uint64(1); v <= 2; v++ {
		got, ok := r1.TryNext()
		if !ok || got != v {
			t.Fatalf("r1 next = (%d, %v), want (%d, true)", got, ok, v)
		}
	}
	// Two entries consumed: the next append compacts them away.
	if !l.TryAppend(0, 5) {
		t.Fatal("append failed after the reader advanced")
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d after compaction, want 3", l.Len())
	}
	// A late reader attaches at the compacted head, not the origin.
	r2 := l.NewReader()
	got, ok := r2.TryNext()
	if !ok || got != 3 {
		t.Fatalf("late reader next = (%d, %v), want (3, true)", got, ok)
	}
}

func TestChanFanLogBasic(t *testing.T) {
	l := NewChanFanLog(8, 2, nil)
	defer l.Close()
	r0, r1 := l.Reader(0), l.Reader(1)
	for v := uint64(1); v <= 3; v++ {
		if !l.TryAppend(0, v) {
			t.Fatalf("append %d failed", v)
		}
	}
	for l.Distributed() < 3 {
		runtime.Gosched()
	}
	for _, r := range []func() (uint64, bool){r0, r1} {
		for v := uint64(1); v <= 3; v++ {
			got, ok := r()
			if !ok || got != v {
				t.Fatalf("next = (%d, %v), want (%d, true)", got, ok, v)
			}
		}
		if _, ok := r(); ok {
			t.Fatal("read past the broadcast tail succeeded")
		}
	}
}

// TestRunLogScenario runs the quick-scale log tables end to end —
// fanout for the live topology, replay for the prefilled one — and
// sanity-checks their shape. The stall regime sleeps for real, so this
// is skipped in -short.
func TestRunLogScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("stall-regime rows sleep for real; skip in -short")
	}
	for _, name := range []string{"log:fanout", "log:replay"} {
		sc := workload.LookupLogScenario(name)
		if sc == nil {
			t.Fatalf("%s missing", name)
		}
		tab, err := RunLogScenario(sc, Quick)
		if err != nil {
			t.Fatal(err)
		}
		// 4 wflog shard counts + mutexslice + chanfan, in 2 regimes.
		if len(tab.Rows) != 12 {
			t.Fatalf("%s: table has %d rows, want 12", name, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			ops, err := strconv.ParseFloat(row[3], 64)
			if err != nil || ops <= 0 {
				t.Fatalf("%s row %v: bad deliv/sec %q", name, row, row[3])
			}
			if row[0] == "wflog" {
				succ, err := strconv.ParseFloat(row[6], 64)
				if err != nil || succ <= 0 || succ > 1 {
					t.Fatalf("%s row %v: bad success %q", name, row, row[6])
				}
				if _, err := strconv.ParseUint(row[4], 10, 64); err != nil {
					t.Fatalf("%s row %v: bad trimmed %q", name, row, row[4])
				}
			}
		}
	}
	bad := workload.LogScenario{Name: "bad", Producers: 1, Consumers: 1, Capacity: 0, Segment: 1}
	if _, err := RunLogScenario(&bad, Quick); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
