package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"wflocks"
	"wflocks/internal/env"
	"wflocks/internal/stats"
	"wflocks/internal/workload"
)

// Map workload runner: drives a workload.MapScenario against the wfmap
// subsystem and against a sync.Mutex-sharded baseline, sweeping the
// shard count. Two effects make wfmap throughput scale with shards:
// per-lock contention drops (higher per-attempt success probability),
// and the per-shard bucket region shrinks, which shortens the
// worst-case critical section T and with it the attempts' fixed
// O(κ²L²T) delays.

// mapShardCounts is the shard sweep of the map benchmarks.
var mapShardCounts = []int{1, 2, 4, 8}

// MutexMap is the blocking baseline: a sync.Mutex-sharded map with the
// same shard-selection hash as wfmap. It makes no wait-freedom or
// fairness promises — a stalled holder blocks its whole shard.
type MutexMap struct {
	shards []mutexShard
	mask   uint64
}

type mutexShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
	_  [40]byte // pad to a cache line so shard mutexes do not false-share
}

// NewMutexMap creates a baseline map with the given shard count
// (rounded up to a power of two).
func NewMutexMap(shardCount int) *MutexMap {
	n := nextPow2(shardCount)
	mm := &MutexMap{shards: make([]mutexShard, n), mask: uint64(n - 1)}
	for i := range mm.shards {
		mm.shards[i].m = make(map[uint64]uint64)
	}
	return mm
}

// shardIndex uses the same SplitMix64 mixing family as wfmap's hash
// (seed 0, vs wfmap's manager-derived seed), so the two shard
// assignments are statistically equivalent but not identical; the
// balance columns in the scenario tables describe each
// implementation's own observed shard traffic.
func (mm *MutexMap) shardIndex(k uint64) uint64 {
	return env.Mix(0, k) & mm.mask
}

func (mm *MutexMap) shard(k uint64) *mutexShard {
	return &mm.shards[mm.shardIndex(k)]
}

// Get returns the value stored for k.
func (mm *MutexMap) Get(k uint64) (uint64, bool) {
	sh := mm.shard(k)
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	return v, ok
}

// Put stores v for k.
func (mm *MutexMap) Put(k, v uint64) {
	sh := mm.shard(k)
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// Delete removes k, reporting whether it was present.
func (mm *MutexMap) Delete(k uint64) bool {
	sh := mm.shard(k)
	sh.mu.Lock()
	_, ok := sh.m[k]
	delete(sh.m, k)
	sh.mu.Unlock()
	return ok
}

// Len reports the entry count.
func (mm *MutexMap) Len() int {
	n := 0
	for i := range mm.shards {
		sh := &mm.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// mapWorkers picks the driver goroutine count: the host's parallelism,
// but at least 4 so there is contention to measure on small machines.
func mapWorkers() int {
	if p := runtime.GOMAXPROCS(0); p > 4 {
		return p
	}
	return 4
}

// RunMapScenario drives sc against wfmap (under both delay variants)
// and the mutex baseline across the shard sweep and tabulates
// throughput, per-attempt success rate and shard balance.
func RunMapScenario(sc *workload.MapScenario, scale Scale) (*Table, error) {
	return RunMapScenarioVariants(sc, scale, AllVariants)
}

// RunMapScenarioVariants is RunMapScenario restricted to the given
// delay variants (the -variant flag).
func RunMapScenarioVariants(sc *workload.MapScenario, scale Scale, variants []Variant) (*Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	workers := mapWorkers()
	opsPer := 200
	if scale == Full {
		opsPer = 2000
	}
	t := &Table{
		Title: fmt.Sprintf("%s: %d%%/%d%%/%d%% get/put/delete, %d keys, skew %.1f, %d workers × %d ops",
			sc.Name, sc.GetPct, sc.PutPct, sc.DeletePct, sc.Keys, sc.Skew, workers, opsPer),
		Header: append([]string{"impl", "shards", "ops/sec", "success", "attempts/op", "balance", "max/mean"}, ObsHeader...),
	}
	for _, v := range variants {
		for _, shards := range mapShardCounts {
			row, err := runWfmapScenario(sc, v, shards, workers, opsPer)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	for _, shards := range mapShardCounts {
		t.Rows = append(t.Rows, runMutexScenario(sc, shards, workers, opsPer))
	}
	t.Notes = append(t.Notes,
		"adaptive rows use WithUnknownBounds: delays track point contention (the recommended default); known rows pay the fixed c·κ²L²T delays",
		"uncontended attempts skip delays entirely via the fast path in both regimes; sharding shrinks both κ per lock and T",
		"balance is Jain's index over per-shard lock attempts (1.0 = even traffic)")
	return t, nil
}

// runWfmapScenario measures one wfmap configuration under one delay
// variant.
func runWfmapScenario(sc *workload.MapScenario, v Variant, shards, workers, opsPer int) ([]string, error) {
	// Fixed total capacity 2× the keyspace, split across shards, so the
	// sweep holds the aggregate structure constant while the per-shard
	// region (and hence T) shrinks as shards grow.
	capPerShard := nextPow2(2 * sc.Keys / shards)
	m, err := NewManager(v, workers, 1, wflocks.MapCriticalSteps(capPerShard, 1, 1), wflocks.WithMetrics())
	if err != nil {
		return nil, err
	}
	mp, err := wflocks.NewMap[uint64, uint64](m,
		wflocks.WithShards(shards), wflocks.WithShardCapacity(capPerShard))
	if err != nil {
		return nil, err
	}
	for k := 0; k < sc.Keys/2; k++ {
		if err := mp.Put(uint64(k), uint64(k)); err != nil {
			return nil, err
		}
	}
	base := m.Stats()
	obsBase := m.Observe()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := workload.NewMapOpStream(sc, uint64(w)*0x9e3779b97f4a7c15+1)
			for i := 0; i < opsPer; i++ {
				kind, key := st.Next()
				k := uint64(key)
				switch kind {
				case workload.MapGet:
					mp.Get(k)
				case workload.MapPut:
					// ErrMapFull is impossible by construction (capacity
					// 2× keyspace) short of extreme hash skew; treat it
					// as a dropped op rather than failing the run.
					_ = mp.Put(k, uint64(i))
				case workload.MapDelete:
					mp.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	delta := m.Stats().Sub(base)
	totalOps := workers * opsPer
	ms := mp.Stats()
	opsPerSec := float64(totalOps) / elapsed.Seconds()
	return append([]string{
		"wfmap/" + string(v),
		fmt.Sprint(shards),
		fmt.Sprintf("%.0f", opsPerSec),
		fmt.Sprintf("%.3f", delta.SuccessRate()),
		fmt.Sprintf("%.2f", float64(delta.Attempts)/float64(totalOps)),
		fmt.Sprintf("%.3f", ms.Balance),
		fmt.Sprintf("%.2f", ms.MaxOverMean),
	}, ObsCols(m, delta, obsBase)...), nil
}

// runMutexScenario measures one baseline configuration. Per-shard
// contention counters do not exist for sync.Mutex, so balance columns
// are blank.
func runMutexScenario(sc *workload.MapScenario, shards, workers, opsPer int) []string {
	mm := NewMutexMap(shards)
	for k := 0; k < sc.Keys/2; k++ {
		mm.Put(uint64(k), uint64(k))
	}
	perShardOps := make([][]uint64, workers)
	for w := range perShardOps {
		perShardOps[w] = make([]uint64, len(mm.shards))
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := workload.NewMapOpStream(sc, uint64(w)*0x9e3779b97f4a7c15+1)
			for i := 0; i < opsPer; i++ {
				kind, key := st.Next()
				k := uint64(key)
				perShardOps[w][mm.shardIndex(k)]++
				switch kind {
				case workload.MapGet:
					mm.Get(k)
				case workload.MapPut:
					mm.Put(k, uint64(i))
				case workload.MapDelete:
					mm.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	totalOps := workers * opsPer
	counts := make([]uint64, len(mm.shards))
	for _, per := range perShardOps {
		for s, c := range per {
			counts[s] += c
		}
	}
	d := stats.NewShardDist(counts)
	return append([]string{
		"mutex",
		fmt.Sprint(shards),
		fmt.Sprintf("%.0f", float64(totalOps)/elapsed.Seconds()),
		"-",
		"-",
		fmt.Sprintf("%.3f", d.Jain),
		fmt.Sprintf("%.2f", d.MaxOverMean),
	}, ObsBlank()...)
}

// nextPow2 rounds n up to a power of two, minimum 1.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
