package bench

import (
	"fmt"

	"wflocks/internal/baseline"
	"wflocks/internal/core"
	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/workload"
)

// Algorithm is the harness-side abstraction over the wait-free locks
// and the baselines: attempt to run an idempotent thunk under a set of
// locks (identified by index), reporting success.
type Algorithm interface {
	// Name identifies the algorithm in tables.
	Name() string
	// TryLocks attempts the locks at the given indices with the thunk.
	TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool
	// WaitFree reports whether every attempt has a bounded step count.
	WaitFree() bool
}

// wfAlgo adapts a core.System to the Algorithm interface.
type wfAlgo struct {
	sys   *core.System
	locks []*core.Lock
	name  string
}

var _ Algorithm = (*wfAlgo)(nil)

// NewWF builds the paper's wait-free locks over numLocks locks.
func NewWF(cfg core.Config, numLocks int) Algorithm {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		panic(fmt.Sprintf("bench: bad core config: %v", err))
	}
	locks := make([]*core.Lock, numLocks)
	for i := range locks {
		locks[i] = sys.NewLock()
	}
	name := "wflocks"
	if cfg.UnknownBounds {
		name = "wflocks-unknown"
	}
	return &wfAlgo{sys: sys, locks: locks, name: name}
}

// WFForWorkload builds the wait-free locks configured for a workload.
func WFForWorkload(w *workload.Workload, thunkSteps int, unknown bool) Algorithm {
	cfg := core.Config{
		Kappa:         w.Kappa,
		MaxLocks:      w.MaxLocksPerSet,
		MaxThunkSteps: thunkSteps,
		DelayC:        4,
		DelayC1:       8,
	}
	if unknown {
		cfg.UnknownBounds = true
		cfg.NumProcs = w.NumProcs()
	}
	return NewWF(cfg, w.NumLocks)
}

func (a *wfAlgo) Name() string   { return a.name }
func (a *wfAlgo) WaitFree() bool { return true }

func (a *wfAlgo) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	ls := make([]*core.Lock, len(lockIdx))
	for i, li := range lockIdx {
		ls[i] = a.locks[li]
	}
	return a.sys.TryLocks(e, ls, thunk)
}

// System exposes the underlying core system (for counters).
func (a *wfAlgo) System() *core.System { return a.sys }

// tasAlgo adapts baseline.TAS.
type tasAlgo struct{ t *baseline.TAS }

var _ Algorithm = tasAlgo{}

// NewTAS builds the fail-fast test-and-set baseline.
func NewTAS(numLocks int) Algorithm { return tasAlgo{t: baseline.NewTAS(numLocks)} }

func (a tasAlgo) Name() string   { return "tas" }
func (a tasAlgo) WaitFree() bool { return false }
func (a tasAlgo) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	return a.t.TryLocks(e, lockIdx, thunk)
}

// tspAlgo adapts baseline.TSP.
type tspAlgo struct{ t *baseline.TSP }

var _ Algorithm = tspAlgo{}

// NewTSP builds the Turek–Shasha–Prakash lock-free locks baseline.
func NewTSP(numLocks int) Algorithm { return tspAlgo{t: baseline.NewTSP(numLocks)} }

func (a tspAlgo) Name() string   { return "tsp-lockfree" }
func (a tspAlgo) WaitFree() bool { return false }
func (a tspAlgo) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	return a.t.TryLocks(e, lockIdx, thunk)
}

// stAlgo adapts baseline.ST (Shavit–Touitou selfish helping).
type stAlgo struct{ t *baseline.ST }

var _ Algorithm = stAlgo{}

// NewST builds the Shavit–Touitou selfish-helping baseline.
func NewST(numLocks int) Algorithm { return stAlgo{t: baseline.NewST(numLocks)} }

func (a stAlgo) Name() string   { return "st-selfish" }
func (a stAlgo) WaitFree() bool { return false }
func (a stAlgo) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	return a.t.TryLocks(e, lockIdx, thunk)
}

// herlihyAlgo adapts baseline.Herlihy (single-lock universal
// construction): every lock index maps to the one global object, so it
// is only valid on single-lock workloads.
type herlihyAlgo struct{ h *baseline.Herlihy }

var _ Algorithm = herlihyAlgo{}

// NewHerlihy builds the Herlihy-style universal construction sized for
// p processes. Only valid for L = 1 workloads.
func NewHerlihy(p int) Algorithm { return herlihyAlgo{h: baseline.NewHerlihy(p)} }

func (a herlihyAlgo) Name() string   { return "herlihy-universal" }
func (a herlihyAlgo) WaitFree() bool { return true }
func (a herlihyAlgo) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	if len(lockIdx) != 1 {
		panic("bench: herlihy-universal supports single-lock workloads only")
	}
	a.h.Do(e, thunk)
	return true
}

// spinAlgo adapts baseline.Spin.
type spinAlgo struct{ s *baseline.Spin }

var _ Algorithm = spinAlgo{}

// NewSpin builds the ordered blocking baseline.
func NewSpin(numLocks int) Algorithm { return spinAlgo{s: baseline.NewSpin(numLocks)} }

func (a spinAlgo) Name() string   { return "spin-2pl" }
func (a spinAlgo) WaitFree() bool { return false }
func (a spinAlgo) TryLocks(e env.Env, lockIdx []int, thunk *idem.Exec) bool {
	return a.s.TryLocks(e, lockIdx, thunk)
}
