package bench

import (
	"errors"
	"fmt"

	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/sched"
	"wflocks/internal/workload"
)

// RunConfig parameterizes one simulated experiment run.
type RunConfig struct {
	Workload *workload.Workload
	Schedule sched.Schedule // nil = uniform random over the workload's processes
	Seed     uint64
	// Rounds is the number of rounds per process. In attempt mode each
	// round is one tryLock; in Retry mode each round retries until it
	// succeeds.
	Rounds int
	Retry  bool
	// ExtraThunkOps pads every critical section with this many extra
	// reads, to scale the paper's T parameter.
	ExtraThunkOps int
	// MaxSteps bounds the simulation; 0 selects a generous default.
	MaxSteps uint64
	// AllowStarvation tolerates a step-limit exit (used when measuring
	// blocking baselines under stalls).
	AllowStarvation bool
}

// Metrics holds everything measured in one run.
type Metrics struct {
	PerProcAttempts []int
	PerProcWins     []int
	// AttemptSteps has one entry per attempt: the caller's own steps
	// spent in that attempt.
	AttemptSteps []uint64
	// RoundSteps has one entry per *completed* round in Retry mode: own
	// steps from round start to first success.
	RoundSteps []uint64
	// RoundAttempts has the attempt count per completed round.
	RoundAttempts []int
	// Starved reports that the run hit the step limit.
	Starved bool
	// FinishedProcs counts processes that completed all rounds.
	FinishedProcs int
}

// Attempts sums attempts across processes.
func (m *Metrics) Attempts() int {
	n := 0
	for _, a := range m.PerProcAttempts {
		n += a
	}
	return n
}

// Wins sums wins across processes.
func (m *Metrics) Wins() int {
	n := 0
	for _, w := range m.PerProcWins {
		n += w
	}
	return n
}

// SuccessRate is wins/attempts.
func (m *Metrics) SuccessRate() float64 {
	if m.Attempts() == 0 {
		return 0
	}
	return float64(m.Wins()) / float64(m.Attempts())
}

// ThunkOps returns the number of Tx operations of the standard
// invariant-checking critical section for lock sets of size l with the
// given padding.
func ThunkOps(l, extra int) int { return 5*l + extra + 1 }

// ThunkSteps converts ThunkOps into the simulated step bound T (each
// idempotent op costs at most ~8 steps).
func ThunkSteps(l, extra int) int { return 8 * ThunkOps(l, extra) }

// instrumentation is the shared invariant-checking state.
type instrumentation struct {
	held      []*idem.Cell
	ctr       []*idem.Cell
	violation *idem.Cell
	pad       *idem.Cell
}

func newInstrumentation(numLocks int) *instrumentation {
	ins := &instrumentation{
		held:      make([]*idem.Cell, numLocks),
		ctr:       make([]*idem.Cell, numLocks),
		violation: idem.NewCell(0),
		pad:       idem.NewCell(0),
	}
	for i := 0; i < numLocks; i++ {
		ins.held[i] = idem.NewCell(0)
		ins.ctr[i] = idem.NewCell(0)
	}
	return ins
}

// thunk builds the standard critical section: open each lock's
// held-flag (recording a violation if already open), bump each lock's
// counter, pad with extra reads, close the flags.
func (ins *instrumentation) thunk(lockIdx []int, extra int) *idem.Exec {
	return idem.NewExec(func(r *idem.Run) {
		for _, li := range lockIdx {
			if r.Read(ins.held[li]) != 0 {
				r.Write(ins.violation, 1)
			} else {
				r.Write(ins.held[li], 1)
			}
		}
		for _, li := range lockIdx {
			v := r.Read(ins.ctr[li])
			r.Write(ins.ctr[li], v+1)
		}
		for k := 0; k < extra; k++ {
			r.Read(ins.pad)
		}
		for _, li := range lockIdx {
			r.Write(ins.held[li], 0)
		}
	}, ThunkOps(len(lockIdx), extra))
}

// RunSim executes the workload on the algorithm under an oblivious
// schedule and verifies the mutual-exclusion invariants before
// returning metrics.
func RunSim(alg Algorithm, rc RunConfig) (*Metrics, error) {
	w := rc.Workload
	if err := w.Validate(); err != nil {
		return nil, err
	}
	procs := w.NumProcs()
	schedule := rc.Schedule
	if schedule == nil {
		schedule = sched.NewRandom(procs, rc.Seed)
	}
	maxSteps := rc.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}

	ins := newInstrumentation(w.NumLocks)
	sim := sched.New(schedule, rc.Seed)
	m := &Metrics{
		PerProcAttempts: make([]int, procs),
		PerProcWins:     make([]int, procs),
	}
	finished := make([]bool, procs)
	for i := 0; i < procs; i++ {
		i := i
		set := w.Sets[i]
		sim.Spawn(func(e env.Env) {
			for k := 0; k < rc.Rounds; k++ {
				if rc.Retry {
					roundStart := e.Steps()
					attempts := 0
					for {
						attempts++
						m.PerProcAttempts[i]++
						before := e.Steps()
						ok := alg.TryLocks(e, set, ins.thunk(set, rc.ExtraThunkOps))
						m.AttemptSteps = append(m.AttemptSteps, e.Steps()-before)
						if ok {
							m.PerProcWins[i]++
							break
						}
					}
					m.RoundSteps = append(m.RoundSteps, e.Steps()-roundStart)
					m.RoundAttempts = append(m.RoundAttempts, attempts)
				} else {
					m.PerProcAttempts[i]++
					before := e.Steps()
					if alg.TryLocks(e, set, ins.thunk(set, rc.ExtraThunkOps)) {
						m.PerProcWins[i]++
					}
					m.AttemptSteps = append(m.AttemptSteps, e.Steps()-before)
				}
			}
			finished[i] = true
		})
	}
	err := sim.Run(maxSteps)
	if err != nil {
		if !rc.AllowStarvation || !errors.Is(err, sched.ErrStepLimit) {
			return nil, err
		}
		m.Starved = true
	}
	for _, f := range finished {
		if f {
			m.FinishedProcs++
		}
	}

	// Invariant checks.
	e := env.NewNative(procs, 1)
	if ins.violation.Load(e) != 0 {
		return nil, fmt.Errorf("bench: %s violated mutual exclusion on %s (seed %d)",
			alg.Name(), w.Name, rc.Seed)
	}
	if !m.Starved {
		want := make([]uint64, w.NumLocks)
		for i, set := range w.Sets {
			for _, li := range set {
				want[li] += uint64(m.PerProcWins[i])
			}
		}
		for li := range want {
			if got := ins.ctr[li].Load(e); got != want[li] {
				return nil, fmt.Errorf(
					"bench: %s lost or duplicated critical sections on lock %d: counter %d, wins %d (seed %d)",
					alg.Name(), li, got, want[li], rc.Seed)
			}
		}
	}
	return m, nil
}
