package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wflocks"
	"wflocks/internal/workload"
)

// Log workload runner: drives a workload.LogScenario against the wflog
// subsystem (sweeping the shard count) and against two baselines — a
// mutex-guarded slice log with per-consumer positions and a
// channel-fan-out broadcaster — in the raw and holder-stall regimes.
//
// Broadcast delivery changes what a stall costs. In the mutex+slice
// design one lock guards the entries and every consumer position, so a
// producer stalled mid-append holds up every subscriber for the stall.
// The channel fan-out moves the serialization into the broadcaster
// goroutine: a stall there — or one slow subscriber filling its buffer
// — head-of-line blocks the whole fan-out. wflog's stalled appender is
// helped past its critical section, so the stall costs only the
// stalled goroutine and (with shards > 1) disturbs only its shard.
//
// Stalls are injected symmetrically on the value-write path, on both
// sides of the log: wflog routes values through StallValueCodec, whose
// Encode draws inside the append critical section (slot write) and
// inside the cursor-advance section (result-cell write, mirroring
// wfqueue's dequeues); the mutex log draws while holding its mutex
// whenever it touches an entry's value, on append and on read; the
// channel log draws in the broadcaster per forwarded entry and in each
// reader beside its receive (a goroutine cannot sleep holding the
// runtime's channel lock — the channel is the stall-tolerant shape,
// exactly as in the queue tables).
//
// Every run audits prefix consistency: each consumer must see every
// producer's entries gaplessly in per-producer order (keyed appends
// pin a producer to one shard, so the order is a delivery guarantee,
// not a scheduling accident).

// logShardCounts is the wflog shard sweep; aggregate capacity is held
// constant while per-shard contention shrinks.
var logShardCounts = []int{1, 2, 4, 8}

// laggardEvery/laggardNap is the lagging-consumer schedule: a laggard
// sleeps for laggardNap every laggardEvery reads, stretching retention
// behind it without ever stopping.
const (
	laggardEvery = 32
	laggardNap   = 500 * time.Microsecond
)

// MutexSliceLog is the blocking baseline a hand-rolled broadcast log
// uses: one sync.Mutex guarding an entry slice plus per-consumer read
// positions, compacting from the front once capacity is reached and no
// consumer still needs the prefix. stall (which may be nil) is drawn
// while the mutex is held whenever an entry's value is touched —
// appends and reads alike — mirroring wflog's in-critical-section
// encodes on both sides.
type MutexSliceLog struct {
	mu    sync.Mutex
	buf   []uint64
	base  uint64
	cap   int
	pos   []uint64
	stall *StallPoint
}

// NewMutexSliceLog creates a baseline log retaining at most capacity
// entries.
func NewMutexSliceLog(capacity int, stall *StallPoint) *MutexSliceLog {
	return &MutexSliceLog{cap: capacity, stall: stall}
}

// TryAppend appends v, compacting consumed prefix first when full;
// it reports false when the slowest consumer pins the whole window.
func (l *MutexSliceLog) TryAppend(_, v uint64) bool {
	l.mu.Lock()
	if len(l.buf) >= l.cap {
		min := l.base + uint64(len(l.buf))
		for _, p := range l.pos {
			if p < min {
				min = p
			}
		}
		if min == l.base {
			l.mu.Unlock()
			return false
		}
		drop := min - l.base
		l.buf = append(l.buf[:0], l.buf[drop:]...)
		l.base = min
	}
	l.stall.Hit()
	l.buf = append(l.buf, v)
	l.mu.Unlock()
	return true
}

// Len reports the retained-entry count.
func (l *MutexSliceLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// NewReader attaches a consumer at the current head (the oldest
// retained entry), returning its reader.
func (l *MutexSliceLog) NewReader() *MutexSliceReader {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pos = append(l.pos, l.base)
	return &MutexSliceReader{log: l, idx: len(l.pos) - 1}
}

// MutexSliceReader is one consumer's position in a MutexSliceLog.
type MutexSliceReader struct {
	log *MutexSliceLog
	idx int
}

// Close detaches the reader: its position stops pinning compaction and
// it must not be read again.
func (r *MutexSliceReader) Close() {
	l := r.log
	l.mu.Lock()
	l.pos[r.idx] = ^uint64(0)
	l.mu.Unlock()
}

// TryNext delivers the reader's next entry, reporting false at the
// tail.
func (r *MutexSliceReader) TryNext() (uint64, bool) {
	l := r.log
	l.mu.Lock()
	p := l.pos[r.idx]
	if p >= l.base+uint64(len(l.buf)) {
		l.mu.Unlock()
		return 0, false
	}
	l.stall.Hit()
	v := l.buf[p-l.base]
	l.pos[r.idx] = p + 1
	l.mu.Unlock()
	return v, true
}

// ChanFanLog is the channel-idiom baseline: producers send into one
// input channel and a broadcaster goroutine forwards every entry to a
// buffered per-consumer channel with blocking sends — the standard Go
// pub/sub shape. Its failure mode is structural: one slow consumer
// fills its buffer and the blocking fan-out send head-of-line blocks
// every other consumer. stall (which may be nil) is drawn in the
// broadcaster once per forwarded entry.
type ChanFanLog struct {
	in    chan uint64
	outs  []chan uint64
	stall *StallPoint
	dist  atomic.Uint64
	done  chan struct{}
}

// NewChanFanLog creates a fan-out over the given consumer count; the
// input and every consumer buffer hold capacity entries.
func NewChanFanLog(capacity, consumers int, stall *StallPoint) *ChanFanLog {
	l := &ChanFanLog{
		in:    make(chan uint64, capacity),
		outs:  make([]chan uint64, consumers),
		stall: stall,
		done:  make(chan struct{}),
	}
	for i := range l.outs {
		l.outs[i] = make(chan uint64, capacity)
	}
	go l.broadcast()
	return l
}

func (l *ChanFanLog) broadcast() {
	defer close(l.done)
	for v := range l.in {
		l.stall.Hit()
		for _, out := range l.outs {
			out <- v
		}
		l.dist.Add(1)
	}
}

// TryAppend submits v to the broadcaster, reporting false when the
// input buffer is full.
func (l *ChanFanLog) TryAppend(_, v uint64) bool {
	select {
	case l.in <- v:
		return true
	default:
		return false
	}
}

// Reader returns consumer i's non-blocking receive; the stall is drawn
// beside the receive, outside the runtime's channel lock.
func (l *ChanFanLog) Reader(i int) func() (uint64, bool) {
	ch := l.outs[i]
	return func() (uint64, bool) {
		select {
		case v := <-ch:
			l.stall.Hit()
			return v, true
		default:
			return 0, false
		}
	}
}

// Distributed reports how many entries the broadcaster has forwarded to
// every consumer — the replay runs' prefill barrier.
func (l *ChanFanLog) Distributed() uint64 { return l.dist.Load() }

// Close stops the broadcaster after it drains the input.
func (l *ChanFanLog) Close() {
	close(l.in)
	<-l.done
}

// newWfLog builds a Log sized for the scenario at the given shard
// count, with a consumer-slot pool matching the scenario topology. Like
// the queue tier it runs the unknown-bounds adaptive-delay variant: the
// per-shard point contention is far below the goroutine count.
func newWfLog(sc *workload.LogScenario, shards, procs int, sp *StallPoint) (*wflocks.Log[uint64], *wflocks.Manager, error) {
	budget := wflocks.LogCriticalSteps(1, 1, sc.Consumers, sc.Segment)
	m, err := AdaptiveManager(procs, 2, budget, wflocks.WithMetrics())
	if err != nil {
		return nil, nil, err
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = StallValueCodec(sp)
	}
	lg, err := wflocks.NewLogOf[uint64](m, vc,
		wflocks.WithLogShards(shards), wflocks.WithLogCapacity(sc.Capacity),
		wflocks.WithLogSegment(sc.Segment), wflocks.WithLogBatch(1),
		wflocks.WithLogConsumers(sc.Consumers))
	return lg, m, err
}

// logImpl is one implementation wired for a run: an appender, one
// pre-attached reader per consumer, and lifecycle hooks.
type logImpl struct {
	append func(key, v uint64) bool
	read   []func() (uint64, bool)
	// settle, when non-nil, blocks until a replay prefill of total
	// entries is visible to every reader (the channel baseline's
	// broadcaster is asynchronous).
	settle func(total int)
	// atPeak, when non-nil, samples retention at the moment the
	// producers finish — the lagmax column's high-water mark.
	atPeak func()
	// finish, when non-nil, fills the implementation-specific columns
	// from post-run stats.
	finish func(row []string)
	// close, when non-nil, releases the implementation's resources.
	close func()
}

// RunLogScenario drives sc against the wflog shard sweep and the
// mutex+slice and channel-fan-out baselines, in the raw and
// holder-stall regimes, and tabulates delivered throughput, retention
// and contention.
func RunLogScenario(sc *workload.LogScenario, scale Scale) (*Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	itemsPer := 200
	if scale == Full {
		itemsPer = 2000
	}
	if sc.Replay && sc.Producers*itemsPer > sc.Capacity {
		return nil, fmt.Errorf("%s: replay prefill %d exceeds capacity %d",
			sc.Name, sc.Producers*itemsPer, sc.Capacity)
	}
	shape := "live"
	if sc.Replay {
		shape = "replay"
	}
	t := &Table{
		Title: fmt.Sprintf("%s: %d producers × %d items broadcast to %d consumers (%d lagging), cap %d, segment %d, %s",
			sc.Name, sc.Producers, itemsPer, sc.Consumers, sc.Laggards, sc.Capacity, sc.Segment, shape),
		Header: append(append([]string{"impl", "shards", "stall", "deliv/sec"}, LogColsHeader...),
			append([]string{"success", "attempts/op"}, ObsHeader...)...),
	}
	procs := sc.Producers + sc.Consumers + 4
	for _, stalled := range []bool{false, true} {
		label := "none"
		newSP := func() *StallPoint { return nil }
		if stalled {
			label = fmt.Sprintf("%v/%d", StallDur, StallPeriod)
			newSP = func() *StallPoint { return NewStallPoint(StallPeriod, StallDur) }
		}
		for _, shards := range logShardCounts {
			sp := newSP()
			lg, m, err := newWfLog(sc, shards, procs, sp)
			if err != nil {
				return nil, err
			}
			if sc.Replay && itemsPer > lg.Cap()/shards {
				// Keyed appends pin a producer to one shard, so a replay
				// prefill must fit per shard, not just in aggregate.
				return nil, fmt.Errorf("%s: replay prefill %d per producer exceeds per-shard capacity %d at %d shards",
					sc.Name, itemsPer, lg.Cap()/shards, shards)
			}
			im := &logImpl{append: lg.TryAppendKeyed}
			for c := 0; c < sc.Consumers; c++ {
				cur, err := lg.NewCursor()
				if err != nil {
					return nil, err
				}
				im.read = append(im.read, cur.TryNext)
			}
			var lagPeak int
			im.atPeak = func() { lagPeak = lg.Stats().MaxLag }
			im.finish = func(row []string) {
				st := lg.Stats()
				var attempts, wins uint64
				for _, sh := range st.Shards {
					attempts += sh.Lock.Attempts
					wins += sh.Lock.Wins
				}
				fillLogCols(row, st.Trimmed, lagPeak)
				ops := uint64(sc.Producers*itemsPer) + st.Reads
				if attempts > 0 && ops > 0 {
					row[6] = fmt.Sprintf("%.3f", float64(wins)/float64(attempts))
					row[7] = fmt.Sprintf("%.2f", float64(attempts)/float64(ops))
				}
				fillObsCols(row, []*wflocks.Manager{m})
			}
			row, err := runLogImpl(sc, "wflog", fmt.Sprint(shards), label, sp, itemsPer, im)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		{
			sp := newSP()
			ml := NewMutexSliceLog(sc.Capacity, sp)
			im := &logImpl{append: ml.TryAppend}
			for c := 0; c < sc.Consumers; c++ {
				im.read = append(im.read, ml.NewReader().TryNext)
			}
			row, err := runLogImpl(sc, "mutexslice", "1", label, sp, itemsPer, im)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		{
			sp := newSP()
			cf := NewChanFanLog(sc.Capacity, sc.Consumers, sp)
			im := &logImpl{append: cf.TryAppend, close: cf.Close}
			for c := 0; c < sc.Consumers; c++ {
				im.read = append(im.read, cf.Reader(c))
			}
			im.settle = func(total int) {
				for cf.Distributed() < uint64(total) {
					runtime.Gosched()
				}
			}
			row, err := runLogImpl(sc, "chanfan", "-", label, sp, itemsPer, im)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"deliv/sec counts consumer-side deliveries (every consumer reads the whole stream); every run audits gapless per-producer delivery order",
		"raw regime: the mutex+slice and channel fan-out win on constant factors — every wflog attempt pays the adaptive variant's padded delays",
		"stall regime: appenders and readers stall mid-value-touch ("+fmt.Sprintf("%v every %d touches", StallDur, StallPeriod)+"); a stalled mutex-log holder — appender or subscriber — blocks everyone, a stalled chanfan broadcaster head-of-line blocks the fan-out, a stalled wflog section is helped past and disturbs one shard",
		"trimmed counts entries reclaimed in-append behind the slowest cursor; lagmax samples the largest cursor backlog at producer completion")
	return t, nil
}

// runLogImpl measures one implementation under one regime: producers
// append keyed by their id, every consumer reads the whole stream
// through its own reader, and each delivery is audited for gapless
// per-producer order. Replay runs prefill the whole stream unmeasured
// and unstall(ed), then time only the concurrent drain.
func runLogImpl(sc *workload.LogScenario, impl, shards, stallLabel string, sp *StallPoint,
	itemsPer int, im *logImpl) ([]string, error) {
	total := sc.Producers * itemsPer
	produce := func(w int) {
		for i := 0; i < itemsPer; i++ {
			v := uint64(w)<<32 | uint64(i+1)
			for !im.append(uint64(w), v) {
				runtime.Gosched()
			}
		}
	}
	if sc.Replay {
		for w := 0; w < sc.Producers; w++ {
			produce(w)
		}
		if im.settle != nil {
			im.settle(total)
		}
		if im.atPeak != nil {
			im.atPeak()
		}
	}
	sp.Arm()
	var auditMu sync.Mutex
	var auditErr error
	var pwg, cwg sync.WaitGroup
	start := time.Now()
	if !sc.Replay {
		for w := 0; w < sc.Producers; w++ {
			pwg.Add(1)
			go func(w int) {
				defer pwg.Done()
				produce(w)
			}(w)
		}
	}
	for c := 0; c < sc.Consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			read := im.read[c]
			last := make([]uint32, sc.Producers)
			for reads := 0; reads < total; {
				v, ok := read()
				if !ok {
					runtime.Gosched()
					continue
				}
				pid := int(v >> 32)
				seq := uint32(v)
				if pid >= sc.Producers || seq != last[pid]+1 {
					auditMu.Lock()
					if auditErr == nil {
						auditErr = fmt.Errorf("%s %s consumer %d: entry %d/%d breaks prefix order (want seq %d)",
							sc.Name, impl, c, pid, seq, last[pid]+1)
					}
					auditMu.Unlock()
					return
				}
				last[pid] = seq
				reads++
				if c < sc.Laggards && reads%laggardEvery == 0 {
					time.Sleep(laggardNap)
				}
			}
		}(c)
	}
	if !sc.Replay {
		pwg.Wait()
		if im.atPeak != nil {
			im.atPeak()
		}
	}
	cwg.Wait()
	elapsed := time.Since(start)
	if auditErr != nil {
		return nil, auditErr
	}
	delivered := sc.Consumers * total
	row := []string{
		impl,
		shards,
		stallLabel,
		fmt.Sprintf("%.0f", float64(delivered)/elapsed.Seconds()),
		"-", "-", "-", "-", "-", "-", "-",
	}
	if im.finish != nil {
		im.finish(row)
	}
	if im.close != nil {
		im.close()
	}
	return row, nil
}
