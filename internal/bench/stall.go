package bench

import (
	"sync/atomic"
	"time"

	"wflocks"
)

// Holder-stall injection, shared by the cache, transaction and queue
// benchmarks. The paper's target regime is lock holders that stall
// mid-critical-section (a preempted vCPU, a page fault, a GC pause): a
// stalled blocking-lock holder serializes everyone behind it for the
// stall, while a stalled wait-free winner is helped — competitors
// re-execute its critical section through the idempotence layer and
// move on, so the stall costs only the stalled goroutine.
//
// Every benchmark injects the stall symmetrically through the
// value-write path: blocking baselines draw from a StallPoint while
// holding their mutexes whenever they touch an entry's value, and the
// wait-free structures route values through StallValueCodec, whose
// Encode draws the same schedule inside their critical sections. The
// draw is per execution, not per logical op — exactly the preemption
// model, where stalls strike the executing process, not the
// operation.

// StallPoint injects periodic stalls: every Period-th call sleeps for
// Dur, once Arm has been called — setup work (structure construction,
// prefill) draws without sleeping, so the stall schedule belongs
// entirely to the measured run. Counter-based rather than randomized
// so runs are comparable; the sharing across goroutines is what makes
// it model "some process is preempted every so often". A nil
// StallPoint never stalls.
type StallPoint struct {
	Period uint64
	Dur    time.Duration
	armed  atomic.Bool
	n      atomic.Uint64
}

// NewStallPoint builds a stall point that sleeps for dur once every
// period calls after Arm.
func NewStallPoint(period int, dur time.Duration) *StallPoint {
	return &StallPoint{Period: uint64(period), Dur: dur}
}

// Arm enables sleeping (and resets the call counter, so the first
// stall lands a full period into the run).
func (s *StallPoint) Arm() {
	if s == nil {
		return
	}
	s.n.Store(0)
	s.armed.Store(true)
}

// Hit draws one stall decision.
func (s *StallPoint) Hit() {
	if s == nil || s.Period == 0 {
		return
	}
	if s.n.Add(1)%s.Period == 0 && s.armed.Load() {
		time.Sleep(s.Dur)
	}
}

// StallValueCodec wraps the single-word uint64 value codec so that
// every Encode draws from the stall point. Encodes happen inside the
// wait-free structures' critical sections (bucket/slot writes and
// result-cell writes), so this plants the stall exactly where a
// preempted holder would hold everything up under a blocking design.
func StallValueCodec(sp *StallPoint) wflocks.Codec[uint64] {
	return wflocks.CodecFunc(1,
		func(v uint64, dst []uint64) {
			sp.Hit()
			dst[0] = v
		},
		func(src []uint64) uint64 { return src[0] })
}

// Stall-regime parameters shared by the scenario runners (exported so
// the wfserve harness injects the identical regime): one value write in
// sixteen sleeps for the stall duration. At the scenario mixes this
// stalls roughly one op in twenty — a heavy but not absurd preemption
// rate, chosen so the stall cost dominates every implementation's base
// cost and the comparison measures stall handling, not constant
// factors.
const (
	StallPeriod = 16
	StallDur    = 4 * time.Millisecond
)
