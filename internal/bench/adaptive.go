package bench

import (
	"fmt"
	"strings"

	"wflocks"
)

// Variant names a delay regime for benchmark managers. Every structure
// runner sweeps both by default so the tables show what each regime
// costs on the same workload.
type Variant string

const (
	// VariantKnown is the paper's base algorithm: fixed delays
	// T0 = c·κ²L²T and T1 = c′·κLT, configured with WithKappa and the
	// benchmark calibration WithDelayConstants(1, 1). It needs the
	// contention bound κ up front and pays the full worst-case delays
	// on every slow-path attempt regardless of actual contention.
	VariantKnown Variant = "known"
	// VariantAdaptive is the unknown-bounds variant (paper Section 6.2,
	// Theorem 6.10), configured with WithUnknownBounds: back-off delays
	// padded to powers of two track the actual point contention, at the
	// price of a log factor in the success bound. This is the library's
	// recommended default.
	VariantAdaptive Variant = "adaptive"
)

// AllVariants is the default sweep order: the recommended adaptive
// regime first, then the paper's known-bounds base algorithm.
var AllVariants = []Variant{VariantAdaptive, VariantKnown}

// ParseVariants parses a -variant flag value: "known", "adaptive", or
// "both"/"" for the full sweep.
func ParseVariants(s string) ([]Variant, error) {
	switch strings.ToLower(s) {
	case "", "both":
		return AllVariants, nil
	case string(VariantKnown):
		return []Variant{VariantKnown}, nil
	case string(VariantAdaptive):
		return []Variant{VariantAdaptive}, nil
	}
	return nil, fmt.Errorf("unknown variant %q (want known, adaptive or both)", s)
}

// NewManager builds a benchmark manager in the given delay regime with
// shared sizing: procs serves as κ for the known-bounds regime and as P
// for the adaptive one, so a single worker count parameterizes both.
// procs must be a true upper bound on concurrently contending
// goroutines: exceeding it voids the fairness bound under known bounds
// and is a hard error in the adaptive core, so callers size it from
// their worker and connection limits, not from typical load. extra
// options (WithMetrics, WithTracing, ...) are appended after the
// regime's own, so they can refine but not override it.
func NewManager(v Variant, procs, maxLocks, maxCritical int, extra ...wflocks.Option) (*wflocks.Manager, error) {
	var opts []wflocks.Option
	switch v {
	case VariantAdaptive:
		opts = []wflocks.Option{
			wflocks.WithUnknownBounds(procs),
			wflocks.WithMaxLocks(maxLocks),
			wflocks.WithMaxCriticalSteps(maxCritical),
		}
	case VariantKnown:
		opts = []wflocks.Option{
			wflocks.WithKappa(procs),
			wflocks.WithMaxLocks(maxLocks),
			wflocks.WithMaxCriticalSteps(maxCritical),
			wflocks.WithDelayConstants(1, 1),
		}
	default:
		return nil, fmt.Errorf("bench: unknown variant %q", v)
	}
	return wflocks.New(append(opts, extra...)...)
}

// AdaptiveManager builds a manager in the unknown-bounds adaptive-delay
// configuration — NewManager(VariantAdaptive, ...). The queue and
// service tiers use it directly: their per-lock contention after
// sharding is far below the process count, which is exactly the regime
// the adaptive delays exploit.
func AdaptiveManager(procs, maxLocks, maxCritical int, extra ...wflocks.Option) (*wflocks.Manager, error) {
	return NewManager(VariantAdaptive, procs, maxLocks, maxCritical, extra...)
}
