package bench

import "wflocks"

// AdaptiveManager builds a manager in the unknown-bounds adaptive-delay
// configuration (Section 6.2, Theorem 6.10): back-off delays padded to
// powers of two track the actual point contention instead of the fixed
// worst-case κ²L²T, at the price of a log factor in the success bound.
// This is the right configuration whenever per-lock contention after
// sharding is far below the process count — the queue benchmarks proved
// it out, and the wfserve service (whose connection count is a loose
// upper bound, rarely approached per shard) inherits it. procs must be
// a true upper bound on concurrently contending goroutines: exceeding
// it is a hard error in the core, so callers size it from their worker
// and connection limits, not from typical load.
func AdaptiveManager(procs, maxLocks, maxCritical int) (*wflocks.Manager, error) {
	return wflocks.New(
		wflocks.WithUnknownBounds(procs),
		wflocks.WithMaxLocks(maxLocks),
		wflocks.WithMaxCriticalSteps(maxCritical),
	)
}
