package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wflocks"
	"wflocks/internal/workload"
)

// Queue workload runner: drives a workload.QueueScenario against the
// wfqueue subsystem (the single-ring Queue and the sharded WorkPool,
// sweeping the shard count) and against two baselines — a buffered Go
// channel and a mutex+ring — in the raw and holder-stall regimes.
//
// In the raw regime the baselines win on constant factors: a channel
// send is a runtime-assisted handoff and a mutex+ring op is a handful
// of instructions, while every wait-free attempt pays the paper's
// fixed delays (c·κ²L²T own steps). The interesting regime is the
// paper's: producers and consumers that stall mid-operation. A
// stalled mutex+ring holder blocks the whole queue for the stall; a
// stalled wfqueue winner is helped, so stalls overlap instead of
// serializing, and the sharded WorkPool additionally confines each
// stall to one shard. The channel baseline deserves an honest note:
// a goroutine cannot sleep while holding the channel's internal lock,
// so its stalls are drawn just outside the send/receive — channels
// are inherently stall-tolerant, and the stall regime mainly measures
// their loss of the stalled goroutine's own throughput. The
// comparison the regime isolates is wfqueue vs the mutex+ring, the
// design a hand-rolled bounded queue actually uses.
//
// Every run audits conservation: the sum of consumed values must
// equal the sum produced, whatever the interleaving.

// queueShardCounts is the WorkPool shard sweep.
var queueShardCounts = []int{1, 2, 4, 8}

// queueWorkers picks the driver goroutine count: the host's
// parallelism, but at least 8 so the mpmc scenario has real
// many-to-many contention (and enough runnable competitors to help
// stalled winners) even on small machines.
func queueWorkers() int {
	if p := runtime.GOMAXPROCS(0); p > 8 {
		return p
	}
	return 8
}

// benchQueue is the uniform surface the queue drivers need; all four
// implementations provide it.
type benchQueue interface {
	TryEnqueue(v uint64) bool
	TryDequeue() (uint64, bool)
}

// ChanQueue adapts a buffered channel. Stalls are drawn outside the
// channel operation — the runtime's channel lock cannot be held across
// a user-code sleep — which is precisely why the channel is the
// stall-tolerant baseline (see the file comment).
type ChanQueue struct {
	ch    chan uint64
	stall *StallPoint
}

// NewChanQueue creates a channel baseline with the given capacity.
// stall (which may be nil) is drawn once per operation, outside the
// channel op.
func NewChanQueue(capacity int, stall *StallPoint) *ChanQueue {
	return &ChanQueue{ch: make(chan uint64, capacity), stall: stall}
}

// TryEnqueue sends v, reporting false when the buffer is full.
func (q *ChanQueue) TryEnqueue(v uint64) bool {
	q.stall.Hit()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

// TryDequeue receives, reporting false when the buffer is empty.
func (q *ChanQueue) TryDequeue() (uint64, bool) {
	q.stall.Hit()
	select {
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

// MutexRing is the blocking baseline a hand-rolled bounded MPMC queue
// uses: one sync.Mutex guarding a ring buffer with head/tail indices.
// stall (which may be nil) is drawn while the mutex is held whenever a
// slot's value is touched, mirroring wfqueue's in-critical-section
// encodes; a stalled holder blocks every producer and consumer for
// the stall.
type MutexRing struct {
	mu    sync.Mutex
	buf   []uint64
	head  uint64
	tail  uint64
	stall *StallPoint
}

// NewMutexRing creates a baseline ring with the given capacity
// (rounded up to a power of two, matching wfqueue).
func NewMutexRing(capacity int, stall *StallPoint) *MutexRing {
	return &MutexRing{buf: make([]uint64, nextPow2(capacity)), stall: stall}
}

// TryEnqueue appends v, reporting false when the ring is full.
func (q *MutexRing) TryEnqueue(v uint64) bool {
	q.mu.Lock()
	if q.tail-q.head >= uint64(len(q.buf)) {
		q.mu.Unlock()
		return false
	}
	q.stall.Hit()
	q.buf[q.tail&uint64(len(q.buf)-1)] = v
	q.tail++
	q.mu.Unlock()
	return true
}

// TryDequeue pops the oldest element, reporting false when empty.
func (q *MutexRing) TryDequeue() (uint64, bool) {
	q.mu.Lock()
	if q.head == q.tail {
		q.mu.Unlock()
		return 0, false
	}
	q.stall.Hit()
	v := q.buf[q.head&uint64(len(q.buf)-1)]
	q.head++
	q.mu.Unlock()
	return v, true
}

// Len reports the occupancy.
func (q *MutexRing) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return int(q.tail - q.head)
}

// Queue benchmark managers run the unknown-bounds (Section 6.2)
// variant: the queue's per-lock point contention after sharding is far
// below the worker count, and the adaptive algorithm's
// pad-to-power-of-two delays track the actual contention instead of
// the worst-case fixed κ²L²T — the paper's own answer (Theorem 6.10,
// reproduced by E5/E11) to exactly this gap, at the price of a log
// factor in the success bound. The map/cache/txn runners keep the
// known-bounds variant, so both modes stay covered end to end.

// newWfQueue builds a single-ring Queue sized for the scenario,
// returning the manager alongside for the run's observability columns.
func newWfQueue(sc *workload.QueueScenario, workers int, sp *StallPoint) (*wflocks.Queue[uint64], *wflocks.Manager, error) {
	m, err := AdaptiveManager(workers+2, 1, wflocks.QueueCriticalSteps(1, 1), wflocks.WithMetrics())
	if err != nil {
		return nil, nil, err
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = StallValueCodec(sp)
	}
	q, err := wflocks.NewQueueOf[uint64](m, vc,
		wflocks.WithQueueCapacity(sc.Capacity), wflocks.WithQueueBatch(1))
	return q, m, err
}

// newWfPool builds a WorkPool with the given shard count; the
// scenario's capacity is the pool total, so the sweep holds aggregate
// capacity constant while per-shard contention shrinks.
func newWfPool(sc *workload.QueueScenario, shards, workers int, sp *StallPoint) (*wflocks.WorkPool[uint64], *wflocks.Manager, error) {
	m, err := AdaptiveManager(workers+2, 2, wflocks.WorkPoolCriticalSteps(1, 1), wflocks.WithMetrics())
	if err != nil {
		return nil, nil, err
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = StallValueCodec(sp)
	}
	wp, err := wflocks.NewWorkPoolOf[uint64](m, vc,
		wflocks.WithPoolShards(shards), wflocks.WithPoolCapacity(sc.Capacity),
		wflocks.WithPoolBatch(1))
	return wp, m, err
}

// RunQueueScenario drives sc against wfqueue, the WorkPool shard
// sweep, and the channel and mutex+ring baselines, in the raw and
// holder-stall regimes, and tabulates throughput, steal traffic and
// contention.
func RunQueueScenario(sc *workload.QueueScenario, scale Scale) (*Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	workers := queueWorkers()
	producers, consumers, moversPer := sc.Split(workers)
	itemsPer := 200
	if scale == Full {
		itemsPer = 2000
	}
	t := &Table{
		Title: fmt.Sprintf("%s: %d stage(s), cap %d, %d producers × %d items, %d consumers",
			sc.Name, sc.Stages, sc.Capacity, producers, itemsPer, consumers),
		Header: append([]string{"impl", "shards", "stall", "items/sec", "steals", "success", "attempts/item", "balance"}, ObsHeader...),
	}
	for _, stalled := range []bool{false, true} {
		// Each run gets its own stall point so the regime's rows do not
		// share a stall schedule.
		label := "none"
		newSP := func() *StallPoint { return nil }
		if stalled {
			label = fmt.Sprintf("%v/%d", StallDur, StallPeriod)
			newSP = func() *StallPoint { return NewStallPoint(StallPeriod, StallDur) }
		}
		{
			sp := newSP()
			var qs []*wflocks.Queue[uint64]
			var mgrs []*wflocks.Manager
			row, err := runQueueImpl(sc, "wfqueue", "1", label, sp, producers, consumers, moversPer, itemsPer,
				func() (benchQueue, error) {
					q, m, err := newWfQueue(sc, workers, sp)
					if err != nil {
						return nil, err
					}
					qs = append(qs, q)
					mgrs = append(mgrs, m)
					return q, nil
				},
				func(row []string) {
					var attempts, wins uint64
					for _, q := range qs {
						s := q.Stats()
						attempts += s.Lock.Attempts
						wins += s.Lock.Wins
					}
					fillAttemptCols(row, attempts, wins, uint64(producers*itemsPer))
					fillObsCols(row, mgrs)
				})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		for _, shards := range queueShardCounts {
			sp := newSP()
			var pools []*wflocks.WorkPool[uint64]
			var mgrs []*wflocks.Manager
			row, err := runQueueImpl(sc, "workpool", fmt.Sprint(shards), label, sp, producers, consumers, moversPer, itemsPer,
				func() (benchQueue, error) {
					wp, m, err := newWfPool(sc, shards, workers, sp)
					if err != nil {
						return nil, err
					}
					pools = append(pools, wp)
					mgrs = append(mgrs, m)
					return wp, nil
				},
				func(row []string) {
					var steals, attempts, wins uint64
					balance := 1.0
					for _, wp := range pools {
						s := wp.Stats()
						steals += s.Steals
						for _, sh := range s.Shards {
							attempts += sh.Lock.Attempts
							wins += sh.Lock.Wins
						}
						if s.Balance < balance {
							balance = s.Balance
						}
					}
					row[4] = fmt.Sprint(steals)
					fillAttemptCols(row, attempts, wins, uint64(producers*itemsPer))
					row[7] = fmt.Sprintf("%.3f", balance)
					fillObsCols(row, mgrs)
				})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		{
			sp := newSP()
			row, err := runQueueImpl(sc, "channel", "-", label, sp, producers, consumers, moversPer, itemsPer,
				func() (benchQueue, error) { return NewChanQueue(sc.Capacity, sp), nil }, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
		{
			sp := newSP()
			row, err := runQueueImpl(sc, "mutexring", "1", label, sp, producers, consumers, moversPer, itemsPer,
				func() (benchQueue, error) { return NewMutexRing(sc.Capacity, sp), nil }, nil)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"raw regime: the channel and mutex+ring win on constant factors — every wfqueue attempt pays the adaptive variant's padded delays (unknown-bounds mode, Theorem 6.10; contention-proportional rather than fixed κ²L²T)",
		"stall regime: producers/consumers stall mid-operation ("+fmt.Sprintf("%v every %d value writes", StallDur, StallPeriod)+"); helpers absorb wfqueue's stalls, the mutex+ring serializes them",
		"the channel draws its stalls outside the channel op (no user-held lock exists): channels are inherently stall-tolerant, so the stall rows isolate wfqueue vs mutex+ring",
		"success is wins/attempts over the wait-free lock attempts; steals counts elements WorkPool consumers migrated from other shards")
	return t, nil
}

// fillAttemptCols fills the success and attempts/item columns from
// summed lock counters. An item is one enqueue plus one dequeue (plus
// any full/empty probes and, for pools, steal raids), so the
// uncontended floor for attempts/item is 2 per traversed stage.
func fillAttemptCols(row []string, attempts, wins, items uint64) {
	if attempts == 0 || items == 0 {
		return
	}
	row[5] = fmt.Sprintf("%.3f", float64(wins)/float64(attempts))
	row[6] = fmt.Sprintf("%.2f", float64(attempts)/float64(items))
}

// runQueueImpl measures one implementation under one regime: a
// pipeline of sc.Stages queues built by mk, producers feeding the
// first, movers shuttling across each boundary, consumers draining
// the last, with a conservation audit. finish, when non-nil, fills the
// implementation-specific columns from post-run stats.
func runQueueImpl(sc *workload.QueueScenario, impl, shards, stallLabel string, sp *StallPoint,
	producers, consumers, moversPer, itemsPer int,
	mk func() (benchQueue, error), finish func(row []string)) ([]string, error) {
	queues := make([]benchQueue, sc.Stages)
	for i := range queues {
		q, err := mk()
		if err != nil {
			return nil, err
		}
		queues[i] = q
	}
	total := producers * itemsPer
	var wantSum atomic.Uint64
	var gotSum atomic.Uint64
	// moved[i] counts items that have left queue i; stage workers stop
	// when their upstream total is through.
	moved := make([]atomic.Uint64, sc.Stages)
	sp.Arm()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < itemsPer; i++ {
				v := uint64(w*itemsPer+i) + 1
				wantSum.Add(v)
				for !queues[0].TryEnqueue(v) {
					runtime.Gosched()
				}
			}
		}(w)
	}
	for b := 1; b < sc.Stages; b++ {
		for w := 0; w < moversPer; w++ {
			wg.Add(1)
			go func(b int) {
				defer wg.Done()
				for {
					if moved[b-1].Load() >= uint64(total) {
						return
					}
					if v, ok := queues[b-1].TryDequeue(); ok {
						moved[b-1].Add(1)
						for !queues[b].TryEnqueue(v) {
							runtime.Gosched()
						}
					} else {
						runtime.Gosched()
					}
				}
			}(b)
		}
	}
	last := sc.Stages - 1
	for w := 0; w < consumers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if moved[last].Load() >= uint64(total) {
					return
				}
				if v, ok := queues[last].TryDequeue(); ok {
					moved[last].Add(1)
					gotSum.Add(v)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if gotSum.Load() != wantSum.Load() {
		return nil, fmt.Errorf("%s %s: conservation violated: consumed sum %d, produced sum %d",
			sc.Name, impl, gotSum.Load(), wantSum.Load())
	}
	row := []string{
		impl,
		shards,
		stallLabel,
		fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()),
		"-", "-", "-", "-", "-", "-", "-",
	}
	if finish != nil {
		finish(row)
	}
	return row, nil
}
