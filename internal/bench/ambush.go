package bench

import (
	"wflocks/internal/adversary"
	"wflocks/internal/core"
	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/sched"
)

// ambushThreshold is the top-quartile priority cutoff: priorities are
// uniform in (0, 2^63), so a rival above 3·2^61 is in the strongest
// quarter of the field.
const ambushThreshold int64 = 3 << 61

// runAmbush runs the Section 2 "ambush" player adversary: a rival
// attempts continuously on a single lock, publishing its descriptor;
// the adaptive adversary starts the target's attempt only at moments
// when the rival's current attempt is revealed, still active, and has a
// top-quartile priority. Theorem 6.9 promises the target still wins
// with probability ≥ 1/C_p = 1/2 (κ=2, L=1): the helping phase makes
// the target complete the observed rival before competing.
//
// It returns the target's success rate and attempt count.
func runAmbush(scale Scale, disableDelays bool) (float64, int, error) {
	seeds := scale.pick(4, 10)
	perSeed := scale.pick(10, 40)
	wins, total := 0, 0
	for s := 1; s <= seeds; s++ {
		sys, err := core.NewSystem(core.Config{
			Kappa: 2, MaxLocks: 1, MaxThunkSteps: ThunkSteps(1, 0),
			DelayC: 4, DelayC1: 8, DisableDelays: disableDelays,
		})
		if err != nil {
			return 0, 0, err
		}
		l := sys.NewLock()
		locks := []*core.Lock{l}
		var tr adversary.Tracker
		stop := false

		sim := sched.New(sched.NewRandom(2, uint64(s)), uint64(s))
		// Rival: continuous attempts, observable.
		sim.Spawn(func(e env.Env) {
			for !stop {
				a := sys.NewAttempt(locks, noopThunk())
				tr.Publish(a.Descriptor())
				a.Run(e)
				tr.Clear()
				e.Step()
			}
		})
		// Target, driven by the adaptive player adversary.
		seedWins, seedTotal := 0, 0
		sim.Spawn(func(e env.Env) {
			defer func() { stop = true }()
			for k := 0; k < perSeed; k++ {
				// Ambush point: wait for a strong revealed rival. If
				// none shows up in the stall budget, attack anyway —
				// every target attempt is counted either way.
				adversary.AwaitStrongRival(e, &tr, ambushThreshold, 500_000)
				seedTotal++
				if sys.TryLocks(e, locks, noopThunk()) {
					seedWins++
				}
			}
		})
		if err := sim.Run(1_000_000_000); err != nil {
			return 0, 0, err
		}
		wins += seedWins
		total += seedTotal
	}
	return float64(wins) / float64(total), total, nil
}

// noopThunk returns a fresh empty critical section.
func noopThunk() *idem.Exec {
	return idem.NewExec(func(r *idem.Run) {}, 1)
}
