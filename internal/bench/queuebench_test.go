package bench

import (
	"strconv"
	"testing"

	"wflocks/internal/workload"
)

func TestMutexRingBasic(t *testing.T) {
	q := NewMutexRing(4, nil)
	if _, ok := q.TryDequeue(); ok {
		t.Fatal("dequeue from empty ring succeeded")
	}
	for v := uint64(1); v <= 4; v++ {
		if !q.TryEnqueue(v) {
			t.Fatalf("enqueue %d failed below capacity", v)
		}
	}
	if q.TryEnqueue(99) {
		t.Fatal("enqueue into full ring succeeded")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for v := uint64(1); v <= 4; v++ {
		got, ok := q.TryDequeue()
		if !ok || got != v {
			t.Fatalf("dequeue = (%d, %v), want (%d, true)", got, ok, v)
		}
	}
}

// TestRunQueueScenario runs the quick-scale queue tables end to end —
// spsc for the single-queue topology and pipeline for the staged one —
// and sanity-checks their shape. The stall regime sleeps for real, so
// this is skipped in -short.
func TestRunQueueScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("stall-regime rows sleep for real; skip in -short")
	}
	for _, name := range []string{"queue:spsc", "queue:pipeline"} {
		sc := workload.LookupQueueScenario(name)
		if sc == nil {
			t.Fatalf("%s missing", name)
		}
		tab, err := RunQueueScenario(sc, Quick)
		if err != nil {
			t.Fatal(err)
		}
		// 1 wfqueue + 4 workpool shard counts + channel + mutexring, in 2
		// regimes.
		if len(tab.Rows) != 14 {
			t.Fatalf("%s: table has %d rows, want 14", name, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			ops, err := strconv.ParseFloat(row[3], 64)
			if err != nil || ops <= 0 {
				t.Fatalf("%s row %v: bad items/sec %q", name, row, row[3])
			}
			if row[0] == "wfqueue" || row[0] == "workpool" {
				succ, err := strconv.ParseFloat(row[5], 64)
				if err != nil || succ <= 0 || succ > 1 {
					t.Fatalf("%s row %v: bad success %q", name, row, row[5])
				}
			}
		}
	}
	bad := workload.QueueScenario{Name: "bad", Capacity: 0, Stages: 1}
	if _, err := RunQueueScenario(&bad, Quick); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
