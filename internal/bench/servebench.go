package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"wflocks/internal/serve"
	"wflocks/internal/serve/loadgen"
	"wflocks/internal/workload"
)

// Service workload runner: drives a workload.ServiceScenario through
// the full wfserve path — protocol parse, shard-by-key WorkPool
// dispatch, backend execution, ordered pipelined responses — over the
// in-process loopback transport, against the scenario's wait-free
// backend and the sharded-mutex baseline, in the raw and holder-stall
// regimes.
//
// Unlike the data-structure runners, the metric here is tail latency
// under an open-loop arrival schedule, recorded by the
// coordinated-omission-safe harness in internal/serve/loadgen: the
// percentiles include every millisecond of queueing delay a stalled
// server inflicts on the requests scheduled behind the stall. That is
// what makes the regime comparison honest — in the raw regime the
// mutex baseline's smaller constants win, and the table says so; in
// the stall regime a stalled mutex holder backs up its whole shard
// while a stalled wait-free winner is helped past, and the p99.9
// column is where that difference lives.

// serviceWorkers picks the server-side worker count: the host's
// parallelism, floored at 4 so stalled winners always have runnable
// helpers.
func serviceWorkers() int {
	if p := runtime.GOMAXPROCS(0); p > 4 {
		return p
	}
	return 4
}

// serviceImpls lists the backends a scenario compares: its wait-free
// backend and the conventional sharded-mutex design.
func serviceImpls(sc *workload.ServiceScenario) []string {
	return []string{sc.Backend, serve.BackendMutex}
}

// RunServiceScenario drives sc against its wait-free backend and the
// mutex baseline, raw and stalled, and tabulates open-loop latency
// percentiles.
func RunServiceScenario(sc *workload.ServiceScenario, scale Scale) (*Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	// p99.9 is the top 0.1% of samples; at quick scale it is a handful
	// of requests and only sanity-checkable. Full scale stretches the
	// window 4× so the tail the table reports rests on tens of samples
	// per cell, not single digits.
	duration := 4 * sc.Duration
	if scale == Quick {
		duration = sc.Duration / 8
	}
	workers := serviceWorkers()
	t := &Table{
		Title: fmt.Sprintf("%s: %.0f ops/s open-loop for %v, %d conns, %d workers, %d%%/%d%%/%d%% get/set/del, %d keys, skew %.1f",
			sc.Name, sc.Rate, duration, sc.Conns, workers, sc.GetPct, sc.SetPct, sc.DelPct, sc.Keys, sc.Skew),
		Header: []string{"impl", "stall", "sent", "done", "errs", "p50", "p99", "p99.9", "max", "ops/sec"},
	}
	for _, stalled := range []bool{false, true} {
		label := "none"
		if stalled {
			label = fmt.Sprintf("%v/%d", StallDur, StallPeriod)
		}
		for _, impl := range serviceImpls(sc) {
			res, err := runServiceOnce(sc, impl, stalled, duration, workers)
			if err != nil {
				return nil, fmt.Errorf("%s/%s stall=%v: %w", sc.Name, impl, stalled, err)
			}
			t.AddRow(implLabel(impl), label,
				res.Total.Sent, res.Total.Done, res.Total.Errors,
				res.Quantile(0.50).Round(time.Microsecond),
				res.Quantile(0.99).Round(time.Microsecond),
				res.Quantile(0.999).Round(time.Microsecond),
				time.Duration(res.Total.Hist.Max()).Round(time.Microsecond),
				fmt.Sprintf("%.0f", res.AchievedRate))
		}
	}
	t.Notes = append(t.Notes,
		"open-loop, coordinated-omission-safe: latency is measured from each request's scheduled send time, so queueing delay behind a stalled server is in the percentiles",
		"raw regime: the mutex baseline's constant factors usually win — every wait-free op pays the adaptive variant's padded delays",
		fmt.Sprintf("stall regime: every %dth backend value write sleeps %v while its lock is held; a stalled mutex holder backs up its shard, a stalled wait-free winner is helped past", StallPeriod, StallDur))
	return t, nil
}

// implLabel names a backend for the table.
func implLabel(impl string) string {
	if impl == serve.BackendMutex {
		return "mutex-shard"
	}
	return "wf-" + impl
}

// runServiceOnce runs one impl × regime cell: build the server over a
// loopback listener, prefill, arm the stall schedule, run the
// open-loop load, drain.
func runServiceOnce(sc *workload.ServiceScenario, impl string, stalled bool, duration time.Duration, workers int) (*loadgen.Result, error) {
	// Size the server to the scenario rather than taking the roomy
	// defaults: the wait-free manager's per-acquisition delays scale
	// with the critical-step bound T, and T is linear in per-shard
	// capacity and codec width. A 64KiB-capacity cache with 64-byte
	// keys is a fine default for a durable service, but benchmarking
	// the scenario's 1–4k keys against it would charge every operation
	// for headroom the workload never uses. Shards stays at 8, the
	// operating point the cache shard sweeps settled on: more shards
	// shrink T further but also dilute per-shard traffic until a
	// stalled holder inconveniences nobody and the regime comparison
	// measures only the self-stalled requests both designs share.
	capacity := 2 * sc.Keys
	if capacity < 256 {
		capacity = 256
	}
	var sp *StallPoint
	cfg := serve.Config{
		Backend:     impl,
		Workers:     workers,
		Shards:      8,
		Capacity:    capacity,
		MaxConns:    sc.Conns + 2,
		MaxKeyBytes: 16,
		MaxValBytes: sc.ValBytes,
		NewManager:  AdaptiveManager,
	}
	if stalled {
		sp = NewStallPoint(StallPeriod, StallDur)
		cfg.Stall = sp.Hit
	}
	s, err := serve.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	lis := serve.NewLoopback()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(lis) }()

	// Prefill through the backend directly (not the wire) so the stall
	// schedule, armed below, belongs entirely to the measured run.
	if sc.Prefill {
		val := loadgen.Val(sc.ValBytes)
		for k := 0; k < sc.Keys; k++ {
			if err := s.Backend().Set(loadgen.Key(k), val, 0); err != nil {
				return nil, fmt.Errorf("prefill key %d: %w", k, err)
			}
		}
	}
	sp.Arm()

	ctx, cancel := context.WithTimeout(context.Background(), duration+60*time.Second)
	defer cancel()
	res, runErr := loadgen.Run(ctx, lis.Dial, loadgen.Config{
		Rate:      sc.Rate,
		Duration:  duration,
		Conns:     sc.Conns,
		Keys:      sc.Keys,
		Skew:      sc.Skew,
		GetPct:    sc.GetPct,
		SetPct:    sc.SetPct,
		DelPct:    sc.DelPct,
		ValBytes:  sc.ValBytes,
		SlowConns: sc.SlowConns,
		SlowDelay: sc.SlowDelay,
	})

	sdCtx, sdCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer sdCancel()
	if err := s.Shutdown(sdCtx); err != nil {
		return nil, fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveDone; err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
