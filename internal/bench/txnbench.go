package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"wflocks"
	"wflocks/internal/env"
	"wflocks/internal/workload"
)

// Transaction workload runner: drives a workload.TxnScenario against
// wfmap's multi-key Atomic path and against a sorted-multi-mutex
// baseline, sweeping the keys-per-transaction count L. This is the
// benchmark where the paper's L-dependence is visible end to end: every
// wfmap attempt pays fixed delays proportional to κ²L²T (and T itself
// grows with L, since the transaction budget is L single-shard
// budgets), buying wait-freedom and helping in exchange. The honest
// comparison therefore runs both regimes:
//
//   - raw: the blocking baseline wins, increasingly so at higher L —
//     the κ²L²·(L·budget) delay product is the documented price of the
//     guarantees, not an implementation accident;
//   - holder-stall (the paper's regime): lock holders stall
//     mid-critical-section. A stalled multi-mutex holder blocks every
//     transaction sharing any of its shards for the stall; a stalled
//     wfmap transaction is helped — competitors re-execute its body
//     and move on — so stalls overlap instead of serializing.
//
// Every run double-checks conservation: transfers move value between
// keys, so the keyspace sum must be exactly what prefill deposited, on
// both implementations, or the run fails.

// txnLCounts is the keys-per-transaction sweep.
var txnLCounts = []int{1, 2, 4, 8}

// txnWorkers pins the driver goroutine count. It is deliberately small:
// κ must cover every concurrent attempt, and the wait-free attempts'
// fixed delays grow with κ² — a large worker pool would measure the
// calibration margin, not the structure.
const txnWorkers = 4

// txnInitial is the per-key prefill every transfer conserves.
const txnInitial = 100

// MultiMutexMap is the blocking baseline for multi-key transactions: a
// sync.Mutex-sharded map whose Atomic acquires the deduplicated shard
// mutexes in sorted order (the classic deadlock-avoidance protocol) and
// holds them all for the duration of the body. A stalled holder blocks
// every shard it holds.
type MultiMutexMap struct {
	shards []mutexShard
	mask   uint64
	stall  *StallPoint
}

// NewMultiMutexMap creates a baseline map with the given shard count
// (rounded up to a power of two). stall, which may be nil, is drawn
// once per value write while the shard mutexes are held, mirroring
// wfmap's in-critical-section value encodes.
func NewMultiMutexMap(shardCount int, stall *StallPoint) *MultiMutexMap {
	n := nextPow2(shardCount)
	mm := &MultiMutexMap{shards: make([]mutexShard, n), mask: uint64(n - 1), stall: stall}
	for i := range mm.shards {
		mm.shards[i].m = make(map[uint64]uint64)
	}
	return mm
}

// shardIndex uses the same SplitMix64 mixing family as wfmap's hash.
func (mm *MultiMutexMap) shardIndex(k uint64) uint64 {
	return env.Mix(0, k) & mm.mask
}

// Put stores v for k under its single shard mutex (prefill path).
func (mm *MultiMutexMap) Put(k, v uint64) {
	sh := &mm.shards[mm.shardIndex(k)]
	sh.mu.Lock()
	sh.m[k] = v
	sh.mu.Unlock()
}

// Sum reads the whole map (quiescent; conservation audits).
func (mm *MultiMutexMap) Sum() uint64 {
	total := uint64(0)
	for i := range mm.shards {
		sh := &mm.shards[i]
		sh.mu.Lock()
		for _, v := range sh.m {
			total += v
		}
		sh.mu.Unlock()
	}
	return total
}

// Atomic locks the keys' deduplicated shard mutexes in sorted order,
// runs fn with direct get/put access, and unlocks in reverse. fn's
// value writes draw from the stall point while every lock is held —
// the regime where blocking designs serialize their stalls.
func (mm *MultiMutexMap) Atomic(keys []uint64, fn func(get func(uint64) (uint64, bool), put func(uint64, uint64))) {
	shards := make([]int, 0, len(keys))
	for _, k := range keys {
		si := int(mm.shardIndex(k))
		dup := false
		for _, have := range shards {
			if have == si {
				dup = true
				break
			}
		}
		if !dup {
			shards = append(shards, si)
		}
	}
	sort.Ints(shards)
	for _, si := range shards {
		mm.shards[si].mu.Lock()
	}
	fn(
		func(k uint64) (uint64, bool) {
			v, ok := mm.shards[mm.shardIndex(k)].m[k]
			return v, ok
		},
		func(k, v uint64) {
			mm.stall.Hit()
			mm.shards[mm.shardIndex(k)].m[k] = v
		},
	)
	for i := len(shards) - 1; i >= 0; i-- {
		mm.shards[shards[i]].mu.Unlock()
	}
}

// RunTxnScenario drives sc against wfmap Atomic (under both delay
// variants) and the sorted multi-mutex baseline across the L sweep, in
// the raw and holder-stall regimes, and tabulates throughput,
// per-attempt success rate and the conservation audit.
func RunTxnScenario(sc *workload.TxnScenario, scale Scale) (*Table, error) {
	return RunTxnScenarioVariants(sc, scale, AllVariants)
}

// RunTxnScenarioVariants is RunTxnScenario restricted to the given
// delay variants (the -variant flag).
func RunTxnScenarioVariants(sc *workload.TxnScenario, scale Scale, variants []Variant) (*Table, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	opsPer := 50
	if scale == Full {
		opsPer = 400
	}
	t := &Table{
		Title: fmt.Sprintf("%s: %d%%/%d%% transfer/read, %d keys, skew %.1f, %d workers × %d txns, L swept",
			sc.Name, sc.TransferPct, 100-sc.TransferPct, sc.Keys, sc.Skew, txnWorkers, opsPer),
		Header: append([]string{"impl", "L", "stall", "txns/sec", "success", "attempts/txn", "conserved"}, ObsHeader...),
	}
	for _, stalled := range []bool{false, true} {
		label := "none"
		newSP := func() *StallPoint { return nil }
		if stalled {
			label = fmt.Sprintf("%v/%d", StallDur, StallPeriod)
			newSP = func() *StallPoint { return NewStallPoint(StallPeriod, StallDur) }
		}
		for _, v := range variants {
			for _, l := range txnLCounts {
				row, err := runWfmapTxn(sc, v, l, opsPer, label, newSP())
				if err != nil {
					return nil, err
				}
				t.Rows = append(t.Rows, row)
			}
		}
		for _, l := range txnLCounts {
			t.Rows = append(t.Rows, runMultiMutexTxn(sc, l, opsPer, label, newSP()))
		}
	}
	t.Notes = append(t.Notes,
		"each wfmap row runs its own manager sized for its L: WithMaxLocks(L), T = MapAtomicSteps(cap, 1, 1, L)",
		"adaptive rows use WithUnknownBounds delays that track point contention (the recommended default); known rows pay the fixed delays",
		"raw regime: the known-bounds delays grow as κ²L²·T(L) — the documented price of wait-freedom, steepest at L=8",
		"stall regime: holders stall mid-transaction ("+fmt.Sprintf("%v every %d value writes", StallDur, StallPeriod)+"); wfmap helpers absorb stalls, the sorted-mutex baseline serializes them across every held shard",
		"conserved audits the transfer invariant: the keyspace sum must equal the prefill exactly")
	return t, nil
}

// txnMapShards is the shard count of both implementations in the sweep
// (fixed so L, not the shard layout, is the swept variable).
const txnMapShards = 8

// runWfmapTxn measures one wfmap configuration at keys-per-txn l under
// one delay variant.
func runWfmapTxn(sc *workload.TxnScenario, v Variant, l, opsPer int, stallLabel string, sp *StallPoint) ([]string, error) {
	capPerShard := nextPow2(2 * sc.Keys / txnMapShards)
	m, err := NewManager(v, txnWorkers, l, wflocks.MapAtomicSteps(capPerShard, 1, 1, l), wflocks.WithMetrics())
	if err != nil {
		return nil, err
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = StallValueCodec(sp)
	}
	mp, err := wflocks.NewMapOf[uint64, uint64](m, wflocks.IntegerCodec[uint64](), vc,
		wflocks.WithShards(txnMapShards), wflocks.WithShardCapacity(capPerShard))
	if err != nil {
		return nil, err
	}
	for k := 0; k < sc.Keys; k++ {
		if err := mp.Put(uint64(k), txnInitial); err != nil {
			return nil, err
		}
	}
	sp.Arm()
	base := m.Stats()
	obsBase := m.Observe()
	var wg sync.WaitGroup
	errc := make(chan error, txnWorkers)
	start := time.Now()
	for w := 0; w < txnWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := workload.NewTxnOpStream(sc, l, uint64(w)*0x9e3779b97f4a7c15+1)
			keys := make([]uint64, l)
			for i := 0; i < opsPer; i++ {
				kind, drawn := st.Next()
				for j, k := range drawn {
					keys[j] = uint64(k)
				}
				// Bodies iterate tx.Keys(), never the reused keys buffer: a
				// straggling helper may re-execute a body after this worker
				// has refilled the buffer for its next transaction.
				var err error
				switch kind {
				case workload.TxnTransfer:
					err = mp.Atomic(keys, func(tx *wflocks.MapTxn[uint64, uint64]) {
						ks := tx.Keys()
						gained := uint64(0)
						for _, k := range ks[1:] {
							if v, ok := tx.Get(k); ok && v > 0 {
								tx.Put(k, v-1)
								gained++
							}
						}
						// The credit write is unconditional so every L —
						// including 1 — writes at least one value per
						// transaction (and draws the stall schedule).
						v, _ := tx.Get(ks[0])
						tx.Put(ks[0], v+gained)
					})
				case workload.TxnRead:
					err = mp.Atomic(keys, func(tx *wflocks.MapTxn[uint64, uint64]) {
						for _, k := range tx.Keys() {
							tx.Get(k)
						}
					})
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	total := uint64(0)
	for _, v := range mp.All() {
		total += v
	}
	conserved := "yes"
	if total != uint64(sc.Keys)*txnInitial {
		return nil, fmt.Errorf("wfmap L=%d: conservation violated: sum %d, want %d",
			l, total, sc.Keys*txnInitial)
	}
	delta := m.Stats().Sub(base)
	totalOps := txnWorkers * opsPer
	return append([]string{
		"wfmap/" + string(v),
		fmt.Sprint(l),
		stallLabel,
		fmt.Sprintf("%.0f", float64(totalOps)/elapsed.Seconds()),
		fmt.Sprintf("%.3f", delta.SuccessRate()),
		fmt.Sprintf("%.2f", float64(delta.Attempts)/float64(totalOps)),
		conserved,
	}, ObsCols(m, delta, obsBase)...), nil
}

// runMultiMutexTxn measures the baseline at keys-per-txn l.
func runMultiMutexTxn(sc *workload.TxnScenario, l, opsPer int, stallLabel string, sp *StallPoint) []string {
	mm := NewMultiMutexMap(txnMapShards, sp)
	for k := 0; k < sc.Keys; k++ {
		mm.Put(uint64(k), txnInitial)
	}
	sp.Arm()
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < txnWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := workload.NewTxnOpStream(sc, l, uint64(w)*0x9e3779b97f4a7c15+1)
			keys := make([]uint64, l)
			for i := 0; i < opsPer; i++ {
				kind, drawn := st.Next()
				for j, k := range drawn {
					keys[j] = uint64(k)
				}
				switch kind {
				case workload.TxnTransfer:
					mm.Atomic(keys, func(get func(uint64) (uint64, bool), put func(uint64, uint64)) {
						gained := uint64(0)
						for _, k := range keys[1:] {
							if v, ok := get(k); ok && v > 0 {
								put(k, v-1)
								gained++
							}
						}
						v, _ := get(keys[0])
						put(keys[0], v+gained)
					})
				case workload.TxnRead:
					mm.Atomic(keys, func(get func(uint64) (uint64, bool), put func(uint64, uint64)) {
						for _, k := range keys {
							get(k)
						}
					})
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	conserved := "yes"
	if mm.Sum() != uint64(sc.Keys)*txnInitial {
		conserved = "NO"
	}
	totalOps := txnWorkers * opsPer
	return append([]string{
		"multimutex",
		fmt.Sprint(l),
		stallLabel,
		fmt.Sprintf("%.0f", float64(totalOps)/elapsed.Seconds()),
		"-",
		"-",
		conserved,
	}, ObsBlank()...)
}
