package bench

import (
	"fmt"
	"math"

	"wflocks/internal/stats"
	"wflocks/internal/workload"
)

// E1StepBound reproduces Theorem 6.1 / Theorem 1.1's step bound: every
// tryLock attempt takes O(κ²·L²·T) of its caller's steps, success or
// failure. It sweeps κ, L and T on exact-contention cluster workloads
// and reports measured steps against the bound. The "shape" claim to
// check: max steps/attempt is a constant multiple of κ²L²T across the
// whole sweep (the ratio column stays flat), and every attempt in a
// configuration takes the same number of steps (fixed by the delays).
func E1StepBound(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E1 — Step bound per tryLock attempt vs O(κ²L²T) (Theorem 6.1)",
		Header: []string{"κ", "L", "T", "attempts", "mean_steps", "max_steps", "κ²L²T", "max/κ²L²T"},
	}
	kappas := []int{2, 4}
	ls := []int{1, 2}
	extras := []int{0, 32}
	if scale == Full {
		kappas = []int{2, 4, 8}
		ls = []int{1, 2, 4}
		extras = []int{0, 32, 128}
	}
	seeds := scale.pick(2, 2)
	rounds := scale.pick(3, 3)
	// An attempt costs Θ(κ²L²T) by design (the delays), so the sweep
	// caps the bound to keep the largest combos tractable; the skipped
	// corner is noted in the table.
	const boundCap = 150_000
	skipped := 0
	for _, k := range kappas {
		for _, l := range ls {
			for _, extra := range extras {
				var all []uint64
				thunkSteps := ThunkSteps(l, extra)
				if k*k*l*l*thunkSteps > boundCap {
					skipped++
					continue
				}
				for s := 1; s <= seeds; s++ {
					w := workload.Clusters(2, k, l)
					alg := WFForWorkload(w, thunkSteps, false)
					m, err := RunSim(alg, RunConfig{
						Workload: w, Seed: uint64(s), Rounds: rounds,
					})
					if err != nil {
						return nil, err
					}
					all = append(all, m.AttemptSteps...)
				}
				sum := stats.SummarizeUint64(all)
				bound := float64(k*k*l*l) * float64(thunkSteps)
				t.AddRow(k, l, thunkSteps, len(all), sum.Mean, uint64(sum.Max), uint64(bound), sum.Max/bound)
			}
		}
	}
	t.Notes = append(t.Notes,
		"the max/κ²L²T ratio staying flat across the sweep is the Theorem 6.1 shape",
		"mean equals max within each row: delays fix every attempt's length (Observation 6.7)")
	if skipped > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%d combos with κ²L²T > %d were skipped: attempts cost Θ(κ²L²T) by construction, so they only repeat the shape at higher cost",
			skipped, boundCap))
	}
	return t, nil
}

// E2Fairness reproduces Theorem 6.9: every attempt succeeds with
// probability at least 1/C_p even against an adaptive player
// adversary. Part one measures the per-process worst success rate
// under symmetric contention (C_p = κ on a single lock); part two runs
// the Section 2 "ambush" adversary, which starts the target only when
// a rival's revealed priority is in the top quartile — the helping
// phase must neutralize the ambush.
func E2Fairness(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E2 — Fairness: success probability vs the 1/C_p floor (Theorem 6.9)",
		Header: []string{"scenario", "attempts", "success_rate", "floor 1/C_p", "≥ floor"},
	}
	rounds := scale.pick(30, 150)
	seeds := scale.pick(3, 8)

	for _, k := range []int{2, 4, 8} {
		attempts, wins := 0, 0
		var worst float64 = 1
		for s := 1; s <= seeds; s++ {
			w := workload.HotLock(k)
			alg := WFForWorkload(w, ThunkSteps(1, 0), false)
			m, err := RunSim(alg, RunConfig{Workload: w, Seed: uint64(s), Rounds: rounds})
			if err != nil {
				return nil, err
			}
			attempts += m.Attempts()
			wins += m.Wins()
			for i := range m.PerProcWins {
				r := float64(m.PerProcWins[i]) / float64(m.PerProcAttempts[i])
				if r < worst {
					worst = r
				}
			}
		}
		floor := 1.0 / float64(k)
		t.AddRow(fmt.Sprintf("hotlock κ=%d (worst proc)", k),
			attempts, worst, floor, worst >= floor)
	}

	rate, n, err := runAmbush(scale, false)
	if err != nil {
		return nil, err
	}
	t.AddRow("ambush adversary (κ=2, L=1, target)", n, rate, 0.5, rate >= 0.5)
	t.Notes = append(t.Notes,
		"ambush: the adaptive player starts the target only when the rival has revealed a top-quartile priority",
		"the helping phase forces the target to finish the revealed rival before competing, neutralizing the ambush")
	return t, nil
}

// E3Philosophers reproduces the Section 1 headline: dining
// philosophers (κ = L = 2) eat with probability ≥ 1/4 per attempt in
// O(1) steps — in particular, per-attempt cost must not grow with the
// table size n.
func E3Philosophers(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E3 — Dining philosophers: success ≥ 1/4, O(1) steps per attempt (Section 1)",
		Header: []string{"n", "attempts", "success_rate", "mean_steps", "max_steps", "jain_fairness"},
	}
	ns := []int{5, 16, 64}
	if scale == Full {
		ns = []int{5, 16, 64, 256}
	}
	rounds := scale.pick(6, 20)
	seeds := scale.pick(2, 5)
	for _, n := range ns {
		var steps []uint64
		attempts, wins := 0, 0
		var perProcRates []float64
		for s := 1; s <= seeds; s++ {
			w := workload.Philosophers(n)
			alg := WFForWorkload(w, ThunkSteps(2, 0), false)
			m, err := RunSim(alg, RunConfig{Workload: w, Seed: uint64(s), Rounds: rounds})
			if err != nil {
				return nil, err
			}
			steps = append(steps, m.AttemptSteps...)
			attempts += m.Attempts()
			wins += m.Wins()
			for i := range m.PerProcWins {
				perProcRates = append(perProcRates,
					float64(m.PerProcWins[i])/float64(m.PerProcAttempts[i]))
			}
		}
		sum := stats.SummarizeUint64(steps)
		t.AddRow(n, attempts, float64(wins)/float64(attempts),
			sum.Mean, uint64(sum.Max), stats.JainIndex(perProcRates))
	}
	t.Notes = append(t.Notes,
		"success_rate ≥ 0.25 at every n is the paper's probability-1/4 claim",
		"mean_steps constant in n is the O(1)-steps claim (κ=L=2 regardless of n)")
	return t, nil
}

// E4Retry reproduces the corollary of Theorem 1.1: retrying a failed
// tryLock until success takes O(κ³L³T) expected steps (attempts are
// independent, each succeeding w.p. ≥ 1/κL and costing O(κ²L²T)).
func E4Retry(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E4 — Retry-until-success: expected steps vs O(κ³L³T) (Corollary of Theorem 1.1)",
		Header: []string{"κ", "L", "T", "rounds", "mean_attempts", "mean_steps", "p99_steps", "κ³L³T", "mean/κ³L³T"},
	}
	shapes := [][2]int{{2, 1}, {2, 2}, {4, 1}}
	if scale == Full {
		shapes = [][2]int{{2, 1}, {2, 2}, {4, 1}, {4, 2}, {8, 1}}
	}
	rounds := scale.pick(5, 20)
	seeds := scale.pick(2, 5)
	for _, shape := range shapes {
		k, l := shape[0], shape[1]
		thunkSteps := ThunkSteps(l, 0)
		var roundSteps []uint64
		var roundAttempts []float64
		for s := 1; s <= seeds; s++ {
			w := workload.Clusters(1, k, l)
			alg := WFForWorkload(w, thunkSteps, false)
			m, err := RunSim(alg, RunConfig{
				Workload: w, Seed: uint64(s), Rounds: rounds, Retry: true,
			})
			if err != nil {
				return nil, err
			}
			roundSteps = append(roundSteps, m.RoundSteps...)
			for _, a := range m.RoundAttempts {
				roundAttempts = append(roundAttempts, float64(a))
			}
		}
		sum := stats.SummarizeUint64(roundSteps)
		bound := float64(k*k*k*l*l*l) * float64(thunkSteps)
		t.AddRow(k, l, thunkSteps, len(roundSteps), stats.Mean(roundAttempts),
			sum.Mean, sum.P99, uint64(bound), sum.Mean/bound)
	}
	t.Notes = append(t.Notes,
		"mean/κ³L³T staying bounded (and well under 1) across the sweep is the corollary's shape")
	return t, nil
}

// E5Unknown reproduces Theorem 6.10: without knowing κ and L, success
// probability degrades by at most a log(κLT) factor. It compares
// known-bounds and unknown-bounds modes on the same workloads.
func E5Unknown(scale Scale) (*Table, error) {
	t := &Table{
		Title:  "E5 — Unknown-bounds variant: success degradation ≤ log(κLT) (Theorem 6.10)",
		Header: []string{"workload", "rate_known", "rate_unknown", "known/unknown", "log2(κLT)"},
	}
	rounds := scale.pick(20, 80)
	seeds := scale.pick(3, 8)
	builders := []func() *workload.Workload{
		func() *workload.Workload { return workload.Philosophers(6) },
		func() *workload.Workload { return workload.HotLock(4) },
		func() *workload.Workload { return workload.Clusters(2, 2, 2) },
	}
	for _, build := range builders {
		rates := map[bool]float64{}
		var name string
		for _, unknown := range []bool{false, true} {
			attempts, wins := 0, 0
			for s := 1; s <= seeds; s++ {
				w := build()
				name = w.Name
				alg := WFForWorkload(w, ThunkSteps(w.MaxLocksPerSet, 0), unknown)
				m, err := RunSim(alg, RunConfig{Workload: w, Seed: uint64(s), Rounds: rounds})
				if err != nil {
					return nil, err
				}
				attempts += m.Attempts()
				wins += m.Wins()
			}
			rates[unknown] = float64(wins) / float64(attempts)
		}
		w := build()
		logKLT := math.Log2(float64(w.Kappa) * float64(w.MaxLocksPerSet) *
			float64(ThunkSteps(w.MaxLocksPerSet, 0)))
		ratio := math.Inf(1)
		if rates[true] > 0 {
			ratio = rates[false] / rates[true]
		}
		t.AddRow(name, rates[false], rates[true], ratio, logKLT)
	}
	t.Notes = append(t.Notes,
		"the known/unknown ratio staying at or below log2(κLT) is the Theorem 6.10 shape")
	return t, nil
}
