package bench

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"wflocks/internal/env"
	"wflocks/internal/sched"
	"wflocks/internal/workload"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("xyz", true)
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "2.500") || !strings.Contains(s, "xyz") {
		t.Fatalf("rendering broken:\n%s", s)
	}
}

func TestScalePick(t *testing.T) {
	if Quick.pick(1, 2) != 1 || Full.pick(1, 2) != 2 {
		t.Fatal("Scale.pick broken")
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) != 11 {
		t.Fatalf("expected 11 experiments, got %d", len(exps))
	}
	for i, e := range exps {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has id %s, want %s", i, e.ID, want)
		}
		if e.Run == nil || e.Claim == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if Lookup("E3") == nil || Lookup("nope") != nil {
		t.Fatal("Lookup broken")
	}
}

func TestRunSimBasics(t *testing.T) {
	w := workload.Philosophers(4)
	alg := WFForWorkload(w, ThunkSteps(2, 0), false)
	m, err := RunSim(alg, RunConfig{Workload: w, Seed: 1, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Attempts() != 12 {
		t.Fatalf("attempts = %d, want 12", m.Attempts())
	}
	if m.Wins() == 0 || m.Wins() > 12 {
		t.Fatalf("wins = %d out of range", m.Wins())
	}
	if len(m.AttemptSteps) != 12 {
		t.Fatalf("attempt steps count = %d", len(m.AttemptSteps))
	}
	if m.FinishedProcs != 4 || m.Starved {
		t.Fatal("run did not complete cleanly")
	}
	if m.SuccessRate() <= 0 || m.SuccessRate() > 1 {
		t.Fatalf("rate = %v", m.SuccessRate())
	}
}

func TestRunSimRetryMode(t *testing.T) {
	w := workload.HotLock(2)
	alg := WFForWorkload(w, ThunkSteps(1, 0), false)
	m, err := RunSim(alg, RunConfig{Workload: w, Seed: 1, Rounds: 3, Retry: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.RoundSteps) != 6 || len(m.RoundAttempts) != 6 {
		t.Fatalf("rounds recorded = %d/%d, want 6/6", len(m.RoundSteps), len(m.RoundAttempts))
	}
	if m.Wins() != 6 {
		t.Fatalf("retry mode wins = %d, want 6", m.Wins())
	}
	for _, a := range m.RoundAttempts {
		if a < 1 {
			t.Fatal("round with zero attempts")
		}
	}
}

func TestRunSimBaselines(t *testing.T) {
	w := workload.Philosophers(4)
	for _, alg := range []Algorithm{NewTAS(w.NumLocks), NewTSP(w.NumLocks), NewSpin(w.NumLocks)} {
		m, err := RunSim(alg, RunConfig{Workload: w, Seed: 2, Rounds: 3})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if m.Attempts() != 12 {
			t.Fatalf("%s: attempts = %d", alg.Name(), m.Attempts())
		}
	}
}

func TestRunSimRejectsBadWorkload(t *testing.T) {
	w := &workload.Workload{Name: "bad", NumLocks: 1, Kappa: 1, MaxLocksPerSet: 1,
		Sets: [][]int{{0}, {0}}}
	alg := NewTAS(1)
	if _, err := RunSim(alg, RunConfig{Workload: w, Seed: 1, Rounds: 1}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestThunkOpsAndSteps(t *testing.T) {
	if ThunkOps(2, 3) != 14 {
		t.Fatalf("ThunkOps = %d", ThunkOps(2, 3))
	}
	if ThunkSteps(2, 3) != 8*14 {
		t.Fatalf("ThunkSteps = %d", ThunkSteps(2, 3))
	}
}

// The experiment smoke tests run each experiment at Quick scale and
// assert the paper's claimed shape, so a regression in any module shows
// up as a failed claim, not just a changed number.

func TestE1QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("E1 sweeps workload sizes; skip in -short")
	}
	tab, err := E1StepBound(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 16 {
			t.Fatalf("step bound ratio %v too large:\n%s", ratio, tab)
		}
	}
}

func TestE2QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("E2 needs many trials for its rate estimates; skip in -short")
	}
	tab, err := E2Fairness(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("fairness floor violated:\n%s", tab)
		}
	}
}

func TestE3QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("E3 sweeps table sizes; skip in -short")
	}
	tab, err := E3Philosophers(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var means []float64
	for _, row := range tab.Rows {
		rate, _ := strconv.ParseFloat(row[2], 64)
		if rate < 0.25 {
			t.Fatalf("philosopher success rate %v < 1/4:\n%s", rate, tab)
		}
		mean, _ := strconv.ParseFloat(row[3], 64)
		means = append(means, mean)
	}
	// O(1) in n: cost at the largest table within 2x of the smallest.
	if means[len(means)-1] > 2*means[0] {
		t.Fatalf("per-attempt steps grew with n: %v", means)
	}
}

func TestE5QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("E5 compares both variants over several shapes; skip in -short")
	}
	tab, err := E5Unknown(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		ratio, _ := strconv.ParseFloat(row[3], 64)
		logKLT, _ := strconv.ParseFloat(row[4], 64)
		if ratio > logKLT {
			t.Fatalf("unknown-bounds degradation %v exceeds log2(κLT)=%v:\n%s", ratio, logKLT, tab)
		}
	}
}

func TestE6QuickShape(t *testing.T) {
	tab, err := E6ActiveSet(Quick)
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	getset, _ := strconv.Atoi(last[4])
	if getset != 1 {
		t.Fatalf("getSet not constant: %s", last[4])
	}
}

func TestE7QuickShape(t *testing.T) {
	tab, err := E7Idempotence(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		perOp, _ := strconv.ParseFloat(row[2], 64)
		if perOp > 8 {
			t.Fatalf("caller steps per op %v exceeds the constant bound:\n%s", perOp, tab)
		}
		if row[4] != "true" {
			t.Fatalf("appears-once violated:\n%s", tab)
		}
	}
}

func TestE9QuickShape(t *testing.T) {
	tab, err := E9DelayAblation(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: attempt-length stddev — exactly 0 with delays on, > 0 off.
	on, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	off, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	if on != 0 {
		t.Fatalf("attempt-length stddev with delays on = %v, want 0:\n%s", on, tab)
	}
	if off == 0 {
		t.Fatalf("attempt-length stddev with delays off = 0; ablation shows nothing:\n%s", tab)
	}
}

func TestE8QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("E8 sweeps stall points; skip in -short")
	}
	tab, err := E8Baselines(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	if row := byName["wflocks"]; row[2] != "2/2" || row[5] != "false" {
		t.Fatalf("wait-free locks did not survive stalls:\n%s", tab)
	}
	if row := byName["tsp-lockfree"]; row[2] != "2/2" {
		t.Fatalf("tsp helping did not survive stalls:\n%s", tab)
	}
	if row := byName["spin-2pl"]; row[5] != "true" {
		t.Fatalf("blocking baseline unexpectedly survived every stall:\n%s", tab)
	}
}

func TestE11QuickShape(t *testing.T) {
	tab, err := E11Adaptivity(Quick)
	if err != nil {
		t.Fatal(err)
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	pFirst, _ := strconv.Atoi(first[0])
	pLast, _ := strconv.Atoi(last[0])
	herlihyFirst, _ := strconv.ParseFloat(first[1], 64)
	herlihyLast, _ := strconv.ParseFloat(last[1], 64)
	wfFirst, _ := strconv.ParseFloat(first[2], 64)
	wfLast, _ := strconv.ParseFloat(last[2], 64)
	// The scan touches every announcement slot: at least one step per
	// extra slot when P grows, while wflocks stays flat.
	if herlihyLast-herlihyFirst < float64(pLast-pFirst) {
		t.Fatalf("herlihy cost did not grow with P:\n%s", tab)
	}
	if wfLast > 1.1*wfFirst {
		t.Fatalf("wflocks cost grew with P despite fixed contention:\n%s", tab)
	}
}

// TestPropertyRandomWorkloads drives the full stack (core + idem +
// activeset + multiset) over randomly shaped workloads and schedules;
// RunSim's built-in invariant checks (mutual exclusion, exactly-once
// critical sections) turn any violation into an error.
func TestPropertyRandomWorkloads(t *testing.T) {
	f := func(seed uint64, procsRaw, lRaw uint8, unknown bool) bool {
		procs := 2 + int(procsRaw%4) // 2..5
		l := 1 + int(lRaw%2)         // 1..2
		rng := env.NewRNG(seed)
		w := workload.RandomSets(rng, procs, 2*procs*l, l, procs)
		alg := WFForWorkload(w, ThunkSteps(l, 0), unknown)
		m, err := RunSim(alg, RunConfig{Workload: w, Seed: seed, Rounds: 2})
		if err != nil {
			t.Logf("seed %d procs %d l %d unknown %v: %v", seed, procs, l, unknown, err)
			return false
		}
		return m.FinishedProcs == procs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBaselinesRandomWorkloads repeats the property check for
// every baseline that supports multi-lock tryLocks.
func TestPropertyBaselinesRandomWorkloads(t *testing.T) {
	builders := map[string]func(int) Algorithm{
		"tas": NewTAS, "tsp": NewTSP, "st": NewST, "spin": NewSpin,
	}
	for name, build := range builders {
		name, build := name, build
		f := func(seed uint64, procsRaw uint8) bool {
			procs := 2 + int(procsRaw%3)
			rng := env.NewRNG(seed)
			w := workload.RandomSets(rng, procs, 4*procs, 2, procs)
			m, err := RunSim(build(w.NumLocks), RunConfig{
				Workload: w, Seed: seed, Rounds: 2, MaxSteps: 50_000_000,
			})
			if err != nil {
				t.Logf("%s seed %d: %v", name, seed, err)
				return false
			}
			return m.FinishedProcs == procs
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestStallingScheduleInE8Deterministic(t *testing.T) {
	// Regression guard: the E8 schedule must be oblivious — identical
	// across constructions with the same parameters.
	a := &sched.Stalling{Base: sched.NewRandom(3, 7), Windows: nil}
	b := &sched.Stalling{Base: sched.NewRandom(3, 7), Windows: nil}
	for i := uint64(0); i < 1000; i++ {
		if a.Next(i) != b.Next(i) {
			t.Fatal("schedule not deterministic")
		}
	}
}
