package activeset

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"wflocks/internal/env"
	"wflocks/internal/linearize"
	"wflocks/internal/sched"
)

// TestLinearizability checks Algorithm 1's central claim (Section 5.1)
// directly: small concurrent histories of insert/remove/getSet must
// admit a linearization under the sequential set specification. The
// histories are recorded with a logical clock that is safe because the
// simulator serializes all execution.
func TestLinearizability(t *testing.T) {
	for seed := uint64(1); seed <= 120; seed++ {
		s := New[elem](4)
		clock := new(uint64)
		tick := func() uint64 { *clock++; return *clock }
		var history []linearize.Op
		record := func(op linearize.Op) { history = append(history, op) }

		sim := sched.New(sched.NewRandom(4, seed), seed)
		// Two inserter/removers.
		for i := 0; i < 2; i++ {
			i := i
			el := &elem{id: i + 1}
			sim.Spawn(func(e env.Env) {
				start := tick()
				slot := s.Insert(e, el)
				record(linearize.Op{Proc: i, Name: "insert", Arg: uint64(el.id),
					Ret: "ok", Start: start, End: tick()})
				env.StallSteps(e, uint64(3*i))
				start = tick()
				s.Remove(e, slot)
				record(linearize.Op{Proc: i, Name: "remove", Arg: uint64(el.id),
					Ret: "ok", Start: start, End: tick()})
			})
		}
		// Two observers.
		for o := 0; o < 2; o++ {
			o := o
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 2; k++ {
					start := tick()
					got := s.GetSet(e)
					record(linearize.Op{Proc: 2 + o, Name: "getset",
						Ret: encodeMembers(got), Start: start, End: tick()})
					env.StallSteps(e, uint64(2*o+1))
				}
			})
		}
		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, why := linearize.Check(linearize.SetSpec(), history)
		if !ok {
			t.Fatalf("seed %d: active set not linearizable:\n%s", seed, why)
		}
	}
}

func encodeMembers(els []*elem) string {
	ids := make([]int, len(els))
	for i, el := range els {
		ids[i] = el.id
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, ",")
}
