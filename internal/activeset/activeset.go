// Package activeset implements the linearizable, adaptive active set
// object of Section 5.1 (Algorithm 1).
//
// An active set tracks membership: Insert and Remove add and delete an
// element, and GetSet returns the current members. The implementation
// is an announcements array of C slots; each slot has an owner and a
// set pointer. Insert claims the first ownerless slot by CAS; Remove
// clears the owner. Both then "climb" from their slot to slot 0,
// propagating ownership changes upward so that slot 0's set field
// always reflects a linearizable snapshot of the membership, making
// GetSet constant-time.
//
// Step complexity is adaptive (Theorem 5.2 context): Insert and Remove
// take O(k) steps where k is the current size of the set plus the
// point contention; GetSet takes O(1) steps.
//
// One correction to the paper's pseudocode: Algorithm 1 line 10 reads
// the slot's own set for the top slot ("if j == C"). The set field of
// slot j must equal the owners of slots ≥ j for GetSet to be correct,
// so for the top slot the "set above" is the empty set — otherwise
// removed members would be retained in the top slot's set forever.
package activeset

import (
	"sync/atomic"

	"wflocks/internal/arena"
	"wflocks/internal/env"
)

// members is an immutable snapshot of a member list. Snapshots are
// never mutated after publication; climb installs fresh ones by CAS.
type members[T any] struct {
	items []*T
}

// scratch is the per-process allocation state for climb's published
// snapshots. Snapshot pointers are installed by CAS and read at
// arbitrary staleness, so they must stay fresh forever — the bump
// arenas abandon their chunks rather than recycling (internal/arena).
type scratch[T any] struct {
	members arena.Arena[members[T]]
	items   arena.Slices[*T]
}

// scratchOf returns e's active-set scratch for element type T, or nil
// when e carries no scratch state (callers fall back to plain
// allocation).
func scratchOf[T any](e env.Env) *scratch[T] {
	p := env.ScratchOf(e, env.ScratchActiveSet)
	if p == nil {
		return nil
	}
	s, ok := (*p).(*scratch[T])
	if !ok {
		s = &scratch[T]{}
		*p = s
	}
	return s
}

// slot is one row of the announcements array.
type slot[T any] struct {
	owner atomic.Pointer[T]
	set   atomic.Pointer[members[T]]
}

// Set is a linearizable active set with capacity C. The zero value is
// not usable; construct with New.
type Set[T any] struct {
	slots []slot[T]
}

// New returns an active set that can hold up to capacity simultaneous
// members. Algorithm 3 instantiates capacity = κ (known-bounds mode)
// or capacity = P, the number of processes (unknown-bounds mode).
func New[T any](capacity int) *Set[T] {
	if capacity <= 0 {
		panic("activeset: capacity must be positive")
	}
	s := &Set[T]{slots: make([]slot[T], capacity)}
	empty := &members[T]{}
	for i := range s.slots {
		s.slots[i].set.Store(empty)
	}
	return s
}

// Capacity reports the maximum number of simultaneous members.
func (s *Set[T]) Capacity() int { return len(s.slots) }

// Insert adds p to the set and returns the slot index that was claimed.
// The index must be passed to the matching Remove. Insert returns -1
// if the set is full, which cannot happen when capacity bounds hold
// (the paper guarantees a free slot exists when capacity ≥ the maximum
// point contention).
func (s *Set[T]) Insert(e env.Env, p *T) int {
	for i := range s.slots {
		e.Step()
		if s.slots[i].owner.CompareAndSwap(nil, p) {
			s.climb(e, i)
			return i
		}
	}
	return -1
}

// Remove deletes the member that was inserted into slot i.
func (s *Set[T]) Remove(e env.Env, i int) {
	e.Step()
	s.slots[i].owner.Store(nil)
	s.climb(e, i)
}

// GetSet returns a snapshot of the current members. The returned slice
// is immutable and must not be modified. Constant step complexity.
func (s *Set[T]) GetSet(e env.Env) []*T {
	e.Step()
	return s.slots[0].set.Load().items
}

// climb propagates ownership changes from slot i toward slot 0
// (Algorithm 1, lines 6–15). At each slot j it twice attempts to
// replace the slot's set with (set of slot j+1) ∪ {owner of slot j}.
// Two attempts suffice: if the first CAS fails, a concurrent climb
// installed a set at least as fresh; the second attempt then works
// from that fresher basis, which is the standard double-collect
// helping argument the paper's linearizability proof relies on.
func (s *Set[T]) climb(e env.Env, i int) {
	sc := scratchOf[T](e)
	for j := i; j >= 0; j-- {
		for k := 0; k < 2; k++ {
			e.Step()
			curSet := s.slots[j].set.Load()
			var above []*T
			if j+1 < len(s.slots) {
				e.Step()
				above = s.slots[j+1].set.Load().items
			}
			e.Step()
			newMember := s.slots[j].owner.Load()
			var newSet *members[T]
			if sc != nil {
				newSet = sc.members.New()
			} else {
				newSet = &members[T]{}
			}
			newSet.items = above
			if newMember != nil && !contains(above, newMember) {
				var fresh []*T
				if sc != nil {
					fresh = sc.items.MakeCap(len(above) + 1)
				} else {
					fresh = make([]*T, 0, len(above)+1)
				}
				fresh = append(fresh, above...)
				fresh = append(fresh, newMember)
				newSet.items = fresh
			}
			e.Step()
			s.slots[j].set.CompareAndSwap(curSet, newSet)
		}
	}
}

// Size reports the current number of members via a GetSet. Intended
// for tests and diagnostics.
func (s *Set[T]) Size(e env.Env) int {
	return len(s.GetSet(e))
}

// contains reports whether xs holds p. Membership snapshots are small
// (at most the point contention), so a linear scan preserves the O(k)
// step bound; the scan is local work attributed to the preceding step.
func contains[T any](xs []*T, p *T) bool {
	for _, x := range xs {
		if x == p {
			return true
		}
	}
	return false
}
