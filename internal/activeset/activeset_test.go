package activeset

import (
	"sort"
	"testing"
	"testing/quick"

	"wflocks/internal/env"
	"wflocks/internal/sched"
)

type elem struct{ id int }

func ids(xs []*elem) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x.id
	}
	sort.Ints(out)
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSequentialInsertGetRemove(t *testing.T) {
	e := env.NewNative(0, 1)
	s := New[elem](4)
	a, b := &elem{1}, &elem{2}

	ia := s.Insert(e, a)
	if ia < 0 {
		t.Fatal("insert a failed")
	}
	if got := ids(s.GetSet(e)); !equalIDs(got, []int{1}) {
		t.Fatalf("set = %v, want [1]", got)
	}

	ib := s.Insert(e, b)
	if got := ids(s.GetSet(e)); !equalIDs(got, []int{1, 2}) {
		t.Fatalf("set = %v, want [1 2]", got)
	}

	s.Remove(e, ia)
	if got := ids(s.GetSet(e)); !equalIDs(got, []int{2}) {
		t.Fatalf("set = %v, want [2]", got)
	}

	s.Remove(e, ib)
	if got := s.GetSet(e); len(got) != 0 {
		t.Fatalf("set = %v, want empty", ids(got))
	}
}

func TestInsertReusesFreedSlots(t *testing.T) {
	e := env.NewNative(0, 1)
	s := New[elem](2)
	a, b := &elem{1}, &elem{2}
	ia := s.Insert(e, a)
	ib := s.Insert(e, b)
	if ia == ib {
		t.Fatal("two live elements share a slot")
	}
	c := &elem{3}
	if s.Insert(e, c) != -1 {
		t.Fatal("insert into full set should fail")
	}
	s.Remove(e, ia)
	if got := s.Insert(e, c); got != ia {
		t.Fatalf("insert claimed slot %d, want freed slot %d", got, ia)
	}
	if got := ids(s.GetSet(e)); !equalIDs(got, []int{2, 3}) {
		t.Fatalf("set = %v, want [2 3]", got)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for capacity 0")
		}
	}()
	New[elem](0)
}

func TestCapacityAndSize(t *testing.T) {
	e := env.NewNative(0, 1)
	s := New[elem](5)
	if s.Capacity() != 5 {
		t.Fatalf("capacity = %d", s.Capacity())
	}
	s.Insert(e, &elem{1})
	s.Insert(e, &elem{2})
	if s.Size(e) != 2 {
		t.Fatalf("size = %d, want 2", s.Size(e))
	}
}

func TestGetSetConstantSteps(t *testing.T) {
	e := env.NewNative(0, 1)
	s := New[elem](64)
	for i := 0; i < 32; i++ {
		s.Insert(e, &elem{i})
	}
	before := e.Steps()
	s.GetSet(e)
	if got := e.Steps() - before; got != 1 {
		t.Fatalf("GetSet took %d steps, want 1", got)
	}
}

func TestInsertStepsAdaptive(t *testing.T) {
	// Insert step complexity must grow with the number of current
	// members (O(k)), not with capacity.
	const capacity = 1024
	measure := func(live int) uint64 {
		e := env.NewNative(0, 1)
		s := New[elem](capacity)
		for i := 0; i < live; i++ {
			s.Insert(e, &elem{i})
		}
		before := e.Steps()
		s.Insert(e, &elem{live})
		return e.Steps() - before
	}
	small, large := measure(2), measure(64)
	if large <= small {
		t.Fatalf("steps did not grow with live size: %d vs %d", small, large)
	}
	// Adaptivity: cost at live=64 must be far below cost implied by
	// scanning the whole capacity-1024 array with climbs.
	if large > 64*20 {
		t.Fatalf("insert at live=64 took %d steps; not adaptive", large)
	}
}

// modelCheck runs a random sequence of insert/remove ops sequentially
// and compares GetSet against a straightforward map model.
func TestMatchesModelSequential(t *testing.T) {
	f := func(ops []uint8, seed uint64) bool {
		e := env.NewNative(0, seed)
		s := New[elem](16)
		model := map[int]*elem{} // id -> elem
		slotOf := map[int]int{}
		next := 0
		for _, op := range ops {
			if op%2 == 0 || len(model) == 0 {
				if len(model) >= 16 {
					continue
				}
				el := &elem{next}
				next++
				slot := s.Insert(e, el)
				if slot < 0 {
					return false
				}
				model[el.id] = el
				slotOf[el.id] = slot
			} else {
				// remove an arbitrary member
				for id := range model {
					s.Remove(e, slotOf[id])
					delete(model, id)
					delete(slotOf, id)
					break
				}
			}
			got := ids(s.GetSet(e))
			want := make([]int, 0, len(model))
			for id := range model {
				want = append(want, id)
			}
			sort.Ints(want)
			if !equalIDs(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentContainment checks, under many random oblivious
// schedules, the two containment properties the linearizability proof
// needs: a GetSet started after an Insert returned (and before the
// matching Remove started) contains the element; a GetSet started
// after a Remove returned does not.
func TestConcurrentContainment(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		const procs = 6
		s := New[elem](procs)
		sim := sched.New(sched.NewRandom(procs+1, seed), seed)
		els := make([]*elem, procs)
		inserted := make([]bool, procs) // set by inserter after Insert returns
		removed := make([]bool, procs)
		for i := 0; i < procs; i++ {
			i := i
			els[i] = &elem{i}
			sim.Spawn(func(e env.Env) {
				slot := s.Insert(e, els[i])
				inserted[i] = true
				env.StallSteps(e, uint64(10*(i+1)))
				removed[i] = true
				s.Remove(e, slot)
			})
		}
		var violation string
		sim.Spawn(func(e env.Env) {
			for k := 0; k < 40; k++ {
				// Snapshot the markers before starting the GetSet.
				var mustHave []int
				for i := 0; i < procs; i++ {
					if inserted[i] && !removed[i] {
						mustHave = append(mustHave, i)
					}
				}
				got := s.GetSet(e)
				have := map[int]bool{}
				for _, el := range got {
					have[el.id] = true
				}
				for _, id := range mustHave {
					// The element may have started removal between our
					// marker snapshot and the GetSet; re-check removed.
					if !have[id] && !removed[id] {
						violation = "missing live member"
					}
				}
			}
		})
		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violation != "" {
			t.Fatalf("seed %d: %s", seed, violation)
		}
	}
}

// TestConcurrentNoGhosts checks that elements never seen by any
// process appear in no snapshot, and fully removed elements eventually
// disappear.
func TestConcurrentNoGhosts(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		const procs = 5
		s := New[elem](procs)
		sim := sched.New(sched.NewRandom(procs, seed), seed)
		els := make([]*elem, procs)
		for i := 0; i < procs; i++ {
			i := i
			els[i] = &elem{i}
			sim.Spawn(func(e env.Env) {
				slot := s.Insert(e, els[i])
				s.Remove(e, slot)
			})
		}
		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if got := s.GetSet(e); len(got) != 0 {
			t.Fatalf("seed %d: set not empty after all removes: %v", seed, ids(got))
		}
	}
}

// TestConcurrentInsertsAllVisible: after all inserts complete (no
// removes), every element must be in the snapshot.
func TestConcurrentInsertsAllVisible(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		const procs = 7
		s := New[elem](procs)
		sim := sched.New(sched.NewRandom(procs, seed), seed)
		for i := 0; i < procs; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				s.Insert(e, &elem{i})
			})
		}
		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		got := ids(s.GetSet(e))
		want := []int{0, 1, 2, 3, 4, 5, 6}
		if !equalIDs(got, want) {
			t.Fatalf("seed %d: set = %v, want %v", seed, got, want)
		}
	}
}

// TestNoDuplicatesInSnapshot: snapshots must be duplicate-free even
// under concurrent climbs.
func TestNoDuplicatesInSnapshot(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		const procs = 6
		s := New[elem](procs)
		sim := sched.New(sched.NewRandom(procs+1, seed), seed)
		for i := 0; i < procs; i++ {
			i := i
			sim.Spawn(func(e env.Env) {
				for k := 0; k < 5; k++ {
					slot := s.Insert(e, &elem{i})
					s.Remove(e, slot)
				}
			})
		}
		var dup bool
		sim.Spawn(func(e env.Env) {
			for k := 0; k < 100; k++ {
				got := s.GetSet(e)
				seen := map[*elem]bool{}
				for _, el := range got {
					if seen[el] {
						dup = true
					}
					seen[el] = true
				}
				e.Step()
			}
		})
		if err := sim.Run(2_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if dup {
			t.Fatalf("seed %d: duplicate element in snapshot", seed)
		}
	}
}

func TestRemovedNotVisibleToLaterGetSet(t *testing.T) {
	// Precise interleaving via trace: proc 0 inserts and removes
	// completely; then proc 1 reads.
	e := env.NewNative(0, 1)
	s := New[elem](3)
	a := &elem{1}
	slot := s.Insert(e, a)
	s.Remove(e, slot)
	if got := s.GetSet(e); len(got) != 0 {
		t.Fatalf("removed element visible: %v", ids(got))
	}
}
