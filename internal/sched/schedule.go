// Package sched implements the paper's execution model: an
// asynchronous shared-memory machine driven by an oblivious scheduler
// adversary (Section 2, Section 4).
//
// Processes run as coroutines. A single step token circulates: the
// scheduler grants the token to the process named by the schedule, the
// process executes until its next call to Env.Step (performing exactly
// the shared-memory or local work of one step), and returns the token.
// Because only one process ever holds the token, every execution is a
// deterministic function of (schedule, seed) and replays exactly.
//
// Obliviousness: a Schedule decides the entire interleaving from its
// own state and the step index only — it never observes memory values
// or process progress, matching the paper's oblivious scheduler
// adversary, which fixes the schedule before the execution begins.
package sched

import "wflocks/internal/env"

// Schedule is an oblivious scheduler adversary: a predetermined
// function from step index to process id. Implementations must not
// consult execution state.
type Schedule interface {
	// Next returns the process id to run the step with the given global
	// index. Ids outside [0, n) are burnt (treated as no-ops), which
	// models the adversary scheduling a process that has nothing to do.
	Next(stepIndex uint64) int
}

// RoundRobin schedules processes 0..n-1 cyclically — the synchronous
// baseline scheduler from Section 2's "synchronous setting" discussion.
type RoundRobin struct {
	N int
}

var _ Schedule = RoundRobin{}

// Next implements Schedule.
func (r RoundRobin) Next(stepIndex uint64) int {
	return int(stepIndex % uint64(r.N))
}

// Random schedules uniformly at random from a seeded stream. This is
// the canonical oblivious adversary used by most experiments: the
// stream is fixed by the seed before execution begins.
type Random struct {
	rng env.RNG
	n   int
}

var _ Schedule = (*Random)(nil)

// NewRandom returns a uniform random schedule over n processes.
func NewRandom(n int, seed uint64) *Random {
	return &Random{rng: *env.NewRNG(env.Mix(seed, 0xdecafbad)), n: n}
}

// Next implements Schedule.
func (s *Random) Next(uint64) int { return s.rng.IntN(s.n) }

// Weighted schedules process i with probability proportional to
// Weights[i]. Used to model schedulers that run some processes much
// faster than others (the paper: "the scheduler can run different
// processes at very different rates").
type Weighted struct {
	cum []float64
	rng env.RNG
}

var _ Schedule = (*Weighted)(nil)

// NewWeighted builds a weighted random schedule. All weights must be
// non-negative with a positive sum.
func NewWeighted(weights []float64, seed uint64) *Weighted {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Weighted{cum: cum, rng: *env.NewRNG(env.Mix(seed, 0xfeed))}
}

// Next implements Schedule.
func (s *Weighted) Next(uint64) int {
	x := s.rng.Float64()
	for i, c := range s.cum {
		if x < c {
			return i
		}
	}
	return len(s.cum) - 1
}

// StallWindow excludes a process from scheduling during a step-index
// window. Used by the failure-injection and baseline experiments (E8):
// the adversary stalls a lock holder arbitrarily long.
type StallWindow struct {
	Pid        int
	From, To   uint64 // global step indices, [From, To)
	Redirected int    // process scheduled instead during the window
}

// Stalling wraps a base schedule with stall windows.
type Stalling struct {
	Base    Schedule
	Windows []StallWindow
}

var _ Schedule = (*Stalling)(nil)

// Next implements Schedule.
func (s *Stalling) Next(stepIndex uint64) int {
	pid := s.Base.Next(stepIndex)
	for _, w := range s.Windows {
		if pid == w.Pid && stepIndex >= w.From && stepIndex < w.To {
			return w.Redirected
		}
	}
	return pid
}

// Trace replays an explicit sequence of pids, then falls back to
// round-robin. Used by tests that need precise interleavings.
type Trace struct {
	Pids []int
	N    int
}

var _ Schedule = (*Trace)(nil)

// Next implements Schedule.
func (t *Trace) Next(stepIndex uint64) int {
	if stepIndex < uint64(len(t.Pids)) {
		return t.Pids[stepIndex]
	}
	return int(stepIndex % uint64(t.N))
}

// Bursty alternates long bursts of a single process with uniform random
// scheduling — an adversarial pattern that maximizes overlap asymmetry.
type Bursty struct {
	n        int
	burstLen uint64
	rng      env.RNG
	current  int
	left     uint64
}

var _ Schedule = (*Bursty)(nil)

// NewBursty returns a bursty schedule over n processes with bursts of
// the given length.
func NewBursty(n int, burstLen uint64, seed uint64) *Bursty {
	return &Bursty{n: n, burstLen: burstLen, rng: *env.NewRNG(env.Mix(seed, 0xb00))}
}

// Next implements Schedule.
func (s *Bursty) Next(uint64) int {
	if s.left == 0 {
		s.current = s.rng.IntN(s.n)
		s.left = s.burstLen
	}
	s.left--
	return s.current
}
