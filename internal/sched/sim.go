package sched

import (
	"errors"
	"fmt"
	"sync"

	"wflocks/internal/env"
)

// ErrStepLimit is returned by Run when the step budget is exhausted
// before every process finishes.
var ErrStepLimit = errors.New("sched: step limit reached before all processes finished")

// abortSignal is panicked inside a process goroutine when the simulation
// is torn down early; the process wrapper recovers it.
type abortSignal struct{}

// Sim is a deterministic simulator of the paper's asynchronous
// shared-memory model. Each registered process runs as a coroutine;
// a single step token circulates according to the (oblivious) Schedule.
type Sim struct {
	schedule Schedule
	seed     uint64
	procs    []*proc
	total    uint64 // total granted steps across all processes
	burnt    uint64 // schedule slots pointing at finished/absent procs
	started  bool
}

// proc is one simulated process.
type proc struct {
	id       int
	body     func(env.Env)
	grant    chan struct{}
	yield    chan struct{}
	abort    chan struct{}
	steps    uint64
	rng      env.RNG
	finished bool
	err      error
}

var _ env.Env = (*proc)(nil)

// New creates a simulator with the given oblivious schedule and seed.
// Processes are registered with Spawn before calling Run.
func New(schedule Schedule, seed uint64) *Sim {
	return &Sim{schedule: schedule, seed: seed}
}

// Spawn registers a process body. The process's id is its registration
// order. The body receives an env.Env that must only be used from the
// body's goroutine.
func (s *Sim) Spawn(body func(env.Env)) int {
	if s.started {
		panic("sched: Spawn after Run")
	}
	id := len(s.procs)
	s.procs = append(s.procs, &proc{
		id:    id,
		body:  body,
		grant: make(chan struct{}),
		yield: make(chan struct{}),
		abort: make(chan struct{}),
		rng:   *env.NewRNG(env.Mix(s.seed, uint64(id)+1)),
	})
	return id
}

// NumProcs reports the number of registered processes.
func (s *Sim) NumProcs() int { return len(s.procs) }

// Run executes the simulation until every process finishes or maxSteps
// total steps have been granted. It returns ErrStepLimit if the budget
// ran out first. Run must be called exactly once.
func (s *Sim) Run(maxSteps uint64) error {
	if s.started {
		panic("sched: Run called twice")
	}
	s.started = true

	var wg sync.WaitGroup
	for _, p := range s.procs {
		wg.Add(1)
		go func(p *proc) {
			defer wg.Done()
			aborted := func() (aborted bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(abortSignal); ok {
							aborted = true
							return
						}
						// The body panicked while holding the token;
						// record the failure and fall through to the
						// yield below so the scheduler is released.
						p.err = fmt.Errorf("sched: process %d panicked: %v", p.id, r)
					}
				}()
				// Wait for the first grant before taking any action, so
				// that no process runs before the schedule says so.
				select {
				case <-p.grant:
				case <-p.abort:
					return true
				}
				p.steps++
				p.body(p)
				return false
			}()
			if aborted {
				return // torn down by the scheduler; nobody awaits a yield
			}
			p.finished = true
			p.yield <- struct{}{}
		}(p)
	}

	running := len(s.procs)
	var err error
	for running > 0 {
		// Burnt slots (schedule entries naming finished or absent
		// processes) count against the budget too: otherwise a schedule
		// that permanently stalls the only unfinished process would
		// spin forever.
		if s.total+s.burnt >= maxSteps {
			err = fmt.Errorf("%w (granted %d steps, burnt %d, %d processes unfinished)",
				ErrStepLimit, s.total, s.burnt, running)
			break
		}
		pid := s.schedule.Next(s.total + s.burnt)
		if pid < 0 || pid >= len(s.procs) || s.procs[pid].finished {
			s.burnt++
			continue
		}
		p := s.procs[pid]
		s.total++
		p.grant <- struct{}{}
		<-p.yield
		if p.finished {
			running--
		}
	}

	// Tear down any still-blocked processes.
	for _, p := range s.procs {
		if !p.finished {
			close(p.abort)
		}
	}
	wg.Wait()

	for _, p := range s.procs {
		if p.err != nil {
			return p.err
		}
	}
	return err
}

// TotalSteps reports the total number of steps granted across all
// processes.
func (s *Sim) TotalSteps() uint64 { return s.total }

// ProcSteps reports the number of steps taken by process id.
func (s *Sim) ProcSteps(id int) uint64 { return s.procs[id].steps }

// Finished reports whether process id ran to completion.
func (s *Sim) Finished(id int) bool { return s.procs[id].finished }

// Step implements env.Env: the process returns the token and blocks
// until the scheduler grants its next step.
func (p *proc) Step() {
	p.yield <- struct{}{}
	select {
	case <-p.grant:
	case <-p.abort:
		panic(abortSignal{})
	}
	p.steps++
}

// Steps implements env.Env.
func (p *proc) Steps() uint64 { return p.steps }

// Rand implements env.Env.
func (p *proc) Rand() uint64 { return p.rng.Next() }

// Pid implements env.Env.
func (p *proc) Pid() int { return p.id }
