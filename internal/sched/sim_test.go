package sched

import (
	"errors"
	"sync/atomic"
	"testing"

	"wflocks/internal/env"
)

func TestRoundRobinCompletes(t *testing.T) {
	s := New(RoundRobin{N: 4}, 1)
	var done [4]bool
	for i := 0; i < 4; i++ {
		i := i
		s.Spawn(func(e env.Env) {
			env.StallSteps(e, 10)
			done[i] = true
		})
	}
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if !d {
			t.Fatalf("process %d did not finish", i)
		}
	}
	for i := 0; i < 4; i++ {
		// 1 initial grant + 10 stall steps.
		if got := s.ProcSteps(i); got != 11 {
			t.Fatalf("process %d took %d steps, want 11", i, got)
		}
	}
}

func TestStepLimit(t *testing.T) {
	s := New(RoundRobin{N: 1}, 1)
	s.Spawn(func(e env.Env) {
		for { // never finishes
			e.Step()
		}
	})
	err := s.Run(100)
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if s.Finished(0) {
		t.Fatal("infinite process reported finished")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []uint64 {
		s := New(NewRandom(3, 99), 7)
		shared := new(uint64)
		trace := make([]uint64, 0, 64)
		for i := 0; i < 3; i++ {
			s.Spawn(func(e env.Env) {
				for k := 0; k < 20; k++ {
					e.Step()
					*shared += e.Rand() % 100 // serialized by the token
					trace = append(trace, *shared)
				}
			})
		}
		if err := s.Run(10000); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSerializedExecution(t *testing.T) {
	// Only one process may run at a time: a non-atomic counter
	// incremented between steps must never be observed torn.
	s := New(NewRandom(8, 5), 5)
	var inside int32
	for i := 0; i < 8; i++ {
		s.Spawn(func(e env.Env) {
			for k := 0; k < 50; k++ {
				e.Step()
				if atomic.AddInt32(&inside, 1) != 1 {
					t.Error("two processes ran concurrently")
				}
				atomic.AddInt32(&inside, -1)
			}
		})
	}
	if err := s.Run(100000); err != nil {
		t.Fatal(err)
	}
}

func TestProcStepsAccounting(t *testing.T) {
	s := New(RoundRobin{N: 2}, 1)
	s.Spawn(func(e env.Env) { env.StallSteps(e, 5) })
	s.Spawn(func(e env.Env) { env.StallSteps(e, 9) })
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if s.ProcSteps(0) != 6 || s.ProcSteps(1) != 10 {
		t.Fatalf("steps = %d, %d; want 6, 10", s.ProcSteps(0), s.ProcSteps(1))
	}
	if s.TotalSteps() != 16 {
		t.Fatalf("total steps = %d, want 16", s.TotalSteps())
	}
}

func TestTraceSchedule(t *testing.T) {
	// Process 1 runs entirely before process 0.
	tr := &Trace{Pids: []int{1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0}, N: 2}
	s := New(tr, 1)
	var order []int
	s.Spawn(func(e env.Env) {
		e.Step()
		order = append(order, 0)
	})
	s.Spawn(func(e env.Env) {
		e.Step()
		order = append(order, 1)
	})
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", order)
	}
}

func TestStallingScheduleRedirects(t *testing.T) {
	base := RoundRobin{N: 2}
	st := &Stalling{Base: base, Windows: []StallWindow{{Pid: 0, From: 0, To: 50, Redirected: 1}}}
	s := New(st, 1)
	var first int = -1
	s.Spawn(func(e env.Env) {
		e.Step()
		if first == -1 {
			first = 0
		}
	})
	s.Spawn(func(e env.Env) {
		e.Step()
		if first == -1 {
			first = 1
		}
	})
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("stalled process ran first (first = %d)", first)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	s := New(RoundRobin{N: 1}, 1)
	s.Spawn(func(e env.Env) {
		e.Step()
		panic("boom")
	})
	err := s.Run(100)
	if err == nil {
		t.Fatal("expected error from panicking process")
	}
}

func TestBurntStepsForFinishedProcs(t *testing.T) {
	// One fast process, one slow: round-robin keeps naming the fast
	// one after it finishes; those slots are burnt, not granted.
	s := New(RoundRobin{N: 2}, 1)
	s.Spawn(func(e env.Env) {}) // finishes on its first grant
	s.Spawn(func(e env.Env) { env.StallSteps(e, 20) })
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if s.ProcSteps(0) != 1 {
		t.Fatalf("fast process took %d steps, want 1", s.ProcSteps(0))
	}
	if s.ProcSteps(1) != 21 {
		t.Fatalf("slow process took %d steps, want 21", s.ProcSteps(1))
	}
}

func TestEnvPid(t *testing.T) {
	s := New(RoundRobin{N: 3}, 1)
	pids := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(func(e env.Env) { pids[i] = e.Pid() })
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	for i, p := range pids {
		if p != i {
			t.Fatalf("process %d saw pid %d", i, p)
		}
	}
}

func TestRandomScheduleCoverage(t *testing.T) {
	r := NewRandom(5, 123)
	seen := make(map[int]bool)
	for i := uint64(0); i < 1000; i++ {
		pid := r.Next(i)
		if pid < 0 || pid >= 5 {
			t.Fatalf("pid %d out of range", pid)
		}
		seen[pid] = true
	}
	if len(seen) != 5 {
		t.Fatalf("random schedule covered %d of 5 processes", len(seen))
	}
}

func TestWeightedScheduleSkews(t *testing.T) {
	w := NewWeighted([]float64{9, 1}, 77)
	count := [2]int{}
	for i := uint64(0); i < 10000; i++ {
		count[w.Next(i)]++
	}
	if count[0] < 8000 {
		t.Fatalf("heavy process got %d of 10000 slots, want ~9000", count[0])
	}
}

func TestBurstySchedule(t *testing.T) {
	b := NewBursty(4, 10, 3)
	// Every run of 10 consecutive slots starting at a multiple of 10
	// names a single process.
	for burst := 0; burst < 100; burst++ {
		first := b.Next(0)
		for i := 1; i < 10; i++ {
			if got := b.Next(0); got != first {
				t.Fatalf("burst %d not contiguous: %d then %d", burst, first, got)
			}
		}
	}
}

func TestSimRandDeterministicPerProc(t *testing.T) {
	draws := func(seed uint64) [2]uint64 {
		s := New(RoundRobin{N: 2}, seed)
		var out [2]uint64
		for i := 0; i < 2; i++ {
			i := i
			s.Spawn(func(e env.Env) { out[i] = e.Rand() })
		}
		if err := s.Run(100); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := draws(42), draws(42)
	if a != b {
		t.Fatalf("same-seed sims drew %v vs %v", a, b)
	}
	if a[0] == a[1] {
		t.Fatal("distinct processes drew identical values")
	}
	if c := draws(43); c == a {
		t.Fatal("different seeds drew identical values")
	}
}
