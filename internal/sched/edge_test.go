package sched

import (
	"testing"

	"wflocks/internal/env"
)

func TestZeroProcesses(t *testing.T) {
	s := New(RoundRobin{N: 1}, 1)
	if err := s.Run(100); err != nil {
		t.Fatalf("empty simulation errored: %v", err)
	}
	if s.TotalSteps() != 0 {
		t.Fatalf("empty simulation granted %d steps", s.TotalSteps())
	}
}

func TestScheduleNamingAbsentPidIsBurnt(t *testing.T) {
	// A schedule over more pids than registered processes burns the
	// excess slots (the adversary scheduling a process with no work).
	s := New(RoundRobin{N: 3}, 1)
	s.Spawn(func(e env.Env) { env.StallSteps(e, 5) })
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	if s.ProcSteps(0) != 6 {
		t.Fatalf("proc took %d steps, want 6", s.ProcSteps(0))
	}
}

func TestNegativePidBurnt(t *testing.T) {
	tr := &Trace{Pids: []int{-1, -1, 0, 0}, N: 1}
	s := New(tr, 1)
	done := false
	s.Spawn(func(e env.Env) { done = true })
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("process never ran despite valid trace entries")
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	s := New(RoundRobin{N: 1}, 1)
	s.Spawn(func(e env.Env) {})
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Spawn after Run")
		}
	}()
	s.Spawn(func(e env.Env) {})
}

func TestRunTwicePanics(t *testing.T) {
	s := New(RoundRobin{N: 1}, 1)
	s.Spawn(func(e env.Env) {})
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
}

func TestNumProcs(t *testing.T) {
	s := New(RoundRobin{N: 2}, 1)
	if s.NumProcs() != 0 {
		t.Fatal("fresh sim has processes")
	}
	s.Spawn(func(e env.Env) {})
	s.Spawn(func(e env.Env) {})
	if s.NumProcs() != 2 {
		t.Fatalf("NumProcs = %d, want 2", s.NumProcs())
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestAbortedProcessesDoNotLeak(t *testing.T) {
	// Hitting the step limit with processes mid-stall must tear down
	// cleanly (no goroutine deadlock; Run returns).
	for trial := 0; trial < 20; trial++ {
		s := New(RoundRobin{N: 4}, uint64(trial))
		for i := 0; i < 4; i++ {
			s.Spawn(func(e env.Env) {
				for {
					e.Step()
				}
			})
		}
		if err := s.Run(500); err == nil {
			t.Fatal("expected step-limit error")
		}
	}
}
