package table_test

import (
	"testing"

	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/table"
)

// FuzzShardOps drives one small shard through an arbitrary
// insert/delete/lookup sequence decoded from the fuzz input and checks
// the open-addressing invariants against a model map after every
// operation:
//
//   - a lookup finds exactly the model's live keys, with the model's
//     values;
//   - Find reports a reusable bucket (tombstone or empty) whenever the
//     shard has spare capacity — tombstones left by deletes must be
//     reused, or interleaved delete/insert traffic would exhaust the
//     region;
//   - a full shard (every bucket live) reports free = -1 and nothing
//     else does;
//   - the size cell tracks the model count exactly.
//
// The shard is tiny (8 buckets) and the keyspace (16 keys) is double
// its capacity, so full-shard, tombstone-reuse and wraparound probe
// paths (home buckets near the region end) are all hit by short
// inputs. The seed corpus keeps `go test` (including -short) exercising
// those paths without the fuzz engine.
func FuzzShardOps(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x10, 0x21, 0x02})                                     // insert, delete, lookup
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}) // fill to capacity and beyond
	f.Add([]byte{0x00, 0x10, 0x20, 0x30, 0x01, 0x11, 0x21, 0x31})       // churn two keys
	f.Add([]byte{0x0f, 0x1f, 0x2f, 0x1f, 0x0f, 0x3f, 0x2f, 0x4f})       // tombstone reuse on one key
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 8
		const keyspace = 16
		if len(ops) > 64 {
			ops = ops[:64] // plenty to reach every state; keeps cases fast
		}
		tb := newUintTable(1, capacity)
		e := env.NewNative(0, 1)
		sh := &tb.Shards[0]
		budget := table.Budget(capacity, 1, 1, 2, 10)
		model := map[uint64]uint64{}

		for step, op := range ops {
			k := uint64(op % keyspace)
			v := uint64(step) + 1000
			h := tb.Hash(k)
			home := tb.Home(h)
			switch (op >> 4) % 3 {
			case 0: // upsert
				full := false
				run(t, e, budget, func(r *idem.Run) {
					i, found, free := tb.Find(r, sh, h, home, k)
					switch {
					case found:
						tb.SetVal(r, sh, i, v)
					case free < 0:
						full = true
					default:
						tb.Insert(r, sh, free, h, k, v)
					}
				})
				if full {
					if len(model) != capacity {
						t.Fatalf("step %d: free=-1 with %d/%d live entries", step, len(model), capacity)
					}
				} else {
					model[k] = v
				}
			case 1: // delete
				run(t, e, budget, func(r *idem.Run) {
					if i, found, _ := tb.Find(r, sh, h, home, k); found {
						tb.Remove(r, sh, i)
					}
				})
				delete(model, k)
			case 2: // lookup only — checked below like every other step
			}

			if got := tb.LoadSize(e, sh); int(got) != len(model) {
				t.Fatalf("step %d: size cell %d, model %d", step, got, len(model))
			}
			// Audit the whole keyspace against the model, and the free-
			// bucket contract against the live count.
			run(t, e, 4*budget*keyspace, func(r *idem.Run) {
				for q := uint64(0); q < keyspace; q++ {
					qh := tb.Hash(q)
					i, found, free := tb.Find(r, sh, qh, tb.Home(qh), q)
					want, ok := model[q]
					if found != ok {
						t.Fatalf("step %d: key %d found=%v, model has=%v", step, q, found, ok)
					}
					if found && tb.Val(r, sh, i) != want {
						t.Fatalf("step %d: key %d value %d, model %d", step, q, tb.Val(r, sh, i), want)
					}
					if !found {
						if len(model) < capacity && free < 0 {
							t.Fatalf("step %d: key %d has no reusable bucket with %d/%d live (tombstones not reused?)",
								step, q, len(model), capacity)
						}
						if len(model) == capacity && free >= 0 {
							t.Fatalf("step %d: key %d offered free bucket %d in a full shard", step, q, free)
						}
					}
				}
			})
		}
	})
}
