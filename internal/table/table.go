// Package table is the shard-table engine behind the package's
// lock-sharded data structures (Map, Cache): a power-of-two shard array
// of open-addressed bucket regions held in idempotent cells, with the
// shared hashing, probing, seqlock versioning and critical-section
// budget math in one place. Structures layer their own semantics on top
// — the map adds fixed-capacity upsert/delete, the cache adds LRU links
// and TTL columns — but every one of them probes, hashes, versions and
// budgets identically, which is what makes multi-structure transactions
// composable: any set of shards from any engine-backed structures can
// be locked in one wait-free acquisition and mutated under one budget.
//
// The engine deliberately sits below the public typed-cell layer: it
// operates on internal/idem cells and runs, so it can be shared by the
// root package without an import cycle. The root package's Codec and
// ScalarCodec interfaces are structurally identical to the ones here,
// so codec values flow through unchanged.
package table

import (
	"wflocks/internal/env"
	"wflocks/internal/idem"
)

// Codec translates a T to and from its fixed-width word encoding. It is
// structurally identical to the root package's Codec, so any codec
// built there satisfies it directly.
type Codec[T any] interface {
	// Words is the fixed number of machine words an encoded T occupies.
	Words() int
	// Encode writes v's encoding into dst, which has Words() capacity.
	Encode(v T, dst []uint64)
	// Decode reconstructs a value from src, which holds Words() words.
	Decode(src []uint64) T
}

// ScalarCodec is the optional single-word extension of Codec; cells
// whose codec implements it take an allocation-free fast path.
type ScalarCodec[T any] interface {
	Codec[T]
	// EncodeWord returns v's single-word encoding.
	EncodeWord(v T) uint64
	// DecodeWord reconstructs a value from its single-word encoding.
	DecodeWord(w uint64) T
}

// Bucket states (low two bits of a meta word). Empty terminates a
// probe; tombstones (left by Remove) keep probe chains intact and are
// reused by inserts.
const (
	Empty     uint64 = 0
	Full      uint64 = 1
	Tombstone uint64 = 2
	StateMask uint64 = 3
)

// CeilPow2 rounds n up to the next power of two (minimum 1).
func CeilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Budget is the one critical-section budget calculator every
// engine-backed structure derives its WithMaxCriticalSteps requirement
// from. A worst-case single-shard operation is a full-region probe —
// shardCapacity (rounded up to a power of two, as the constructors
// round) buckets, each costing one meta read plus keyWords key reads —
// followed by a bounded tail of non-probe work: one key write
// (keyWords), valueAccesses value reads/writes (valueWords each), and
// overhead single-word cell operations for the structure's bookkeeping
// (size and seqlock-version updates, result-cell routing, LRU surgery,
// counters). The probe is the only term linear in the region size;
// everything a structure layers on top must be bounded-degree, which is
// why engine-backed structures never rehash.
func Budget(shardCapacity, keyWords, valueWords, valueAccesses, overhead int) int {
	return CeilPow2(shardCapacity)*(1+keyWords) + keyWords + valueAccesses*valueWords + overhead
}

// ProbeSteps is the cost of one worst-case probe alone: the linear term
// of Budget. Multi-key transactions use it to budget the re-probes that
// same-shard inserts can force.
func ProbeSteps(shardCapacity, keyWords int) int {
	return CeilPow2(shardCapacity) * (1 + keyWords)
}

// HashKey computes a key's 64-bit hash by chaining each encoded word
// through env.Mix (the SplitMix64 finalizer). Shard selection uses the
// low bits and the home bucket the high bits, so the two are
// independent. scalar, when non-nil, is the allocation-free fast path
// for single-word keys.
func HashKey[K comparable](kc Codec[K], scalar ScalarCodec[K], seed uint64, k K) uint64 {
	if scalar != nil {
		return env.Mix(seed, scalar.EncodeWord(k))
	}
	buf := make([]uint64, kc.Words())
	kc.Encode(k, buf)
	h := seed
	for _, w := range buf {
		h = env.Mix(h, w)
	}
	return h
}

// Shard is one shard of a table: a seqlock version cell, an entry
// count, and the bucket region. The lock guarding the shard lives with
// the owning structure (locks are a root-package type); the engine owns
// everything the lock protects.
type Shard struct {
	// Ver is the shard's seqlock version: mutations bump it to odd
	// before touching buckets and back to even after, so lock-free
	// readers (snapshots, iterators) can detect interference.
	Ver *idem.Cell
	// Size is the shard's live-entry count.
	Size *idem.Cell
	// Meta[i] holds bucket i's state in the low two bits and, for full
	// buckets, the key hash with those bits cleared — a cheap filter
	// that skips decoding non-matching keys during probes.
	Meta []*idem.Cell
	keys []*idem.Cell // capacity × keyWords, bucket-major
	vals []*idem.Cell // capacity × valueWords, bucket-major

	// Shards are stored contiguously in Table.Shards and different
	// shards are touched by different locks; pad each header to 128
	// bytes (two cache lines, the common prefetch pair) so a probe
	// walking one shard's Meta slice header never invalidates a
	// neighbor's. The fields above total 88 bytes.
	_ [40]byte
}

// Table is a shard array of open-addressed bucket regions over typed
// keys and values. It carries no locks and no policy: structures bring
// their own locking, eviction, budgets and result routing.
type Table[K comparable, V any] struct {
	kc Codec[K]
	vc Codec[V]
	ks ScalarCodec[K] // non-nil: allocation-free key path
	vs ScalarCodec[V] // non-nil: allocation-free value path
	kw int
	vw int

	seed      uint64
	shardMask uint64
	capMask   uint64
	capacity  int
	Shards    []Shard
}

// New builds a table with the given shard count and per-shard bucket
// capacity, both rounded up to powers of two. All buckets start Empty;
// key and value words start zeroed (never decoded while a bucket is not
// Full, so no codec invocation happens at construction).
func New[K comparable, V any](kc Codec[K], vc Codec[V], shards, capacity int, seed uint64) *Table[K, V] {
	shards = CeilPow2(shards)
	capacity = CeilPow2(capacity)
	t := &Table[K, V]{
		kc:        kc,
		vc:        vc,
		kw:        kc.Words(),
		vw:        vc.Words(),
		seed:      seed,
		shardMask: uint64(shards - 1),
		capMask:   uint64(capacity - 1),
		capacity:  capacity,
		Shards:    make([]Shard, shards),
	}
	if sc, ok := kc.(ScalarCodec[K]); ok && t.kw == 1 {
		t.ks = sc
	}
	if sc, ok := vc.(ScalarCodec[V]); ok && t.vw == 1 {
		t.vs = sc
	}
	for s := range t.Shards {
		sh := &t.Shards[s]
		sh.Ver = idem.NewCell(0)
		sh.Size = idem.NewCell(0)
		sh.Meta = make([]*idem.Cell, capacity)
		for i := range sh.Meta {
			sh.Meta[i] = idem.NewCell(Empty)
		}
		sh.keys = idem.NewCells(capacity*t.kw, nil)
		sh.vals = idem.NewCells(capacity*t.vw, nil)
	}
	return t
}

// ShardCount reports the number of shards (after rounding).
func (t *Table[K, V]) ShardCount() int { return len(t.Shards) }

// Capacity reports the bucket count per shard (after rounding).
func (t *Table[K, V]) Capacity() int { return t.capacity }

// KeyWords and ValueWords report the codec widths.
func (t *Table[K, V]) KeyWords() int { return t.kw }

// ValueWords reports the value codec's width in words.
func (t *Table[K, V]) ValueWords() int { return t.vw }

// Hash computes the key's 64-bit hash under the table's seed.
func (t *Table[K, V]) Hash(k K) uint64 {
	return HashKey(t.kc, t.ks, t.seed, k)
}

// ShardIndex picks the key's shard from its hash (low bits).
func (t *Table[K, V]) ShardIndex(h uint64) int { return int(h & t.shardMask) }

// Home picks the key's home bucket from its hash (high bits).
func (t *Table[K, V]) Home(h uint64) int { return int((h >> 32) & t.capMask) }

// Key reads bucket i's key inside a critical section.
func (t *Table[K, V]) Key(r *idem.Run, sh *Shard, i int) K {
	if t.ks != nil {
		return t.ks.DecodeWord(r.Read(sh.keys[i]))
	}
	buf := make([]uint64, t.kw)
	r.ReadWords(sh.keys[i*t.kw:(i+1)*t.kw], buf)
	return t.kc.Decode(buf)
}

// setKey writes bucket i's key inside a critical section.
func (t *Table[K, V]) setKey(r *idem.Run, sh *Shard, i int, k K) {
	if t.ks != nil {
		r.Write(sh.keys[i], t.ks.EncodeWord(k))
		return
	}
	buf := make([]uint64, t.kw)
	t.kc.Encode(k, buf)
	r.WriteWords(sh.keys[i*t.kw:(i+1)*t.kw], buf)
}

// Val reads bucket i's value inside a critical section.
func (t *Table[K, V]) Val(r *idem.Run, sh *Shard, i int) V {
	if t.vs != nil {
		return t.vs.DecodeWord(r.Read(sh.vals[i]))
	}
	buf := make([]uint64, t.vw)
	r.ReadWords(sh.vals[i*t.vw:(i+1)*t.vw], buf)
	return t.vc.Decode(buf)
}

// SetVal writes bucket i's value inside a critical section.
func (t *Table[K, V]) SetVal(r *idem.Run, sh *Shard, i int, v V) {
	if t.vs != nil {
		r.Write(sh.vals[i], t.vs.EncodeWord(v))
		return
	}
	buf := make([]uint64, t.vw)
	t.vc.Encode(v, buf)
	r.WriteWords(sh.vals[i*t.vw:(i+1)*t.vw], buf)
}

// Find probes sh's open-addressed region for k inside a critical
// section — the one probe loop behind every engine-backed structure.
// It returns the key's bucket index and found=true, or found=false with
// free the first reusable bucket (empty or tombstone; -1 if the region
// has none). Probing is linear from the home bucket and stops at the
// first empty bucket, which no insertion ever skips.
func (t *Table[K, V]) Find(r *idem.Run, sh *Shard, h uint64, home int, k K) (idx int, found bool, free int) {
	frag := h &^ StateMask
	free = -1
	n := t.capacity
	for j := 0; j < n; j++ {
		i := (home + j) & int(t.capMask)
		w := r.Read(sh.Meta[i])
		switch w & StateMask {
		case Empty:
			if free < 0 {
				free = i
			}
			return 0, false, free
		case Tombstone:
			if free < 0 {
				free = i
			}
		default: // full
			if w&^StateMask == frag && t.Key(r, sh, i) == k {
				return i, true, free
			}
		}
	}
	return 0, false, free
}

// Insert marks bucket i Full with (k, v) and increments the shard size,
// inside a critical section. i must be a reusable (empty or tombstone)
// bucket, normally Find's free result.
func (t *Table[K, V]) Insert(r *idem.Run, sh *Shard, i int, h uint64, k K, v V) {
	r.Write(sh.Meta[i], Full|(h&^StateMask))
	t.setKey(r, sh, i, k)
	t.SetVal(r, sh, i, v)
	r.Write(sh.Size, r.Read(sh.Size)+1)
}

// Remove tombstones bucket i and decrements the shard size, inside a
// critical section. Tombstones keep longer probe chains reachable and
// are reused by Insert.
func (t *Table[K, V]) Remove(r *idem.Run, sh *Shard, i int) {
	r.Write(sh.Meta[i], Tombstone)
	r.Write(sh.Size, r.Read(sh.Size)-1)
}

// BumpVer advances sh's seqlock version by one (2 ops). Mutating
// critical sections call it once before touching buckets (version goes
// odd) and once after (back to even).
func (t *Table[K, V]) BumpVer(r *idem.Run, sh *Shard) {
	r.Write(sh.Ver, r.Read(sh.Ver)+1)
}

// ReadStable runs read under sh's seqlock, outside any critical
// section: read is retried until it completes with the shard version
// even and unchanged, so everything it loaded belongs to one consistent
// instant. read must be idempotent across retries (reset its own
// accumulators on entry) and must only load cells, via LoadMeta,
// LoadKey, LoadVal and its own off-lock reads.
func (t *Table[K, V]) ReadStable(e env.Env, sh *Shard, yieldCPU func(), read func()) {
	for {
		v0 := sh.Ver.Load(e)
		if v0&1 == 1 {
			// A mutation is mid-application; its attempt finishes within
			// the wait-free step bound, so yield and retry.
			yieldCPU()
			continue
		}
		read()
		if sh.Ver.Load(e) == v0 {
			return
		}
	}
}

// FindStable probes for k under sh's seqlock without entering a
// critical section: the read-only analogue of Find, at the cost of a
// plain memory scan instead of a lock acquisition. It makes up to
// tries attempts to complete a probe with the shard version even and
// unchanged; done=true reports success, with the found value if any.
// done=false means writers kept the version moving and the caller
// should fall back to a locked probe (which is wait-free, so the
// fallback bounds the total work). The same argument that covers
// ReadStable covers this: a probe bracketed by equal even version
// reads observed the shard at one consistent instant, so the result
// linearizes there. Stale helpers cannot disturb it — their writes CAS
// against boxes that have since been replaced, and boxes are never
// recycled.
func (t *Table[K, V]) FindStable(e env.Env, sh *Shard, h uint64, home int, k K, tries int) (v V, ok, done bool) {
	frag := h &^ StateMask
	for a := 0; a < tries; a++ {
		v0 := sh.Ver.Load(e)
		if v0&1 == 1 {
			continue
		}
		var (
			val   V
			found bool
		)
	probe:
		for j := 0; j < t.capacity; j++ {
			i := (home + j) & int(t.capMask)
			w := t.LoadMeta(e, sh, i)
			switch w & StateMask {
			case Empty:
				break probe
			case Tombstone:
			default: // full
				if w&^StateMask == frag && t.LoadKey(e, sh, i) == k {
					val, found = t.LoadVal(e, sh, i), true
					break probe
				}
			}
		}
		if sh.Ver.Load(e) == v0 {
			return val, found, true
		}
	}
	return v, false, false
}

// LoadMeta reads bucket i's meta word outside any critical section.
func (t *Table[K, V]) LoadMeta(e env.Env, sh *Shard, i int) uint64 {
	return sh.Meta[i].Load(e)
}

// LoadKey reads bucket i's key outside any critical section; only
// meaningful under ReadStable or at quiescence.
func (t *Table[K, V]) LoadKey(e env.Env, sh *Shard, i int) K {
	if t.ks != nil {
		return t.ks.DecodeWord(sh.keys[i].Load(e))
	}
	buf := make([]uint64, t.kw)
	idem.LoadWords(e, sh.keys[i*t.kw:(i+1)*t.kw], buf)
	return t.kc.Decode(buf)
}

// LoadVal reads bucket i's value outside any critical section; only
// meaningful under ReadStable or at quiescence.
func (t *Table[K, V]) LoadVal(e env.Env, sh *Shard, i int) V {
	if t.vs != nil {
		return t.vs.DecodeWord(sh.vals[i].Load(e))
	}
	buf := make([]uint64, t.vw)
	idem.LoadWords(e, sh.vals[i*t.vw:(i+1)*t.vw], buf)
	return t.vc.Decode(buf)
}

// LoadSize reads sh's entry count outside any critical section.
func (t *Table[K, V]) LoadSize(e env.Env, sh *Shard) uint64 {
	return sh.Size.Load(e)
}

// ShardProbeStats summarizes one shard's occupancy and probe-chain
// shape, recovered from the meta words alone.
type ShardProbeStats struct {
	// Full and Tombstones count buckets in each non-empty state;
	// Capacity is the region size, so Full/Capacity is the load factor.
	Full       int
	Tombstones int
	Capacity   int
	// MaxProbe and SumProbe describe the displacement of full buckets
	// from their home position — how long probes for present keys run.
	// SumProbe/Full is the mean lookup probe length minus one.
	MaxProbe int
	SumProbe int
}

// ProbeStats scans sh's meta words outside any critical section and
// reports its occupancy and probe displacements. Each full bucket's
// home position is recovered from the hash fragment stored in its meta
// word (Home uses bits ≥ 32, which the state bits never touch), so the
// scan needs no key decoding and no lock. Like the manager's counters
// it is exact at quiescence and momentarily skewed under live traffic —
// a mid-scan mutation can double-count or miss a bucket, never fault.
func (t *Table[K, V]) ProbeStats(e env.Env, sh *Shard) ShardProbeStats {
	st := ShardProbeStats{Capacity: t.capacity}
	for i := 0; i < t.capacity; i++ {
		w := sh.Meta[i].Load(e)
		switch w & StateMask {
		case Full:
			st.Full++
			d := (i - t.Home(w)) & int(t.capMask)
			st.SumProbe += d
			if d > st.MaxProbe {
				st.MaxProbe = d
			}
		case Tombstone:
			st.Tombstones++
		}
	}
	return st
}
