package table_test

import (
	"testing"

	"wflocks"
	"wflocks/internal/env"
	"wflocks/internal/idem"
	"wflocks/internal/table"
)

// run executes body once through the idempotence layer, the same way a
// critical section would run it, with a generous op budget.
func run(t testing.TB, e env.Env, maxOps int, body func(r *idem.Run)) {
	t.Helper()
	idem.NewExec(body, maxOps).Execute(e)
}

func newUintTable(shards, capacity int) *table.Table[uint64, uint64] {
	kc := wflocks.IntegerCodec[uint64]()
	vc := wflocks.IntegerCodec[uint64]()
	return table.New[uint64, uint64](kc, vc, shards, capacity, 42)
}

func TestNewRoundsToPow2(t *testing.T) {
	tb := newUintTable(3, 20)
	if tb.ShardCount() != 4 {
		t.Errorf("ShardCount = %d, want 4", tb.ShardCount())
	}
	if tb.Capacity() != 32 {
		t.Errorf("Capacity = %d, want 32", tb.Capacity())
	}
	if tb.KeyWords() != 1 || tb.ValueWords() != 1 {
		t.Errorf("words = (%d, %d), want (1, 1)", tb.KeyWords(), tb.ValueWords())
	}
}

// TestBudgetPinsPublicHelpers pins the two public budget helpers to the
// engine's shared calculator: MapCriticalSteps is Budget with two value
// accesses and 10 words of bookkeeping, CacheCriticalSteps with three
// value accesses and 32 (the LRU surgery and counters). If either
// drifts from the shared formula the structures' validated budgets and
// the engine's would disagree, so this is a contract test, not a
// tautology.
func TestBudgetPinsPublicHelpers(t *testing.T) {
	for _, c := range []struct{ cap, kw, vw int }{
		{1, 1, 1}, {7, 1, 1}, {64, 1, 1}, {64, 2, 3}, {100, 4, 1}, {1024, 1, 2},
	} {
		if got, want := wflocks.MapCriticalSteps(c.cap, c.kw, c.vw), table.Budget(c.cap, c.kw, c.vw, 2, 10); got != want {
			t.Errorf("MapCriticalSteps(%d,%d,%d) = %d, want shared Budget %d", c.cap, c.kw, c.vw, got, want)
		}
		if got, want := wflocks.CacheCriticalSteps(c.cap, c.kw, c.vw), table.Budget(c.cap, c.kw, c.vw, 3, 32); got != want {
			t.Errorf("CacheCriticalSteps(%d,%d,%d) = %d, want shared Budget %d", c.cap, c.kw, c.vw, got, want)
		}
	}
	// The probe term alone is Budget's linear component.
	if got, want := table.ProbeSteps(65, 2), 128*3; got != want {
		t.Errorf("ProbeSteps(65, 2) = %d, want %d", got, want)
	}
}

func TestInsertFindRemoveCycle(t *testing.T) {
	tb := newUintTable(1, 8)
	e := env.NewNative(0, 1)
	sh := &tb.Shards[0]
	budget := table.Budget(8, 1, 1, 2, 10)

	const k, v = uint64(99), uint64(123)
	h := tb.Hash(k)
	home := tb.Home(h)

	run(t, e, budget, func(r *idem.Run) {
		if _, found, free := tb.Find(r, sh, h, home, k); found || free < 0 {
			t.Errorf("empty table: found=%v free=%d, want absent with a free bucket", found, free)
		}
	})
	run(t, e, budget, func(r *idem.Run) {
		_, _, free := tb.Find(r, sh, h, home, k)
		tb.Insert(r, sh, free, h, k, v)
	})
	run(t, e, budget, func(r *idem.Run) {
		i, found, _ := tb.Find(r, sh, h, home, k)
		if !found {
			t.Fatal("inserted key not found")
		}
		if got := tb.Val(r, sh, i); got != v {
			t.Errorf("Val = %d, want %d", got, v)
		}
		if got := tb.Key(r, sh, i); got != k {
			t.Errorf("Key = %d, want %d", got, k)
		}
		tb.SetVal(r, sh, i, v+1)
	})
	if got := tb.LoadSize(e, sh); got != 1 {
		t.Errorf("size = %d, want 1", got)
	}
	run(t, e, budget, func(r *idem.Run) {
		i, found, _ := tb.Find(r, sh, h, home, k)
		if !found || tb.Val(r, sh, i) != v+1 {
			t.Error("overwrite lost")
		}
		tb.Remove(r, sh, i)
	})
	run(t, e, budget, func(r *idem.Run) {
		if _, found, free := tb.Find(r, sh, h, home, k); found || free < 0 {
			t.Errorf("after remove: found=%v free=%d, want tombstone reusable", found, free)
		}
	})
	if got := tb.LoadSize(e, sh); got != 0 {
		t.Errorf("size after remove = %d, want 0", got)
	}
}

// TestReadStableSeesMutations drives the seqlock directly: ReadStable
// must retry while the version is odd (a mutation mid-application) and
// return a snapshot from a stable window.
func TestReadStableSeesMutations(t *testing.T) {
	tb := newUintTable(1, 8)
	e := env.NewNative(0, 1)
	sh := &tb.Shards[0]
	budget := table.Budget(8, 1, 1, 2, 10)

	h := tb.Hash(7)
	run(t, e, budget, func(r *idem.Run) {
		_, _, free := tb.Find(r, sh, h, tb.Home(h), 7)
		tb.Insert(r, sh, free, h, 7, 70)
	})

	// Force the version odd; ReadStable must spin in yieldCPU until it
	// goes even again.
	sh.Ver.Store(e, 1)
	yields := 0
	var got []uint64
	tb.ReadStable(e, sh, func() {
		yields++
		if yields == 3 {
			sh.Ver.Store(e, 2) // mutation "finished"
		}
	}, func() {
		got = got[:0]
		for i := 0; i < tb.Capacity(); i++ {
			if tb.LoadMeta(e, sh, i)&table.StateMask == table.Full {
				got = append(got, tb.LoadVal(e, sh, i))
			}
		}
	})
	if yields < 3 {
		t.Errorf("ReadStable returned after %d yields with the version still odd", yields)
	}
	if len(got) != 1 || got[0] != 70 {
		t.Errorf("snapshot = %v, want [70]", got)
	}
}

func TestHashShardHomeIndependence(t *testing.T) {
	// Keys that collide on a shard should still spread over home
	// buckets: shard selection uses low hash bits, home the high bits.
	tb := newUintTable(4, 64)
	homes := map[int]bool{}
	n := 0
	for k := uint64(0); k < 4096 && n < 200; k++ {
		h := tb.Hash(k)
		if tb.ShardIndex(h) != 0 {
			continue
		}
		n++
		homes[tb.Home(h)] = true
	}
	if len(homes) < 16 {
		t.Errorf("200 same-shard keys hit only %d distinct home buckets", len(homes))
	}
}

// TestProbeStats checks the metrics scan against a brute-force oracle:
// insert a batch of keys, remove some (leaving tombstones), and compare
// ProbeStats with displacements recomputed per key from Find's slot and
// the key's own home bucket.
func TestProbeStats(t *testing.T) {
	tb := newUintTable(1, 32)
	e := env.NewNative(0, 1)
	sh := &tb.Shards[0]
	budget := table.Budget(32, 1, 1, 2, 10)

	const n = 20
	for k := uint64(0); k < n; k++ {
		k := k
		h := tb.Hash(k)
		run(t, e, budget, func(r *idem.Run) {
			_, _, free := tb.Find(r, sh, h, tb.Home(h), k)
			tb.Insert(r, sh, free, h, k, k*7)
		})
	}
	// Remove every fourth key; Remove leaves a tombstone.
	removed := 0
	for k := uint64(0); k < n; k += 4 {
		k := k
		h := tb.Hash(k)
		run(t, e, budget, func(r *idem.Run) {
			i, found, _ := tb.Find(r, sh, h, tb.Home(h), k)
			if !found {
				t.Fatalf("key %d vanished", k)
			}
			tb.Remove(r, sh, i)
		})
		removed++
	}

	// Oracle: displacement of each surviving key from its own hash.
	want := table.ShardProbeStats{Capacity: tb.Capacity(), Tombstones: removed}
	for k := uint64(0); k < n; k++ {
		if k%4 == 0 {
			continue
		}
		k := k
		h := tb.Hash(k)
		run(t, e, budget, func(r *idem.Run) {
			i, found, _ := tb.Find(r, sh, h, tb.Home(h), k)
			if !found {
				t.Fatalf("key %d vanished", k)
			}
			d := (i - tb.Home(h)) & (tb.Capacity() - 1)
			want.Full++
			want.SumProbe += d
			if d > want.MaxProbe {
				want.MaxProbe = d
			}
		})
	}

	if got := tb.ProbeStats(e, sh); got != want {
		t.Errorf("ProbeStats = %+v, want %+v", got, want)
	}
}
