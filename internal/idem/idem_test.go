package idem

import (
	"testing"
	"testing/quick"

	"wflocks/internal/env"
	"wflocks/internal/sched"
)

func TestCellLoadStore(t *testing.T) {
	e := env.NewNative(0, 1)
	c := NewCell(5)
	if got := c.Load(e); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
	c.Store(e, 9)
	if got := c.Load(e); got != 9 {
		t.Fatalf("Load = %d, want 9", got)
	}
}

func TestCellCAS(t *testing.T) {
	e := env.NewNative(0, 1)
	c := NewCell(1)
	if !c.CompareAndSwap(e, 1, 2) {
		t.Fatal("CAS(1,2) on 1 failed")
	}
	if c.CompareAndSwap(e, 1, 3) {
		t.Fatal("CAS(1,3) on 2 succeeded")
	}
	if got := c.Load(e); got != 2 {
		t.Fatalf("Load = %d, want 2", got)
	}
}

func TestSingleRunSemantics(t *testing.T) {
	// A lone run must behave exactly like direct code.
	e := env.NewNative(0, 1)
	a, b := NewCell(10), NewCell(0)
	x := NewExec(func(r *Run) {
		v := r.Read(a)
		r.Write(b, v*2)
		if !r.CAS(a, 10, 11) {
			t.Error("CAS(10,11) failed on fresh cell")
		}
		if r.CAS(a, 10, 12) {
			t.Error("second CAS from 10 succeeded")
		}
	}, 8)
	x.Execute(e)
	if !x.Finished() {
		t.Fatal("Exec not finished")
	}
	if got := b.Load(e); got != 20 {
		t.Fatalf("b = %d, want 20", got)
	}
	if got := a.Load(e); got != 11 {
		t.Fatalf("a = %d, want 11", got)
	}
}

func TestReexecutionIsNoOp(t *testing.T) {
	// Running the same Exec again must not re-apply effects.
	e := env.NewNative(0, 1)
	ctr := NewCell(0)
	x := NewExec(func(r *Run) {
		v := r.Read(ctr)
		r.Write(ctr, v+1)
	}, 4)
	for i := 0; i < 10; i++ {
		x.Execute(e)
	}
	if got := ctr.Load(e); got != 1 {
		t.Fatalf("counter = %d after 10 executions, want 1", got)
	}
}

// TestAppearsOnceConcurrent is the core idempotence test: h helpers
// concurrently execute a thunk that performs a chain of reads, writes
// and CASes; the final state must equal one sequential run, under many
// random oblivious schedules.
func TestAppearsOnceConcurrent(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		const helpers = 6
		const incs = 10
		ctr := NewCell(0)
		x := NewExec(func(r *Run) {
			for k := 0; k < incs; k++ {
				v := r.Read(ctr)
				r.Write(ctr, v+1)
			}
		}, 2*incs)
		sim := sched.New(sched.NewRandom(helpers, seed), seed)
		for i := 0; i < helpers; i++ {
			sim.Spawn(func(e env.Env) { x.Execute(e) })
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if got := ctr.Load(e); got != incs {
			t.Fatalf("seed %d: counter = %d, want %d", seed, got, incs)
		}
	}
}

// TestCASChainAppearsOnce: CAS-based increments (the classic lock-free
// counter) must also apply exactly once per op index.
func TestCASChainAppearsOnce(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		const helpers = 5
		ctr := NewCell(100)
		var okCount [3]bool
		x := NewExec(func(r *Run) {
			// Three CASes, each from the canonical previous value: all
			// must succeed exactly once.
			okCount[0] = r.CAS(ctr, 100, 101)
			okCount[1] = r.CAS(ctr, 101, 102)
			okCount[2] = r.CAS(ctr, 102, 103)
		}, 3)
		sim := sched.New(sched.NewRandom(helpers, seed), seed)
		for i := 0; i < helpers; i++ {
			sim.Spawn(func(e env.Env) { x.Execute(e) })
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if got := ctr.Load(e); got != 103 {
			t.Fatalf("seed %d: counter = %d, want 103", seed, got)
		}
		for i, ok := range okCount {
			if !ok {
				t.Fatalf("seed %d: canonical CAS %d reported failure", seed, i)
			}
		}
	}
}

// TestAllRunsSeeSameResponses: every helper must observe the canonical
// (first-logged) responses, not its own.
func TestAllRunsSeeSameResponses(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		const helpers = 4
		src := NewCell(7)
		seen := make([][]uint64, helpers)
		x := NewExec(func(r *Run) {
			v1 := r.Read(src)
			r.Write(src, v1+1)
			v2 := r.Read(src)
			pid := r.Env().Pid()
			seen[pid] = append(seen[pid], v1, v2)
		}, 4)
		sim := sched.New(sched.NewRandom(helpers, seed), seed)
		for i := 0; i < helpers; i++ {
			sim.Spawn(func(e env.Env) { x.Execute(e) })
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for pid := 1; pid < helpers; pid++ {
			if len(seen[pid]) != len(seen[0]) {
				t.Fatalf("seed %d: helper %d saw %d responses, helper 0 saw %d",
					seed, pid, len(seen[pid]), len(seen[0]))
			}
			for k := range seen[pid] {
				if seen[pid][k] != seen[0][k] {
					t.Fatalf("seed %d: helper %d response %d = %d, helper 0 saw %d",
						seed, pid, k, seen[pid][k], seen[0][k])
				}
			}
		}
	}
}

// TestRacingThunksOnSharedCell: two distinct Execs racing on one cell
// (allowed by the paper, footnote 1) must each apply exactly once and
// the total must reflect both.
func TestRacingThunksOnSharedCell(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		const perThunkHelpers = 3
		ctr := NewCell(0)
		// Two thunks, each CAS-increments the counter by 1, retrying on
		// failure (retry is new ops, bounded by budget).
		mk := func() *Exec {
			return NewExec(func(r *Run) {
				for k := 0; k < 40; k++ {
					v := r.Read(ctr)
					if r.CAS(ctr, v, v+1) {
						return
					}
				}
				t.Error("CAS increment did not complete in budget")
			}, 90)
		}
		x1, x2 := mk(), mk()
		sim := sched.New(sched.NewRandom(2*perThunkHelpers, seed), seed)
		for i := 0; i < perThunkHelpers; i++ {
			sim.Spawn(func(e env.Env) { x1.Execute(e) })
			sim.Spawn(func(e env.Env) { x2.Execute(e) })
		}
		if err := sim.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if got := ctr.Load(e); got != 2 {
			t.Fatalf("seed %d: counter = %d, want 2", seed, got)
		}
	}
}

func TestExceedMaxOpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on op overflow")
		}
	}()
	e := env.NewNative(0, 1)
	c := NewCell(0)
	x := NewExec(func(r *Run) {
		r.Read(c)
		r.Read(c)
	}, 1)
	x.Execute(e)
}

func TestNonDeterministicBodyDetected(t *testing.T) {
	// A body whose op sequence depends on who runs it must be caught by
	// replay validation.
	e := env.NewNative(0, 1)
	a, b := NewCell(0), NewCell(0)
	first := true
	x := NewExec(func(r *Run) {
		if first {
			first = false
			r.Read(a)
		} else {
			r.Read(b) // diverges: same op index, different cell
		}
	}, 2)
	x.Execute(e)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on divergent replay")
		}
	}()
	x.Execute(e)
}

func TestNewExecPanicsOnNegativeMaxOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewExec(func(r *Run) {}, -1)
}

func TestWriteToSameCellTwice(t *testing.T) {
	// Consecutive writes to the same cell must both apply, in order.
	for seed := uint64(1); seed <= 30; seed++ {
		c := NewCell(0)
		x := NewExec(func(r *Run) {
			r.Write(c, 1)
			r.Write(c, 2)
			r.Write(c, 3)
		}, 3)
		sim := sched.New(sched.NewRandom(4, seed), seed)
		for i := 0; i < 4; i++ {
			sim.Spawn(func(e env.Env) { x.Execute(e) })
		}
		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		if got := c.Load(e); got != 3 {
			t.Fatalf("seed %d: c = %d, want 3", seed, got)
		}
	}
}

func TestConstantOverheadPerOp(t *testing.T) {
	// Solo execution: steps per op must be bounded by a small constant
	// (Theorem 4.2 (2)).
	e := env.NewNative(0, 1)
	cells := make([]*Cell, 64)
	for i := range cells {
		cells[i] = NewCell(uint64(i))
	}
	x := NewExec(func(r *Run) {
		for _, c := range cells {
			v := r.Read(c)
			r.Write(c, v+1)
			r.CAS(c, v+1, v+2)
		}
	}, 3*64)
	before := e.Steps()
	x.Execute(e)
	steps := e.Steps() - before
	perOp := float64(steps) / float64(3*64)
	if perOp > 8 {
		t.Fatalf("steps per op = %.1f, want <= 8", perOp)
	}
}

func TestQuickRandomOpSequences(t *testing.T) {
	// Property: for random op scripts, concurrent helped execution ends
	// in the same memory state as one sequential execution.
	type op struct {
		Kind uint8
		Cell uint8
		Val  uint8
	}
	f := func(script []op, seed uint64) bool {
		if len(script) > 50 {
			script = script[:50]
		}
		run := func(concurrent bool) []uint64 {
			cells := make([]*Cell, 4)
			for i := range cells {
				cells[i] = NewCell(uint64(i))
			}
			body := func(r *Run) {
				for _, o := range script {
					c := cells[int(o.Cell)%len(cells)]
					switch o.Kind % 3 {
					case 0:
						r.Read(c)
					case 1:
						r.Write(c, uint64(o.Val))
					case 2:
						v := r.Read(c)
						r.CAS(c, v, uint64(o.Val))
					}
				}
			}
			x := NewExec(body, 2*len(script)+1)
			if concurrent {
				sim := sched.New(sched.NewRandom(3, seed), seed)
				for i := 0; i < 3; i++ {
					sim.Spawn(func(e env.Env) { x.Execute(e) })
				}
				if err := sim.Run(5_000_000); err != nil {
					return nil
				}
			} else {
				x.Execute(env.NewNative(0, seed))
			}
			e := env.NewNative(99, 1)
			out := make([]uint64, len(cells))
			for i, c := range cells {
				out[i] = c.Load(e)
			}
			return out
		}
		seq, conc := run(false), run(true)
		if conc == nil {
			return false
		}
		for i := range seq {
			if seq[i] != conc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
