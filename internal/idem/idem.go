// Package idem implements the paper's idempotence construction
// (Section 4.1, Theorem 4.2): any thunk using only Read, Write and CAS
// on shared memory is simulated — with constant overhead per operation
// — so that it becomes idempotent (Definition 4.1) and linearizable.
//
// Idempotence means that in any execution consisting of interleaved
// runs of the thunk (one process executing it plus any number of
// helpers re-executing it), the combined effect on shared memory is
// that of exactly one run, ending at the response of the first run to
// finish. This is what lets Algorithm 3's helpers execute a winner's
// critical section on its behalf without double-applying its effects.
//
// # Construction
//
// A thunk's code is deterministic given the responses of its shared
// memory operations, so every run issues the same operation sequence;
// the i-th operation of any run is "operation i". Each Exec (one
// logical thunk execution, possibly run by many helpers) carries a
// response log with one slot per operation. The log slot is the
// canonical outcome of the operation: the first run to fill it decides,
// and every other run adopts the logged response instead of its own.
//
// Shared cells always hold immutable boxed values. Effectful
// operations (Write, CAS) never mutate a cell directly; they install a
// unique operation descriptor into the cell by CAS and then resolve it:
//
//  1. if the log slot is already filled, the operation is done — adopt
//     the logged response and apply no effect;
//  2. otherwise read the cell; if it holds another descriptor, help
//     resolve it first (so operations cannot be blocked — the
//     construction is itself non-blocking);
//  3. install this run's descriptor over the observed box by CAS;
//  4. resolve: race to CAS the response into the log slot; if this
//     descriptor's installation is the one recorded in the log, replace
//     the descriptor with the operation's result value — otherwise the
//     operation already took effect through an earlier installation, so
//     undo by restoring the displaced box, a net no-op on memory.
//
// Boxes are freshly allocated pointers, so an install CAS can never
// succeed against a stale snapshot via ABA, which is what makes step 4
// sound: at most one installation per operation is ever recorded, so
// the operation's effect is applied exactly once, at the moment of that
// installation (its linearization point).
//
// Reads adopt the first logged value; failed CASes are logged at the
// moment a helper observes a conflicting value.
//
// # Cost
//
// Every operation takes O(1) steps plus O(1) per interfering cell
// update during the operation. Helpers of the same Exec interfere at
// most a constant number of times per operation (install + resolve),
// so in race-free critical sections the overhead is a constant factor,
// matching Theorem 4.2; concurrent races from other thunks (which the
// paper explicitly permits, footnote 1) are charged to the interferer.
package idem

import (
	"fmt"
	"sync/atomic"

	"wflocks/internal/arena"
	"wflocks/internal/env"
)

// arenas is the per-process allocation state for the construction's
// published objects. Boxes, descriptors, responses, execs and logs are
// all read by helpers at unbounded staleness, so none of them may ever
// be recycled — the bump arenas hand out each pointer exactly once and
// abandon full chunks to the garbage collector, which preserves the
// freshness invariant (see the ABA discussion above) while amortizing
// the hot path to ~1/256 of a heap allocation per object.
type arenas struct {
	boxes arena.Arena[box]
	descs arena.Arena[opDesc]
	resps arena.Arena[response]
	cells arena.Arena[Cell]
	execs arena.Arena[Exec]
	runs  arena.Arena[Run]
	logs  arena.Slices[atomic.Pointer[response]]
}

// arenasOf returns e's idem arenas, creating them on first use, or nil
// when e carries no scratch state (the deterministic simulator). All
// allocation helpers below tolerate a nil receiver by falling back to
// plain heap allocation, which is always correct.
func arenasOf(e env.Env) *arenas {
	p := env.ScratchOf(e, env.ScratchIdem)
	if p == nil {
		return nil
	}
	a, ok := (*p).(*arenas)
	if !ok {
		a = &arenas{}
		*p = a
	}
	return a
}

func (a *arenas) newBox(val uint64, desc *opDesc) *box {
	if a == nil {
		return &box{val: val, desc: desc}
	}
	b := a.boxes.New()
	b.val, b.desc = val, desc
	return b
}

func (a *arenas) newResp(kind opKind, c *Cell, val uint64, by *opDesc) *response {
	if a == nil {
		return &response{kind: kind, cell: c, val: val, by: by}
	}
	r := a.resps.New()
	r.kind, r.cell, r.val, r.by = kind, c, val, by
	return r
}

func (a *arenas) newDesc(x *Exec, op int, kind opKind, newVal uint64, prev *box) *opDesc {
	if a == nil {
		return &opDesc{exec: x, op: op, kind: kind, newVal: newVal, prev: prev}
	}
	d := a.descs.New()
	d.exec, d.op, d.kind, d.newVal, d.prev = x, op, kind, newVal, prev
	return d
}

// opKind identifies the kind of a simulated shared-memory operation.
type opKind int32

const (
	opRead opKind = iota + 1
	opWrite
	opCAS
)

func (k opKind) String() string {
	switch k {
	case opRead:
		return "Read"
	case opWrite:
		return "Write"
	case opCAS:
		return "CAS"
	default:
		return fmt.Sprintf("opKind(%d)", int32(k))
	}
}

// box is an immutable cell state: either a plain value (desc == nil) or
// an installed operation descriptor. Boxes are never mutated after
// publication; freshness of the pointer rules out ABA on install.
type box struct {
	val  uint64
	desc *opDesc
}

// opDesc is an installed effectful operation (Write or CAS success
// path) of one Exec.
type opDesc struct {
	exec   *Exec
	op     int
	kind   opKind
	newVal uint64
	prev   *box // box displaced by the installation, for undo
}

// response is the canonical logged outcome of one operation.
type response struct {
	kind opKind
	cell *Cell
	val  uint64 // Read: value read; CAS: 1 = success, 0 = failure
	by   *opDesc
}

// Cell is a shared memory location usable inside idempotent thunks.
// Construct with NewCell.
type Cell struct {
	p atomic.Pointer[box]
}

// NewCell returns a cell holding v.
func NewCell(v uint64) *Cell {
	c := &Cell{}
	c.p.Store(&box{val: v})
	return c
}

// NewCellIn returns a cell holding v, allocated from e's process
// arena when available. Intended for short-lived cells created on hot
// paths (per-call parameter and result cells); long-lived structural
// cells should use NewCell.
func NewCellIn(e env.Env, v uint64) *Cell {
	a := arenasOf(e)
	if a == nil {
		return NewCell(v)
	}
	c := a.cells.New()
	c.p.Store(a.newBox(v, nil))
	return c
}

// Load reads the cell from outside any thunk, helping resolve any
// installed descriptor first.
func (c *Cell) Load(e env.Env) uint64 {
	for {
		e.Step()
		b := c.p.Load()
		if b.desc == nil {
			return b.val
		}
		resolve(e, c, b)
	}
}

// Store writes the cell from outside any thunk. It helps resolve any
// installed descriptor first so the write cannot bury one.
func (c *Cell) Store(e env.Env, v uint64) {
	nb := arenasOf(e).newBox(v, nil)
	for {
		e.Step()
		b := c.p.Load()
		if b.desc != nil {
			resolve(e, c, b)
			continue
		}
		e.Step()
		if c.p.CompareAndSwap(b, nb) {
			return
		}
	}
}

// CompareAndSwap performs a CAS from outside any thunk.
func (c *Cell) CompareAndSwap(e env.Env, old, new uint64) bool {
	for {
		e.Step()
		b := c.p.Load()
		if b.desc != nil {
			resolve(e, c, b)
			continue
		}
		if b.val != old {
			return false
		}
		e.Step()
		if c.p.CompareAndSwap(b, arenasOf(e).newBox(new, nil)) {
			return true
		}
	}
}

// Body is the code of a thunk. It must be deterministic: all decisions
// must derive from the responses of the Run's shared-memory operations
// (plus values captured at construction). It must not perform any other
// shared-memory access, must not block, and must not start nested
// tryLocks (the paper forbids lock nesting).
//
// One relaxation is permitted: because every run derives the same
// values from the canonical log, a body may publish results through
// plain atomic stores into per-execution result fields — all runs
// store the identical value, so the stores are race-free in effect and
// idempotent by construction.
type Body func(r *Run)

// Thunk is the allocation-free alternative to Body: a pre-built frame
// whose RunThunk method is the thunk's code, subject to the same
// determinism rules. Using a frame object (typically arena-allocated
// per call) instead of a fresh closure keeps the hot path free of
// closure captures.
type Thunk interface {
	RunThunk(r *Run)
}

// Exec is one logical execution of a thunk, shared by its initiating
// process and any helpers. All of them call Execute; the combined
// effect equals exactly one run of the body.
type Exec struct {
	body     Body
	thunk    Thunk
	log      []atomic.Pointer[response]
	finished atomic.Bool
}

// NewExec creates an execution of body that performs at most maxOps
// shared-memory operations (the paper's T bound).
func NewExec(body Body, maxOps int) *Exec {
	if maxOps < 0 {
		panic("idem: negative maxOps")
	}
	return &Exec{body: body, log: make([]atomic.Pointer[response], maxOps)}
}

// NewExecIn creates an execution of frame t performing at most maxOps
// shared-memory operations, drawing the exec and its response log from
// e's process arena when available. Exec objects are published to
// helpers and read at unbounded staleness, so they are never recycled;
// the arena only amortizes their allocation.
func NewExecIn(e env.Env, t Thunk, maxOps int) *Exec {
	if maxOps < 0 {
		panic("idem: negative maxOps")
	}
	a := arenasOf(e)
	if a == nil {
		return &Exec{thunk: t, log: make([]atomic.Pointer[response], maxOps)}
	}
	x := a.execs.New()
	x.body, x.thunk = nil, t
	x.log = a.logs.Make(maxOps)
	x.finished.Store(false)
	return x
}

// Execute runs or helps the thunk to completion. It may be called any
// number of times by any number of processes; memory effects apply as
// if the body ran exactly once (Definition 4.1).
func (x *Exec) Execute(e env.Env) {
	a := arenasOf(e)
	var r *Run
	if a == nil {
		r = &Run{e: e, x: x}
	} else {
		r = a.runs.New()
		*r = Run{e: e, x: x, ar: a}
	}
	if x.thunk != nil {
		x.thunk.RunThunk(r)
	} else {
		x.body(r)
	}
	x.finished.Store(true)
}

// Finished reports whether some run of the thunk has completed.
func (x *Exec) Finished() bool { return x.finished.Load() }

// Run is one process's run of an Exec; it carries the op cursor. It is
// created by Execute and passed to the Body.
type Run struct {
	e    env.Env
	x    *Exec
	ar   *arenas
	next int
}

// Env exposes the environment, e.g. for step accounting of private
// work inside the body.
func (r *Run) Env() env.Env { return r.e }

// logged returns the canonical response for op i if decided.
func (r *Run) logged(i int) *response {
	r.e.Step()
	return r.x.log[i].Load()
}

// slot bounds-checks and claims the next op index.
func (r *Run) slot() int {
	i := r.next
	if i >= len(r.x.log) {
		panic(fmt.Sprintf("idem: thunk exceeded maxOps=%d", len(r.x.log)))
	}
	r.next++
	return i
}

// validate panics if a replayed response disagrees with the op being
// issued — which means the body is not deterministic.
func validate(resp *response, kind opKind, c *Cell, i int) {
	if resp.kind != kind || resp.cell != c {
		panic(fmt.Sprintf(
			"idem: non-deterministic thunk: op %d replayed as %v on %p, logged %v on %p",
			i, kind, c, resp.kind, resp.cell))
	}
}

// Read performs an idempotent read of c: all runs of the thunk observe
// the same (first-logged) value.
func (r *Run) Read(c *Cell) uint64 {
	i := r.slot()
	for {
		if resp := r.logged(i); resp != nil {
			validate(resp, opRead, c, i)
			return resp.val
		}
		r.e.Step()
		b := c.p.Load()
		if b.desc != nil {
			resolve(r.e, c, b)
			continue
		}
		r.e.Step()
		r.x.log[i].CompareAndSwap(nil, r.ar.newResp(opRead, c, b.val, nil))
		resp := r.logged(i)
		validate(resp, opRead, c, i)
		return resp.val
	}
}

// Write performs an idempotent write of v to c: the write takes effect
// exactly once no matter how many runs execute it.
func (r *Run) Write(c *Cell, v uint64) {
	i := r.slot()
	for {
		if resp := r.logged(i); resp != nil {
			validate(resp, opWrite, c, i)
			return
		}
		r.e.Step()
		b := c.p.Load()
		if b.desc != nil {
			resolve(r.e, c, b)
			continue
		}
		d := r.ar.newDesc(r.x, i, opWrite, v, b)
		db := r.ar.newBox(0, d)
		r.e.Step()
		if c.p.CompareAndSwap(b, db) {
			resolve(r.e, c, db)
			return
		}
	}
}

// CAS performs an idempotent compare-and-swap on c: its success or
// failure is decided once (by the canonical log) and its effect applies
// at most once.
func (r *Run) CAS(c *Cell, old, new uint64) bool {
	i := r.slot()
	for {
		if resp := r.logged(i); resp != nil {
			validate(resp, opCAS, c, i)
			return resp.val == 1
		}
		r.e.Step()
		b := c.p.Load()
		if b.desc != nil {
			resolve(r.e, c, b)
			continue
		}
		if b.val != old {
			// Observed a conflicting value: the op fails, linearized at
			// this load — unless another run already decided otherwise.
			r.e.Step()
			r.x.log[i].CompareAndSwap(nil, r.ar.newResp(opCAS, c, 0, nil))
			resp := r.logged(i)
			validate(resp, opCAS, c, i)
			return resp.val == 1
		}
		d := r.ar.newDesc(r.x, i, opCAS, new, b)
		db := r.ar.newBox(0, d)
		r.e.Step()
		if c.p.CompareAndSwap(b, db) {
			resolve(r.e, c, db)
			resp := r.logged(i)
			validate(resp, opCAS, c, i)
			return resp.val == 1
		}
	}
}

// resolve completes an installed descriptor found in cell c inside box
// db. Any process may (and must, to make progress) resolve descriptors
// it encounters. The descriptor's effect is committed if and only if
// its installation is the one recorded in its op's log slot; otherwise
// the displaced box is restored, making the installation a no-op.
func resolve(e env.Env, c *Cell, db *box) {
	a := arenasOf(e)
	d := db.desc
	slot := &d.exec.log[d.op]
	e.Step()
	slot.CompareAndSwap(nil, a.newResp(d.kind, c, 1, d))
	e.Step()
	resp := slot.Load()
	e.Step()
	if resp.by == d {
		c.p.CompareAndSwap(db, a.newBox(d.newVal, nil))
	} else {
		c.p.CompareAndSwap(db, d.prev)
	}
}
