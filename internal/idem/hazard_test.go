package idem

import (
	"errors"
	"testing"

	"wflocks/internal/env"
	"wflocks/internal/sched"
)

// These tests pin down the specific interleaving hazards the
// descriptor-install protocol exists to defeat (see the package
// comment's construction notes). They complement the randomized
// appears-once tests with adversarially shaped schedules.

// TestLateHelperDoesNotReapply: a helper frozen mid-operation must not
// re-apply the operation's effect after the thunk finished and the
// cell moved on — the classic stale-write hazard.
func TestLateHelperDoesNotReapply(t *testing.T) {
	for _, freezeAt := range []uint64{1, 2, 3, 4, 5, 6, 8, 10, 15, 20} {
		c := NewCell(0)
		x := NewExec(func(r *Run) {
			r.CAS(c, 0, 1)
		}, 1)
		// Process 0: helper that gets frozen mid-protocol at freezeAt of
		// its own steps, waking only much later.
		// Process 1: completes the thunk normally.
		// Process 2: after the thunk finishes, resets the cell to 0
		// (an ABA the protocol must tolerate), then idles.
		schedule := &sched.Stalling{
			Base: sched.RoundRobin{N: 3},
			// Freeze pid 0 between global steps; round-robin means its
			// k-th own step is global step 3k, approximately.
			Windows: []sched.StallWindow{{Pid: 0, From: 3 * freezeAt, To: 3000, Redirected: 1}},
		}
		sim := sched.New(schedule, 7)
		sim.Spawn(func(e env.Env) { x.Execute(e) })
		sim.Spawn(func(e env.Env) { x.Execute(e) })
		resetDone := false
		sim.Spawn(func(e env.Env) {
			for !x.Finished() {
				e.Step()
			}
			c.Store(e, 0)
			resetDone = true
		})
		err := sim.Run(100_000)
		if err != nil && !errors.Is(err, sched.ErrStepLimit) {
			t.Fatalf("freeze@%d: %v", freezeAt, err)
		}
		if !resetDone {
			t.Fatalf("freeze@%d: resetter never ran", freezeAt)
		}
		e := env.NewNative(99, 1)
		if got := c.Load(e); got != 0 {
			t.Fatalf("freeze@%d: cell = %d after reset — a late helper re-applied the CAS", freezeAt, got)
		}
	}
}

// TestFrozenInstallerResolvedByOthers: if the process that installed an
// operation descriptor freezes before resolving it, any other process
// touching the cell must complete the resolution (non-blocking
// helping), so the cell never stays wedged on a descriptor.
func TestFrozenInstallerResolvedByOthers(t *testing.T) {
	for freezeAt := uint64(1); freezeAt <= 12; freezeAt++ {
		c := NewCell(5)
		x := NewExec(func(r *Run) {
			r.Write(c, 9)
		}, 1)
		schedule := &sched.Stalling{
			Base:    sched.RoundRobin{N: 2},
			Windows: []sched.StallWindow{{Pid: 0, From: 2 * freezeAt, To: ^uint64(0), Redirected: 1}},
		}
		sim := sched.New(schedule, 3)
		sim.Spawn(func(e env.Env) { x.Execute(e) }) // may freeze mid-install
		var observed uint64
		sim.Spawn(func(e env.Env) {
			// A plain reader: must always get a value, never hang on an
			// unresolved descriptor, and the value must be 5 or 9.
			for k := 0; k < 50; k++ {
				observed = c.Load(e)
				if observed != 5 && observed != 9 {
					t.Errorf("freeze@%d: impossible value %d", freezeAt, observed)
				}
			}
		})
		err := sim.Run(100_000)
		if err != nil && !errors.Is(err, sched.ErrStepLimit) {
			t.Fatalf("freeze@%d: %v", freezeAt, err)
		}
	}
}

// TestTwoThunksCASSameOld: two distinct thunks CASing from the same
// expected value — exactly one may succeed (the linearizability hazard
// that breaks naive log-then-apply designs).
func TestTwoThunksCASSameOld(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		c := NewCell(5)
		mk := func(newVal uint64, out *uint64) *Exec {
			return NewExec(func(r *Run) {
				if r.CAS(c, 5, newVal) {
					*out = 1
				} else {
					*out = 0
				}
			}, 1)
		}
		var ok1, ok2 uint64
		x1 := mk(7, &ok1)
		x2 := mk(9, &ok2)
		sim := sched.New(sched.NewRandom(2, seed), seed)
		sim.Spawn(func(e env.Env) { x1.Execute(e) })
		sim.Spawn(func(e env.Env) { x2.Execute(e) })
		if err := sim.Run(100_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ok1+ok2 != 1 {
			t.Fatalf("seed %d: %d CASes from the same old succeeded, want exactly 1", seed, ok1+ok2)
		}
		e := env.NewNative(99, 1)
		want := uint64(7)
		if ok2 == 1 {
			want = 9
		}
		if got := c.Load(e); got != want {
			t.Fatalf("seed %d: cell = %d, want %d", seed, got, want)
		}
	}
}

// TestHelpersObserveFailedCASConsistently: when the canonical outcome
// of a CAS is failure, every run must report failure, even runs that
// observed the cell holding the expected value at some instant.
func TestHelpersObserveFailedCASConsistently(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		c := NewCell(1)
		results := make([]uint64, 3) // 2 = unset
		for i := range results {
			results[i] = 2
		}
		x := NewExec(func(r *Run) {
			ok := r.CAS(c, 0, 8) // fails: cell holds 1
			pid := r.Env().Pid()
			if ok {
				results[pid] = 1
			} else {
				results[pid] = 0
			}
		}, 1)
		sim := sched.New(sched.NewRandom(3, seed), seed)
		for i := 0; i < 3; i++ {
			sim.Spawn(func(e env.Env) { x.Execute(e) })
		}
		if err := sim.Run(100_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for pid, r := range results {
			if r != 0 {
				t.Fatalf("seed %d: run on pid %d reported %d, want failure(0)", seed, pid, r)
			}
		}
		e := env.NewNative(99, 1)
		if got := c.Load(e); got != 1 {
			t.Fatalf("seed %d: failed CAS changed the cell to %d", seed, got)
		}
	}
}

// TestInterleavedThunksOnDisjointCells: thunks on disjoint cells cannot
// interfere at all — a sanity floor for the descriptor protocol.
func TestInterleavedThunksOnDisjointCells(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cells := []*Cell{NewCell(0), NewCell(0), NewCell(0), NewCell(0)}
		sim := sched.New(sched.NewRandom(4, seed), seed)
		for i := 0; i < 4; i++ {
			i := i
			x := NewExec(func(r *Run) {
				for k := 0; k < 10; k++ {
					v := r.Read(cells[i])
					r.Write(cells[i], v+1)
				}
			}, 20)
			sim.Spawn(func(e env.Env) { x.Execute(e) })
		}
		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		e := env.NewNative(99, 1)
		for i, c := range cells {
			if got := c.Load(e); got != 10 {
				t.Fatalf("seed %d: cell %d = %d, want 10", seed, i, got)
			}
		}
	}
}
