package idem

import "wflocks/internal/env"

// Multi-word cell support. A value wider than one machine word is
// stored as a fixed-length group of Cells; each word is individually
// idempotent, and the group as a whole is consistent exactly when it is
// accessed under mutual exclusion (i.e. inside critical sections whose
// locks guard the group). Outside critical sections a multi-word read
// is not an atomic snapshot — callers that need one must go through a
// lock.
//
// Each word access is one simulated operation, so a W-word read or
// write consumes W of the thunk's maxOps budget.

// NewCells returns n cells initialized from init. Words beyond
// len(init) start at zero; init may be nil.
func NewCells(n int, init []uint64) []*Cell {
	cells := make([]*Cell, n)
	for i := range cells {
		var v uint64
		if i < len(init) {
			v = init[i]
		}
		cells[i] = NewCell(v)
	}
	return cells
}

// ReadWords performs idempotent reads of each cell in order, storing
// the values into dst. len(dst) must be at least len(cells).
func (r *Run) ReadWords(cells []*Cell, dst []uint64) {
	for i, c := range cells {
		dst[i] = r.Read(c)
	}
}

// WriteWords performs idempotent writes of src's values to the cells in
// order. len(src) must be at least len(cells).
func (r *Run) WriteWords(cells []*Cell, src []uint64) {
	for i, c := range cells {
		r.Write(c, src[i])
	}
}

// LoadWords reads each cell from outside any thunk into dst. The words
// are read one at a time: concurrent writers can interleave, so the
// result is only a consistent snapshot when writers are quiescent or
// the group is guarded by a lock the caller holds.
func LoadWords(e env.Env, cells []*Cell, dst []uint64) {
	for i, c := range cells {
		dst[i] = c.Load(e)
	}
}

// StoreWords writes src's values to the cells from outside any thunk.
func StoreWords(e env.Env, cells []*Cell, src []uint64) {
	for i, c := range cells {
		c.Store(e, src[i])
	}
}
