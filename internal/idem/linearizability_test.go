package idem

import (
	"fmt"
	"testing"

	"wflocks/internal/env"
	"wflocks/internal/linearize"
	"wflocks/internal/sched"
)

// TestSimulatedOpsLinearizable checks Theorem 4.2(3): the simulated
// memory operations of idempotent thunks are linearizable. Two thunks
// (each run by its own process) and a direct observer race on one
// cell; the recorded history must admit a linearization under the
// sequential register specification.
func TestSimulatedOpsLinearizable(t *testing.T) {
	pack := func(old, new uint64) uint64 { return old<<32 | new }
	for seed := uint64(1); seed <= 120; seed++ {
		c := NewCell(0)
		clock := new(uint64)
		tick := func() uint64 { *clock++; return *clock }
		var history []linearize.Op
		record := func(op linearize.Op) { history = append(history, op) }

		sim := sched.New(sched.NewRandom(3, seed), seed)

		// Thunk 1: read, write, read.
		sim.Spawn(func(e env.Env) {
			x := NewExec(func(r *Run) {
				start := tick()
				v := r.Read(c)
				record(linearize.Op{Proc: 0, Name: "read", Ret: fmt.Sprint(v),
					Start: start, End: tick()})
				start = tick()
				r.Write(c, 10)
				record(linearize.Op{Proc: 0, Name: "write", Arg: 10, Ret: "ok",
					Start: start, End: tick()})
				start = tick()
				v = r.Read(c)
				record(linearize.Op{Proc: 0, Name: "read", Ret: fmt.Sprint(v),
					Start: start, End: tick()})
			}, 3)
			x.Execute(e)
		})

		// Thunk 2: two CASes.
		sim.Spawn(func(e env.Env) {
			x := NewExec(func(r *Run) {
				start := tick()
				ok := r.CAS(c, 0, 20)
				record(linearize.Op{Proc: 1, Name: "cas", Arg: pack(0, 20),
					Ret: fmt.Sprint(ok), Start: start, End: tick()})
				start = tick()
				ok = r.CAS(c, 10, 30)
				record(linearize.Op{Proc: 1, Name: "cas", Arg: pack(10, 30),
					Ret: fmt.Sprint(ok), Start: start, End: tick()})
			}, 2)
			x.Execute(e)
		})

		// Direct observer using the out-of-thunk Cell API.
		sim.Spawn(func(e env.Env) {
			for k := 0; k < 2; k++ {
				start := tick()
				v := c.Load(e)
				record(linearize.Op{Proc: 2, Name: "read", Ret: fmt.Sprint(v),
					Start: start, End: tick()})
				env.StallSteps(e, 3)
			}
		})

		if err := sim.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, why := linearize.Check(linearize.RegisterSpec(0), history)
		if !ok {
			t.Fatalf("seed %d: simulated ops not linearizable:\n%s", seed, why)
		}
	}
}

// TestStoreCASMixLinearizable exercises the out-of-thunk Cell API under
// concurrency: Stores and CASes from three processes.
func TestStoreCASMixLinearizable(t *testing.T) {
	pack := func(old, new uint64) uint64 { return old<<32 | new }
	for seed := uint64(1); seed <= 80; seed++ {
		c := NewCell(1)
		clock := new(uint64)
		tick := func() uint64 { *clock++; return *clock }
		var history []linearize.Op
		sim := sched.New(sched.NewRandom(3, seed), seed)
		sim.Spawn(func(e env.Env) {
			start := tick()
			c.Store(e, 2)
			history = append(history, linearize.Op{Proc: 0, Name: "write", Arg: 2,
				Ret: "ok", Start: start, End: tick()})
		})
		sim.Spawn(func(e env.Env) {
			start := tick()
			ok := c.CompareAndSwap(e, 1, 3)
			history = append(history, linearize.Op{Proc: 1, Name: "cas",
				Arg: pack(1, 3), Ret: fmt.Sprint(ok), Start: start, End: tick()})
		})
		sim.Spawn(func(e env.Env) {
			start := tick()
			v := c.Load(e)
			history = append(history, linearize.Op{Proc: 2, Name: "read",
				Ret: fmt.Sprint(v), Start: start, End: tick()})
		})
		if err := sim.Run(100_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok, why := linearize.Check(linearize.RegisterSpec(1), history)
		if !ok {
			t.Fatalf("seed %d: cell API not linearizable:\n%s", seed, why)
		}
	}
}
