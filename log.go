package wflocks

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wflocks/internal/arena"
	"wflocks/internal/idem"
	"wflocks/internal/stats"
	"wflocks/internal/table"
)

// Log is a generic segmented append-only broadcast log: producers
// append once, every attached Cursor reads the full stream
// independently, and fully-consumed segments are reclaimed by trim.
// Where Queue and WorkPool are consume-once, Log is the fan-out shape —
// pub/sub, replay, pipeline broadcast — and it is built from the same
// parts: each shard is a qring whose tickets, slots and per-slot
// sequence numbers live in typed cells, guarded by one wait-free lock.
//
// Appends are single-lock critical sections on the shard lock
// (batched via AppendBatch, so one acquisition moves up to the
// WithLogBatch size). Cursor positions live in typed cells too, and
// every write to a position — cursor advance (Next/NextBatch), attach,
// close, and TrimTo's forced clamp — runs as a two-lock critical
// section over {shard lock, cursor lock}, the paper's multi-lock
// acquisition at L=2. That is the property the whole structure leans
// on: reclamation reads the minimum cursor position under the shard
// lock, and because a position can only move under that same lock, a
// consumer stalled mid-advance (a preempted vCPU, a GC pause) is
// *helped past its advance* by the next acquirer — trim sees a
// quiescent minimum and proceeds. A lagging subscriber can hold
// retention back (that is the contract); a *stalled* one can never
// wedge trim, appends, or other readers.
//
// Capacity is fixed (per shard, rounded to a power of two): growing a
// ring would unbound the worst-case critical section, voiding the T
// bound. When a shard fills, the append critical section itself
// reclaims up to one fully-consumed segment (WithLogSegment) before
// giving up, so steady-state producers ride behind the slowest cursor
// without explicit Trim calls; TrimTo bounds retention by force,
// advancing lagging cursors and counting what they lost as drops.
//
// Entries are totally ordered within a shard, not across shards —
// AppendKeyed pins a key to one shard, making per-key order a hard
// guarantee (unlike WorkPool's TryEnqueueKeyed, keyed appends never
// fall over to another shard: affinity here is an ordering contract,
// not a locality hint). Construct with NewLog (integer elements) or
// NewLogOf (explicit codec); the manager needs WithMaxLocks(2) and a
// WithMaxCriticalSteps bound covering LogCriticalSteps. All methods
// are safe for concurrent use.
type Log[T any] struct {
	m  *Manager
	vc Codec[T]

	// scalarV is vc when the element codec is single-word, enabling
	// the allocation-free append/next frames (the element rides the
	// frame's atomic result word); nil for multi-word elements, which
	// fall back to result cells.
	scalarV ScalarCodec[T]

	rings []qring[T]
	locks []*Lock // locks[s] guards rings[s] and every pos[s]/active[s]

	shardMask uint64
	segment   int
	segMask   uint64
	batch     int

	slots []*logSlot[T]

	opBudget    int // single-item or admin (trim/attach/clamp) section
	batchBudget int // batch-of-`batch` critical section

	// rr spreads un-keyed appends; a plain atomic, not a cell — it only
	// routes traffic, so it needs no critical-section atomicity.
	rr atomic.Uint64

	// mu guards the Go-side consumer-slot bookkeeping (claimed flags).
	// Cell-resident cursor state is never touched under it.
	mu sync.Mutex
}

// logSlot is one consumer slot: the cell-resident cursor state for a
// (possibly re-attached) Cursor. The slot pool is fixed at
// construction (WithLogConsumers) because trim critical sections scan
// every slot — a dynamic consumer set would unbound the budget.
type logSlot[T any] struct {
	lock    *Lock
	active  []*Cell[uint64] // per shard: 1 while a cursor is attached
	pos     []*Cell[uint64] // per shard: next read ticket
	reads   *Cell[uint64]   // delivered entries (all shards)
	drops   *Cell[uint64]   // entries lost to TrimTo clamps
	pairs   [][]*Lock       // per shard: {shard lock, slot lock} in ID order
	claimed bool            // under Log.mu
}

// Cursor is one subscriber's handle onto a Log: an independent read
// position per shard, advanced by Next/TryNext/NextBatch. A Cursor may
// be shared by goroutines (each entry is then delivered to exactly one
// of them); use one Cursor per logical subscriber. Close releases the
// slot for a future NewCursor.
type Cursor[T any] struct {
	lg     *Log[T]
	slot   *logSlot[T]
	idx    int
	rr     atomic.Uint64
	closed atomic.Bool
}

// Default log shape: 8 shards, 1024 slots total, 64-entry segments,
// batches of 8, 8 consumer slots.
const (
	defaultLogShards    = 8
	defaultLogCapacity  = 1024
	defaultLogSegment   = 64
	defaultLogBatch     = 8
	defaultLogConsumers = 8
)

// LogOption configures a Log at construction.
type LogOption func(*logConfig) error

type logConfig struct {
	shards    int
	capacity  int
	segment   int
	batch     int
	consumers int
}

// WithLogShards sets the number of sub-rings, rounded up to a power of
// two (default 8). More shards mean fewer producers colliding on any
// one lock; the cost is that total order holds only within a shard.
func WithLogShards(n int) LogOption {
	return func(c *logConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithLogShards: shard count must be positive, got %d", n)
		}
		c.shards = table.CeilPow2(n)
		return nil
	}
}

// WithLogCapacity sets the log's total slot count (default 1024),
// split evenly across shards with each share rounded up to a power of
// two — so the effective capacity, reported by Cap, may exceed the
// request. Capacity bounds how far producers can run ahead of the
// slowest attached cursor.
func WithLogCapacity(n int) LogOption {
	return func(c *logConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithLogCapacity: capacity must be positive, got %d", n)
		}
		c.capacity = n
		return nil
	}
}

// WithLogSegment sets the reclamation granularity in entries, rounded
// up to a power of two (default 64): trim frees whole segments, and an
// append or trim critical section frees at most one segment, so the
// segment size is a budget term in LogCriticalSteps. It must not
// exceed the per-shard capacity.
func WithLogSegment(n int) LogOption {
	return func(c *logConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithLogSegment: segment must be positive, got %d", n)
		}
		c.segment = table.CeilPow2(n)
		return nil
	}
}

// WithLogBatch sets the largest number of entries one AppendBatch or
// NextBatch critical section moves (default 8), with the same budget
// trade-off as WithQueueBatch.
func WithLogBatch(n int) LogOption {
	return func(c *logConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithLogBatch: batch must be positive, got %d", n)
		}
		c.batch = n
		return nil
	}
}

// WithLogConsumers sets the consumer-slot pool size (default 8): the
// maximum number of concurrently attached cursors. The pool is fixed
// because trim critical sections scan every slot for the minimum
// position — the slot count is a budget term in LogCriticalSteps.
func WithLogConsumers(n int) LogOption {
	return func(c *logConfig) error {
		if n <= 0 {
			return fmt.Errorf("wflocks: WithLogConsumers: consumer count must be positive, got %d", n)
		}
		c.consumers = n
		return nil
	}
}

// Per-item and fixed overheads of a log critical section, in
// single-word cell operations. A worst-case item is an append: ticket
// reads (2), the slot write (valueWords), the sequence write (1), the
// ticket write (1) and the counter read+write (2); cursor advances
// cost the element read plus the result write (valueWords each) with
// the position and counter writes amortized once per section. The
// fixed tail covers the min-cursor scan's tail read, one reclaim's
// head/counter writes, and the outcome/count routing.
const (
	logItemOverhead  = 8
	logFixedOverhead = 16
)

// LogCriticalSteps returns the WithMaxCriticalSteps bound T a Manager
// needs to host a Log whose elements are valueWords words wide, whose
// batch operations move up to batch entries per critical section
// (WithLogBatch), with consumers cursor slots (WithLogConsumers) and
// segment-entry reclamation granules (WithLogSegment). The three
// non-batch terms are what distinguish the log's budget from
// QueueCriticalSteps: a trim — standalone or riding inside a full
// append — reads every slot's position (2 ops per consumer) and frees
// at most one segment (one sequence write per entry).
func LogCriticalSteps(valueWords, batch, consumers, segment int) int {
	if batch < 1 {
		batch = 1
	}
	if consumers < 1 {
		consumers = 1
	}
	if segment < 1 {
		segment = 1
	}
	return batch*(2*valueWords+logItemOverhead) + 2*consumers + segment + logFixedOverhead
}

// NewLog creates a log of integer elements, the common case, using the
// built-in single-word codec. See NewLogOf for arbitrary types.
func NewLog[T Integer](m *Manager, opts ...LogOption) (*Log[T], error) {
	return NewLogOf[T](m, IntegerCodec[T](), opts...)
}

// NewLogOf creates a log whose elements are encoded by the given
// codec. The manager must be configured with WithMaxLocks(2) or more —
// cursor advance and trim clamp are two-lock critical sections
// regardless of the shard count — and a WithMaxCriticalSteps bound
// covering LogCriticalSteps; either shortfall is reported as an error.
func NewLogOf[T any](m *Manager, vc Codec[T], opts ...LogOption) (*Log[T], error) {
	cfg := logConfig{
		shards:    defaultLogShards,
		capacity:  defaultLogCapacity,
		segment:   defaultLogSegment,
		batch:     defaultLogBatch,
		consumers: defaultLogConsumers,
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if m.cfg.maxLocks < 2 {
		return nil, fmt.Errorf(
			"wflocks: NewLogOf: cursor advance is a two-lock critical section; configure the manager with WithMaxLocks(2) or more")
	}
	perShard := table.CeilPow2((cfg.capacity + cfg.shards - 1) / cfg.shards)
	if cfg.segment > perShard {
		return nil, fmt.Errorf(
			"wflocks: NewLogOf: segment %d exceeds the per-shard capacity %d (capacity %d over %d shards)",
			cfg.segment, perShard, cfg.capacity, cfg.shards)
	}
	batchBudget := LogCriticalSteps(vc.Words(), cfg.batch, cfg.consumers, cfg.segment)
	if batchBudget > m.cfg.maxCritical {
		return nil, fmt.Errorf(
			"wflocks: NewLogOf: batch %d, %d consumers, segment %d with %d-word elements needs "+
				"WithMaxCriticalSteps(%d), manager has %d (see LogCriticalSteps)",
			cfg.batch, cfg.consumers, cfg.segment, vc.Words(), batchBudget, m.cfg.maxCritical)
	}
	l := &Log[T]{
		m:           m,
		vc:          vc,
		rings:       make([]qring[T], cfg.shards),
		locks:       make([]*Lock, cfg.shards),
		shardMask:   uint64(cfg.shards - 1),
		segment:     cfg.segment,
		segMask:     uint64(cfg.segment - 1),
		batch:       cfg.batch,
		slots:       make([]*logSlot[T], cfg.consumers),
		opBudget:    LogCriticalSteps(vc.Words(), 1, cfg.consumers, cfg.segment),
		batchBudget: batchBudget,
	}
	l.scalarV, _ = vc.(ScalarCodec[T])
	for s := range l.rings {
		l.rings[s] = newQring(vc, perShard)
		l.locks[s] = m.NewLock()
	}
	for i := range l.slots {
		cs := &logSlot[T]{
			lock:   m.NewLock(),
			active: make([]*Cell[uint64], cfg.shards),
			pos:    make([]*Cell[uint64], cfg.shards),
			reads:  NewCell(uint64(0)),
			drops:  NewCell(uint64(0)),
			pairs:  make([][]*Lock, cfg.shards),
		}
		for s := range l.rings {
			cs.active[s] = NewCell(uint64(0))
			cs.pos[s] = NewCell(uint64(0))
			pair := []*Lock{l.locks[s], cs.lock}
			sort.Slice(pair, func(a, b int) bool { return pair[a].ID() < pair[b].ID() })
			cs.pairs[s] = pair
		}
		l.slots[i] = cs
	}
	return l, nil
}

// Shards reports the shard count (after power-of-two rounding).
func (l *Log[T]) Shards() int { return len(l.rings) }

// Cap reports the total slot count after per-shard rounding; it is at
// least the WithLogCapacity request.
func (l *Log[T]) Cap() int { return len(l.rings) * l.rings[0].capacity }

// Segment reports the reclamation granularity in entries.
func (l *Log[T]) Segment() int { return l.segment }

// do runs a critical section on shard s's lock; doPair runs one on a
// prepared {shard, cursor} lock pair. Construction validated the
// budgets against the manager's bounds, so the only errors Lock could
// report here are impossible; surface them as panics, as in the other
// structures.
func (l *Log[T]) do(p *Process, s, maxOps int, body func(*Tx)) {
	if _, err := l.m.Lock(p, []*Lock{l.locks[s]}, maxOps, body); err != nil {
		panic("wflocks: Log: " + err.Error())
	}
}

func (l *Log[T]) doPair(p *Process, pair []*Lock, maxOps int, body func(*Tx)) {
	if _, err := l.m.Lock(p, pair, maxOps, body); err != nil {
		panic("wflocks: Log: " + err.Error())
	}
}

// lockFrameSet acquires a prepared lock set and runs frame t to
// completion, retrying failed attempts under the manager's
// RetryPolicy: the multi-lock sibling of lockFrame, used by the log's
// two-lock cursor-advance fast path. Each retry creates a fresh exec
// over the same frame, which is safe: a lost exec's body never runs.
func (m *Manager) lockFrameSet(p *Process, locks []*Lock, maxOps int, t idem.Thunk) {
	var t0 time.Time
	if m.rec != nil {
		t0 = time.Now()
	}
	for attempt := 1; ; attempt++ {
		if m.tryLockThunk(p, locks, maxOps, t) {
			if m.rec != nil {
				m.rec.RecAcquire(p.Pid(), uint64(time.Since(t0)))
			}
			return
		}
		m.retry.Wait(context.Background(), attempt)
	}
}

// reclaimSegment frees at most one fully-consumed segment of shard s
// inside a critical section, never freeing past tail-retain, and
// returns the number of entries freed. The reclamation point is the
// minimum over the tail and every attached slot's position, rounded
// down to a segment boundary — so the head stays segment-aligned. The
// scan is safe under the shard lock alone: every position write holds
// this same lock, and acquisition helps any stalled writer's section
// to completion first, so the minimum read here is always quiescent.
func (l *Log[T]) reclaimSegment(tx *Tx, s int, retain uint64) int {
	r := &l.rings[s]
	t := Get(tx, r.tail)
	min := uint64(0)
	if t > retain {
		min = t - retain
	}
	for _, cs := range l.slots {
		if Get(tx, cs.active[s]) != 0 {
			if p := Get(tx, cs.pos[s]); p < min {
				min = p
			}
		}
	}
	return r.reclaim(tx, min&^l.segMask, l.segment)
}

// appendOne appends v to shard s inside a critical section, reclaiming
// one consumed segment on the way if the ring is full; false means the
// shard stayed full even after reclamation (the slowest cursor pins the
// segment the append needs).
func (l *Log[T]) appendOne(tx *Tx, s int, v T) bool {
	r := &l.rings[s]
	if r.enqOne(tx, v) {
		return true
	}
	l.reclaimSegment(tx, s, 0)
	if r.enqOne(tx, v) {
		return true
	}
	Put(tx, r.fulls, Get(tx, r.fulls)+1)
	return false
}

// appendChunk appends chunk to shard s in one critical section,
// reclaiming at most one consumed segment (the budget allows one), and
// reports the number moved through n.
func (l *Log[T]) appendChunk(tx *Tx, s int, chunk []T, n *Cell[uint64]) {
	r := &l.rings[s]
	moved := uint64(0)
	reclaimed := false
	for _, v := range chunk {
		if !r.enqOne(tx, v) {
			if !reclaimed {
				reclaimed = true
				l.reclaimSegment(tx, s, 0)
				if r.enqOne(tx, v) {
					moved++
					continue
				}
			}
			Put(tx, r.fulls, Get(tx, r.fulls)+1)
			break
		}
		moved++
	}
	Put(tx, n, moved)
}

// Log frame operation kinds and result bits (see mapframe.go for the
// frame pattern: arena-fresh per call, parameters as plain fields,
// results through atomic fields every run derives identically).
const (
	lopAppend uint8 = iota + 1
	lopNext
)

const lresOK uint32 = 1

// logFrame is a single-entry log critical section in frame form.
type logFrame[T any] struct {
	lg   *Log[T]
	slot *logSlot[T]
	s    int
	op   uint8
	v    T

	resWord atomic.Uint64
	resBits atomic.Uint32
}

// RunThunk implements idem.Thunk.
func (f *logFrame[T]) RunThunk(r *idem.Run) {
	tx := newTx(r)
	lg := f.lg
	ring := &lg.rings[f.s]
	switch f.op {
	case lopAppend:
		if lg.appendOne(tx, f.s, f.v) {
			f.resBits.Store(lresOK)
		}
	case lopNext:
		if Get(tx, f.slot.active[f.s]) == 0 {
			return
		}
		pos := Get(tx, f.slot.pos[f.s])
		t := Get(tx, ring.tail)
		if pos == t {
			Put(tx, ring.empties, Get(tx, ring.empties)+1)
			return
		}
		f.resWord.Store(lg.scalarV.EncodeWord(Get(tx, ring.vals[int(pos&ring.mask)])))
		Put(tx, f.slot.pos[f.s], pos+1)
		Put(tx, f.slot.reads, Get(tx, f.slot.reads)+1)
		f.resBits.Store(lresOK)
	}
}

// logFrameFor draws a fresh frame for this log's type from p's
// per-structure arenas (created on the goroutine's first use).
func logFrameFor[T any](p *Process) *logFrame[T] {
	for _, s := range p.structs {
		if a, ok := s.(*arena.Arena[logFrame[T]]); ok {
			return a.New()
		}
	}
	a := &arena.Arena[logFrame[T]]{}
	p.structs = append(p.structs, a)
	return a.New()
}

// tryAppendShard appends v to shard s with one acquisition, on the
// frame fast path when the codec is scalar.
func (l *Log[T]) tryAppendShard(p *Process, s int, v T) bool {
	if l.scalarV != nil {
		f := logFrameFor[T](p)
		f.lg, f.s, f.op, f.v = l, s, lopAppend, v
		l.m.lockFrame(p, l.locks[s], l.opBudget, f)
		return f.resBits.Load()&lresOK != 0
	}
	ok := NewBoolCell(false)
	l.do(p, s, l.opBudget, func(tx *Tx) {
		if l.appendOne(tx, s, v) {
			Put(tx, ok, true)
		}
	})
	return ok.Get(p)
}

// tryAppendFrom probes each shard once, starting at start.
func (l *Log[T]) tryAppendFrom(p *Process, start uint64, v T) bool {
	for j := 0; j < len(l.rings); j++ {
		if l.tryAppendShard(p, int((start+uint64(j))&l.shardMask), v) {
			return true
		}
	}
	return false
}

// TryAppend appends v to the next shard in round-robin order, probing
// each shard at most once; it reports false only when every shard
// stayed full after in-section reclamation — that is, the slowest
// cursor (or the oldest unread entry, if no cursor is attached) is
// within one segment of the appender on every shard.
func (l *Log[T]) TryAppend(v T) bool {
	p := l.m.Acquire()
	defer l.m.Release(p)
	return l.tryAppendFrom(p, l.rr.Add(1)-1, v)
}

// TryAppendKeyed appends v to the shard selected by key's low bits,
// and only that shard: unlike WorkPool's keyed submit, there is no
// fallover, because landing all of a key's entries on one shard is
// exactly what makes per-key order a guarantee (entries are totally
// ordered within a shard). False means that shard is full. Callers
// needing a stable spread should pass a hash of the key: only the low
// bits select the shard.
func (l *Log[T]) TryAppendKeyed(key uint64, v T) bool {
	p := l.m.Acquire()
	defer l.m.Release(p)
	return l.tryAppendShard(p, int(key&l.shardMask), v)
}

// Append appends v, waiting while the log is full under the manager's
// RetryPolicy; the wait ends with an error wrapping ErrCanceled once
// ctx is done. A nil return means v was appended exactly once.
func (l *Log[T]) Append(ctx context.Context, v T) error {
	p := l.m.Acquire()
	defer l.m.Release(p)
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: log full after %d passes: %w", ErrCanceled, attempt-1, err)
		}
		if l.tryAppendFrom(p, l.rr.Add(1)-1, v) {
			return nil
		}
		l.m.retry.Wait(ctx, attempt)
	}
}

// AppendKeyed appends v with TryAppendKeyed's strict shard affinity,
// waiting while that shard is full under the Append retry contract.
func (l *Log[T]) AppendKeyed(ctx context.Context, key uint64, v T) error {
	p := l.m.Acquire()
	defer l.m.Release(p)
	s := int(key & l.shardMask)
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: log shard full after %d attempts: %w", ErrCanceled, attempt-1, err)
		}
		if l.tryAppendShard(p, s, v) {
			return nil
		}
		l.m.retry.Wait(ctx, attempt)
	}
}

// AppendBatch appends vs, amortizing lock acquisitions: entries are
// moved in chunks of up to the WithLogBatch size, each chunk one
// critical section on one round-robin shard (chunks are atomic —
// cursors see a chunk's entries appear together — and a chunk's
// entries are contiguous in its shard's order; the batch as a whole
// spreads across shards). When every shard is full it waits under the
// Append retry contract. It returns the number appended, which is
// len(vs) unless ctx was done first.
func (l *Log[T]) AppendBatch(ctx context.Context, vs []T) (int, error) {
	items := append([]T(nil), vs...) // bodies must not capture caller-owned memory
	p := l.m.Acquire()
	defer l.m.Release(p)
	done := 0
	attempt := 0
	for done < len(items) {
		attempt++
		if err := ctx.Err(); err != nil {
			return done, fmt.Errorf("%w: %d of %d appended: %w", ErrCanceled, done, len(items), err)
		}
		chunk := items[done:]
		if len(chunk) > l.batch {
			chunk = chunk[:l.batch]
		}
		moved := 0
		start := l.rr.Add(1) - 1
		for j := 0; j < len(l.rings) && moved == 0; j++ {
			s := int((start + uint64(j)) & l.shardMask)
			n := NewCell(uint64(0))
			l.do(p, s, l.batchBudget, func(tx *Tx) {
				l.appendChunk(tx, s, chunk, n)
			})
			moved = int(n.Get(p))
		}
		done += moved
		if moved == 0 {
			l.m.retry.Wait(ctx, attempt)
		} else {
			attempt = 0
		}
	}
	return done, nil
}

// Trim reclaims every fully-consumed segment: on each shard, segments
// below the minimum attached-cursor position (or below the tail, when
// no cursor is attached — an unsubscribed log retains nothing) are
// freed, one segment per critical section so every section stays
// within the trim budget. It returns the number of entries reclaimed.
// Producers normally never need to call Trim — append reclaims
// in-section when full — but periodic trims keep Len (and the window a
// new NewCursor replays) small.
func (l *Log[T]) Trim() int {
	return l.trim(0, false)
}

// TrimTo bounds retention: it reclaims until each shard retains at
// most retain entries, force-advancing any cursor lagging further than
// that — each clamp is a two-lock {shard, cursor} critical section,
// and the entries skipped are counted in the cursor's Drops. It
// returns the number of entries reclaimed. Use it to put a hard bound
// on the window a slow (or abandoned-without-Close) subscriber can pin.
func (l *Log[T]) TrimTo(retain int) int {
	if retain < 0 {
		retain = 0
	}
	return l.trim(uint64(retain), true)
}

func (l *Log[T]) trim(retain uint64, clamp bool) int {
	p := l.m.Acquire()
	defer l.m.Release(p)
	total := 0
	for s := range l.rings {
		if clamp {
			ring := &l.rings[s]
			for _, cs := range l.slots {
				cs := cs
				l.doPair(p, cs.pairs[s], l.opBudget, func(tx *Tx) {
					if Get(tx, cs.active[s]) == 0 {
						return
					}
					t := Get(tx, ring.tail)
					target := uint64(0)
					if t > retain {
						target = t - retain
					}
					pos := Get(tx, cs.pos[s])
					if pos < target {
						Put(tx, cs.drops, Get(tx, cs.drops)+(target-pos))
						Put(tx, cs.pos[s], target)
					}
				})
			}
		}
		for {
			freed := NewCell(uint64(0))
			l.do(p, s, l.opBudget, func(tx *Tx) {
				Put(tx, freed, uint64(l.reclaimSegment(tx, s, retain)))
			})
			n := int(freed.Get(p))
			total += n
			if n < l.segment {
				break
			}
		}
	}
	return total
}

// Len reports the number of retained entries: the sum of the shards'
// lock-free occupancy reads, with Queue.Len's consistency caveat.
func (l *Log[T]) Len() int {
	p := l.m.Acquire()
	defer l.m.Release(p)
	n := 0
	for s := range l.rings {
		n += l.rings[s].lenWith(p)
	}
	return n
}

// NewCursor attaches a subscriber at the oldest retained entry of
// every shard, replaying the retained window before new appends. It
// claims one of the WithLogConsumers slots and returns an error
// wrapping ErrLogConsumers when all slots are attached (Close a cursor
// to release its slot).
func (l *Log[T]) NewCursor() (*Cursor[T], error) {
	return l.newCursor(false)
}

// NewTailCursor attaches a subscriber at the current tail of every
// shard: it observes only entries appended after the attach, the
// live-subscription shape.
func (l *Log[T]) NewTailCursor() (*Cursor[T], error) {
	return l.newCursor(true)
}

func (l *Log[T]) newCursor(atTail bool) (*Cursor[T], error) {
	l.mu.Lock()
	var slot *logSlot[T]
	idx := -1
	for i, cs := range l.slots {
		if !cs.claimed {
			cs.claimed = true
			slot, idx = cs, i
			break
		}
	}
	l.mu.Unlock()
	if slot == nil {
		return nil, fmt.Errorf("%w: all %d slots attached (WithLogConsumers)", ErrLogConsumers, len(l.slots))
	}
	p := l.m.Acquire()
	defer l.m.Release(p)
	for s := range l.rings {
		s := s
		ring := &l.rings[s]
		l.doPair(p, slot.pairs[s], l.opBudget, func(tx *Tx) {
			if s == 0 {
				Put(tx, slot.reads, 0)
				Put(tx, slot.drops, 0)
			}
			start := Get(tx, ring.head)
			if atTail {
				start = Get(tx, ring.tail)
			}
			Put(tx, slot.pos[s], start)
			Put(tx, slot.active[s], 1)
		})
	}
	return &Cursor[T]{lg: l, slot: slot, idx: idx}, nil
}

// Close detaches the cursor — trim stops accounting for its positions
// — and releases its slot for a future NewCursor. Closing an already
// closed cursor is a no-op. Always Close abandoned cursors: an
// attached cursor that is never advanced pins retention until a TrimTo
// clamps past it.
func (c *Cursor[T]) Close() {
	if c.closed.Swap(true) {
		return
	}
	l := c.lg
	slot := c.slot
	p := l.m.Acquire()
	defer l.m.Release(p)
	for s := range l.rings {
		s := s
		l.doPair(p, slot.pairs[s], l.opBudget, func(tx *Tx) {
			Put(tx, slot.active[s], 0)
		})
	}
	l.mu.Lock()
	slot.claimed = false
	l.mu.Unlock()
}

// TryNext delivers the next unread entry, reporting false when every
// shard is drained (or the cursor is closed). Shards are scanned in
// round-robin order with a lock-free position/tail check first, so a
// drained log is rejected without touching any lock. Entries from one
// shard arrive in that shard's append order; entries from different
// shards interleave.
func (c *Cursor[T]) TryNext() (T, bool) {
	var zero T
	if c.closed.Load() {
		return zero, false
	}
	l := c.lg
	p := l.m.Acquire()
	defer l.m.Release(p)
	return c.tryNextWith(p)
}

func (c *Cursor[T]) tryNextWith(p *Process) (T, bool) {
	var zero T
	l := c.lg
	slot := c.slot
	start := c.rr.Add(1) - 1
	for j := 0; j < len(l.rings); j++ {
		s := int((start + uint64(j)) & l.shardMask)
		ring := &l.rings[s]
		// Advisory lock-free skip of drained shards; the section
		// re-checks under the locks.
		if slot.pos[s].Get(p) >= ring.tail.Get(p) {
			continue
		}
		if l.scalarV != nil {
			f := logFrameFor[T](p)
			f.lg, f.slot, f.s, f.op = l, slot, s, lopNext
			l.m.lockFrameSet(p, slot.pairs[s], l.opBudget, f)
			if f.resBits.Load()&lresOK != 0 {
				return l.scalarV.DecodeWord(f.resWord.Load()), true
			}
			continue
		}
		out := newResultCell(l.vc)
		ok := NewBoolCell(false)
		l.doPair(p, slot.pairs[s], l.opBudget, func(tx *Tx) {
			if Get(tx, slot.active[s]) == 0 {
				return
			}
			pos := Get(tx, slot.pos[s])
			t := Get(tx, ring.tail)
			if pos == t {
				Put(tx, ring.empties, Get(tx, ring.empties)+1)
				return
			}
			Put(tx, out, Get(tx, ring.vals[int(pos&ring.mask)]))
			Put(tx, slot.pos[s], pos+1)
			Put(tx, slot.reads, Get(tx, slot.reads)+1)
			Put(tx, ok, true)
		})
		if ok.Get(p) {
			return out.Get(p), true
		}
	}
	return zero, false
}

// Next delivers the next unread entry, waiting while the log is
// drained: failed passes apply the manager's RetryPolicy, and the wait
// ends with an error wrapping ErrCanceled once ctx is done, or
// ErrCursorClosed if the cursor is closed while waiting.
func (c *Cursor[T]) Next(ctx context.Context) (T, error) {
	var zero T
	l := c.lg
	p := l.m.Acquire()
	defer l.m.Release(p)
	for attempt := 1; ; attempt++ {
		if c.closed.Load() {
			return zero, ErrCursorClosed
		}
		if err := ctx.Err(); err != nil {
			return zero, fmt.Errorf("%w: log drained after %d passes: %w", ErrCanceled, attempt-1, err)
		}
		if v, ok := c.tryNextWith(p); ok {
			return v, nil
		}
		l.m.retry.Wait(ctx, attempt)
	}
}

// NextBatch delivers up to max unread entries, waiting only until the
// first is available: shards are scanned round-robin and drained in
// WithLogBatch-sized atomic chunks until the scan comes up empty or
// max is reached. Entries within a chunk preserve their shard's append
// order; chunks from different shards interleave. It returns an error
// wrapping ErrCanceled — with whatever was delivered — once ctx is
// done while still empty-handed, or ErrCursorClosed on a closed
// cursor.
func (c *Cursor[T]) NextBatch(ctx context.Context, max int) ([]T, error) {
	if max <= 0 {
		return nil, nil
	}
	l := c.lg
	slot := c.slot
	p := l.m.Acquire()
	defer l.m.Release(p)
	var got []T
	attempt := 0
	for len(got) < max {
		attempt++
		if c.closed.Load() {
			return got, ErrCursorClosed
		}
		if err := ctx.Err(); err != nil {
			return got, fmt.Errorf("%w: %d of %d delivered: %w", ErrCanceled, len(got), max, err)
		}
		movedThisPass := 0
		start := c.rr.Add(1) - 1
		for j := 0; j < len(l.rings) && len(got) < max; j++ {
			s := int((start + uint64(j)) & l.shardMask)
			ring := &l.rings[s]
			if slot.pos[s].Get(p) >= ring.tail.Get(p) {
				continue
			}
			want := max - len(got)
			if want > l.batch {
				want = l.batch
			}
			outs := make([]*Cell[T], want)
			for i := range outs {
				outs[i] = newResultCell(l.vc)
			}
			n := NewCell(uint64(0))
			l.doPair(p, slot.pairs[s], l.batchBudget, func(tx *Tx) {
				if Get(tx, slot.active[s]) == 0 {
					return
				}
				pos := Get(tx, slot.pos[s])
				t := Get(tx, ring.tail)
				k := uint64(0)
				for int(k) < want && pos < t {
					Put(tx, outs[k], Get(tx, ring.vals[int(pos&ring.mask)]))
					pos++
					k++
				}
				if k > 0 {
					Put(tx, slot.pos[s], pos)
					Put(tx, slot.reads, Get(tx, slot.reads)+k)
				} else {
					Put(tx, ring.empties, Get(tx, ring.empties)+1)
				}
				Put(tx, n, k)
			})
			moved := int(n.Get(p))
			for i := 0; i < moved; i++ {
				got = append(got, outs[i].Get(p))
			}
			movedThisPass += moved
		}
		if movedThisPass == 0 {
			if len(got) > 0 {
				return got, nil
			}
			l.m.retry.Wait(ctx, attempt)
		} else {
			attempt = 0
		}
	}
	return got, nil
}

// Slot reports the consumer-slot index this cursor occupies: its row
// in Stats().Consumers.
func (c *Cursor[T]) Slot() int { return c.idx }

// Lag reports the number of appended entries this cursor has not yet
// read: the sum over shards of tail minus position, read lock-free
// with the usual skew caveat. A closed cursor reports 0.
func (c *Cursor[T]) Lag() int {
	if c.closed.Load() {
		return 0
	}
	l := c.lg
	p := l.m.Acquire()
	defer l.m.Release(p)
	return l.slotLag(p, c.slot)
}

func (l *Log[T]) slotLag(p *Process, cs *logSlot[T]) int {
	lag := 0
	for s := range l.rings {
		if cs.active[s].Get(p) == 0 {
			continue
		}
		t := l.rings[s].tail.Get(p)
		pos := cs.pos[s].Get(p)
		if t > pos {
			lag += int(t - pos)
		}
	}
	return lag
}

// LogShardStats is one shard's view in LogStats.
type LogShardStats struct {
	// Lock carries the shard lock's contention counters.
	Lock LockStats
	// Appends counts completed appends to this shard; Trimmed counts
	// entries reclaimed from it (by trim sections or in-append
	// reclamation).
	Appends, Trimmed uint64
	// FullRejects counts append attempts that found the shard full even
	// after in-section reclamation; IdlePolls counts cursor-advance
	// sections that found nothing unread (lock-free skips not
	// included).
	FullRejects, IdlePolls uint64
	// Len is the shard's retained-entry count.
	Len int
}

// LogConsumerStats is one consumer slot's view in LogStats.
type LogConsumerStats struct {
	// Slot is the pool index; Attached reports whether a cursor
	// currently occupies it.
	Slot     int
	Attached bool
	// Reads counts entries delivered through this slot since its last
	// attach; Drops counts entries a TrimTo clamp skipped past.
	Reads, Drops uint64
	// Lag is the slot's unread backlog (0 when detached).
	Lag int
}

// LogStats is a point-in-time view of the log's traffic, exact at
// quiescence (counters are updated inside critical sections).
type LogStats struct {
	// Shards holds one entry per shard; Consumers one per slot.
	Shards    []LogShardStats
	Consumers []LogConsumerStats
	// Appends, Trimmed, FullRejects and IdlePolls are the summed shard
	// counters; Reads and Drops the summed consumer counters.
	Appends, Trimmed, FullRejects, IdlePolls uint64
	Reads, Drops                             uint64
	// Len is the summed retained-entry count; MaxLag the largest
	// attached cursor's backlog.
	Len    int
	MaxLag int
	// Balance is Jain's fairness index over per-shard append counts;
	// MaxOverMean the hottest shard's appends over the mean (see
	// WorkPoolStats).
	Balance     float64
	MaxOverMean float64
}

// Stats snapshots the log's per-shard and per-consumer counters.
func (l *Log[T]) Stats() LogStats {
	p := l.m.Acquire()
	defer l.m.Release(p)
	ls := LogStats{
		Shards:    make([]LogShardStats, len(l.rings)),
		Consumers: make([]LogConsumerStats, len(l.slots)),
	}
	enqs := make([]uint64, len(l.rings))
	for s := range l.rings {
		ring := &l.rings[s]
		a, w, h := l.locks[s].inner.Counters()
		st := LogShardStats{
			Lock:        LockStats{ID: l.locks[s].ID(), Attempts: a, Wins: w, Helps: h},
			Appends:     ring.enqs.Get(p),
			Trimmed:     ring.deqs.Get(p),
			FullRejects: ring.fulls.Get(p),
			IdlePolls:   ring.empties.Get(p),
			Len:         ring.lenWith(p),
		}
		ls.Shards[s] = st
		ls.Appends += st.Appends
		ls.Trimmed += st.Trimmed
		ls.FullRejects += st.FullRejects
		ls.IdlePolls += st.IdlePolls
		ls.Len += st.Len
		enqs[s] = st.Appends
	}
	for i, cs := range l.slots {
		attached := false
		for s := range l.rings {
			if cs.active[s].Get(p) != 0 {
				attached = true
				break
			}
		}
		st := LogConsumerStats{
			Slot:     i,
			Attached: attached,
			Reads:    cs.reads.Get(p),
			Drops:    cs.drops.Get(p),
		}
		if attached {
			st.Lag = l.slotLag(p, cs)
		}
		ls.Consumers[i] = st
		ls.Reads += st.Reads
		ls.Drops += st.Drops
		if st.Lag > ls.MaxLag {
			ls.MaxLag = st.Lag
		}
	}
	d := stats.NewShardDist(enqs)
	ls.Balance = d.Jain
	ls.MaxOverMean = d.MaxOverMean
	return ls
}
