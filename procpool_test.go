package wflocks

import (
	"sync"
	"testing"
)

// TestProcessPoolReuseAcrossGoroutines hammers the Acquire/Release pool
// from many goroutines, interleaving pooled handles with implicit-Do
// traffic on shared locks. Handles migrate between goroutines through
// the pool; the race detector asserts that no handle is ever live on
// two goroutines at once and that the per-handle state (step counter,
// random stream) is only touched by its current owner. Runs in -short.
func TestProcessPoolReuseAcrossGoroutines(t *testing.T) {
	const (
		workers = 8
		rounds  = 40
	)
	m := newManager(t, WithKappa(workers), WithMaxLocks(2), WithMaxCriticalSteps(16),
		WithDelayConstants(1, 1))
	a, b := m.NewLock(), m.NewLock()
	c := NewCell(uint64(0))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 3 {
				case 0:
					// Explicit pooled handle through TryLock.
					p := m.Acquire()
					if _, err := m.TryLock(p, []*Lock{a}, 2, func(tx *Tx) {
						Put(tx, c, Get(tx, c)+1)
					}); err != nil {
						t.Error(err)
					}
					m.Release(p)
				case 1:
					// Implicit handle through Do.
					if err := m.Do([]*Lock{a, b}, 2, func(tx *Tx) {
						Put(tx, c, Get(tx, c)+1)
					}); err != nil {
						t.Error(err)
					}
				case 2:
					// Handle used only for unlocked reads, then pooled.
					p := m.Acquire()
					_ = c.Get(p)
					_ = p.Steps()
					m.Release(p)
				}
			}
		}(w)
	}
	wg.Wait()

	// Every TryLock win and every Do incremented the counter exactly
	// once; TryLock losses did not. The counter must equal the wins.
	snap := m.Stats()
	if got := Load(m, c); got != snap.Wins {
		t.Fatalf("counter = %d, wins = %d; pooled handles corrupted the count", got, snap.Wins)
	}
	// Pooled handles must have distinct pids even after heavy churn:
	// nextPid only grows, one id per NewProcess.
	p1, p2 := m.Acquire(), m.Acquire()
	if p1 == p2 || p1.Pid() == p2.Pid() {
		t.Fatalf("pool handed the same handle out twice: pids %d, %d", p1.Pid(), p2.Pid())
	}
	m.Release(p1)
	m.Release(p2)
}
