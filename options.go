package wflocks

import (
	"fmt"
	"time"
)

// config collects the Manager options before validation.
type config struct {
	kappa         int
	kappaSet      bool
	maxLocks      int
	maxCritical   int
	numProcs      int
	delayC        int
	delayC1       int
	unknownBounds bool
	noFastPath    bool
	metrics       bool
	traceRate     int
	traceRing     int
	wdDelaySteps  uint64
	wdHelpNanos   uint64
	wdAlertCap    int
	seed          uint64
	retry         RetryPolicy
}

// Option configures a Manager. Options validate their arguments: New
// returns a descriptive error for any nonsense value rather than
// building a manager whose guarantees are silently void.
type Option func(*config) error

// WithKappa sets κ, the maximum number of simultaneous attempts that
// will ever contend on a single lock. Required unless WithUnknownBounds
// is used. The fairness guarantee (success probability ≥ 1/(κL)) and
// the step bound O(κ²L²T) are stated in terms of it.
func WithKappa(kappa int) Option {
	return func(c *config) error {
		if kappa <= 0 {
			return fmt.Errorf("wflocks: WithKappa: κ must be positive, got %d", kappa)
		}
		c.kappa = kappa
		c.kappaSet = true
		return nil
	}
}

// WithMaxLocks sets L, the maximum number of locks in any single
// acquisition. Default 2 (the dining-philosophers shape).
func WithMaxLocks(l int) Option {
	return func(c *config) error {
		if l <= 0 {
			return fmt.Errorf("wflocks: WithMaxLocks: L must be positive, got %d", l)
		}
		c.maxLocks = l
		return nil
	}
}

// WithMaxCriticalSteps sets T, the maximum number of shared-memory
// operations any critical section performs. Default 64.
func WithMaxCriticalSteps(t int) Option {
	return func(c *config) error {
		if t <= 0 {
			return fmt.Errorf("wflocks: WithMaxCriticalSteps: T must be positive, got %d", t)
		}
		c.maxCritical = t
		return nil
	}
}

// WithUnknownBounds selects the variant that needs no κ/L knowledge
// (paper Section 6.2, Theorem 6.10). numProcs is P, the total number of
// processes that will ever run attempts concurrently; it sizes the
// per-lock announcement arrays. The success probability loses a
// log(κLT) factor compared to the known-bounds variant.
func WithUnknownBounds(numProcs int) Option {
	return func(c *config) error {
		if numProcs <= 0 {
			return fmt.Errorf("wflocks: WithUnknownBounds: P must be positive, got %d", numProcs)
		}
		c.unknownBounds = true
		c.numProcs = numProcs
		return nil
	}
}

// WithDelayConstants overrides the paper's "sufficiently large"
// constants c and c′ in the fixed delays T0 = c·κ²L²T and T1 = c′·κLT.
// Smaller constants shorten every attempt but risk breaking the
// fixed-timing property the fairness proof needs; the defaults are
// calibrated with comfortable margin.
func WithDelayConstants(c0, c1 int) Option {
	return func(c *config) error {
		if c0 <= 0 || c1 <= 0 {
			return fmt.Errorf("wflocks: WithDelayConstants: constants must be positive, got (%d, %d)", c0, c1)
		}
		c.delayC = c0
		c.delayC1 = c1
		return nil
	}
}

// WithFastPath enables or disables the uncontended fast path (default
// enabled): an acquisition that observes every requested lock free
// skips the delay stalls entirely and pays only the protocol itself.
// Safety — mutual exclusion and wait-freedom — is identical either
// way; what the skip trades is the paper's adversarial fairness bound
// in the window where two attempts race from an observed-free lock
// (that race is settled by random priorities, which is symmetric-fair
// but not the adversarial guarantee). Disable it only when you need
// attempt timing to be a pure function of configuration, e.g. to
// reproduce the paper's fixed-schedule behavior exactly.
func WithFastPath(enabled bool) Option {
	return func(c *config) error {
		c.noFastPath = !enabled
		return nil
	}
}

// WithMetrics enables the manager's latency metrics: per-P sharded
// histograms of acquisition latency (Do/DoCtx/Lock/LockCtx and the
// structures' operations, Atomic transactions included), of the
// delay-schedule steps charged per attempt, and of help-run wall
// durations, all exposed through Manager.Observe. Recording is
// allocation-free and sharded by process, so the cost is two clock
// reads and a handful of uncontended atomic adds per acquisition;
// disabled (the default), the hot path pays a single nil check.
func WithMetrics() Option {
	return func(c *config) error {
		c.metrics = true
		return nil
	}
}

// WithTracing enables the sampled flight recorder (implying
// WithMetrics): one attempt in sampleRate (rounded up to a power of
// two) records its lifecycle — start, fast path, each delay point with
// its computed bound, each descriptor it helped with lock ID and wall
// duration, win or lose — into a fixed-size lock-free event ring read
// by Manager.Observe. Unsampled attempts pay one atomic increment and
// a branch; sampled attempts pay one ring write per event, never an
// allocation or a lock. sampleRate 1 traces every attempt (tests and
// offline debugging); production services run 1/64 or sparser.
func WithTracing(sampleRate int) Option {
	return func(c *config) error {
		if sampleRate <= 0 {
			return fmt.Errorf("wflocks: WithTracing: sample rate must be positive, got %d", sampleRate)
		}
		c.metrics = true
		c.traceRate = sampleRate
		return nil
	}
}

// WithTraceRing overrides the flight recorder's event capacity
// (default 4096, rounded up to a power of two). Only meaningful with
// WithTracing.
func WithTraceRing(events int) Option {
	return func(c *config) error {
		if events <= 0 {
			return fmt.Errorf("wflocks: WithTraceRing: capacity must be positive, got %d", events)
		}
		c.traceRing = events
		return nil
	}
}

// WithStallWatchdog arms the stall watchdog (implying WithMetrics): an
// attempt charged more than maxDelaySteps delay-schedule steps, or a
// single help run longer than maxHelpRun wall time, counts a stall
// alert, attributes it to the offending lock, and lands in a small
// alert ring — all readable through Manager.Observe (StallAlerts,
// Alerts, Locks). Either bound may be zero to disable that check;
// delay-step excessions typically mean the delay schedule is charging
// bystanders for a stalled holder, help-run excessions mean helpers
// are executing a critical section whose owner stopped mid-way. The
// checks ride the recording paths already guarded by the metrics nil
// check, so an armed watchdog costs two predictable branches per
// attempt.
func WithStallWatchdog(maxDelaySteps uint64, maxHelpRun time.Duration) Option {
	return func(c *config) error {
		if maxDelaySteps == 0 && maxHelpRun <= 0 {
			return fmt.Errorf("wflocks: WithStallWatchdog: at least one bound must be positive")
		}
		if maxHelpRun < 0 {
			return fmt.Errorf("wflocks: WithStallWatchdog: help-run bound must not be negative, got %v", maxHelpRun)
		}
		c.metrics = true
		c.wdDelaySteps = maxDelaySteps
		c.wdHelpNanos = uint64(maxHelpRun)
		if c.wdAlertCap == 0 {
			c.wdAlertCap = 64
		}
		return nil
	}
}

// WithSeed seeds the per-process random priority streams. Runs with the
// same seed and deterministic scheduling draw the same priorities;
// the default seed of zero is fine for production use.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithRetryPolicy sets the policy Do, DoCtx and Lock apply between
// failed attempts. The default is RetryGosched, which yields the
// processor between attempts. See RetryImmediate and RetryBackoff for
// the alternatives.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) error {
		if p == nil {
			return fmt.Errorf("wflocks: WithRetryPolicy: policy must not be nil")
		}
		c.retry = p
		return nil
	}
}

// validate audits the assembled configuration for cross-option
// consistency. Per-option range checks happen in the options
// themselves; validate catches what only the combination reveals.
func (c *config) validate() error {
	if !c.kappaSet && !c.unknownBounds {
		return fmt.Errorf("wflocks: New: one of WithKappa or WithUnknownBounds is required " +
			"(the algorithm must either know the contention bound κ or be told the process count P)")
	}
	return nil
}
