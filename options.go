package wflocks

// config collects the Manager options before validation.
type config struct {
	kappa         int
	maxLocks      int
	maxCritical   int
	numProcs      int
	delayC        int
	delayC1       int
	unknownBounds bool
	seed          uint64
}

// Option configures a Manager.
type Option func(*config)

// WithKappa sets κ, the maximum number of simultaneous attempts that
// will ever contend on a single lock. Required unless WithUnknownBounds
// is used. The fairness guarantee (success probability ≥ 1/(κL)) and
// the step bound O(κ²L²T) are stated in terms of it.
func WithKappa(kappa int) Option {
	return func(c *config) { c.kappa = kappa }
}

// WithMaxLocks sets L, the maximum number of locks in any single
// TryLock call. Default 2 (the dining-philosophers shape).
func WithMaxLocks(l int) Option {
	return func(c *config) { c.maxLocks = l }
}

// WithMaxCriticalSteps sets T, the maximum number of Tx operations any
// critical section performs. Default 64.
func WithMaxCriticalSteps(t int) Option {
	return func(c *config) { c.maxCritical = t }
}

// WithUnknownBounds selects the variant that needs no κ/L knowledge
// (paper Section 6.2, Theorem 6.10). numProcs is P, the total number of
// processes that will ever run attempts concurrently; it sizes the
// per-lock announcement arrays. The success probability loses a
// log(κLT) factor compared to the known-bounds variant.
func WithUnknownBounds(numProcs int) Option {
	return func(c *config) {
		c.unknownBounds = true
		c.numProcs = numProcs
	}
}

// WithDelayConstants overrides the paper's "sufficiently large"
// constants c and c′ in the fixed delays T0 = c·κ²L²T and T1 = c′·κLT.
// Smaller constants shorten every attempt but risk breaking the
// fixed-timing property the fairness proof needs; the defaults are
// calibrated with comfortable margin.
func WithDelayConstants(c0, c1 int) Option {
	return func(c *config) {
		c.delayC = c0
		c.delayC1 = c1
	}
}

// WithSeed seeds the per-process random priority streams. Runs with the
// same seed and deterministic scheduling draw the same priorities;
// the default seed of zero is fine for production use.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}
