package wflocks_test

import (
	"runtime"
	"testing"

	"wflocks"
	"wflocks/internal/bench"
)

// One benchmark per experiment: each regenerates the table reproducing
// a quantitative claim of the paper (DESIGN.md §6, EXPERIMENTS.md).
// Run a single experiment's bench with e.g.:
//
//	go test -bench=BenchmarkE3 -benchtime=1x
//
// The full tables for EXPERIMENTS.md come from `go run ./cmd/wfbench
// -scale=full`.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp := bench.Lookup(id)
	if exp == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1StepBound(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2Fairness(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3Philosophers(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4RetrySteps(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5Unknown(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6ActiveSet(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7Idempotence(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE8Baselines(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9DelayAblation(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10Native(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Adaptivity(b *testing.B)   { benchExperiment(b, "E11") }

// Public-API micro-benchmarks. The TryLock/Do pair quantifies the
// ergonomic path's overhead: Do adds call validation, a pooled handle
// acquire/release, and the retry-policy indirection on top of the same
// single attempt. Compare with:
//
//	go test -bench='Uncontended$' -benchtime=10000x

func BenchmarkTryLockUncontended(b *testing.B) {
	m, err := wflocks.New(wflocks.WithKappa(2), wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(8))
	if err != nil {
		b.Fatal(err)
	}
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	p := m.NewProcess()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := m.TryLock(p, []*wflocks.Lock{l}, 2, func(tx *wflocks.Tx) {
			v := wflocks.Get(tx, c)
			wflocks.Put(tx, c, v+1)
		})
		if err != nil || !ok {
			b.Fatal("uncontended TryLock failed")
		}
	}
}

func BenchmarkDoUncontended(b *testing.B) {
	m, err := wflocks.New(wflocks.WithKappa(2), wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(8))
	if err != nil {
		b.Fatal(err)
	}
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Do([]*wflocks.Lock{l}, 2, func(tx *wflocks.Tx) {
			v := wflocks.Get(tx, c)
			wflocks.Put(tx, c, v+1)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockContended(b *testing.B) {
	// RunParallel launches GOMAXPROCS goroutines; κ must cover them.
	m, err := wflocks.New(wflocks.WithKappa(2*runtime.GOMAXPROCS(0)),
		wflocks.WithMaxLocks(1), wflocks.WithMaxCriticalSteps(8))
	if err != nil {
		b.Fatal(err)
	}
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := m.NewProcess()
		for pb.Next() {
			if _, err := m.Lock(p, []*wflocks.Lock{l}, 2, func(tx *wflocks.Tx) {
				v := wflocks.Get(tx, c)
				wflocks.Put(tx, c, v+1)
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkDoContended(b *testing.B) {
	m, err := wflocks.New(wflocks.WithKappa(2*runtime.GOMAXPROCS(0)),
		wflocks.WithMaxLocks(1), wflocks.WithMaxCriticalSteps(8))
	if err != nil {
		b.Fatal(err)
	}
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := m.Do([]*wflocks.Lock{l}, 2, func(tx *wflocks.Tx) {
				v := wflocks.Get(tx, c)
				wflocks.Put(tx, c, v+1)
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkCellReadWrite(b *testing.B) {
	m, err := wflocks.New(wflocks.WithKappa(2))
	if err != nil {
		b.Fatal(err)
	}
	p := m.NewProcess()
	c := wflocks.NewCell(uint64(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Set(p, c.Get(p)+1)
	}
}

func BenchmarkStructCellReadWrite(b *testing.B) {
	type pair struct{ A, B uint64 }
	codec := wflocks.CodecFunc(2,
		func(v pair, dst []uint64) { dst[0], dst[1] = v.A, v.B },
		func(src []uint64) pair { return pair{src[0], src[1]} })
	m, err := wflocks.New(wflocks.WithKappa(2))
	if err != nil {
		b.Fatal(err)
	}
	p := m.NewProcess()
	c := wflocks.NewCellOf(codec, pair{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := c.Get(p)
		v.A++
		v.B++
		c.Set(p, v)
	}
}
