package wflocks_test

import (
	"bufio"
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"wflocks"
	"wflocks/internal/bench"
	"wflocks/internal/serve"
	"wflocks/internal/serve/loadgen"
	"wflocks/internal/workload"
)

// One benchmark per experiment: each regenerates the table reproducing
// a quantitative claim of the paper (DESIGN.md §6, EXPERIMENTS.md).
// Run a single experiment's bench with e.g.:
//
//	go test -bench=BenchmarkE3 -benchtime=1x
//
// The full tables for EXPERIMENTS.md come from `go run ./cmd/wfbench
// -scale=full`.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp := bench.Lookup(id)
	if exp == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1StepBound(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2Fairness(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3Philosophers(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4RetrySteps(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5Unknown(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6ActiveSet(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7Idempotence(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE8Baselines(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9DelayAblation(b *testing.B) { benchExperiment(b, "E9") }
func BenchmarkE10Native(b *testing.B)       { benchExperiment(b, "E10") }
func BenchmarkE11Adaptivity(b *testing.B)   { benchExperiment(b, "E11") }

// Public-API micro-benchmarks. The headline names (DoUncontended,
// DoContended, ...) run the adaptive unknown-bounds configuration —
// the library's recommended default — and their *Known siblings run the
// paper's base algorithm with fixed κ-derived delays, so the pair
// quantifies what delay regime costs on the same workload. The
// TryLock/Do pair additionally quantifies the ergonomic path's
// overhead: Do adds call validation, a pooled handle acquire/release,
// and the retry-policy indirection on top of the same single attempt.
// Body closures and lock slices are hoisted out of the loops: with
// arena-backed attempt state, the steady-state paths run allocation-
// free (see TestDoAllocs). Compare with:
//
//	go test -bench='Uncontended' -benchtime=10000x

// benchManager builds a micro-benchmark manager for one delay variant,
// failing the benchmark on configuration errors.
func benchManager(b *testing.B, v bench.Variant, procs, maxLocks, maxCritical int) *wflocks.Manager {
	b.Helper()
	m, err := bench.NewManager(v, procs, maxLocks, maxCritical)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkTryLockUncontended(b *testing.B)      { benchTryLockUncontended(b, bench.VariantAdaptive) }
func BenchmarkTryLockUncontendedKnown(b *testing.B) { benchTryLockUncontended(b, bench.VariantKnown) }

func benchTryLockUncontended(b *testing.B, v bench.Variant) {
	m := benchManager(b, v, 4, 2, 8)
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	p := m.NewProcess()
	locks := []*wflocks.Lock{l}
	body := func(tx *wflocks.Tx) {
		v := wflocks.Get(tx, c)
		wflocks.Put(tx, c, v+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := m.TryLock(p, locks, 2, body)
		if err != nil || !ok {
			b.Fatal("uncontended TryLock failed")
		}
	}
}

func BenchmarkDoUncontended(b *testing.B)      { benchDoUncontended(b, bench.VariantAdaptive) }
func BenchmarkDoUncontendedKnown(b *testing.B) { benchDoUncontended(b, bench.VariantKnown) }

func benchDoUncontended(b *testing.B, v bench.Variant) {
	m := benchManager(b, v, 4, 2, 8)
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	locks := []*wflocks.Lock{l}
	body := func(tx *wflocks.Tx) {
		v := wflocks.Get(tx, c)
		wflocks.Put(tx, c, v+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Do(locks, 2, body); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLockContended(b *testing.B)      { benchLockContended(b, bench.VariantAdaptive) }
func BenchmarkLockContendedKnown(b *testing.B) { benchLockContended(b, bench.VariantKnown) }

func benchLockContended(b *testing.B, v bench.Variant) {
	// RunParallel launches GOMAXPROCS goroutines; κ and P must cover
	// them.
	m := benchManager(b, v, 2*runtime.GOMAXPROCS(0), 1, 8)
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		p := m.NewProcess()
		locks := []*wflocks.Lock{l}
		body := func(tx *wflocks.Tx) {
			v := wflocks.Get(tx, c)
			wflocks.Put(tx, c, v+1)
		}
		for pb.Next() {
			if _, err := m.Lock(p, locks, 2, body); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkDoContended(b *testing.B)      { benchDoContended(b, bench.VariantAdaptive) }
func BenchmarkDoContendedKnown(b *testing.B) { benchDoContended(b, bench.VariantKnown) }

func benchDoContended(b *testing.B, v bench.Variant) {
	m := benchManager(b, v, 2*runtime.GOMAXPROCS(0), 1, 8)
	l := m.NewLock()
	c := wflocks.NewCell(uint64(0))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		locks := []*wflocks.Lock{l}
		body := func(tx *wflocks.Tx) {
			v := wflocks.Get(tx, c)
			wflocks.Put(tx, c, v+1)
		}
		for pb.Next() {
			if err := m.Do(locks, 2, body); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkMap sweeps the wfmap shard count against a sync.Mutex-
// sharded baseline under a 90/10 get/put mix. Total capacity is held
// at 2× the keyspace while shards grow, so each doubling both halves
// the per-lock contention and shrinks the per-shard region — and with
// it the critical-section bound T that the attempts' fixed delays are
// proportional to. Throughput therefore scales superlinearly for
// wfmap (8-shard is well over 3× 1-shard at GOMAXPROCS=8); the mutex
// baseline gives the blocking reference. Compare with:
//
//	go test -bench=Map -benchtime=500x -cpu 8
const benchMapKeys = 128

func BenchmarkMap(b *testing.B) {
	// The headline wfmap rows run the adaptive default; the wfmap-known
	// row shows the paper's base algorithm at the headline shard count.
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("wfmap/shards=%d", shards), func(b *testing.B) {
			benchWfmap(b, bench.VariantAdaptive, shards)
		})
	}
	b.Run("wfmap-known/shards=8", func(b *testing.B) {
		benchWfmap(b, bench.VariantKnown, 8)
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("mutex/shards=%d", shards), func(b *testing.B) {
			benchMutexMap(b, shards)
		})
	}
}

func benchWfmap(b *testing.B, v bench.Variant, shards int) {
	capPerShard := 2 * benchMapKeys / shards
	// κ/P cover the RunParallel goroutine count; the known regime's
	// delay constants of 1 keep its fixed stalls near their minimum so
	// the benchmark measures structure, not calibration margin.
	m, err := bench.NewManager(v, runtime.GOMAXPROCS(0), 1, wflocks.MapCriticalSteps(capPerShard, 1, 1))
	if err != nil {
		b.Fatal(err)
	}
	mp, err := wflocks.NewMap[uint64, uint64](m,
		wflocks.WithShards(shards), wflocks.WithShardCapacity(capPerShard))
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(0); k < benchMapKeys; k++ {
		if err := mp.Put(k, k); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
		for pb.Next() {
			k := rng.Uint64N(benchMapKeys)
			if rng.IntN(10) == 0 {
				if err := mp.Put(k, k); err != nil {
					b.Error(err)
					return
				}
			} else {
				mp.Get(k)
			}
		}
	})
}

func benchMutexMap(b *testing.B, shards int) {
	mm := bench.NewMutexMap(shards)
	for k := uint64(0); k < benchMapKeys; k++ {
		mm.Put(k, k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
		for pb.Next() {
			k := rng.Uint64N(benchMapKeys)
			if rng.IntN(10) == 0 {
				mm.Put(k, k)
			} else {
				mm.Get(k)
			}
		}
	})
}

// BenchmarkCache sweeps the wfcache shard count × key skew against the
// classic single-mutex+container/list LRU, in the regime the paper
// targets: lock holders that stall mid-critical-section (a preempted
// vCPU, a page fault, a GC pause), modeled by a value codec whose
// encode periodically sleeps — inside the critical section for
// wfcache, while holding the mutex for the baseline (see
// internal/bench.StallPoint). A stalled mutex holder blocks the whole
// cache; a stalled wfcache winner is helped, so only the stalled
// goroutine loses time and the sleeps of different workers overlap.
// Expect the 8-shard wfcache to beat the mutex LRU on the cache:zipf
// shape at -cpu 8. The nostall group shows the raw regime, where the
// blocking baseline wins on constant factors (wait-free attempts pay
// the fixed c·κ²L²T delays); both numbers together are the honest
// story. Each sub-benchmark also reports its measured hit rate.
// Compare with:
//
//	go test -bench=Cache -benchtime=500x -cpu 8
const (
	benchStallPeriod = 16
	benchStallDur    = 8 * time.Millisecond
)

func BenchmarkCache(b *testing.B) {
	for _, scName := range []string{"cache:zipf", "cache:read"} {
		sc := workload.LookupCacheScenario(scName)
		if sc == nil {
			b.Fatalf("scenario %s missing", scName)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/wfcache/shards=%d", sc.Name, shards), func(b *testing.B) {
				benchWfcache(b, sc, shards, bench.NewStallPoint(benchStallPeriod, benchStallDur))
			})
		}
		b.Run(fmt.Sprintf("%s/mutexlru", sc.Name), func(b *testing.B) {
			benchMutexLRU(b, sc, bench.NewStallPoint(benchStallPeriod, benchStallDur))
		})
	}
	// The raw regime for the headline pair, for scale.
	sc := workload.LookupCacheScenario("cache:zipf")
	b.Run("nostall/cache:zipf/wfcache/shards=8", func(b *testing.B) {
		benchWfcache(b, sc, 8, nil)
	})
	b.Run("nostall/cache:zipf/mutexlru", func(b *testing.B) {
		benchMutexLRU(b, sc, nil)
	})
}

// benchCacheWorkers pins the worker-goroutine count: the stall regime
// is about overlap — sleeping workers must leave runnable competitors
// behind to help (wfcache) or to block (mutex) — so the benchmark
// needs real concurrency even when GOMAXPROCS is low. It returns the
// b.SetParallelism multiplier and the resulting total worker count.
func benchCacheWorkers() (par, workers int) {
	procs := runtime.GOMAXPROCS(0)
	par = 1
	for procs*par < 8 {
		par++
	}
	return par, procs * par
}

func benchWfcache(b *testing.B, sc *workload.CacheScenario, shards int, sp *bench.StallPoint) {
	par, workers := benchCacheWorkers()
	b.SetParallelism(par)
	// CacheCriticalSteps pow2-rounds per-shard capacity exactly as the
	// constructor does, so the raw quotient is the right input.
	perShard := (sc.Capacity + shards - 1) / shards
	m, err := wflocks.New(
		wflocks.WithKappa(workers),
		wflocks.WithMaxLocks(1),
		wflocks.WithMaxCriticalSteps(wflocks.CacheCriticalSteps(perShard, 1, 1)),
		wflocks.WithDelayConstants(1, 1),
	)
	if err != nil {
		b.Fatal(err)
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = bench.StallValueCodec(sp)
	}
	c, err := wflocks.NewCacheOf[uint64, uint64](m, wflocks.IntegerCodec[uint64](), vc,
		wflocks.WithCacheShards(shards), wflocks.WithCapacity(sc.Capacity))
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(0); k < uint64(sc.Capacity); k++ {
		c.Put(k, k*3)
	}
	sp.Arm()
	base := c.Stats()
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		st := workload.NewCacheOpStream(sc, seed.Add(1)*0x9e3779b97f4a7c15)
		for pb.Next() {
			kind, key := st.Next()
			k := uint64(key)
			switch kind {
			case workload.CacheGet:
				c.GetOrCompute(k, func() uint64 { return k * 3 })
			case workload.CachePut:
				c.Put(k, k*3)
			case workload.CacheDelete:
				c.Delete(k)
			}
		}
	})
	b.StopTimer()
	cs := c.Stats()
	if acc := (cs.Hits - base.Hits) + (cs.Misses - base.Misses); acc > 0 {
		b.ReportMetric(float64(cs.Hits-base.Hits)/float64(acc), "hitrate")
	}
}

func benchMutexLRU(b *testing.B, sc *workload.CacheScenario, sp *bench.StallPoint) {
	par, _ := benchCacheWorkers()
	b.SetParallelism(par)
	c := bench.NewMutexLRU(sc.Capacity, sp)
	for k := uint64(0); k < uint64(sc.Capacity); k++ {
		c.Put(k, k*3)
	}
	sp.Arm()
	h0, m0, _ := c.Counters()
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		st := workload.NewCacheOpStream(sc, seed.Add(1)*0x9e3779b97f4a7c15)
		for pb.Next() {
			kind, key := st.Next()
			k := uint64(key)
			switch kind {
			case workload.CacheGet:
				if _, ok := c.Get(k); !ok {
					c.Put(k, k*3)
				}
			case workload.CachePut:
				c.Put(k, k*3)
			case workload.CacheDelete:
				c.Delete(k)
			}
		}
	})
	b.StopTimer()
	hits, misses, _ := c.Counters()
	if acc := (hits - h0) + (misses - m0); acc > 0 {
		b.ReportMetric(float64(hits-h0)/float64(acc), "hitrate")
	}
}

// BenchmarkTxn sweeps the keys-per-transaction count L over wfmap's
// multi-lock Atomic path against a sorted-multi-mutex baseline, in the
// holder-stall regime the paper targets (see BenchmarkCache for the
// regime rationale). Each transaction transfers value between L keys;
// stalls are injected through the value-write path on both sides. Every
// wfmap attempt pays fixed delays growing as κ²L²·T(L) — T itself is L
// single-shard budgets — so the sweep shows both sides of the paper's
// trade: at small L helping absorbs stalls that serialize the blocking
// baseline across every held shard, while at L=8 the delay product is
// the dominant cost. The worker count is pinned small (κ² pricing) and
// each run audits transfer conservation. Compare with:
//
//	go test -bench=Txn -benchtime=200x -cpu 4
const (
	benchTxnKeys    = 64
	benchTxnShards  = 8
	benchTxnWorkers = 4
)

func BenchmarkTxn(b *testing.B) {
	for _, l := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("wfmap/L=%d", l), func(b *testing.B) {
			benchWfmapTxn(b, l, bench.NewStallPoint(benchStallPeriod, benchStallDur))
		})
	}
	for _, l := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("multimutex/L=%d", l), func(b *testing.B) {
			benchMultiMutexTxn(b, l, bench.NewStallPoint(benchStallPeriod, benchStallDur))
		})
	}
}

// benchTxnParallelism pins the worker count to benchTxnWorkers
// regardless of -cpu, as benchCacheWorkers does for the cache.
func benchTxnParallelism(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	par := 1
	for procs*par < benchTxnWorkers {
		par++
	}
	b.SetParallelism(par)
}

func benchWfmapTxn(b *testing.B, l int, sp *bench.StallPoint) {
	benchTxnParallelism(b)
	capPerShard := 2 * benchTxnKeys / benchTxnShards
	workers := runtime.GOMAXPROCS(0)
	if workers < benchTxnWorkers {
		workers = benchTxnWorkers
	}
	m, err := wflocks.New(
		wflocks.WithKappa(workers),
		wflocks.WithMaxLocks(l),
		wflocks.WithMaxCriticalSteps(wflocks.MapAtomicSteps(capPerShard, 1, 1, l)),
		wflocks.WithDelayConstants(1, 1),
	)
	if err != nil {
		b.Fatal(err)
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = bench.StallValueCodec(sp)
	}
	mp, err := wflocks.NewMapOf[uint64, uint64](m, wflocks.IntegerCodec[uint64](), vc,
		wflocks.WithShards(benchTxnShards), wflocks.WithShardCapacity(capPerShard))
	if err != nil {
		b.Fatal(err)
	}
	for k := uint64(0); k < benchTxnKeys; k++ {
		if err := mp.Put(k, 100); err != nil {
			b.Fatal(err)
		}
	}
	sp.Arm()
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(seed.Add(1), 0x9e3779b97f4a7c15))
		for pb.Next() {
			keys := drawDistinctKeys(rng, l, benchTxnKeys)
			if err := mp.Atomic(keys, func(tx *wflocks.MapTxn[uint64, uint64]) {
				ks := tx.Keys()
				gained := uint64(0)
				for _, k := range ks[1:] {
					if v, ok := tx.Get(k); ok && v > 0 {
						tx.Put(k, v-1)
						gained++
					}
				}
				v, _ := tx.Get(ks[0])
				tx.Put(ks[0], v+gained)
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	total := uint64(0)
	for _, v := range mp.All() {
		total += v
	}
	if total != benchTxnKeys*100 {
		b.Fatalf("conservation violated: sum %d, want %d", total, benchTxnKeys*100)
	}
}

func benchMultiMutexTxn(b *testing.B, l int, sp *bench.StallPoint) {
	benchTxnParallelism(b)
	mm := bench.NewMultiMutexMap(benchTxnShards, sp)
	for k := uint64(0); k < benchTxnKeys; k++ {
		mm.Put(k, 100)
	}
	sp.Arm()
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewPCG(seed.Add(1), 0x9e3779b97f4a7c15))
		for pb.Next() {
			keys := drawDistinctKeys(rng, l, benchTxnKeys)
			mm.Atomic(keys, func(get func(uint64) (uint64, bool), put func(uint64, uint64)) {
				gained := uint64(0)
				for _, k := range keys[1:] {
					if v, ok := get(k); ok && v > 0 {
						put(k, v-1)
						gained++
					}
				}
				v, _ := get(keys[0])
				put(keys[0], v+gained)
			})
		}
	})
	b.StopTimer()
	if got := mm.Sum(); got != benchTxnKeys*100 {
		b.Fatalf("conservation violated: sum %d, want %d", got, benchTxnKeys*100)
	}
}

// drawDistinctKeys samples l distinct keys in [0, n). The slice is
// freshly allocated per call: wfmap transaction bodies may be
// re-executed by straggling helpers after the call returns, so key
// buffers must never be reused.
func drawDistinctKeys(rng *rand.Rand, l, n int) []uint64 {
	keys := make([]uint64, 0, l)
	for len(keys) < l {
		k := rng.Uint64N(uint64(n))
		dup := false
		for _, have := range keys {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, k)
		}
	}
	return keys
}

func BenchmarkCellReadWrite(b *testing.B) {
	m, err := wflocks.New(wflocks.WithKappa(2))
	if err != nil {
		b.Fatal(err)
	}
	p := m.NewProcess()
	c := wflocks.NewCell(uint64(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Set(p, c.Get(p)+1)
	}
}

func BenchmarkStructCellReadWrite(b *testing.B) {
	type pair struct{ A, B uint64 }
	codec := wflocks.CodecFunc(2,
		func(v pair, dst []uint64) { dst[0], dst[1] = v.A, v.B },
		func(src []uint64) pair { return pair{src[0], src[1]} })
	m, err := wflocks.New(wflocks.WithKappa(2))
	if err != nil {
		b.Fatal(err)
	}
	p := m.NewProcess()
	c := wflocks.NewCellOf(codec, pair{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := c.Get(p)
		v.A++
		v.B++
		c.Set(p, v)
	}
}

// BenchmarkQueue sweeps the WorkPool shard count (plus the single-ring
// Queue) against the mutex+ring and buffered-channel baselines on a
// balanced MPMC shape — every worker enqueues one element and dequeues
// one per iteration — in the holder-stall regime the paper targets
// (see BenchmarkCache for the regime rationale). Stalls ride the
// value-write path on every side that has a lock to hold: wfqueue
// encodes stall inside critical sections, the mutex+ring stalls while
// holding its mutex, and the channel draws its stalls outside the op
// (a goroutine cannot sleep holding the runtime's channel lock), which
// makes it the stall-tolerant reference. The queue managers run the
// unknown-bounds adaptive variant, as in internal/bench's queue
// scenario runner: after sharding, per-lock contention is far below
// the worker count, and the Section 6.2 algorithm's delays track
// actual contention. Expect the 8-shard WorkPool to beat the
// mutex+ring well beyond 2× under stalls, and the nostall group to
// show the raw regime where the blocking baselines win on constant
// factors. Compare with:
//
//	go test -bench=Queue -benchtime=500x -cpu 8
const benchQueueCapacity = 256

func BenchmarkQueue(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workpool/shards=%d", shards), func(b *testing.B) {
			benchWorkPool(b, shards, bench.NewStallPoint(benchStallPeriod, benchStallDur))
		})
	}
	b.Run("wfqueue", func(b *testing.B) {
		benchWfQueue(b, bench.NewStallPoint(benchStallPeriod, benchStallDur))
	})
	b.Run("mutexring", func(b *testing.B) {
		benchMutexRing(b, bench.NewStallPoint(benchStallPeriod, benchStallDur))
	})
	b.Run("channel", func(b *testing.B) {
		benchChanQueue(b, bench.NewStallPoint(benchStallPeriod, benchStallDur))
	})
	b.Run("nostall/workpool/shards=8", func(b *testing.B) {
		benchWorkPool(b, 8, nil)
	})
	b.Run("nostall/mutexring", func(b *testing.B) {
		benchMutexRing(b, nil)
	})
}

// benchQueuePair runs the balanced enqueue-then-dequeue iteration; the
// queue never grows beyond the worker count, so full rejects are rare
// and empty rejects only happen transiently.
func benchQueuePair(b *testing.B, enq func(uint64) bool, deq func() (uint64, bool)) {
	par, _ := benchCacheWorkers()
	b.SetParallelism(par)
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := seed.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			v++
			for !enq(v) {
				runtime.Gosched()
			}
			for {
				if _, ok := deq(); ok {
					break
				}
				runtime.Gosched()
			}
		}
	})
}

func benchWorkPool(b *testing.B, shards int, sp *bench.StallPoint) {
	_, workers := benchCacheWorkers()
	m, err := wflocks.New(
		wflocks.WithUnknownBounds(workers+2),
		wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(wflocks.WorkPoolCriticalSteps(1, 1)),
	)
	if err != nil {
		b.Fatal(err)
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = bench.StallValueCodec(sp)
	}
	wp, err := wflocks.NewWorkPoolOf[uint64](m, vc,
		wflocks.WithPoolShards(shards), wflocks.WithPoolCapacity(benchQueueCapacity),
		wflocks.WithPoolBatch(1))
	if err != nil {
		b.Fatal(err)
	}
	sp.Arm()
	benchQueuePair(b, wp.TryEnqueue, wp.TryDequeue)
	b.StopTimer()
	if n := wp.Len(); n != 0 {
		b.Fatalf("pool holds %d elements after balanced run", n)
	}
	s := wp.Stats()
	b.ReportMetric(float64(s.Steals), "steals")
}

func benchWfQueue(b *testing.B, sp *bench.StallPoint) {
	_, workers := benchCacheWorkers()
	m, err := wflocks.New(
		wflocks.WithUnknownBounds(workers+2),
		wflocks.WithMaxLocks(1),
		wflocks.WithMaxCriticalSteps(wflocks.QueueCriticalSteps(1, 1)),
	)
	if err != nil {
		b.Fatal(err)
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = bench.StallValueCodec(sp)
	}
	q, err := wflocks.NewQueueOf[uint64](m, vc,
		wflocks.WithQueueCapacity(benchQueueCapacity), wflocks.WithQueueBatch(1))
	if err != nil {
		b.Fatal(err)
	}
	sp.Arm()
	benchQueuePair(b, q.TryEnqueue, q.TryDequeue)
	b.StopTimer()
	if n := q.Len(); n != 0 {
		b.Fatalf("queue holds %d elements after balanced run", n)
	}
}

func benchMutexRing(b *testing.B, sp *bench.StallPoint) {
	q := bench.NewMutexRing(benchQueueCapacity, sp)
	sp.Arm()
	benchQueuePair(b, q.TryEnqueue, q.TryDequeue)
}

func benchChanQueue(b *testing.B, sp *bench.StallPoint) {
	q := bench.NewChanQueue(benchQueueCapacity, sp)
	sp.Arm()
	benchQueuePair(b, q.TryEnqueue, q.TryDequeue)
}

// BenchmarkServe drives the wfserve request pipeline end to end over
// the in-process loopback transport: protocol parse, shard-by-key
// WorkPool dispatch, backend execution, ordered pipelined responses.
// One pipelined connection issues GETs against a prefilled backend —
// a closed-loop throughput shape (the open-loop tail-latency numbers
// live in `wfbench -workload service:read`, where coordinated-omission
// safety makes them meaningful).
func BenchmarkServe(b *testing.B) {
	for _, backend := range []string{"cache", "map", "mutex"} {
		b.Run("backend="+backend, func(b *testing.B) { benchServe(b, backend) })
	}
}

func benchServe(b *testing.B, backend string) {
	const keys = 256
	s, err := serve.NewServer(serve.Config{
		Backend:     backend,
		Shards:      8,
		Capacity:    2 * keys,
		MaxKeyBytes: 16,
		MaxValBytes: 32,
		NewManager:  bench.AdaptiveManager,
	})
	if err != nil {
		b.Fatal(err)
	}
	lis := serve.NewLoopback()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(lis) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Error(err)
		}
		if err := <-serveDone; err != nil {
			b.Error(err)
		}
	}()
	for k := 0; k < keys; k++ {
		if err := s.Backend().Set(loadgen.Key(k), loadgen.Val(32), 0); err != nil {
			b.Fatal(err)
		}
	}

	conn, err := lis.Dial()
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	b.ResetTimer()
	writeDone := make(chan error, 1)
	go func() {
		bw := bufio.NewWriter(conn)
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = serve.AppendCommand(buf[:0], "GET", loadgen.Key(i%keys))
			if _, err := bw.Write(buf); err != nil {
				writeDone <- err
				return
			}
		}
		writeDone <- bw.Flush()
	}()
	for i := 0; i < b.N; i++ {
		r, err := serve.ReadReply(br)
		if err != nil {
			b.Fatal(err)
		}
		if r.Kind != serve.ReplyBulk {
			b.Fatalf("reply %d = %+v", i, r)
		}
	}
	if err := <-writeDone; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLog sweeps the wflog shard count against the mutex+slice
// broadcast baseline on a balanced fan-out shape: every worker owns a
// cursor, appends one entry per iteration and drains its own cursor,
// so each entry is delivered to every worker and retention stays near
// the worker count. The holder-stall regime rides the value-write path
// on both sides (see BenchmarkCache for the regime rationale): wflog
// encodes stall inside append and cursor-advance critical sections,
// the mutex+slice log stalls while holding its one mutex on appends
// and reads. The channel fan-out baseline is covered by the scenario
// runner (`wfbench -workload log:fanout`) — its broadcaster goroutine
// does not fit the per-iteration lifecycle here. Expect the 8-shard
// wflog to beat the mutex+slice log well beyond 2× under stalls, and
// the nostall group to show the raw regime where the blocking
// baseline wins on constant factors. Compare with:
//
//	go test -bench=Log -benchtime=200x -cpu 8
const (
	benchLogCapacity = 1024
	benchLogSegment  = 64
)

func BenchmarkLog(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("wflog/shards=%d", shards), func(b *testing.B) {
			benchWfLog(b, shards, bench.NewStallPoint(benchStallPeriod, benchStallDur))
		})
	}
	b.Run("mutexslice", func(b *testing.B) {
		benchMutexSliceLog(b, bench.NewStallPoint(benchStallPeriod, benchStallDur))
	})
	b.Run("nostall/wflog/shards=8", func(b *testing.B) { benchWfLog(b, 8, nil) })
	b.Run("nostall/mutexslice", func(b *testing.B) { benchMutexSliceLog(b, nil) })
}

// benchLogRound runs the balanced broadcast iteration: append one,
// drain the worker's own cursor. The append retry loop also drains, so
// a full ring pinned by the spinning worker's own backlog always makes
// progress; workers detach their cursors on exit so finished workers
// stop pinning reclamation for the rest.
func benchLogRound(b *testing.B, append func(uint64) bool,
	newReader func() (func() (uint64, bool), func(), error)) {
	par, _ := benchCacheWorkers()
	b.SetParallelism(par)
	var seed atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		read, detach, err := newReader()
		if err != nil {
			b.Error(err)
			return
		}
		defer detach()
		v := seed.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			v++
			for !append(v) {
				if _, ok := read(); !ok {
					runtime.Gosched()
				}
			}
			for {
				if _, ok := read(); !ok {
					break
				}
			}
		}
	})
}

func benchWfLog(b *testing.B, shards int, sp *bench.StallPoint) {
	_, workers := benchCacheWorkers()
	m, err := wflocks.New(
		wflocks.WithUnknownBounds(workers+2),
		wflocks.WithMaxLocks(2),
		wflocks.WithMaxCriticalSteps(wflocks.LogCriticalSteps(1, 1, workers, benchLogSegment)),
	)
	if err != nil {
		b.Fatal(err)
	}
	vc := wflocks.Codec[uint64](wflocks.IntegerCodec[uint64]())
	if sp != nil {
		vc = bench.StallValueCodec(sp)
	}
	lg, err := wflocks.NewLogOf[uint64](m, vc,
		wflocks.WithLogShards(shards), wflocks.WithLogCapacity(benchLogCapacity),
		wflocks.WithLogSegment(benchLogSegment), wflocks.WithLogBatch(1),
		wflocks.WithLogConsumers(workers))
	if err != nil {
		b.Fatal(err)
	}
	sp.Arm()
	benchLogRound(b, lg.TryAppend, func() (func() (uint64, bool), func(), error) {
		cur, err := lg.NewCursor()
		if err != nil {
			return nil, nil, err
		}
		return cur.TryNext, cur.Close, nil
	})
}

func benchMutexSliceLog(b *testing.B, sp *bench.StallPoint) {
	l := bench.NewMutexSliceLog(benchLogCapacity, sp)
	sp.Arm()
	benchLogRound(b, func(v uint64) bool { return l.TryAppend(0, v) },
		func() (func() (uint64, bool), func(), error) {
			r := l.NewReader()
			return r.TryNext, r.Close, nil
		})
}
