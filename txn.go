package wflocks

import (
	"context"
	"fmt"
	"sort"

	"wflocks/internal/idem"
)

// Multi-key transactions. The paper's headline guarantee is wait-free
// acquisition of a *set* of up to L locks with helping; Atomic is where
// that surfaces in the data-structure API. A transaction declares its
// key set up front; the involved shard locks are deduplicated, sorted
// and acquired in one wait-free multi-lock attempt, and the body runs
// as a single critical section with Get/Put/Delete on any named key.
// Bodies are idempotent by construction — every read and write flows
// through the idempotence layer and results route through fresh cells —
// so a stalled transaction is completed by helpers like any other
// critical section, and the whole transaction commits atomically or
// (on validation failure or cancellation) not at all.

// MapTxn is the transaction view Atomic hands its body: typed
// Get/Put/Delete over the transaction's declared keys, all inside one
// multi-lock critical section. A fresh view is created for every
// (re-)execution of the body — helpers re-executing a stalled
// transaction each get their own — so the view carries per-execution
// probe memoization without breaking idempotence.
//
// Only declared keys are addressable: Get, Put or Delete on a key that
// was not in Atomic's key set panics (the key's shard lock is not
// held, so touching it could never be atomic).
type MapTxn[K comparable, V any] struct {
	mp    *Map[K, V]
	tx    *Tx
	prep  *mapTxnPrep[K, V]
	slots []txnSlot
	// full, when non-nil (Map.Atomic), is set by a Put that found its
	// shard at capacity so the wrapper can report ErrMapFull.
	full *Cell[bool]
}

// txnSlot memoizes one declared key's probe inside one execution of the
// body: probing is the budget's linear term, so each key pays it once
// and subsequent operations reuse the located bucket.
type txnSlot struct {
	probed bool
	found  bool
	idx    int // bucket index when found
	free   int // first reusable bucket when not found (-1: shard full)
}

// mapTxnKey is one declared key with its precomputed routing.
type mapTxnKey[K comparable] struct {
	k    K
	h    uint64
	si   int
	home int
}

// mapTxnPrep is the immutable, execution-independent part of a
// transaction: deduplicated keys with routing, the deduplicated and
// sorted lock set, the involved shards, and the declared op budget. It
// is computed once per Atomic call (or once per Region) and shared by
// every execution of the body.
type mapTxnPrep[K comparable, V any] struct {
	mp      *Map[K, V]
	keys    []mapTxnKey[K]
	keyList []K       // declaration-ordered deduplicated keys, for MapTxn.Keys
	index   map[K]int // key → slot, built past a size threshold (else nil)
	shards  []int
	locks   []*Lock
	ops     int
}

// txnIndexThreshold is the key count past which prepare switches from
// linear scans to a map index for dedupe and slot resolution: small
// transactions (the common transfer/swap shapes) stay allocation-lean,
// while GetBatch-sized chunks resolve keys in O(1) — important because
// helpers re-executing a body pay slot lookups again.
const txnIndexThreshold = 8

// prepare computes a transaction's routing: keys deduplicated by
// equality, shard set deduplicated, locks sorted by ID so every
// transaction acquires in one canonical order. The op budget gives each
// distinct key one full single-shard budget (whose bookkeeping headroom
// already covers the key's share of seqlock bumps and result routing,
// exactly as in the single-key operations), plus one extra probe per
// additional key sharing a shard — a same-shard insert can invalidate a
// sibling key's memoized free bucket, forcing a re-probe.
func (mp *Map[K, V]) prepare(keys []K) *mapTxnPrep[K, V] {
	prep := &mapTxnPrep[K, V]{mp: mp}
	if len(keys) > txnIndexThreshold {
		prep.index = make(map[K]int, len(keys))
	}
	for _, k := range keys {
		dup := false
		if prep.index != nil {
			_, dup = prep.index[k]
		} else {
			for i := range prep.keys {
				if prep.keys[i].k == k {
					dup = true
					break
				}
			}
		}
		if dup {
			continue
		}
		h := mp.eng.Hash(k)
		if prep.index != nil {
			prep.index[k] = len(prep.keys)
		}
		prep.keys = append(prep.keys, mapTxnKey[K]{
			k: k, h: h, si: mp.eng.ShardIndex(h), home: mp.eng.Home(h),
		})
		prep.keyList = append(prep.keyList, k)
	}
	for i := range prep.keys {
		si := prep.keys[i].si
		seen := false
		for _, s := range prep.shards {
			if s == si {
				seen = true
				break
			}
		}
		if !seen {
			prep.shards = append(prep.shards, si)
		}
	}
	prep.locks = make([]*Lock, len(prep.shards))
	for i, si := range prep.shards {
		prep.locks[i] = mp.locks[si]
	}
	sort.Slice(prep.locks, func(i, j int) bool { return prep.locks[i].ID() < prep.locks[j].ID() })
	nk, ns := len(prep.keys), len(prep.shards)
	prep.ops = nk*mp.opBudget + (nk-ns)*mp.probeCost
	return prep
}

// txnVerCells lists the seqlock version cells of the involved shards;
// the transaction runner bumps each once before and once after the
// body.
func (prep *mapTxnPrep[K, V]) txnVerCells() []*idem.Cell {
	vers := make([]*idem.Cell, len(prep.shards))
	for i, si := range prep.shards {
		vers[i] = prep.mp.eng.Shards[si].Ver
	}
	return vers
}

// view creates a fresh per-execution transaction view.
func (prep *mapTxnPrep[K, V]) view(tx *Tx, full *Cell[bool]) *MapTxn[K, V] {
	return &MapTxn[K, V]{
		mp:    prep.mp,
		tx:    tx,
		prep:  prep,
		slots: make([]txnSlot, len(prep.keys)),
		full:  full,
	}
}

// Atomic runs fn as one atomic transaction over the declared keys: the
// involved shard locks (deduplicated, sorted) are acquired in a single
// wait-free multi-lock attempt, fn's Get/Put/Delete calls on the view
// execute inside that one critical section, and the whole body commits
// atomically — concurrent readers and transactions observe all of its
// effects or none. This is the general form of the paper's L-lock
// acquisition: a transaction over keys spanning s shards pays the
// 1/(κs) per-attempt success probability and the O(κ²L²T) step bound.
//
// Requirements, validated per call: the distinct shard count must be
// within the manager's WithMaxLocks bound L (ErrTooManyLocks) and the
// transaction budget — MapAtomicSteps-style, one single-shard budget
// per distinct key — within WithMaxCriticalSteps (ErrMaxOpsExceeded).
// An empty key set reports ErrNoLocks.
//
// fn is a critical-section body: deterministic given the view's
// results, no acquisitions or other shared-memory access of its own,
// and safe for concurrent re-execution by helpers. Route results out
// through fresh cells (written via the view's Tx), never through
// closure captures, and capture only data that stays immutable even
// after Atomic returns — a straggling helper may still be re-executing
// the body, so iterating a key buffer the caller reuses between calls
// is a determinism violation; iterate the view's Keys() instead.
//
// The declared budget covers, per named key: its probe, one Get, one
// Put (or Delete), and — for keys sharing a shard — one re-probe (a
// same-shard insert can take a sibling's memoized free bucket). That
// is the natural read-the-keys-then-write-the-keys shape. Bodies that
// interleave many extra rounds of Gets and inserting Puts over the
// same full shard can exceed the budget, which panics with the idem
// layer's exceeded-maxOps message (the same contract as any
// over-budget critical section); keep transaction bodies to the
// declared shape. If any Put found its shard at capacity,
// Atomic reports ErrMapFull after the transaction commits (the body's
// other effects stand — a full shard aborts nothing by itself; bodies
// that need all-or-nothing inserts should Get first and write only on
// the outcomes they accept).
func (mp *Map[K, V]) Atomic(keys []K, fn func(*MapTxn[K, V])) error {
	return mp.AtomicCtx(context.Background(), keys, fn)
}

// AtomicCtx is Atomic with cancellation: between failed acquisition
// attempts it checks ctx and returns an error wrapping ErrCanceled once
// ctx is done. The body never runs after AtomicCtx returns a
// cancellation error; a nil (or ErrMapFull) return means exactly one
// winning attempt committed it.
func (mp *Map[K, V]) AtomicCtx(ctx context.Context, keys []K, fn func(*MapTxn[K, V])) error {
	prep := mp.prepare(keys)
	full := NewBoolCell(false)
	rg := &MapRegion[K, V]{prep: prep}
	err := AtomicAllCtx(ctx, mp.m, []TxnRegion{rg}, func(tx *Tx) {
		fn(prep.view(tx, full))
	})
	if err != nil {
		return err
	}
	if Load(mp.m, full) {
		return fmt.Errorf("%w: a transactional Put found its shard at capacity %d", ErrMapFull, mp.eng.Capacity())
	}
	return nil
}

// Region declares a transaction's footprint on this map — the given
// keys, their deduplicated sorted shard locks, and the op budget — for
// composition into a multi-structure transaction via AtomicAll. Inside
// the transaction body, View binds the region to the running critical
// section and yields the same typed MapTxn view Atomic provides.
func (mp *Map[K, V]) Region(keys ...K) *MapRegion[K, V] {
	return &MapRegion[K, V]{prep: mp.prepare(keys)}
}

// MapRegion is a Map's declared footprint in a multi-structure
// transaction; create one with Map.Region and bind it per execution
// with View. A region is immutable and may be reused across
// transactions with the same key set.
type MapRegion[K comparable, V any] struct {
	prep *mapTxnPrep[K, V]
}

// View binds the region to an executing transaction body, returning a
// fresh typed view. Call it inside the AtomicAll body, once per
// execution — views carry per-execution probe memoization and must not
// be shared across executions (helpers re-executing the body each
// create their own).
//
// A view from a region has no ErrMapFull back-channel: Put's error
// return is the body's to handle (route outcomes through your own
// cells if the caller needs them).
func (rg *MapRegion[K, V]) View(tx *Tx) *MapTxn[K, V] { return rg.prep.view(tx, nil) }

func (rg *MapRegion[K, V]) txnManager() *Manager      { return rg.prep.mp.m }
func (rg *MapRegion[K, V]) txnLocks() []*Lock         { return rg.prep.locks }
func (rg *MapRegion[K, V]) txnOps() int               { return rg.prep.ops }
func (rg *MapRegion[K, V]) txnVerCells() []*idem.Cell { return rg.prep.txnVerCells() }

// TxnRegion is a structure's declared footprint in a multi-structure
// transaction: its locks, op budget and seqlock cells. Regions are
// created by the structures themselves (Map.Region); the interface's
// methods are unexported because a region's internals are engine-level.
type TxnRegion interface {
	txnManager() *Manager
	txnLocks() []*Lock
	txnOps() int
	txnVerCells() []*idem.Cell
}

// AtomicAll runs fn as one atomic transaction spanning every region —
// regions may come from different structures (several Maps) as long as
// all live on the same Manager m. The union of the regions' shard
// locks is deduplicated, sorted and acquired in a single wait-free
// multi-lock attempt; fn runs as one critical section and commits
// atomically across all the structures. Within fn, bind each region
// with its View to operate on its keys.
//
// Validation mirrors Atomic: the distinct lock count must be within
// WithMaxLocks (ErrTooManyLocks), the summed budget within
// WithMaxCriticalSteps (ErrMaxOpsExceeded), and every region must
// belong to m (ErrCrossManager) — locks from different managers cannot
// be acquired atomically. Two regions must not share a shard of the
// same structure (ErrOverlappingRegions): each region's view memoizes
// its own probes, so overlapping views of one bucket region could
// both claim the same free bucket. Put keys that share a map in one
// Region — its view handles same-shard interactions correctly.
func AtomicAll(m *Manager, regions []TxnRegion, fn func(*Tx)) error {
	return AtomicAllCtx(context.Background(), m, regions, fn)
}

// AtomicAllCtx is AtomicAll with cancellation, sharing the DoCtx retry
// loop: it returns an error wrapping ErrCanceled once ctx is done, and
// the body never runs after that.
func AtomicAllCtx(ctx context.Context, m *Manager, regions []TxnRegion, fn func(*Tx)) error {
	var locks []*Lock
	var vers []*idem.Cell
	ops := 0
	for _, rg := range regions {
		if rg.txnManager() != m {
			return fmt.Errorf("%w: AtomicAll region not on this manager", ErrCrossManager)
		}
		for _, l := range rg.txnLocks() {
			// A lock seen in an earlier region means two regions cover the
			// same shard of the same structure (locks are per-structure):
			// their independent probe memos could corrupt that shard.
			for _, have := range locks {
				if have == l {
					return fmt.Errorf("%w: lock %d appears in two regions", ErrOverlappingRegions, l.ID())
				}
			}
			locks = append(locks, l)
		}
		// Regions are shard-disjoint (checked above), so their version
		// cells are necessarily distinct.
		vers = append(vers, rg.txnVerCells()...)
		ops += rg.txnOps()
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i].ID() < locks[j].ID() })
	p := m.Acquire()
	defer m.Release(p)
	_, err := m.LockCtx(ctx, p, locks, ops, func(tx *Tx) {
		// Seqlock versions go odd before any bucket is touched and even
		// after the last effect, so lock-free snapshots never observe a
		// half-applied transaction.
		for _, v := range vers {
			tx.run.Write(v, tx.run.Read(v)+1)
		}
		fn(tx)
		for _, v := range vers {
			tx.run.Write(v, tx.run.Read(v)+1)
		}
	})
	return err
}

// slot resolves a key to its declared index, panicking for undeclared
// keys (their shard locks are not held).
func (t *MapTxn[K, V]) slot(k K) int {
	if t.prep.index != nil {
		if i, ok := t.prep.index[k]; ok {
			return i
		}
	} else {
		for i := range t.prep.keys {
			if t.prep.keys[i].k == k {
				return i
			}
		}
	}
	panic("wflocks: MapTxn: key not in the transaction's declared key set")
}

// probe memoizes the key's bucket location for this execution.
func (t *MapTxn[K, V]) probe(i int) *txnSlot {
	s := &t.slots[i]
	if !s.probed {
		tk := &t.prep.keys[i]
		sh := &t.mp.eng.Shards[tk.si]
		s.idx, s.found, s.free = t.mp.eng.Find(t.tx.run, sh, tk.h, tk.home, tk.k)
		s.probed = true
	}
	return s
}

// invalidateFree drops sibling keys' memoized probes after an insert
// filled bucket `filled` of shard si: exactly the siblings that
// remembered that bucket as their reusable slot must re-probe. Located
// (found) keys keep their buckets — inserts never move live entries —
// and siblings holding a different free bucket keep theirs, which is
// what bounds re-probes to at most one per same-shard sibling in the
// budgeted Get-round-then-Put-round pattern.
func (t *MapTxn[K, V]) invalidateFree(si, filled, self int) {
	for i := range t.slots {
		if i != self && t.prep.keys[i].si == si &&
			t.slots[i].probed && !t.slots[i].found && t.slots[i].free == filled {
			t.slots[i].probed = false
		}
	}
}

// Get reports the value the transaction observes for k — including the
// transaction's own earlier writes.
func (t *MapTxn[K, V]) Get(k K) (V, bool) {
	i := t.slot(k)
	s := t.probe(i)
	if !s.found {
		var zero V
		return zero, false
	}
	tk := &t.prep.keys[i]
	return t.mp.eng.Val(t.tx.run, &t.mp.eng.Shards[tk.si], s.idx), true
}

// Put stores v for k within the transaction, inserting or overwriting.
// It returns ErrMapFull when k's shard has no free bucket; the
// transaction's other effects are unaffected (see Atomic on
// all-or-nothing patterns).
func (t *MapTxn[K, V]) Put(k K, v V) error {
	i := t.slot(k)
	s := t.probe(i)
	tk := &t.prep.keys[i]
	sh := &t.mp.eng.Shards[tk.si]
	if s.found {
		t.mp.eng.SetVal(t.tx.run, sh, s.idx, v)
		return nil
	}
	if s.free < 0 {
		if t.full != nil {
			Put(t.tx, t.full, true)
		}
		return fmt.Errorf("%w: shard %d at capacity %d", ErrMapFull, tk.si, t.mp.eng.Capacity())
	}
	t.mp.eng.Insert(t.tx.run, sh, s.free, tk.h, tk.k, v)
	s.found, s.idx = true, s.free
	t.invalidateFree(tk.si, s.idx, i)
	return nil
}

// Delete removes k within the transaction, reporting whether it was
// present (to the transaction's view, own writes included).
func (t *MapTxn[K, V]) Delete(k K) bool {
	i := t.slot(k)
	s := t.probe(i)
	if !s.found {
		return false
	}
	tk := &t.prep.keys[i]
	t.mp.eng.Remove(t.tx.run, &t.mp.eng.Shards[tk.si], s.idx)
	s.found, s.free = false, s.idx
	// Same-shard siblings that probed a full region (free = -1) can use
	// the freed bucket: a probe that found no reusable bucket covered
	// the whole region, so every chain reaches this one. Without this a
	// Delete-then-Put pair would spuriously report ErrMapFull.
	for j := range t.slots {
		if j != i && t.prep.keys[j].si == tk.si &&
			t.slots[j].probed && !t.slots[j].found && t.slots[j].free < 0 {
			t.slots[j].free = s.idx
		}
	}
	return true
}

// Keys returns the transaction's declared key set, deduplicated, in
// declaration order. Bodies should iterate this slice rather than a
// captured variable: everything a body captures must stay immutable
// even after Atomic returns (a straggling helper may still be
// re-executing the body), and Keys is backed by the transaction's own
// immutable preparation. Callers must not modify the returned slice.
func (t *MapTxn[K, V]) Keys() []K { return t.prep.keyList }

// Tx exposes the underlying critical-section handle, for routing
// results out through the caller's own cells:
//
//	ok := wflocks.NewBoolCell(false)
//	mp.Atomic(keys, func(t *wflocks.MapTxn[K, V]) {
//		...
//		wflocks.Put(t.Tx(), ok, true)
//	})
func (t *MapTxn[K, V]) Tx() *Tx { return t.tx }

// GetBatch looks up many keys, amortizing lock acquisitions: the
// deduplicated keys are grouped by shard and each chunk — up to
// MaxLocks distinct shards, within the critical-step budget — is read
// in one multi-lock transaction on the Atomic path. Results align with
// keys (duplicates get identical results). Each chunk is atomic (its
// keys are observed at one instant); the batch as a whole is not a
// single transaction when the keys span more chunks than one
// acquisition can hold — use Atomic directly when cross-key atomicity
// over the full set is required.
func (mp *Map[K, V]) GetBatch(keys []K) ([]V, []bool) {
	type result struct {
		v  V
		ok bool
	}
	got := make(map[K]result, len(keys))
	mp.batch(keys, func(chunk []K) error {
		cells := make([]*Cell[V], len(chunk))
		found := make([]*Cell[bool], len(chunk))
		for i := range chunk {
			cells[i] = newResultCell(mp.vc)
			found[i] = NewBoolCell(false)
		}
		err := mp.Atomic(chunk, func(t *MapTxn[K, V]) {
			for i, k := range chunk {
				if v, ok := t.Get(k); ok {
					Put(t.Tx(), cells[i], v)
					Put(t.Tx(), found[i], true)
				}
			}
		})
		if err != nil {
			return err
		}
		p := mp.m.Acquire()
		defer mp.m.Release(p)
		for i, k := range chunk {
			var r result
			if found[i].Get(p) {
				r = result{v: cells[i].Get(p), ok: true}
			}
			got[k] = r
		}
		return nil
	})
	vals := make([]V, len(keys))
	oks := make([]bool, len(keys))
	for j, k := range keys {
		vals[j], oks[j] = got[k].v, got[k].ok
	}
	return vals, oks
}

// PutBatch stores vals[i] for keys[i] (lengths must match), grouped and
// chunked exactly as GetBatch; a duplicated key stores its last value,
// matching a sequential Put loop. Each chunk commits atomically; if any
// chunk's shard ran out of buckets, PutBatch reports ErrMapFull after
// finishing every chunk (successful inserts stand, as with Put).
func (mp *Map[K, V]) PutBatch(keys []K, vals []V) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("wflocks: PutBatch: %d keys but %d values", len(keys), len(vals))
	}
	last := make(map[K]V, len(keys))
	for j, k := range keys {
		last[k] = vals[j]
	}
	var firstErr error
	mp.batch(keys, func(chunk []K) error {
		err := mp.Atomic(chunk, func(t *MapTxn[K, V]) {
			for _, k := range chunk {
				t.Put(k, last[k])
			}
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
		return nil
	})
	return firstErr
}

// batch partitions keys into chunks one acquisition can hold: keys are
// deduplicated, grouped by shard, and shards packed greedily up to the
// manager's MaxLocks bound and the critical-step budget. run is called
// once per chunk; a non-nil return panics (GetBatch's budgets are
// validated by construction, so a failure here is a programming error,
// consistent with the map's other read paths).
func (mp *Map[K, V]) batch(keys []K, run func(chunk []K) error) {
	if len(keys) == 0 {
		return
	}
	// Deduplicate, then group unique keys by shard in first-seen order.
	seen := make(map[K]struct{}, len(keys))
	shardOrder := make([]int, 0, 8)
	byShard := make(map[int][]K)
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		si := mp.eng.ShardIndex(mp.eng.Hash(k))
		if _, ok := byShard[si]; !ok {
			shardOrder = append(shardOrder, si)
		}
		byShard[si] = append(byShard[si], k)
	}
	maxShards := mp.m.cfg.maxLocks
	// Conservative per-chunk key budget: each distinct key costs one
	// single-shard budget plus one probe of re-probe headroom.
	maxKeys := mp.m.cfg.maxCritical / (mp.opBudget + mp.probeCost)
	if maxKeys < 1 {
		maxKeys = 1
	}
	var chunk []K
	shardsIn := 0
	flush := func() {
		if len(chunk) > 0 {
			if err := run(chunk); err != nil {
				panic("wflocks: Map batch: " + err.Error())
			}
			chunk, shardsIn = nil, 0
		}
	}
	for _, si := range shardOrder {
		group := byShard[si]
		if shardsIn+1 > maxShards || len(chunk)+len(group) > maxKeys {
			flush()
		}
		// A single shard whose keys alone exceed the budget is split into
		// chunks of its own (always ≥1 key per chunk).
		for len(group) > maxKeys {
			if err := run(group[:maxKeys]); err != nil {
				panic("wflocks: Map batch: " + err.Error())
			}
			group = group[maxKeys:]
		}
		chunk = append(chunk, group...)
		shardsIn++
	}
	flush()
}
