package wflocks

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDoCtxAlreadyCanceled(t *testing.T) {
	m := newManager(t, WithKappa(2))
	l := m.NewLock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := m.DoCtx(ctx, []*Lock{l}, 2, func(*Tx) {
		t.Error("body ran under a canceled context")
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestDoCtxCancelMidRetry cancels while several workers are contending
// (and hence retrying with a sleeping backoff) and checks every DoCtx
// loop tears down promptly with ErrCanceled.
func TestDoCtxCancelMidRetry(t *testing.T) {
	m := newManager(t, WithKappa(4), WithMaxLocks(1), WithMaxCriticalSteps(16),
		WithRetryPolicy(RetryBackoff(time.Millisecond, 4*time.Millisecond)))
	l := m.NewLock()
	c := NewCell(uint64(0))
	ctx, cancel := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				err := m.DoCtx(ctx, []*Lock{l}, 4, func(tx *Tx) {
					Put(tx, c, Get(tx, c)+1)
				})
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("DoCtx did not return promptly after cancel")
	}
	for w, err := range errs {
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("worker %d err = %v, want ErrCanceled", w, err)
		}
	}
}

func TestDoCtxDeadline(t *testing.T) {
	m := newManager(t, WithKappa(2))
	l := m.NewLock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	// Keep acquiring until the deadline hits; the final call must report
	// ErrCanceled rather than spinning past the deadline.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		err := m.DoCtx(ctx, []*Lock{l}, 2, func(*Tx) {})
		if err != nil {
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			return
		}
	}
	t.Fatal("DoCtx kept succeeding past its deadline")
}

// TestLockCtxCancel covers the Lock-path half of the shared retry
// loop: LockCtx must honor cancellation exactly as DoCtx does (the two
// are one implementation), and Lock must keep its attempt-count
// contract on the win path.
func TestLockCtxCancel(t *testing.T) {
	m := newManager(t, WithKappa(2))
	l := m.NewLock()
	p := m.NewProcess()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts, err := m.LockCtx(ctx, p, []*Lock{l}, 2, func(*Tx) {
		t.Error("body ran under a canceled context")
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if attempts != 0 {
		t.Fatalf("attempts = %d, want 0 under pre-canceled context", attempts)
	}

	// The live-context path still wins and reports its attempt count.
	c := NewCell(uint64(0))
	attempts, err = m.LockCtx(context.Background(), p, []*Lock{l}, 2, func(tx *Tx) {
		Put(tx, c, Get(tx, c)+1)
	})
	if err != nil || attempts < 1 {
		t.Fatalf("LockCtx = (%d, %v), want (>=1, nil)", attempts, err)
	}
	if Load(m, c) != 1 {
		t.Fatal("critical section did not run")
	}
	if n, err := m.Lock(p, []*Lock{l}, 2, func(tx *Tx) {
		Put(tx, c, Get(tx, c)+1)
	}); err != nil || n < 1 {
		t.Fatalf("Lock = (%d, %v), want (>=1, nil)", n, err)
	}
}

func TestRetryPolicies(t *testing.T) {
	// Each policy must let an uncontended Do complete.
	for _, tc := range []struct {
		name   string
		policy RetryPolicy
	}{
		{"immediate", RetryImmediate()},
		{"gosched", RetryGosched()},
		{"backoff", RetryBackoff(time.Microsecond, time.Millisecond)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := newManager(t, WithKappa(2), WithRetryPolicy(tc.policy))
			l := m.NewLock()
			c := NewCell(uint64(0))
			if err := m.Do([]*Lock{l}, 2, func(tx *Tx) {
				Put(tx, c, Get(tx, c)+1)
			}); err != nil {
				t.Fatal(err)
			}
			if Load(m, c) != 1 {
				t.Fatal("critical section did not run")
			}
		})
	}
}

func TestBackoffWaitRespectsContext(t *testing.T) {
	p := RetryBackoff(time.Hour, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		p.Wait(ctx, 1)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("backoff slept through cancellation")
	}
}

func TestBackoffCapsDelay(t *testing.T) {
	p := RetryBackoff(time.Microsecond, 2*time.Millisecond).(*backoffPolicy)
	start := time.Now()
	// Attempt 60 would shift into absurdity without the cap.
	p.Wait(context.Background(), 60)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("capped backoff slept %v", elapsed)
	}
}
