package wflocks

// The per-goroutine handle pool. Process handles are cheap but not
// free (each carries a private random stream and step counter), and the
// algorithm requires that a handle never be used by two goroutines at
// once. The pool gives the common path — Do, DoCtx, Load, Store — a
// handle per call without the caller threading one through, while
// keeping the number of live handles proportional to the number of
// concurrently acquiring goroutines rather than the number of calls.
//
// The pool does not enforce the manager's contention bounds: κ (per
// lock) and, in unknown-bounds mode, P (total processes) are the
// caller's contract, exactly as with explicit NewProcess handles.
// Running more concurrent acquisitions than the configured bounds
// admit voids the guarantees and panics in the core algorithm once a
// lock's announcement capacity is exceeded — configure κ (or P) for
// the peak number of goroutines that can contend.

// Acquire returns a process handle for the calling goroutine, reusing a
// pooled one when available. The handle is exclusively the caller's
// until Release. Step accounts accumulate across reuses, so a pooled
// handle's Steps reflects all work done under it, not just the
// caller's.
func (m *Manager) Acquire() *Process {
	return m.procs.Get().(*Process)
}

// Release returns a handle obtained from Acquire to the pool. The
// caller must not use p afterwards.
func (m *Manager) Release(p *Process) {
	m.procs.Put(p)
}
