package wflocks

import (
	"context"
	"testing"
)

// FuzzQueueOps drives one small queue through an arbitrary
// enqueue/dequeue/batch sequence decoded from the fuzz input and
// checks the ring's index arithmetic against a slice model after every
// operation, mirroring internal/table's FuzzShardOps:
//
//   - TryEnqueue fails exactly when the model is full and TryDequeue
//     exactly when it is empty (full/empty transitions);
//   - dequeued values replay the model in FIFO order;
//   - Len and the Stats counters track the model exactly;
//   - the per-slot sequence cells satisfy the occupancy protocol at
//     every step — slot s holds ticket+1 while occupied and its next
//     enqueue ticket while free — which is what pins wraparound and
//     sequence-number reuse across laps (a stale or double-applied
//     index write breaks the invariant immediately).
//
// The queue is tiny (4 slots) so short inputs wrap the ring several
// times; the seed corpus keeps `go test` (including -short) exercising
// the wrap/full/empty paths without the fuzz engine.
func FuzzQueueOps(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x00, 0x01, 0x01, 0x00, 0x01})                         // fill/drain churn
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x01, 0x01, 0x01, 0x01}) // to full, to empty
	f.Add([]byte{0x02, 0x03, 0x02, 0x03, 0x02, 0x03})                         // batch churn
	f.Add([]byte{0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01,
		0x00, 0x01, 0x00, 0x01}) // lap the ring with length 1
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 4
		const batch = 3
		m, err := New(
			WithKappa(2),
			WithMaxLocks(1),
			WithMaxCriticalSteps(QueueCriticalSteps(1, batch)),
			WithDelayConstants(1, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		q, err := NewQueue[uint64](m, WithQueueCapacity(capacity), WithQueueBatch(batch))
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) > 64 {
			ops = ops[:64] // plenty to reach every state; keeps cases fast
		}
		ctx := context.Background()
		var model []uint64   // pending values, FIFO
		var mHead, mTail int // model tickets (total dequeues/enqueues)
		var fulls, empts int // expected reject counters
		for step, op := range ops {
			v := uint64(step) + 1000
			switch op % 4 {
			case 0: // TryEnqueue
				ok := q.TryEnqueue(v)
				if wantOK := len(model) < capacity; ok != wantOK {
					t.Fatalf("step %d: TryEnqueue = %v with %d/%d queued", step, ok, len(model), capacity)
				}
				if ok {
					model = append(model, v)
					mTail++
				} else {
					fulls++
				}
			case 1: // TryDequeue
				got, ok := q.TryDequeue()
				if wantOK := len(model) > 0; ok != wantOK {
					t.Fatalf("step %d: TryDequeue = %v with %d queued", step, ok, len(model))
				}
				if ok {
					if got != model[0] {
						t.Fatalf("step %d: dequeued %d, model head %d (FIFO broken)", step, got, model[0])
					}
					model = model[1:]
					mHead++
				} else {
					empts++
				}
			case 2: // EnqueueBatch of whatever fits (blocking otherwise)
				free := capacity - len(model)
				n := batch
				if n > free {
					n = free
				}
				if n == 0 {
					continue
				}
				vs := make([]uint64, n)
				for i := range vs {
					vs[i] = v + uint64(i)*7
				}
				moved, err := q.EnqueueBatch(ctx, vs)
				if err != nil || moved != n {
					t.Fatalf("step %d: EnqueueBatch = (%d, %v), want (%d, nil)", step, moved, err, n)
				}
				model = append(model, vs...)
				mTail += n
			case 3: // DequeueBatch of up to batch (skip when empty: it would block)
				if len(model) == 0 {
					continue
				}
				if len(model) < batch {
					// The short chunk observes the empty ring once.
					empts++
				}
				got, err := q.DequeueBatch(ctx, batch)
				if err != nil {
					t.Fatalf("step %d: DequeueBatch: %v", step, err)
				}
				n := batch
				if n > len(model) {
					n = len(model)
				}
				if len(got) != n {
					t.Fatalf("step %d: DequeueBatch moved %d, want %d", step, len(got), n)
				}
				for i, g := range got {
					if g != model[i] {
						t.Fatalf("step %d: batch[%d] = %d, model %d (FIFO broken)", step, i, g, model[i])
					}
				}
				model = model[n:]
				mHead += n
			}

			if got := q.Len(); got != len(model) {
				t.Fatalf("step %d: Len = %d, model %d", step, got, len(model))
			}
			auditRing(t, m, &q.ring, mHead, mTail, model)
			s := q.Stats()
			if int(s.Enqueues) != mTail || int(s.Dequeues) != mHead {
				t.Fatalf("step %d: counters = %d/%d, model %d/%d", step, s.Enqueues, s.Dequeues, mTail, mHead)
			}
			if int(s.FullRejects) != fulls || int(s.EmptyRejects) != empts {
				t.Fatalf("step %d: rejects = %d/%d, model %d/%d", step, s.FullRejects, s.EmptyRejects, fulls, empts)
			}
		}
	})
}

// auditRing verifies the ring's cell-resident state against the model
// at quiescence: ticket cells, slot values in FIFO positions, and the
// occupancy sequence protocol (slot s reads ticket+1 while it holds
// ticket's element, and its next enqueue ticket while free).
func auditRing(t *testing.T, m *Manager, r *qring[uint64], mHead, mTail int, model []uint64) {
	t.Helper()
	p := m.Acquire()
	defer m.Release(p)
	if h := r.head.Get(p); h != uint64(mHead) {
		t.Fatalf("head ticket = %d, model %d", h, mHead)
	}
	if tt := r.tail.Get(p); tt != uint64(mTail) {
		t.Fatalf("tail ticket = %d, model %d", tt, mTail)
	}
	// Occupied tickets [head, tail): element and sequence.
	for k := 0; k < len(model); k++ {
		pos := uint64(mHead + k)
		s := int(pos & r.mask)
		if got := r.vals[s].Get(p); got != model[k] {
			t.Fatalf("slot %d (ticket %d) = %d, model %d", s, pos, got, model[k])
		}
		if seq := r.seq[s].Get(p); seq != pos+1 {
			t.Fatalf("occupied slot %d (ticket %d) seq = %d, want %d", s, pos, seq, pos+1)
		}
	}
	// Free tickets [tail, head+capacity): each slot awaits its next
	// enqueue ticket — the sequence-number-reuse invariant across laps.
	for pos := uint64(mTail); pos < uint64(mHead+r.capacity); pos++ {
		s := int(pos & r.mask)
		if seq := r.seq[s].Get(p); seq != pos {
			t.Fatalf("free slot %d seq = %d, want next ticket %d", s, seq, pos)
		}
	}
}
