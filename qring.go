package wflocks

// This file holds the shared bounded-ring protocol: the cell-resident
// state and step helpers that Queue (one ring, one lock), WorkPool (one
// ring per shard, two-lock steals) and Log (one ring per shard,
// broadcast cursors) all build on. The ring owns everything a lock
// protects; the owner brings the locking.

// qring is the cell-resident state of one bounded ring: monotone
// head/tail tickets, per-slot sequence numbers and elements, and the
// traffic counters. All mutation happens inside critical sections
// through the enqOne/deqOne/moveOne/reclaim step helpers, whose
// operation sequences are deterministic given cell reads — the
// idempotence contract for helper re-execution.
//
// Head and tail are monotone tickets: enqueue number t writes slot
// t mod capacity, dequeue number h reads slot h mod capacity. Each slot
// carries a sequence cell following the classic bounded-MPMC protocol —
// seq == t while the slot awaits enqueue ticket t, t+1 while it holds
// that ticket's element, and t+capacity once dequeue t's lap frees it.
// Under the owner's lock the sequence numbers are not needed for mutual
// exclusion; they are the occupancy audit that makes the ring's index
// arithmetic checkable (the model-based fuzz tests verify them across
// wraparound), exactly the role the engine's meta words play for the
// shard table.
type qring[T any] struct {
	vc       Codec[T] // result-cell codec
	capacity int
	mask     uint64

	head *Cell[uint64] // next dequeue ticket
	tail *Cell[uint64] // next enqueue ticket
	seq  []*Cell[uint64]
	vals []*Cell[T]

	// Counters, bumped inside critical sections: exact at quiescence.
	enqs    *Cell[uint64] // completed enqueues
	deqs    *Cell[uint64] // completed dequeues
	fulls   *Cell[uint64] // attempts that observed a full ring
	empties *Cell[uint64] // attempts that observed an empty ring
}

// newQring builds a ring with the given power-of-two capacity. Slot i
// starts with sequence number i — "awaiting enqueue ticket i" — and a
// zeroed element (never decoded before an enqueue writes it, so no
// codec invocation happens at construction).
func newQring[T any](vc Codec[T], capacity int) qring[T] {
	r := qring[T]{
		vc:       vc,
		capacity: capacity,
		mask:     uint64(capacity - 1),
		head:     NewCell(uint64(0)),
		tail:     NewCell(uint64(0)),
		seq:      make([]*Cell[uint64], capacity),
		vals:     make([]*Cell[T], capacity),
		enqs:     NewCell(uint64(0)),
		deqs:     NewCell(uint64(0)),
		fulls:    NewCell(uint64(0)),
		empties:  NewCell(uint64(0)),
	}
	for i := 0; i < capacity; i++ {
		r.seq[i] = NewCell(uint64(i))
		r.vals[i] = newResultCell(vc)
	}
	return r
}

// enqOne appends v inside a critical section, reporting false when the
// ring is full. Reads-then-writes on the ticket cells are
// read-your-writes, so batch bodies can call it repeatedly.
func (r *qring[T]) enqOne(tx *Tx, v T) bool {
	h := Get(tx, r.head)
	t := Get(tx, r.tail)
	if t-h >= uint64(r.capacity) {
		return false
	}
	i := int(t & r.mask)
	Put(tx, r.vals[i], v)
	Put(tx, r.seq[i], t+1)
	Put(tx, r.tail, t+1)
	Put(tx, r.enqs, Get(tx, r.enqs)+1)
	return true
}

// deqOne pops the oldest element into out inside a critical section,
// reporting false when the ring is empty. The freed slot's sequence
// advances a full lap (h+capacity): it now awaits the enqueue ticket
// that will next land on it.
func (r *qring[T]) deqOne(tx *Tx, out *Cell[T]) bool {
	h := Get(tx, r.head)
	t := Get(tx, r.tail)
	if h == t {
		return false
	}
	i := int(h & r.mask)
	Put(tx, out, Get(tx, r.vals[i]))
	Put(tx, r.seq[i], h+uint64(r.capacity))
	Put(tx, r.head, h+1)
	Put(tx, r.deqs, Get(tx, r.deqs)+1)
	return true
}

// moveOne migrates one element from the head of `from` to the tail of
// `to` inside a critical section, reporting false when from is empty
// or to is full. Migration preserves the moved elements' relative
// order and does not touch the enqueue/dequeue counters — the element
// was already counted when it entered the pool.
func moveOne[T any](tx *Tx, from, to *qring[T]) bool {
	h := Get(tx, from.head)
	t := Get(tx, from.tail)
	if h == t {
		return false
	}
	th := Get(tx, to.head)
	tt := Get(tx, to.tail)
	if tt-th >= uint64(to.capacity) {
		return false
	}
	i := int(h & from.mask)
	j := int(tt & to.mask)
	Put(tx, to.vals[j], Get(tx, from.vals[i]))
	Put(tx, to.seq[j], tt+1)
	Put(tx, to.tail, tt+1)
	Put(tx, from.seq[i], h+uint64(from.capacity))
	Put(tx, from.head, h+1)
	return true
}

// reclaim frees up to max slots from the head without reading their
// elements, stopping at ticket upto: the bulk variant of deqOne's
// slot-freeing half, used by Log trim (the elements were broadcast, not
// consumed-once, so nothing is popped). Freed slots advance their
// sequence a full lap and count as dequeues. Returns the number freed.
func (r *qring[T]) reclaim(tx *Tx, upto uint64, max int) int {
	h := Get(tx, r.head)
	n := 0
	for h < upto && n < max {
		i := int(h & r.mask)
		Put(tx, r.seq[i], h+uint64(r.capacity))
		h++
		n++
	}
	if n > 0 {
		Put(tx, r.head, h)
		Put(tx, r.deqs, Get(tx, r.deqs)+uint64(n))
	}
	return n
}

// lenWith reads the ring's occupancy lock-free under an existing
// process handle (see Queue.Len for the consistency caveat).
func (r *qring[T]) lenWith(p *Process) int {
	t := r.tail.Get(p)
	h := r.head.Get(p)
	n := int(t - h)
	if n < 0 {
		n = 0
	}
	if n > r.capacity {
		n = r.capacity
	}
	return n
}
